package compute

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k     *sim.Kernel
	prov  *Provider
	meter *pricing.Meter
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(5)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	prov := NewProvider(net, rng.Fork(), DefaultConfig(), pricing.Fall2018(), meter)
	return &fixture{k: k, prov: prov, meter: meter}
}

func TestLaunchTakesBootDelay(t *testing.T) {
	f := newFixture(t)
	var bootDone sim.Time
	f.k.Spawn("ops", func(p *sim.Proc) {
		inst := f.prov.Launch(p, M4Large, 0)
		bootDone = p.Now()
		if inst.ID() == "" || inst.Node() == nil {
			t.Error("instance not initialized")
		}
	})
	f.k.Run()
	if bootDone < 45*time.Second || bootDone > 90*time.Second {
		t.Errorf("boot took %v, want 45-90s", bootDone)
	}
}

// Calibration: m4.large crunches a 100MB batch in the paper's 0.10s.
func TestM4LargeComputeMatchesPaperOptimizerStep(t *testing.T) {
	f := newFixture(t)
	var elapsed sim.Time
	f.k.Spawn("ops", func(p *sim.Proc) {
		inst := f.prov.Launch(p, M4Large, 0)
		start := p.Now()
		if err := inst.Compute(p, 100e6); err != nil {
			t.Errorf("Compute: %v", err)
		}
		elapsed = p.Now() - start
	})
	f.k.Run()
	if math.Abs(elapsed.Seconds()-0.10) > 0.005 {
		t.Errorf("100MB compute = %v, paper reports 0.10s", elapsed)
	}
}

// Calibration: a warm 100MB EBS read takes the paper's 0.04s.
func TestWarmVolumeReadMatchesPaper(t *testing.T) {
	f := newFixture(t)
	var cold, warm sim.Time
	f.k.Spawn("ops", func(p *sim.Proc) {
		inst := f.prov.Launch(p, M4Large, 0)
		start := p.Now()
		inst.Volume().Read(p, "batch-0", 100e6)
		cold = p.Now() - start
		start = p.Now()
		inst.Volume().Read(p, "batch-0", 100e6)
		warm = p.Now() - start
	})
	f.k.Run()
	if math.Abs(warm.Seconds()-0.04) > 0.005 {
		t.Errorf("warm 100MB read = %v, paper reports 0.04s", warm)
	}
	if cold < 500*time.Millisecond {
		t.Errorf("cold 100MB read = %v, want >=0.5s at ~160MB/s", cold)
	}
}

func TestWarmPreStaging(t *testing.T) {
	f := newFixture(t)
	var read sim.Time
	f.k.Spawn("ops", func(p *sim.Proc) {
		inst := f.prov.Launch(p, M4Large, 0)
		inst.Volume().Warm("data")
		if !inst.Volume().IsWarm("data") {
			t.Error("Warm did not mark extent")
		}
		start := p.Now()
		inst.Volume().Read(p, "data", 100e6)
		read = p.Now() - start
	})
	f.k.Run()
	if read > 50*time.Millisecond {
		t.Errorf("pre-staged read = %v, want warm-speed", read)
	}
}

func TestWriteWarmsExtent(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("ops", func(p *sim.Proc) {
		inst := f.prov.Launch(p, M4Large, 0)
		inst.Volume().Write(p, "out", 1e6)
		if !inst.Volume().IsWarm("out") {
			t.Error("write did not warm extent")
		}
	})
	f.k.Run()
}

func TestBillingPerSecond(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("ops", func(p *sim.Proc) {
		inst := f.prov.Launch(p, M4Large, 0)
		boot := p.Now()
		p.Sleep(time.Hour - boot) // run until exactly 1h of uptime... plus boot
		_ = inst.Terminate(p)
		// Uptime includes boot; at $0.10/hr the charge is uptime-based.
		want := pricing.USD(0.10)
		got := f.meter.Cost("ec2.m4.large")
		if math.Abs(float64(got-want)) > 1e-9 {
			t.Errorf("1h m4.large cost = %v, want %v", got, want)
		}
	})
	f.k.Run()
}

func TestDoubleTerminate(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("ops", func(p *sim.Proc) {
		inst := f.prov.Launch(p, M5Large, 0)
		if err := inst.Terminate(p); err != nil {
			t.Errorf("first Terminate: %v", err)
		}
		if err := inst.Terminate(p); !errors.Is(err, ErrTerminated) {
			t.Errorf("second Terminate: %v", err)
		}
		if err := inst.Compute(p, 100); !errors.Is(err, ErrTerminated) {
			t.Errorf("Compute after terminate: %v", err)
		}
		if err := inst.Volume().Read(p, "x", 1); !errors.Is(err, ErrTerminated) {
			t.Errorf("Read after terminate: %v", err)
		}
	})
	f.k.Run()
}

func TestInstanceIDsUnique(t *testing.T) {
	f := newFixture(t)
	ids := map[string]bool{}
	f.k.Spawn("ops", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			inst := f.prov.Launch(p, M5Large, i)
			if ids[inst.ID()] {
				t.Errorf("duplicate instance id %s", inst.ID())
			}
			ids[inst.ID()] = true
		}
	})
	f.k.Run()
	if len(ids) != 5 {
		t.Errorf("launched %d unique instances, want 5", len(ids))
	}
}

func TestCostSoFarMonotone(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("ops", func(p *sim.Proc) {
		inst := f.prov.Launch(p, M5Large, 0)
		c1 := inst.CostSoFar(p.Now())
		p.Sleep(time.Minute)
		c2 := inst.CostSoFar(p.Now())
		if c2 <= c1 {
			t.Errorf("cost did not accrue: %v then %v", c1, c2)
		}
	})
	f.k.Run()
}
