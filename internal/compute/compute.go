// Package compute simulates the serverful side of the paper's comparisons:
// EC2-style virtual machine instances with attached EBS volumes, boot
// latency, per-second billing, and network endpoints over which instances
// run the direct-messaging and storage baselines.
package compute

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// ErrTerminated is returned for operations on a terminated instance.
var ErrTerminated = errors.New("compute: instance terminated")

// InstanceType describes a VM shape. Compute throughput is the calibrated
// rate at which single-threaded data-crunching workloads (the paper's
// optimizer step) progress on one core of this instance type.
type InstanceType struct {
	Name        string
	VCPUs       int
	MemoryMB    int
	NICBps      netsim.Bps
	ComputeMBps float64 // workload bytes processed per second per core
}

// Standard instance types, calibrated to the paper:
//   - m4.large runs the Adam optimizer over a 100MB batch in 0.10s
//     => 1000 MB/s per core.
//   - m5.large serves ~3,500 requests/s in the serving cost analysis;
//     its compute rate matters only for trivial per-request work.
var (
	M4Large = InstanceType{
		Name: "m4.large", VCPUs: 2, MemoryMB: 8192,
		NICBps: netsim.Mbps(450), ComputeMBps: 1000,
	}
	M5Large = InstanceType{
		Name: "m5.large", VCPUs: 2, MemoryMB: 8192,
		NICBps: netsim.Gbps(10), ComputeMBps: 1100,
	}
)

// VolumeConfig describes an EBS-style volume's throughput. Cold reads come
// off the storage service; warm reads are served from the instance page
// cache. Calibrated so a warm 100MB read takes the paper's 0.04s.
type VolumeConfig struct {
	ColdBps   netsim.Bps
	WarmBps   netsim.Bps
	IOLatency simrand.Dist // per-request seek/queue overhead
}

// DefaultVolumeConfig returns the calibrated EBS configuration.
func DefaultVolumeConfig() VolumeConfig {
	return VolumeConfig{
		// gp2 volumes sustained ~160 MB/s in 2018.
		ColdBps: netsim.MBps(160),
		// Warm data is in the page cache: 100MB in ~0.04s => 2.5 GB/s.
		WarmBps:   netsim.MBps(2500),
		IOLatency: simrand.Uniform{Lo: 200 * time.Microsecond, Hi: 600 * time.Microsecond},
	}
}

// Config holds provider-level parameters.
type Config struct {
	// BootDelay is the time from Launch to a usable instance.
	BootDelay simrand.Dist
	Volume    VolumeConfig
}

// DefaultConfig returns the calibrated provider configuration.
func DefaultConfig() Config {
	return Config{
		BootDelay: simrand.Uniform{Lo: 45 * time.Second, Hi: 90 * time.Second},
		Volume:    DefaultVolumeConfig(),
	}
}

// Provider launches and bills instances.
type Provider struct {
	net     *netsim.Network
	rng     *simrand.RNG
	cfg     Config
	catalog *pricing.Catalog
	meter   *pricing.Meter
	nextID  int
}

// NewProvider creates an EC2-style provider.
func NewProvider(net *netsim.Network, rng *simrand.RNG, cfg Config,
	catalog *pricing.Catalog, meter *pricing.Meter) *Provider {
	return &Provider{net: net, rng: rng, cfg: cfg, catalog: catalog, meter: meter}
}

// Launch boots an instance of the given type in the given rack, blocking the
// caller through the boot delay. Billing starts at launch.
func (pr *Provider) Launch(p *sim.Proc, typ InstanceType, rack int) *Instance {
	pr.nextID++
	id := fmt.Sprintf("i-%04d", pr.nextID)
	inst := &Instance{
		provider:   pr,
		id:         id,
		typ:        typ,
		node:       pr.net.NewNode(id, rack, typ.NICBps),
		launchedAt: p.Now(),
		volume: &Volume{
			cfg:  pr.cfg.Volume,
			rng:  pr.rng.Fork(),
			warm: make(map[string]bool),
		},
	}
	inst.volume.inst = inst
	p.Sleep(pr.cfg.BootDelay.Sample(pr.rng))
	return inst
}

// Instance is a running (or terminated) VM.
type Instance struct {
	provider   *Provider
	id         string
	typ        InstanceType
	node       *netsim.Node
	volume     *Volume
	launchedAt sim.Time
	terminated bool
}

// ID returns the instance identifier.
func (i *Instance) ID() string { return i.id }

// Type returns the instance type.
func (i *Instance) Type() InstanceType { return i.typ }

// Node returns the instance's network endpoint.
func (i *Instance) Node() *netsim.Node { return i.node }

// Volume returns the instance's attached EBS volume.
func (i *Instance) Volume() *Volume { return i.volume }

// Uptime returns how long the instance has been running.
func (i *Instance) Uptime(now sim.Time) time.Duration { return now - i.launchedAt }

// CostSoFar returns the accrued compute cost at per-second granularity.
func (i *Instance) CostSoFar(now sim.Time) pricing.USD {
	return i.provider.catalog.EC2Hourly(i.typ.Name).PerHour(i.Uptime(now))
}

// Compute blocks the calling process for the time this instance needs to
// crunch through `bytes` of data single-threaded (the optimizer-step model).
func (i *Instance) Compute(p *sim.Proc, bytes int64) error {
	if i.terminated {
		return ErrTerminated
	}
	secs := float64(bytes) / (i.typ.ComputeMBps * 1e6)
	p.Sleep(time.Duration(secs * float64(time.Second)))
	return nil
}

// Terminate stops billing and releases the instance. The accrued cost is
// charged to the provider's meter. Terminating twice is an error.
func (i *Instance) Terminate(p *sim.Proc) error {
	if i.terminated {
		return ErrTerminated
	}
	i.terminated = true
	i.provider.meter.ChargeCost("ec2."+i.typ.Name, i.CostSoFar(p.Now()))
	return nil
}

// Terminated reports whether the instance has been terminated.
func (i *Instance) Terminated() bool { return i.terminated }

// Volume is an EBS-style block volume with a warm-block cache model.
type Volume struct {
	inst *Instance
	cfg  VolumeConfig
	rng  *simrand.RNG
	warm map[string]bool
}

// Read blocks for the time needed to read size bytes of the named extent.
// The first read of an extent streams from the backing store at cold
// throughput; subsequent reads hit the page cache at warm throughput —
// which is why the paper's EC2 training fetch is 0.04s, not 0.6s.
func (v *Volume) Read(p *sim.Proc, extent string, size int64) error {
	if v.inst.terminated {
		return ErrTerminated
	}
	p.Sleep(v.cfg.IOLatency.Sample(v.rng))
	rate := v.cfg.ColdBps
	if v.warm[extent] {
		rate = v.cfg.WarmBps
	}
	v.warm[extent] = true
	if size > 0 {
		secs := float64(size) / float64(rate)
		p.Sleep(time.Duration(secs * float64(time.Second)))
	}
	return nil
}

// Write blocks for the time needed to write size bytes (cold throughput;
// writes go to the backing store) and warms the extent.
func (v *Volume) Write(p *sim.Proc, extent string, size int64) error {
	if v.inst.terminated {
		return ErrTerminated
	}
	p.Sleep(v.cfg.IOLatency.Sample(v.rng))
	if size > 0 {
		secs := float64(size) / float64(v.cfg.ColdBps)
		p.Sleep(time.Duration(secs * float64(time.Second)))
	}
	v.warm[extent] = true
	return nil
}

// Warm marks an extent as cached without simulating I/O (used to model
// pre-staged data sets).
func (v *Volume) Warm(extent string) { v.warm[extent] = true }

// IsWarm reports whether an extent is cached.
func (v *Volume) IsWarm(extent string) bool { return v.warm[extent] }
