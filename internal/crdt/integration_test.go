package crdt

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// TestDisorderlyCounterOverEventualStorage is §3.2's thesis as a test:
// stateless workers funnelling updates through *eventually consistent*
// storage produce a correct total when the shared state is a CRDT, even
// though reads may be stale and writes race. Workers read-merge-write a
// G-Counter with conditional puts, retrying on conflicts; staleness can
// cost retries, never correctness.
func TestDisorderlyCounterOverEventualStorage(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(88)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	cfg := kvstore.DefaultConfig()
	cfg.ReplicationLag = 200 * time.Millisecond // aggressive staleness
	table := kvstore.New("ddb", net, 9, rng.Fork(), cfg, pricing.Fall2018(), &pricing.Meter{})

	const workers = 5
	const incsPerWorker = 20
	var wg sim.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		node := net.NewNode(string(rune('a'+w)), 0, netsim.Mbps(538))
		replica := string(rune('a' + w))
		k.Spawn("worker", func(p *sim.Proc) {
			defer wg.Done()
			for i := 0; i < incsPerWorker; i++ {
				for {
					// Eventually consistent read (cheap, stale-able).
					cur := NewGCounter()
					var ver int64
					item, err := table.Get(p, node, "counter", false)
					switch {
					case err == nil:
						got, derr := UnmarshalGCounter(item.Value)
						if derr != nil {
							t.Errorf("decode: %v", derr)
							return
						}
						cur = got
						ver = item.Version
					case errors.Is(err, kvstore.ErrNotFound):
						// first writer
					default:
						t.Errorf("get: %v", err)
						return
					}
					cur.Inc(replica, 1)
					// A stale read gives a stale version: the CAS
					// fails and we retry with fresher state. A stale
					// *counter* state is harmless — our own slot is
					// monotone and Merge fixes the rest.
					if _, err := table.ConditionalPut(p, node, "counter", Marshal(cur), ver); err == nil {
						break
					}
					p.Sleep(time.Duration(10+w) * time.Millisecond)
				}
			}
		})
	}
	done := false
	k.Spawn("waiter", func(p *sim.Proc) {
		wg.Wait(p)
		done = true
	})
	for t0 := sim.Time(0); !done && t0 < sim.Time(10*time.Minute); t0 += sim.Time(time.Second) {
		k.RunUntil(t0)
	}
	if !done {
		t.Fatal("workers did not finish")
	}

	var total int64
	k.Spawn("reader", func(p *sim.Proc) {
		node := net.NewNode("reader", 0, netsim.Mbps(538))
		p.Sleep(time.Second) // let replication settle
		item, err := table.Get(p, node, "counter", true)
		if err != nil {
			t.Errorf("final read: %v", err)
			return
		}
		c, err := UnmarshalGCounter(item.Value)
		if err != nil {
			t.Errorf("final decode: %v", err)
			return
		}
		total = c.Value()
	})
	k.Run()
	if total != workers*incsPerWorker {
		t.Errorf("converged total = %d, want %d", total, workers*incsPerWorker)
	}
}

// TestLWWOverStaleReadsConverges shows the register variant: concurrent
// configuration writers through eventual storage settle on the highest-
// stamped value regardless of read staleness.
func TestLWWOverStaleReadsConverges(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(99)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	cfg := kvstore.DefaultConfig()
	cfg.ReplicationLag = 100 * time.Millisecond
	table := kvstore.New("ddb", net, 9, rng.Fork(), cfg, pricing.Fall2018(), &pricing.Meter{})

	writers := []struct {
		replica string
		stamp   int64
		val     string
	}{
		{"a", 3, "v3"}, {"b", 7, "v7"}, {"c", 5, "v5"},
	}
	var wg sim.WaitGroup
	for _, w := range writers {
		w := w
		wg.Add(1)
		node := net.NewNode("w-"+w.replica, 0, netsim.Mbps(538))
		k.Spawn("writer", func(p *sim.Proc) {
			defer wg.Done()
			for {
				var reg LWWRegister
				var ver int64
				if item, err := table.Get(p, node, "config", false); err == nil {
					if json0 := item.Value; json0 != nil {
						var cur LWWRegister
						if e := unmarshal(json0, &cur); e == nil {
							reg = cur
						}
					}
					ver = item.Version
				}
				reg.Set(w.replica, w.stamp, w.val)
				if _, err := table.ConditionalPut(p, node, "config", Marshal(&reg), ver); err == nil {
					return
				}
				p.Sleep(20 * time.Millisecond)
			}
		})
	}
	var final string
	k.Spawn("reader", func(p *sim.Proc) {
		wg.Wait(p)
		p.Sleep(time.Second)
		node := net.NewNode("reader", 0, netsim.Mbps(538))
		item, err := table.Get(p, node, "config", true)
		if err != nil {
			t.Errorf("final read: %v", err)
			return
		}
		var reg LWWRegister
		if e := unmarshal(item.Value, &reg); e != nil {
			t.Errorf("decode: %v", e)
			return
		}
		final = reg.Get()
	})
	k.Run()
	if final != "v7" {
		t.Errorf("converged value = %q, want v7 (highest stamp)", final)
	}
}

func unmarshal(data []byte, v any) error {
	return json.Unmarshal(data, v)
}
