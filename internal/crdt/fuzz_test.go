package crdt

// Native fuzz targets for the JSON round-trips. The statecache gossip and
// write-behind paths decode lattice state that came off the wire or out of
// the kvstore, so the decoders must (a) never panic on arbitrary bytes,
// (b) always return a usable value on success — no nil maps that would
// crash the next Inc/Add — and (c) be stable: decode(encode(decode(x)))
// reproduces the same state bytes.

import (
	"bytes"
	"testing"
)

func FuzzUnmarshalGCounter(f *testing.F) {
	seedCounter := NewGCounter()
	seedCounter.Inc("r1", 5)
	seedCounter.Inc("r2", 9)
	f.Add(Marshal(seedCounter))
	f.Add([]byte(`{"counts":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalGCounter(data)
		if err != nil {
			return
		}
		c.Inc("fuzz", 1) // must not panic: maps are always initialized
		c.Merge(c)       // self-merge is the identity
		before := c.Value()
		rt, err := UnmarshalGCounter(Marshal(c))
		if err != nil {
			t.Fatalf("re-decode of a valid counter failed: %v", err)
		}
		if rt.Value() != before {
			t.Fatalf("round trip changed value: %d != %d", rt.Value(), before)
		}
		if !bytes.Equal(Marshal(rt), Marshal(c)) {
			t.Fatal("round trip changed serialized state")
		}
	})
}

func FuzzUnmarshalPNCounter(f *testing.F) {
	seedCounter := NewPNCounter()
	seedCounter.Add("r1", 5)
	seedCounter.Add("r2", -9)
	f.Add(Marshal(seedCounter))
	f.Add([]byte(`{"p":null,"n":null}`))
	f.Add([]byte(`{"p":{"counts":{"a":1}}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalPNCounter(data)
		if err != nil {
			return
		}
		c.Add("fuzz", -1)
		c.Merge(c)
		before := c.Value()
		rt, err := UnmarshalPNCounter(Marshal(c))
		if err != nil {
			t.Fatalf("re-decode of a valid counter failed: %v", err)
		}
		if rt.Value() != before {
			t.Fatalf("round trip changed value: %d != %d", rt.Value(), before)
		}
		if !bytes.Equal(Marshal(rt), Marshal(c)) {
			t.Fatal("round trip changed serialized state")
		}
	})
}

func FuzzUnmarshalLWWRegister(f *testing.F) {
	seedReg := &LWWRegister{}
	seedReg.Set("r1", 42, "hello")
	f.Add(Marshal(seedReg))
	f.Add([]byte(`{"val":"x","stamp":-1,"replica":""}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalLWWRegister(data)
		if err != nil {
			return
		}
		r.Merge(r) // idempotent
		before := *r
		rt, err := UnmarshalLWWRegister(Marshal(r))
		if err != nil {
			t.Fatalf("re-decode of a valid register failed: %v", err)
		}
		if *rt != before {
			t.Fatalf("round trip changed register: %+v != %+v", *rt, before)
		}
	})
}

func FuzzUnmarshalORSet(f *testing.F) {
	seedSet := NewORSet()
	seedSet.Add("r1", "a")
	seedSet.Add("r2", "b")
	seedSet.Remove("a")
	f.Add(Marshal(seedSet))
	f.Add([]byte(`{"adds":{"x":{"r#1":true}},"dels":null}`))
	f.Add([]byte(`{"adds":{"x":{"weird-tag":true}}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalORSet(data)
		if err != nil {
			return
		}
		// The rebuilt tag counter must keep add-wins sound: re-adding an
		// element on behalf of a replica already present in the decoded
		// tags must mint a tag no tombstone covers.
		for _, e := range s.Elements() {
			_ = e
		}
		replica := "fuzz-replica"
		s.Add(replica, "reborn")
		if !s.Contains("reborn") {
			t.Fatal("fresh add not visible (tag collided with a tombstone)")
		}
		s.Merge(s)
		before := Marshal(s)
		rt, err := UnmarshalORSet(before)
		if err != nil {
			t.Fatalf("re-decode of a valid set failed: %v", err)
		}
		if !bytes.Equal(Marshal(rt), before) {
			t.Fatal("round trip changed serialized state")
		}
		// And the decoded set must behave identically on the next add.
		rt.Add(replica, "again")
		s.Add(replica, "again")
		if !bytes.Equal(Marshal(rt), Marshal(s)) {
			t.Fatal("decoded set minted a different tag than the original")
		}
	})
}
