// Package crdt implements the conflict-free replicated data types the
// paper's §3.2 ("Can Limitations Set Us Free?") points to as the healthy
// response to FaaS's disorderly, loosely consistent execution model —
// "this kind of 'disorderly' loosely-consistent model has been at the
// heart of a number of more general-purpose proposals for scalable,
// available program design", citing Shapiro et al.'s CRDTs.
//
// Four classic state-based CRDTs are provided — G-Counter, PN-Counter,
// LWW-Register and OR-Set — each a join-semilattice: Merge is commutative,
// associative and idempotent (verified by property tests), so replicas
// converge no matter how staleness, retries and reordering scramble
// delivery. That is exactly the guarantee that makes them safe to run over
// the simulated cloud's eventually consistent storage, where the paper's
// stateful patterns break.
package crdt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// GCounter is a grow-only counter: one monotone slot per replica.
type GCounter struct {
	Counts map[string]int64 `json:"counts"`
}

// NewGCounter returns an empty counter.
func NewGCounter() *GCounter {
	return &GCounter{Counts: make(map[string]int64)}
}

// Inc adds n (n >= 0) on behalf of replica.
func (c *GCounter) Inc(replica string, n int64) {
	if n < 0 {
		panic("crdt: GCounter cannot decrease")
	}
	c.Counts[replica] += n
}

// Value returns the counter total.
func (c *GCounter) Value() int64 {
	var sum int64
	for _, v := range c.Counts {
		sum += v
	}
	return sum
}

// Merge joins other into c (pointwise max).
func (c *GCounter) Merge(other *GCounter) {
	for r, v := range other.Counts {
		if v > c.Counts[r] {
			c.Counts[r] = v
		}
	}
}

// PNCounter supports increments and decrements as two G-Counters.
type PNCounter struct {
	P *GCounter `json:"p"`
	N *GCounter `json:"n"`
}

// NewPNCounter returns an empty counter.
func NewPNCounter() *PNCounter {
	return &PNCounter{P: NewGCounter(), N: NewGCounter()}
}

// Add applies a signed delta on behalf of replica.
func (c *PNCounter) Add(replica string, n int64) {
	if n >= 0 {
		c.P.Inc(replica, n)
	} else {
		c.N.Inc(replica, -n)
	}
}

// Value returns the net total.
func (c *PNCounter) Value() int64 { return c.P.Value() - c.N.Value() }

// Merge joins other into c.
func (c *PNCounter) Merge(other *PNCounter) {
	c.P.Merge(other.P)
	c.N.Merge(other.N)
}

// LWWRegister is a last-writer-wins register ordered by (timestamp,
// replica) so concurrent writes resolve deterministically.
type LWWRegister struct {
	Val     string `json:"val"`
	Stamp   int64  `json:"stamp"`
	Replica string `json:"replica"`
}

// Set writes val at the given timestamp on behalf of replica; writes that
// do not supersede the current state are ignored.
func (r *LWWRegister) Set(replica string, stamp int64, val string) {
	if r.wins(stamp, replica, val) {
		r.Val, r.Stamp, r.Replica = val, stamp, replica
	}
}

// wins reports whether (stamp, replica, val) supersedes the current state.
// The register is the join-semilattice of lexicographic maxima: timestamp
// first, then replica id, then — so that duplicated (stamp, replica) pairs
// still converge — the value itself.
func (r *LWWRegister) wins(stamp int64, replica, val string) bool {
	switch {
	case stamp != r.Stamp:
		return stamp > r.Stamp
	case replica != r.Replica:
		return replica > r.Replica
	default:
		return val > r.Val
	}
}

// Get returns the current value.
func (r *LWWRegister) Get() string { return r.Val }

// Merge joins other into r.
func (r *LWWRegister) Merge(other *LWWRegister) {
	if r.wins(other.Stamp, other.Replica, other.Val) {
		r.Val, r.Stamp, r.Replica = other.Val, other.Stamp, other.Replica
	}
}

// ORSet is an observed-remove set: adds are tagged uniquely per replica,
// removes tombstone the tags they have observed, so add/remove of the same
// element on different replicas resolves add-wins.
type ORSet struct {
	Adds map[string]map[string]bool `json:"adds"` // element -> tag set
	Dels map[string]map[string]bool `json:"dels"` // element -> removed tags
	seq  int64
}

// NewORSet returns an empty set.
func NewORSet() *ORSet {
	return &ORSet{
		Adds: make(map[string]map[string]bool),
		Dels: make(map[string]map[string]bool),
	}
}

// Add inserts element on behalf of replica.
func (s *ORSet) Add(replica, element string) {
	s.seq++
	tag := fmt.Sprintf("%s#%d", replica, s.seq)
	if s.Adds[element] == nil {
		s.Adds[element] = make(map[string]bool)
	}
	s.Adds[element][tag] = true
}

// Remove deletes element by tombstoning every tag observed so far;
// concurrent unseen adds survive (add-wins).
func (s *ORSet) Remove(element string) {
	for tag := range s.Adds[element] {
		if s.Dels[element] == nil {
			s.Dels[element] = make(map[string]bool)
		}
		s.Dels[element][tag] = true
	}
}

// Contains reports membership: any live (non-tombstoned) tag.
func (s *ORSet) Contains(element string) bool {
	for tag := range s.Adds[element] {
		if !s.Dels[element][tag] {
			return true
		}
	}
	return false
}

// Elements returns the live membership, sorted.
func (s *ORSet) Elements() []string {
	var out []string
	for e := range s.Adds {
		if s.Contains(e) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// Merge joins other into s (union of adds and tombstones).
func (s *ORSet) Merge(other *ORSet) {
	for e, tags := range other.Adds {
		if s.Adds[e] == nil {
			s.Adds[e] = make(map[string]bool)
		}
		for t := range tags {
			s.Adds[e][t] = true
		}
	}
	for e, tags := range other.Dels {
		if s.Dels[e] == nil {
			s.Dels[e] = make(map[string]bool)
		}
		for t := range tags {
			s.Dels[e][t] = true
		}
	}
	if other.seq > s.seq {
		s.seq = other.seq
	}
}

// Marshal serializes a CRDT state for storage (the blackboard pattern).
func Marshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("crdt: marshal: " + err.Error())
	}
	return b
}

// UnmarshalGCounter decodes a stored G-Counter.
func UnmarshalGCounter(data []byte) (*GCounter, error) {
	c := NewGCounter()
	if err := json.Unmarshal(data, c); err != nil {
		return nil, err
	}
	if c.Counts == nil {
		c.Counts = make(map[string]int64)
	}
	return c, nil
}

// UnmarshalPNCounter decodes a stored PN-Counter.
func UnmarshalPNCounter(data []byte) (*PNCounter, error) {
	c := NewPNCounter()
	if err := json.Unmarshal(data, c); err != nil {
		return nil, err
	}
	if c.P == nil || c.P.Counts == nil {
		c.P = NewGCounter()
	}
	if c.N == nil || c.N.Counts == nil {
		c.N = NewGCounter()
	}
	return c, nil
}

// UnmarshalLWWRegister decodes a stored LWW register.
func UnmarshalLWWRegister(data []byte) (*LWWRegister, error) {
	r := &LWWRegister{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, err
	}
	return r, nil
}

// UnmarshalORSet decodes a stored OR-Set. The tag sequence counter is not
// part of the wire form, so it is rebuilt as the maximum sequence number
// appearing in any stored tag: a decoded set that keeps being mutated on
// behalf of the same replica must not mint tags that collide with (possibly
// tombstoned) ones it already issued, or add-wins breaks.
func UnmarshalORSet(data []byte) (*ORSet, error) {
	s := NewORSet()
	if err := json.Unmarshal(data, s); err != nil {
		return nil, err
	}
	if s.Adds == nil {
		s.Adds = make(map[string]map[string]bool)
	}
	if s.Dels == nil {
		s.Dels = make(map[string]map[string]bool)
	}
	// Scan tombstones too: a (corrupt or partial) state can carry removed
	// tags with no surviving add, and a re-minted colliding tag would be
	// born dead.
	for _, byElem := range []map[string]map[string]bool{s.Adds, s.Dels} {
		for _, tags := range byElem {
			for tag := range tags {
				if n := tagSeq(tag); n > s.seq {
					s.seq = n
				}
			}
		}
	}
	return s, nil
}

// tagSeq extracts the sequence number from an ORSet tag ("replica#N"),
// returning 0 for tags in any other shape.
func tagSeq(tag string) int64 {
	i := strings.LastIndexByte(tag, '#')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(tag[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}
