package crdt

import (
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func TestGCounterBasics(t *testing.T) {
	c := NewGCounter()
	c.Inc("a", 3)
	c.Inc("b", 4)
	c.Inc("a", 1)
	if c.Value() != 8 {
		t.Errorf("Value = %d, want 8", c.Value())
	}
}

func TestGCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative increment accepted")
		}
	}()
	NewGCounter().Inc("a", -1)
}

func TestGCounterMergeTakesMax(t *testing.T) {
	a, b := NewGCounter(), NewGCounter()
	a.Inc("r1", 5)
	b.Inc("r1", 3) // stale view of r1
	b.Inc("r2", 2)
	a.Merge(b)
	if a.Value() != 7 { // max(5,3) + 2
		t.Errorf("merged value = %d, want 7", a.Value())
	}
}

func TestPNCounter(t *testing.T) {
	c := NewPNCounter()
	c.Add("a", 10)
	c.Add("b", -4)
	c.Add("a", -1)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestLWWRegister(t *testing.T) {
	var r LWWRegister
	r.Set("a", 10, "first")
	r.Set("b", 5, "stale") // older timestamp: ignored
	if r.Get() != "first" {
		t.Errorf("Get = %q", r.Get())
	}
	r.Set("b", 20, "second")
	if r.Get() != "second" {
		t.Errorf("Get = %q", r.Get())
	}
	// Tie on timestamp: higher replica id wins, deterministically.
	var x, y LWWRegister
	x.Set("a", 7, "from-a")
	y.Set("b", 7, "from-b")
	x.Merge(&y)
	y2 := LWWRegister{}
	y2.Set("b", 7, "from-b")
	x2 := LWWRegister{}
	x2.Set("a", 7, "from-a")
	y2.Merge(&x2)
	if x.Get() != y2.Get() {
		t.Errorf("tie resolution diverged: %q vs %q", x.Get(), y2.Get())
	}
}

func TestORSetAddWins(t *testing.T) {
	// Replica A adds x; replica B (having seen nothing) also adds x and
	// then A removes its observed copy. After merge, B's concurrent add
	// survives — add-wins semantics.
	a, b := NewORSet(), NewORSet()
	a.Add("a", "x")
	a.Remove("x")
	b.Add("b", "x")
	a.Merge(b)
	if !a.Contains("x") {
		t.Error("concurrent add did not win over observed remove")
	}
}

func TestORSetRemoveObserved(t *testing.T) {
	s := NewORSet()
	s.Add("a", "x")
	s.Add("a", "y")
	s.Remove("x")
	if s.Contains("x") {
		t.Error("observed remove failed")
	}
	els := s.Elements()
	if len(els) != 1 || els[0] != "y" {
		t.Errorf("Elements = %v", els)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := NewPNCounter()
	c.Add("a", 7)
	c.Add("b", -2)
	got, err := UnmarshalPNCounter(Marshal(c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Value() != 5 {
		t.Errorf("round-tripped value = %d", got.Value())
	}
	g := NewGCounter()
	g.Inc("a", 3)
	got2, err := UnmarshalGCounter(Marshal(g))
	if err != nil || got2.Value() != 3 {
		t.Errorf("gcounter round trip: %v, %v", got2, err)
	}
	if _, err := UnmarshalGCounter([]byte("not json")); err == nil {
		t.Error("bad input accepted")
	}
}

// --- semilattice laws, checked by property tests ---

func randGCounter(rng *simrand.RNG) *GCounter {
	c := NewGCounter()
	replicas := []string{"r1", "r2", "r3"}
	for i := 0; i < rng.Intn(6); i++ {
		c.Inc(replicas[rng.Intn(3)], int64(rng.Intn(10)))
	}
	return c
}

func cloneG(c *GCounter) *GCounter {
	out := NewGCounter()
	out.Merge(c)
	return out
}

func equalG(a, b *GCounter) bool {
	if len(a.Counts) != len(b.Counts) {
		// Zero entries may differ structurally; compare semantically.
	}
	keys := map[string]bool{}
	for k := range a.Counts {
		keys[k] = true
	}
	for k := range b.Counts {
		keys[k] = true
	}
	for k := range keys {
		if a.Counts[k] != b.Counts[k] {
			return false
		}
	}
	return true
}

func TestQuickGCounterMergeLaws(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := simrand.New(seed)
		a, b, c := randGCounter(rng), randGCounter(rng), randGCounter(rng)

		// Commutativity: a⊔b == b⊔a
		ab := cloneG(a)
		ab.Merge(b)
		ba := cloneG(b)
		ba.Merge(a)
		if !equalG(ab, ba) {
			return false
		}
		// Associativity: (a⊔b)⊔c == a⊔(b⊔c)
		abc1 := cloneG(ab)
		abc1.Merge(c)
		bc := cloneG(b)
		bc.Merge(c)
		abc2 := cloneG(a)
		abc2.Merge(bc)
		if !equalG(abc1, abc2) {
			return false
		}
		// Idempotence: a⊔a == a
		aa := cloneG(a)
		aa.Merge(a)
		return equalG(aa, a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickLWWConvergence(t *testing.T) {
	// Any interleaving of the same writes converges to the same value.
	prop := func(seed uint64) bool {
		rng := simrand.New(seed)
		type w struct {
			replica string
			stamp   int64
			val     string
		}
		var writes []w
		for i := 0; i < rng.Intn(8)+2; i++ {
			writes = append(writes, w{
				replica: string(rune('a' + rng.Intn(3))),
				stamp:   int64(rng.Intn(5)),
				val:     string(rune('A' + rng.Intn(26))),
			})
		}
		apply := func(order []int) string {
			var r LWWRegister
			for _, i := range order {
				r.Set(writes[i].replica, writes[i].stamp, writes[i].val)
			}
			return r.Get()
		}
		fwd := make([]int, len(writes))
		rev := make([]int, len(writes))
		for i := range writes {
			fwd[i] = i
			rev[len(writes)-1-i] = i
		}
		shuffled := rng.Perm(len(writes))
		base := apply(fwd)
		return apply(rev) == base && apply(shuffled) == base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickORSetMergeConverges(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := simrand.New(seed)
		a, b := NewORSet(), NewORSet()
		elements := []string{"x", "y", "z"}
		for i := 0; i < rng.Intn(10)+2; i++ {
			e := elements[rng.Intn(3)]
			switch rng.Intn(3) {
			case 0:
				a.Add("a", e)
			case 1:
				b.Add("b", e)
			default:
				if rng.Intn(2) == 0 {
					a.Remove(e)
				} else {
					b.Remove(e)
				}
			}
		}
		// Merge both ways; memberships must agree.
		am := NewORSet()
		am.Merge(a)
		am.Merge(b)
		bm := NewORSet()
		bm.Merge(b)
		bm.Merge(a)
		ae, be := am.Elements(), bm.Elements()
		if len(ae) != len(be) {
			return false
		}
		for i := range ae {
			if ae[i] != be[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
