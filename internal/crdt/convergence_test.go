package crdt

// Randomized merge-order convergence: N replicas of each lattice apply a
// random op stream, deliveries are restricted to partition-mates for the
// first phase and then run in arbitrary healed order, and every replica
// must end at the same state — the counters at the exact arithmetic
// reference. This is the property the statecache gossip leans on: no
// matter how staleness, retries and reordering scramble delivery, joins
// commute.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestRandomizedMergeOrderConvergence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			testMergeOrderConvergence(t, seed)
		})
	}
}

func testMergeOrderConvergence(t *testing.T, seed int64) {
	const (
		replicas = 6
		ops      = 300
	)
	rng := rand.New(rand.NewSource(seed))

	gs := make([]*GCounter, replicas)
	pns := make([]*PNCounter, replicas)
	regs := make([]*LWWRegister, replicas)
	sets := make([]*ORSet, replicas)
	for i := range gs {
		gs[i] = NewGCounter()
		pns[i] = NewPNCounter()
		regs[i] = &LWWRegister{}
		sets[i] = NewORSet()
	}
	var gRef, pnRef int64
	regRef := &LWWRegister{}
	added := map[string]bool{}
	removed := map[string]bool{}

	id := func(i int) string { return fmt.Sprintf("r%d", i) }

	// Phase 1: random ops with deliveries (pairwise merges) only inside
	// each partition half.
	for op := 0; op < ops; op++ {
		i := rng.Intn(replicas)
		switch rng.Intn(5) {
		case 0:
			n := int64(rng.Intn(9))
			gs[i].Inc(id(i), n)
			gRef += n
		case 1:
			d := int64(rng.Intn(17) - 8)
			pns[i].Add(id(i), d)
			pnRef += d
		case 2:
			val := fmt.Sprintf("v%d", op)
			stamp := int64(op / 3) // deliberate stamp collisions
			regs[i].Set(id(i), stamp, val)
			regRef.Set(id(i), stamp, val)
		case 3:
			elem := fmt.Sprintf("e%d", rng.Intn(10))
			if rng.Float64() < 0.7 {
				sets[i].Add(id(i), elem)
				added[elem] = true
			} else {
				sets[i].Remove(elem)
				if sets[i].Contains(elem) {
					// Remove only tombstones observed tags; if unseen adds
					// survive elsewhere this element may stay, so only
					// locally-observed removes go into the reference.
					t.Fatalf("remove left locally observed element %q", elem)
				}
				removed[elem] = true
			}
		default:
			// A delivery: j learns from k, same partition half only.
			j, k := rng.Intn(replicas), rng.Intn(replicas)
			if (j < replicas/2) == (k < replicas/2) {
				gs[j].Merge(gs[k])
				pns[j].Merge(pns[k])
				regs[j].Merge(regs[k])
				sets[j].Merge(sets[k])
			}
		}
	}

	// Phase 2: heal — deliver every replica's state to every other in a
	// shuffled order, twice (merges are idempotent; a second pass makes
	// the mesh transitive regardless of the shuffle).
	for pass := 0; pass < 2; pass++ {
		order := rng.Perm(replicas * replicas)
		for _, x := range order {
			j, k := x/replicas, x%replicas
			gs[j].Merge(gs[k])
			pns[j].Merge(pns[k])
			regs[j].Merge(regs[k])
			sets[j].Merge(sets[k])
		}
	}

	for i := 0; i < replicas; i++ {
		if got := gs[i].Value(); got != gRef {
			t.Errorf("replica %d G-counter = %d, want %d", i, got, gRef)
		}
		if got := pns[i].Value(); got != pnRef {
			t.Errorf("replica %d PN-counter = %d, want %d", i, got, pnRef)
		}
		if regRef.Stamp != 0 || regRef.Val != "" {
			if regs[i].Get() != regRef.Get() {
				t.Errorf("replica %d register = %q, want %q", i, regs[i].Get(), regRef.Get())
			}
		}
		if !reflect.DeepEqual(sets[i].Elements(), sets[0].Elements()) {
			t.Errorf("replica %d set diverged: %v != %v", i, sets[i].Elements(), sets[0].Elements())
		}
	}
	for _, e := range sets[0].Elements() {
		if !added[e] {
			t.Errorf("set invented element %q", e)
		}
	}
	for e := range added {
		if !removed[e] && !sets[0].Contains(e) {
			t.Errorf("set lost element %q (added, never removed)", e)
		}
	}
}
