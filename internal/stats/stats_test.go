package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func recorderWith(ds ...time.Duration) *Recorder {
	r := NewRecorder("t")
	for _, d := range ds {
		r.Add(d)
	}
	return r
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder("empty")
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 ||
		r.Median() != 0 || r.Stddev() != 0 || r.Sum() != 0 {
		t.Error("empty recorder should return zeros everywhere")
	}
}

func TestMeanMinMax(t *testing.T) {
	r := recorderWith(time.Second, 3*time.Second, 2*time.Second)
	if r.Mean() != 2*time.Second {
		t.Errorf("Mean = %v, want 2s", r.Mean())
	}
	if r.Min() != time.Second || r.Max() != 3*time.Second {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if r.Sum() != 6*time.Second {
		t.Errorf("Sum = %v, want 6s", r.Sum())
	}
}

func TestAddAfterSortStillCorrect(t *testing.T) {
	r := recorderWith(3*time.Second, time.Second)
	if r.Min() != time.Second {
		t.Fatalf("Min = %v", r.Min())
	}
	r.Add(500 * time.Millisecond) // after a sort happened
	if r.Min() != 500*time.Millisecond {
		t.Errorf("Min after new sample = %v, want 500ms", r.Min())
	}
}

func TestPercentiles(t *testing.T) {
	r := NewRecorder("p")
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	if got := r.Percentile(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	med := r.Median()
	if med < 50*time.Millisecond || med > 51*time.Millisecond {
		t.Errorf("median = %v, want ~50.5ms", med)
	}
	p99 := r.Percentile(99)
	if p99 < 99*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
}

func TestStddev(t *testing.T) {
	r := recorderWith(2*time.Second, 4*time.Second, 4*time.Second,
		4*time.Second, 5*time.Second, 5*time.Second, 7*time.Second, 9*time.Second)
	// Known population stddev of {2,4,4,4,5,5,7,9} is 2.
	if got := r.Stddev(); got < 1999*time.Millisecond || got > 2001*time.Millisecond {
		t.Errorf("Stddev = %v, want 2s", got)
	}
}

func TestStringContainsName(t *testing.T) {
	r := recorderWith(time.Second)
	if s := r.String(); len(s) == 0 || s[0] != 't' {
		t.Errorf("String = %q", s)
	}
}

// Property: min <= p50 <= mean-ish bounds <= max; percentile monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder("q")
		for _, v := range raw {
			r.Add(time.Duration(v))
		}
		prev := r.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := r.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return r.Min() <= r.Median() && r.Median() <= r.Max() &&
			r.Min() <= r.Mean() && r.Mean() <= r.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// BenchmarkRecorderPercentile measures the percentile path on a recorder
// the size of a large experiment (100k samples), including the re-sort
// triggered by interleaved Adds.
func BenchmarkRecorderPercentile(b *testing.B) {
	r := NewRecorder("bench")
	for i := 0; i < 100_000; i++ {
		r.Add(time.Duration((i*2654435761)%1_000_000) * time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			r.Add(time.Duration(i) * time.Microsecond) // force a re-sort
		}
		if r.Percentile(99) < 0 {
			b.Fatal("negative percentile")
		}
	}
}

// BenchmarkRecorderMean measures the running-sum Mean (formerly an O(n)
// scan per call).
func BenchmarkRecorderMean(b *testing.B) {
	r := NewRecorder("bench")
	for i := 0; i < 100_000; i++ {
		r.Add(time.Duration(i) * time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Mean() < 0 {
			b.Fatal("negative mean")
		}
	}
}

// Large-magnitude, low-spread samples: the one-pass E[x^2]-mean^2 form
// cancels catastrophically here; Welford must not.
func TestStddevLargeMagnitudeSmallSpread(t *testing.T) {
	r := NewRecorder("tight")
	base := 465 * time.Minute
	for i := 0; i < 10_000; i++ {
		r.Add(base + time.Duration(i%3-1)*time.Millisecond) // -1ms, 0, +1ms
	}
	got := r.Stddev()
	// True population stddev of {-1ms, 0, +1ms} uniform-ish is ~0.816ms.
	if got < 800*time.Microsecond || got > 835*time.Microsecond {
		t.Errorf("Stddev = %v, want ~816µs (catastrophic cancellation?)", got)
	}
}

// TestResetKeepsCapacity mirrors the sim ring capacity-reuse tests: Reset
// must empty the recorder (all accessors back to zero-state), keep the
// backing samples array so the next point's Adds don't reallocate, and
// leave subsequent statistics identical to a fresh recorder's.
func TestResetKeepsCapacity(t *testing.T) {
	r := NewRecorder("reuse")
	for i := 0; i < 1000; i++ {
		r.Add(time.Duration(i+1) * time.Millisecond)
	}
	_ = r.Percentile(99) // force the sorted state Reset must clear
	backing := &r.samples[0]
	grown := cap(r.samples)

	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 ||
		r.Median() != 0 || r.Stddev() != 0 || r.Sum() != 0 {
		t.Error("Reset recorder should return zeros everywhere")
	}
	if cap(r.samples) != grown {
		t.Fatalf("Reset shrank capacity: %d -> %d", grown, cap(r.samples))
	}
	if r.Name() != "reuse" {
		t.Errorf("Reset lost the name: %q", r.Name())
	}

	fresh := NewRecorder("fresh")
	for i := 0; i < 100; i++ {
		d := time.Duration((i*2654435761)%977) * time.Millisecond
		r.Add(d)
		fresh.Add(d)
	}
	if &r.samples[0] != backing {
		t.Error("refilling after Reset reallocated the samples array")
	}
	if r.Mean() != fresh.Mean() || r.Median() != fresh.Median() ||
		r.Percentile(99) != fresh.Percentile(99) || r.Stddev() != fresh.Stddev() ||
		r.Sum() != fresh.Sum() || r.Min() != fresh.Min() || r.Max() != fresh.Max() {
		t.Errorf("reused recorder diverged from fresh: %v vs %v", r, fresh)
	}
}
