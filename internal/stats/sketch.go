package stats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Sketch is a fixed-memory Summary using HDR-histogram-style log-linear
// bucketing: each power-of-two octave of the duration range splits into
// 2^subBits equal-width sub-buckets, so values below 2^subBits ns are exact
// and every larger bucket's midpoint is within 2^-(subBits+1) relative
// error of any value it absorbs. Count, Sum, Min, Max, Mean, and Stddev are
// tracked exactly alongside the buckets; only Percentile approximates.
//
// The bucket array grows lazily to the largest observed octave and tops out
// near 30 KB even for full int64 range — a few KB for realistic latency
// ranges — so a million-user run costs the same memory as a ten-sample one.
// Add is O(1) and allocation-free once the array covers the observed range.
type Sketch struct {
	name     string
	subBits  uint
	subMask  uint64
	counts   []int64
	count    int
	min, max time.Duration
	// Exact moments, maintained with the same arithmetic as Recorder.Add so
	// Mean/Sum/Stddev agree bit-for-bit with the exact path.
	wmean, m2 float64
	sumExact  time.Duration
}

var _ Summary = (*Sketch)(nil)

// DefaultSketchError is the relative-error bound NewSketch configures:
// subBits=6 gives 2^-7 ≈ 0.78%, inside the ≤1% target.
const DefaultSketchError = 0.01

// NewSketch returns an empty sketch labeled name with the default ≤1%
// percentile relative-error bound.
func NewSketch(name string) *Sketch {
	return NewSketchRelErr(name, DefaultSketchError)
}

// NewSketchRelErr returns an empty sketch whose percentile relative error
// is at most relErr, which must be in (0, 0.5]. Tighter bounds cost one
// extra sub-bucket bit per halving: memory doubles as relErr halves.
func NewSketchRelErr(name string, relErr float64) *Sketch {
	if relErr <= 0 || relErr > 0.5 {
		panic(fmt.Sprintf("stats: sketch relative error %v outside (0, 0.5]", relErr))
	}
	// Smallest b with 2^-(b+1) <= relErr.
	b := uint(0)
	for 1/float64(uint64(2)<<b) > relErr {
		b++
	}
	return &Sketch{name: name, subBits: b, subMask: uint64(1)<<b - 1}
}

// Name returns the sketch's label.
func (s *Sketch) Name() string { return s.name }

// RelativeError returns the configured percentile error bound 2^-(subBits+1).
func (s *Sketch) RelativeError() float64 {
	return 1 / float64(uint64(2)<<s.subBits)
}

// Footprint returns the current bucket-array size in bytes — the part of
// the sketch that scales with observed range rather than sample count.
func (s *Sketch) Footprint() int {
	return len(s.counts) * 8
}

// bucketIndex maps a non-negative duration to its bucket. Group 0 holds the
// exact values [0, 2^subBits); group g >= 1 covers one octave split into
// 2^subBits sub-buckets of width 2^(g-1).
func (s *Sketch) bucketIndex(v uint64) int {
	if v < uint64(1)<<s.subBits {
		return int(v)
	}
	e := uint(bits.Len64(v)) - 1
	g := e - s.subBits + 1
	sub := (v >> (e - s.subBits)) & s.subMask
	return int(g<<s.subBits) + int(sub)
}

// bucketValue returns the representative (midpoint) duration for a bucket,
// the inverse of bucketIndex up to half a bucket width.
func (s *Sketch) bucketValue(index int) time.Duration {
	g := uint(index) >> s.subBits
	if g == 0 {
		return time.Duration(index)
	}
	sub := uint64(index) & s.subMask
	lower := (uint64(1)<<s.subBits + sub) << (g - 1)
	width := uint64(1) << (g - 1)
	return time.Duration(lower + width/2)
}

// Add records one sample in O(1), allocation-free once the bucket array
// spans the observed range. Negative durations (which Recorder stores
// verbatim but no experiment produces) clamp into bucket 0; Min still
// reports the true value.
func (s *Sketch) Add(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	i := s.bucketIndex(v)
	if i >= len(s.counts) {
		grown := make([]int64, i+1)
		copy(grown, s.counts)
		s.counts = grown
	}
	s.counts[i]++
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if s.count == 0 || d > s.max {
		s.max = d
	}
	s.count++
	f := float64(d)
	delta := f - s.wmean
	s.wmean += delta / float64(s.count)
	s.m2 += delta * (f - s.wmean)
	s.sumExact += d
}

// Reset empties the sketch while retaining the bucket array — the same
// capacity-retention contract as Recorder.Reset, so a sweep worker reusing
// one sketch across points never re-grows the array.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.count = 0
	s.min = 0
	s.max = 0
	s.wmean = 0
	s.m2 = 0
	s.sumExact = 0
}

// Count returns the number of samples.
func (s *Sketch) Count() int { return s.count }

// Mean returns the exact arithmetic mean (0 with no samples), computed
// identically to Recorder.Mean.
func (s *Sketch) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return meanOf(s.sumExact, s.count)
}

// Min returns the exact smallest sample (0 with no samples).
func (s *Sketch) Min() time.Duration { return s.min }

// Max returns the exact largest sample (0 with no samples).
func (s *Sketch) Max() time.Duration { return s.max }

// Percentile returns the p-th percentile (0 <= p <= 100) with the same
// nearest-rank interpolation as Recorder, evaluated over bucket midpoints
// and clamped to the exact [Min, Max] envelope; the result is within
// RelativeError of the exact recorder's answer. It returns 0 with no
// samples.
func (s *Sketch) Percentile(p float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := p / 100 * float64(s.count-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	loV := s.valueAtRank(lo)
	v := loV
	if hi != lo {
		hiV := s.valueAtRank(hi)
		frac := rank - float64(lo)
		v = loV + time.Duration(frac*float64(hiV-loV))
	}
	// Bucket midpoints can poke past the true extremes by half a width;
	// the exact envelope is free, so never report outside it.
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// valueAtRank returns the representative duration of the bucket holding
// the sample at the given zero-based rank in sorted order.
func (s *Sketch) valueAtRank(rank int) time.Duration {
	cum := 0
	for i, c := range s.counts {
		cum += int(c)
		if cum > rank {
			return s.bucketValue(i)
		}
	}
	return s.max
}

// Median returns the 50th percentile.
func (s *Sketch) Median() time.Duration { return s.Percentile(50) }

// Stddev returns the exact population standard deviation (0 with <2
// samples), computed identically to Recorder.Stddev.
func (s *Sketch) Stddev() time.Duration {
	if s.count < 2 {
		return 0
	}
	return time.Duration(math.Sqrt(s.m2 / float64(s.count)))
}

// Sum returns the exact total of all samples.
func (s *Sketch) Sum() time.Duration { return s.sumExact }

// String summarizes the distribution in the same format as Recorder.
func (s *Sketch) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		s.name, s.Count(), s.Mean(), s.Median(), s.Percentile(99), s.Min(), s.Max())
}
