package stats

import (
	"math"
	"testing"
	"time"

	"repro/internal/simrand"
)

// streamKind draws one sample of the named distribution, covering the
// shapes experiments actually produce: exponential service tails, uniform
// spreads, and the bimodal cold/warm split.
func streamSample(kind int, rng *simrand.RNG) time.Duration {
	switch kind % 3 {
	case 0: // exponential, ~5ms mean
		return time.Duration(rng.ExpFloat64() * 5 * float64(time.Millisecond))
	case 1: // uniform over [0, 1s)
		return time.Duration(rng.Float64() * float64(time.Second))
	default: // bimodal: 90% warm ~1ms, 10% cold ~1s
		if rng.Float64() < 0.9 {
			return time.Duration(rng.ExpFloat64() * float64(time.Millisecond))
		}
		return time.Duration(rng.ExpFloat64() * float64(time.Second))
	}
}

// TestSketchEquivalence is the randomized equivalence property suite:
// seeds 1–20 over mixed exponential/uniform/bimodal streams at 10³–10⁵
// samples (10⁶ in TestSketchEquivalenceMillion) assert that the sketch
// matches the exact recorder exactly on Count/Sum/Min/Max/Mean/Stddev and
// within the configured relative-error bound on every checked percentile.
func TestSketchEquivalence(t *testing.T) {
	sizes := []int{1_000, 10_000, 100_000}
	for seed := uint64(1); seed <= 20; seed++ {
		n := sizes[int(seed)%len(sizes)]
		checkSketchMatchesExact(t, seed, int(seed), n)
	}
}

// TestSketchEquivalenceMillion extends the equivalence suite to the 10⁶
// sample count the million-user experiment produces per shard.
func TestSketchEquivalenceMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁶-sample equivalence stream in -short mode")
	}
	checkSketchMatchesExact(t, 1, 2, 1_000_000)
}

func checkSketchMatchesExact(t *testing.T, seed uint64, kind, n int) {
	t.Helper()
	rng := simrand.New(seed)
	r := NewRecorder("exact")
	s := NewSketch("sketch")
	for i := 0; i < n; i++ {
		d := streamSample(kind, rng)
		r.Add(d)
		s.Add(d)
	}
	if s.Count() != r.Count() || s.Sum() != r.Sum() ||
		s.Min() != r.Min() || s.Max() != r.Max() {
		t.Fatalf("seed %d n %d: exact fields diverged: sketch %v vs recorder %v", seed, n, s, r)
	}
	if s.Mean() != r.Mean() || s.Stddev() != r.Stddev() {
		t.Errorf("seed %d n %d: moments diverged: mean %v/%v stddev %v/%v",
			seed, n, s.Mean(), r.Mean(), s.Stddev(), r.Stddev())
	}
	relErr := s.RelativeError()
	for _, p := range []float64{0, 1, 25, 50, 75, 90, 99, 99.9, 100} {
		ex := r.Percentile(p)
		sk := s.Percentile(p)
		// The sketch's interpolation endpoints are each within relErr of
		// the exact samples at the bracketing ranks, so the interpolated
		// value is within relErr of the larger bracketing sample (plus 1ns
		// of integer truncation).
		r.sort()
		rank := p / 100 * float64(r.Count()-1)
		hi := int(math.Ceil(rank))
		if hi >= r.Count() {
			hi = r.Count() - 1
		}
		tol := time.Duration(relErr*float64(r.samples[hi])) + time.Nanosecond
		if diff := sk - ex; diff < -tol || diff > tol {
			t.Errorf("seed %d n %d p%g: sketch %v vs exact %v exceeds tolerance %v",
				seed, n, p, sk, ex, tol)
		}
	}
}

func TestEmptySketch(t *testing.T) {
	s := NewSketch("empty")
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Median() != 0 || s.Stddev() != 0 || s.Sum() != 0 || s.Percentile(99) != 0 {
		t.Error("empty sketch should return zeros everywhere")
	}
	if s.Name() != "empty" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestSketchRelErrSelection(t *testing.T) {
	if got := NewSketch("d").RelativeError(); got > DefaultSketchError {
		t.Errorf("default RelativeError = %v, want <= %v", got, DefaultSketchError)
	}
	// 1% requires subBits=6: 2^-7 = 0.78%; 2^-6 = 1.5625% would miss.
	if got := NewSketchRelErr("e", 0.01).RelativeError(); got != 1.0/128 {
		t.Errorf("RelativeError(0.01) = %v, want 1/128", got)
	}
	// Looser bound: 2^-1 = 50% needs no sub-bucketing at all.
	if got := NewSketchRelErr("l", 0.5).RelativeError(); got != 0.5 {
		t.Errorf("RelativeError(0.5) = %v, want 0.5", got)
	}
	for _, bad := range []float64{0, -0.01, 0.51, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSketchRelErr(%v) should panic", bad)
				}
			}()
			NewSketchRelErr("bad", bad)
		}()
	}
}

// Small values (below 2^subBits ns) land in exact unit-width buckets, so
// percentiles there are exact, not just within relErr.
func TestSketchSmallValuesExact(t *testing.T) {
	r := NewRecorder("exact")
	s := NewSketch("sketch")
	for i := 0; i < 60; i++ {
		d := time.Duration(i)
		r.Add(d)
		s.Add(d)
	}
	for _, p := range []float64{0, 10, 50, 90, 100} {
		if s.Percentile(p) != r.Percentile(p) {
			t.Errorf("p%g: sketch %v vs exact %v on sub-octave values",
				p, s.Percentile(p), r.Percentile(p))
		}
	}
}

// Negative durations clamp into bucket 0 but Min reports the true value
// and the exact envelope bounds percentiles below.
func TestSketchNegativeDurations(t *testing.T) {
	s := NewSketch("neg")
	s.Add(-time.Second)
	s.Add(time.Second)
	if s.Min() != -time.Second || s.Max() != time.Second {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 0 || s.Count() != 2 {
		t.Errorf("Sum/Count = %v/%d", s.Sum(), s.Count())
	}
	if p := s.Percentile(0); p != -time.Second {
		t.Errorf("p0 = %v, want -1s", p)
	}
}

// TestSketchResetKeepsCapacity mirrors the Recorder capacity-reuse test:
// Reset must zero the sketch (all accessors back to zero-state), keep the
// grown bucket array so the next point's Adds don't reallocate, and leave
// subsequent statistics identical to a fresh sketch's.
func TestSketchResetKeepsCapacity(t *testing.T) {
	s := NewSketch("reuse")
	rng := simrand.New(7)
	for i := 0; i < 1000; i++ {
		s.Add(streamSample(2, rng)) // bimodal: spans µs to seconds octaves
	}
	backing := &s.counts[0]
	grown := len(s.counts)

	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Median() != 0 || s.Stddev() != 0 || s.Sum() != 0 || s.Percentile(99) != 0 {
		t.Error("Reset sketch should return zeros everywhere")
	}
	if len(s.counts) != grown {
		t.Fatalf("Reset shrank the bucket array: %d -> %d", grown, len(s.counts))
	}
	if s.Name() != "reuse" {
		t.Errorf("Reset lost the name: %q", s.Name())
	}

	fresh := NewSketch("fresh")
	rng = simrand.New(8)
	for i := 0; i < 500; i++ {
		d := streamSample(0, rng) // exponential: inside the grown range
		s.Add(d)
		fresh.Add(d)
	}
	if &s.counts[0] != backing {
		t.Error("refilling after Reset reallocated the bucket array")
	}
	if s.Mean() != fresh.Mean() || s.Median() != fresh.Median() ||
		s.Percentile(99) != fresh.Percentile(99) || s.Stddev() != fresh.Stddev() ||
		s.Sum() != fresh.Sum() || s.Min() != fresh.Min() || s.Max() != fresh.Max() {
		t.Errorf("reused sketch diverged from fresh: %v vs %v", s, fresh)
	}
}

// TestMeanOrderIndependent is the regression test for the Recorder.Mean
// last-bit drift: with totals beyond 2^53 ns, a float64 running sum rounds
// differently per Add order, so Mean could differ across permutations of
// the same samples. Serving Mean from the exact integer sum makes it a
// pure function of the multiset.
func TestMeanOrderIndependent(t *testing.T) {
	n := 2000
	base := 3 * time.Hour // 2000 × 3h ≈ 2.2e16 ns > 2^53
	forward := NewRecorder("fwd")
	reverse := NewRecorder("rev")
	shuffled := NewRecorder("shuf")
	perm := simrand.New(3).Perm(n)
	for i := 0; i < n; i++ {
		forward.Add(base + time.Duration(i)*time.Microsecond)
		reverse.Add(base + time.Duration(n-1-i)*time.Microsecond)
		shuffled.Add(base + time.Duration(perm[i])*time.Microsecond)
	}
	// A sorting accessor first must not perturb Mean either.
	_ = reverse.Median()
	if forward.Mean() != reverse.Mean() || forward.Mean() != shuffled.Mean() {
		t.Errorf("Mean depends on Add order: fwd %v rev %v shuf %v",
			forward.Mean(), reverse.Mean(), shuffled.Mean())
	}
	if forward.Sum() != reverse.Sum() || forward.Sum() != shuffled.Sum() {
		t.Errorf("Sum depends on Add order: fwd %v rev %v shuf %v",
			forward.Sum(), reverse.Sum(), shuffled.Sum())
	}
	want := meanOf(forward.Sum(), n)
	if forward.Mean() != want {
		t.Errorf("Mean %v not derived from exact sum (want %v)", forward.Mean(), want)
	}
}

// BenchmarkSketchAdd pins the steady-state Add path at 0 allocs/op (CI
// gates on this): once the bucket array spans the observed range, Add
// touches only fixed fields.
func BenchmarkSketchAdd(b *testing.B) {
	s := NewSketch("bench")
	rng := simrand.New(1)
	samples := make([]time.Duration, 4096)
	for i := range samples {
		samples[i] = streamSample(2, rng) // bimodal spans the widest range
	}
	for _, d := range samples {
		s.Add(d) // warm the bucket array before measuring
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(samples[i&4095])
	}
}

// BenchmarkSketchPercentile measures the bucket-walk percentile path on a
// sketch holding a million samples.
func BenchmarkSketchPercentile(b *testing.B) {
	s := NewSketch("bench")
	rng := simrand.New(1)
	for i := 0; i < 1_000_000; i++ {
		s.Add(streamSample(0, rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Percentile(99) < 0 {
			b.Fatal("negative percentile")
		}
	}
}
