// Package stats provides the latency summaries used by every experiment to
// report simulated measurements (mean, percentiles, min/max), mirroring
// how the paper reports averages over 1,000–10,000 trials.
//
// Two implementations of the Summary interface exist: Recorder keeps every
// sample and computes exact percentiles (the default for calibrated
// experiments and the reference for equivalence tests), and Sketch holds a
// fixed-memory HDR-histogram-style log-linear bucketing whose percentiles
// carry a configurable relative-error bound — the summary million-user
// experiments use, where retaining every sample would dominate memory.
package stats

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// Summary is the measurement-accumulation interface experiments consume:
// anything that can absorb duration samples and report the distribution.
// Count, Sum, Min, Max, Mean and Stddev are exact in both implementations;
// Percentile (and Median) are exact on Recorder and bounded-relative-error
// on Sketch. Reset empties the summary while retaining its backing storage
// so sweep workers can reuse one summary across points.
type Summary interface {
	Name() string
	Add(d time.Duration)
	Count() int
	Mean() time.Duration
	Min() time.Duration
	Max() time.Duration
	Percentile(p float64) time.Duration
	Median() time.Duration
	Stddev() time.Duration
	Sum() time.Duration
	Reset()
	String() string
}

// NewSummary returns the exact Recorder, or a default-error Sketch when
// sketch is set — the switch experiments expose as a -sketch flag.
func NewSummary(name string, sketch bool) Summary {
	if sketch {
		return NewSketch(name)
	}
	return NewRecorder(name)
}

// Recorder accumulates duration samples. The zero value is unusable; create
// one with NewRecorder. Recorders keep every sample (experiments record at
// most tens of thousands; larger runs use Sketch), so percentiles are
// exact. Add maintains running sums, so Mean, Sum, and Stddev are O(1)
// instead of re-scanning all samples per call.
type Recorder struct {
	name    string
	samples []time.Duration
	sorted  bool
	// wmean/m2 are Welford running moments for the O(1) population
	// variance; the naive E[x²]−mean² form cancels catastrophically for
	// large-magnitude, low-spread samples (hour-scale durations with
	// millisecond spread), Welford does not.
	wmean, m2 float64
	// sumExact is the overflow-safe integer total backing Sum — and, since
	// integer addition is associative, the order-independent numerator
	// backing Mean: a float64 running sum accumulated in Add order could
	// differ in the final bit from any other summation order, which is the
	// last-bit drift Mean used to document.
	sumExact time.Duration
}

var _ Summary = (*Recorder)(nil)

// NewRecorder returns an empty recorder labeled name.
func NewRecorder(name string) *Recorder {
	return &Recorder{name: name}
}

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
	f := float64(d)
	delta := f - r.wmean
	r.wmean += delta / float64(len(r.samples))
	r.m2 += delta * (f - r.wmean)
	r.sumExact += d
}

// Reset empties the recorder while retaining the backing samples slice,
// so a sweep worker can reuse one recorder across points (one recorder
// per point otherwise re-grows the samples array from scratch each time).
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
	r.wmean = 0
	r.m2 = 0
	r.sumExact = 0
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the arithmetic mean (0 with no samples). It derives from the
// exact integer sum, so its value is independent of Add order and of
// whether a sorting accessor (Percentile/Median/Min/Max) ran first.
func (r *Recorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return meanOf(r.sumExact, len(r.samples))
}

// meanOf renders an exact integer sum over n samples the way the historical
// float64 running-sum Mean did (float division, truncating conversion), so
// summary formatting stays byte-stable across the exact and sketch paths.
func meanOf(sum time.Duration, n int) time.Duration {
	return time.Duration(float64(sum) / float64(n))
}

// Min returns the smallest sample (0 with no samples).
func (r *Recorder) Min() time.Duration {
	r.sort()
	if len(r.samples) == 0 {
		return 0
	}
	return r.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (r *Recorder) Max() time.Duration {
	r.sort()
	if len(r.samples) == 0 {
		return 0
	}
	return r.samples[len(r.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. It returns 0 with no samples.
func (r *Recorder) Percentile(p float64) time.Duration {
	r.sort()
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return r.samples[lo]
	}
	frac := rank - float64(lo)
	return r.samples[lo] + time.Duration(frac*float64(r.samples[hi]-r.samples[lo]))
}

// Median returns the 50th percentile.
func (r *Recorder) Median() time.Duration { return r.Percentile(50) }

// Stddev returns the population standard deviation (0 with <2 samples).
func (r *Recorder) Stddev() time.Duration {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	return time.Duration(math.Sqrt(r.m2 / float64(n)))
}

// Sum returns the total of all samples.
func (r *Recorder) Sum() time.Duration { return r.sumExact }

// String summarizes the distribution.
func (r *Recorder) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		r.name, r.Count(), r.Mean(), r.Median(), r.Percentile(99), r.Min(), r.Max())
}

func (r *Recorder) sort() {
	if r.sorted {
		return
	}
	slices.Sort(r.samples)
	r.sorted = true
}
