// Package stats provides the latency recorder used by every experiment to
// summarize simulated measurements (mean, percentiles, min/max), mirroring
// how the paper reports averages over 1,000–10,000 trials.
package stats

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// Recorder accumulates duration samples. The zero value is unusable; create
// one with NewRecorder. Recorders keep every sample (experiments record at
// most tens of thousands), so percentiles are exact. Add maintains running
// sums, so Mean, Sum, and Stddev are O(1) instead of re-scanning all
// samples per call.
type Recorder struct {
	name    string
	samples []time.Duration
	sorted  bool
	// sum accumulates float64(sample) in Add order. The former per-call
	// scan summed r.samples in its order at call time, which equals Add
	// order as long as Mean is first read before any sorting accessor
	// (Percentile/Median/Min/Max) — the pattern every experiment follows,
	// and what keeps their printed means bit-identical. A first Mean read
	// after a sort may differ in the last float bit.
	sum float64
	// wmean/m2 are Welford running moments for the O(1) population
	// variance; the naive E[x²]−mean² form cancels catastrophically for
	// large-magnitude, low-spread samples (hour-scale durations with
	// millisecond spread), Welford does not.
	wmean, m2 float64
	// sumExact is the overflow-safe integer total backing Sum.
	sumExact time.Duration
}

// NewRecorder returns an empty recorder labeled name.
func NewRecorder(name string) *Recorder {
	return &Recorder{name: name}
}

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
	f := float64(d)
	r.sum += f
	delta := f - r.wmean
	r.wmean += delta / float64(len(r.samples))
	r.m2 += delta * (f - r.wmean)
	r.sumExact += d
}

// Reset empties the recorder while retaining the backing samples slice,
// so a sweep worker can reuse one recorder across points (one recorder
// per point otherwise re-grows the samples array from scratch each time).
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
	r.sum = 0
	r.wmean = 0
	r.m2 = 0
	r.sumExact = 0
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the arithmetic mean (0 with no samples).
func (r *Recorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return time.Duration(r.sum / float64(len(r.samples)))
}

// Min returns the smallest sample (0 with no samples).
func (r *Recorder) Min() time.Duration {
	r.sort()
	if len(r.samples) == 0 {
		return 0
	}
	return r.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (r *Recorder) Max() time.Duration {
	r.sort()
	if len(r.samples) == 0 {
		return 0
	}
	return r.samples[len(r.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. It returns 0 with no samples.
func (r *Recorder) Percentile(p float64) time.Duration {
	r.sort()
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return r.samples[lo]
	}
	frac := rank - float64(lo)
	return r.samples[lo] + time.Duration(frac*float64(r.samples[hi]-r.samples[lo]))
}

// Median returns the 50th percentile.
func (r *Recorder) Median() time.Duration { return r.Percentile(50) }

// Stddev returns the population standard deviation (0 with <2 samples).
func (r *Recorder) Stddev() time.Duration {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	return time.Duration(math.Sqrt(r.m2 / float64(n)))
}

// Sum returns the total of all samples.
func (r *Recorder) Sum() time.Duration { return r.sumExact }

// String summarizes the distribution.
func (r *Recorder) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		r.name, r.Count(), r.Mean(), r.Median(), r.Percentile(99), r.Min(), r.Max())
}

func (r *Recorder) sort() {
	if r.sorted {
		return
	}
	slices.Sort(r.samples)
	r.sorted = true
}
