// Package stats provides the latency recorder used by every experiment to
// summarize simulated measurements (mean, percentiles, min/max), mirroring
// how the paper reports averages over 1,000–10,000 trials.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Recorder accumulates duration samples. The zero value is unusable; create
// one with NewRecorder. Recorders keep every sample (experiments record at
// most tens of thousands), so percentiles are exact.
type Recorder struct {
	name    string
	samples []time.Duration
	sorted  bool
}

// NewRecorder returns an empty recorder labeled name.
func NewRecorder(name string) *Recorder {
	return &Recorder{name: name}
}

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the arithmetic mean (0 with no samples).
func (r *Recorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.samples {
		sum += float64(s)
	}
	return time.Duration(sum / float64(len(r.samples)))
}

// Min returns the smallest sample (0 with no samples).
func (r *Recorder) Min() time.Duration {
	r.sort()
	if len(r.samples) == 0 {
		return 0
	}
	return r.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (r *Recorder) Max() time.Duration {
	r.sort()
	if len(r.samples) == 0 {
		return 0
	}
	return r.samples[len(r.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. It returns 0 with no samples.
func (r *Recorder) Percentile(p float64) time.Duration {
	r.sort()
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return r.samples[lo]
	}
	frac := rank - float64(lo)
	return r.samples[lo] + time.Duration(frac*float64(r.samples[hi]-r.samples[lo]))
}

// Median returns the 50th percentile.
func (r *Recorder) Median() time.Duration { return r.Percentile(50) }

// Stddev returns the population standard deviation (0 with <2 samples).
func (r *Recorder) Stddev() time.Duration {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	mean := float64(r.Mean())
	var ss float64
	for _, s := range r.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n)))
}

// Sum returns the total of all samples.
func (r *Recorder) Sum() time.Duration {
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum
}

// String summarizes the distribution.
func (r *Recorder) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		r.name, r.Count(), r.Mean(), r.Median(), r.Percentile(99), r.Min(), r.Max())
}

func (r *Recorder) sort() {
	if r.sorted {
		return
	}
	sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
	r.sorted = true
}
