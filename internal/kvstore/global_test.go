package kvstore

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type globalFixture struct {
	k      *sim.Kernel
	net    *netsim.Network
	gt     *GlobalTable
	meter  *pricing.Meter
	caller [2]*netsim.Node // one client node per region
}

func newGlobalFixture(t *testing.T) *globalFixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(11)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	net.SetBuildRegion(1)
	net.SetBuildRegion(0)
	net.ConnectRegions(0, 1, netsim.Gbps(1), netsim.WANUniform(30*time.Millisecond, 2*time.Millisecond))
	meter := &pricing.Meter{}
	gt := NewGlobal("gdb", net, 9, rng.Fork(), DefaultConfig(), DefaultGlobalConfig(),
		[]int{0, 1}, pricing.Fall2018(), meter)
	f := &globalFixture{k: k, net: net, gt: gt, meter: meter}
	for r := 0; r < 2; r++ {
		prev := net.SetBuildRegion(r)
		f.caller[r] = net.NewNode([]string{"client-east", "client-west"}[r], 0, netsim.Mbps(538))
		net.SetBuildRegion(prev)
	}
	return f
}

// runFor advances the kernel to the given sim time and stops the table's
// replicators so the kernel can drain.
func (f *globalFixture) runFor(t *testing.T, d time.Duration) {
	t.Helper()
	f.k.RunUntil(sim.Time(d))
	f.gt.Close()
	f.k.Run()
}

func TestGlobalReplicatesWrites(t *testing.T) {
	f := newGlobalFixture(t)
	f.k.Spawn("writer", func(p *sim.Proc) {
		if _, err := f.gt.Store(0).Put(p, f.caller[0], "user:1", []byte("east")); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	f.runFor(t, 2*time.Second)
	var got Item
	var err error
	f.k.Spawn("reader", func(p *sim.Proc) {
		got, err = f.gt.Store(1).Get(p, f.caller[1], "user:1", true)
	})
	f.k.Run()
	if err != nil || string(got.Value) != "east" {
		t.Fatalf("west replica: got %+v err %v", got, err)
	}
	if f.gt.Replicated() != 1 || f.gt.LostBatches() != 0 {
		t.Errorf("Replicated = %d, LostBatches = %d", f.gt.Replicated(), f.gt.LostBatches())
	}
	if f.gt.PendingWrites() != 0 {
		t.Errorf("PendingWrites = %d after quiescence", f.gt.PendingWrites())
	}
	if b := f.net.WANBytes(0, 1); b == 0 {
		t.Errorf("replication shipped zero WAN bytes")
	}
}

// A partition must neither drop nor double-apply (nor double-bill) writes:
// many writes to one key while the trunk is down replicate as exactly one
// write after heal.
func TestGlobalPartitionExactlyOnce(t *testing.T) {
	f := newGlobalFixture(t)
	f.net.PartitionRegions(0, 1)
	f.k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			v := []byte{byte(i)}
			if _, err := f.gt.Store(0).Put(p, f.caller[0], "hot", v); err != nil {
				t.Errorf("Put: %v", err)
			}
			p.Sleep(20 * time.Millisecond)
		}
	})
	f.k.Spawn("healer", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		if f.gt.Replicated() != 0 {
			t.Errorf("replicated %d writes across a partition", f.gt.Replicated())
		}
		if f.gt.PendingWrites() != 1 {
			t.Errorf("PendingWrites = %d during partition, want 1 (deduped)", f.gt.PendingWrites())
		}
		f.net.HealRegions(0, 1)
	})
	before := f.meter.Total()
	f.runFor(t, 4*time.Second)
	var got Item
	f.k.Spawn("reader", func(p *sim.Proc) {
		var err error
		got, err = f.gt.Store(1).Get(p, f.caller[1], "hot", true)
		if err != nil {
			t.Errorf("Get after heal: %v", err)
		}
	})
	f.k.Run()
	if !bytes.Equal(got.Value, []byte{49}) {
		t.Errorf("west replica has %v, want the final write", got.Value)
	}
	if f.gt.Replicated() != 1 {
		t.Errorf("Replicated = %d, want exactly 1 after heal", f.gt.Replicated())
	}
	// 50 local writes, 1 replicated: the replication line bills one write
	// unit, not fifty.
	replCost := f.meter.Cost("dynamodb.repl")
	oneUnit := pricing.Fall2018().DynamoWritePerUnit
	if replCost != oneUnit {
		t.Errorf("dynamodb.repl cost = %v, want one write unit %v (total %v → %v)",
			replCost, oneUnit, before, f.meter.Total())
	}
}

// Concurrent writes in both regions converge: every replica ends with the
// same value, chosen last-writer-wins on the originating stamp.
func TestGlobalLastWriterWinsConvergence(t *testing.T) {
	f := newGlobalFixture(t)
	f.k.Spawn("east", func(p *sim.Proc) {
		if _, err := f.gt.Store(0).Put(p, f.caller[0], "k", []byte("east")); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	f.k.Spawn("west", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // strictly later origin stamp
		if _, err := f.gt.Store(1).Put(p, f.caller[1], "k", []byte("west")); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	f.runFor(t, 2*time.Second)
	var vals [2][]byte
	f.k.Spawn("reader", func(p *sim.Proc) {
		for slot := 0; slot < 2; slot++ {
			it, err := f.gt.Store(slot).Get(p, f.caller[slot], "k", true)
			if err != nil {
				t.Errorf("Get slot %d: %v", slot, err)
			}
			vals[slot] = it.Value
		}
	})
	f.k.Run()
	if !bytes.Equal(vals[0], vals[1]) {
		t.Fatalf("replicas diverged: %q vs %q", vals[0], vals[1])
	}
	if string(vals[0]) != "west" {
		t.Errorf("converged to %q, want the later write %q", vals[0], "west")
	}
}

// Duplicate replication delivery must be idempotent.
func TestApplyReplicatedIdempotent(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("c", func(p *sim.Proc) {
		now := p.Now()
		if !f.store.applyReplicated(now, "k", []byte("v"), sim.Time(5), 1) {
			t.Errorf("first delivery not applied")
		}
		if f.store.applyReplicated(now, "k", []byte("v"), sim.Time(5), 1) {
			t.Errorf("duplicate delivery applied twice")
		}
		it, err := f.store.Get(p, f.caller, "k", true)
		if err != nil || it.Version != 1 {
			t.Errorf("after duplicate: %+v err %v", it, err)
		}
	})
	f.k.Run()
}

func TestGlobalNearestFailover(t *testing.T) {
	f := newGlobalFixture(t)
	if st, ok := f.gt.Nearest(f.caller[1]); !ok || st != f.gt.Store(1) {
		t.Errorf("Nearest in-region: got %v ok %v", st, ok)
	}
	prev := f.net.SetBuildRegion(2)
	orphan := f.net.NewNode("client-south", 0, netsim.Mbps(538))
	f.net.SetBuildRegion(prev)
	if _, ok := f.gt.Nearest(orphan); ok {
		t.Errorf("Nearest found a replica for an unconnected region")
	}
	f.net.ConnectRegions(2, 0, netsim.Gbps(1), netsim.WANUniform(60*time.Millisecond, 2*time.Millisecond))
	if st, ok := f.gt.Nearest(orphan); !ok || st != f.gt.Store(0) {
		t.Errorf("Nearest failover: got %v ok %v", st, ok)
	}
	f.net.PartitionRegions(2, 0)
	if _, ok := f.gt.Nearest(orphan); ok {
		t.Errorf("Nearest reached a replica across a partition")
	}
	f.gt.Close()
}
