package kvstore

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type globalFixture struct {
	k      *sim.Kernel
	net    *netsim.Network
	gt     *GlobalTable
	meter  *pricing.Meter
	caller [2]*netsim.Node // one client node per region
}

func newGlobalFixture(t *testing.T) *globalFixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(11)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	net.SetBuildRegion(1)
	net.SetBuildRegion(0)
	net.ConnectRegions(0, 1, netsim.Gbps(1), netsim.WANUniform(30*time.Millisecond, 2*time.Millisecond))
	meter := &pricing.Meter{}
	gt := NewGlobal("gdb", net, 9, rng.Fork(), DefaultConfig(), DefaultGlobalConfig(),
		[]int{0, 1}, pricing.Fall2018(), meter)
	f := &globalFixture{k: k, net: net, gt: gt, meter: meter}
	for r := 0; r < 2; r++ {
		prev := net.SetBuildRegion(r)
		f.caller[r] = net.NewNode([]string{"client-east", "client-west"}[r], 0, netsim.Mbps(538))
		net.SetBuildRegion(prev)
	}
	return f
}

// runFor advances the kernel to the given sim time and stops the table's
// replicators so the kernel can drain.
func (f *globalFixture) runFor(t *testing.T, d time.Duration) {
	t.Helper()
	f.k.RunUntil(sim.Time(d))
	f.gt.Close()
	f.k.Run()
}

func TestGlobalReplicatesWrites(t *testing.T) {
	f := newGlobalFixture(t)
	f.k.Spawn("writer", func(p *sim.Proc) {
		if _, err := f.gt.Store(0).Put(p, f.caller[0], "user:1", []byte("east")); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	f.runFor(t, 2*time.Second)
	var got Item
	var err error
	f.k.Spawn("reader", func(p *sim.Proc) {
		got, err = f.gt.Store(1).Get(p, f.caller[1], "user:1", true)
	})
	f.k.Run()
	if err != nil || string(got.Value) != "east" {
		t.Fatalf("west replica: got %+v err %v", got, err)
	}
	if f.gt.Replicated() != 1 || f.gt.LostBatches() != 0 {
		t.Errorf("Replicated = %d, LostBatches = %d", f.gt.Replicated(), f.gt.LostBatches())
	}
	if f.gt.PendingWrites() != 0 {
		t.Errorf("PendingWrites = %d after quiescence", f.gt.PendingWrites())
	}
	if b := f.net.WANBytes(0, 1); b == 0 {
		t.Errorf("replication shipped zero WAN bytes")
	}
}

// A partition must neither drop nor double-apply (nor double-bill) writes:
// many writes to one key while the trunk is down replicate as exactly one
// write after heal.
func TestGlobalPartitionExactlyOnce(t *testing.T) {
	f := newGlobalFixture(t)
	f.net.PartitionRegions(0, 1)
	f.k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			v := []byte{byte(i)}
			if _, err := f.gt.Store(0).Put(p, f.caller[0], "hot", v); err != nil {
				t.Errorf("Put: %v", err)
			}
			p.Sleep(20 * time.Millisecond)
		}
	})
	f.k.Spawn("healer", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		if f.gt.Replicated() != 0 {
			t.Errorf("replicated %d writes across a partition", f.gt.Replicated())
		}
		if f.gt.PendingWrites() != 1 {
			t.Errorf("PendingWrites = %d during partition, want 1 (deduped)", f.gt.PendingWrites())
		}
		f.net.HealRegions(0, 1)
	})
	before := f.meter.Total()
	f.runFor(t, 4*time.Second)
	var got Item
	f.k.Spawn("reader", func(p *sim.Proc) {
		var err error
		got, err = f.gt.Store(1).Get(p, f.caller[1], "hot", true)
		if err != nil {
			t.Errorf("Get after heal: %v", err)
		}
	})
	f.k.Run()
	if !bytes.Equal(got.Value, []byte{49}) {
		t.Errorf("west replica has %v, want the final write", got.Value)
	}
	if f.gt.Replicated() != 1 {
		t.Errorf("Replicated = %d, want exactly 1 after heal", f.gt.Replicated())
	}
	// 50 local writes, 1 replicated: the replication line bills one write
	// unit, not fifty.
	replCost := f.meter.Cost("dynamodb.repl")
	oneUnit := pricing.Fall2018().DynamoWritePerUnit
	if replCost != oneUnit {
		t.Errorf("dynamodb.repl cost = %v, want one write unit %v (total %v → %v)",
			replCost, oneUnit, before, f.meter.Total())
	}
}

// Concurrent writes in both regions converge: every replica ends with the
// same value, chosen last-writer-wins on the originating stamp.
func TestGlobalLastWriterWinsConvergence(t *testing.T) {
	f := newGlobalFixture(t)
	f.k.Spawn("east", func(p *sim.Proc) {
		if _, err := f.gt.Store(0).Put(p, f.caller[0], "k", []byte("east")); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	f.k.Spawn("west", func(p *sim.Proc) {
		p.Sleep(time.Millisecond) // strictly later origin stamp
		if _, err := f.gt.Store(1).Put(p, f.caller[1], "k", []byte("west")); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	f.runFor(t, 2*time.Second)
	var vals [2][]byte
	f.k.Spawn("reader", func(p *sim.Proc) {
		for slot := 0; slot < 2; slot++ {
			it, err := f.gt.Store(slot).Get(p, f.caller[slot], "k", true)
			if err != nil {
				t.Errorf("Get slot %d: %v", slot, err)
			}
			vals[slot] = it.Value
		}
	})
	f.k.Run()
	if !bytes.Equal(vals[0], vals[1]) {
		t.Fatalf("replicas diverged: %q vs %q", vals[0], vals[1])
	}
	if string(vals[0]) != "west" {
		t.Errorf("converged to %q, want the later write %q", vals[0], "west")
	}
}

// Duplicate replication delivery must be idempotent.
func TestApplyReplicatedIdempotent(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("c", func(p *sim.Proc) {
		now := p.Now()
		if !f.store.applyReplicated(now, "k", []byte("v"), sim.Time(5), 1) {
			t.Errorf("first delivery not applied")
		}
		if f.store.applyReplicated(now, "k", []byte("v"), sim.Time(5), 1) {
			t.Errorf("duplicate delivery applied twice")
		}
		it, err := f.store.Get(p, f.caller, "k", true)
		if err != nil || it.Version != 1 {
			t.Errorf("after duplicate: %+v err %v", it, err)
		}
	})
	f.k.Run()
}

func TestGlobalNearestFailover(t *testing.T) {
	f := newGlobalFixture(t)
	if st, ok := f.gt.Nearest(f.caller[1]); !ok || st != f.gt.Store(1) {
		t.Errorf("Nearest in-region: got %v ok %v", st, ok)
	}
	prev := f.net.SetBuildRegion(2)
	orphan := f.net.NewNode("client-south", 0, netsim.Mbps(538))
	f.net.SetBuildRegion(prev)
	if _, ok := f.gt.Nearest(orphan); ok {
		t.Errorf("Nearest found a replica for an unconnected region")
	}
	f.net.ConnectRegions(2, 0, netsim.Gbps(1), netsim.WANUniform(60*time.Millisecond, 2*time.Millisecond))
	if st, ok := f.gt.Nearest(orphan); !ok || st != f.gt.Store(0) {
		t.Errorf("Nearest failover: got %v ok %v", st, ok)
	}
	f.net.PartitionRegions(2, 0)
	if _, ok := f.gt.Nearest(orphan); ok {
		t.Errorf("Nearest reached a replica across a partition")
	}
	f.gt.Close()
}

// Nearest must rank remote replicas by measured trunk RTT, not by the
// order regions were declared in: the declaration-order fallback applies
// only to trunks that have never carried traffic.
func TestGlobalNearestRanksByMeasuredRTT(t *testing.T) {
	f := newGlobalFixture(t)
	prev := f.net.SetBuildRegion(2)
	client := f.net.NewNode("client-south", 0, netsim.Mbps(538))
	f.net.SetBuildRegion(prev)
	// Region 2 reaches replica region 0 over a slow trunk and replica
	// region 1 over a fast one. Slot order would pick 0; measurement must
	// pick 1.
	f.net.ConnectRegions(2, 0, netsim.Gbps(1), netsim.WANUniform(60*time.Millisecond, 2*time.Millisecond))
	f.net.ConnectRegions(2, 1, netsim.Gbps(1), netsim.WANUniform(10*time.Millisecond, 1*time.Millisecond))

	// Cold table: no traffic observed on either trunk, so Nearest keeps
	// the declaration-order fallback.
	if st, ok := f.gt.Nearest(client); !ok || st != f.gt.Store(0) {
		t.Errorf("cold Nearest: got %v ok %v, want slot-order Store(0)", st, ok)
	}

	// Warm both trunks passively: every cross-region delay sample is an
	// RTT observation.
	for i := 0; i < 8; i++ {
		f.net.OneWayDelay(client, f.gt.Store(0).Node())
		f.net.OneWayDelay(client, f.gt.Store(1).Node())
	}
	if rtt, ok := f.net.MeasuredTrunkRTT(2, 1); !ok || rtt > 25*time.Millisecond {
		t.Fatalf("fast trunk RTT = %v ok %v, want ~20ms", rtt, ok)
	}
	if st, ok := f.gt.Nearest(client); !ok || st != f.gt.Store(1) {
		t.Errorf("measured Nearest: got %v ok %v, want fast-trunk Store(1)", st, ok)
	}

	// With only the slow trunk measured, measured still beats unmeasured…
	// (simulate by checking the failover order under partitions instead:
	// losing the fast trunk must fail over to the slow replica, and the
	// heal must restore the fast choice.)
	f.net.PartitionRegions(2, 1)
	if st, ok := f.gt.Nearest(client); !ok || st != f.gt.Store(0) {
		t.Errorf("failover Nearest: got %v ok %v, want surviving Store(0)", st, ok)
	}
	f.net.PartitionRegions(2, 0)
	if _, ok := f.gt.Nearest(client); ok {
		t.Error("Nearest found a replica with every trunk severed")
	}
	f.net.HealRegions(2, 1)
	if st, ok := f.gt.Nearest(client); !ok || st != f.gt.Store(1) {
		t.Errorf("healed Nearest: got %v ok %v, want fast-trunk Store(1)", st, ok)
	}
	f.net.HealRegions(2, 0)
	if st, ok := f.gt.Nearest(client); !ok || st != f.gt.Store(1) {
		t.Errorf("fully healed Nearest: got %v ok %v, want fast-trunk Store(1)", st, ok)
	}
	// A client inside a replica region always stays local, measurements
	// or not.
	if st, ok := f.gt.Nearest(f.caller[0]); !ok || st != f.gt.Store(0) {
		t.Errorf("local Nearest: got %v ok %v, want local Store(0)", st, ok)
	}
	f.gt.Close()
}

// A measured replica must outrank an unmeasured one even when the
// unmeasured replica comes first in slot order.
func TestGlobalNearestMeasuredBeatsUnmeasured(t *testing.T) {
	f := newGlobalFixture(t)
	prev := f.net.SetBuildRegion(2)
	client := f.net.NewNode("client-south", 0, netsim.Mbps(538))
	f.net.SetBuildRegion(prev)
	f.net.ConnectRegions(2, 0, netsim.Gbps(1), netsim.WANUniform(20*time.Millisecond, 1*time.Millisecond))
	f.net.ConnectRegions(2, 1, netsim.Gbps(1), netsim.WANUniform(80*time.Millisecond, 2*time.Millisecond))
	// Only the *slower, later-slot* trunk has been measured.
	f.net.OneWayDelay(client, f.gt.Store(1).Node())
	if st, ok := f.gt.Nearest(client); !ok || st != f.gt.Store(1) {
		t.Errorf("Nearest: got %v ok %v, want measured Store(1) over unmeasured Store(0)", st, ok)
	}
	f.gt.Close()
}
