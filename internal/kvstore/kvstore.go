// Package kvstore simulates a DynamoDB-style key-value service: single-item
// reads and writes with millisecond latency, conditional writes, prefix
// scans, a 400KB item-size limit, strongly or eventually consistent reads,
// and on-demand request-unit metering.
//
// It is the "blackboard" medium the paper's leader-election case study
// forces all communication through, and one of the two storage columns in
// Table 1 (11 ms for a 1KB write+read pair).
//
// The table can be horizontally sharded (Config.ShardCount): keys hash to
// one of N partitions, each with its own front-end node, NIC, record map
// and service-time stream, mirroring how DynamoDB actually spreads a table
// over partitions with per-partition throughput ceilings. ShardCount 1 (the
// calibrated default) reproduces the original single-node behavior bit for
// bit; see shard.go for routing and the hot-shard stats surface.
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// MaxItemSize is the DynamoDB item-size limit.
const MaxItemSize = 400 * 1024

// ErrNotFound is returned when a key is absent.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrConditionFailed is returned when a conditional write's precondition
// does not hold.
var ErrConditionFailed = errors.New("kvstore: condition failed")

// ErrItemTooLarge is returned for values above MaxItemSize.
var ErrItemTooLarge = errors.New("kvstore: item exceeds 400KB limit")

// Item is a stored key-value pair. Version increases by one on every
// successful write of the key (1 on first write).
type Item struct {
	Key     string
	Value   []byte
	Version int64
}

// Size returns the item's billable size (key + value bytes).
func (it Item) Size() int64 { return int64(len(it.Key) + len(it.Value)) }

// Config holds service-level parameters.
type Config struct {
	// OpLatency is per-request service time. The paper measures a 1KB
	// write+read pair at 11 ms from both Lambda and EC2, so the default
	// median is ~4.2 ms per operation (plus network round trip).
	OpLatency simrand.Dist

	// ScanPerItem adds service time per item touched by a Scan.
	ScanPerItem time.Duration

	// ReplicationLag, when positive, makes eventually consistent reads
	// able to return the previous version of a recently written key.
	ReplicationLag time.Duration

	// NICBps is each front end's aggregate network capacity.
	NICBps netsim.Bps

	// ShardCount splits the table into this many hash partitions, each
	// with its own front-end node, NIC, record map and RNG fork. Values
	// below 1 mean 1. With a single shard the store is byte-identical to
	// the unsharded original under the same seed.
	ShardCount int

	// ShardConcurrency caps how many requests one shard's front end can
	// have in service simultaneously; excess requests queue FIFO at that
	// shard. 0 (the calibrated default) means unlimited, which keeps the
	// Table-1 numbers exact. Finite values give each partition a real
	// throughput ceiling — the per-partition capacity limit that makes
	// sharding matter at region scale.
	ShardConcurrency int
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		OpLatency:      simrand.LogNormal{Median: 4150 * time.Microsecond, Sigma: 0.12},
		ScanPerItem:    3 * time.Microsecond,
		ReplicationLag: 50 * time.Millisecond,
		NICBps:         netsim.Gbps(400),
		ShardCount:     1,
	}
}

type record struct {
	item      Item
	prev      *Item // previous version, for eventual reads
	writtenAt sim.Time
	expiresAt sim.Time // 0 = no TTL
	// Cross-region replication stamps (see global.go): when and where the
	// write originated. Conflicts between regions resolve last-writer-wins
	// on (origin, originSrc).
	origin    sim.Time
	originSrc int
}

// shard is one hash partition: a front end plus its slice of the key space.
type shard struct {
	fe    *service.Frontend
	items recordMap
}

// Store is a simulated key-value table, split over one or more shards.
type Store struct {
	name   string
	cfg    Config
	shards []*shard

	// Cross-region replication wiring (see global.go): the region stamp
	// this replica writes into records, and the hook a GlobalTable installs
	// to queue locally accepted writes for shipping to peer regions.
	origin  int
	onWrite func(key string, value []byte, origin sim.Time)
}

// New creates a table attached to the network in rack `rack`. With
// ShardCount 1 the single front end is named `name` and consumes rng
// directly (preserving seed-for-seed compatibility); with more shards each
// partition gets a forked stream and a node named `name-s<i>`.
func New(name string, net *netsim.Network, rack int, rng *simrand.RNG,
	cfg Config, catalog *pricing.Catalog, meter *pricing.Meter) *Store {
	n := cfg.ShardCount
	if n < 1 {
		n = 1
	}
	s := &Store{name: name, cfg: cfg, shards: make([]*shard, n)}
	for i := range s.shards {
		feName, feRNG := name, rng
		if n > 1 {
			feName = fmt.Sprintf("%s-s%d", name, i)
			feRNG = rng.Fork()
		}
		fe := service.NewFrontend(feName, net, rack, feRNG, cfg.OpLatency,
			cfg.NICBps, catalog, meter)
		if cfg.ShardConcurrency > 0 {
			fe.LimitConcurrency(cfg.ShardConcurrency)
		}
		s.shards[i] = &shard{fe: fe, items: make(recordMap)}
	}
	return s
}

// Node returns the first shard's network endpoint (the table's endpoint
// when unsharded). Per-shard endpoints are available via ShardNode.
func (s *Store) Node() *netsim.Node { return s.shards[0].fe.Node() }

// Get reads a key. With consistent=false the read is eventually consistent:
// within the replication-lag window of a write it may return the previous
// version (or miss a brand-new key). Metering follows DynamoDB on-demand
// read units (half units for eventual reads).
func (s *Store) Get(p *sim.Proc, caller *netsim.Node, key string, consistent bool) (Item, error) {
	sh := s.shardFor(key)
	if err := sh.fe.RoundTripErr(p, caller, 0); err != nil {
		return Item{}, err
	}
	rec, ok := sh.items[key]
	if ok && s.expired(sh, p.Now(), rec) {
		ok = false
	}
	var it Item
	var found bool
	switch {
	case !ok:
		found = false
	case consistent:
		it, found = rec.item, true
	default:
		it, found = s.eventualView(sh, p.Now(), rec)
	}
	size := int64(0)
	if found {
		size = it.Size()
	}
	sh.fe.Charge("dynamodb.read", pricing.DynamoReadUnits(size, consistent),
		sh.fe.Catalog().DynamoReadPerUnit)
	if !found {
		return Item{}, notFoundError(key)
	}
	return it, nil
}

// notFoundError is a lazily formatted ErrNotFound carrying the key. Misses
// are a routine outcome on read-heavy load (not-yet-written keys), so the
// miss path must not pay fmt.Errorf's eager formatting per request; the
// message is rendered only if someone actually prints it, and renders
// byte-identically to the former fmt.Errorf("%w: %q", ErrNotFound, key).
type notFoundError string

func (e notFoundError) Error() string {
	return ErrNotFound.Error() + ": " + strconv.Quote(string(e))
}

func (e notFoundError) Unwrap() error { return ErrNotFound }

// eventualView resolves what an eventually consistent read of rec observes.
func (s *Store) eventualView(sh *shard, now sim.Time, rec *record) (Item, bool) {
	if s.cfg.ReplicationLag <= 0 || now-rec.writtenAt >= s.cfg.ReplicationLag {
		return rec.item, true
	}
	remain := float64(s.cfg.ReplicationLag-(now-rec.writtenAt)) / float64(s.cfg.ReplicationLag)
	if sh.fe.RNG().Float64() < remain {
		if rec.prev == nil {
			return Item{}, false // key did not exist on the lagging replica
		}
		return *rec.prev, true
	}
	return rec.item, true
}

// Put writes key unconditionally and returns the stored item.
func (s *Store) Put(p *sim.Proc, caller *netsim.Node, key string, value []byte) (Item, error) {
	return s.write(p, caller, key, value, nil)
}

// ConditionalPut writes key only if its current version equals
// expectVersion (0 means "key must not exist"). On mismatch it returns
// ErrConditionFailed. This is the primitive the bully election's blackboard
// uses to claim coordinatorship atomically.
func (s *Store) ConditionalPut(p *sim.Proc, caller *netsim.Node, key string,
	value []byte, expectVersion int64) (Item, error) {
	return s.write(p, caller, key, value, &expectVersion)
}

func (s *Store) write(p *sim.Proc, caller *netsim.Node, key string,
	value []byte, expect *int64) (Item, error) {
	if int64(len(key))+int64(len(value)) > MaxItemSize {
		return Item{}, ErrItemTooLarge
	}
	sh := s.shardFor(key)
	if err := sh.fe.RoundTripErr(p, caller, 0); err != nil {
		return Item{}, err
	}
	size := int64(len(key) + len(value))
	sh.fe.Charge("dynamodb.write", pricing.DynamoWriteUnits(size),
		sh.fe.Catalog().DynamoWritePerUnit)
	rec := sh.items[key]
	var curVer int64
	if rec != nil {
		curVer = rec.item.Version
	}
	if expect != nil && *expect != curVer {
		return Item{}, fmt.Errorf("%w: %q at version %d, expected %d",
			ErrConditionFailed, key, curVer, *expect)
	}
	it := Item{Key: key, Value: append([]byte(nil), value...), Version: curVer + 1}
	var prev *Item
	if rec != nil {
		prevCopy := rec.item
		prev = &prevCopy
	}
	now := p.Now()
	sh.items[key] = &record{item: it, prev: prev, writtenAt: now, origin: now, originSrc: s.origin}
	if s.onWrite != nil {
		s.onWrite(key, it.Value, now)
	}
	return it, nil
}

// applyReplicated installs a cross-region replicated write without a
// client round trip (the replicator already paid the WAN transfer and the
// write units). Conflicts resolve last-writer-wins on the originating
// write stamp, ties toward the lower source region; a duplicate or older
// delivery is a no-op. writtenAt is the local apply time, so eventual
// reads see the usual replication-lag window. Returns whether the item
// was applied.
func (s *Store) applyReplicated(now sim.Time, key string, value []byte, origin sim.Time, source int) bool {
	sh := s.shardFor(key)
	rec := sh.items[key]
	var curVer int64
	var prev *Item
	if rec != nil {
		if rec.origin > origin || (rec.origin == origin && rec.originSrc <= source) {
			return false
		}
		curVer = rec.item.Version
		prevCopy := rec.item
		prev = &prevCopy
	}
	it := Item{Key: key, Value: append([]byte(nil), value...), Version: curVer + 1}
	sh.items[key] = &record{item: it, prev: prev, writtenAt: now, origin: origin, originSrc: source}
	return true
}

// Delete removes a key; deleting a missing key is not an error. Delete and
// Scan stay on the void RoundTrip path: they are control-plane operations
// in every experiment, so an admission-controlled table that sheds them
// would panic loudly rather than silently drop a delete.
func (s *Store) Delete(p *sim.Proc, caller *netsim.Node, key string) {
	sh := s.shardFor(key)
	sh.fe.RoundTrip(p, caller, 0)
	var size int64 = 0
	if rec, ok := sh.items[key]; ok {
		size = rec.item.Size()
	}
	sh.fe.Charge("dynamodb.write", pricing.DynamoWriteUnits(size),
		sh.fe.Catalog().DynamoWritePerUnit)
	delete(sh.items, key)
}

// Scan returns all items whose keys start with prefix, sorted by key,
// always strongly consistent. Read units are charged on the total bytes
// scanned — this is what makes fine-grained polling of a large blackboard
// so expensive in the election case study. On a sharded table the scan
// visits every shard in order (one round trip each) and merges the results.
func (s *Store) Scan(p *sim.Proc, caller *netsim.Node, prefix string) []Item {
	var out []Item
	for _, sh := range s.shards {
		var bytes int64
		shardStart := len(out)
		for k, rec := range sh.items {
			if strings.HasPrefix(k, prefix) && !s.expired(sh, p.Now(), rec) {
				out = append(out, rec.item)
				bytes += rec.item.Size()
			}
		}
		sh.fe.RoundTrip(p, caller,
			time.Duration(len(out)-shardStart)*s.cfg.ScanPerItem)
		sh.fe.Charge("dynamodb.read", pricing.DynamoReadUnits(bytes, true),
			sh.fe.Catalog().DynamoReadPerUnit)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len reports the number of stored keys across all shards (test hook; no
// simulated latency).
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.items)
	}
	return n
}
