package kvstore

// Eventual-consistency edge cases: the brand-new-key window (a lagging
// replica can miss a key that was only just created), disabled replication
// lag, and TTL expiry as observed through Get and Scan. These are the
// corners the election case study's correctness quietly depends on.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestEventualReadCanMissBrandNewKey: within the replication-lag window of
// a key's *first* write there is no previous version to serve, so an
// eventually consistent read may return ErrNotFound — and must never after
// the window closes.
func TestEventualReadCanMissBrandNewKey(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	misses, hits := 0, 0
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("fresh/%d", i)
			if _, err := f.store.Put(p, f.caller, key, []byte("v")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			// The read lands ~5ms after the write, deep inside the
			// 50ms replication window.
			it, err := f.store.Get(p, f.caller, key, false)
			switch {
			case errors.Is(err, ErrNotFound):
				misses++
			case err != nil:
				t.Fatalf("Get: %v", err)
			case it.Version != 1:
				t.Fatalf("phantom version %d", it.Version)
			default:
				hits++
			}
		}
		// After the window, the key is always visible.
		p.Sleep(100 * time.Millisecond)
		for i := 0; i < 300; i++ {
			if _, err := f.store.Get(p, f.caller, fmt.Sprintf("fresh/%d", i), false); err != nil {
				t.Errorf("settled eventual read missed fresh/%d: %v", i, err)
			}
		}
	})
	f.k.Run()
	if misses == 0 {
		t.Error("no in-window eventual read missed a brand-new key; lag window inert")
	}
	if hits == 0 {
		t.Error("every in-window eventual read missed; expected a mix")
	}
}

// TestZeroReplicationLagReadsAreAlwaysFresh: ReplicationLag <= 0 disables
// staleness entirely — eventual reads see every write immediately, new keys
// included.
func TestZeroReplicationLagReadsAreAlwaysFresh(t *testing.T) {
	for _, lag := range []time.Duration{0, -time.Second} {
		cfg := DefaultConfig()
		cfg.ReplicationLag = lag
		f := newFixture(t, cfg)
		f.k.Spawn("c", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k/%d", i)
				if _, err := f.store.Put(p, f.caller, key, []byte("v1")); err != nil {
					t.Fatalf("Put: %v", err)
				}
				if _, err := f.store.Put(p, f.caller, key, []byte("v2")); err != nil {
					t.Fatalf("Put: %v", err)
				}
				it, err := f.store.Get(p, f.caller, key, false)
				if err != nil {
					t.Fatalf("lag=%v: eventual read missed %s: %v", lag, key, err)
				}
				if it.Version != 2 || string(it.Value) != "v2" {
					t.Fatalf("lag=%v: stale read %+v with staleness disabled", lag, it)
				}
			}
		})
		f.k.Run()
	}
}

// TestEventualReadCanServePreviousVersion: an overwrite inside the window
// may surface the prior version, never anything older or newer.
func TestEventualReadCanServePreviousVersion(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	sawOld, sawNew := 0, 0
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("ow/%d", i)
			if _, err := f.store.Put(p, f.caller, key, []byte("v1")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			p.Sleep(60 * time.Millisecond) // settle the first write
			if _, err := f.store.Put(p, f.caller, key, []byte("v2")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			it, err := f.store.Get(p, f.caller, key, false)
			if err != nil {
				t.Fatalf("overwritten key vanished: %v", err)
			}
			switch it.Version {
			case 1:
				sawOld++
			case 2:
				sawNew++
			default:
				t.Fatalf("impossible version %d", it.Version)
			}
		}
	})
	f.k.Run()
	if sawOld == 0 || sawNew == 0 {
		t.Errorf("in-window overwrite reads: %d old / %d new, want a mix", sawOld, sawNew)
	}
}

// TestTTLExpiryObservedThroughGetAndScan: an expired record is invisible to
// both access paths, reaped lazily, and both consistency levels agree.
func TestTTLExpiryObservedThroughGetAndScan(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := f.store.Put(p, f.caller, fmt.Sprintf("t/%d", i), []byte("v")); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := f.store.SetTTL(p, f.caller, "t/1", 200*time.Millisecond); err != nil {
			t.Fatalf("SetTTL: %v", err)
		}
		// Before expiry both paths still see it.
		if _, err := f.store.Get(p, f.caller, "t/1", true); err != nil {
			t.Errorf("pre-expiry Get: %v", err)
		}
		if n := len(f.store.Scan(p, f.caller, "t/")); n != 4 {
			t.Errorf("pre-expiry scan n = %d, want 4", n)
		}
		p.Sleep(time.Second)
		// Expired: strong read, eventual read, and scan all agree.
		if _, err := f.store.Get(p, f.caller, "t/1", true); !errors.Is(err, ErrNotFound) {
			t.Errorf("post-expiry consistent Get err = %v, want ErrNotFound", err)
		}
		if _, err := f.store.Get(p, f.caller, "t/1", false); !errors.Is(err, ErrNotFound) {
			t.Errorf("post-expiry eventual Get err = %v, want ErrNotFound", err)
		}
		if n := len(f.store.Scan(p, f.caller, "t/")); n != 3 {
			t.Errorf("post-expiry scan n = %d, want 3", n)
		}
	})
	f.k.Run()
	if f.store.Len() != 3 {
		t.Errorf("Len after lazy reap = %d, want 3", f.store.Len())
	}
}

// TestTTLExpiryOnShardedTable: lazy TTL reaping stays shard-local and
// correct when the key space is partitioned.
func TestTTLExpiryOnShardedTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ShardCount = 4
	f := newFixture(t, cfg)
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			if _, err := f.store.Put(p, f.caller, fmt.Sprintf("t/%d", i), []byte("v")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := f.store.SetTTL(p, f.caller, fmt.Sprintf("t/%d", i), 200*time.Millisecond); err != nil {
				t.Fatalf("SetTTL: %v", err)
			}
		}
		p.Sleep(time.Second)
		if n := len(f.store.Scan(p, f.caller, "t/")); n != 0 {
			t.Errorf("post-expiry sharded scan n = %d, want 0", n)
		}
	})
	f.k.Run()
	if f.store.Len() != 0 {
		t.Errorf("Len after sharded reap = %d, want 0", f.store.Len())
	}
}
