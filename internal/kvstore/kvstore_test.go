package kvstore

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k      *sim.Kernel
	store  *Store
	caller *netsim.Node
	meter  *pricing.Meter
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(7)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	store := New("ddb", net, 9, rng.Fork(), cfg, pricing.Fall2018(), meter)
	caller := net.NewNode("caller", 0, netsim.Mbps(538))
	return &fixture{k: k, store: store, caller: caller, meter: meter}
}

func TestPutGet(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got Item
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		if _, err := f.store.Put(p, f.caller, "k", []byte("v")); err != nil {
			t.Errorf("Put: %v", err)
		}
		got, err = f.store.Get(p, f.caller, "k", true)
	})
	f.k.Run()
	if err != nil || string(got.Value) != "v" || got.Version != 1 {
		t.Errorf("got %+v err %v", got, err)
	}
}

func TestGetMissing(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		_, err = f.store.Get(p, f.caller, "nope", true)
	})
	f.k.Run()
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

// Calibration: 1KB write+read should land near the paper's 11ms.
func TestWriteReadLatencyMatchesPaper(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	const trials = 1000
	var total sim.Time
	f.k.Spawn("c", func(p *sim.Proc) {
		v := make([]byte, 1024)
		for i := 0; i < trials; i++ {
			start := p.Now()
			if _, err := f.store.Put(p, f.caller, "k", v); err != nil {
				t.Errorf("Put: %v", err)
			}
			if _, err := f.store.Get(p, f.caller, "k", true); err != nil {
				t.Errorf("Get: %v", err)
			}
			total += p.Now() - start
		}
	})
	f.k.Run()
	mean := time.Duration(int64(total) / trials)
	if mean < 10*time.Millisecond || mean > 12*time.Millisecond {
		t.Errorf("1KB write+read mean = %v, paper reports 11ms", mean)
	}
}

func TestVersionsIncrement(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var v1, v2 int64
	f.k.Spawn("c", func(p *sim.Proc) {
		it, _ := f.store.Put(p, f.caller, "k", []byte("a"))
		v1 = it.Version
		it, _ = f.store.Put(p, f.caller, "k", []byte("b"))
		v2 = it.Version
	})
	f.k.Run()
	if v1 != 1 || v2 != 2 {
		t.Errorf("versions = %d, %d, want 1, 2", v1, v2)
	}
}

func TestConditionalPutCreateSemantics(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var firstErr, secondErr error
	f.k.Spawn("c", func(p *sim.Proc) {
		_, firstErr = f.store.ConditionalPut(p, f.caller, "lock", []byte("me"), 0)
		_, secondErr = f.store.ConditionalPut(p, f.caller, "lock", []byte("you"), 0)
	})
	f.k.Run()
	if firstErr != nil {
		t.Errorf("first conditional create failed: %v", firstErr)
	}
	if !errors.Is(secondErr, ErrConditionFailed) {
		t.Errorf("second conditional create: %v, want ErrConditionFailed", secondErr)
	}
}

func TestConditionalPutVersionMatch(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var okErr, staleErr error
	f.k.Spawn("c", func(p *sim.Proc) {
		it, _ := f.store.Put(p, f.caller, "k", []byte("v1"))
		_, okErr = f.store.ConditionalPut(p, f.caller, "k", []byte("v2"), it.Version)
		_, staleErr = f.store.ConditionalPut(p, f.caller, "k", []byte("v3"), it.Version)
	})
	f.k.Run()
	if okErr != nil {
		t.Errorf("matching conditional put failed: %v", okErr)
	}
	if !errors.Is(staleErr, ErrConditionFailed) {
		t.Errorf("stale conditional put: %v, want ErrConditionFailed", staleErr)
	}
}

func TestItemTooLarge(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		_, err = f.store.Put(p, f.caller, "k", make([]byte, MaxItemSize+1))
	})
	f.k.Run()
	if !errors.Is(err, ErrItemTooLarge) {
		t.Errorf("err = %v, want ErrItemTooLarge", err)
	}
}

func TestEventualReadCanBeStale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationLag = 30 * time.Second
	f := newFixture(t, cfg)
	stale, fresh := false, false
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("old"))
		p.Sleep(time.Minute) // old value fully replicated
		f.store.Put(p, f.caller, "k", []byte("new"))
		for i := 0; i < 60; i++ {
			it, err := f.store.Get(p, f.caller, "k", false)
			if err != nil {
				continue
			}
			switch string(it.Value) {
			case "old":
				stale = true
			case "new":
				fresh = true
			}
		}
		p.Sleep(time.Minute)
		it, err := f.store.Get(p, f.caller, "k", false)
		if err != nil || string(it.Value) != "new" {
			t.Errorf("read after lag window: %+v, %v", it, err)
		}
	})
	f.k.Run()
	if !stale || !fresh {
		t.Errorf("stale=%v fresh=%v, want both observed inside lag window", stale, fresh)
	}
}

func TestStronglyConsistentReadNeverStale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationLag = 30 * time.Second
	f := newFixture(t, cfg)
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("old"))
		f.store.Put(p, f.caller, "k", []byte("new"))
		for i := 0; i < 50; i++ {
			it, err := f.store.Get(p, f.caller, "k", true)
			if err != nil || string(it.Value) != "new" {
				t.Errorf("consistent read saw %+v, %v", it, err)
				return
			}
		}
	})
	f.k.Run()
}

func TestScanReturnsPrefixSorted(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var items []Item
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "node/2", []byte("b"))
		f.store.Put(p, f.caller, "node/1", []byte("a"))
		f.store.Put(p, f.caller, "other", []byte("x"))
		items = f.store.Scan(p, f.caller, "node/")
	})
	f.k.Run()
	if len(items) != 2 || items[0].Key != "node/1" || items[1].Key != "node/2" {
		t.Errorf("Scan = %+v", items)
	}
}

func TestScanMeteringScalesWithData(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("c", func(p *sim.Proc) {
		// 1000 nodes x ~250B: one scan should consume ~62 read units,
		// the assumption that reproduces the paper's $450/hr claim.
		v := make([]byte, 242)
		for i := 0; i < 1000; i++ {
			f.store.Put(p, f.caller, keyOf(i), v)
		}
		f.meter.Reset()
		f.store.Scan(p, f.caller, "node/")
	})
	f.k.Run()
	units := f.meter.Count("dynamodb.read")
	if units < 58 || units > 64 {
		t.Errorf("scan of 1000x250B items consumed %d units, want ~62", units)
	}
}

func keyOf(i int) string {
	return "node/" + string([]byte{byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)})
}

func TestDeleteIdempotent(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("v"))
		f.store.Delete(p, f.caller, "k")
		f.store.Delete(p, f.caller, "k")
		_, err = f.store.Get(p, f.caller, "k", true)
	})
	f.k.Run()
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("after delete, Get = %v, want ErrNotFound", err)
	}
}

func TestValueIsCopied(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got Item
	f.k.Spawn("c", func(p *sim.Proc) {
		buf := []byte("orig")
		f.store.Put(p, f.caller, "k", buf)
		buf[0] = 'X'
		got, _ = f.store.Get(p, f.caller, "k", true)
	})
	f.k.Run()
	if string(got.Value) != "orig" {
		t.Errorf("stored value aliased caller buffer: %q", got.Value)
	}
}

// Property: per-key version numbers strictly increase across any write
// sequence, and a strongly consistent read always returns the last write.
func TestQuickPerKeyLinearizability(t *testing.T) {
	prop := func(writes []byte) bool {
		if len(writes) > 40 {
			writes = writes[:40]
		}
		f := struct {
			k     *sim.Kernel
			store *Store
		}{}
		f.k = sim.NewKernel()
		defer f.k.Close()
		rng := simrand.New(99)
		net := netsim.NewNetwork(f.k, rng.Fork(), netsim.DefaultLatency())
		f.store = New("ddb", net, 1, rng.Fork(), DefaultConfig(),
			pricing.Fall2018(), &pricing.Meter{})
		caller := net.NewNode("c", 0, netsim.Mbps(538))
		ok := true
		f.k.Spawn("c", func(p *sim.Proc) {
			var lastVer int64
			for _, w := range writes {
				it, err := f.store.Put(p, caller, "k", []byte{w})
				if err != nil || it.Version != lastVer+1 {
					ok = false
					return
				}
				lastVer = it.Version
				got, err := f.store.Get(p, caller, "k", true)
				if err != nil || got.Value[0] != w || got.Version != lastVer {
					ok = false
					return
				}
			}
		})
		f.k.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
