package kvstore

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// parityGolden is the digest of the scripted workload below, captured on
// the pre-refactor single-node Store (seed 42) before the service-layer
// extraction and sharding landed. A ShardCount-1 store must reproduce it
// bit for bit: same event timings (down to the nanosecond), same versions,
// same errors, same metered units and cost.
const parityGolden = `put 0 v=1 err=<nil> now=4723108
put 1 v=1 err=<nil> now=10371959
put 2 v=1 err=<nil> now=15083934
put 3 v=1 err=<nil> now=20535597
put 4 v=1 err=<nil> now=25495768
put 5 v=1 err=<nil> now=30783328
put 6 v=1 err=<nil> now=35510853
put 7 v=1 err=<nil> now=42030412
cas-ok err=<nil> now=47260342
cas-fail cond=true now=52837336
get 0 v=2 notfound=false now=57729607
get 1 v=1 notfound=false now=62701586
get 2 v=1 notfound=false now=67592864
get 3 v=1 notfound=false now=73006772
get 4 v=2 notfound=false now=78340598
get 5 v=1 notfound=false now=82854692
get 6 v=1 notfound=false now=87962491
get 7 v=1 notfound=false now=92765058
get-settled 0 v=2 err=<nil> now=1097787165
get-settled 1 v=1 err=<nil> now=1103194256
get-settled 2 v=1 err=<nil> now=1107647485
get-settled 3 v=1 err=<nil> now=1112645367
batchget n=3 err=<nil> now=1117209059
batchwrite v1=2 v9=1 err=<nil> now=1122968852
scan n=9 now=1128800258
ttl err=<nil> now=1134307862
get-expired notfound=true now=2140278219
scan-after-ttl n=8 now=2145975413
delete now=2151653043 len=7
meter reads=19 writes=14 nanousd=22250
`

// parityDigest runs the scripted workload against a fresh store with the
// given shard count and returns a textual trace of every observable:
// results, errors, virtual-time stamps, and meter totals.
func parityDigest(seed uint64, shardCount int) string {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(seed)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	catalog := pricing.Fall2018()
	meter := &pricing.Meter{}
	cfg := DefaultConfig()
	cfg.ShardCount = shardCount
	store := New("dynamodb", net, 9, rng.Fork(), cfg, catalog, meter)
	client := net.NewNode("client", 0, netsim.Gbps(10))

	var sb strings.Builder
	logf := func(format string, args ...any) {
		fmt.Fprintf(&sb, format+"\n", args...)
	}
	done := false
	k.Spawn("driver", func(p *sim.Proc) {
		// Unconditional and conditional writes.
		for i := 0; i < 8; i++ {
			it, err := store.Put(p, client, fmt.Sprintf("k/%d", i), []byte(strings.Repeat("v", 100*(i+1))))
			logf("put %d v=%d err=%v now=%d", i, it.Version, err, p.Now())
		}
		_, err := store.ConditionalPut(p, client, "k/0", []byte("cas"), 1)
		logf("cas-ok err=%v now=%d", err, p.Now())
		_, err = store.ConditionalPut(p, client, "k/0", []byte("cas"), 1)
		logf("cas-fail cond=%v now=%d", errors.Is(err, ErrConditionFailed), p.Now())
		// Consistent and eventual reads inside the replication window.
		for i := 0; i < 8; i++ {
			it, err := store.Get(p, client, fmt.Sprintf("k/%d", i%4), i%2 == 0)
			logf("get %d v=%d notfound=%v now=%d", i, it.Version, errors.Is(err, ErrNotFound), p.Now())
		}
		p.Sleep(time.Second) // clear the replication window
		for i := 0; i < 4; i++ {
			it, err := store.Get(p, client, fmt.Sprintf("k/%d", i), false)
			logf("get-settled %d v=%d err=%v now=%d", i, it.Version, err, p.Now())
		}
		// Batches.
		got, err := store.BatchGet(p, client, []string{"k/0", "k/1", "k/5", "missing"}, true)
		logf("batchget n=%d err=%v now=%d", len(got), err, p.Now())
		out, err := store.BatchWrite(p, client, map[string][]byte{
			"k/1": []byte("bw1"), "k/9": []byte("bw9"),
		})
		logf("batchwrite v1=%d v9=%d err=%v now=%d", out["k/1"].Version, out["k/9"].Version, err, p.Now())
		// Scans, TTL, delete.
		items := store.Scan(p, client, "k/")
		logf("scan n=%d now=%d", len(items), p.Now())
		err = store.SetTTL(p, client, "k/2", 500*time.Millisecond)
		logf("ttl err=%v now=%d", err, p.Now())
		p.Sleep(time.Second)
		_, err = store.Get(p, client, "k/2", true)
		logf("get-expired notfound=%v now=%d", errors.Is(err, ErrNotFound), p.Now())
		items = store.Scan(p, client, "k/")
		logf("scan-after-ttl n=%d now=%d", len(items), p.Now())
		store.Delete(p, client, "k/3")
		logf("delete now=%d len=%d", p.Now(), store.Len())
		done = true
	})
	k.RunUntil(sim.Time(time.Hour))
	if !done {
		panic("parity workload did not finish")
	}
	logf("meter reads=%d writes=%d nanousd=%.0f",
		meter.Count("dynamodb.read"), meter.Count("dynamodb.write"), float64(meter.Total())*1e9)
	return sb.String()
}

// diffDigest points at the first differing line for a readable failure.
func diffDigest(t *testing.T, got, want string) {
	t.Helper()
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Errorf("digest diverges at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			return
		}
	}
	t.Errorf("digest lengths differ: got %d lines, want %d", len(gl), len(wl))
}

// TestShardCountOneIsBitIdenticalToPreRefactor is the refactor's contract:
// the service-layer extraction and the sharding machinery must not perturb
// the calibrated single-node behavior in any observable way.
func TestShardCountOneIsBitIdenticalToPreRefactor(t *testing.T) {
	if got := parityDigest(42, 1); got != parityGolden {
		diffDigest(t, got, parityGolden)
	}
}

// TestShardCountZeroMeansOne: the zero value of the new knob must behave
// exactly like the calibrated single shard.
func TestShardCountZeroMeansOne(t *testing.T) {
	if got := parityDigest(42, 0); got != parityGolden {
		diffDigest(t, got, parityGolden)
	}
}

// TestShardedDigestIsDeterministic: sharded runs are seed-stable too (they
// need not, and do not, match the single-shard trace).
func TestShardedDigestIsDeterministic(t *testing.T) {
	a, b := parityDigest(42, 4), parityDigest(42, 4)
	if a != b {
		diffDigest(t, a, b)
	}
	if a == parityGolden {
		t.Error("4-shard trace unexpectedly identical to single-shard golden")
	}
}
