package kvstore

// Shard routing and the hot-shard observability surface. Keys map to
// partitions by FNV-1a hash, the stable, dependency-free choice: the same
// key always lands on the same shard for a given shard count, across stores
// and across runs.

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/service"
)

// fnv1a64 hashes key with the 64-bit FNV-1a function.
func fnv1a64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// shardIndex maps key to a partition index in [0, n).
func shardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv1a64(key) % uint64(n))
}

// shardFor returns the shard owning key.
func (s *Store) shardFor(key string) *shard {
	return s.shards[shardIndex(key, len(s.shards))]
}

// ShardCount reports how many partitions the table has.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardFor reports which partition owns key (routing test hook).
func (s *Store) ShardFor(key string) int {
	return shardIndex(key, len(s.shards))
}

// ShardNode returns partition i's network endpoint.
func (s *Store) ShardNode(i int) *netsim.Node { return s.shards[i].fe.Node() }

// ShardFrontend returns partition i's service front end, the handle for
// admission control (SetAdmission) and chaos injection (SlowFrontendAt) on
// a single hot shard.
func (s *Store) ShardFrontend(i int) *service.Frontend { return s.shards[i].fe }

// SetAdmission applies one admission-control configuration to every
// shard's front end (callers reaching a sharded table spread over all of
// them; per-shard control is available via ShardFrontend).
func (s *Store) SetAdmission(cfg service.AdmissionConfig) {
	for _, sh := range s.shards {
		sh.fe.SetAdmission(cfg)
	}
}

// ShardStat summarizes one partition's traffic — the hot-shard surface a
// region operator would watch.
type ShardStat struct {
	Shard    int
	Node     string        // front-end node name
	Requests int64         // API round trips served by this shard
	Busy     time.Duration // cumulative service time spent
	Queued   int           // requests currently waiting for a service slot
	Items    int           // keys resident on this shard
}

// ShardStats returns per-partition traffic counters, indexed by shard.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		fs := sh.fe.Stats()
		out[i] = ShardStat{
			Shard:    i,
			Node:     sh.fe.Name(),
			Requests: fs.Requests,
			Busy:     fs.Busy,
			Queued:   sh.fe.QueueDepth(),
			Items:    len(sh.items),
		}
	}
	return out
}

// HottestShard returns the partition with the most requests served — ties
// broken toward the lowest index.
func (s *Store) HottestShard() ShardStat {
	stats := s.ShardStats()
	hot := stats[0]
	for _, st := range stats[1:] {
		if st.Requests > hot.Requests {
			hot = st
		}
	}
	return hot
}
