package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/sim"
)

func newShardedFixture(t *testing.T, shards, concurrency int) *fixture {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ShardCount = shards
	cfg.ShardConcurrency = concurrency
	return newFixture(t, cfg)
}

// TestRouterIsStable: the same key must route to the same shard on every
// call and on every store with the same shard count — routing is a pure
// function of (key, shardCount).
func TestRouterIsStable(t *testing.T) {
	a := newShardedFixture(t, 8, 0)
	b := newShardedFixture(t, 8, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user/%d", i)
		first := a.store.ShardFor(key)
		if got := a.store.ShardFor(key); got != first {
			t.Fatalf("key %q moved shards within one store: %d then %d", key, first, got)
		}
		if got := b.store.ShardFor(key); got != first {
			t.Fatalf("key %q routes to %d on one store, %d on another", key, first, got)
		}
		if first < 0 || first >= 8 {
			t.Fatalf("key %q routed out of range: %d", key, first)
		}
	}
}

// TestRouterSpreadsKeys: hash routing must not funnel a realistic key
// population into few shards.
func TestRouterSpreadsKeys(t *testing.T) {
	f := newShardedFixture(t, 8, 0)
	counts := make([]int, 8)
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[f.store.ShardFor(fmt.Sprintf("user/%07d", i))]++
	}
	for shard, n := range counts {
		// Expect ~1000 per shard; alarm at ±40%.
		if n < keys/8*6/10 || n > keys/8*14/10 {
			t.Errorf("shard %d holds %d of %d keys, want near %d", shard, n, keys, keys/8)
		}
	}
}

// TestShardedDataPlane: reads, writes, scans and batches on a sharded
// table behave like one logical table.
func TestShardedDataPlane(t *testing.T) {
	f := newShardedFixture(t, 4, 0)
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			if _, err := f.store.Put(p, f.caller, fmt.Sprintf("k/%02d", i), []byte("v")); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
		// Every key readable, from its own shard.
		for i := 0; i < 40; i++ {
			it, err := f.store.Get(p, f.caller, fmt.Sprintf("k/%02d", i), true)
			if err != nil || it.Version != 1 {
				t.Errorf("Get k/%02d: %+v err=%v", i, it, err)
			}
		}
		// Scan merges all shards, globally sorted.
		items := f.store.Scan(p, f.caller, "k/")
		if len(items) != 40 {
			t.Errorf("scan returned %d items, want 40", len(items))
		}
		if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Key < items[j].Key }) {
			t.Error("sharded scan result not globally sorted")
		}
		// Batches spanning shards.
		var keys []string
		for i := 0; i < 20; i++ {
			keys = append(keys, fmt.Sprintf("k/%02d", i))
		}
		got, err := f.store.BatchGet(p, f.caller, keys, true)
		if err != nil || len(got) != 20 {
			t.Errorf("cross-shard BatchGet: n=%d err=%v", len(got), err)
		}
		writes := map[string][]byte{}
		for i := 0; i < 10; i++ {
			writes[fmt.Sprintf("k/%02d", i)] = []byte("w2")
		}
		out, err := f.store.BatchWrite(p, f.caller, writes)
		if err != nil || len(out) != 10 {
			t.Errorf("cross-shard BatchWrite: n=%d err=%v", len(out), err)
		}
		for k, it := range out {
			if it.Version != 2 {
				t.Errorf("batch-written %s version = %d, want 2", k, it.Version)
			}
		}
		// Conditional puts are atomic per key wherever it lives.
		if _, err := f.store.ConditionalPut(p, f.caller, "k/00", []byte("x"), 1); !errors.Is(err, ErrConditionFailed) {
			t.Errorf("stale ConditionalPut err = %v, want ErrConditionFailed", err)
		}
	})
	f.k.Run()
	if f.store.Len() != 40 {
		t.Errorf("Len = %d, want 40", f.store.Len())
	}
}

// TestEmptyBatchStillPaysRoundTrip: the unsharded store billed an empty
// batch as one API request (a full round trip); the sharded code path must
// preserve that, at any shard count.
func TestEmptyBatchStillPaysRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		f := newShardedFixture(t, shards, 0)
		var getElapsed, writeElapsed sim.Time
		f.k.Spawn("c", func(p *sim.Proc) {
			start := p.Now()
			if got, err := f.store.BatchGet(p, f.caller, nil, true); err != nil || len(got) != 0 {
				t.Errorf("empty BatchGet: n=%d err=%v", len(got), err)
			}
			getElapsed = p.Now() - start
			start = p.Now()
			if out, err := f.store.BatchWrite(p, f.caller, nil); err != nil || len(out) != 0 {
				t.Errorf("empty BatchWrite: n=%d err=%v", len(out), err)
			}
			writeElapsed = p.Now() - start
		})
		f.k.Run()
		// A round trip is at least the ~4.15ms service time.
		if getElapsed < sim.Time(time.Millisecond) {
			t.Errorf("shards=%d: empty BatchGet took %v, want a full round trip", shards, getElapsed)
		}
		if writeElapsed < sim.Time(time.Millisecond) {
			t.Errorf("shards=%d: empty BatchWrite took %v, want a full round trip", shards, writeElapsed)
		}
	}
}

// TestShardStatsSurface: per-shard request metering and the hot-shard
// surface reflect where traffic actually went.
func TestShardStatsSurface(t *testing.T) {
	f := newShardedFixture(t, 4, 0)
	const hotKey = "hot/key"
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			if _, err := f.store.Put(p, f.caller, hotKey, []byte("v")); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
		for i := 0; i < 4; i++ {
			_, _ = f.store.Put(p, f.caller, fmt.Sprintf("cold/%d", i), []byte("v"))
		}
	})
	f.k.Run()

	stats := f.store.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats len = %d, want 4", len(stats))
	}
	var total int64
	items := 0
	for i, st := range stats {
		if st.Shard != i {
			t.Errorf("stat %d has Shard %d", i, st.Shard)
		}
		total += st.Requests
		items += st.Items
		if st.Requests > 0 && st.Busy <= 0 {
			t.Errorf("shard %d served %d requests with zero busy time", i, st.Requests)
		}
	}
	if total != 36 {
		t.Errorf("total shard requests = %d, want 36", total)
	}
	if items != f.store.Len() {
		t.Errorf("shard item sum = %d, Len = %d", items, f.store.Len())
	}
	hot := f.store.HottestShard()
	if hot.Shard != f.store.ShardFor(hotKey) {
		t.Errorf("hottest shard = %d, want %d (owner of the hot key)", hot.Shard, f.store.ShardFor(hotKey))
	}
	if hot.Requests < 32 {
		t.Errorf("hottest shard served %d requests, want >= 32", hot.Requests)
	}
}

// TestShardConcurrencySerializes: with one service slot per shard, two
// concurrent requests to the same shard must serialize (the second's
// completion is pushed out by the first's service time), while requests to
// different shards proceed in parallel.
func TestShardConcurrencySerializes(t *testing.T) {
	f := newShardedFixture(t, 1, 1)
	durations := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		f.k.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			start := p.Now()
			if _, err := f.store.Put(p, f.caller, "same-shard", []byte("v")); err != nil {
				t.Errorf("Put: %v", err)
			}
			durations[i] = p.Now() - start
		})
	}
	f.k.Run()
	first, second := durations[0], durations[1]
	if second < first {
		first, second = second, first
	}
	// The loser waits through the winner's full service time: its
	// completion takes at least ~1.5x a solo round trip.
	if float64(second) < 1.5*float64(first) {
		t.Errorf("single-slot shard did not serialize: %v vs %v", first, second)
	}
}
