package kvstore

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// GlobalTable is a multi-region table after DynamoDB global tables: one
// full replica Store per region, each accepting local reads and writes,
// with asynchronous batched replication between regions. A replicator
// agent per region ships its queued writes to every peer on a fixed
// cadence; batches crossing a WAN trunk pay bandwidth, latency, and
// metered egress, and conflicting writes resolve last-writer-wins on the
// originating write stamp. A partition simply holds a queue in place —
// writes are never dropped and never double-applied: the queue dedupes by
// key (latest wins) while the trunk is down, and delivery bypasses the
// write hook so nothing ping-pongs back.
type GlobalTable struct {
	name    string
	net     *netsim.Network
	gcfg    GlobalConfig
	catalog *pricing.Catalog
	meter   *pricing.Meter
	regions []int
	stores  []*Store
	agents  []*netsim.Node
	pending []map[string]repEntry // slot [src*len(regions)+dst]
	closed  bool

	shippedBatches int64
	lostBatches    int64
	replicated     int64
}

// repEntry is one queued cross-region write.
type repEntry struct {
	value  []byte
	origin sim.Time
}

// GlobalConfig parameterizes a multi-region table.
type GlobalConfig struct {
	// ShipInterval is each region's replication-shipping cadence.
	ShipInterval time.Duration
	// BatchOverheadBytes frames one replication batch on the wire.
	BatchOverheadBytes int
	// EntryOverheadBytes covers per-item stamp/versioning framing.
	EntryOverheadBytes int
}

// DefaultGlobalConfig returns the calibrated multi-region parameters.
func DefaultGlobalConfig() GlobalConfig {
	return GlobalConfig{
		ShipInterval:       200 * time.Millisecond,
		BatchOverheadBytes: 64,
		EntryOverheadBytes: 24,
	}
}

// NewGlobal creates one replica Store per region (named `name-r<region>`,
// built inside that region) plus a replicator agent per region, and starts
// the shipping processes. The regions slice orders the replica slots;
// regions[0] is the primary consistent reads should pin to.
func NewGlobal(name string, net *netsim.Network, rack int, rng *simrand.RNG,
	cfg Config, gcfg GlobalConfig, regions []int,
	catalog *pricing.Catalog, meter *pricing.Meter) *GlobalTable {
	if len(regions) < 2 {
		panic("kvstore: a global table needs at least two regions")
	}
	def := DefaultGlobalConfig()
	if gcfg.ShipInterval <= 0 {
		gcfg.ShipInterval = def.ShipInterval
	}
	if gcfg.BatchOverheadBytes <= 0 {
		gcfg.BatchOverheadBytes = def.BatchOverheadBytes
	}
	if gcfg.EntryOverheadBytes <= 0 {
		gcfg.EntryOverheadBytes = def.EntryOverheadBytes
	}
	gt := &GlobalTable{
		name:    name,
		net:     net,
		gcfg:    gcfg,
		catalog: catalog,
		meter:   meter,
		regions: regions,
		stores:  make([]*Store, len(regions)),
		agents:  make([]*netsim.Node, len(regions)),
		pending: make([]map[string]repEntry, len(regions)*len(regions)),
	}
	for i := range gt.pending {
		gt.pending[i] = make(map[string]repEntry)
	}
	for slot, region := range regions {
		prev := net.SetBuildRegion(region)
		st := New(fmt.Sprintf("%s-r%d", name, region), net, rack, rng.Fork(),
			cfg, catalog, meter)
		gt.agents[slot] = net.NewNode(fmt.Sprintf("%s-repl-r%d", name, region),
			rack, netsim.Gbps(10))
		net.SetBuildRegion(prev)
		st.origin = region
		src := slot
		st.onWrite = func(key string, value []byte, origin sim.Time) {
			gt.enqueue(src, key, value, origin)
		}
		gt.stores[slot] = st
	}
	for slot := range regions {
		src := slot
		// Stagger the shippers across the interval so regions do not ship
		// in lockstep (deterministically — no RNG draw).
		stagger := time.Duration(int64(gt.gcfg.ShipInterval) * int64(src+1) / int64(len(regions)+1))
		net.Kernel().Spawn(fmt.Sprintf("%s-replicator-r%d", name, regions[slot]), func(p *sim.Proc) {
			p.Sleep(stagger)
			for !gt.closed {
				p.Sleep(gt.gcfg.ShipInterval)
				if gt.closed {
					return
				}
				gt.shipFrom(p, src)
			}
		})
	}
	return gt
}

// enqueue queues a locally accepted write for every peer region. The queue
// dedupes by key: a second write to a key before the next ship replaces
// the first, so a long partition costs one replicated write per key, not
// one per write — never a double-bill.
func (gt *GlobalTable) enqueue(src int, key string, value []byte, origin sim.Time) {
	for dst := range gt.stores {
		if dst == src {
			continue
		}
		gt.pending[src*len(gt.regions)+dst][key] = repEntry{value: value, origin: origin}
	}
}

// shipFrom ships src's queued writes to every reachable peer region, one
// batch per destination. Unreachable destinations keep their queues intact
// for the next cycle; a batch severed mid-flight re-queues every entry a
// newer local write hasn't already replaced.
func (gt *GlobalTable) shipFrom(p *sim.Proc, src int) {
	for dst := range gt.stores {
		if dst == src {
			continue
		}
		slot := src*len(gt.regions) + dst
		m := gt.pending[slot]
		if len(m) == 0 {
			continue
		}
		if !gt.net.Reachable(gt.agents[src], gt.agents[dst]) {
			continue // partitioned: hold the queue, retry next tick
		}
		keys := make([]string, 0, len(m))
		bytes := int64(gt.gcfg.BatchOverheadBytes)
		for k, e := range m {
			keys = append(keys, k)
			bytes += int64(len(k)+len(e.value)) + int64(gt.gcfg.EntryOverheadBytes)
		}
		sort.Strings(keys)
		// Take the batch before the transfer: writes landing while it is in
		// flight queue for the next cycle instead of mutating this one.
		batch := m
		gt.pending[slot] = make(map[string]repEntry)
		if !gt.net.SendMsg(p, gt.agents[src], gt.agents[dst], bytes) {
			// Severed mid-flight: nothing was applied. Re-queue anything a
			// newer local write hasn't already replaced.
			gt.lostBatches++
			cur := gt.pending[slot]
			for _, k := range keys {
				if _, newer := cur[k]; !newer {
					cur[k] = batch[k]
				}
			}
			continue
		}
		gt.shippedBatches++
		for _, k := range keys {
			e := batch[k]
			gt.stores[dst].applyReplicated(p.Now(), k, e.value, e.origin, gt.regions[src])
			gt.meter.Charge("dynamodb.repl",
				pricing.DynamoWriteUnits(int64(len(k)+len(e.value))),
				gt.catalog.DynamoWritePerUnit)
		}
		gt.replicated += int64(len(keys))
	}
}

// Close stops the replication processes after their current tick (so test
// kernels can drain).
func (gt *GlobalTable) Close() { gt.closed = true }

// Store returns the replica at the given slot (index into the regions
// slice passed to NewGlobal).
func (gt *GlobalTable) Store(slot int) *Store { return gt.stores[slot] }

// Primary returns slot 0's replica — the home region consistent reads
// should pin to for a single serialization point.
func (gt *GlobalTable) Primary() *Store { return gt.stores[0] }

// StoreIn returns the replica living in the given region, or nil.
func (gt *GlobalTable) StoreIn(region int) *Store {
	for slot, r := range gt.regions {
		if r == region {
			return gt.stores[slot]
		}
	}
	return nil
}

// Nearest returns the replica a client node should talk to: the one in its
// own region when present, otherwise the reachable replica with the lowest
// measured trunk RTT from the client's region (see
// netsim.MeasuredTrunkRTT — passively observed from real traffic, the way
// latency-based DNS routing measures rather than assumes). Replicas over
// never-measured trunks rank after measured ones, in slot order, so a cold
// table degrades to the old declaration-order behavior. ok is false when
// no replica is reachable.
func (gt *GlobalTable) Nearest(client *netsim.Node) (st *Store, ok bool) {
	if local := gt.StoreIn(client.Region()); local != nil {
		return local, true
	}
	bestSlot := -1
	var bestRTT time.Duration
	bestMeasured := false
	for slot := range gt.stores {
		if !gt.net.Reachable(client, gt.agents[slot]) {
			continue
		}
		rtt, measured := gt.net.MeasuredTrunkRTT(client.Region(), gt.regions[slot])
		switch {
		case bestSlot < 0:
			// First reachable replica: take it as the baseline.
		case measured && !bestMeasured:
			// A measured path beats any unmeasured guess.
		case measured && bestMeasured && rtt < bestRTT:
		default:
			continue
		}
		bestSlot, bestRTT, bestMeasured = slot, rtt, measured
	}
	if bestSlot < 0 {
		return nil, false
	}
	return gt.stores[bestSlot], true
}

// PendingWrites reports how many deduplicated writes are queued for
// cross-region shipping (all source/destination pairs).
func (gt *GlobalTable) PendingWrites() int {
	n := 0
	for _, m := range gt.pending {
		n += len(m)
	}
	return n
}

// Replicated reports how many writes have been applied cross-region.
func (gt *GlobalTable) Replicated() int64 { return gt.replicated }

// ShippedBatches reports how many replication batches were delivered.
func (gt *GlobalTable) ShippedBatches() int64 { return gt.shippedBatches }

// LostBatches reports how many replication batches a partition severed
// mid-flight (their writes re-queued; nothing was applied or dropped).
func (gt *GlobalTable) LostBatches() int64 { return gt.lostBatches }
