package kvstore

// Batch operations and item TTL, mirroring DynamoDB's BatchGetItem /
// BatchWriteItem (25-item limit, one round trip) and time-to-live
// expiration. Batching matters to the paper's cost story: it amortizes the
// per-request round trip but not the per-unit read/write charges, so the
// blackboard's economics barely move.

import (
	"errors"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
)

// MaxBatchItems is DynamoDB's batch-operation limit.
const MaxBatchItems = 25

// ErrBatchTooBig is returned for batches above MaxBatchItems.
var ErrBatchTooBig = errors.New("kvstore: batch exceeds 25 items")

// BatchGet reads up to 25 keys in one round trip. Missing keys are simply
// absent from the result (like DynamoDB). Consistency applies per item.
func (s *Store) BatchGet(p *sim.Proc, caller *netsim.Node, keys []string, consistent bool) (map[string]Item, error) {
	if len(keys) > MaxBatchItems {
		return nil, ErrBatchTooBig
	}
	s.roundTrip(p, caller, 0)
	out := make(map[string]Item, len(keys))
	var units int64
	for _, key := range keys {
		rec, ok := s.items[key]
		if !ok || s.expired(p.Now(), rec) {
			units += pricing.DynamoReadUnits(0, consistent)
			continue
		}
		it := rec.item
		if !consistent {
			var found bool
			it, found = s.eventualView(p.Now(), rec)
			if !found {
				units += pricing.DynamoReadUnits(0, consistent)
				continue
			}
		}
		units += pricing.DynamoReadUnits(it.Size(), consistent)
		out[key] = it
	}
	s.meter.Charge("dynamodb.read", units, s.catalog.DynamoReadPerUnit)
	return out, nil
}

// BatchWrite performs up to 25 puts in one round trip (unconditional, like
// BatchWriteItem). Returns the stored items keyed by key.
func (s *Store) BatchWrite(p *sim.Proc, caller *netsim.Node, items map[string][]byte) (map[string]Item, error) {
	if len(items) > MaxBatchItems {
		return nil, ErrBatchTooBig
	}
	for k, v := range items {
		if int64(len(k))+int64(len(v)) > MaxItemSize {
			return nil, ErrItemTooLarge
		}
	}
	s.roundTrip(p, caller, 0)
	out := make(map[string]Item, len(items))
	for k, v := range items {
		size := int64(len(k) + len(v))
		s.meter.Charge("dynamodb.write", pricing.DynamoWriteUnits(size),
			s.catalog.DynamoWritePerUnit)
		rec := s.items[k]
		var curVer int64
		var prev *Item
		if rec != nil {
			curVer = rec.item.Version
			prevCopy := rec.item
			prev = &prevCopy
		}
		// Overwrites clear any TTL, like writes that omit the TTL
		// attribute in DynamoDB.
		it := Item{Key: k, Value: append([]byte(nil), v...), Version: curVer + 1}
		s.items[k] = &record{item: it, prev: prev, writtenAt: p.Now()}
		out[k] = it
	}
	return out, nil
}

// SetTTL sets (or clears, with d <= 0) an expiry on a key, measured from
// now. Expired items behave as deleted on read and are reaped lazily.
func (s *Store) SetTTL(p *sim.Proc, caller *netsim.Node, key string, d time.Duration) error {
	s.roundTrip(p, caller, 0)
	rec, ok := s.items[key]
	if !ok {
		return ErrNotFound
	}
	s.meter.Charge("dynamodb.write", pricing.DynamoWriteUnits(rec.item.Size()),
		s.catalog.DynamoWritePerUnit)
	if d <= 0 {
		rec.expiresAt = 0
		return nil
	}
	rec.expiresAt = p.Now() + sim.Time(d)
	return nil
}

// expired reports whether rec is past its TTL at time now, deleting it
// lazily when so.
func (s *Store) expired(now sim.Time, rec *record) bool {
	if rec.expiresAt > 0 && now >= rec.expiresAt {
		delete(s.items, rec.item.Key)
		return true
	}
	return false
}

// recordMap is the store's item index.
type recordMap map[string]*record
