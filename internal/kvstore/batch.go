package kvstore

// Batch operations and item TTL, mirroring DynamoDB's BatchGetItem /
// BatchWriteItem (25-item limit, one round trip) and time-to-live
// expiration. Batching matters to the paper's cost story: it amortizes the
// per-request round trip but not the per-unit read/write charges, so the
// blackboard's economics barely move. On a sharded table a batch costs one
// round trip per partition it touches (visited in shard order), which is
// exactly how a partitioned DynamoDB table behaves under the covers.

import (
	"errors"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
)

// MaxBatchItems is DynamoDB's batch-operation limit.
const MaxBatchItems = 25

// ErrBatchTooBig is returned for batches above MaxBatchItems.
var ErrBatchTooBig = errors.New("kvstore: batch exceeds 25 items")

// BatchGet reads up to 25 keys in one round trip per shard touched. Missing
// keys are simply absent from the result (like DynamoDB). Consistency
// applies per item.
func (s *Store) BatchGet(p *sim.Proc, caller *netsim.Node, keys []string, consistent bool) (map[string]Item, error) {
	if len(keys) > MaxBatchItems {
		return nil, ErrBatchTooBig
	}
	out := make(map[string]Item, len(keys))
	// An empty batch is still one (pointless) API request, exactly as the
	// unsharded store treated it: a round trip plus a zero-unit charge.
	if len(keys) == 0 {
		sh := s.shards[0]
		sh.fe.RoundTrip(p, caller, 0)
		sh.fe.Charge("dynamodb.read", 0, sh.fe.Catalog().DynamoReadPerUnit)
		return out, nil
	}
	byShard := make([][]string, len(s.shards))
	for _, key := range keys {
		i := shardIndex(key, len(s.shards))
		byShard[i] = append(byShard[i], key)
	}
	for i, shardKeys := range byShard {
		if len(shardKeys) == 0 {
			continue
		}
		sh := s.shards[i]
		if err := sh.fe.RoundTripErr(p, caller, 0); err != nil {
			// A rejected shard fails the whole batch (the items already read
			// from earlier shards are discarded, like a failed BatchGetItem).
			return nil, err
		}
		var units int64
		for _, key := range shardKeys {
			rec, ok := sh.items[key]
			if !ok || s.expired(sh, p.Now(), rec) {
				units += pricing.DynamoReadUnits(0, consistent)
				continue
			}
			it := rec.item
			if !consistent {
				var found bool
				it, found = s.eventualView(sh, p.Now(), rec)
				if !found {
					units += pricing.DynamoReadUnits(0, consistent)
					continue
				}
			}
			units += pricing.DynamoReadUnits(it.Size(), consistent)
			out[key] = it
		}
		sh.fe.Charge("dynamodb.read", units, sh.fe.Catalog().DynamoReadPerUnit)
	}
	return out, nil
}

// BatchWrite performs up to 25 puts in one round trip per shard touched
// (unconditional, like BatchWriteItem). Returns the stored items keyed by
// key.
func (s *Store) BatchWrite(p *sim.Proc, caller *netsim.Node, items map[string][]byte) (map[string]Item, error) {
	if len(items) > MaxBatchItems {
		return nil, ErrBatchTooBig
	}
	for k, v := range items {
		if int64(len(k))+int64(len(v)) > MaxItemSize {
			return nil, ErrItemTooLarge
		}
	}
	out := make(map[string]Item, len(items))
	// Match the unsharded store: an empty batch still pays a round trip.
	if len(items) == 0 {
		s.shards[0].fe.RoundTrip(p, caller, 0)
		return out, nil
	}
	byShard := make([]map[string][]byte, len(s.shards))
	for k, v := range items {
		i := shardIndex(k, len(s.shards))
		if byShard[i] == nil {
			byShard[i] = make(map[string][]byte)
		}
		byShard[i][k] = v
	}
	for i, shardItems := range byShard {
		if len(shardItems) == 0 {
			continue
		}
		sh := s.shards[i]
		if err := sh.fe.RoundTripErr(p, caller, 0); err != nil {
			// Writes to earlier shards stand (a partial batch, like DynamoDB's
			// UnprocessedItems); the caller sees the admission error.
			return out, err
		}
		for k, v := range shardItems {
			size := int64(len(k) + len(v))
			sh.fe.Charge("dynamodb.write", pricing.DynamoWriteUnits(size),
				sh.fe.Catalog().DynamoWritePerUnit)
			rec := sh.items[k]
			var curVer int64
			var prev *Item
			if rec != nil {
				curVer = rec.item.Version
				prevCopy := rec.item
				prev = &prevCopy
			}
			// Overwrites clear any TTL, like writes that omit the TTL
			// attribute in DynamoDB.
			it := Item{Key: k, Value: append([]byte(nil), v...), Version: curVer + 1}
			sh.items[k] = &record{item: it, prev: prev, writtenAt: p.Now(), origin: p.Now(), originSrc: s.origin}
			if s.onWrite != nil {
				s.onWrite(k, it.Value, p.Now())
			}
			out[k] = it
		}
	}
	return out, nil
}

// SetTTL sets (or clears, with d <= 0) an expiry on a key, measured from
// now. Expired items behave as deleted on read and are reaped lazily.
func (s *Store) SetTTL(p *sim.Proc, caller *netsim.Node, key string, d time.Duration) error {
	sh := s.shardFor(key)
	if err := sh.fe.RoundTripErr(p, caller, 0); err != nil {
		return err
	}
	rec, ok := sh.items[key]
	if !ok {
		return ErrNotFound
	}
	sh.fe.Charge("dynamodb.write", pricing.DynamoWriteUnits(rec.item.Size()),
		sh.fe.Catalog().DynamoWritePerUnit)
	if d <= 0 {
		rec.expiresAt = 0
		return nil
	}
	rec.expiresAt = p.Now() + sim.Time(d)
	return nil
}

// expired reports whether rec is past its TTL at time now, deleting it from
// its shard lazily when so.
func (s *Store) expired(sh *shard, now sim.Time, rec *record) bool {
	if rec.expiresAt > 0 && now >= rec.expiresAt {
		delete(sh.items, rec.item.Key)
		return true
	}
	return false
}

// recordMap is a shard's item index.
type recordMap map[string]*record
