package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBatchWriteAndGet(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var got map[string]Item
	f.k.Spawn("c", func(p *sim.Proc) {
		items := map[string][]byte{"a": []byte("1"), "b": []byte("2"), "c": []byte("3")}
		if _, err := f.store.BatchWrite(p, f.caller, items); err != nil {
			t.Errorf("BatchWrite: %v", err)
			return
		}
		var err error
		got, err = f.store.BatchGet(p, f.caller, []string{"a", "b", "c", "missing"}, true)
		if err != nil {
			t.Errorf("BatchGet: %v", err)
		}
	})
	f.k.Run()
	if len(got) != 3 {
		t.Fatalf("BatchGet returned %d items, want 3", len(got))
	}
	if string(got["b"].Value) != "2" {
		t.Errorf("got[b] = %q", got["b"].Value)
	}
	if _, present := got["missing"]; present {
		t.Error("missing key present in batch result")
	}
}

func TestBatchLimits(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var getErr, writeErr, sizeErr error
	f.k.Spawn("c", func(p *sim.Proc) {
		keys := make([]string, MaxBatchItems+1)
		items := make(map[string][]byte, MaxBatchItems+1)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%02d", i)
			items[keys[i]] = []byte("v")
		}
		_, getErr = f.store.BatchGet(p, f.caller, keys, true)
		_, writeErr = f.store.BatchWrite(p, f.caller, items)
		_, sizeErr = f.store.BatchWrite(p, f.caller,
			map[string][]byte{"big": make([]byte, MaxItemSize+1)})
	})
	f.k.Run()
	if !errors.Is(getErr, ErrBatchTooBig) || !errors.Is(writeErr, ErrBatchTooBig) {
		t.Errorf("batch limit errors: %v, %v", getErr, writeErr)
	}
	if !errors.Is(sizeErr, ErrItemTooLarge) {
		t.Errorf("oversize item error: %v", sizeErr)
	}
}

func TestBatchIsOneRoundTrip(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var batched, single sim.Time
	f.k.Spawn("c", func(p *sim.Proc) {
		items := map[string][]byte{}
		for i := 0; i < 20; i++ {
			items[fmt.Sprintf("k%02d", i)] = []byte("v")
		}
		start := p.Now()
		f.store.BatchWrite(p, f.caller, items)
		batched = p.Now() - start
		start = p.Now()
		for k, v := range items {
			f.store.Put(p, f.caller, k, v)
		}
		single = p.Now() - start
	})
	f.k.Run()
	if batched*10 > single {
		t.Errorf("batch (%v) should be ~20x cheaper than singles (%v)", batched, single)
	}
}

func TestBatchWriteBumpsVersions(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("v1"))
		out, err := f.store.BatchWrite(p, f.caller, map[string][]byte{"k": []byte("v2")})
		if err != nil {
			t.Errorf("BatchWrite: %v", err)
			return
		}
		if out["k"].Version != 2 {
			t.Errorf("version = %d, want 2", out["k"].Version)
		}
	})
	f.k.Run()
}

func TestTTLExpiresItems(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "ephemeral", []byte("v"))
		if err := f.store.SetTTL(p, f.caller, "ephemeral", 10*time.Second); err != nil {
			t.Errorf("SetTTL: %v", err)
			return
		}
		if _, err := f.store.Get(p, f.caller, "ephemeral", true); err != nil {
			t.Errorf("read before expiry: %v", err)
		}
		p.Sleep(15 * time.Second)
		if _, err := f.store.Get(p, f.caller, "ephemeral", true); !errors.Is(err, ErrNotFound) {
			t.Errorf("read after expiry: %v, want ErrNotFound", err)
		}
	})
	f.k.Run()
}

func TestTTLClearedByZero(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("v"))
		f.store.SetTTL(p, f.caller, "k", 5*time.Second)
		f.store.SetTTL(p, f.caller, "k", 0) // clear
		p.Sleep(time.Minute)
		if _, err := f.store.Get(p, f.caller, "k", true); err != nil {
			t.Errorf("item with cleared TTL expired: %v", err)
		}
	})
	f.k.Run()
}

func TestTTLOnMissingKey(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		err = f.store.SetTTL(p, f.caller, "nope", time.Second)
	})
	f.k.Run()
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("SetTTL on missing key: %v", err)
	}
}

func TestScanSkipsExpired(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var items []Item
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "s/keep", []byte("v"))
		f.store.Put(p, f.caller, "s/drop", []byte("v"))
		f.store.SetTTL(p, f.caller, "s/drop", 5*time.Second)
		p.Sleep(time.Minute)
		items = f.store.Scan(p, f.caller, "s/")
	})
	f.k.Run()
	if len(items) != 1 || items[0].Key != "s/keep" {
		t.Errorf("Scan = %+v, want only s/keep", items)
	}
}

func TestOverwriteClearsTTL(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.k.Spawn("c", func(p *sim.Proc) {
		f.store.Put(p, f.caller, "k", []byte("v1"))
		f.store.SetTTL(p, f.caller, "k", 5*time.Second)
		f.store.Put(p, f.caller, "k", []byte("v2")) // TTL gone
		p.Sleep(time.Minute)
		if _, err := f.store.Get(p, f.caller, "k", true); err != nil {
			t.Errorf("overwritten item expired: %v", err)
		}
	})
	f.k.Run()
}
