// Package sweep fans independent experiment sweep points across worker
// goroutines so multi-point experiments (shard sweeps, provisioned-
// concurrency sweeps, replicas × gossip grids, seed repetitions) use every
// core instead of running their points back to back on one kernel.
//
// The engine's contract is that parallelism is invisible in the output:
//
//   - Point isolation: each point must be a pure function of its index —
//     it builds its own sim.Kernel, derives its own RNG streams (see
//     simrand.Derive), and shares no mutable state with other points. All
//     repo experiments already have this shape: a sweep point assembles a
//     fresh core.Cloud from (seed, point parameters) alone.
//   - Ordered merge: results are returned in point-index order no matter
//     which worker finished first, so tables, goldens, and notes render
//     byte-identically to the sequential run at any worker count.
//   - Bounded residency: at most `workers` points (and therefore at most
//     that many live kernels) execute at once; a finished point's kernel
//     is torn down by the point body before the worker takes the next
//     index, and torn-down kernels return their goroutines to the
//     cross-kernel pool for the next point to adopt.
//   - Panic context: a panic inside a point is captured with its point
//     index and worker stack and re-raised on the caller's goroutine as a
//     *PointError once in-flight points have drained, so a failed sweep
//     reports which configuration blew up instead of crashing the process
//     from an anonymous goroutine.
//
// The worker count defaults to GOMAXPROCS and can be overridden per
// process with SetWorkers (the faasbench -workers flag) or the
// SWEEP_WORKERS environment variable.
package sweep

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// override is the SetWorkers value; 0 means "not set".
var override atomic.Int64

// envWorkers parses SWEEP_WORKERS once; 0 means unset/invalid.
var envWorkers = sync.OnceValue(func() int {
	v := os.Getenv("SWEEP_WORKERS")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0
	}
	return n
})

// Workers reports the worker count sweeps run at: the SetWorkers override
// if set, else SWEEP_WORKERS from the environment, else GOMAXPROCS.
func Workers() int {
	if n := int(override.Load()); n > 0 {
		return n
	}
	if n := envWorkers(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the process-wide worker count; n <= 0 restores the
// environment/GOMAXPROCS default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	override.Store(int64(n))
}

// PointError is a panic captured inside a sweep point, re-raised on the
// sweep caller's goroutine with the point's identity attached.
type PointError struct {
	Point int    // index of the point that panicked
	Value any    // the original panic value
	Stack string // the worker goroutine's stack at capture
}

// Error implements error.
func (e *PointError) Error() string {
	return fmt.Sprintf("sweep: point %d panicked: %v", e.Point, e.Value)
}

// Unwrap exposes an underlying error panic value to errors.Is/As.
func (e *PointError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Points runs fn for every point index in [0, n) on up to Workers()
// concurrent workers and returns the results in point-index order.
func Points[T any](n int, fn func(point int) T) []T {
	return PointsN(Workers(), n, fn)
}

// Map runs fn over every item of a sweep's configuration slice on up to
// Workers() concurrent workers, returning results in item order. fn
// receives the item's index alongside the item for seed derivation.
func Map[S, T any](items []S, fn func(point int, item S) T) []T {
	return PointsN(Workers(), len(items), func(i int) T { return fn(i, items[i]) })
}

// PointsN is Points at an explicit worker count (used by the determinism
// regression tests and the sequential benchmark twins).
func PointsN[T any](workers, n int, fn func(point int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	// fail holds the captured panic with the lowest point index; after a
	// panic the sweep stops issuing new points, drains in-flight ones, and
	// re-raises deterministically from the caller's goroutine.
	var (
		failMu sync.Mutex
		fail   *PointError
	)
	failed := func() bool {
		failMu.Lock()
		defer failMu.Unlock()
		return fail != nil
	}
	runPoint := func(i int) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 64<<10)
				buf = buf[:runtime.Stack(buf, false)]
				failMu.Lock()
				if fail == nil || i < fail.Point {
					fail = &PointError{Point: i, Value: r, Stack: string(buf)}
				}
				failMu.Unlock()
				ok = false
			}
		}()
		out[i] = fn(i)
		return true
	}

	if workers == 1 {
		// Sequential fast path: identical point order and panic wrapping
		// as the concurrent path, with no goroutines to coordinate.
		for i := 0; i < n; i++ {
			if !runPoint(i) {
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n || failed() {
						return
					}
					if !runPoint(i) {
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	if fail != nil {
		panic(fail)
	}
	return out
}
