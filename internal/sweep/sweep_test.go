package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPointsOrderedResults: results land in point-index order at every
// worker count, regardless of completion order.
func TestPointsOrderedResults(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 64} {
		got := PointsN(w, 17, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("w=%d: point %d = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestPointsWorkerCountInvariance: a pure point function yields identical
// result slices at every worker count — the property the experiment
// goldens lean on.
func TestPointsWorkerCountInvariance(t *testing.T) {
	run := func(w int) []string {
		return PointsN(w, 23, func(i int) string {
			return fmt.Sprintf("point-%02d:%d", i, i*2654435761)
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 7, 23, 100} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("w=%d diverged at point %d: %q != %q", w, i, got[i], want[i])
			}
		}
	}
}

// TestPointsBoundedConcurrency: no more than `workers` points are in
// flight at once.
func TestPointsBoundedConcurrency(t *testing.T) {
	const workers = 4
	var live, peak atomic.Int64
	var mu sync.Mutex
	PointsN(workers, 64, func(i int) int {
		n := live.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer live.Add(-1)
		runtime.Gosched()
		return i
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("peak in-flight points = %d, want <= %d", p, workers)
	}
}

// TestPointsPanicContext: a panicking point surfaces as a *PointError on
// the caller's goroutine carrying the point index, the original value,
// and a worker stack.
func TestPointsPanicContext(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				pe, ok := r.(*PointError)
				if !ok {
					t.Fatalf("w=%d: recovered %T (%v), want *PointError", w, r, r)
				}
				if pe.Point != 5 {
					t.Errorf("w=%d: point = %d, want 5", w, pe.Point)
				}
				if !errors.Is(pe, boom) {
					t.Errorf("w=%d: Unwrap lost the original error: %v", w, pe.Value)
				}
				if !strings.Contains(pe.Stack, "sweep") {
					t.Errorf("w=%d: stack not captured: %q", w, pe.Stack)
				}
				if !strings.Contains(pe.Error(), "point 5") {
					t.Errorf("w=%d: Error() = %q, want point context", w, pe.Error())
				}
			}()
			PointsN(w, 8, func(i int) int {
				if i == 5 {
					panic(boom)
				}
				return i
			})
		}()
	}
}

// TestPointsSequentialStopsAtPanic: at W=1 a panic halts the sweep, so
// later points never run — matching the pre-engine sequential loops.
func TestPointsSequentialStopsAtPanic(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		PointsN(1, 8, func(i int) int {
			ran.Add(1)
			if i == 2 {
				panic("stop")
			}
			return i
		})
	}()
	if n := ran.Load(); n != 3 {
		t.Fatalf("ran %d points, want 3 (0,1,2)", n)
	}
}

// TestMapPassesItemsAndIndices: Map hands each point its item and index.
func TestMapPassesItemsAndIndices(t *testing.T) {
	items := []string{"a", "b", "c"}
	got := Map(items, func(i int, s string) string { return fmt.Sprintf("%d%s", i, s) })
	want := []string{"0a", "1b", "2c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Map[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestPointsEdgeCases: empty sweeps and over-provisioned worker counts.
func TestPointsEdgeCases(t *testing.T) {
	if got := PointsN(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("empty sweep returned %v", got)
	}
	if got := PointsN(100, 2, func(i int) int { return i + 1 }); got[0] != 1 || got[1] != 2 {
		t.Fatalf("over-provisioned sweep returned %v", got)
	}
	if got := PointsN(0, 2, func(i int) int { return i }); got[1] != 1 {
		t.Fatalf("w=0 sweep returned %v", got)
	}
}

// TestWorkersOverride: SetWorkers takes precedence and 0 restores the
// default resolution.
func TestWorkersOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if w := Workers(); w < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", w)
	}
}
