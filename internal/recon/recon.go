// Package recon implements invertible-Bloom-filter (IBF) set
// reconciliation over 64-bit element digests, after Eppstein & Goodrich's
// straggler identification structure. Two parties each summarize a set of
// uint64 elements into a fixed cell array; subtracting one summary from
// the other cancels every shared element, and peeling the difference
// recovers exactly the symmetric difference — so the bytes exchanged are
// proportional to the filter size, not the set size.
//
// A Filter is maintained incrementally: Add and Remove are O(k) XOR/count
// updates, so a replica can keep a live summary of a million-element set
// and ship it without ever walking the set. Decode succeeds with high
// probability while the symmetric difference stays below roughly half the
// cell count; callers must treat a false ok as "summary too small" and
// escalate (bigger filter, or a full exchange) — correctness never
// depends on decode success.
package recon

// hashCount is k, the number of cells each element occupies. Three
// partitioned positions is the standard IBF operating point: decode
// succeeds w.h.p. while the symmetric difference is below ~cells/1.3,
// and we size for cells ≥ 2× the expected difference.
const hashCount = 3

// CellWireBytes is the serialized size of one cell on the wire: two
// 64-bit XOR sums plus a 32-bit signed count.
const CellWireBytes = 20

// cell is one IBF bucket: a signed occupancy count, the XOR of every
// resident element, and the XOR of every resident element's check hash.
// A cell is "pure" (holds exactly one peelable element) when
// |count| == 1 and the hash sum matches the key sum's check hash.
type cell struct {
	keySum  uint64
	hashSum uint64
	count   int32
}

// Filter is an invertible Bloom filter over uint64 elements. The cell
// array is split into hashCount contiguous regions and each element maps
// to exactly one cell per region, which guarantees k distinct cells per
// element without rejection sampling.
type Filter struct {
	region int // cells per hash region
	cells  []cell
}

// New returns an empty filter with at least the requested number of
// cells, rounded up to a multiple of hashCount so the regions are equal.
func New(cells int) *Filter {
	if cells < hashCount {
		cells = hashCount
	}
	region := (cells + hashCount - 1) / hashCount
	return &Filter{region: region, cells: make([]cell, region*hashCount)}
}

// Cells reports the allocated cell count (after region rounding).
func (f *Filter) Cells() int { return len(f.cells) }

// WireBytes reports the filter's serialized transfer size.
func (f *Filter) WireBytes() int64 { return int64(len(f.cells)) * CellWireBytes }

// Reset empties the filter in place.
func (f *Filter) Reset() { clear(f.cells) }

// Mix is the splitmix64 finalizer: a cheap invertible 64-bit mix used to
// derive element digests and cell positions. Exported so callers can
// build well-distributed elements from structured inputs (key hash,
// state hash) without their own mixer.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// posSalt decorrelates the three per-region position hashes.
var posSalt = [hashCount]uint64{
	0x9e3779b97f4a7c15, // golden-ratio Weyl constant
	0xd1b54a32d192ed03,
	0x8cb92ba72f3d8dd7,
}

// pos returns element x's cell index within region i (the caller offsets
// by i*region to get the absolute index).
func pos(x uint64, i int, region int) int {
	return int(Mix(x^posSalt[i]) % uint64(region))
}

// checkHash is the purity checksum: derived from the element through a
// different mix path than the position hashes, so a cell whose XOR sums
// happen to collide positionally still fails the purity test w.h.p.
func checkHash(x uint64) uint64 {
	return Mix(x * 0xff51afd7ed558ccd)
}

// apply folds element x into (dir=+1) or out of (dir=-1) the filter.
func (f *Filter) apply(x uint64, dir int32) {
	h := checkHash(x)
	for i := 0; i < hashCount; i++ {
		c := &f.cells[i*f.region+pos(x, i, f.region)]
		c.count += dir
		c.keySum ^= x
		c.hashSum ^= h
	}
}

// Add folds element x into the filter.
func (f *Filter) Add(x uint64) { f.apply(x, 1) }

// Remove folds element x out of the filter. Removing an element that was
// never added is well-defined (counts go negative) and cancels a later
// Add — the filter is a pure XOR/count algebra.
func (f *Filter) Remove(x uint64) { f.apply(x, -1) }

// pure reports whether the cell holds exactly one recoverable element.
func pure(c *cell) bool {
	return (c.count == 1 || c.count == -1) && c.hashSum == checkHash(c.keySum)
}

// Decoder peels the difference of two filters. It owns reusable scratch
// (the subtracted cell array, the peel worklist, the output element
// slices), so a steady-state decode of two equal filters performs zero
// allocations. A Decoder is single-goroutine scratch, like the caller's
// other per-replica buffers.
type Decoder struct {
	diff   []cell
	queue  []int32
	onlyA  []uint64
	onlyB  []uint64
	region int
}

// Decode subtracts b from a cell-wise and peels the result. On success
// (ok true) onlyA holds every element present in a but not b, and onlyB
// the reverse; shared elements cancel in the subtraction and never
// surface. On failure (ok false) the difference was too large for the
// cell count — the partial slices are still returned (every peeled
// element is genuine w.h.p.) but the caller must not treat them as
// complete. Both filters must have the same cell geometry. The returned
// slices are the decoder's scratch, valid until the next Decode.
func (d *Decoder) Decode(a, b *Filter) (onlyA, onlyB []uint64, ok bool) {
	if a.region != b.region || len(a.cells) != len(b.cells) {
		panic("recon: decoding filters with different cell geometry")
	}
	d.region = a.region
	if cap(d.diff) < len(a.cells) {
		d.diff = make([]cell, len(a.cells))
	}
	d.diff = d.diff[:len(a.cells)]
	d.queue = d.queue[:0]
	d.onlyA = d.onlyA[:0]
	d.onlyB = d.onlyB[:0]
	for i := range d.diff {
		ca, cb := &a.cells[i], &b.cells[i]
		dc := &d.diff[i]
		dc.keySum = ca.keySum ^ cb.keySum
		dc.hashSum = ca.hashSum ^ cb.hashSum
		dc.count = ca.count - cb.count
		if pure(dc) {
			d.queue = append(d.queue, int32(i))
		}
	}
	for len(d.queue) > 0 {
		i := d.queue[len(d.queue)-1]
		d.queue = d.queue[:len(d.queue)-1]
		c := &d.diff[i]
		if !pure(c) {
			continue // consumed by an earlier peel since being queued
		}
		x := c.keySum
		dir := -c.count
		if c.count == 1 {
			d.onlyA = append(d.onlyA, x)
		} else {
			d.onlyB = append(d.onlyB, x)
		}
		h := checkHash(x)
		for j := 0; j < hashCount; j++ {
			idx := int32(j*d.region + pos(x, j, d.region))
			cc := &d.diff[idx]
			cc.count += dir
			cc.keySum ^= x
			cc.hashSum ^= h
			if pure(cc) {
				d.queue = append(d.queue, idx)
			}
		}
	}
	ok = true
	for i := range d.diff {
		if d.diff[i] != (cell{}) {
			ok = false
			break
		}
	}
	return d.onlyA, d.onlyB, ok
}
