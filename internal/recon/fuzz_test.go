package recon

import (
	"encoding/binary"
	"slices"
	"testing"
)

// FuzzDecodeSymmetricDifference feeds arbitrary element sets through the
// encode → subtract → peel round-trip at an arbitrary cell count. The
// invariant: whenever Decode reports success, the peeled elements must be
// exactly the true symmetric difference of the two sets — at any size,
// including filters far too small for the difference (those must report
// failure, never a wrong success).
func FuzzDecodeSymmetricDifference(f *testing.F) {
	f.Add(uint16(64), []byte{})
	f.Add(uint16(3), []byte{
		1, 0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 1,
		2, 0xca, 0xfe, 0xba, 0xbe, 0, 0, 0, 2,
		3, 0xaa, 0xbb, 0xcc, 0xdd, 0, 0, 0, 3,
	})
	f.Add(uint16(300), []byte{
		1, 1, 2, 3, 4, 5, 6, 7, 8,
		2, 1, 2, 3, 4, 5, 6, 7, 8,
		3, 1, 2, 3, 4, 5, 6, 7, 8,
	})
	f.Fuzz(func(t *testing.T, cellsRaw uint16, data []byte) {
		cells := int(cellsRaw%2048) + 1
		inA := make(map[uint64]bool)
		inB := make(map[uint64]bool)
		// Each 9-byte record is a membership byte plus an element: bit 0
		// puts it in set A, bit 1 in set B (both bits = shared).
		for len(data) >= 9 {
			member, x := data[0], binary.LittleEndian.Uint64(data[1:9])
			data = data[9:]
			if member&1 != 0 {
				inA[x] = true
			}
			if member&2 != 0 {
				inB[x] = true
			}
		}
		fa, fb := New(cells), New(cells)
		var setA, setB []uint64
		for x := range inA {
			fa.Add(x)
			setA = append(setA, x)
		}
		for x := range inB {
			fb.Add(x)
			setB = append(setB, x)
		}
		var d Decoder
		gotA, gotB, ok := d.Decode(fa, fb)
		if !ok {
			return // undersized summary; the caller's ladder handles this
		}
		wantA, wantB := symmetricDiff(setA, setB)
		gotA, gotB = slices.Clone(gotA), slices.Clone(gotB)
		slices.Sort(gotA)
		slices.Sort(gotB)
		if !slices.Equal(gotA, wantA) || !slices.Equal(gotB, wantB) {
			t.Fatalf("cells=%d: decode succeeded with wrong difference\n gotA=%v wantA=%v\n gotB=%v wantB=%v",
				cells, gotA, wantA, gotB, wantB)
		}
	})
}
