package recon

import (
	"slices"
	"testing"

	"repro/internal/simrand"
)

// fill adds every element of set into a fresh filter of the given size.
func fill(cells int, set []uint64) *Filter {
	f := New(cells)
	for _, x := range set {
		f.Add(x)
	}
	return f
}

// symmetricDiff returns (a\b, b\a) sorted, computed by brute force.
func symmetricDiff(a, b []uint64) (onlyA, onlyB []uint64) {
	inA := make(map[uint64]bool, len(a))
	inB := make(map[uint64]bool, len(b))
	for _, x := range a {
		inA[x] = true
	}
	for _, x := range b {
		inB[x] = true
	}
	for x := range inA {
		if !inB[x] {
			onlyA = append(onlyA, x)
		}
	}
	for x := range inB {
		if !inA[x] {
			onlyB = append(onlyB, x)
		}
	}
	slices.Sort(onlyA)
	slices.Sort(onlyB)
	return onlyA, onlyB
}

// checkDecode decodes the two sets' filters and, when decode succeeds,
// asserts the peeled elements are exactly the true symmetric difference.
// It returns the decode verdict so callers can assert success/failure.
func checkDecode(t *testing.T, cells int, setA, setB []uint64) bool {
	t.Helper()
	fa, fb := fill(cells, setA), fill(cells, setB)
	var d Decoder
	gotA, gotB, ok := d.Decode(fa, fb)
	if !ok {
		return false
	}
	wantA, wantB := symmetricDiff(setA, setB)
	gotA, gotB = slices.Clone(gotA), slices.Clone(gotB)
	slices.Sort(gotA)
	slices.Sort(gotB)
	if !slices.Equal(gotA, wantA) || !slices.Equal(gotB, wantB) {
		t.Fatalf("cells=%d: decode mismatch\n gotA=%v wantA=%v\n gotB=%v wantB=%v",
			cells, gotA, wantA, gotB, wantB)
	}
	return true
}

func TestDecodeShapes(t *testing.T) {
	rng := simrand.New(7)
	shared := make([]uint64, 10_000)
	for i := range shared {
		shared[i] = rng.Uint64()
	}
	cases := []struct {
		name       string
		cells      int
		setA, setB []uint64
	}{
		{"both-empty", 64, nil, nil},
		{"identical", 64, shared, shared},
		{"one-empty", 64, []uint64{1, 2, 3}, nil},
		{"disjoint", 64, []uint64{10, 20, 30}, []uint64{40, 50, 60}},
		{"subset", 64, shared[:100], shared[:97]},
		{"single-diff-large-shared", 256, append(slices.Clone(shared), 0xdeadbeef), shared},
		{"min-cells", 3, []uint64{42}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !checkDecode(t, tc.cells, tc.setA, tc.setB) {
				t.Fatalf("decode failed on a difference well under capacity")
			}
		})
	}
}

func TestDecodeRandomized(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := simrand.New(seed)
		cells := 64 + rng.Intn(200)
		nShared := rng.Intn(5000)
		nA := rng.Intn(cells / 3)
		nB := rng.Intn(cells / 3)
		var setA, setB []uint64
		for i := 0; i < nShared; i++ {
			x := rng.Uint64()
			setA = append(setA, x)
			setB = append(setB, x)
		}
		for i := 0; i < nA; i++ {
			setA = append(setA, rng.Uint64())
		}
		for i := 0; i < nB; i++ {
			setB = append(setB, rng.Uint64())
		}
		if !checkDecode(t, cells, setA, setB) {
			t.Fatalf("seed %d: decode failed at diff=%d cells=%d", seed, nA+nB, cells)
		}
	}
}

// TestDecodeEscalation drives the sizing ladder a caller is expected to
// run: a difference far above the base cell count fails to decode, and
// retrying with enough cells succeeds on the same sets.
func TestDecodeEscalation(t *testing.T) {
	rng := simrand.New(3)
	var setA, setB []uint64
	for i := 0; i < 400; i++ {
		setA = append(setA, rng.Uint64())
	}
	for i := 0; i < 350; i++ {
		setB = append(setB, rng.Uint64())
	}
	fa, fb := fill(64, setA), fill(64, setB)
	var d Decoder
	if _, _, ok := d.Decode(fa, fb); ok {
		t.Fatal("a 750-element difference decoded from 64 cells")
	}
	for cells := 128; cells <= 2048; cells *= 2 {
		if checkDecode(t, cells, setA, setB) {
			return
		}
	}
	t.Fatal("decode still failing at 2048 cells for a 750-element difference")
}

// TestAddRemoveCancel exercises incremental maintenance: replacing an
// element (remove old, add new) leaves the filter identical to one built
// from the final set, including removals applied before the matching add.
func TestAddRemoveCancel(t *testing.T) {
	f := New(64)
	f.Remove(99) // not yet present: counts go negative and cancel later
	f.Add(1)
	f.Add(2)
	f.Remove(1)
	f.Add(3)
	f.Add(99)
	want := fill(64, []uint64{2, 3})
	var d Decoder
	onlyA, onlyB, ok := d.Decode(f, want)
	if !ok || len(onlyA) != 0 || len(onlyB) != 0 {
		t.Fatalf("incrementally maintained filter differs from rebuilt: %v %v ok=%v",
			onlyA, onlyB, ok)
	}
	f.Remove(2)
	f.Remove(3)
	empty := New(64)
	if _, _, ok := d.Decode(f, empty); !ok {
		t.Fatal("fully drained filter is not empty")
	}
}

func TestGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("decoding mismatched cell geometries did not panic")
		}
	}()
	var d Decoder
	d.Decode(New(64), New(128))
}

func TestCellRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 3}, {1, 3}, {3, 3}, {4, 6}, {64, 66}, {256, 258},
	} {
		if got := New(tc.ask).Cells(); got != tc.want {
			t.Errorf("New(%d).Cells() = %d, want %d", tc.ask, got, tc.want)
		}
	}
	if got := New(64).WireBytes(); got != 66*CellWireBytes {
		t.Errorf("WireBytes = %d, want %d", got, 66*CellWireBytes)
	}
}

// BenchmarkReconRound is the steady-state converged round: subtract two
// equal live summaries and peel an empty difference. CI gates this at
// 0 allocs/op — the whole point of the reusable Decoder scratch.
func BenchmarkReconRound(b *testing.B) {
	rng := simrand.New(1)
	fa, fb := New(256), New(256)
	for i := 0; i < 100_000; i++ {
		x := rng.Uint64()
		fa.Add(x)
		fb.Add(x)
	}
	var d Decoder
	d.Decode(fa, fb) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onlyA, onlyB, ok := d.Decode(fa, fb)
		if !ok || len(onlyA) != 0 || len(onlyB) != 0 {
			b.Fatal("equal filters did not decode empty")
		}
	}
}
