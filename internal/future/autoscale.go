package future

// Autoscaling agent pools: §4 insists the fix for FaaS must keep its one
// step forward — workload-driven allocation and pay-per-use billing. A Pool
// is a set of identical agents serving a request queue; a scaler process
// watches the backlog and grows or shrinks the fleet between configured
// bounds. Agents are billed per GB-second only while they exist, so an
// idle pool at Min size costs almost nothing — autoscaling economics with
// addressable, long-running workers.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("future: pool closed")

// PoolConfig sizes and paces an autoscaling pool.
type PoolConfig struct {
	// Min and Max bound the fleet (Min >= 1).
	Min, Max int
	// MemoryMB sizes each agent.
	MemoryMB int
	// TargetBacklog is the queue depth per agent the scaler aims for;
	// deeper backlogs trigger scale-out.
	TargetBacklog int
	// TargetLatency, when set, switches the scaler to SLO mode: the
	// fleet grows while observed p95 request latency exceeds the target
	// and shrinks while it is comfortably met (see slo.go).
	TargetLatency time.Duration
	// ScaleInterval is the scaler's control period.
	ScaleInterval time.Duration
	// Handler processes one request on an agent.
	Handler func(p *sim.Proc, agent *Agent, req []byte) []byte
}

func (c *PoolConfig) validate() error {
	if c.Min < 1 || c.Max < c.Min {
		return fmt.Errorf("future: pool bounds %d..%d invalid", c.Min, c.Max)
	}
	if c.MemoryMB <= 0 {
		return errors.New("future: pool agents need memory")
	}
	if c.Handler == nil {
		return errors.New("future: pool needs a handler")
	}
	if c.TargetBacklog <= 0 {
		c.TargetBacklog = 4
	}
	if c.ScaleInterval <= 0 {
		c.ScaleInterval = time.Second
	}
	return nil
}

// poolReq is one queued request (stop is a scale-down token).
type poolReq struct {
	body     []byte
	out      *sim.Promise[[]byte]
	enqueued sim.Time
	stop     bool
}

// Pool is an autoscaled set of agents behind one queue.
type Pool struct {
	pf     *Platform
	name   string
	cfg    PoolConfig
	queue  *sim.Queue[poolReq]
	size   int
	peak   int
	served int64
	nextID int
	closed bool

	// SLO-mode state (slo.go).
	recent    []time.Duration
	recentIdx int
}

// NewPool creates and starts a pool (scaler plus Min agents).
func (pf *Platform) NewPool(k *sim.Kernel, name string, cfg PoolConfig) (*Pool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pool := &Pool{
		pf:    pf,
		name:  name,
		cfg:   cfg,
		queue: sim.NewQueue[poolReq](0),
	}
	k.Spawn(name+"/scaler", pool.scale)
	return pool, nil
}

// Size reports the current fleet size.
func (p *Pool) Size() int { return p.size }

// Peak reports the largest fleet size reached.
func (p *Pool) Peak() int { return p.peak }

// Served reports completed requests.
func (p *Pool) Served() int64 { return p.served }

// Backlog reports queued-but-unclaimed requests.
func (p *Pool) Backlog() int { return p.queue.Len() }

// Submit enqueues a request and returns a promise for its response.
func (p *Pool) Submit(proc *sim.Proc, body []byte) (*sim.Promise[[]byte], error) {
	if p.closed {
		return nil, ErrPoolClosed
	}
	pr := &sim.Promise[[]byte]{}
	p.queue.Put(proc, poolReq{body: body, out: pr, enqueued: proc.Now()})
	return pr, nil
}

// Close drains the fleet; queued requests are still served first (stop
// tokens queue behind them).
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for i := 0; i < p.size; i++ {
		p.queue.TryPut(poolReq{stop: true})
	}
}

// scale is the control loop: keep backlog per agent near the target.
func (p *Pool) scale(proc *sim.Proc) {
	for i := 0; i < p.cfg.Min; i++ {
		p.addWorker(proc)
	}
	for !p.closed {
		proc.Sleep(p.cfg.ScaleInterval)
		if p.closed {
			return
		}
		var desired int
		if p.cfg.TargetLatency > 0 {
			desired = p.sloDesired()
		} else {
			desired = p.cfg.Min
			if backlog := p.queue.Len(); backlog > 0 {
				desired += (backlog + p.cfg.TargetBacklog - 1) / p.cfg.TargetBacklog
			}
		}
		if desired > p.cfg.Max {
			desired = p.cfg.Max
		}
		if desired < p.cfg.Min {
			desired = p.cfg.Min
		}
		changed := false
		for p.size < desired {
			p.addWorker(proc)
			changed = true
		}
		for over := p.size - desired; over > 0; over-- {
			p.size-- // accounted now; the token reaps an agent later
			p.queue.TryPut(poolReq{stop: true})
			changed = true
		}
		if changed && p.cfg.TargetLatency > 0 {
			p.resetWindow()
		}
	}
}

func (p *Pool) addWorker(proc *sim.Proc) {
	p.nextID++
	p.size++
	if p.size > p.peak {
		p.peak = p.size
	}
	name := fmt.Sprintf("%s/agent-%03d", p.name, p.nextID)
	proc.Spawn(name, func(wp *sim.Proc) {
		agent := p.pf.SpawnAgent(wp, name, p.cfg.MemoryMB, nil)
		defer agent.Stop(wp)
		for {
			req, ok := p.queue.Get(wp)
			if !ok || req.stop {
				return
			}
			resp := p.cfg.Handler(wp, agent, req.body)
			p.served++
			p.recordLatency(time.Duration(wp.Now() - req.enqueued))
			req.out.Resolve(resp)
		}
	})
}
