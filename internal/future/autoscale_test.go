package future

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

func poolConfig(handler func(p *sim.Proc, a *Agent, req []byte) []byte) PoolConfig {
	return PoolConfig{
		Min: 1, Max: 8, MemoryMB: 512,
		TargetBacklog: 2, ScaleInterval: time.Second,
		Handler: handler,
	}
}

func slowEcho(d time.Duration) func(p *sim.Proc, a *Agent, req []byte) []byte {
	return func(p *sim.Proc, a *Agent, req []byte) []byte {
		p.Sleep(d)
		return req
	}
}

func TestPoolConfigValidation(t *testing.T) {
	f := newFixture(t)
	bad := []PoolConfig{
		{Min: 0, Max: 4, MemoryMB: 128, Handler: slowEcho(0)},
		{Min: 4, Max: 2, MemoryMB: 128, Handler: slowEcho(0)},
		{Min: 1, Max: 2, MemoryMB: 0, Handler: slowEcho(0)},
		{Min: 1, Max: 2, MemoryMB: 128, Handler: nil},
	}
	for i, cfg := range bad {
		if _, err := f.pf.NewPool(f.k, "bad", cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPoolServesRequests(t *testing.T) {
	f := newFixture(t)
	pool, err := f.pf.NewPool(f.k, "echo", poolConfig(slowEcho(10*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	f.k.Spawn("client", func(p *sim.Proc) {
		pr, err := pool.Submit(p, []byte("hi"))
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		got = pr.Get(p)
		pool.Close()
	})
	f.k.RunUntil(sim.Time(time.Minute))
	if string(got) != "hi" {
		t.Errorf("response = %q", got)
	}
	if pool.Served() != 1 {
		t.Errorf("Served = %d", pool.Served())
	}
}

func TestPoolScalesOutUnderLoad(t *testing.T) {
	f := newFixture(t)
	pool, err := f.pf.NewPool(f.k, "busy", poolConfig(slowEcho(200*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	const requests = 200
	donePr := make([]*sim.Promise[[]byte], 0, requests)
	f.k.Spawn("load", func(p *sim.Proc) {
		rng := simrand.New(4)
		for i := 0; i < requests; i++ {
			pr, err := pool.Submit(p, []byte{byte(i)})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			donePr = append(donePr, pr)
			p.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
		}
		for _, pr := range donePr {
			pr.Get(p)
		}
		pool.Close()
	})
	f.k.RunUntil(sim.Time(10 * time.Minute))
	if pool.Served() != requests {
		t.Fatalf("served %d/%d", pool.Served(), requests)
	}
	// One agent at 5 req/s cannot keep up with ~100 req/s offered; the
	// scaler must have grown the fleet.
	if pool.Peak() < 3 {
		t.Errorf("peak fleet = %d, want scale-out (>=3)", pool.Peak())
	}
	if pool.Peak() > 8 {
		t.Errorf("peak fleet = %d exceeded Max", pool.Peak())
	}
}

func TestPoolScalesBackToMinWhenIdle(t *testing.T) {
	f := newFixture(t)
	pool, err := f.pf.NewPool(f.k, "idle", poolConfig(slowEcho(100*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	f.k.Spawn("burst", func(p *sim.Proc) {
		var prs []*sim.Promise[[]byte]
		for i := 0; i < 50; i++ {
			pr, _ := pool.Submit(p, []byte{1})
			prs = append(prs, pr)
		}
		for _, pr := range prs {
			pr.Get(p)
		}
		// Go idle and let the scaler shrink the fleet.
		p.Sleep(30 * time.Second)
		if pool.Size() != 1 {
			t.Errorf("idle fleet = %d, want Min (1)", pool.Size())
		}
		pool.Close()
	})
	f.k.RunUntil(sim.Time(5 * time.Minute))
	if pool.Peak() < 2 {
		t.Errorf("burst never scaled out (peak %d)", pool.Peak())
	}
}

func TestPoolBillsOnlyLiveAgents(t *testing.T) {
	f := newFixture(t)
	pool, err := f.pf.NewPool(f.k, "billed", poolConfig(slowEcho(50*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	f.k.Spawn("client", func(p *sim.Proc) {
		var prs []*sim.Promise[[]byte]
		for i := 0; i < 40; i++ {
			pr, _ := pool.Submit(p, []byte{1})
			prs = append(prs, pr)
		}
		for _, pr := range prs {
			pr.Get(p)
		}
		p.Sleep(20 * time.Second) // shrink back
		pool.Close()
	})
	f.k.RunUntil(sim.Time(5 * time.Minute))
	// Scaled-down agents were stopped and billed; the meter must show
	// several agent charges (one per stopped agent).
	if n := f.meter.Count("agent.gbsec"); n < 2 {
		t.Errorf("agent.gbsec count = %d, want >= 2 (scale-down billed agents)", n)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	f := newFixture(t)
	pool, err := f.pf.NewPool(f.k, "closed", poolConfig(slowEcho(0)))
	if err != nil {
		t.Fatal(err)
	}
	var submitErr error
	f.k.Spawn("client", func(p *sim.Proc) {
		pool.Close()
		pool.Close() // idempotent
		_, submitErr = pool.Submit(p, []byte{1})
	})
	f.k.RunUntil(sim.Time(time.Minute))
	if submitErr != ErrPoolClosed {
		t.Errorf("Submit after close: %v", submitErr)
	}
}

func TestSLOModeScalesToMeetTarget(t *testing.T) {
	f := newFixture(t)
	cfg := poolConfig(slowEcho(200 * time.Millisecond))
	cfg.Max = 16
	cfg.TargetLatency = 400 * time.Millisecond
	pool, err := f.pf.NewPool(f.k, "slo", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Offered load of ~40 req/s needs ~8 agents at 5 req/s each; the SLO
	// controller must find that without a backlog heuristic.
	const requests = 400
	var prs []*sim.Promise[[]byte]
	f.k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < requests; i++ {
			pr, err := pool.Submit(p, []byte{1})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			prs = append(prs, pr)
			p.Sleep(25 * time.Millisecond)
		}
		for _, pr := range prs {
			pr.Get(p)
		}
		// Steady tail must be at or near the objective.
		if tail := pool.Tail(); tail > 2*cfg.TargetLatency && tail != 0 {
			t.Errorf("steady p95 = %v, target %v", tail, cfg.TargetLatency)
		}
		pool.Close()
	})
	f.k.RunUntil(sim.Time(10 * time.Minute))
	if pool.Served() != requests {
		t.Fatalf("served %d/%d", pool.Served(), requests)
	}
	if pool.Peak() < 5 {
		t.Errorf("SLO controller peaked at %d agents, want >= 5", pool.Peak())
	}
}

func TestSLOModeShrinksWhenComfortable(t *testing.T) {
	f := newFixture(t)
	cfg := poolConfig(slowEcho(20 * time.Millisecond))
	cfg.Max = 8
	cfg.TargetLatency = time.Second // trivially met
	pool, err := f.pf.NewPool(f.k, "slo-idle", cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.k.Spawn("load", func(p *sim.Proc) {
		var prs []*sim.Promise[[]byte]
		for i := 0; i < 60; i++ {
			pr, _ := pool.Submit(p, []byte{1})
			prs = append(prs, pr)
		}
		for _, pr := range prs {
			pr.Get(p)
		}
		p.Sleep(30 * time.Second)
		if pool.Size() != cfg.Min {
			t.Errorf("comfortable pool size = %d, want Min %d", pool.Size(), cfg.Min)
		}
		pool.Close()
	})
	f.k.RunUntil(sim.Time(5 * time.Minute))
}
