// Package future prototypes §4's "stepping forward" proposals: a cloud
// programming platform that keeps FaaS's autoscaling, pay-per-use
// billing while fixing the two steps backward:
//
//   - Long-running, addressable virtual agents: named endpoints with
//     network performance comparable to raw messaging, which survive
//     migration (virtual addressing decoupled from physical placement).
//   - Fluid code and data placement: agents can be spawned next to — or
//     migrated toward — the data they use, turning storage fetches into
//     local reads ("ship code to data").
//   - Heterogeneity-aware allocation: an agent's compute rate is not
//     artificially tied to its memory size.
//
// Experiment A3 re-runs the paper's case studies on this platform to show
// the gaps closing while the billing model stays serverless.
package future

import (
	"errors"
	"time"

	"repro/internal/msgnet"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// ErrStopped is returned for operations on a stopped agent.
var ErrStopped = errors.New("future: agent stopped")

// Config holds platform parameters.
type Config struct {
	// PlacementDelay is agent spawn time (Firecracker-class microVMs).
	PlacementDelay simrand.Dist
	// MigrationPause is the stop-the-world time of a live migration.
	MigrationPause simrand.Dist
	// LocalReadBps is the read rate for data co-located with the agent.
	LocalReadBps netsim.Bps
	// AgentNICBps sizes each agent's network endpoint.
	AgentNICBps netsim.Bps
	// ComputeMBps is the per-core crunch rate granted to agents
	// (decoupled from memory, unlike Lambda).
	ComputeMBps float64
	// Rack places agents by default (ignored when spawning near data).
	Rack int
}

// DefaultConfig returns the prototype's parameters: microVM placement,
// page-cache-speed local reads, and m4-class cores.
func DefaultConfig() Config {
	return Config{
		PlacementDelay: simrand.Uniform{Lo: 110 * time.Millisecond, Hi: 140 * time.Millisecond},
		MigrationPause: simrand.Uniform{Lo: 150 * time.Millisecond, Hi: 250 * time.Millisecond},
		LocalReadBps:   netsim.MBps(2500),
		AgentNICBps:    netsim.Gbps(10),
		ComputeMBps:    1000,
		Rack:           2,
	}
}

// Platform manages agents and data sets.
type Platform struct {
	net     *netsim.Network
	mesh    *msgnet.Mesh
	rng     *simrand.RNG
	cfg     Config
	catalog *pricing.Catalog
	meter   *pricing.Meter
	nextID  int
}

// New creates a platform sharing the cloud's network, mesh, and meter.
func New(net *netsim.Network, mesh *msgnet.Mesh, rng *simrand.RNG, cfg Config,
	catalog *pricing.Catalog, meter *pricing.Meter) *Platform {
	return &Platform{net: net, mesh: mesh, rng: rng, cfg: cfg, catalog: catalog, meter: meter}
}

// DataSet is a named collection of extents living on a storage node.
type DataSet struct {
	name    string
	node    *netsim.Node
	extents map[string]int64
}

// CreateDataSet registers a data set hosted in the given rack.
func (pf *Platform) CreateDataSet(name string, rack int) *DataSet {
	return &DataSet{
		name:    name,
		node:    pf.net.NewNode("ds/"+name, rack, netsim.Gbps(40)),
		extents: make(map[string]int64),
	}
}

// AddExtent registers (instantly — staging is not part of experiments) an
// extent of the given size.
func (ds *DataSet) AddExtent(key string, size int64) { ds.extents[key] = size }

// Extent returns an extent's size.
func (ds *DataSet) Extent(key string) (int64, bool) {
	s, ok := ds.extents[key]
	return s, ok
}

// Agent is a long-running, addressable, migratable unit of computation.
type Agent struct {
	pf       *Platform
	name     string
	memoryMB int
	node     *netsim.Node
	ep       *msgnet.Endpoint
	near     *DataSet
	started  sim.Time
	stopped  bool
}

// SpawnAgent places a new agent, blocking through the placement delay.
// With near != nil the agent is co-located with that data set (fluid
// code placement: the scheduler ships code to data).
func (pf *Platform) SpawnAgent(p *sim.Proc, name string, memoryMB int, near *DataSet) *Agent {
	pf.nextID++
	rack := pf.cfg.Rack
	if near != nil {
		rack = near.node.Rack()
	}
	node := pf.net.NewNode("agent/"+name, rack, pf.cfg.AgentNICBps)
	a := &Agent{
		pf:       pf,
		name:     name,
		memoryMB: memoryMB,
		node:     node,
		ep:       pf.mesh.Endpoint(name, node),
		near:     near,
		started:  p.Now(),
	}
	p.Sleep(pf.cfg.PlacementDelay.Sample(pf.rng))
	return a
}

// Name returns the agent's stable, location-independent name.
func (a *Agent) Name() string { return a.name }

// Endpoint returns the agent's addressable messaging endpoint — the
// capability FaaS functions lack.
func (a *Agent) Endpoint() *msgnet.Endpoint { return a.ep }

// Node returns the agent's current network node.
func (a *Agent) Node() *netsim.Node { return a.node }

// Colocated reports whether the agent currently sits with ds.
func (a *Agent) Colocated(ds *DataSet) bool { return a.near == ds }

// Read reads an extent: at page-cache speed when co-located, otherwise
// streamed across the network through both NICs.
func (a *Agent) Read(p *sim.Proc, ds *DataSet, key string) error {
	if a.stopped {
		return ErrStopped
	}
	size, ok := ds.Extent(key)
	if !ok {
		return errors.New("future: no extent " + key)
	}
	if a.near == ds {
		secs := float64(size) / float64(a.pf.cfg.LocalReadBps)
		p.Sleep(time.Duration(secs * float64(time.Second)))
		return nil
	}
	p.Sleep(a.pf.net.OneWayDelay(a.node, ds.node))
	a.pf.net.Fabric().Transfer(p, size, ds.node.NIC(), a.node.NIC())
	return nil
}

// Compute crunches bytes at the platform's per-core rate.
func (a *Agent) Compute(p *sim.Proc, bytes int64) error {
	if a.stopped {
		return ErrStopped
	}
	secs := float64(bytes) / (a.pf.cfg.ComputeMBps * 1e6)
	p.Sleep(time.Duration(secs * float64(time.Second)))
	return nil
}

// Migrate moves the agent next to ds. The endpoint's name — and every
// peer's ability to message it — survives; only a brief pause is paid.
// This is §4's "long-running, addressable virtual agents" plus "fluid
// code and data placement" in one primitive.
func (a *Agent) Migrate(p *sim.Proc, ds *DataSet) error {
	if a.stopped {
		return ErrStopped
	}
	p.Sleep(a.pf.cfg.MigrationPause.Sample(a.pf.rng))
	a.near = ds
	// The virtual address stays; the physical placement changes.
	a.node = a.pf.net.NewNode("agent/"+a.name+"/gen2-"+ds.name, ds.node.Rack(), a.pf.cfg.AgentNICBps)
	a.ep.Close()
	a.ep = a.pf.mesh.Endpoint(a.name, a.node)
	return nil
}

// Stop ends the agent, charging fine-grained pay-per-use compute (the same
// GB-second rate as FaaS — the billing model §4 wants to keep).
func (a *Agent) Stop(p *sim.Proc) pricing.USD {
	if a.stopped {
		return 0
	}
	a.stopped = true
	gb := float64(a.memoryMB) / 1024
	cost := a.pf.catalog.LambdaPerGBSecond * pricing.USD(gb*time.Duration(p.Now()-a.started).Seconds())
	a.pf.meter.ChargeCost("agent.gbsec", cost)
	a.ep.Close()
	return cost
}

// Stopped reports whether the agent has been stopped.
func (a *Agent) Stopped() bool { return a.stopped }
