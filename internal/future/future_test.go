package future

import (
	"testing"
	"time"

	"repro/internal/msgnet"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k     *sim.Kernel
	pf    *Platform
	mesh  *msgnet.Mesh
	meter *pricing.Meter
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(123)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	mesh := msgnet.NewMesh(net, rng.Fork())
	meter := &pricing.Meter{}
	pf := New(net, mesh, rng.Fork(), DefaultConfig(), pricing.Fall2018(), meter)
	return &fixture{k: k, pf: pf, mesh: mesh, meter: meter}
}

func TestSpawnTakesPlacementDelay(t *testing.T) {
	f := newFixture(t)
	var at sim.Time
	f.k.Spawn("d", func(p *sim.Proc) {
		a := f.pf.SpawnAgent(p, "a1", 512, nil)
		at = p.Now()
		if a.Name() != "a1" || a.Node() == nil || a.Endpoint() == nil {
			t.Error("agent not initialized")
		}
	})
	f.k.Run()
	if at < 110*time.Millisecond || at > 140*time.Millisecond {
		t.Errorf("placement took %v, want microVM-class 110-140ms", at)
	}
}

func TestColocatedReadIsPageCacheSpeed(t *testing.T) {
	f := newFixture(t)
	var local, remote sim.Time
	f.k.Spawn("d", func(p *sim.Proc) {
		ds := f.pf.CreateDataSet("corpus", 5)
		ds.AddExtent("batch", 100e6)
		near := f.pf.SpawnAgent(p, "near", 640, ds)
		far := f.pf.SpawnAgent(p, "far", 640, nil)
		start := p.Now()
		if err := near.Read(p, ds, "batch"); err != nil {
			t.Errorf("near read: %v", err)
		}
		local = p.Now() - start
		start = p.Now()
		if err := far.Read(p, ds, "batch"); err != nil {
			t.Errorf("far read: %v", err)
		}
		remote = p.Now() - start
	})
	f.k.Run()
	// Local: 100MB at 2.5GB/s = 40ms (the paper's EBS page-cache figure).
	if local < 38*time.Millisecond || local > 42*time.Millisecond {
		t.Errorf("co-located read = %v, want ~40ms", local)
	}
	// Remote: 100MB through a 10Gbps NIC = 80ms plus propagation.
	if remote < 2*local {
		t.Errorf("remote read %v should be well above local %v", remote, local)
	}
}

func TestAgentsAreAddressable(t *testing.T) {
	f := newFixture(t)
	var reply []byte
	f.k.Spawn("d", func(p *sim.Proc) {
		server := f.pf.SpawnAgent(p, "server", 512, nil)
		client := f.pf.SpawnAgent(p, "client", 512, nil)
		server.Endpoint().Serve(func(sp *sim.Proc, pk msgnet.Packet) []byte {
			return append([]byte("re:"), pk.Payload...)
		})
		var err error
		reply, err = client.Endpoint().Call(p, "server", []byte("ping"), 0)
		if err != nil {
			t.Errorf("Call: %v", err)
		}
	})
	f.k.Run()
	if string(reply) != "re:ping" {
		t.Errorf("reply = %q", reply)
	}
}

func TestMigrationPreservesAddress(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("d", func(p *sim.Proc) {
		ds := f.pf.CreateDataSet("shard", 6)
		ds.AddExtent("x", 50e6)
		a := f.pf.SpawnAgent(p, "mover", 512, nil)
		peer := f.pf.SpawnAgent(p, "peer", 512, nil)
		a.Endpoint().Serve(func(sp *sim.Proc, pk msgnet.Packet) []byte { return []byte("here") })

		if a.Colocated(ds) {
			t.Error("agent should start away from the shard")
		}
		before := p.Now()
		if err := a.Migrate(p, ds); err != nil {
			t.Fatalf("Migrate: %v", err)
		}
		pause := p.Now() - before
		if pause > 300*time.Millisecond {
			t.Errorf("migration pause = %v, want sub-300ms", pause)
		}
		if !a.Colocated(ds) {
			t.Error("agent not co-located after migration")
		}
		// The old Serve loop died with the old endpoint; re-serve and
		// verify the same name still answers.
		a.Endpoint().Serve(func(sp *sim.Proc, pk msgnet.Packet) []byte { return []byte("here") })
		reply, err := peer.Endpoint().Call(p, "mover", []byte("?"), 0)
		if err != nil || string(reply) != "here" {
			t.Errorf("post-migration call: %q, %v", reply, err)
		}
		// Reads are local now.
		start := p.Now()
		a.Read(p, ds, "x")
		if d := p.Now() - start; d > 25*time.Millisecond {
			t.Errorf("post-migration read = %v, want local speed", d)
		}
	})
	f.k.Run()
}

func TestPayPerUseBilling(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("d", func(p *sim.Proc) {
		a := f.pf.SpawnAgent(p, "worker", 1024, nil)
		p.Sleep(100 * time.Second)
		cost := a.Stop(p)
		// ~100s at 1GB x $0.00001667/GB-s.
		if cost < 0.0016 || cost > 0.0018 {
			t.Errorf("cost = %v, want ~$0.00167", cost)
		}
		if a.Stop(p) != 0 {
			t.Error("double Stop should charge nothing")
		}
		if err := a.Compute(p, 1); err != ErrStopped {
			t.Errorf("Compute after stop: %v", err)
		}
		if err := a.Read(p, f.pf.CreateDataSet("x", 0), "k"); err != ErrStopped {
			t.Errorf("Read after stop: %v", err)
		}
		if err := a.Migrate(p, nil); err != ErrStopped {
			t.Errorf("Migrate after stop: %v", err)
		}
	})
	f.k.Run()
	if f.meter.Cost("agent.gbsec") <= 0 {
		t.Error("meter did not record agent compute")
	}
}

func TestComputeDecoupledFromMemory(t *testing.T) {
	f := newFixture(t)
	var small, large sim.Time
	f.k.Spawn("d", func(p *sim.Proc) {
		a := f.pf.SpawnAgent(p, "small", 640, nil)
		b := f.pf.SpawnAgent(p, "large", 3008, nil)
		start := p.Now()
		a.Compute(p, 100e6)
		small = p.Now() - start
		start = p.Now()
		b.Compute(p, 100e6)
		large = p.Now() - start
	})
	f.k.Run()
	if small != large {
		t.Errorf("compute rate tied to memory: %v vs %v", small, large)
	}
	// 100MB at 1000MB/s = 0.1s, matching the m4.large optimizer step.
	if small < 99*time.Millisecond || small > 101*time.Millisecond {
		t.Errorf("compute = %v, want ~0.1s", small)
	}
}

func TestMissingExtent(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("d", func(p *sim.Proc) {
		ds := f.pf.CreateDataSet("empty", 3)
		a := f.pf.SpawnAgent(p, "reader", 512, ds)
		if err := a.Read(p, ds, "nope"); err == nil {
			t.Error("read of missing extent succeeded")
		}
	})
	f.k.Run()
}
