package future

// SLO-driven scaling: §4 argues FaaS should let users state service-level
// objectives and have the platform size itself to meet them ("FaaS
// offerings should enable up-front SLOs that are priced accordingly").
// Setting PoolConfig.TargetLatency switches a pool's scaler from backlog
// heuristics to an explicit objective: grow while observed tail latency
// misses the target, shrink while it is comfortably met.

import (
	"sort"
	"time"
)

// sloWindow is how many recent completions the controller considers.
const sloWindow = 64

// recordLatency feeds one completed request into the SLO window.
func (p *Pool) recordLatency(d time.Duration) {
	if p.cfg.TargetLatency <= 0 {
		return
	}
	if len(p.recent) < sloWindow {
		p.recent = append(p.recent, d)
	} else {
		p.recent[p.recentIdx%sloWindow] = d
	}
	p.recentIdx++
}

// tailLatency returns the p95 of the recent window (0 with no samples).
func (p *Pool) tailLatency() time.Duration {
	if len(p.recent) == 0 {
		return 0
	}
	tmp := append([]time.Duration(nil), p.recent...)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := len(tmp) * 95 / 100
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// sloDesired computes the fleet size the SLO controller wants.
func (p *Pool) sloDesired() int {
	tail := p.tailLatency()
	switch {
	case tail == 0 && p.queue.Len() > 0:
		// No data yet but work is queued: grow cautiously.
		return p.size + 1
	case tail > p.cfg.TargetLatency:
		// Missing the objective: grow proportionally to the miss.
		factor := float64(tail) / float64(p.cfg.TargetLatency)
		grow := int(factor)
		if grow < 1 {
			grow = 1
		}
		return p.size + grow
	case tail < p.cfg.TargetLatency/2 && p.queue.Len() == 0:
		// Comfortably under the objective and idle: shrink.
		return p.size - 1
	default:
		return p.size
	}
}

// Tail exposes the controller's current p95 estimate (observability hook).
func (p *Pool) Tail() time.Duration { return p.tailLatency() }

// resetWindow clears stale samples after a scaling action so the next
// decision reflects the new fleet (prevents oscillation on old data).
func (p *Pool) resetWindow() {
	p.recent = p.recent[:0]
	p.recentIdx = 0
}
