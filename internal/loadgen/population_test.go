package loadgen

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

func TestBurstNegativeOffForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative OffFor did not panic")
		}
	}()
	b := &Burst{On: Uniform{Interval: time.Millisecond},
		OnFor: 10 * time.Millisecond, OffFor: -time.Millisecond}
	b.Next(nil)
}

// TestQuickBurstWrapAround is the randomized wrap-around property: for any
// on/off windows and Poisson rate, every arrival time t satisfies
// t mod (OnFor+OffFor) < OnFor — arrivals never land in the off-window,
// even when a single gap spans several cycles.
func TestQuickBurstWrapAround(t *testing.T) {
	prop := func(seed uint64, onMs, offMs uint16, rateBase uint16) bool {
		onFor := time.Duration(onMs%500+1) * time.Millisecond
		offFor := time.Duration(offMs%2000) * time.Millisecond
		rate := float64(rateBase%900 + 100) // 100–999 req/s
		rng := simrand.New(seed)
		b := &Burst{On: Poisson{Rate: rate}, OnFor: onFor, OffFor: offFor}
		cycle := onFor + offFor
		var now time.Duration
		for i := 0; i < 500; i++ {
			now += b.Next(rng)
			if now%cycle >= onFor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPopulationValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("zero clients", func() {
		NewPopulation(simrand.New(1), simrand.New(2), 0, 1)
	})
	expectPanic("zero rate", func() {
		NewPopulation(simrand.New(1), simrand.New(2), 10, 0)
	})
	expectPanic("weight length mismatch", func() {
		k := sim.NewKernel()
		defer k.Close()
		pop := NewPopulation(simrand.New(1), simrand.New(2), 3, 1)
		pop.Weights = []float64{1, 2}
		pop.Run(k, time.Second, func(*sim.Proc, int, int) {})
		k.Run()
	})
	expectPanic("zero-sum weights", func() {
		k := sim.NewKernel()
		defer k.Close()
		pop := NewPopulation(simrand.New(1), simrand.New(2), 2, 1)
		pop.Weights = []float64{0, 0}
		pop.Run(k, time.Second, func(*sim.Proc, int, int) {})
		k.Run()
	})
}

// TestPopulationMatchesGeneratorArrivals is the equivalence test between
// the aggregated and per-arrival modes: with a shared gap-RNG seed, a
// Population of N clients must produce bit-identical arrival times (and
// count) to a per-arrival Generator over Poisson at the aggregate rate —
// superposition is exact here, not just statistical.
func TestPopulationMatchesGeneratorArrivals(t *testing.T) {
	const (
		clients = 1000
		ratePer = 1.0 // aggregate 1000 req/s
		window  = 2 * time.Second
	)

	genTimes := map[int]sim.Time{}
	k1 := sim.NewKernel()
	g := New(simrand.New(11), Poisson{Rate: ratePer * clients})
	g.Run(k1, window, func(p *sim.Proc, seq int) { genTimes[seq] = p.Now() })
	k1.Run()
	k1.Close()

	popTimes := map[int]sim.Time{}
	popClients := map[int]int{}
	k2 := sim.NewKernel()
	pop := NewPopulation(simrand.New(11), simrand.New(99), clients, ratePer)
	pop.Run(k2, window, func(p *sim.Proc, seq, client int) {
		popTimes[seq] = p.Now()
		popClients[seq] = client
	})
	k2.Run()
	k2.Close()

	if pop.Submitted != g.Submitted || len(popTimes) != len(genTimes) {
		t.Fatalf("Submitted: population %d (%d submits) vs generator %d (%d submits)",
			pop.Submitted, len(popTimes), g.Submitted, len(genTimes))
	}
	if pop.Submitted < 1800 || pop.Submitted > 2200 {
		t.Errorf("Submitted = %d, want ~2000 at 1000/s over 2s", pop.Submitted)
	}
	if pop.Late != 0 {
		t.Errorf("Late = %d with a no-op submit, want 0", pop.Late)
	}
	for seq, at := range genTimes {
		if popTimes[seq] != at {
			t.Fatalf("seq %d arrived at %v in population mode vs %v per-arrival",
				seq, popTimes[seq], at)
		}
	}
	for seq, c := range popClients {
		if c < 0 || c >= clients {
			t.Fatalf("seq %d assigned to out-of-range client %d", seq, c)
		}
	}
}

// TestPopulationStatisticalEquivalence checks the distributional side of
// the seam: per-100ms-window arrival counts match the per-arrival mode
// exactly (they share arrival times), and the inter-arrival moments match
// the exponential law at the aggregate rate.
func TestPopulationStatisticalEquivalence(t *testing.T) {
	const (
		clients = 500
		ratePer = 4.0 // aggregate 2000 req/s
		window  = 4 * time.Second
		binSize = 100 * time.Millisecond
	)
	arrivals := make([]time.Duration, 0, 9000)
	k := sim.NewKernel()
	defer k.Close()
	pop := NewPopulation(simrand.New(5), simrand.New(6), clients, ratePer)
	pop.Run(k, window, func(p *sim.Proc, seq, client int) {
		arrivals = append(arrivals, time.Duration(p.Now()))
	})
	k.Run()

	bins := make([]int, int(window/binSize))
	var gapSum, gapSq float64
	for i, at := range arrivals {
		bins[int(at/binSize)]++
		if i > 0 {
			gap := (at - arrivals[i-1]).Seconds()
			gapSum += gap
			gapSq += gap * gap
		}
	}
	// Each 100ms bin expects 200 arrivals, sd ~14; ±5σ keeps the seed-
	// pinned run deterministic while catching clock or batching bugs.
	for i, n := range bins {
		if n < 130 || n > 270 {
			t.Errorf("bin %d: %d arrivals, want ~200", i, n)
		}
	}
	n := float64(len(arrivals) - 1)
	meanGap := gapSum / n
	if math.Abs(meanGap-1.0/2000) > 0.0001 {
		t.Errorf("mean inter-arrival %vs, want ~0.0005s", meanGap)
	}
	// Exponential law: stddev equals the mean.
	sd := math.Sqrt(gapSq/n - meanGap*meanGap)
	if sd < meanGap*0.9 || sd > meanGap*1.1 {
		t.Errorf("inter-arrival stddev %vs vs mean %vs, want ≈ equal (exponential)", sd, meanGap)
	}
}

// TestPopulationMaxProcsBudget pins the fan-out cap: with a slow backend
// and MaxProcs=4, at most 4 requests are ever in flight, every submitted
// request still completes (late, not dropped), and lateness is counted.
func TestPopulationMaxProcsBudget(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	pop := NewPopulation(simrand.New(3), simrand.New(4), 100, 2) // 200 req/s
	pop.MaxProcs = 4
	inflight, peak, completed := 0, 0, 0
	pop.Run(k, time.Second, func(p *sim.Proc, seq, client int) {
		inflight++
		if inflight > peak {
			peak = inflight
		}
		p.Sleep(50 * time.Millisecond) // 200/s × 50ms service ≫ 4 slots
		inflight--
		completed++
	})
	k.Run()
	if peak > 4 {
		t.Errorf("peak in-flight %d exceeds MaxProcs=4", peak)
	}
	if completed != pop.Submitted {
		t.Errorf("completed %d of %d submitted", completed, pop.Submitted)
	}
	if pop.Late == 0 {
		t.Error("saturated budget reported no late submissions")
	}
}

// TestPopulationWeightedThinning: Weights skew the client assignment —
// a zero-weight client never receives traffic and a 3× weight receives
// ~3× the arrivals of a 1× one.
func TestPopulationWeightedThinning(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	pop := NewPopulation(simrand.New(21), simrand.New(22), 3, 1000)
	pop.Weights = []float64{1, 0, 3}
	counts := make([]int, 3)
	pop.Run(k, time.Second, func(p *sim.Proc, seq, client int) { counts[client]++ })
	k.Run()
	if counts[1] != 0 {
		t.Errorf("zero-weight client received %d arrivals", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Errorf("weight-3 client / weight-1 client = %.2f, want ~3 (%v)", ratio, counts)
	}
}

// TestPopulationLatchReleasesAtWindowEnd mirrors the Generator latch test:
// the latch promises the end of the generation window, exactly.
func TestPopulationLatchReleasesAtWindowEnd(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	pop := NewPopulation(simrand.New(5), simrand.New(6), 10, 0.5) // sparse: 5/s
	done := pop.Run(k, time.Second, func(p *sim.Proc, seq, client int) {})
	released := sim.Time(-1)
	k.Spawn("watch", func(p *sim.Proc) {
		done.Wait(p)
		released = p.Now()
	})
	k.Run()
	if released != sim.Time(time.Second) {
		t.Errorf("done latch released at %v, want exactly 1s", released)
	}
}
