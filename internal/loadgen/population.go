package loadgen

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// Population drives the load of N independent Poisson clients from a single
// generator process — the aggregated mode that makes million-user runs
// feasible. It relies on Poisson superposition: N clients at rate r each
// are statistically one Poisson stream at rate N·r whose arrivals are
// assigned to clients by i.i.d. thinning, so the generator draws one gap
// stream at the aggregate rate instead of running one process per client.
//
// Arrival times come from the same gap formula as Poisson.Next, so a
// Population sharing a gap RNG seed with a per-arrival Generator at the
// aggregate rate produces bit-identical arrival times — the equivalence the
// randomized suite pins. Submission fans out over a fixed pool of MaxProcs
// worker processes (the fan-out budget) fed in Batch-sized windows, rather
// than one fresh process per arrival.
type Population struct {
	gapRNG  *simrand.RNG
	thinRNG *simrand.RNG
	clients int
	ratePer float64

	// Weights optionally skews the thinning: client i receives a share
	// Weights[i]/Σ Weights of the aggregate stream (per-tenant or
	// per-shard rates). Empty means uniform. Len must equal the client
	// count. Set before Run.
	Weights []float64
	// Batch is how far ahead the generator materializes arrivals per
	// emission round (default 10ms of virtual time). Smaller batches bound
	// queue memory; larger ones amortize generator wakeups.
	Batch time.Duration
	// MaxProcs caps submission fan-out: at most this many requests are in
	// flight at once (default 1024). When all workers are busy past an
	// arrival's time, the request still submits — late, counted in Late —
	// so the budget bounds memory, not the workload.
	MaxProcs int

	// Submitted counts requests issued (arrivals inside the window).
	Submitted int
	// Late counts requests submitted after their arrival time because the
	// MaxProcs budget was exhausted; a non-trivial share means the budget
	// is distorting the open loop and should be raised.
	Late int
}

// popArrival is one thinned arrival: its absolute time, global sequence
// number, and assigned client.
type popArrival struct {
	at     sim.Time
	seq    int
	client int
}

// NewPopulation creates an aggregated population of clients, each a Poisson
// source at ratePerClient req/s. The two RNGs keep the streams aligned with
// the per-arrival mode: gapRNG drives inter-arrival gaps exactly as a
// Generator over Poisson{Rate: clients·ratePerClient} would consume it, and
// thinRNG independently assigns each arrival to a client.
func NewPopulation(gapRNG, thinRNG *simrand.RNG, clients int, ratePerClient float64) *Population {
	if clients <= 0 {
		panic("loadgen: population needs at least one client")
	}
	if ratePerClient <= 0 {
		panic("loadgen: non-positive per-client rate")
	}
	return &Population{gapRNG: gapRNG, thinRNG: thinRNG, clients: clients, ratePer: ratePerClient}
}

// pick assigns an arrival to a client: uniform thinning, or a cumulative-
// weight search when Weights is set.
func (pop *Population) pick(cum []float64) int {
	if cum == nil {
		return pop.thinRNG.Intn(pop.clients)
	}
	u := pop.thinRNG.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Run spawns the aggregated generation loop on k for `for_` of virtual
// time, calling submit(p, seq, client) once per arrival from a pool of
// MaxProcs worker processes. Sequence numbers follow arrival order. It
// returns a latch that releases when the generation window ends, matching
// Generator.Run's contract (in-flight requests may still be running).
func (pop *Population) Run(k *sim.Kernel, for_ time.Duration, submit func(p *sim.Proc, seq, client int)) *sim.Latch {
	var cum []float64
	if len(pop.Weights) > 0 {
		if len(pop.Weights) != pop.clients {
			panic(fmt.Sprintf("loadgen: %d weights for %d clients", len(pop.Weights), pop.clients))
		}
		cum = make([]float64, len(pop.Weights))
		total := 0.0
		for i, w := range pop.Weights {
			if w < 0 {
				panic("loadgen: negative client weight")
			}
			total += w
			cum[i] = total
		}
		if total <= 0 {
			panic("loadgen: client weights sum to zero")
		}
	}
	rate := pop.ratePer * float64(pop.clients)
	batch := pop.Batch
	if batch <= 0 {
		batch = 10 * time.Millisecond
	}
	workers := pop.MaxProcs
	if workers <= 0 {
		workers = 1024
	}

	q := sim.NewQueue[popArrival](0) // unbounded: Batch bounds its depth
	doneGen := &sim.Latch{}

	for w := 0; w < workers; w++ {
		k.Spawn("popworker", func(wp *sim.Proc) {
			for {
				a, ok := q.Get(wp)
				if !ok {
					return
				}
				if a.at > wp.Now() {
					wp.Sleep(a.at - wp.Now())
				} else if a.at < wp.Now() {
					pop.Late++
				}
				submit(wp, a.seq, a.client)
			}
		})
	}

	k.Spawn("popgen", func(p *sim.Proc) {
		gap := func() sim.Time {
			// Identical arithmetic to Poisson.Next so the gap stream is
			// bit-compatible with the per-arrival mode.
			return sim.Time(pop.gapRNG.ExpFloat64() / rate * float64(time.Second))
		}
		end := p.Now() + sim.Time(for_)
		next := p.Now() + gap()
		seq := 0
		for next < end {
			bend := p.Now() + sim.Time(batch)
			if bend > end {
				bend = end
			}
			for next < bend {
				q.TryPut(popArrival{at: next, seq: seq, client: pop.pick(cum)})
				seq++
				pop.Submitted++
				next += gap()
			}
			p.Sleep(bend - p.Now())
		}
		// Same promise as Generator.Run: the latch marks the end of the
		// generation window, not the last arrival.
		p.Sleep(end - p.Now())
		q.Close()
		doneGen.Release()
	})
	return doneGen
}
