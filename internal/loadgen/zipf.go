package loadgen

// Zipf-skewed pickers, the first slice of the trace-driven workload suite:
// real key popularity and tenant traffic are heavy-tailed, not uniform,
// and it is exactly that skew that creates hot shards, hot tenants, and
// the retry storms that hammer them. The picker precomputes the CDF once
// (the harmonic normalization is O(n) at build time) and samples by binary
// search, so a draw is O(log n) with zero steady-state allocations.

import (
	"math"
	"sort"

	"repro/internal/simrand"
)

// Zipf picks ranks in [0, N) with P(rank=k) ∝ 1/(k+1)^S. Rank 0 is the
// hottest element. S = 1 is the classic Zipf law (web and KV traces
// commonly fit S in [0.9, 1.1]); S → 0 degrades toward uniform.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a picker over n ranks with exponent s. n must be
// positive; s must be non-negative.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("loadgen: Zipf needs a positive rank count")
	}
	if s < 0 {
		panic("loadgen: Zipf exponent must be non-negative")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the rank count.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one rank from rng: 0 is the hottest, N()-1 the coldest.
func (z *Zipf) Sample(rng *simrand.RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// RankOf maps a uniform variate in [0,1) to a rank — the RNG-free lookup
// for callers that derive u by hashing an arrival sequence number, keeping
// the key choice a pure function of the arrival (no simulation RNG draw).
func (z *Zipf) RankOf(u float64) int {
	return sort.SearchFloat64s(z.cdf, u)
}

// Share returns the probability mass of the hottest k ranks — the
// headline skew number ("the top 1% of keys draw 35% of traffic").
func (z *Zipf) Share(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= len(z.cdf) {
		return 1
	}
	return z.cdf[k-1]
}

// WeightedPick picks an index in [0, len(weights)) with probability
// proportional to its weight — the per-tenant arrival splitter (one abusive
// tenant at weight 40 among polite tenants at weight 1). Like Zipf it
// precomputes the CDF and samples by binary search.
type WeightedPick struct {
	cdf []float64
}

// NewWeightedPick builds a picker from non-negative weights (at least one
// must be positive).
func NewWeightedPick(weights []float64) *WeightedPick {
	if len(weights) == 0 {
		panic("loadgen: WeightedPick needs weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("loadgen: negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("loadgen: all weights zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &WeightedPick{cdf: cdf}
}

// Sample draws one index from rng.
func (w *WeightedPick) Sample(rng *simrand.RNG) int {
	return sort.SearchFloat64s(w.cdf, rng.Float64())
}
