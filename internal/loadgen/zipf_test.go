package loadgen

import (
	"math"
	"testing"

	"repro/internal/simrand"
)

func TestZipfSkewConcentratesOnHotRanks(t *testing.T) {
	z := NewZipf(1000, 1.0)
	rng := simrand.New(3)
	counts := make([]int, z.N())
	const draws = 200000
	for i := 0; i < draws; i++ {
		r := z.Sample(rng)
		if r < 0 || r >= z.N() {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 should carry ~1/H(1000) ≈ 13.4% of the mass.
	got := float64(counts[0]) / draws
	want := z.Share(1)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("rank-0 share = %.3f, want ≈ %.3f", got, want)
	}
	// Top 10 ranks: ~39%. A uniform picker would give 1%.
	top10 := 0
	for _, c := range counts[:10] {
		top10 += c
	}
	if share := float64(top10) / draws; math.Abs(share-z.Share(10)) > 0.01 {
		t.Errorf("top-10 share = %.3f, want ≈ %.3f", share, z.Share(10))
	}
	// Monotone: hotter ranks drawn at least roughly as often as colder
	// ones (averaged over decades to smooth sampling noise).
	if counts[0] < counts[99] {
		t.Errorf("rank 0 (%d draws) colder than rank 99 (%d)", counts[0], counts[99])
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	z := NewZipf(10, 0)
	for k := 1; k <= 10; k++ {
		if got, want := z.Share(k), float64(k)/10; math.Abs(got-want) > 1e-12 {
			t.Fatalf("Share(%d) = %v, want %v (uniform)", k, got, want)
		}
	}
}

func TestZipfDeterministicPerSeed(t *testing.T) {
	za, zb := NewZipf(500, 1.1), NewZipf(500, 1.1)
	ra, rb := simrand.New(9), simrand.New(9)
	for i := 0; i < 1000; i++ {
		if a, b := za.Sample(ra), zb.Sample(rb); a != b {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, a, b)
		}
	}
}

func TestZipfRankOfMatchesSample(t *testing.T) {
	z := NewZipf(100, 1.0)
	if got := z.RankOf(0); got != 0 {
		t.Errorf("RankOf(0) = %d, want the hottest rank", got)
	}
	if got := z.RankOf(0.999999); got != 99 {
		t.Errorf("RankOf(~1) = %d, want the coldest rank", got)
	}
	// RankOf is the deterministic core Sample wraps: feeding it the same
	// uniforms an RNG would produce must give the same ranks.
	ra, rb := simrand.New(7), simrand.New(7)
	for i := 0; i < 1000; i++ {
		if a, b := z.Sample(ra), z.RankOf(rb.Float64()); a != b {
			t.Fatalf("draw %d: Sample %d != RankOf %d", i, a, b)
		}
	}
}

func TestWeightedPickRespectsWeights(t *testing.T) {
	// One abusive tenant at weight 40 among 4 polite tenants at weight 1.
	w := NewWeightedPick([]float64{1, 40, 1, 1, 1})
	rng := simrand.New(4)
	counts := make([]int, 5)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[w.Sample(rng)]++
	}
	if share := float64(counts[1]) / draws; math.Abs(share-40.0/44) > 0.01 {
		t.Errorf("abuser share = %.3f, want ≈ %.3f", share, 40.0/44)
	}
	for i, c := range counts {
		if i != 1 {
			if share := float64(c) / draws; math.Abs(share-1.0/44) > 0.005 {
				t.Errorf("tenant %d share = %.3f, want ≈ %.3f", i, share, 1.0/44)
			}
		}
	}
}

func TestWeightedPickZeroWeightNeverDrawn(t *testing.T) {
	w := NewWeightedPick([]float64{0, 1, 0})
	rng := simrand.New(5)
	for i := 0; i < 10000; i++ {
		if got := w.Sample(rng); got != 1 {
			t.Fatalf("draw %d: picked zero-weight index %d", i, got)
		}
	}
}
