package loadgen

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

func TestPoissonMeanRate(t *testing.T) {
	rng := simrand.New(1)
	p := Poisson{Rate: 100}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.Next(rng)
	}
	mean := sum.Seconds() / n
	if math.Abs(mean-0.01) > 0.0005 {
		t.Errorf("mean gap = %vs, want ~0.01s at 100/s", mean)
	}
}

func TestPoissonZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	Poisson{}.Next(simrand.New(1))
}

func TestUniformInterval(t *testing.T) {
	u := Uniform{Interval: 50 * time.Millisecond}
	if got := u.Next(nil); got != 50*time.Millisecond {
		t.Errorf("Next = %v", got)
	}
}

func TestBurstAlternates(t *testing.T) {
	rng := simrand.New(3)
	b := &Burst{On: Uniform{Interval: 10 * time.Millisecond},
		OnFor: 100 * time.Millisecond, OffFor: time.Second}
	sawLongGap := false
	for i := 0; i < 100; i++ {
		if b.Next(rng) >= time.Second {
			sawLongGap = true
		}
	}
	if !sawLongGap {
		t.Error("burst process never went quiet")
	}
}

func TestGeneratorOpenLoop(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	g := New(simrand.New(7), Uniform{Interval: 10 * time.Millisecond})
	completed := 0
	done := g.Run(k, time.Second, func(p *sim.Proc, seq int) {
		// Slow backend: takes far longer than the arrival gap. Open
		// loop means arrivals keep coming anyway.
		p.Sleep(500 * time.Millisecond)
		completed++
	})
	k.Spawn("watch", func(p *sim.Proc) { done.Wait(p) })
	k.Run()
	// ~99 arrivals in 1s at 10ms gaps.
	if g.Submitted < 90 || g.Submitted > 101 {
		t.Errorf("Submitted = %d, want ~99 (open loop)", g.Submitted)
	}
	if completed != g.Submitted {
		t.Errorf("completed %d of %d after drain", completed, g.Submitted)
	}
}

func TestGeneratorSequencesAreUnique(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	g := New(simrand.New(9), Poisson{Rate: 200})
	seen := map[int]bool{}
	g.Run(k, 500*time.Millisecond, func(p *sim.Proc, seq int) {
		if seen[seq] {
			t.Errorf("duplicate seq %d", seq)
		}
		seen[seq] = true
	})
	k.Run()
	if len(seen) == 0 {
		t.Fatal("no requests generated")
	}
}
