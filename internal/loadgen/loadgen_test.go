package loadgen

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

func TestPoissonMeanRate(t *testing.T) {
	rng := simrand.New(1)
	p := Poisson{Rate: 100}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.Next(rng)
	}
	mean := sum.Seconds() / n
	if math.Abs(mean-0.01) > 0.0005 {
		t.Errorf("mean gap = %vs, want ~0.01s at 100/s", mean)
	}
}

func TestPoissonZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	Poisson{}.Next(simrand.New(1))
}

func TestUniformInterval(t *testing.T) {
	u := Uniform{Interval: 50 * time.Millisecond}
	if got := u.Next(nil); got != 50*time.Millisecond {
		t.Errorf("Next = %v", got)
	}
}

func TestBurstAlternates(t *testing.T) {
	rng := simrand.New(3)
	b := &Burst{On: Uniform{Interval: 10 * time.Millisecond},
		OnFor: 100 * time.Millisecond, OffFor: time.Second}
	sawLongGap := false
	for i := 0; i < 100; i++ {
		if b.Next(rng) >= time.Second {
			sawLongGap = true
		}
	}
	if !sawLongGap {
		t.Error("burst process never went quiet")
	}
}

// TestBurstPhaseTiming: with a fixed seed, every arrival must land inside
// an on-window — time mod (OnFor+OffFor) < OnFor. The pre-fix state machine
// restarted the on-window clock at the boundary-crossing arrival (swallowing
// its overshoot), so arrival phases drifted into the off-window.
func TestBurstPhaseTiming(t *testing.T) {
	rng := simrand.New(17)
	b := &Burst{On: Poisson{Rate: 100},
		OnFor: 100 * time.Millisecond, OffFor: time.Second}
	cycle := b.OnFor + b.OffFor
	var now time.Duration
	offGaps := 0
	for i := 0; i < 2000; i++ {
		gap := b.Next(rng)
		if gap >= b.OffFor {
			offGaps++
		}
		now += gap
		if phase := now % cycle; phase >= b.OnFor {
			t.Fatalf("arrival %d at %v lands %v into its cycle, inside the off-window",
				i, now, phase)
		}
	}
	// ~10 arrivals per 100ms on-window => ~200 cycle crossings.
	if offGaps < 150 || offGaps > 250 {
		t.Errorf("saw %d off-window gaps over 2000 arrivals, want ~200", offGaps)
	}
}

// TestBurstOffHonoredEveryCycle: a 20ms gap spans two whole 10ms on-windows,
// so every arrival must carry exactly two off-windows. The pre-fix logic
// skipped the off-window on alternate cycles (its in-off flag reset before
// the elapsed check ran).
func TestBurstOffHonoredEveryCycle(t *testing.T) {
	b := &Burst{On: Uniform{Interval: 20 * time.Millisecond},
		OnFor: 10 * time.Millisecond, OffFor: time.Second}
	for i := 0; i < 10; i++ {
		if got := b.Next(nil); got != 20*time.Millisecond+2*time.Second {
			t.Fatalf("Next #%d = %v, want 2.02s (gap plus two off-windows)", i, got)
		}
	}
}

func TestGeneratorOpenLoop(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	g := New(simrand.New(7), Uniform{Interval: 10 * time.Millisecond})
	completed := 0
	done := g.Run(k, time.Second, func(p *sim.Proc, seq int) {
		// Slow backend: takes far longer than the arrival gap. Open
		// loop means arrivals keep coming anyway.
		p.Sleep(500 * time.Millisecond)
		completed++
	})
	k.Spawn("watch", func(p *sim.Proc) { done.Wait(p) })
	k.Run()
	// ~99 arrivals in 1s at 10ms gaps.
	if g.Submitted < 90 || g.Submitted > 101 {
		t.Errorf("Submitted = %d, want ~99 (open loop)", g.Submitted)
	}
	if completed != g.Submitted {
		t.Errorf("completed %d of %d after drain", completed, g.Submitted)
	}
}

// TestGeneratorLatchReleasesAtWindowEnd: Run's latch promises the end of
// the generation window, not the time of the last arrival (at 300ms gaps in
// a 1s window the last arrival is at 900ms).
func TestGeneratorLatchReleasesAtWindowEnd(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	g := New(simrand.New(5), Uniform{Interval: 300 * time.Millisecond})
	done := g.Run(k, time.Second, func(p *sim.Proc, seq int) {})
	released := sim.Time(-1)
	k.Spawn("watch", func(p *sim.Proc) {
		done.Wait(p)
		released = p.Now()
	})
	k.Run()
	if released != sim.Time(time.Second) {
		t.Errorf("done latch released at %v, want exactly 1s (end of generation window)", released)
	}
}

func TestGeneratorSequencesAreUnique(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	g := New(simrand.New(9), Poisson{Rate: 200})
	seen := map[int]bool{}
	g.Run(k, 500*time.Millisecond, func(p *sim.Proc, seq int) {
		if seen[seq] {
			t.Errorf("duplicate seq %d", seq)
		}
		seen[seq] = true
	})
	k.Run()
	if len(seen) == 0 {
		t.Fatal("no requests generated")
	}
}
