// Package loadgen provides open-loop workload generators for the simulated
// cloud: Poisson and bursty arrival processes that submit requests on their
// own schedule regardless of completion times, which is what exposes
// queueing collapse in fixed-capacity systems and lets autoscaling show its
// value — the paper's "one step forward".
package loadgen

import (
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// Arrivals is an arrival process: Next returns the gap before the next
// request.
type Arrivals interface {
	Next(rng *simrand.RNG) time.Duration
}

// Poisson is a memoryless arrival process at Rate requests/second.
type Poisson struct {
	Rate float64
}

// Next implements Arrivals.
func (p Poisson) Next(rng *simrand.RNG) time.Duration {
	if p.Rate <= 0 {
		panic("loadgen: non-positive rate")
	}
	return time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
}

// Uniform emits requests at a fixed interval (closed-form open loop).
type Uniform struct {
	Interval time.Duration
}

// Next implements Arrivals.
func (u Uniform) Next(*simrand.RNG) time.Duration { return u.Interval }

// Burst alternates between an On process and silence, modeling diurnal or
// flash-crowd traffic. A cycle is OnFor of On-process arrivals followed by
// OffFor of silence; an arrival whose gap crosses the on-window boundary is
// deferred into the next on-window, keeping its offset past the boundary.
type Burst struct {
	On     Arrivals
	OnFor  time.Duration
	OffFor time.Duration
	// elapsed is the position inside the current on-window, always in
	// [0, OnFor).
	elapsed time.Duration
}

// Next implements Arrivals. Every arrival time t satisfies
// t mod (OnFor+OffFor) < OnFor: the off-window is honored exactly once per
// cycle (once per crossed on-window for gaps spanning several cycles), and
// the on-window clock keeps the first post-burst gap instead of swallowing
// it.
func (b *Burst) Next(rng *simrand.RNG) time.Duration {
	if b.OnFor <= 0 {
		panic("loadgen: Burst needs a positive on-window")
	}
	if b.OffFor < 0 {
		// A negative off-window would subtract time once per crossed
		// on-window, silently corrupting the cycle arithmetic.
		panic("loadgen: Burst needs a non-negative off-window")
	}
	gap := b.On.Next(rng)
	b.elapsed += gap
	var off time.Duration
	for b.elapsed >= b.OnFor {
		b.elapsed -= b.OnFor
		off += b.OffFor
	}
	return gap + off
}

// Generator drives an arrival process for a fixed duration, invoking submit
// once per arrival. Submissions run in their own processes (open loop): a
// slow backend does not slow the generator down.
type Generator struct {
	rng      *simrand.RNG
	arrivals Arrivals

	// Submitted counts requests issued.
	Submitted int
}

// New creates a generator.
func New(rng *simrand.RNG, arrivals Arrivals) *Generator {
	return &Generator{rng: rng, arrivals: arrivals}
}

// Run spawns the generation loop on k for `for_` of virtual time, calling
// submit(p, seq) in a fresh process per request. It returns a latch that
// releases when the generation window ends (in-flight requests may still be
// running; callers track completion themselves).
func (g *Generator) Run(k *sim.Kernel, for_ time.Duration, submit func(p *sim.Proc, seq int)) *sim.Latch {
	doneGen := &sim.Latch{}
	k.Spawn("loadgen", func(p *sim.Proc) {
		// One shared body serves every request process: processes start
		// in spawn order (the kernel's start events are FIFO), so the
		// sequence numbers handed out at start time are exactly the ones
		// a per-request closure would have captured at spawn time —
		// without allocating a closure per arrival.
		next := 0
		body := func(rp *sim.Proc) {
			seq := next
			next++
			submit(rp, seq)
		}
		end := p.Now() + sim.Time(for_)
		for {
			gap := g.arrivals.Next(g.rng)
			if p.Now()+sim.Time(gap) >= end {
				break
			}
			p.Sleep(gap)
			g.Submitted++
			p.Spawn("req", body)
		}
		// The latch promises the end of the generation window, not the
		// last arrival: sleep out the remainder so timing measurements
		// keyed to the latch cover the full window.
		p.Sleep(end - p.Now())
		doneGen.Release()
	})
	return doneGen
}
