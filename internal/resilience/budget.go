package resilience

// Budget is a Finagle-style retry budget: every first attempt deposits a
// fraction of a token, every retry withdraws a whole one, and the balance
// is capped at a burst allowance. Under healthy traffic the budget stays
// full and retries flow freely; during an outage, when *every* call wants
// to retry, withdrawals outpace deposits and the budget throttles the
// client population to ~ratio extra load — the cap that keeps retries from
// multiplying an outage. Pure arithmetic (no clock, no refill goroutine),
// so shared budgets are deterministic on the sim timeline.
type Budget struct {
	ratio   float64
	burst   float64
	balance float64
	denied  int64
}

// NewBudget creates a budget granting ratio retries per call (e.g. 0.1 =
// 10% extra attempts) with an initial and maximum balance of burst tokens.
// A burst < 1 would deny every retry; values below 1 are raised to 1.
func NewBudget(ratio float64, burst float64) *Budget {
	if burst < 1 {
		burst = 1
	}
	return &Budget{ratio: ratio, burst: burst, balance: burst}
}

// Deposit credits one call's worth of retry allowance.
func (b *Budget) Deposit() {
	b.balance += b.ratio
	if b.balance > b.burst {
		b.balance = b.burst
	}
}

// TryTake withdraws one retry token, reporting whether one was available.
func (b *Budget) TryTake() bool {
	if b.balance < 1 {
		b.denied++
		return false
	}
	b.balance--
	return true
}

// Balance returns the current token balance.
func (b *Budget) Balance() float64 { return b.balance }

// Denied returns how many retries the budget has refused.
func (b *Budget) Denied() int64 { return b.denied }
