package resilience

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

var errBoom = errors.New("boom")

func TestZeroConfigPassThrough(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewClient(k, simrand.New(1), Config{})
	k.Spawn("test", func(p *sim.Proc) {
		calls := 0
		if err := c.Do(p, -1, func(q *sim.Proc) error {
			calls++
			q.Sleep(time.Millisecond)
			return nil
		}); err != nil {
			t.Errorf("Do = %v, want nil", err)
		}
		if calls != 1 {
			t.Errorf("op ran %d times, want 1", calls)
		}
		if err := c.Do(p, -1, func(*sim.Proc) error { return errBoom }); err != errBoom {
			t.Errorf("Do = %v, want errBoom", err)
		}
	})
	k.Run()
	st := c.Stats()
	if st.Calls != 2 || st.Attempts != 2 || st.Retries != 0 {
		t.Errorf("stats = %+v, want 2 calls, 2 attempts, 0 retries", st)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewClient(k, simrand.New(1), Config{Attempts: 4, BaseBackoff: 10 * time.Millisecond})
	var elapsed time.Duration
	k.Spawn("test", func(p *sim.Proc) {
		fails := 2
		start := p.Now()
		err := c.Do(p, -1, func(*sim.Proc) error {
			if fails > 0 {
				fails--
				return errBoom
			}
			return nil
		})
		elapsed = p.Now() - start
		if err != nil {
			t.Errorf("Do = %v, want nil after retries", err)
		}
	})
	k.Run()
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 3 attempts / 2 retries", st)
	}
	// Two backoff sleeps of at least BaseBackoff each must have elapsed.
	if elapsed < 20*time.Millisecond {
		t.Errorf("elapsed = %v, want >= 20ms of backoff", elapsed)
	}
}

func TestDeadlineAbandonsSlowOp(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewClient(k, simrand.New(1), Config{Deadline: 50 * time.Millisecond})
	finished := 0
	var tookMs time.Duration
	k.Spawn("test", func(p *sim.Proc) {
		start := p.Now()
		err := c.Do(p, -1, func(q *sim.Proc) error {
			q.Sleep(time.Second) // far past the deadline
			finished++
			return nil
		})
		tookMs = p.Now() - start
		if !errors.Is(err, ErrDeadline) {
			t.Errorf("Do = %v, want ErrDeadline", err)
		}
	})
	k.Run()
	if tookMs != 50*time.Millisecond {
		t.Errorf("caller blocked %v, want exactly the 50ms deadline", tookMs)
	}
	// The abandoned attempt still runs to completion on the kernel: that is
	// the billed-wasted-work semantics the retry storm depends on.
	if finished != 1 {
		t.Errorf("abandoned op finished %d times, want 1 (keeps running server-side)", finished)
	}
	if st := c.Stats(); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
}

func TestDeadlineTimerStoppedOnFastSuccess(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewClient(k, simrand.New(1), Config{Deadline: 50 * time.Millisecond})
	k.Spawn("test", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := c.Do(p, -1, func(q *sim.Proc) error {
				q.Sleep(time.Millisecond)
				return nil
			}); err != nil {
				t.Errorf("call %d: Do = %v, want nil", i, err)
			}
		}
	})
	k.Run()
	if st := c.Stats(); st.Timeouts != 0 || st.Calls != 3 {
		t.Errorf("stats = %+v, want 3 clean calls, 0 timeouts", st)
	}
}

func TestHedgeFirstCompletionWins(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewClient(k, simrand.New(1), Config{HedgeAfter: 20 * time.Millisecond})
	launches := 0
	var took time.Duration
	k.Spawn("test", func(p *sim.Proc) {
		start := p.Now()
		err := c.Do(p, -1, func(q *sim.Proc) error {
			launches++
			if launches == 1 {
				q.Sleep(time.Second) // slow primary
			} else {
				q.Sleep(5 * time.Millisecond) // fast hedge
			}
			return nil
		})
		took = p.Now() - start
		if err != nil {
			t.Errorf("Do = %v, want nil (hedge wins)", err)
		}
	})
	k.Run()
	if launches != 2 {
		t.Errorf("launches = %d, want primary + hedge", launches)
	}
	if took != 25*time.Millisecond {
		t.Errorf("call took %v, want 25ms (hedge delay + fast attempt)", took)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Errorf("Hedges = %d, want 1", st.Hedges)
	}
}

func TestHedgeNotLaunchedWhenPrimaryFast(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewClient(k, simrand.New(1), Config{HedgeAfter: 20 * time.Millisecond})
	launches := 0
	k.Spawn("test", func(p *sim.Proc) {
		_ = c.Do(p, -1, func(q *sim.Proc) error {
			launches++
			q.Sleep(time.Millisecond)
			return nil
		})
	})
	k.Run()
	if launches != 1 {
		t.Errorf("launches = %d, want 1 (no hedge for a fast primary)", launches)
	}
	if st := c.Stats(); st.Hedges != 0 {
		t.Errorf("Hedges = %d, want 0", st.Hedges)
	}
}

func TestBudgetCapsRetries(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewClient(k, simrand.New(1), Config{Attempts: 3})
	c.SetBudget(NewBudget(0.1, 2))
	k.Spawn("test", func(p *sim.Proc) {
		// Every call fails; with burst 2 and ratio 0.1 only the first few
		// retries are granted, then the budget pins attempts ~= calls.
		for i := 0; i < 50; i++ {
			_ = c.Do(p, -1, func(*sim.Proc) error { return errBoom })
		}
	})
	k.Run()
	st := c.Stats()
	if st.BudgetDenied == 0 {
		t.Fatalf("stats = %+v, want some budget denials", st)
	}
	// 50 calls deposit 5 tokens + burst 2: at most 7 retries.
	if st.Retries > 7 {
		t.Errorf("Retries = %d, want <= 7 (budget must cap amplification)", st.Retries)
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	br := NewBreaker(BreakerConfig{Window: 8, MinSamples: 4, FailureRate: 0.5, Cooldown: time.Second, HalfOpenProbes: 1})
	now := time.Duration(0)
	for i := 0; i < 4; i++ {
		if !br.Allow(now) {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		br.Record(now, false)
	}
	if br.State(now) != Open {
		t.Fatalf("state = %d after 4/4 failures, want Open", br.State(now))
	}
	if br.Allow(now + 500*time.Millisecond) {
		t.Error("open breaker allowed a call before cooldown")
	}
	now += time.Second
	if !br.Allow(now) {
		t.Fatal("half-open breaker rejected the first probe")
	}
	if br.Allow(now) {
		t.Error("half-open breaker allowed a second probe with HalfOpenProbes=1")
	}
	br.Record(now, true)
	if br.State(now) != Closed {
		t.Errorf("state = %d after probe success, want Closed", br.State(now))
	}
	if !br.Allow(now) {
		t.Error("re-closed breaker rejected a call")
	}
	if br.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", br.Trips())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	br := NewBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Second, HalfOpenProbes: 1})
	br.Record(0, false)
	br.Record(0, false)
	if br.State(0) != Open {
		t.Fatal("breaker did not trip")
	}
	now := time.Second
	if !br.Allow(now) {
		t.Fatal("no probe allowed after cooldown")
	}
	br.Record(now, false)
	if br.State(now) != Open {
		t.Error("probe failure did not re-open")
	}
	if br.Allow(now + 500*time.Millisecond) {
		t.Error("re-opened breaker allowed a call before the new cooldown")
	}
	if br.Trips() != 2 {
		t.Errorf("Trips = %d, want 2", br.Trips())
	}
}

func TestBreakerIgnoresStragglersWhileOpen(t *testing.T) {
	br := NewBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Second})
	br.Record(0, false)
	br.Record(0, false)
	if br.State(0) != Open {
		t.Fatal("breaker did not trip")
	}
	// A slow success from before the trip lands while open: must not
	// corrupt the (empty) window or change state.
	br.Record(100*time.Millisecond, true)
	if br.State(100*time.Millisecond) != Open {
		t.Error("straggler outcome changed an open breaker's state")
	}
}

func TestClientShortCircuitsOnOpenBreaker(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	br := NewBreaker(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour})
	c := NewClient(k, simrand.New(1), Config{Attempts: 2})
	c.SetBreakers([]*Breaker{br})
	var last error
	ops := 0
	k.Spawn("test", func(p *sim.Proc) {
		op := func(*sim.Proc) error { ops++; return errBoom }
		for i := 0; i < 5; i++ {
			last = c.Do(p, 0, op)
		}
	})
	k.Run()
	if last != ErrBreakerOpen {
		t.Errorf("last err = %v, want ErrBreakerOpen", last)
	}
	st := c.Stats()
	if st.ShortCircuits == 0 {
		t.Error("no short circuits recorded against a tripped breaker")
	}
	// Once tripped (after 2 failures), no further ops reach the endpoint.
	if ops != 2 {
		t.Errorf("ops = %d, want 2 (breaker must stop traffic)", ops)
	}
}

func TestBackoffBoundsAndGrowth(t *testing.T) {
	rng := simrand.New(7)
	base, cap_ := 10*time.Millisecond, 200*time.Millisecond
	prev := base
	maxSeen := time.Duration(0)
	for i := 0; i < 1000; i++ {
		d := Backoff(rng, base, cap_, prev)
		if d < base || d > cap_ {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, base, cap_)
		}
		if hi := 3 * prev; hi < cap_ && d > hi {
			t.Fatalf("draw %d: %v exceeds 3x prev (%v)", i, d, hi)
		}
		prev = d
		if d > maxSeen {
			maxSeen = d
		}
	}
	if float64(maxSeen) < 0.8*float64(cap_) {
		t.Errorf("max draw %v never approached cap %v — growth broken", maxSeen, cap_)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a, b := simrand.New(42), simrand.New(42)
	prevA, prevB := 5*time.Millisecond, 5*time.Millisecond
	for i := 0; i < 100; i++ {
		da := Backoff(a, 5*time.Millisecond, 80*time.Millisecond, prevA)
		db := Backoff(b, 5*time.Millisecond, 80*time.Millisecond, prevB)
		if da != db {
			t.Fatalf("draw %d: %v != %v for identical seeds", i, da, db)
		}
		prevA, prevB = da, db
	}
}

func TestBudgetArithmetic(t *testing.T) {
	b := NewBudget(0.5, 3)
	if !b.TryTake() || !b.TryTake() || !b.TryTake() {
		t.Fatal("burst of 3 did not grant 3 takes")
	}
	if b.TryTake() {
		t.Fatal("empty budget granted a take")
	}
	if b.Denied() != 1 {
		t.Errorf("Denied = %d, want 1", b.Denied())
	}
	b.Deposit()
	b.Deposit() // 2 deposits at ratio 0.5 = 1 token
	if !b.TryTake() {
		t.Error("budget did not refill from deposits")
	}
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Balance(); math.Abs(got-3) > 1e-9 {
		t.Errorf("Balance = %v after heavy deposits, want capped at 3", got)
	}
}
