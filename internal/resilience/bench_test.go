package resilience

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// BenchmarkRetryDecision exercises the full client decision path — budget
// deposit, breaker consult, a failing attempt under a deadline, one
// jittered backoff draw and sleep, breaker record, then a success — in
// steady state. CI gates it at 0 allocs/op: the policy layer must ride the
// kernel's allocation-free sleep/timer machinery, since it wraps every
// request of every experiment.
func BenchmarkRetryDecision(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	c := NewClient(k, simrand.New(1), Config{
		Attempts:    3,
		Deadline:    10 * time.Millisecond,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
	})
	c.SetBudget(NewBudget(1, 100))
	// The workload alternates fail/success (exactly 0.5), so trip above it.
	c.SetBreakers([]*Breaker{NewBreaker(BreakerConfig{FailureRate: 0.75})})
	fail := true
	op := func(q *sim.Proc) error {
		q.Sleep(10 * time.Microsecond)
		if fail {
			fail = false
			return errBoom
		}
		return nil
	}
	// Warm the proc pool and the client scratch outside the timed region.
	k.Spawn("warm", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			fail = true
			_ = c.Do(p, 0, op)
		}
	})
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	k.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			fail = true
			if err := c.Do(p, 0, op); err != nil {
				b.Fatalf("Do = %v", err)
			}
		}
	})
	k.Run()
}
