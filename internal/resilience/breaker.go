package resilience

import "time"

// Breaker states.
const (
	// Closed: traffic flows; outcomes fill the rolling window.
	Closed = iota
	// Open: calls fail fast until the cooldown expires.
	Open
	// HalfOpen: a bounded number of probe calls test the endpoint; one
	// success re-closes, one failure re-opens.
	HalfOpen
)

// BreakerConfig parameterizes the trip condition. The zero value gets
// sensible defaults from NewBreaker (window 32, trip at ≥50% failures over
// a ≥16-outcome window, 1s cooldown, 2 half-open probes).
type BreakerConfig struct {
	// Window is the rolling outcome window size (ring buffer capacity).
	Window int
	// MinSamples is how full the window must be before the failure-rate
	// test applies — a single early failure must not trip a cold breaker.
	MinSamples int
	// FailureRate in [0,1]: trip when failures/window ≥ this.
	FailureRate float64
	// Cooldown is how long an open breaker rejects before probing.
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent trial calls half-open admits.
	HalfOpenProbes int
}

// Breaker is a deterministic circuit breaker: closed→open on rolling
// failure rate, open→half-open after a cooldown measured in simulated
// time, half-open→closed on a probe success (→open again on a probe
// failure). All state is plain arithmetic — no wall clock, no goroutines —
// so breaker decisions replay bit-identically. Not safe for use from
// multiple OS threads; the sim kernel's single timeline is the lock.
type Breaker struct {
	cfg   BreakerConfig
	state int
	// Rolling outcome ring: fails counts set bits among the valid n.
	ring  []bool
	head  int
	n     int
	fails int
	// until is the open state's expiry; probes counts half-open launches.
	until  time.Duration
	probes int
	// Trips counts closed→open transitions (including half-open relapses).
	trips int64
}

// NewBreaker creates a breaker, applying defaults for zero cfg fields.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = cfg.Window / 2
		if cfg.MinSamples < 1 {
			cfg.MinSamples = 1
		}
	}
	if cfg.FailureRate <= 0 {
		cfg.FailureRate = 0.5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 2
	}
	return &Breaker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State returns the current state, advancing open→half-open if the
// cooldown has expired at now.
func (b *Breaker) State(now time.Duration) int {
	if b.state == Open && now >= b.until {
		b.state = HalfOpen
		b.probes = 0
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 { return b.trips }

// Allow reports whether a call may proceed at now. In half-open it admits
// up to HalfOpenProbes trial calls and rejects the rest.
func (b *Breaker) Allow(now time.Duration) bool {
	switch b.State(now) {
	case Closed:
		return true
	case HalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		return false
	default:
		return false
	}
}

// Record feeds a call outcome back at now. Outcomes arriving while the
// breaker is open (stragglers from before the trip) are discarded.
func (b *Breaker) Record(now time.Duration, ok bool) {
	switch b.State(now) {
	case Closed:
		b.push(ok)
		if b.n >= b.cfg.MinSamples && float64(b.fails) >= b.cfg.FailureRate*float64(b.n) {
			b.trip(now)
		}
	case HalfOpen:
		if ok {
			// One good probe re-closes; the window restarts empty so stale
			// pre-outage failures can't immediately re-trip.
			b.state = Closed
			b.reset()
		} else {
			b.trip(now)
		}
	}
}

func (b *Breaker) push(ok bool) {
	if b.n == len(b.ring) {
		if b.ring[b.head] {
			b.fails--
		}
	} else {
		b.n++
	}
	fail := !ok
	b.ring[b.head] = fail
	if fail {
		b.fails++
	}
	b.head++
	if b.head == len(b.ring) {
		b.head = 0
	}
}

func (b *Breaker) trip(now time.Duration) {
	b.state = Open
	b.until = now + b.cfg.Cooldown
	b.trips++
	b.reset()
}

func (b *Breaker) reset() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.head, b.n, b.fails = 0, 0, 0
}
