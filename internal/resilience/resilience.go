// Package resilience is the client-side failure-handling layer for the
// simulated cloud: per-call deadlines, capped exponential backoff with
// decorrelated jitter, token-bucket retry budgets, per-endpoint circuit
// breakers, and optional tail-latency hedging. The chaos engine (PR 9) can
// break the platform; this package decides what a caller does about it —
// and, configured naively, how callers turn a transient slowdown into a
// metastable retry storm (the retrystorm experiment).
//
// Everything here is deterministic: backoff jitter comes from a seeded
// simrand stream owned by the caller, deadlines are cancellable sim.Timers,
// and breaker/budget state is pure arithmetic over simulated time — a run
// is bit-identical at any sweep worker count. The decision path (backoff
// draw, budget take, breaker allow/record) allocates nothing in steady
// state (CI-gated via BenchmarkRetryDecision), and a Client's call scratch
// (timers, signal, attempt body) is allocated once and reused for the
// client's lifetime.
//
// A Client belongs to one calling process: it executes one call at a time,
// like a connection-pool handle. Breakers and budgets are designed to be
// shared between clients talking to the same endpoints (process-wide state,
// the way a service mesh sidecar holds it), and a Stats sink can aggregate
// outcome counters across a whole client population.
package resilience

import (
	"errors"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// ErrDeadline is returned when an attempt's deadline expires before the
// operation completes. The abandoned attempt keeps running at the server —
// it occupies a service slot and bills like any other request, which is
// exactly the wasted work that lets naive retries amplify an outage.
var ErrDeadline = errors.New("resilience: deadline exceeded")

// ErrBreakerOpen is returned when the endpoint's circuit breaker is open:
// the call fails fast without touching the network.
var ErrBreakerOpen = errors.New("resilience: circuit open")

// Stats counts call outcomes. Share one sink across clients (SetStatsSink)
// to aggregate a population; counters are plain int64s on the kernel's
// single timeline, so no atomics are needed.
type Stats struct {
	// Calls counts Do invocations; Attempts counts operations actually
	// launched (retries and hedges included).
	Calls, Attempts int64
	// Retries counts re-attempts after a failure; Timeouts counts attempts
	// abandoned at their deadline; Hedges counts speculative second
	// requests launched by the hedging timer.
	Retries, Timeouts, Hedges int64
	// ShortCircuits counts calls rejected by an open breaker without an
	// attempt; BudgetDenied counts retries foregone because the retry
	// budget was empty.
	ShortCircuits, BudgetDenied int64
}

// Config parameterizes a Client's retry policy. The zero value is a plain
// pass-through: one attempt, no deadline, no backoff, no hedging.
type Config struct {
	// Attempts is the total number of tries per call (first attempt
	// included); values below 1 mean 1.
	Attempts int
	// Deadline bounds each attempt; 0 disables. An expired attempt returns
	// ErrDeadline to the caller but keeps running (and billing) at the
	// server.
	Deadline time.Duration
	// BaseBackoff enables sleeping between attempts: each retry waits a
	// decorrelated-jitter draw in [BaseBackoff, min(MaxBackoff, 3×previous)]
	// (see Backoff). 0 retries immediately — the naive policy.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth; 0 with BaseBackoff > 0 means
	// 16×BaseBackoff.
	MaxBackoff time.Duration
	// HedgeAfter, when positive, launches a speculative second attempt if
	// the first has not completed after this long (a p99-class delay); the
	// first completion wins and the loser keeps running — still billed.
	HedgeAfter time.Duration
}

// Client executes calls under a retry policy for one calling process. Not
// safe for concurrent calls: a Client runs one Do at a time, like the
// per-worker handle of a connection pool. Budget, breakers, and the stats
// sink may be shared across clients.
type Client struct {
	k      *sim.Kernel
	rng    *simrand.RNG
	cfg    Config
	budget *Budget
	brs    []*Breaker
	stats  *Stats
	own    Stats

	// Per-call scratch, allocated once and reused: the attempt body reads
	// the op/gen fields at start time (the parent is parked for the whole
	// call, so they cannot change underneath it), and a generation counter
	// makes completions of abandoned attempts harmless no-ops.
	gen       uint64
	op        func(*sim.Proc) error
	done      bool
	err       error
	sig       sim.Signal
	deadlineT *sim.Timer
	hedgeT    *sim.Timer
	body      func(*sim.Proc)
}

// NewClient creates a client on kernel k drawing backoff jitter from rng.
func NewClient(k *sim.Kernel, rng *simrand.RNG, cfg Config) *Client {
	if cfg.Attempts < 1 {
		cfg.Attempts = 1
	}
	if cfg.BaseBackoff > 0 && cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 16 * cfg.BaseBackoff
	}
	c := &Client{k: k, rng: rng, cfg: cfg}
	c.stats = &c.own
	c.body = func(cp *sim.Proc) {
		// Read the call state at start: the parent is parked in sig.Wait
		// for the whole call, so gen/op are stable until it resumes.
		g := c.gen
		err := c.op(cp)
		if g == c.gen && !c.done {
			c.done = true
			c.err = err
			c.sig.Fire()
		}
	}
	c.deadlineT = k.NewTimer(func() {
		if !c.done {
			c.done = true
			c.err = ErrDeadline
			c.sig.Fire()
		}
	})
	c.hedgeT = k.NewTimer(func() {
		if !c.done {
			c.stats.Hedges++
			c.k.Spawn("resilience-hedge", c.body)
		}
	})
	return c
}

// SetBudget attaches a (possibly shared) retry budget; nil detaches.
func (c *Client) SetBudget(b *Budget) { c.budget = b }

// SetBreakers attaches the per-endpoint breaker table, indexed by the
// endpoint argument of Do; endpoints outside the slice have no breaker.
// The slice is typically shared by every client of a service.
func (c *Client) SetBreakers(brs []*Breaker) { c.brs = brs }

// SetStatsSink redirects outcome counters to a shared sink (nil restores
// the client's private counters).
func (c *Client) SetStatsSink(s *Stats) {
	if s == nil {
		s = &c.own
	}
	c.stats = s
}

// Stats returns the current counter values of the client's sink.
func (c *Client) Stats() Stats { return *c.stats }

// Do executes op under the client's policy against the given endpoint
// (index into the breaker table; pass a negative endpoint to skip breaker
// consultation). op runs in a child process so a deadline can abandon it;
// it must use the process it is handed, not the caller's. Returns nil on
// the first successful attempt, ErrBreakerOpen on a fast-failed call, or
// the last attempt's error (ErrDeadline for a timeout).
func (c *Client) Do(p *sim.Proc, endpoint int, op func(*sim.Proc) error) error {
	var br *Breaker
	if endpoint >= 0 && endpoint < len(c.brs) {
		br = c.brs[endpoint]
	}
	c.stats.Calls++
	if c.budget != nil {
		c.budget.Deposit()
	}
	prev := c.cfg.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			if c.budget != nil && !c.budget.TryTake() {
				c.stats.BudgetDenied++
				break
			}
			c.stats.Retries++
			if c.cfg.BaseBackoff > 0 {
				d := Backoff(c.rng, c.cfg.BaseBackoff, c.cfg.MaxBackoff, prev)
				prev = d
				p.Sleep(d)
			}
		}
		if br != nil && !br.Allow(p.Now()) {
			// Fail fast: an open breaker rejects without burning a backoff
			// cycle — the cooldown timer, not the retry loop, decides when
			// the endpoint is probed again.
			c.stats.ShortCircuits++
			if lastErr == nil {
				lastErr = ErrBreakerOpen
			}
			break
		}
		c.stats.Attempts++
		err := c.once(p, op)
		if br != nil {
			br.Record(p.Now(), err == nil)
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrDeadline) {
			c.stats.Timeouts++
		}
		lastErr = err
	}
	return lastErr
}

// once runs a single attempt: inline when no deadline or hedge is
// configured, otherwise in a child process raced against the deadline and
// hedge timers. The first completion (either attempt, or the deadline)
// wins; late finishers see a stale generation and do nothing.
func (c *Client) once(p *sim.Proc, op func(*sim.Proc) error) error {
	if c.cfg.Deadline <= 0 && c.cfg.HedgeAfter <= 0 {
		return op(p)
	}
	c.gen++
	c.op = op
	c.done = false
	c.err = nil
	p.Spawn("resilience-attempt", c.body)
	if c.cfg.Deadline > 0 {
		c.deadlineT.Reset(c.cfg.Deadline)
	}
	if c.cfg.HedgeAfter > 0 && (c.cfg.Deadline <= 0 || c.cfg.HedgeAfter < c.cfg.Deadline) {
		c.hedgeT.Reset(c.cfg.HedgeAfter)
	}
	c.sig.Wait(p)
	c.deadlineT.Stop()
	c.hedgeT.Stop()
	return c.err
}

// Backoff draws one decorrelated-jitter backoff: uniform in
// [base, min(cap, 3×prev)], after the AWS architecture blog's
// "decorrelated jitter" schedule. Pass the previous draw (or base for the
// first retry) as prev; successive draws random-walk upward until the cap
// while staying spread out, which is what keeps a thundering herd of
// synchronized retriers from re-synchronizing.
func Backoff(rng *simrand.RNG, base, cap_, prev time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	hi := 3 * prev
	if cap_ > 0 && hi > cap_ {
		hi = cap_
	}
	if hi <= base {
		return base
	}
	return base + time.Duration(rng.Float64()*float64(hi-base))
}
