package election

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// TestChaosRandomCrashesAndRecoveries subjects a direct-transport cluster
// to a random crash/restart schedule and checks the protocol's safety and
// liveness invariants throughout:
//
//   - safety: no two running nodes ever claim leadership of the same term;
//   - liveness: whenever the cluster is left undisturbed, it converges on
//     the highest live node.
func TestChaosRandomCrashesAndRecoveries(t *testing.T) {
	const members = 7
	c := newDirectCluster(t, members)
	rng := simrand.New(2026)

	if !runUntil(c.k, sim.Time(10*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == members
	}) {
		t.Fatal("initial agreement failed")
	}

	checkSafety := func() {
		leaders := map[int64][]int{}
		for _, n := range c.nodes {
			if !n.Stopped() && n.State() == Leader {
				leaders[n.Term()] = append(leaders[n.Term()], n.ID())
			}
		}
		for term, ids := range leaders {
			if len(ids) > 1 {
				t.Fatalf("safety violation: term %d has leaders %v", term, ids)
			}
		}
	}

	highestAlive := func() int {
		best := -1
		for _, n := range c.nodes {
			if !n.Stopped() && n.ID() > best {
				best = n.ID()
			}
		}
		return best
	}

	for round := 0; round < 12; round++ {
		// Random disturbance: crash a random running node (keeping at
		// least two alive) or restart a random stopped one.
		var running, stopped []int
		for i, n := range c.nodes {
			if n.Stopped() {
				stopped = append(stopped, i)
			} else {
				running = append(running, i)
			}
		}
		switch {
		case len(stopped) > 0 && (len(running) <= 2 || rng.Float64() < 0.4):
			i := stopped[rng.Intn(len(stopped))]
			// A restarted node needs a fresh transport (its endpoint
			// was closed on crash).
			c.trs[i] = c.trs[i].net.ForNode(c.nodes[i].ID(), c.trs[i].ep.Node())
			c.nodes[i] = NewNode(c.nodes[i].ID(), c.trs[i], DirectParams())
			c.nodes[i].Start(c.k)
		default:
			i := running[rng.Intn(len(running))]
			c.nodes[i].Stop()
			c.trs[i].Close()
		}

		// Step through the disturbance, checking safety continuously.
		for step := 0; step < 100; step++ {
			c.k.RunUntil(c.k.Now() + sim.Time(10*time.Millisecond))
			checkSafety()
		}

		// Quiet period: the cluster must converge on the highest
		// live node.
		want := highestAlive()
		if !runUntil(c.k, c.k.Now()+sim.Time(30*time.Second), sim.Time(10*time.Millisecond), func() bool {
			return agreedLeader(c.nodes) == want
		}) {
			t.Fatalf("round %d: no convergence on node %d; leaders %v",
				round, want, leadersOf(c.nodes))
		}
		checkSafety()
	}
}

// TestChaosBlackboardLeaderChurn drives repeated failovers on the
// blackboard transport and verifies convergence and bounded round times
// every time (a long-running soak of the paper's case-study path).
func TestChaosBlackboardLeaderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	c := newBlackboardCluster(t, 5)
	if !runUntil(c.k, sim.Time(2*time.Minute), sim.Time(250*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 5
	}) {
		t.Fatal("initial agreement failed")
	}
	// Walk leadership down the id space, then restart everyone.
	for round := 0; round < 3; round++ {
		c.k.RunUntil(c.k.Now() + sim.Time(30*time.Second))
		leader := agreedLeader(c.nodes)
		var leaderNode *Node
		for _, n := range c.nodes {
			if n.ID() == leader {
				leaderNode = n
			}
		}
		crashAt := c.k.Now()
		leaderNode.Stop()
		if !runUntil(c.k, crashAt+sim.Time(2*time.Minute), sim.Time(250*time.Millisecond), func() bool {
			a := agreedLeader(c.nodes)
			return a > 0 && a != leader
		}) {
			t.Fatalf("round %d: failover stalled", round)
		}
		roundTime := time.Duration(c.k.Now() - crashAt)
		if roundTime > 30*time.Second {
			t.Errorf("round %d took %v, want well under 30s", round, roundTime)
		}
	}
	// Revive the fallen; the original highest must bully back.
	for _, n := range c.nodes {
		if n.Stopped() {
			n.Restart(c.k)
		}
	}
	if !runUntil(c.k, c.k.Now()+sim.Time(3*time.Minute), sim.Time(250*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 5
	}) {
		t.Fatalf("restarted cluster did not re-elect node 5; leaders %v", leadersOf(c.nodes))
	}
}
