package election

import (
	"encoding/json"
	"fmt"

	"repro/internal/msgnet"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// DirectNet runs the bully protocol over addressable point-to-point
// messaging — what the paper's serverful baseline (and its §4 vision of
// long-running addressable agents) can do, and FaaS cannot.
type DirectNet struct {
	mesh    *msgnet.Mesh
	params  Params
	members []int
}

// NewDirectNet creates the shared messaging configuration for the given
// member ids.
func NewDirectNet(mesh *msgnet.Mesh, params Params, members []int) *DirectNet {
	return &DirectNet{mesh: mesh, params: params, members: SortIDs(append([]int(nil), members...))}
}

// wireMsg is the on-the-wire frame.
type wireMsg struct {
	Kind string  `json:"kind"` // "hb", "coordhb", "claim", "msg"
	From int     `json:"from"`
	Term int64   `json:"term"`
	Type MsgType `json:"type,omitempty"`
}

func endpointName(id int) string { return fmt.Sprintf("bully-%06d", id) }

// ForNode creates the per-node transport, registering an endpoint on the
// given network node.
func (d *DirectNet) ForNode(id int, node *netsim.Node) *DirectTransport {
	return &DirectTransport{
		net:      d,
		id:       id,
		ep:       d.mesh.Endpoint(endpointName(id), node),
		lastSeen: make(map[int]sim.Time),
	}
}

// DirectTransport is one node's messaging handle.
type DirectTransport struct {
	net *DirectNet
	id  int
	ep  *msgnet.Endpoint

	lastSeen map[int]sim.Time
	coord    coordRecord
	coordAt  sim.Time
	hasCoord bool
}

// Close tears down the endpoint (call after crashing a node so peers'
// sends fail fast instead of queueing).
func (t *DirectTransport) Close() { t.ep.Close() }

func (t *DirectTransport) broadcast(p *sim.Proc, m wireMsg) {
	data, _ := json.Marshal(m)
	for _, peer := range t.net.members {
		if peer == t.id {
			continue
		}
		// Dead peers return errors; the protocol tolerates loss.
		_ = t.ep.Send(p, endpointName(peer), data)
	}
}

// Heartbeat implements Transport.
func (t *DirectTransport) Heartbeat(p *sim.Proc, id int, term int64) {
	t.broadcast(p, wireMsg{Kind: "hb", From: id, Term: term})
}

// LeaderHeartbeat implements Transport.
func (t *DirectTransport) LeaderHeartbeat(p *sim.Proc, id int, term int64) {
	t.adoptCoord(p.Now(), id, term)
	t.broadcast(p, wireMsg{Kind: "coordhb", From: id, Term: term})
}

// Send implements Transport.
func (t *DirectTransport) Send(p *sim.Proc, from, to int, typ MsgType, term int64) {
	data, _ := json.Marshal(wireMsg{Kind: "msg", From: from, Term: term, Type: typ})
	_ = t.ep.Send(p, endpointName(to), data)
}

// Claim implements Transport. Direct messaging has no CAS; bully resolves
// concurrent claims by rank (only the highest live node reaches Claim,
// and receivers prefer higher ids at equal terms).
func (t *DirectTransport) Claim(p *sim.Proc, id int, term int64) bool {
	t.adoptCoord(p.Now(), id, term)
	t.broadcast(p, wireMsg{Kind: "claim", From: id, Term: term})
	return true
}

func (t *DirectTransport) adoptCoord(now sim.Time, leader int, term int64) {
	if !t.hasCoord || term > t.coord.Term ||
		(term == t.coord.Term && leader >= t.coord.Leader) {
		t.coord = coordRecord{Leader: leader, Term: term}
		t.coordAt = now
		t.hasCoord = true
	}
}

// Observe implements Transport: drain the mailbox and synthesize the view.
func (t *DirectTransport) Observe(p *sim.Proc, id int) View {
	now := p.Now()
	var view View
	for {
		pk, ok := t.ep.TryRecv()
		if !ok {
			break
		}
		var m wireMsg
		if json.Unmarshal(pk.Payload, &m) != nil {
			continue
		}
		switch m.Kind {
		case "hb":
			t.lastSeen[m.From] = now
		case "coordhb", "claim":
			t.lastSeen[m.From] = now
			t.adoptCoord(now, m.From, m.Term)
		case "msg":
			t.lastSeen[m.From] = now
			view.Inbox = append(view.Inbox, Message{Type: m.Type, From: m.From, Term: m.Term})
		}
	}
	stale := sim.Time(t.net.params.FailureTimeout)
	view.Alive = append(view.Alive, id) // self
	for peer, seen := range t.lastSeen {
		if now-seen < stale {
			view.Alive = append(view.Alive, peer)
		}
	}
	SortIDs(view.Alive)
	view.Members = append([]int(nil), t.net.members...)
	if t.hasCoord {
		view.Coord = CoordView{
			Leader: t.coord.Leader,
			Term:   t.coord.Term,
			Fresh:  now-t.coordAt < stale,
		}
	}
	return view
}

var _ Transport = (*DirectTransport)(nil)
