// Package election implements Garcia-Molina's bully leader election, the
// protocol the paper uses to show that FaaS "stymies distributed computing".
//
// The protocol logic is transport-independent. Two transports mirror the
// paper's dual design patterns:
//
//   - Blackboard (blackboard.go): all communication through a DynamoDB-style
//     table, each node polling four times a second — the only option on
//     FaaS, where functions are not network-addressable. Rounds take tens
//     of seconds and every poll costs storage read units.
//   - Direct (direct.go): the same protocol over addressable messaging
//     (msgnet), the serverful baseline — rounds take milliseconds.
package election

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// MsgType enumerates bully protocol messages.
type MsgType int

// Protocol message types. Heartbeats are transport-internal liveness
// carriers surfaced through View rather than the inbox.
const (
	MsgElection    MsgType = iota // "I am holding an election" (sent to higher ids)
	MsgOK                         // "a higher node is alive; stand down"
	MsgCoordinator                // "I am the coordinator" announcement
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgElection:
		return "ELECTION"
	case MsgOK:
		return "OK"
	case MsgCoordinator:
		return "COORDINATOR"
	default:
		return "UNKNOWN"
	}
}

// Message is one protocol message.
type Message struct {
	Type MsgType
	From int
	Term int64
}

// CoordView is a node's view of the current coordinator.
type CoordView struct {
	Leader int
	Term   int64
	Fresh  bool // heartbeat seen within the failure timeout
}

// View is everything one polling cycle reveals.
type View struct {
	Coord   CoordView
	Alive   []int // ids with fresh member heartbeats, sorted
	Members []int // all known member ids regardless of liveness, sorted
	Inbox   []Message
}

// Transport abstracts how protocol state moves between nodes. Each node
// owns its transport instance (transports hold per-node cursors).
type Transport interface {
	// Heartbeat publishes this node's liveness.
	Heartbeat(p *sim.Proc, id int, term int64)
	// LeaderHeartbeat refreshes the coordinator record (leaders only).
	LeaderHeartbeat(p *sim.Proc, id int, term int64)
	// Observe performs one polling cycle's reads.
	Observe(p *sim.Proc, id int) View
	// Send delivers a protocol message to one peer.
	Send(p *sim.Proc, from, to int, typ MsgType, term int64)
	// Claim atomically claims coordinatorship for the given term,
	// reporting whether the claim won.
	Claim(p *sim.Proc, id int, term int64) bool
}

// Params are the protocol's timing knobs.
type Params struct {
	// PollInterval is the cycle cadence (the paper: 4 polls per second).
	PollInterval time.Duration
	// HeartbeatPeriod is how often liveness is republished.
	HeartbeatPeriod time.Duration
	// FailureTimeout is how stale a heartbeat may be before its node is
	// presumed dead. Must be conservative relative to polling latency.
	FailureTimeout time.Duration
	// OKWait is how long a candidate waits for an OK from a higher node
	// before claiming coordinatorship.
	OKWait time.Duration
	// CoordWait is how long a stood-down candidate waits for a
	// COORDINATOR announcement before re-electing.
	CoordWait time.Duration
}

// PaperParams returns blackboard timings calibrated to the paper's
// measurement: 250ms polling (4 Hz) with conservative timeouts sized for a
// storage-polling network, landing a full election round at ~16.7s.
func PaperParams() Params {
	return Params{
		PollInterval:    250 * time.Millisecond,
		HeartbeatPeriod: 2 * time.Second,
		FailureTimeout:  13 * time.Second,
		OKWait:          4 * time.Second,
		CoordWait:       8 * time.Second,
	}
}

// DirectParams returns timings for the addressable-network transport, where
// round trips are ~300µs and timeouts can be three orders of magnitude
// tighter.
func DirectParams() Params {
	return Params{
		PollInterval:    5 * time.Millisecond,
		HeartbeatPeriod: 50 * time.Millisecond,
		FailureTimeout:  200 * time.Millisecond,
		OKWait:          50 * time.Millisecond,
		CoordWait:       150 * time.Millisecond,
	}
}

// State is a node's protocol state.
type State int

// Protocol states.
const (
	Follower State = iota
	Candidate
	Waiting // stood down after an OK, awaiting the new coordinator
	Leader
)

// String names the state.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Waiting:
		return "waiting"
	case Leader:
		return "leader"
	default:
		return "unknown"
	}
}

// Node is one bully participant.
type Node struct {
	id     int
	t      Transport
	params Params

	state  State
	term   int64
	leader int // -1 when unknown

	okDeadline    sim.Time
	coordDeadline sim.Time
	lastHB        sim.Time
	lastLeaderHB  sim.Time
	bullyPending  bool // hold an election on startup/recovery (bully rule)
	stopped       bool

	// Elections counts elections this node started (stats hook).
	Elections int
}

// NewNode creates a node; call Start to run it.
func NewNode(id int, t Transport, params Params) *Node {
	return &Node{id: id, t: t, params: params, leader: -1, bullyPending: true}
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// State returns the node's protocol state.
func (n *Node) State() State { return n.state }

// Leader returns the node's current view of the coordinator (-1 if none).
func (n *Node) Leader() int { return n.leader }

// Term returns the highest coordinator term the node has adopted.
func (n *Node) Term() int64 { return n.term }

// Stopped reports whether the node has been stopped (crashed).
func (n *Node) Stopped() bool { return n.stopped }

// Start spawns the node's polling loop on the kernel.
func (n *Node) Start(k *sim.Kernel) {
	k.Spawn("election-node", n.run)
}

// Stop models a crash: the node ceases heartbeating and polling. A stopped
// node can be restarted with Restart.
func (n *Node) Stop() { n.stopped = true }

// Restart revives a stopped node as a fresh follower that will bully its
// way back per the protocol.
func (n *Node) Restart(k *sim.Kernel) {
	if !n.stopped {
		return
	}
	n.stopped = false
	n.state = Follower
	n.leader = -1
	n.bullyPending = true
	n.lastHB = 0
	n.Start(k)
}

func (n *Node) run(p *sim.Proc) {
	for !n.stopped {
		n.cycle(p)
		p.Sleep(n.params.PollInterval)
	}
}

// cycle is one poll: publish liveness, observe, react.
func (n *Node) cycle(p *sim.Proc) {
	now := p.Now()
	if n.lastHB == 0 || now-n.lastHB >= n.params.HeartbeatPeriod {
		n.t.Heartbeat(p, n.id, n.term)
		n.lastHB = now
	}
	if n.state == Leader && now-n.lastLeaderHB >= n.params.HeartbeatPeriod {
		n.t.LeaderHeartbeat(p, n.id, n.term)
		n.lastLeaderHB = now
	}
	view := n.t.Observe(p, n.id)
	n.handle(p, view)
}

func (n *Node) handle(p *sim.Proc, view View) {
	now := p.Now()

	// Adopt a fresh coordinator record. A candidate only stands down to a
	// coordinator that outranks it — standing down to an inferior would
	// defeat the bully rule — but it still tracks the observed term so
	// its eventual claim supersedes the incumbent.
	if view.Coord.Fresh && view.Coord.Term >= n.term && view.Coord.Leader != n.id {
		switch n.state {
		case Candidate:
			if view.Coord.Leader > n.id {
				n.adopt(view.Coord)
			} else {
				n.term = view.Coord.Term
			}
		default:
			n.adopt(view.Coord)
		}
	}

	for _, msg := range view.Inbox {
		switch msg.Type {
		case MsgElection:
			// Only lower nodes address us with ELECTION. Assert
			// liveness and run our own election if we are not
			// already leading or electing.
			if msg.From < n.id {
				n.t.Send(p, n.id, msg.From, MsgOK, msg.Term)
				if n.state == Follower || n.state == Waiting {
					n.startElection(p, view)
				}
			}
		case MsgOK:
			if n.state == Candidate {
				n.state = Waiting
				n.coordDeadline = now + sim.Time(n.params.CoordWait)
			}
		case MsgCoordinator:
			if msg.Term > n.term || (msg.Term == n.term && msg.From >= n.leader) {
				n.term = msg.Term
				n.leader = msg.From
				if msg.From != n.id {
					n.state = Follower
				}
			}
		}
	}

	switch n.state {
	case Follower:
		switch {
		case !view.Coord.Fresh:
			n.startElection(p, view)
		case n.bullyPending && view.Coord.Leader < n.id:
			// Bully rule: a (re)started node that outranks the
			// sitting coordinator holds an election immediately.
			n.bullyPending = false
			n.startElection(p, view)
		case view.Coord.Leader >= n.id:
			n.bullyPending = false // the incumbent outranks us
		}
	case Candidate:
		if now >= n.okDeadline {
			n.claim(p, view)
		}
	case Waiting:
		if now >= n.coordDeadline && !view.Coord.Fresh {
			n.startElection(p, view)
		}
	case Leader:
		// Nothing periodic beyond heartbeats; a higher claimant is
		// adopted via the coordinator view above.
	}
}

// adopt accepts a coordinator record as current.
func (n *Node) adopt(c CoordView) {
	n.term = c.Term
	n.leader = c.Leader
	if n.leader != n.id {
		n.state = Follower
	}
}

// startElection sends ELECTION to every higher-priority member — live or
// not, per Garcia-Molina's protocol: liveness is discovered by whether an
// OK arrives before the timeout. Waiting out OKWait for dead superiors is
// a structural part of why storage-mediated elections are slow.
func (n *Node) startElection(p *sim.Proc, view View) {
	n.Elections++
	n.state = Candidate
	higher := 0
	for _, id := range view.Members {
		if id > n.id {
			n.t.Send(p, n.id, id, MsgElection, n.term)
			higher++
		}
	}
	if higher == 0 {
		// Nobody outranks us: claim on the next cycle.
		n.okDeadline = p.Now()
		return
	}
	n.okDeadline = p.Now() + sim.Time(n.params.OKWait)
}

// claim attempts to take coordinatorship at term+1.
func (n *Node) claim(p *sim.Proc, view View) {
	newTerm := n.term + 1
	if view.Coord.Term >= newTerm {
		newTerm = view.Coord.Term + 1
	}
	if !n.t.Claim(p, n.id, newTerm) {
		// Lost the race; the winner's record will be adopted.
		n.state = Follower
		return
	}
	n.term = newTerm
	n.leader = n.id
	n.state = Leader
	n.t.LeaderHeartbeat(p, n.id, n.term)
	n.lastLeaderHB = p.Now()
	for _, id := range view.Alive {
		if id != n.id {
			n.t.Send(p, n.id, id, MsgCoordinator, n.term)
		}
	}
}

// SortIDs sorts a member id slice in place and returns it (transport helper).
func SortIDs(ids []int) []int {
	sort.Ints(ids)
	return ids
}
