package election

import (
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/msgnet"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// directCluster builds n nodes over the direct-messaging transport.
type directCluster struct {
	k     *sim.Kernel
	nodes []*Node
	trs   []*DirectTransport
}

func newDirectCluster(t *testing.T, n int) *directCluster {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(101)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	mesh := msgnet.NewMesh(net, rng.Fork())
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	dn := NewDirectNet(mesh, DirectParams(), ids)
	c := &directCluster{k: k}
	for _, id := range ids {
		node := net.NewNode(endpointName(id)+"/host", 0, netsim.Gbps(10))
		tr := dn.ForNode(id, node)
		nd := NewNode(id, tr, DirectParams())
		nd.Start(k)
		c.nodes = append(c.nodes, nd)
		c.trs = append(c.trs, tr)
	}
	return c
}

// runUntil advances the kernel until cond holds or the deadline passes.
func runUntil(k *sim.Kernel, deadline sim.Time, step sim.Time, cond func() bool) bool {
	for t := step; t <= deadline; t += step {
		k.RunUntil(t)
		if cond() {
			return true
		}
	}
	return false
}

// agreedLeader returns the common leader among running nodes, or -1.
func agreedLeader(nodes []*Node) int {
	leader := -1
	for _, n := range nodes {
		if n.Stopped() {
			continue
		}
		if n.Leader() < 0 {
			return -1
		}
		if leader == -1 {
			leader = n.Leader()
		} else if n.Leader() != leader {
			return -1
		}
	}
	return leader
}

func TestDirectInitialElectionPicksHighest(t *testing.T) {
	c := newDirectCluster(t, 5)
	ok := runUntil(c.k, sim.Time(5*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 5
	})
	if !ok {
		t.Fatalf("no agreement on node 5; leaders: %v", leadersOf(c.nodes))
	}
	if c.nodes[4].State() != Leader {
		t.Errorf("node 5 state = %v, want leader", c.nodes[4].State())
	}
	for _, n := range c.nodes[:4] {
		if n.State() == Leader {
			t.Errorf("node %d also thinks it leads", n.ID())
		}
	}
}

func leadersOf(nodes []*Node) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = n.Leader()
	}
	return out
}

func TestDirectFailoverToNextHighest(t *testing.T) {
	c := newDirectCluster(t, 5)
	if !runUntil(c.k, sim.Time(5*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 5
	}) {
		t.Fatal("initial election failed")
	}
	// Crash the leader.
	c.nodes[4].Stop()
	c.trs[4].Close()
	if !runUntil(c.k, sim.Time(30*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 4
	}) {
		t.Fatalf("no failover to node 4; leaders: %v", leadersOf(c.nodes))
	}
}

func TestDirectRestartBulliesItsWayBack(t *testing.T) {
	c := newDirectCluster(t, 3)
	if !runUntil(c.k, sim.Time(5*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 3
	}) {
		t.Fatal("initial election failed")
	}
	c.nodes[2].Stop()
	c.trs[2].Close()
	if !runUntil(c.k, sim.Time(30*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes[:2]) == 2
	}) {
		t.Fatal("failover to node 2 failed")
	}
	// Node 3 comes back and must retake leadership (the bully rule).
	rng := simrand.New(7)
	_ = rng
	// Reopen a fresh endpoint for node 3 on a new transport.
	c.trs[2] = c.trs[2].net.ForNode(3, c.trs[0].ep.Node()) // reuse a host node
	c.nodes[2] = NewNode(3, c.trs[2], DirectParams())
	c.nodes[2].Start(c.k)
	if !runUntil(c.k, sim.Time(60*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 3
	}) {
		t.Fatalf("node 3 did not reclaim leadership; leaders: %v", leadersOf(c.nodes))
	}
}

func TestDirectElectionIsFast(t *testing.T) {
	c := newDirectCluster(t, 5)
	runUntil(c.k, sim.Time(5*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 5
	})
	c.k.RunUntil(sim.Time(10 * time.Second)) // settle
	crashAt := c.k.Now()
	c.nodes[4].Stop()
	c.trs[4].Close()
	if !runUntil(c.k, crashAt+sim.Time(20*time.Second), sim.Time(time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 4
	}) {
		t.Fatal("failover did not complete")
	}
	round := time.Duration(c.k.Now() - crashAt)
	// Direct-messaging elections complete in well under a second —
	// the contrast with the blackboard's ~16.7s.
	if round > time.Second {
		t.Errorf("direct election took %v, want sub-second", round)
	}
}

// blackboardCluster builds n nodes over a DynamoDB-style blackboard.
type blackboardCluster struct {
	k     *sim.Kernel
	bb    *Blackboard
	meter *pricing.Meter
	nodes []*Node
}

func newBlackboardCluster(t *testing.T, n int) *blackboardCluster {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(55)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	table := kvstore.New("ddb", net, 9, rng.Fork(), kvstore.DefaultConfig(),
		pricing.Fall2018(), meter)
	bb := NewBlackboard(table, PaperParams())
	c := &blackboardCluster{k: k, bb: bb, meter: meter}
	for id := 1; id <= n; id++ {
		host := net.NewNode(nodeKey(id)+"/host", 1, netsim.Mbps(538))
		nd := NewNode(id, bb.ForNode(id, host), PaperParams())
		nd.Start(k)
		c.nodes = append(c.nodes, nd)
	}
	return c
}

func TestBlackboardInitialElection(t *testing.T) {
	c := newBlackboardCluster(t, 4)
	ok := runUntil(c.k, sim.Time(60*time.Second), sim.Time(250*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 4
	})
	if !ok {
		t.Fatalf("no agreement; leaders: %v", leadersOf(c.nodes))
	}
}

func TestBlackboardFailoverTakesTensOfSeconds(t *testing.T) {
	c := newBlackboardCluster(t, 4)
	if !runUntil(c.k, sim.Time(60*time.Second), sim.Time(250*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 4
	}) {
		t.Fatal("initial election failed")
	}
	c.k.RunUntil(sim.Time(90 * time.Second)) // settle into steady state
	crashAt := c.k.Now()
	c.nodes[3].Stop()
	if !runUntil(c.k, crashAt+sim.Time(120*time.Second), sim.Time(100*time.Millisecond), func() bool {
		return agreedLeader(c.nodes[:3]) == 3
	}) {
		t.Fatalf("no failover; leaders: %v", leadersOf(c.nodes[:3]))
	}
	round := time.Duration(c.k.Now() - crashAt)
	// The paper measures 16.7s per round with 4Hz polling; accept a
	// band around it here (the experiment pins it more tightly).
	if round < 12*time.Second || round > 22*time.Second {
		t.Errorf("blackboard election round = %v, paper reports 16.7s", round)
	}
}

func TestBlackboardSingleLeaderPerTerm(t *testing.T) {
	c := newBlackboardCluster(t, 6)
	// Sample repeatedly while elections churn; no two running nodes may
	// claim leadership of the same term.
	for tMs := 500; tMs <= 90000; tMs += 500 {
		c.k.RunUntil(sim.Time(tMs) * sim.Time(time.Millisecond))
		leaders := map[int64][]int{}
		for _, n := range c.nodes {
			if n.State() == Leader {
				leaders[n.Term()] = append(leaders[n.Term()], n.ID())
			}
		}
		for term, ids := range leaders {
			if len(ids) > 1 {
				t.Fatalf("term %d has %d leaders: %v", term, len(ids), ids)
			}
		}
	}
}

func TestBlackboardSteadyStateReadsPerCycle(t *testing.T) {
	c := newBlackboardCluster(t, 3)
	// Reach steady state, then count read requests over a window.
	c.k.RunUntil(sim.Time(60 * time.Second))
	c.meter.Reset()
	c.k.RunUntil(sim.Time(90 * time.Second))
	// 3 nodes x 4 cycles/s x 30s = 360 cycles; each cycle is one scan +
	// one get = 2 read requests... measured in units: small cluster so
	// scan = 1 unit; expect ~720 units plus heartbeat writes.
	units := c.meter.Count("dynamodb.read")
	if units < 600 || units > 850 {
		t.Errorf("read units over 30s = %d, want ~720 (2 reads/cycle/node)", units)
	}
	writes := c.meter.Count("dynamodb.write")
	// Heartbeats every 2s: 3 nodes x 15 = 45 writes, each 500B = 1 unit.
	if writes < 30 || writes > 120 {
		t.Errorf("write units over 30s = %d, want ~45-90", writes)
	}
}

func TestMsgTypeAndStateStrings(t *testing.T) {
	if MsgElection.String() != "ELECTION" || MsgOK.String() != "OK" ||
		MsgCoordinator.String() != "COORDINATOR" || MsgType(99).String() != "UNKNOWN" {
		t.Error("MsgType strings wrong")
	}
	if Follower.String() != "follower" || Leader.String() != "leader" ||
		Candidate.String() != "candidate" || Waiting.String() != "waiting" ||
		State(9).String() != "unknown" {
		t.Error("State strings wrong")
	}
}

func TestRestartHelper(t *testing.T) {
	c := newDirectCluster(t, 2)
	runUntil(c.k, sim.Time(5*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return agreedLeader(c.nodes) == 2
	})
	n := c.nodes[0]
	n.Stop()
	c.k.RunUntil(c.k.Now() + sim.Time(time.Second))
	if !n.Stopped() {
		t.Fatal("Stop did not stop")
	}
	n.Restart(c.k)
	n.Restart(c.k) // restarting a running node is a no-op
	if n.Stopped() {
		t.Fatal("Restart did not revive")
	}
	if !runUntil(c.k, c.k.Now()+sim.Time(10*time.Second), sim.Time(10*time.Millisecond), func() bool {
		return n.Leader() == 2
	}) {
		t.Error("restarted node never rejoined")
	}
}
