package election

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// DefaultRecordBytes is the serialized size of one node's blackboard record.
// With 1,000 nodes a full-board scan reads ~500KB ≈ 123 strongly consistent
// read units; at two reads per 250ms cycle this is what reproduces the
// paper's "$450 per hour at minimum" figure (derivation in EXPERIMENTS.md).
const DefaultRecordBytes = 500

// maxOutgoing bounds the outgoing-message slots kept in a record; receivers
// poll at 4 Hz, so slots recycle long before they overflow in practice.
const maxOutgoing = 12

// boardMsg is one outgoing message slot in a node's record.
type boardMsg struct {
	To   int     `json:"to"`
	Type MsgType `json:"type"`
	Term int64   `json:"term"`
	Seq  int64   `json:"seq"`
}

// boardRecord is a node's entry on the blackboard: heartbeat + outbox.
type boardRecord struct {
	ID   int        `json:"id"`
	Term int64      `json:"term"`
	HB   int64      `json:"hb"` // virtual nanoseconds of last heartbeat
	Msgs []boardMsg `json:"msgs"`
	Pad  string     `json:"pad"`
}

// coordRecord is the coordinator entry.
type coordRecord struct {
	Leader int   `json:"leader"`
	Term   int64 `json:"term"`
	HB     int64 `json:"hb"`
}

// Blackboard is the shared configuration for DynamoDB-mediated elections:
// one table, one record per node, one coordinator record, all communication
// via polling — the paper's only option on FaaS.
type Blackboard struct {
	table       *kvstore.Store
	params      Params
	recordBytes int
}

// NewBlackboard wraps a kvstore table as an election medium.
func NewBlackboard(table *kvstore.Store, params Params) *Blackboard {
	return &Blackboard{table: table, params: params, recordBytes: DefaultRecordBytes}
}

// SetRecordBytes overrides the padded record size (cost-sensitivity sweeps).
func (b *Blackboard) SetRecordBytes(n int) { b.recordBytes = n }

// ForNode creates the per-node transport. caller is the network node the
// participant runs on (a Lambda VM in the paper's setup).
func (b *Blackboard) ForNode(id int, caller *netsim.Node) *BBTransport {
	return &BBTransport{
		bb:       b,
		id:       id,
		caller:   caller,
		lastSeen: make(map[int]int64),
	}
}

// BBTransport is one node's handle on the blackboard.
type BBTransport struct {
	bb     *Blackboard
	id     int
	caller *netsim.Node

	outgoing []boardMsg
	nextSeq  int64
	term     int64

	lastSeen  map[int]int64 // sender id -> last message seq consumed
	coordVer  int64         // version of the coord item last observed
	coordSeen coordRecord
}

func nodeKey(id int) string { return fmt.Sprintf("node/%06d", id) }

// writeRecord publishes this node's record (heartbeat + outbox) in one put.
func (t *BBTransport) writeRecord(p *sim.Proc, hbNanos int64) {
	rec := boardRecord{ID: t.id, Term: t.term, HB: hbNanos, Msgs: t.outgoing}
	data, err := json.Marshal(rec)
	if err != nil {
		panic("election: marshal board record: " + err.Error())
	}
	if pad := t.bb.recordBytes - len(data); pad > 0 {
		rec.Pad = strings.Repeat("x", pad)
		data, _ = json.Marshal(rec)
	}
	if _, err := t.bb.table.Put(p, t.caller, nodeKey(t.id), data); err != nil {
		panic("election: board put: " + err.Error())
	}
}

// Heartbeat implements Transport.
func (t *BBTransport) Heartbeat(p *sim.Proc, id int, term int64) {
	t.term = term
	t.writeRecord(p, int64(p.Now()))
}

// Send implements Transport: the message is written into this node's own
// record; the recipient discovers it on its next board scan.
func (t *BBTransport) Send(p *sim.Proc, from, to int, typ MsgType, term int64) {
	t.nextSeq++
	t.outgoing = append(t.outgoing, boardMsg{To: to, Type: typ, Term: term, Seq: t.nextSeq})
	if len(t.outgoing) > maxOutgoing {
		t.outgoing = t.outgoing[len(t.outgoing)-maxOutgoing:]
	}
	t.writeRecord(p, int64(p.Now()))
}

// Observe implements Transport: one board scan plus one coordinator read —
// the footnote's "2 reads per polling cycle".
func (t *BBTransport) Observe(p *sim.Proc, id int) View {
	now := int64(p.Now())
	stale := int64(t.bb.params.FailureTimeout)

	var view View
	for _, item := range t.bb.table.Scan(p, t.caller, "node/") {
		var rec boardRecord
		if json.Unmarshal(item.Value, &rec) != nil {
			continue
		}
		view.Members = append(view.Members, rec.ID)
		if now-rec.HB < stale {
			view.Alive = append(view.Alive, rec.ID)
		}
		for _, m := range rec.Msgs {
			if m.To == id && m.Seq > t.lastSeen[rec.ID] {
				t.lastSeen[rec.ID] = m.Seq
				view.Inbox = append(view.Inbox, Message{Type: m.Type, From: rec.ID, Term: m.Term})
			}
		}
	}
	SortIDs(view.Alive)
	SortIDs(view.Members)

	item, err := t.bb.table.Get(p, t.caller, "coord", true)
	switch {
	case errors.Is(err, kvstore.ErrNotFound):
		t.coordVer = 0
	case err == nil:
		t.coordVer = item.Version
		var rec coordRecord
		if json.Unmarshal(item.Value, &rec) == nil {
			t.coordSeen = rec
			view.Coord = CoordView{
				Leader: rec.Leader,
				Term:   rec.Term,
				Fresh:  now-rec.HB < stale,
			}
		}
	}
	return view
}

// Claim implements Transport with a conditional put against the version
// observed this cycle: exactly one concurrent claimant wins.
func (t *BBTransport) Claim(p *sim.Proc, id int, term int64) bool {
	data, _ := json.Marshal(coordRecord{Leader: id, Term: term, HB: int64(p.Now())})
	item, err := t.bb.table.ConditionalPut(p, t.caller, "coord", data, t.coordVer)
	if err != nil {
		return false
	}
	t.coordVer = item.Version
	return true
}

// LeaderHeartbeat implements Transport: refresh the coordinator record,
// backing off silently if a newer claim superseded us.
func (t *BBTransport) LeaderHeartbeat(p *sim.Proc, id int, term int64) {
	data, _ := json.Marshal(coordRecord{Leader: id, Term: term, HB: int64(p.Now())})
	item, err := t.bb.table.ConditionalPut(p, t.caller, "coord", data, t.coordVer)
	if err == nil {
		t.coordVer = item.Version
	}
}

// Remove deletes this node's record (graceful departure; crash tests just
// stop heartbeating instead).
func (t *BBTransport) Remove(p *sim.Proc) {
	t.bb.table.Delete(p, t.caller, nodeKey(t.id))
}

var _ Transport = (*BBTransport)(nil)

// StalenessFor returns how long after a crash the blackboard declares a node
// dead (helper for experiments sizing measurement windows).
func (b *Blackboard) StalenessFor() time.Duration { return b.params.FailureTimeout }
