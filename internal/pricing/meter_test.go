package pricing

// Direct table-driven coverage for Meter: until now its category
// accumulation was only exercised through whole experiments, so a
// regression in, say, ChargeCost's count semantics would surface as an
// inscrutable golden-trace diff instead of a unit failure.

import (
	"math"
	"testing"
)

type meterOp struct {
	item     string
	count    int64 // Charge when unitCost set; ignored for lump
	unitCost USD
	lump     USD // ChargeCost when nonzero
}

func TestMeterCategoryAccumulation(t *testing.T) {
	cases := []struct {
		name      string
		ops       []meterOp
		wantCount map[string]int64
		wantCost  map[string]USD
		wantTotal USD
		wantLines []string // sorted category order
	}{
		{
			name:      "zero value meter is empty",
			wantCount: map[string]int64{"anything": 0},
			wantTotal: 0,
		},
		{
			name: "single category accumulates count and cost",
			ops: []meterOp{
				{item: "ddb.read", count: 4, unitCost: 0.25},
				{item: "ddb.read", count: 6, unitCost: 0.25},
			},
			wantCount: map[string]int64{"ddb.read": 10},
			wantCost:  map[string]USD{"ddb.read": 2.5},
			wantTotal: 2.5,
			wantLines: []string{"ddb.read"},
		},
		{
			name: "categories stay separate",
			ops: []meterOp{
				{item: "sqs.request", count: 3, unitCost: 0.4},
				{item: "lambda.request", count: 2, unitCost: 0.2},
				{item: "sqs.request", count: 1, unitCost: 0.4},
			},
			wantCount: map[string]int64{"sqs.request": 4, "lambda.request": 2, "absent": 0},
			wantCost:  map[string]USD{"sqs.request": 1.6, "lambda.request": 0.4},
			wantTotal: 2.0,
			wantLines: []string{"lambda.request", "sqs.request"},
		},
		{
			name: "lump-sum charges count one event each",
			ops: []meterOp{
				{item: "lambda.gbsec", lump: 0.125},
				{item: "lambda.gbsec", lump: 0.375},
			},
			wantCount: map[string]int64{"lambda.gbsec": 2},
			wantCost:  map[string]USD{"lambda.gbsec": 0.5},
			wantTotal: 0.5,
			wantLines: []string{"lambda.gbsec"},
		},
		{
			name: "mixed charge kinds share a category",
			ops: []meterOp{
				{item: "cache.gbsec", count: 5, unitCost: 0.01},
				{item: "cache.gbsec", lump: 0.45},
			},
			wantCount: map[string]int64{"cache.gbsec": 6},
			wantCost:  map[string]USD{"cache.gbsec": 0.5},
			wantTotal: 0.5,
			wantLines: []string{"cache.gbsec"},
		},
		{
			name: "zero-count charge still creates the line",
			ops: []meterOp{
				{item: "s3.put", count: 0, unitCost: 0.005},
			},
			wantCount: map[string]int64{"s3.put": 0},
			wantCost:  map[string]USD{"s3.put": 0},
			wantTotal: 0,
			wantLines: []string{"s3.put"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m Meter
			for _, op := range tc.ops {
				if op.lump != 0 {
					m.ChargeCost(op.item, op.lump)
				} else {
					m.Charge(op.item, op.count, op.unitCost)
				}
			}
			for item, want := range tc.wantCount {
				if got := m.Count(item); got != want {
					t.Errorf("Count(%q) = %d, want %d", item, got, want)
				}
			}
			for item, want := range tc.wantCost {
				if got := m.Cost(item); math.Abs(float64(got-want)) > 1e-12 {
					t.Errorf("Cost(%q) = %v, want %v", item, got, want)
				}
			}
			if got := m.Total(); math.Abs(float64(got-tc.wantTotal)) > 1e-12 {
				t.Errorf("Total = %v, want %v", got, tc.wantTotal)
			}
			lines := m.Lines()
			if len(lines) != len(tc.wantLines) {
				t.Fatalf("Lines = %d categories, want %d", len(lines), len(tc.wantLines))
			}
			for i, want := range tc.wantLines {
				if lines[i].Item != want {
					t.Errorf("Lines[%d] = %q, want %q (sorted order)", i, lines[i].Item, want)
				}
			}
			m.Reset()
			if m.Total() != 0 || len(m.Lines()) != 0 {
				t.Error("Reset left accumulated charges behind")
			}
		})
	}
}

// TestMeterTotalIsOrderIndependent pins the sorted-sum determinism fix:
// two meters charged the same categories in different orders must agree to
// the last bit, because the golden traces print totals to the cent.
func TestMeterTotalIsOrderIndependent(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd", "e5", "f6", "g7"}
	var fwd, rev Meter
	for i, it := range items {
		fwd.ChargeCost(it, USD(0.1)/USD(3*(i+1)))
	}
	for i := len(items) - 1; i >= 0; i-- {
		rev.ChargeCost(items[i], USD(0.1)/USD(3*(i+1)))
	}
	if fwd.Total() != rev.Total() {
		t.Errorf("Total depends on charge order: %v != %v", fwd.Total(), rev.Total())
	}
}
