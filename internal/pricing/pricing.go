// Package pricing implements the Fall-2018 AWS price catalog and the cost
// meters the simulated services charge against.
//
// Every dollar figure the reproduction reports is computed by metering
// simulated requests and compute time against this catalog — never
// hard-coded. The catalog values are public AWS us-east-1 prices from the
// paper's measurement period (Fall 2018); provenance for each constant is
// tabulated in EXPERIMENTS.md.
package pricing

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// USD is an amount of money in dollars.
type USD float64

// String formats the amount with four decimal places (sub-cent amounts
// matter at per-request prices).
func (u USD) String() string { return fmt.Sprintf("$%.4f", float64(u)) }

// PerHour converts an hourly rate into a charge for duration d.
func (u USD) PerHour(d time.Duration) USD { return u * USD(d.Hours()) }

// Catalog holds unit prices. The zero value is free; use Fall2018 for the
// calibrated catalog.
type Catalog struct {
	// Lambda: $0.20 per 1M requests plus $0.00001667 per GB-second,
	// rounded up to 100ms granularity by the FaaS platform.
	LambdaPerRequest  USD
	LambdaPerGBSecond USD

	// LambdaProvisionedGBSecond is the keep-warm price for provisioned
	// concurrency: $0.015 per GB-hour. AWS launched the feature in
	// December 2019 — after the paper — so, like the Firecracker cold
	// start, it is a what-if knob; the price is the launch price.
	LambdaProvisionedGBSecond USD

	// EC2 on-demand hourly prices by instance type.
	EC2PerHour map[string]USD

	// S3 request prices ($0.005 per 1,000 PUT, $0.0004 per 1,000 GET).
	S3PutPerRequest USD
	S3GetPerRequest USD

	// DynamoDB on-demand request-unit prices ($1.25 per million write
	// units, $0.25 per million read units; a strongly consistent read
	// unit covers 4KB, a write unit covers 1KB). On-demand launched in
	// November 2018, contemporaneous with the paper.
	DynamoReadPerUnit  USD
	DynamoWritePerUnit USD

	// DynamoDB provisioned-capacity prices (the 2018 default mode):
	// $0.00013 per RCU-hour and $0.00065 per WCU-hour. Provisioning to
	// peak is how a steady-state workload would actually be billed.
	DynamoRCUHour USD
	DynamoWCUHour USD

	// SQS: $0.40 per million requests (standard queues).
	SQSPerRequest USD

	// CacheGBSecond prices function-colocated cache memory per GB-second.
	// Derived from ElastiCache r4-class memory (Fall 2018: cache.r4.large,
	// $0.228/hr for 12.3 GiB ≈ $0.0185/GB-hour), rounded to $0.02/GB-hour:
	// the keep-state price the paper's §4 "fluid" platform would pay for
	// holding lattice state next to functions instead of in DynamoDB.
	CacheGBSecond USD

	// WANEgressPerGB prices inter-region data transfer per GB (Fall 2018
	// us-east-1 → us-west-2: $0.02/GB). Every byte that crosses a WAN
	// trunk — gossip, kvstore replication, cross-region requests — pays it.
	WANEgressPerGB USD
}

// Fall2018 returns the us-east-1 catalog for the paper's measurement period.
func Fall2018() *Catalog {
	return &Catalog{
		LambdaPerRequest:          0.20 / 1e6,
		LambdaPerGBSecond:         0.00001667,
		LambdaProvisionedGBSecond: 0.015 / 3600,
		EC2PerHour: map[string]USD{
			"m4.large": 0.10,
			"m5.large": 0.096,
		},
		S3PutPerRequest:    0.005 / 1000,
		S3GetPerRequest:    0.0004 / 1000,
		DynamoReadPerUnit:  0.25 / 1e6,
		DynamoWritePerUnit: 1.25 / 1e6,
		DynamoRCUHour:      0.00013,
		DynamoWCUHour:      0.00065,
		SQSPerRequest:      0.40 / 1e6,
		CacheGBSecond:      0.02 / 3600,
		WANEgressPerGB:     0.02,
	}
}

// DynamoProvisionedHourly prices a table provisioned for the given
// sustained read/write unit rates (per second), the way a steady workload
// would be capacity-planned.
func (c *Catalog) DynamoProvisionedHourly(rcuPerSec, wcuPerSec float64) USD {
	return c.DynamoRCUHour*USD(rcuPerSec) + c.DynamoWCUHour*USD(wcuPerSec)
}

// EC2Hourly returns the hourly price for an instance type, panicking on
// unknown types so misconfigured experiments fail loudly.
func (c *Catalog) EC2Hourly(instanceType string) USD {
	p, ok := c.EC2PerHour[instanceType]
	if !ok {
		panic("pricing: unknown EC2 instance type " + instanceType)
	}
	return p
}

// DynamoReadUnits returns the on-demand read request units consumed by
// reading size bytes: ceil(size/4KB) for strongly consistent reads, half
// that (rounded up) for eventually consistent reads. Zero-byte reads still
// consume one unit.
func DynamoReadUnits(size int64, stronglyConsistent bool) int64 {
	units := ceilDiv(size, 4096)
	if units == 0 {
		units = 1
	}
	if !stronglyConsistent {
		units = (units + 1) / 2
	}
	return units
}

// DynamoWriteUnits returns write request units: ceil(size/1KB), minimum 1.
func DynamoWriteUnits(size int64) int64 {
	units := ceilDiv(size, 1024)
	if units == 0 {
		units = 1
	}
	return units
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// LambdaDuration rounds a billed execution duration up to the platform's
// 100ms billing granularity.
func LambdaDuration(d time.Duration) time.Duration {
	const quantum = 100 * time.Millisecond
	if d <= 0 {
		return quantum
	}
	return time.Duration(math.Ceil(float64(d)/float64(quantum))) * quantum
}

// LambdaCompute returns the GB-second charge for one invocation at the given
// memory size, after 100ms rounding.
func (c *Catalog) LambdaCompute(memoryMB int, billed time.Duration) USD {
	gb := float64(memoryMB) / 1024
	return c.LambdaPerGBSecond * USD(gb*LambdaDuration(billed).Seconds())
}

// Line is one metered charge category.
type Line struct {
	Item  string
	Count int64
	Cost  USD
}

// Meter accumulates charges by category. The zero value is ready to use.
// Meters are manipulated only from simulation context and need no locking.
type Meter struct {
	lines map[string]*Line
}

// Charge records count units of item at unitCost each.
func (m *Meter) Charge(item string, count int64, unitCost USD) {
	m.line(item).Count += count
	m.line(item).Cost += USD(count) * unitCost
}

// ChargeCost records a lump-sum cost against item (counted as one event).
func (m *Meter) ChargeCost(item string, cost USD) {
	m.line(item).Count++
	m.line(item).Cost += cost
}

func (m *Meter) line(item string) *Line {
	if m.lines == nil {
		m.lines = make(map[string]*Line)
	}
	l, ok := m.lines[item]
	if !ok {
		l = &Line{Item: item}
		m.lines[item] = l
	}
	return l
}

// Total returns the sum across all categories. Lines are summed in sorted
// order: float addition is not associative, so a map-order sum would make
// the last ULP of the total depend on map iteration order — an observable
// determinism violation once enough categories charge.
func (m *Meter) Total() USD {
	var t USD
	for _, l := range m.Lines() {
		t += l.Cost
	}
	return t
}

// Count returns the accumulated count for a category (zero if absent).
func (m *Meter) Count(item string) int64 {
	if m.lines == nil {
		return 0
	}
	if l, ok := m.lines[item]; ok {
		return l.Count
	}
	return 0
}

// Cost returns the accumulated cost for a category (zero if absent).
func (m *Meter) Cost(item string) USD {
	if m.lines == nil {
		return 0
	}
	if l, ok := m.lines[item]; ok {
		return l.Cost
	}
	return 0
}

// Lines returns all categories sorted by name for stable reporting.
func (m *Meter) Lines() []Line {
	out := make([]Line, 0, len(m.lines))
	for _, l := range m.lines {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Item < out[j].Item })
	return out
}

// Reset clears all accumulated charges.
func (m *Meter) Reset() { m.lines = nil }
