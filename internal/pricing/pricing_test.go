package pricing

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFall2018HeadlinePrices(t *testing.T) {
	c := Fall2018()
	if got := c.EC2Hourly("m5.large"); got != 0.096 {
		t.Errorf("m5.large = %v, want $0.096/hr", got)
	}
	if got := c.EC2Hourly("m4.large"); got != 0.10 {
		t.Errorf("m4.large = %v, want $0.10/hr", got)
	}
	if math.Abs(float64(c.SQSPerRequest-0.40/1e6)) > 1e-12 {
		t.Errorf("SQS = %v, want $0.40/M", c.SQSPerRequest)
	}
}

func TestUnknownInstanceTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown instance type did not panic")
		}
	}()
	Fall2018().EC2Hourly("x1e.32xlarge")
}

// The paper: 31 Lambda executions x 15 min at 640MB cost $0.29.
func TestPaperLambdaTrainingCost(t *testing.T) {
	c := Fall2018()
	var total USD
	for i := 0; i < 31; i++ {
		total += c.LambdaPerRequest
		total += c.LambdaCompute(640, 15*time.Minute)
	}
	if total < 0.28 || total > 0.30 {
		t.Errorf("31x15min@640MB = %v, paper reports $0.29", total)
	}
}

// The paper: ~1300s of m4.large cost $0.04.
func TestPaperEC2TrainingCost(t *testing.T) {
	c := Fall2018()
	cost := c.EC2Hourly("m4.large").PerHour(1300 * time.Second)
	if cost < 0.03 || cost > 0.05 {
		t.Errorf("1300s m4.large = %v, paper reports ~$0.04", cost)
	}
}

// The paper: 290 m5.large instances cost $27.84/hr.
func TestPaperServingFleetCost(t *testing.T) {
	c := Fall2018()
	cost := 290 * c.EC2Hourly("m5.large").PerHour(time.Hour)
	if math.Abs(float64(cost-27.84)) > 0.01 {
		t.Errorf("290 m5.large = %v, paper reports $27.84/hr", cost)
	}
}

func TestLambdaDurationRounding(t *testing.T) {
	cases := []struct {
		in, want time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1 * time.Millisecond, 100 * time.Millisecond},
		{100 * time.Millisecond, 100 * time.Millisecond},
		{101 * time.Millisecond, 200 * time.Millisecond},
		{15 * time.Minute, 15 * time.Minute},
	}
	for _, c := range cases {
		if got := LambdaDuration(c.in); got != c.want {
			t.Errorf("LambdaDuration(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDynamoUnits(t *testing.T) {
	cases := []struct {
		bytes      int64
		consistent bool
		want       int64
	}{
		{0, true, 1},
		{1, true, 1},
		{4096, true, 1},
		{4097, true, 2},
		{250 * 1000, true, 62}, // ~250KB blackboard scan
		{4096, false, 1},
		{8192, false, 1},
		{12288, false, 2},
	}
	for _, c := range cases {
		if got := DynamoReadUnits(c.bytes, c.consistent); got != c.want {
			t.Errorf("DynamoReadUnits(%d, %v) = %d, want %d", c.bytes, c.consistent, got, c.want)
		}
	}
	if got := DynamoWriteUnits(1025); got != 2 {
		t.Errorf("DynamoWriteUnits(1025) = %d, want 2", got)
	}
	if got := DynamoWriteUnits(0); got != 1 {
		t.Errorf("DynamoWriteUnits(0) = %d, want 1", got)
	}
}

func TestMeterAccumulation(t *testing.T) {
	var m Meter
	m.Charge("sqs.request", 1000, 0.40/1e6)
	m.Charge("sqs.request", 1000, 0.40/1e6)
	m.ChargeCost("ec2.m5.large", 0.096)
	if m.Count("sqs.request") != 2000 {
		t.Errorf("Count = %d, want 2000", m.Count("sqs.request"))
	}
	wantSQS := USD(2000 * 0.40 / 1e6)
	if math.Abs(float64(m.Cost("sqs.request")-wantSQS)) > 1e-12 {
		t.Errorf("Cost = %v, want %v", m.Cost("sqs.request"), wantSQS)
	}
	if math.Abs(float64(m.Total()-(wantSQS+0.096))) > 1e-12 {
		t.Errorf("Total = %v", m.Total())
	}
	lines := m.Lines()
	if len(lines) != 2 || lines[0].Item != "ec2.m5.large" {
		t.Errorf("Lines = %v, want sorted two lines", lines)
	}
	m.Reset()
	if m.Total() != 0 || m.Count("sqs.request") != 0 {
		t.Error("Reset did not clear meter")
	}
}

func TestMeterZeroValueUsable(t *testing.T) {
	var m Meter
	if m.Total() != 0 || m.Cost("x") != 0 || m.Count("x") != 0 || len(m.Lines()) != 0 {
		t.Error("zero-value meter not empty")
	}
}

func TestUSDString(t *testing.T) {
	if got := USD(1.23456).String(); got != "$1.2346" {
		t.Errorf("String = %q", got)
	}
}

// Property: meter total always equals the sum of its lines, and counts are
// additive across charges.
func TestQuickMeterAdditive(t *testing.T) {
	prop := func(counts []uint16) bool {
		var m Meter
		var wantTotal float64
		var wantCount int64
		for _, c := range counts {
			m.Charge("item", int64(c), 0.001)
			wantTotal += float64(c) * 0.001
			wantCount += int64(c)
		}
		var sum float64
		for _, l := range m.Lines() {
			sum += float64(l.Cost)
		}
		return math.Abs(sum-float64(m.Total())) < 1e-9 &&
			math.Abs(float64(m.Total())-wantTotal) < 1e-6 &&
			m.Count("item") == wantCount
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Dynamo read units are monotone in size and strongly consistent
// reads never cost fewer units than eventually consistent ones.
func TestQuickDynamoUnitsMonotone(t *testing.T) {
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		if DynamoReadUnits(x, true) > DynamoReadUnits(y, true) {
			return false
		}
		return DynamoReadUnits(x, true) >= DynamoReadUnits(x, false)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
