package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

func newTestNetwork(k *sim.Kernel) *Network {
	return NewNetwork(k, simrand.New(1), DefaultLatency())
}

func TestNodeRegistration(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := newTestNetwork(k)
	a := n.NewNode("a", 0, Mbps(538))
	if n.Node("a") != a {
		t.Error("Node lookup failed")
	}
	if n.Node("missing") != nil {
		t.Error("lookup of unregistered node should return nil")
	}
	if a.Rack() != 0 || a.ID() != "a" || a.NIC() == nil {
		t.Error("node fields not populated")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := newTestNetwork(k)
	n.NewNode("a", 0, Mbps(100))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node id did not panic")
		}
	}()
	n.NewNode("a", 1, Mbps(100))
}

func TestLatencyClassesOrdered(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := newTestNetwork(k)
	a := n.NewNode("a", 0, Gbps(10))
	b := n.NewNode("b", 0, Gbps(10))
	c := n.NewNode("c", 1, Gbps(10))
	avg := func(src, dst *Node) time.Duration {
		var sum time.Duration
		for i := 0; i < 1000; i++ {
			sum += n.OneWayDelay(src, dst)
		}
		return sum / 1000
	}
	sameHost := avg(a, a)
	sameRack := avg(a, b)
	crossRack := avg(a, c)
	if !(sameHost < sameRack && sameRack < crossRack) {
		t.Errorf("latency classes out of order: host=%v rack=%v cross=%v",
			sameHost, sameRack, crossRack)
	}
	// Calibration: same-rack propagation RTT must leave room for NIC
	// serialization and software overhead so a 1KB acked round trip
	// lands near the paper's 290µs (asserted end-to-end in msgnet).
	rtt := 2 * sameRack
	if rtt < 260*time.Microsecond || rtt > 310*time.Microsecond {
		t.Errorf("same-rack propagation RTT = %v, want ~284µs", rtt)
	}
}

func TestSendMovesBytesThroughBothNICs(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := newTestNetwork(k)
	src := n.NewNode("src", 0, MBps(100))
	dst := n.NewNode("dst", 1, MBps(50)) // receiver NIC is the bottleneck
	var done sim.Time
	k.Spawn("send", func(p *sim.Proc) {
		n.Send(p, src, dst, 50e6)
		done = p.Now()
	})
	k.Run()
	// 50MB at 50MB/s = 1s plus sub-millisecond propagation.
	if done < time.Second || done > time.Second+2*time.Millisecond {
		t.Errorf("send took %v, want ~1s", done)
	}
}

func TestSendZeroBytesOnlyPropagates(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := newTestNetwork(k)
	src := n.NewNode("src", 0, MBps(100))
	dst := n.NewNode("dst", 0, MBps(100))
	var done sim.Time
	k.Spawn("send", func(p *sim.Proc) {
		n.Send(p, src, dst, 0)
		done = p.Now()
	})
	k.Run()
	if done <= 0 || done > time.Millisecond {
		t.Errorf("zero-byte send took %v, want sub-ms propagation only", done)
	}
}

func TestUnitConversions(t *testing.T) {
	if Mbps(8) != Bps(1e6) {
		t.Errorf("Mbps(8) = %v, want 1e6 B/s", Mbps(8))
	}
	if Gbps(1) != Bps(125e6) {
		t.Errorf("Gbps(1) = %v, want 125e6 B/s", Gbps(1))
	}
	if MBps(1) != Bps(1e6) {
		t.Errorf("MBps(1) = %v, want 1e6 B/s", MBps(1))
	}
}
