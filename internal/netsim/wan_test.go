package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

func newWANNet(t *testing.T) (*sim.Kernel, *Network, *Node, *Node) {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	n := NewNetwork(k, simrand.New(7), DefaultLatency())
	n.ConnectRegions(0, 1, MBps(100), WANUniform(30*time.Millisecond, 2*time.Millisecond))
	east := n.NewNode("east", 0, Gbps(10))
	prev := n.SetBuildRegion(1)
	west := n.NewNode("west", 0, Gbps(10))
	n.SetBuildRegion(prev)
	return k, n, east, west
}

func TestWANTopologyBasics(t *testing.T) {
	_, n, east, west := newWANNet(t)
	if east.Region() != 0 || west.Region() != 1 {
		t.Fatalf("regions: east %d west %d", east.Region(), west.Region())
	}
	if n.Regions() != 2 {
		t.Fatalf("Regions() = %d, want 2", n.Regions())
	}
	if !n.Reachable(east, west) || !n.Reachable(west, east) {
		t.Fatal("healthy trunk should be reachable both ways")
	}
	n.PartitionRegions(0, 1)
	if n.Reachable(east, west) || !n.RegionsPartitioned(1, 0) {
		t.Fatal("partition not visible")
	}
	if !n.Reachable(east, east) {
		t.Fatal("same-region reachability must survive a partition")
	}
	n.PartitionRegions(1, 0) // idempotent, either pair order
	n.HealRegions(0, 1)
	if !n.Reachable(east, west) {
		t.Fatal("heal not visible")
	}
	// Cross-region one-way delay comes from the trunk's distribution.
	for i := 0; i < 32; i++ {
		d := n.OneWayDelay(east, west)
		if d < 28*time.Millisecond || d > 32*time.Millisecond {
			t.Fatalf("cross-region delay %v outside trunk distribution", d)
		}
	}
}

// TestWANPartitionStallsTransfer pins the partition primitive end to end: a
// cross-region transfer caught mid-flight stalls at rate zero — frozen
// bytes, no completion — and resumes after the heal, finishing exactly one
// partition-length later than it would have unpartitioned.
func TestWANPartitionStallsTransfer(t *testing.T) {
	k, n, east, west := newWANNet(t)
	var doneAt sim.Time
	k.Spawn("xfer", func(p *sim.Proc) {
		// 200 MB over a 100 MB/s trunk: 2s of service time.
		n.Send(p, east, west, 200e6)
		doneAt = p.Now()
	})
	k.Spawn("chaos", func(p *sim.Proc) {
		p.Sleep(time.Second)
		n.PartitionRegions(0, 1)
		p.Sleep(3 * time.Second)
		n.HealRegions(0, 1)
	})
	k.RunUntil(sim.Time(3 * time.Second))
	if doneAt != 0 {
		t.Fatalf("transfer completed at %v inside the partition window", doneAt)
	}
	k.Run()
	if doneAt == 0 {
		t.Fatal("transfer never completed after heal")
	}
	// Delay (~30ms) + 1s of service + 3s stalled + 1s remaining service.
	lo, hi := sim.Time(5*time.Second), sim.Time(5*time.Second+40*time.Millisecond)
	if doneAt < lo || doneAt > hi {
		t.Fatalf("transfer completed at %v, want within [%v, %v]", doneAt, lo, hi)
	}
	if got := n.WANBytes(0, 1); got != 200e6 {
		t.Fatalf("WANBytes = %d, want 200e6", got)
	}
}

// TestSendMsgPartitionSemantics: SendMsg reports loss when the trunk is
// down at send time (after burning the one-way delay, so RNG consumption
// matches the healthy path) and when a partition severs the transfer
// mid-flight; same-region sends always deliver.
func TestSendMsgPartitionSemantics(t *testing.T) {
	k, n, east, west := newWANNet(t)
	east2 := n.NewNode("east2", 1, Gbps(10))
	var egressed int64
	n.MeterEgress(func(b int64) { egressed += b })

	results := make(map[string]bool)
	k.Spawn("msgs", func(p *sim.Proc) {
		results["healthy"] = n.SendMsg(p, east, west, 1e6)
		n.PartitionRegions(0, 1)
		t0 := p.Now()
		results["down"] = n.SendMsg(p, east, west, 1e6)
		if p.Now() == t0 {
			t.Error("lost send must still burn the one-way delay")
		}
		results["local"] = n.SendMsg(p, east, east2, 1e6)
		n.HealRegions(0, 1)
		results["healed"] = n.SendMsg(p, east, west, 1e6)
	})
	k.Spawn("midflight", func(p *sim.Proc) {
		p.Sleep(time.Second)
		// 500 MB over the 100 MB/s trunk takes seconds; sever it mid-flight
		// and heal later: the message arrives eventually but is reported
		// lost to the sender.
		k.Spawn("cut", func(cp *sim.Proc) {
			cp.Sleep(time.Second)
			n.PartitionRegions(0, 1)
			cp.Sleep(time.Second)
			n.HealRegions(0, 1)
		})
		results["midflight"] = n.SendMsg(p, east, west, 500e6)
	})
	k.Run()
	want := map[string]bool{"healthy": true, "down": false, "local": true, "healed": true, "midflight": false}
	for name, w := range want {
		if results[name] != w {
			t.Errorf("SendMsg %s = %v, want %v", name, results[name], w)
		}
	}
	// Egress metering covers delivered and mid-flight-severed payloads (the
	// bytes do cross eventually) but not the at-send-time losses.
	if want := int64(1e6 + 1e6 + 500e6); egressed != want {
		t.Errorf("egress metered %d bytes, want %d", egressed, want)
	}
}

func TestConnectRegionsValidation(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	n := NewNetwork(k, simrand.New(1), DefaultLatency())
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	n.ConnectRegions(0, 1, Gbps(1), WANUniform(30*time.Millisecond, 0))
	mustPanic("self", func() { n.ConnectRegions(2, 2, Gbps(1), WANUniform(0, 0)) })
	mustPanic("dup", func() { n.ConnectRegions(1, 0, Gbps(1), WANUniform(0, 0)) })
	a := n.NewNode("a", 0, Gbps(1))
	n.SetBuildRegion(2)
	c := n.NewNode("c", 0, Gbps(1))
	mustPanic("unconnected", func() { n.OneWayDelay(a, c) })
	if n.Reachable(a, c) {
		t.Error("unconnected regions must not be reachable")
	}
}
