package netsim

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// WAN tier: regions are topology subtrees joined by high-latency,
// capacity-limited inter-region trunks. Everything below rides the same
// incremental fabric solver as the intra-region links — a trunk is an
// ordinary Link threaded into every cross-region transfer, a partition is
// SetCapacity(0) on that trunk (one O(touched component) re-solve), and a
// heal restores the saved capacity. Cross-region bytes are metered through
// the egress hook so experiments can price them per GB.

// wanKey identifies a region pair, lower region first.
type wanKey struct{ lo, hi int }

func pairKey(a, b int) wanKey {
	if a > b {
		a, b = b, a
	}
	return wanKey{lo: a, hi: b}
}

// wanPair is the inter-region trunk between two regions.
type wanPair struct {
	link        *Link
	lat         simrand.Dist
	capacity    Bps // nominal capacity, restored on heal
	partitioned bool
	severs      int64 // cumulative partition count, for in-flight loss detection
	bytes       int64 // cumulative cross-region payload bytes
	// Passive one-way-delay observations (sum and count of every sampled
	// delay across this trunk), the measurement base for MeasuredTrunkRTT.
	obsSum time.Duration
	obsN   int64
}

// SetBuildRegion switches the region new nodes are created in and returns
// the previous build region, so callers can place a subsystem and restore:
//
//	prev := net.SetBuildRegion(1)
//	defer net.SetBuildRegion(prev)
func (n *Network) SetBuildRegion(region int) (prev int) {
	if region < 0 {
		panic("netsim: region must be non-negative")
	}
	prev = n.buildRegion
	n.buildRegion = region
	if region > n.maxRegion {
		n.maxRegion = region
	}
	return prev
}

// BuildRegion returns the region new nodes are currently created in.
func (n *Network) BuildRegion() int { return n.buildRegion }

// Regions returns the number of regions the network spans (highest region
// referenced by a node or trunk, plus one).
func (n *Network) Regions() int { return n.maxRegion + 1 }

// ConnectRegions joins two regions with a WAN trunk of the given capacity
// and one-way latency distribution. Each region pair may be connected once.
func (n *Network) ConnectRegions(a, b int, capacity Bps, lat simrand.Dist) *Link {
	if a == b {
		panic("netsim: cannot connect a region to itself")
	}
	key := pairKey(a, b)
	if n.wan == nil {
		n.wan = make(map[wanKey]*wanPair)
	}
	if _, dup := n.wan[key]; dup {
		panic(fmt.Sprintf("netsim: regions %d and %d already connected", a, b))
	}
	link := n.fabric.NewLink(fmt.Sprintf("wan/%d-%d", key.lo, key.hi), capacity)
	n.wan[key] = &wanPair{link: link, lat: lat, capacity: capacity}
	if key.hi > n.maxRegion {
		n.maxRegion = key.hi
	}
	return link
}

// wanPairOf returns the trunk between two distinct regions, panicking when
// they were never connected — an unpriced cross-region path is a topology
// bug, not a runtime condition.
func (n *Network) wanPairOf(a, b int) *wanPair {
	pair := n.wan[pairKey(a, b)]
	if pair == nil {
		panic(fmt.Sprintf("netsim: regions %d and %d are not connected", a, b))
	}
	return pair
}

// PartitionRegions severs the trunk between two regions: its capacity drops
// to zero, in-flight cross-region transfers stall in place, and new sends
// report loss through SendMsg. Idempotent while already partitioned.
func (n *Network) PartitionRegions(a, b int) {
	pair := n.wanPairOf(a, b)
	if pair.partitioned {
		return
	}
	pair.partitioned = true
	pair.severs++
	pair.link.SetCapacity(n.fabric, 0)
}

// HealRegions restores a severed trunk to its nominal capacity; stalled
// transfers resume from their frozen byte counts. Idempotent while healthy.
func (n *Network) HealRegions(a, b int) {
	pair := n.wanPairOf(a, b)
	if !pair.partitioned {
		return
	}
	pair.partitioned = false
	pair.link.SetCapacity(n.fabric, pair.capacity)
}

// RegionsPartitioned reports whether the trunk between two regions is
// currently severed.
func (n *Network) RegionsPartitioned(a, b int) bool {
	return n.wanPairOf(a, b).partitioned
}

// Reachable reports whether a message from src can currently reach dst:
// always within a region, and across regions only over a healthy trunk.
func (n *Network) Reachable(src, dst *Node) bool {
	if src.region == dst.region {
		return true
	}
	pair := n.wan[pairKey(src.region, dst.region)]
	return pair != nil && !pair.partitioned
}

// MeterEgress installs the hook invoked with the payload size of every
// cross-region send, for per-GB egress pricing.
func (n *Network) MeterEgress(fn func(bytes int64)) { n.egress = fn }

// WANBytes returns the cumulative cross-region payload bytes shipped over
// the trunk between two regions.
func (n *Network) WANBytes(a, b int) int64 { return n.wanPairOf(a, b).bytes }

// SendMsg is Send with partition semantics for message-oriented callers:
// it reports whether the message was delivered. A send into a severed trunk
// still burns the one-way delay (the sender's timeout, and an identical RNG
// draw on healthy and partitioned paths — determinism across chaos
// schedules) but moves no bytes and returns false. A transfer that a
// partition catches mid-flight stalls until the heal, then reports false —
// the TCP stall outliving the application deadline. Same-region sends are
// exactly Send and always deliver.
func (n *Network) SendMsg(p *sim.Proc, src, dst *Node, size int64, extra ...*Link) bool {
	if src.region == dst.region {
		n.Send(p, src, dst, size, extra...)
		return true
	}
	pair := n.wanPairOf(src.region, dst.region)
	if pair.partitioned {
		p.Sleep(n.OneWayDelay(src, dst))
		return false
	}
	before := pair.severs
	n.Send(p, src, dst, size, extra...)
	return pair.severs == before
}

// MeasuredTrunkRTT returns the mean observed round-trip time between two
// regions (2× the mean of every one-way delay sampled across their trunk)
// and whether any traffic has been observed. Unconnected region pairs and
// silent trunks report false — latency-based routing falls back to
// declaration order for paths it has never measured. Same region reports
// (0, true): local is always the best guess.
func (n *Network) MeasuredTrunkRTT(a, b int) (time.Duration, bool) {
	if a == b {
		return 0, true
	}
	pair := n.wan[pairKey(a, b)]
	if pair == nil || pair.obsN == 0 {
		return 0, false
	}
	return 2 * (pair.obsSum / time.Duration(pair.obsN)), true
}

// WANUniform is a convenience one-way-latency distribution for trunks:
// uniform in [mean-spread, mean+spread].
func WANUniform(mean, spread time.Duration) simrand.Dist {
	return simrand.Uniform{Lo: mean - spread, Hi: mean + spread}
}
