package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// TestSolverEquivalenceWAN extends the PR 5 randomized equivalence property
// to WAN topologies: random region trees whose trunks carry multi-hop
// cross-region transfers, under capacity churn AND capacity-zero events
// (partitions) with later heals. The flat incremental engine and the
// retained map-based reference must agree on per-link rate sums at every
// step — including while flows are stalled at rate zero behind a severed
// trunk — and on the exact virtual nanosecond every flow completes after
// the final heal.
func TestSolverEquivalenceWAN(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := simrand.New(seed)

		kNew := sim.NewKernel()
		kRef := sim.NewKernel()
		fNew := NewFabric(kNew)
		fRef := newRefFabric(kRef)

		// Random region tree: region r > 0 hangs off parent[r] via trunk r.
		regions := rng.Intn(3) + 2
		parent := make([]int, regions)
		depth := make([]int, regions)
		trunkNew := make([]*Link, regions)
		trunkRef := make([]*refLink, regions)
		trunkCap := make([]Bps, regions)
		severed := make([]bool, regions)
		for r := 1; r < regions; r++ {
			parent[r] = rng.Intn(r)
			depth[r] = depth[parent[r]] + 1
			c := Mbps(float64(rng.Intn(900) + 100))
			trunkCap[r] = c
			trunkNew[r] = fNew.NewLink("wan", c)
			trunkRef[r] = fRef.newLink("wan", c)
		}
		perRegion := rng.Intn(2) + 2
		nicNew := make([][]*Link, regions)
		nicRef := make([][]*refLink, regions)
		for r := 0; r < regions; r++ {
			for j := 0; j < perRegion; j++ {
				c := MBps(float64(rng.Intn(900)+100) / 10)
				nicNew[r] = append(nicNew[r], fNew.NewLink("nic", c))
				nicRef[r] = append(nicRef[r], fRef.newLink("nic", c))
			}
		}
		var allNew []*Link
		var allRef []*refLink
		for r := 0; r < regions; r++ {
			allNew = append(allNew, nicNew[r]...)
			allRef = append(allRef, nicRef[r]...)
		}
		allNew = append(allNew, trunkNew[1:]...)
		allRef = append(allRef, trunkRef[1:]...)

		// treeEdges returns the child-region indices of the tree edges on
		// the path between regions a and b.
		treeEdges := func(a, b int) []int {
			var edges []int
			for a != b {
				if depth[a] >= depth[b] {
					edges = append(edges, a)
					a = parent[a]
				} else {
					edges = append(edges, b)
					b = parent[b]
				}
			}
			return edges
		}

		type done struct{ newAt, refAt sim.Time }
		var flows []*done
		watch := func(d *done, lNew, lRef *sim.Latch) {
			kNew.Spawn("w", func(p *sim.Proc) { lNew.Wait(p); d.newAt = p.Now() })
			kRef.Spawn("w", func(p *sim.Proc) { lRef.Wait(p); d.refAt = p.Now() })
		}

		now := sim.Time(0)
		steps := rng.Intn(40) + 20
		for step := 0; step < steps; step++ {
			now += time.Duration(rng.Intn(200)+1) * time.Millisecond
			kNew.RunUntil(now)
			kRef.RunUntil(now)
			switch op := rng.Intn(10); {
			case op < 6: // transfer between two endpoints, trunk path included
				a, b := rng.Intn(regions), rng.Intn(regions)
				sn, dn := rng.Intn(perRegion), rng.Intn(perRegion)
				if a == b && sn == dn {
					dn = (dn + 1) % perRegion
				}
				ln := []*Link{nicNew[a][sn]}
				lr := []*refLink{nicRef[a][sn]}
				for _, e := range treeEdges(a, b) {
					ln = append(ln, trunkNew[e])
					lr = append(lr, trunkRef[e])
				}
				ln = append(ln, nicNew[b][dn])
				lr = append(lr, nicRef[b][dn])
				size := int64(rng.Intn(100)+1) * 1e6
				d := &done{}
				flows = append(flows, d)
				watch(d, fNew.TransferAsync(size, ln...), fRef.transferAsync(size, lr...))
			case op < 8: // capacity change on a random endpoint NIC
				r, j := rng.Intn(regions), rng.Intn(perRegion)
				c := MBps(float64(rng.Intn(900)+100) / 10)
				nicNew[r][j].SetCapacity(fNew, c)
				nicRef[r][j].setCapacity(fRef, c)
			default: // partition or heal a random trunk
				r := rng.Intn(regions-1) + 1
				if severed[r] {
					severed[r] = false
					trunkNew[r].SetCapacity(fNew, trunkCap[r])
					trunkRef[r].setCapacity(fRef, trunkCap[r])
				} else {
					severed[r] = true
					trunkNew[r].SetCapacity(fNew, 0)
					trunkRef[r].setCapacity(fRef, 0)
				}
			}
			refRates := fRef.solve()
			for i, l := range allNew {
				var sumNew, sumRef float64
				for _, id := range l.flowIDs {
					sumNew += float64(fNew.flows[id].rate)
				}
				for fl := range allRef[i].flows {
					sumRef += float64(refRates[fl])
				}
				if !almostEqual(sumNew, sumRef, 1e-9) {
					t.Fatalf("seed %d step %d: link %d rate sum %.9g (incremental) vs %.9g (reference)",
						seed, step, i, sumNew, sumRef)
				}
			}
			if fNew.InFlight() != len(fRef.flows) {
				t.Fatalf("seed %d step %d: in-flight %d vs %d", seed, step, fNew.InFlight(), len(fRef.flows))
			}
		}
		// Heal every severed trunk so stalled flows can drain, then run both
		// worlds dry: completion times must match to the nanosecond.
		now += time.Millisecond
		kNew.RunUntil(now)
		kRef.RunUntil(now)
		for r := 1; r < regions; r++ {
			if severed[r] {
				trunkNew[r].SetCapacity(fNew, trunkCap[r])
				trunkRef[r].setCapacity(fRef, trunkCap[r])
			}
		}
		kNew.Run()
		kRef.Run()
		for i, d := range flows {
			if d.newAt != d.refAt {
				t.Fatalf("seed %d: flow %d completed at %v (incremental) vs %v (reference)",
					seed, i, d.newAt, d.refAt)
			}
			if d.newAt == 0 {
				t.Fatalf("seed %d: flow %d never completed", seed, i)
			}
		}
		kNew.Close()
		kRef.Close()
	}
}
