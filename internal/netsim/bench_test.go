package netsim

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkMaxMinSolve measures a full water-filling re-solve at the
// contention level of the bandwidth-collapse experiment (20 flows over
// shared links).
func BenchmarkMaxMinSolve(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	shared := f.NewLink("vm-nic", Mbps(538))
	sink := f.NewLink("sink", Gbps(400))
	for i := 0; i < 20; i++ {
		f.TransferAsync(1e12, shared, sink)
	}
	seeds := []*Link{shared, sink}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.solveComponent(seeds, nil)
	}
}

// BenchmarkTransferLifecycle measures full start-progress-complete cycles.
func BenchmarkTransferLifecycle(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", MBps(100))
	done := 0
	k.Spawn("xfers", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			f.Transfer(p, 1e6, l)
			done++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
	if done != b.N {
		b.Fatalf("completed %d, want %d", done, b.N)
	}
}

// BenchmarkFabricChurn measures transfer start/finish churn against a
// backdrop of concurrent long-lived flows sharing the same links — the
// steady-state hot path every scaled experiment funnels through. The
// allocs/op column is gated at zero in CI.
func BenchmarkFabricChurn(b *testing.B) {
	for _, flows := range []int{1, 20, 200} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			k := sim.NewKernel()
			defer k.Close()
			f := NewFabric(k)
			shared := f.NewLink("vm-nic", Mbps(538))
			sink := f.NewLink("sink", Gbps(400))
			for i := 0; i < flows-1; i++ {
				f.TransferAsync(1e15, shared, sink)
			}
			done := 0
			k.Spawn("churn", func(p *sim.Proc) {
				// Warm the arena and scratch before the timer starts.
				f.Transfer(p, 64e3, shared, sink)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.Transfer(p, 64e3, shared, sink)
					done++
				}
			})
			k.Run()
			if done != b.N {
				b.Fatalf("completed %d, want %d", done, b.N)
			}
		})
	}
}

// BenchmarkWANPartitionResolve measures a full partition/heal cycle on an
// inter-region trunk carrying stalled-and-resumed flows — two incremental
// component re-solves plus the stall bookkeeping. The allocs/op column is
// gated at zero in CI: chaos injection must ride the same allocation-free
// machinery as ordinary churn.
func BenchmarkWANPartitionResolve(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	trunk := f.NewLink("wan/0-1", Gbps(1))
	src := f.NewLink("src-nic", Gbps(10))
	dst := f.NewLink("dst-nic", Gbps(10))
	for i := 0; i < 8; i++ {
		f.TransferAsync(1e15, src, trunk, dst)
	}
	ran := false
	k.Spawn("chaos", func(p *sim.Proc) {
		// Warm scratch before the timer starts.
		trunk.SetCapacity(f, 0)
		trunk.SetCapacity(f, Gbps(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			trunk.SetCapacity(f, 0)
			trunk.SetCapacity(f, Gbps(1))
		}
		ran = true
	})
	k.Run()
	if !ran {
		b.Fatal("chaos loop never ran")
	}
}

// BenchmarkFabricRateProbe measures the read-only Rate probe against 20
// concurrent flows. The probe water-fills hypothetically in scratch space;
// its allocs/op column is gated at zero in CI.
func BenchmarkFabricRateProbe(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	shared := f.NewLink("vm-nic", Mbps(538))
	sink := f.NewLink("sink", Gbps(400))
	for i := 0; i < 20; i++ {
		f.TransferAsync(1e12, shared, sink)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var r Bps
	for i := 0; i < b.N; i++ {
		r = f.Rate(shared, sink)
	}
	if r <= 0 {
		b.Fatal("probe returned no rate")
	}
}
