package netsim

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkMaxMinSolve measures the water-filling solver at the contention
// level of the bandwidth-collapse experiment (20 flows over shared links).
func BenchmarkMaxMinSolve(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	shared := f.NewLink("vm-nic", Mbps(538))
	sink := f.NewLink("sink", Gbps(400))
	for i := 0; i < 20; i++ {
		f.TransferAsync(1e12, shared, sink)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.solve()
	}
}

// BenchmarkTransferLifecycle measures full start-progress-complete cycles.
func BenchmarkTransferLifecycle(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", MBps(100))
	done := 0
	k.Spawn("xfers", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			f.Transfer(p, 1e6, l)
			done++
		}
	})
	b.ResetTimer()
	k.Run()
	if done != b.N {
		b.Fatalf("completed %d, want %d", done, b.N)
	}
}
