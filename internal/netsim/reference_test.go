package netsim

// The pre-rework map-based fluid-flow engine, retained verbatim (modulo
// renames) as the reference implementation for the randomized equivalence
// property test: the flat incremental solver must reproduce its rates and
// completion times across topology churn. Allocation behavior is
// irrelevant here — only the arithmetic is.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

type refLink struct {
	name     string
	capacity Bps
	flows    map[*refFlow]struct{}
}

func (l *refLink) setCapacity(f *refFabric, c Bps) {
	if c < 0 {
		panic("netsim: link capacity must be non-negative")
	}
	l.capacity = c
	f.recompute()
}

type refFlow struct {
	links     []*refLink
	remaining float64 // bytes
	rate      Bps
	updated   sim.Time
	done      sim.Latch
}

type refFabric struct {
	k          *sim.Kernel
	flows      map[*refFlow]struct{}
	completion *sim.Timer
}

func newRefFabric(k *sim.Kernel) *refFabric {
	f := &refFabric{k: k, flows: make(map[*refFlow]struct{})}
	f.completion = k.NewTimer(f.recompute)
	return f
}

func (f *refFabric) newLink(name string, capacity Bps) *refLink {
	if capacity <= 0 {
		panic("netsim: link capacity must be positive")
	}
	return &refLink{name: name, capacity: capacity, flows: make(map[*refFlow]struct{})}
}

func (f *refFabric) activeLinks() map[*refLink]struct{} {
	set := make(map[*refLink]struct{})
	for fl := range f.flows {
		for _, l := range fl.links {
			set[l] = struct{}{}
		}
	}
	return set
}

func (f *refFabric) transferAsync(size int64, links ...*refLink) *sim.Latch {
	fl := f.start(size, links...)
	if fl == nil {
		l := &sim.Latch{}
		l.Release()
		return l
	}
	return &fl.done
}

func (f *refFabric) start(size int64, links ...*refLink) *refFlow {
	if size <= 0 || len(links) == 0 {
		return nil
	}
	fl := &refFlow{links: links, remaining: float64(size), updated: f.k.Now()}
	f.attach(fl)
	f.recompute()
	return fl
}

func (f *refFabric) attach(fl *refFlow) {
	f.flows[fl] = struct{}{}
	for _, l := range fl.links {
		l.flows[fl] = struct{}{}
	}
}

func (f *refFabric) detach(fl *refFlow) {
	delete(f.flows, fl)
	for _, l := range fl.links {
		delete(l.flows, fl)
	}
}

func (f *refFabric) advance() {
	now := f.k.Now()
	for fl := range f.flows {
		if dt := now - fl.updated; dt > 0 && fl.rate > 0 {
			fl.remaining -= float64(fl.rate) * dt.Seconds()
			if fl.remaining < 0 {
				fl.remaining = 0
			}
		}
		fl.updated = now
	}
}

// solve computes max-min fair rates by progressive water-filling over
// per-solve maps, exactly as the historical engine did.
func (f *refFabric) solve() map[*refFlow]Bps {
	rates := make(map[*refFlow]Bps, len(f.flows))
	links := f.activeLinks()
	free := make(map[*refLink]float64, len(links))
	unfrozen := make(map[*refLink]int, len(links))
	for l := range links {
		free[l] = float64(l.capacity)
		unfrozen[l] = len(l.flows)
	}
	frozen := make(map[*refFlow]bool, len(f.flows))
	for len(frozen) < len(f.flows) {
		var bottleneck *refLink
		share := math.MaxFloat64
		for l, n := range unfrozen {
			if n <= 0 {
				continue
			}
			if s := free[l] / float64(n); s < share {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		for fl := range bottleneck.flows {
			if frozen[fl] {
				continue
			}
			frozen[fl] = true
			rates[fl] = Bps(share)
			for _, l := range fl.links {
				free[l] -= share
				if free[l] < 0 {
					free[l] = 0
				}
				unfrozen[l]--
			}
		}
	}
	return rates
}

func (f *refFabric) recompute() {
	f.advance()
	for fl := range f.flows {
		if fl.remaining < 0.5 {
			f.detach(fl)
			fl.done.Release()
		}
	}
	rates := f.solve()
	var nextDone sim.Time = -1
	now := f.k.Now()
	for fl := range f.flows {
		fl.rate = rates[fl]
		if fl.rate <= 0 {
			// Mirror the live solver's stall semantics: a flow crossing a
			// severed (zero-capacity) link holds its bytes and schedules no
			// completion.
			if refStalled(fl.links) {
				continue
			}
			panic(fmt.Sprintf("netsim: reference flow starved (%d links)", len(fl.links)))
		}
		finish := now + time.Duration(fl.remaining/float64(fl.rate)*float64(time.Second))
		if finish <= now {
			finish = now + 1
		}
		if nextDone < 0 || finish < nextDone {
			nextDone = finish
		}
	}
	if nextDone >= 0 {
		f.completion.ResetAt(nextDone)
	} else {
		f.completion.Stop()
	}
}

func refStalled(links []*refLink) bool {
	for _, l := range links {
		if l.capacity <= 0 {
			return true
		}
	}
	return false
}
