// Package netsim models the datacenter network: shared-capacity links with
// max-min fair bandwidth allocation, and a topology with latency classes
// (same host / same rack / cross rack).
//
// Bulk transfers are simulated with a fluid-flow model: every active flow
// crosses one or more links, each link's capacity is divided among its flows
// by progressive water-filling (true max-min fairness), and flow rates are
// recomputed whenever a flow starts or finishes. This is the mechanism that
// makes the paper's observation — per-function bandwidth collapsing from
// 538 Mbps to ~28 Mbps when 20 functions share a VM's NIC — an emergent
// property of the simulation rather than a constant.
//
// The engine is flat and incremental, mirroring the internal/sim kernel
// playbook: flows live as values in an arena with an embedded free list and
// int32 ids, per-link membership is an attach-ordered id slice, the solver
// water-fills over epoch-stamped scratch held inside the Link and flow
// slots, and a flow start/finish re-solves only the connected component of
// links reachable from the touched flow — rates of unaffected components
// carry forward bit-identically. The steady-state transfer start/progress/
// complete cycle performs zero heap allocations (gated in CI). See
// DESIGN.md "Fabric internals" for the determinism argument.
package netsim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// Bps is link capacity in bytes per second.
type Bps float64

// Mbps converts megabits per second into Bps.
func Mbps(v float64) Bps { return Bps(v * 1e6 / 8) }

// Gbps converts gigabits per second into Bps.
func Gbps(v float64) Bps { return Mbps(v * 1000) }

// MBps converts megabytes per second into Bps.
func MBps(v float64) Bps { return Bps(v * 1e6) }

// Link is a shared transmission resource with finite capacity. Links are
// created through a Fabric and must not be shared across fabrics.
type Link struct {
	name     string
	capacity Bps
	// flowIDs is the set of flows currently crossing the link, in attach
	// order — the order completions are released in and the order the
	// solver freezes a bottleneck's flows in.
	flowIDs []int32

	// Solver scratch, valid only for the epoch stamped in mark: free is the
	// unassigned capacity and unfrozen the number of member flows without a
	// rate yet. Keeping the scratch inside the Link (instead of per-solve
	// maps) is what makes a re-solve allocation-free.
	mark     uint64
	free     float64
	unfrozen int32
}

// Name returns the label given at creation.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's total capacity.
func (l *Link) Capacity() Bps { return l.capacity }

// ActiveFlows reports the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int { return len(l.flowIDs) }

// SetCapacity changes the link's capacity; rates of in-flight flows are
// re-derived immediately (used by ablations that upgrade NICs mid-run).
// Only the link's connected component is re-solved.
//
// A capacity of zero severs the link: water-filling hands its flows a fair
// share of zero, so they stall in place — remaining bytes frozen — until a
// later SetCapacity restores service. This is the WAN-partition primitive:
// a partition is one O(touched component) re-solve, not a topology rebuild.
func (l *Link) SetCapacity(f *Fabric, c Bps) {
	if c < 0 {
		panic("netsim: link capacity must be non-negative")
	}
	l.capacity = c
	f.seedLinks = append(f.seedLinks[:0], l)
	f.recomputeSeeded()
}

// noFlow is the nil value for flow-arena indices.
const noFlow int32 = -1

// flowSlot is one in-flight bulk transfer, stored by value in the fabric's
// arena. Freed slots thread onto the free list via next and are recycled by
// the next start, so steady-state transfer churn allocates nothing.
type flowSlot struct {
	links     []*Link // crossed links; backing array reused across lives
	remaining float64 // bytes
	rate      Bps
	updated   sim.Time
	// done wakes the blocking Transfer caller (at most one waiter); its
	// waiter storage is recycled by sim.Signal across slot reuses. ext is
	// the escaping latch handed out by TransferAsync — allocated per call,
	// because callers may hold it past the flow's lifetime.
	done sim.Signal
	ext  *sim.Latch
	next int32 // free-list link while the slot is idle

	// Solver scratch: seen stamps BFS component discovery, frozen stamps
	// rate assignment, both valid only for the fabric's current epoch.
	seen   uint64
	frozen uint64
}

// Fabric owns the flows crossing a set of links. Links are created through
// NewLink but the fabric only tracks links that currently carry flows, so
// short-lived per-connection limiter links cost nothing once idle.
//
// A Fabric's state is confined to the kernel's single-threaded event world:
// all methods must be called from process or event context.
type Fabric struct {
	k *sim.Kernel
	// completion fires at the estimated next flow-completion time. Every
	// recompute moves the single reusable timer instead of abandoning a
	// dead event in the kernel queue.
	completion *sim.Timer

	flows    []flowSlot
	freeFlow int32   // head of the slot free list
	order    []int32 // active flow ids in attach order

	// epoch brands the per-link and per-flow solver scratch; bumping it is
	// how a new solve invalidates old stamps without clearing anything.
	epoch uint64
	// Reusable scratch: seedLinks carries the links touched by the current
	// event into the solver, compLinks doubles as BFS queue and visited
	// component links, compFlows is the component's flows in discovery
	// order.
	seedLinks []*Link
	compLinks []*Link
	compFlows []int32
}

// NewFabric returns an empty fabric bound to kernel k.
func NewFabric(k *sim.Kernel) *Fabric {
	f := &Fabric{k: k, freeFlow: noFlow}
	f.completion = k.NewTimer(f.recompute)
	return f
}

// NewLink creates a link with the given capacity.
func (f *Fabric) NewLink(name string, capacity Bps) *Link {
	if capacity <= 0 {
		panic("netsim: link capacity must be positive")
	}
	return &Link{name: name, capacity: capacity}
}

// InFlight reports the number of active flows in the fabric.
func (f *Fabric) InFlight() int { return len(f.order) }

// Transfer moves size bytes across the given links, blocking the calling
// process until the transfer completes. A transfer of zero bytes (or with no
// links) completes immediately. The elapsed virtual time reflects max-min
// fair sharing with every other concurrent transfer.
func (f *Fabric) Transfer(p *sim.Proc, size int64, links ...*Link) {
	id := f.start(size, links)
	if id == noFlow {
		return
	}
	// The slot cannot complete between start and Wait (its remaining is
	// >= 1 byte and no event runs in between), so the signal is armed
	// before any completion can fire it.
	f.flows[id].done.Wait(p)
}

// TransferAsync begins a transfer and returns a latch that is released on
// completion (already released for empty transfers). The latch is allocated
// per call because it may outlive the flow; the blocking Transfer path
// stays allocation-free.
func (f *Fabric) TransferAsync(size int64, links ...*Link) *sim.Latch {
	l := &sim.Latch{}
	id := f.start(size, links)
	if id == noFlow {
		l.Release()
		return l
	}
	f.flows[id].ext = l
	return l
}

// start attaches a new flow and re-solves its component. It returns noFlow
// for empty transfers.
func (f *Fabric) start(size int64, links []*Link) int32 {
	if size <= 0 || len(links) == 0 {
		return noFlow
	}
	id := f.alloc()
	s := &f.flows[id]
	s.links = append(s.links[:0], links...)
	s.remaining = float64(size)
	s.rate = 0
	s.updated = f.k.Now()
	f.order = append(f.order, id)
	for i, l := range links {
		// Membership is a set: a caller listing the same link twice joins
		// it once (the freshly allocated id cannot already be a member, so
		// only the flow's own short link list needs checking).
		if !dupLink(links, i) {
			l.flowIDs = append(l.flowIDs, id)
		}
	}
	f.seedLinks = append(f.seedLinks[:0], links...)
	f.recomputeSeeded()
	return id
}

// alloc takes a slot off the free list, or extends the arena.
func (f *Fabric) alloc() int32 {
	if f.freeFlow != noFlow {
		id := f.freeFlow
		f.freeFlow = f.flows[id].next
		return id
	}
	f.flows = append(f.flows, flowSlot{next: noFlow})
	return int32(len(f.flows) - 1)
}

// removeID deletes the first occurrence of id, preserving order (attach
// order is the completion-release order, so a swap-remove would reintroduce
// the nondeterminism this engine pins down).
func removeID(ids []int32, id int32) []int32 {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// advance charges each active flow for progress made since its last update.
func (f *Fabric) advance() {
	now := f.k.Now()
	for _, id := range f.order {
		s := &f.flows[id]
		if dt := now - s.updated; dt > 0 && s.rate > 0 {
			s.remaining -= float64(s.rate) * dt.Seconds()
			if s.remaining < 0 {
				s.remaining = 0
			}
		}
		s.updated = now
	}
}

// completeDrained releases every flow that has drained (within half a byte
// of zero) in attach order — the deterministic completion contract: when
// several flows finish in the same recompute, their waiters wake in the
// order the transfers started, not in map-iteration order. Each completed
// flow's links join seedLinks so the residual components re-solve.
func (f *Fabric) completeDrained() {
	w := 0
	for _, id := range f.order {
		s := &f.flows[id]
		if s.remaining >= 0.5 {
			f.order[w] = id
			w++
			continue
		}
		for i, l := range s.links {
			l.flowIDs = removeID(l.flowIDs, id)
			f.seedLinks = append(f.seedLinks, l)
			// Drop the reference so a recycled slot cannot pin dead
			// links (short-lived per-connection limiters) in memory; the
			// backing array itself is kept for reuse.
			s.links[i] = nil
		}
		s.links = s.links[:0]
		s.done.Fire()
		if s.ext != nil {
			s.ext.Release()
			s.ext = nil
		}
		s.next = f.freeFlow
		f.freeFlow = id
	}
	f.order = f.order[:w]
}

// recompute is the completion-timer callback: advance progress, complete
// drained flows, re-solve their components, reschedule.
func (f *Fabric) recompute() {
	f.seedLinks = f.seedLinks[:0]
	f.recomputeSeeded()
}

// recomputeSeeded advances progress, completes drained flows, re-solves the
// connected components reachable from seedLinks (plus those of completed
// flows), and schedules the next completion event. Components not reachable
// from any seed keep their rates — which a full solve would recompute to
// the bit-identical values, since max-min water-filling treats disjoint
// components independently.
func (f *Fabric) recomputeSeeded() {
	f.advance()
	f.completeDrained()
	if len(f.seedLinks) > 0 {
		f.solveComponent(f.seedLinks, nil)
	}
	f.reschedule()
}

// reschedule moves the completion timer to the earliest estimated flow
// completion, and checks the no-starvation invariant. Flows crossing a
// severed (zero-capacity) link are stalled, not starved: they hold their
// remaining bytes and schedule no completion; the heal's SetCapacity
// re-solve puts them back in motion.
func (f *Fabric) reschedule() {
	var nextDone sim.Time = -1
	now := f.k.Now()
	for _, id := range f.order {
		s := &f.flows[id]
		if s.rate <= 0 {
			if stalled(s.links) {
				continue
			}
			panic(fmt.Sprintf("netsim: flow starved (links %v)", linkNames(s.links)))
		}
		finish := now + time.Duration(s.remaining/float64(s.rate)*float64(time.Second))
		if finish <= now {
			finish = now + 1 // at least one tick of progress
		}
		if nextDone < 0 || finish < nextDone {
			nextDone = finish
		}
	}
	if nextDone >= 0 {
		f.completion.ResetAt(nextDone)
	} else {
		f.completion.Stop()
	}
}

// Rate returns the current max-min fair rate a new flow over the given links
// would receive, without starting a transfer. It is a read-only probe: the
// hypothetical flow is water-filled against the live component in scratch
// space, with no attach/detach churn, no progress advance and no completion
// timer movement.
func (f *Fabric) Rate(links ...*Link) Bps {
	if len(links) == 0 {
		return 0
	}
	return Bps(f.solveComponent(links, links))
}

// solveComponent re-solves the connected components of links reachable from
// seeds by progressive water-filling: repeatedly find the most constrained
// link, freeze its flows at the fair share, remove that capacity, and
// continue until every component flow has a rate. Freezing iterates a
// bottleneck's flows in attach order and ties between equally constrained
// links break by discovery order; both orders are deterministic, and
// neither changes the allocation — the max-min fair point is unique, and
// every flow frozen in one round subtracts the same share, so the float
// arithmetic is order-independent.
//
// With probe non-nil, a hypothetical flow over the probe links rides along:
// it contributes to its links' demand and freezes like any other flow, but
// no real flow's stored rate is modified. Probe links must be included in
// seeds (Rate passes one slice as both). The return value is the probe's
// rate (0 when probe is nil).
func (f *Fabric) solveComponent(seeds []*Link, probe []*Link) float64 {
	f.epoch++
	epoch := f.epoch
	readOnly := probe != nil

	// Flood the component(s): links reachable from the seeds through
	// shared flows. compLinks doubles as the BFS queue.
	f.compLinks = f.compLinks[:0]
	f.compFlows = f.compFlows[:0]
	for _, l := range seeds {
		if l.mark != epoch {
			l.mark = epoch
			f.compLinks = append(f.compLinks, l)
		}
	}
	for i := 0; i < len(f.compLinks); i++ {
		for _, id := range f.compLinks[i].flowIDs {
			s := &f.flows[id]
			if s.seen == epoch {
				continue
			}
			s.seen = epoch
			f.compFlows = append(f.compFlows, id)
			for _, l := range s.links {
				if l.mark != epoch {
					l.mark = epoch
					f.compLinks = append(f.compLinks, l)
				}
			}
		}
	}

	for _, l := range f.compLinks {
		l.free = float64(l.capacity)
		l.unfrozen = int32(len(l.flowIDs))
	}
	var probeRate float64
	probeFrozen := probe == nil
	if probe != nil {
		// The probe raises demand once per distinct link it crosses
		// (membership is a set), like an attached flow would. Probe links
		// are always among the seeds (Rate passes the same slice), so
		// their scratch was initialized just above.
		for i, l := range probe {
			if !dupLink(probe, i) {
				l.unfrozen++
			}
		}
	}

	total := len(f.compFlows)
	if probe != nil {
		total++
	}
	frozenCount := 0
	for frozenCount < total {
		// Find the bottleneck link: smallest fair share among links that
		// still carry unfrozen flows.
		var bottleneck *Link
		share := math.MaxFloat64
		for _, l := range f.compLinks {
			if l.unfrozen <= 0 {
				continue
			}
			if s := l.free / float64(l.unfrozen); s < share {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			// Remaining flows cross only links with no constraint left;
			// cannot happen while unfrozen flows exist on real links.
			break
		}
		if !probeFrozen && containsLink(probe, bottleneck) {
			probeFrozen = true
			probeRate = share
			frozenCount++
			for _, l := range probe {
				l.free -= share
				if l.free < 0 {
					l.free = 0
				}
				l.unfrozen--
			}
		}
		for _, id := range bottleneck.flowIDs {
			s := &f.flows[id]
			if s.frozen == epoch {
				continue
			}
			s.frozen = epoch
			frozenCount++
			if !readOnly {
				s.rate = Bps(share)
			}
			// Capacity is subtracted once per slice entry, membership
			// counted once per distinct link — preserving the historical
			// semantics for flows listing a link twice.
			for _, l := range s.links {
				l.free -= share
				if l.free < 0 {
					l.free = 0
				}
				l.unfrozen--
			}
		}
	}
	if !readOnly {
		for _, id := range f.compFlows {
			if f.flows[id].frozen != epoch {
				// The break path left this flow without a rate; surface it
				// as the starvation panic reschedule would raise.
				f.flows[id].rate = 0
			}
		}
	}
	return probeRate
}

// stalled reports whether any crossed link is severed (zero capacity) —
// the one legitimate way for an active flow to sit at rate zero.
func stalled(links []*Link) bool {
	for _, l := range links {
		if l.capacity <= 0 {
			return true
		}
	}
	return false
}

// containsLink reports whether links holds l.
func containsLink(links []*Link, l *Link) bool {
	for _, v := range links {
		if v == l {
			return true
		}
	}
	return false
}

// dupLink reports whether links[i] already occurred before index i.
func dupLink(links []*Link, i int) bool {
	for _, v := range links[:i] {
		if v == links[i] {
			return true
		}
	}
	return false
}

func linkNames(links []*Link) []string {
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = l.name
	}
	return names
}
