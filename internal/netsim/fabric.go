// Package netsim models the datacenter network: shared-capacity links with
// max-min fair bandwidth allocation, and a topology with latency classes
// (same host / same rack / cross rack).
//
// Bulk transfers are simulated with a fluid-flow model: every active flow
// crosses one or more links, each link's capacity is divided among its flows
// by progressive water-filling (true max-min fairness), and flow rates are
// recomputed whenever a flow starts or finishes. This is the mechanism that
// makes the paper's observation — per-function bandwidth collapsing from
// 538 Mbps to ~28 Mbps when 20 functions share a VM's NIC — an emergent
// property of the simulation rather than a constant.
package netsim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// Bps is link capacity in bytes per second.
type Bps float64

// Mbps converts megabits per second into Bps.
func Mbps(v float64) Bps { return Bps(v * 1e6 / 8) }

// Gbps converts gigabits per second into Bps.
func Gbps(v float64) Bps { return Mbps(v * 1000) }

// MBps converts megabytes per second into Bps.
func MBps(v float64) Bps { return Bps(v * 1e6) }

// Link is a shared transmission resource with finite capacity. Links are
// created through a Fabric and must not be shared across fabrics.
type Link struct {
	name     string
	capacity Bps
	flows    map[*flow]struct{}
}

// Name returns the label given at creation.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's total capacity.
func (l *Link) Capacity() Bps { return l.capacity }

// ActiveFlows reports the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int { return len(l.flows) }

// SetCapacity changes the link's capacity; rates of in-flight flows are
// re-derived immediately (used by ablations that upgrade NICs mid-run).
func (l *Link) SetCapacity(f *Fabric, c Bps) {
	if c <= 0 {
		panic("netsim: link capacity must be positive")
	}
	l.capacity = c
	f.recompute()
}

// flow is one in-flight bulk transfer.
type flow struct {
	links     []*Link
	remaining float64 // bytes
	rate      Bps
	updated   sim.Time
	done      sim.Latch
}

// Fabric owns the flows crossing a set of links. Links are created through
// NewLink but the fabric only tracks links that currently carry flows, so
// short-lived per-connection limiter links cost nothing once idle.
type Fabric struct {
	k     *sim.Kernel
	flows map[*flow]struct{}
	// completion fires at the estimated next flow-completion time. Every
	// recompute moves the single reusable timer instead of abandoning a
	// dead event in the kernel queue (the old generation-counter scheme
	// left one no-op event behind per rate change).
	completion *sim.Timer
}

// NewFabric returns an empty fabric bound to kernel k.
func NewFabric(k *sim.Kernel) *Fabric {
	f := &Fabric{k: k, flows: make(map[*flow]struct{})}
	f.completion = k.NewTimer(f.recompute)
	return f
}

// NewLink creates a link with the given capacity.
func (f *Fabric) NewLink(name string, capacity Bps) *Link {
	if capacity <= 0 {
		panic("netsim: link capacity must be positive")
	}
	return &Link{name: name, capacity: capacity, flows: make(map[*flow]struct{})}
}

// activeLinks returns the links crossed by at least one active flow.
func (f *Fabric) activeLinks() map[*Link]struct{} {
	set := make(map[*Link]struct{})
	for fl := range f.flows {
		for _, l := range fl.links {
			set[l] = struct{}{}
		}
	}
	return set
}

// InFlight reports the number of active flows in the fabric.
func (f *Fabric) InFlight() int { return len(f.flows) }

// Rate returns the current max-min fair rate a new flow over the given links
// would receive, without starting a transfer. It is used by tests and by
// components that want to observe instantaneous per-flow bandwidth.
func (f *Fabric) Rate(links ...*Link) Bps {
	probe := &flow{links: links, remaining: math.MaxFloat64}
	f.attach(probe)
	rates := f.solve()
	r := rates[probe]
	f.detach(probe)
	f.recompute()
	return r
}

// Transfer moves size bytes across the given links, blocking the calling
// process until the transfer completes. A transfer of zero bytes (or with no
// links) completes immediately. The elapsed virtual time reflects max-min
// fair sharing with every other concurrent transfer.
func (f *Fabric) Transfer(p *sim.Proc, size int64, links ...*Link) {
	fl := f.start(size, links...)
	if fl == nil {
		return
	}
	fl.done.Wait(p)
}

// TransferAsync begins a transfer and returns a latch that is released on
// completion (already released for empty transfers).
func (f *Fabric) TransferAsync(size int64, links ...*Link) *sim.Latch {
	fl := f.start(size, links...)
	if fl == nil {
		l := &sim.Latch{}
		l.Release()
		return l
	}
	return &fl.done
}

func (f *Fabric) start(size int64, links ...*Link) *flow {
	if size <= 0 || len(links) == 0 {
		return nil
	}
	fl := &flow{links: links, remaining: float64(size), updated: f.k.Now()}
	f.attach(fl)
	f.recompute()
	return fl
}

func (f *Fabric) attach(fl *flow) {
	f.flows[fl] = struct{}{}
	for _, l := range fl.links {
		l.flows[fl] = struct{}{}
	}
}

func (f *Fabric) detach(fl *flow) {
	delete(f.flows, fl)
	for _, l := range fl.links {
		delete(l.flows, fl)
	}
}

// advance charges each active flow for progress made since its last update.
func (f *Fabric) advance() {
	now := f.k.Now()
	for fl := range f.flows {
		if dt := now - fl.updated; dt > 0 && fl.rate > 0 {
			fl.remaining -= float64(fl.rate) * dt.Seconds()
			if fl.remaining < 0 {
				fl.remaining = 0
			}
		}
		fl.updated = now
	}
}

// solve computes max-min fair rates by progressive water-filling: repeatedly
// find the most constrained link, freeze its flows at the fair share, remove
// that capacity, and continue until every flow has a rate.
func (f *Fabric) solve() map[*flow]Bps {
	rates := make(map[*flow]Bps, len(f.flows))
	links := f.activeLinks()
	free := make(map[*Link]float64, len(links))
	unfrozen := make(map[*Link]int, len(links))
	for l := range links {
		free[l] = float64(l.capacity)
		unfrozen[l] = len(l.flows)
	}
	frozen := make(map[*flow]bool, len(f.flows))
	for len(frozen) < len(f.flows) {
		// Find the bottleneck link: smallest fair share among links that
		// still carry unfrozen flows.
		var bottleneck *Link
		share := math.MaxFloat64
		for l, n := range unfrozen {
			if n <= 0 {
				continue
			}
			if s := free[l] / float64(n); s < share {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			// Remaining flows cross only links with no constraint left;
			// cannot happen while unfrozen flows exist on real links.
			break
		}
		for fl := range bottleneck.flows {
			if frozen[fl] {
				continue
			}
			frozen[fl] = true
			rates[fl] = Bps(share)
			for _, l := range fl.links {
				free[l] -= share
				if free[l] < 0 {
					free[l] = 0
				}
				unfrozen[l]--
			}
		}
	}
	return rates
}

// recompute advances progress, re-solves rates, completes finished flows and
// schedules the next completion event.
func (f *Fabric) recompute() {
	f.advance()

	// Complete flows that have drained (within half a byte of zero).
	for fl := range f.flows {
		if fl.remaining < 0.5 {
			f.detach(fl)
			fl.done.Release()
		}
	}

	rates := f.solve()
	var nextDone sim.Time = -1
	now := f.k.Now()
	for fl := range f.flows {
		fl.rate = rates[fl]
		if fl.rate <= 0 {
			panic(fmt.Sprintf("netsim: flow starved (links %v)", linkNames(fl.links)))
		}
		finish := now + time.Duration(fl.remaining/float64(fl.rate)*float64(time.Second))
		if finish <= now {
			finish = now + 1 // at least one tick of progress
		}
		if nextDone < 0 || finish < nextDone {
			nextDone = finish
		}
	}
	if nextDone >= 0 {
		f.completion.ResetAt(nextDone)
	} else {
		f.completion.Stop()
	}
}

func linkNames(links []*Link) []string {
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = l.name
	}
	return names
}
