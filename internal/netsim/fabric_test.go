package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

func almostEqual(a, b, tolFrac float64) bool {
	if a == b {
		return true
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/denom <= tolFrac
}

func TestSingleFlowUsesFullCapacity(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", MBps(100))
	var elapsed sim.Time
	k.Spawn("xfer", func(p *sim.Proc) {
		f.Transfer(p, 100e6, l) // 100 MB over 100 MB/s => 1s
		elapsed = p.Now()
	})
	k.Run()
	if !almostEqual(elapsed.Seconds(), 1.0, 0.001) {
		t.Errorf("transfer took %v, want ~1s", elapsed)
	}
}

func TestTwoFlowsShareEqually(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", MBps(100))
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("xfer", func(p *sim.Proc) {
			f.Transfer(p, 100e6, l)
			done[i] = p.Now()
		})
	}
	k.Run()
	// Both flows share 100MB/s: each gets 50MB/s, finishing together at 2s.
	for i, d := range done {
		if !almostEqual(d.Seconds(), 2.0, 0.001) {
			t.Errorf("flow %d finished at %v, want ~2s", i, d)
		}
	}
}

func TestStaggeredFlowSpeedsUpAfterCompetitorFinishes(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", MBps(100))
	var bigDone sim.Time
	k.Spawn("big", func(p *sim.Proc) {
		f.Transfer(p, 150e6, l)
		bigDone = p.Now()
	})
	k.Spawn("small", func(p *sim.Proc) {
		f.Transfer(p, 50e6, l)
	})
	k.Run()
	// Shared phase: both at 50MB/s until small's 50MB drains at t=1s.
	// Big then has 100MB left at full 100MB/s => finishes at t=2s.
	if !almostEqual(bigDone.Seconds(), 2.0, 0.001) {
		t.Errorf("big flow finished at %v, want ~2s", bigDone)
	}
}

func TestMaxMinBottleneckRates(t *testing.T) {
	// Classic max-min scenario: flows A (link1 only), B (link1+link2),
	// C (link2 only). link1 = 100, link2 = 50 (MB/s).
	// Water-filling: link2 is bottleneck (50/2=25): B=C=25.
	// Then link1 has 75 free for A alone: A=75.
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l1 := f.NewLink("l1", MBps(100))
	l2 := f.NewLink("l2", MBps(50))
	// Start three long transfers; rates are re-solved incrementally on
	// every start, so they can be read straight off the flow slots.
	f.TransferAsync(1e12, l1)
	f.TransferAsync(1e12, l1, l2)
	f.TransferAsync(1e12, l2)
	got := map[string]float64{}
	for _, id := range f.order {
		s := &f.flows[id]
		key := ""
		for _, l := range s.links {
			key += l.Name()
		}
		got[key] = float64(s.rate) / 1e6
	}
	if !almostEqual(got["l1"], 75, 0.01) {
		t.Errorf("A rate = %v MB/s, want 75", got["l1"])
	}
	if !almostEqual(got["l1l2"], 25, 0.01) {
		t.Errorf("B rate = %v MB/s, want 25", got["l1l2"])
	}
	if !almostEqual(got["l2"], 25, 0.01) {
		t.Errorf("C rate = %v MB/s, want 25", got["l2"])
	}
}

func TestRateProbe(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", Mbps(538))
	if r := f.Rate(l); !almostEqual(float64(r), float64(Mbps(538)), 0.001) {
		t.Errorf("idle rate = %v, want full capacity", r)
	}
	f.TransferAsync(1e12, l)
	if r := f.Rate(l); !almostEqual(float64(r), float64(Mbps(538))/2, 0.001) {
		t.Errorf("rate with 1 competitor = %v, want half capacity", r)
	}
	if f.InFlight() != 1 {
		t.Errorf("probe leaked a flow: InFlight = %d", f.InFlight())
	}
}

func TestBandwidthCollapseUnderPacking(t *testing.T) {
	// The paper's constraint (2): 538 Mbps for one function; ~28 Mbps
	// average with 20 functions packed on one host. With a fair-shared
	// NIC the per-flow rate must be capacity/20.
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	nic := f.NewLink("host-nic", Mbps(538))
	for i := 0; i < 20; i++ {
		f.TransferAsync(1e12, nic)
	}
	for _, id := range f.order {
		mbps := float64(f.flows[id].rate) * 8 / 1e6
		if !almostEqual(mbps, 538.0/20, 0.01) {
			t.Fatalf("per-flow rate = %.1f Mbps, want %.1f", mbps, 538.0/20)
		}
	}
}

func TestZeroByteTransferIsInstant(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", MBps(1))
	var at sim.Time = -1
	k.Spawn("xfer", func(p *sim.Proc) {
		f.Transfer(p, 0, l)
		at = p.Now()
	})
	k.Run()
	if at != 0 {
		t.Errorf("zero-byte transfer took %v", at)
	}
}

func TestSetCapacityMidFlight(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", MBps(100))
	var done sim.Time
	k.Spawn("xfer", func(p *sim.Proc) {
		f.Transfer(p, 200e6, l)
		done = p.Now()
	})
	k.Spawn("upgrader", func(p *sim.Proc) {
		p.Sleep(time.Second) // 100MB moved so far
		l.SetCapacity(f, MBps(200))
	})
	k.Run()
	// Remaining 100MB at 200MB/s => +0.5s.
	if !almostEqual(done.Seconds(), 1.5, 0.001) {
		t.Errorf("transfer finished at %v, want ~1.5s", done)
	}
}

func TestTransferAsyncLatch(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	f := NewFabric(k)
	l := f.NewLink("nic", MBps(10))
	latch := f.TransferAsync(10e6, l)
	if latch.Released() {
		t.Fatal("latch released before transfer completed")
	}
	var at sim.Time
	k.Spawn("waiter", func(p *sim.Proc) {
		latch.Wait(p)
		at = p.Now()
	})
	k.Run()
	if !almostEqual(at.Seconds(), 1.0, 0.001) {
		t.Errorf("async transfer completed at %v, want ~1s", at)
	}
}

// Property: with n equal flows on one link, all finish at n * (size/capacity)
// and total bytes moved equals n*size (conservation).
func TestQuickEqualSharingConservation(t *testing.T) {
	prop := func(nRaw, sizeRaw uint8) bool {
		n := int(nRaw%8) + 1
		size := (int64(sizeRaw) + 1) * 1e6
		k := sim.NewKernel()
		defer k.Close()
		f := NewFabric(k)
		l := f.NewLink("nic", MBps(100))
		finish := make([]sim.Time, n)
		for i := 0; i < n; i++ {
			i := i
			k.Spawn("xfer", func(p *sim.Proc) {
				f.Transfer(p, size, l)
				finish[i] = p.Now()
			})
		}
		k.Run()
		want := float64(n) * float64(size) / 100e6
		for _, ft := range finish {
			if !almostEqual(ft.Seconds(), want, 0.01) {
				return false
			}
		}
		return f.InFlight() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCompletionOrderIsAttachOrder pins the fix for the latent completion
// nondeterminism: when several flows drain in the same recompute (equal
// fair shares on one link, identical sizes, so they finish simultaneously),
// their done-latches must release — and their waiters wake — in attach
// order. The historical engine iterated a map here, waking waiters in Go's
// randomized map order; this test fails against it in all but 1/N! runs.
func TestCompletionOrderIsAttachOrder(t *testing.T) {
	const n = 8
	for trial := 0; trial < 10; trial++ {
		k := sim.NewKernel()
		f := NewFabric(k)
		l := f.NewLink("nic", MBps(100))
		var woke []int
		for i := 0; i < n; i++ {
			i := i
			latch := f.TransferAsync(10e6, l)
			k.Spawn("waiter", func(p *sim.Proc) {
				latch.Wait(p)
				woke = append(woke, i)
			})
		}
		k.Run()
		k.Close()
		if len(woke) != n {
			t.Fatalf("trial %d: %d of %d waiters woke", trial, len(woke), n)
		}
		for i, v := range woke {
			if v != i {
				t.Fatalf("trial %d: waiters woke in order %v, want attach order", trial, woke)
			}
		}
	}
}

// Property: max-min rates never exceed any crossed link's capacity and
// every link with at least one flow is fully utilized or all its flows are
// bottlenecked elsewhere.
func TestQuickMaxMinFeasibleAndEfficient(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := simrand.New(seed)
		k := sim.NewKernel()
		defer k.Close()
		f := NewFabric(k)
		nLinks := rng.Intn(4) + 2
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = f.NewLink("l", MBps(float64(rng.Intn(90)+10)))
		}
		nFlows := rng.Intn(8) + 1
		for i := 0; i < nFlows; i++ {
			cnt := rng.Intn(nLinks) + 1
			perm := rng.Perm(nLinks)
			fls := make([]*Link, cnt)
			for j := 0; j < cnt; j++ {
				fls[j] = links[perm[j]]
			}
			f.TransferAsync(1e12, fls...)
		}
		linkSum := func(l *Link) float64 {
			var sum float64
			for _, id := range l.flowIDs {
				sum += float64(f.flows[id].rate)
			}
			return sum
		}
		// Feasibility: per-link sum of rates <= capacity (+0.1% slack).
		for _, l := range links {
			if linkSum(l) > float64(l.capacity)*1.001 {
				return false
			}
		}
		// Efficiency: every flow is bottlenecked on at least one of its
		// links (cannot be raised without exceeding some capacity).
		for _, id := range f.order {
			s := &f.flows[id]
			bottlenecked := false
			for _, l := range s.links {
				if linkSum(l) >= float64(l.capacity)*0.999 {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked && s.rate > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
