package netsim

import (
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// Node is a network endpoint: a VM, a Lambda host, or a storage front end.
// Each node owns a NIC link through which all of its bulk transfers pass.
type Node struct {
	id     string
	rack   int
	region int
	nic    *Link
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Rack returns the rack the node lives in.
func (n *Node) Rack() int { return n.rack }

// Region returns the region the node lives in (0 unless the network was
// switched to another build region before the node was created).
func (n *Node) Region() int { return n.region }

// NIC returns the node's network interface link.
func (n *Node) NIC() *Link { return n.nic }

// LatencyProfile holds the one-way propagation-delay distributions for each
// topology distance class. Defaults (see DefaultLatency) are calibrated to
// the paper: a ZeroMQ 1KB round trip between two EC2 instances measured
// 290 µs (same rack), and the paper cites Pingmesh's ~1.26 ms average
// inter-rack round trip.
type LatencyProfile struct {
	SameHost  simrand.Dist
	SameRack  simrand.Dist
	CrossRack simrand.Dist
}

// DefaultLatency returns the calibrated latency profile.
func DefaultLatency() LatencyProfile {
	return LatencyProfile{
		// Loopback within a host.
		SameHost: simrand.Uniform{Lo: 8 * time.Microsecond, Hi: 12 * time.Microsecond},
		// One way same-rack: calibrated so that propagation plus NIC
		// serialization plus per-message software overhead makes a 1KB
		// acked round trip land at the measured 290µs (see msgnet).
		SameRack: simrand.Uniform{Lo: 127 * time.Microsecond, Hi: 157 * time.Microsecond},
		// One way cross-rack: half of Pingmesh's 1.26ms average RTT.
		CrossRack: simrand.Uniform{Lo: 550 * time.Microsecond, Hi: 710 * time.Microsecond},
	}
}

// Network combines a Fabric with node placement and latency classes. A
// network starts as one region (region 0); see wan.go for the WAN tier —
// ConnectRegions, partitions, and egress metering.
type Network struct {
	k       *sim.Kernel
	fabric  *Fabric
	rng     *simrand.RNG
	latency LatencyProfile
	nodes   map[string]*Node

	// WAN tier state (wan.go): the region new nodes are placed in, the
	// inter-region links keyed by ordered region pair, the highest region
	// seen, and the per-message egress metering hook.
	buildRegion int
	wan         map[wanKey]*wanPair
	maxRegion   int
	egress      func(bytes int64)
}

// NewNetwork creates a network on kernel k with deterministic jitter drawn
// from rng and the given latency profile.
func NewNetwork(k *sim.Kernel, rng *simrand.RNG, lat LatencyProfile) *Network {
	return &Network{
		k:       k,
		fabric:  NewFabric(k),
		rng:     rng,
		latency: lat,
		nodes:   make(map[string]*Node),
	}
}

// Kernel returns the kernel the network is bound to.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Fabric returns the underlying link fabric.
func (n *Network) Fabric() *Fabric { return n.fabric }

// NewNode registers an endpoint in the given rack with a NIC of the given
// capacity. Node IDs must be unique.
func (n *Network) NewNode(id string, rack int, nicCapacity Bps) *Node {
	if _, dup := n.nodes[id]; dup {
		panic("netsim: duplicate node id " + id)
	}
	node := &Node{id: id, rack: rack, region: n.buildRegion, nic: n.fabric.NewLink(id+"/nic", nicCapacity)}
	n.nodes[id] = node
	return node
}

// Node looks up a registered node by ID, returning nil if absent.
func (n *Network) Node(id string) *Node { return n.nodes[id] }

// OneWayDelay samples the propagation delay for a message from src to dst.
// Cross-region delay is the pair's WAN distribution; the regions must have
// been joined with ConnectRegions.
func (n *Network) OneWayDelay(src, dst *Node) time.Duration {
	switch {
	case src == dst:
		return n.latency.SameHost.Sample(n.rng)
	case src.region != dst.region:
		pair := n.wanPairOf(src.region, dst.region)
		d := pair.lat.Sample(n.rng)
		// Passive measurement: every cross-region message is an RTT probe
		// (pure accounting — no extra RNG draw, so event order and goldens
		// are untouched).
		pair.obsSum += d
		pair.obsN++
		return d
	case src.rack == dst.rack:
		return n.latency.SameRack.Sample(n.rng)
	default:
		return n.latency.CrossRack.Sample(n.rng)
	}
}

// Send models sending size bytes from src to dst: propagation delay plus a
// bandwidth-shared transfer through both NICs, blocking the caller until the
// last byte arrives. Extra links (e.g. a per-connection throughput cap) may
// be threaded into the transfer.
func (n *Network) Send(p *sim.Proc, src, dst *Node, size int64, extra ...*Link) {
	p.Sleep(n.OneWayDelay(src, dst))
	if size <= 0 {
		return
	}
	var links []*Link
	if src.region != dst.region {
		// Cross-region bytes also squeeze through the shared inter-region
		// trunk and are metered as egress.
		pair := n.wanPairOf(src.region, dst.region)
		pair.bytes += size
		if n.egress != nil {
			n.egress(size)
		}
		links = append([]*Link{src.nic, pair.link, dst.nic}, extra...)
	} else {
		links = append([]*Link{src.nic, dst.nic}, extra...)
	}
	n.fabric.Transfer(p, size, links...)
}
