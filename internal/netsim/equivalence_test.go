package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simrand"
)

// TestSolverEquivalence replays randomized churn scripts — transfer starts
// over mixed link subsets, mid-flight SetCapacity changes, and natural
// completions — against both the flat incremental engine and the retained
// map-based reference, on twin kernels. After every scripted step the
// instantaneous rates must agree, and every flow must complete at the same
// virtual nanosecond. This is the contract that lets the incremental
// engine carry unaffected components' rates forward: a full re-solve must
// never disagree with it.
func TestSolverEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := simrand.New(seed)

		kNew := sim.NewKernel()
		kRef := sim.NewKernel()
		fNew := NewFabric(kNew)
		fRef := newRefFabric(kRef)

		nLinks := rng.Intn(5) + 2
		linksNew := make([]*Link, nLinks)
		linksRef := make([]*refLink, nLinks)
		for i := 0; i < nLinks; i++ {
			cap := MBps(float64(rng.Intn(900)+100) / 10)
			linksNew[i] = fNew.NewLink("l", cap)
			linksRef[i] = fRef.newLink("l", cap)
		}

		type done struct{ newAt, refAt sim.Time }
		var flows []*done
		watch := func(d *done, lNew, lRef *sim.Latch) {
			kNew.Spawn("w", func(p *sim.Proc) { lNew.Wait(p); d.newAt = p.Now() })
			kRef.Spawn("w", func(p *sim.Proc) { lRef.Wait(p); d.refAt = p.Now() })
		}

		now := sim.Time(0)
		steps := rng.Intn(40) + 20
		for step := 0; step < steps; step++ {
			now += time.Duration(rng.Intn(200)+1) * time.Millisecond
			kNew.RunUntil(now)
			kRef.RunUntil(now)
			switch op := rng.Intn(10); {
			case op < 7: // start a transfer over 1..3 distinct links
				cnt := rng.Intn(min(3, nLinks)) + 1
				perm := rng.Perm(nLinks)
				ln := make([]*Link, cnt)
				lr := make([]*refLink, cnt)
				for j := 0; j < cnt; j++ {
					ln[j] = linksNew[perm[j]]
					lr[j] = linksRef[perm[j]]
				}
				size := int64(rng.Intn(100)+1) * 1e6
				d := &done{}
				flows = append(flows, d)
				watch(d, fNew.TransferAsync(size, ln...), fRef.transferAsync(size, lr...))
			default: // capacity change on a random link
				i := rng.Intn(nLinks)
				cap := MBps(float64(rng.Intn(900)+100) / 10)
				linksNew[i].SetCapacity(fNew, cap)
				linksRef[i].setCapacity(fRef, cap)
			}
			// Instantaneous rates must match, summed per link (flow
			// identity differs across engines; the per-link rate sum pins
			// the same allocation).
			refRates := fRef.solve()
			for i, l := range linksNew {
				var sumNew, sumRef float64
				for _, id := range l.flowIDs {
					sumNew += float64(fNew.flows[id].rate)
				}
				for fl := range linksRef[i].flows {
					sumRef += float64(refRates[fl])
				}
				if !almostEqual(sumNew, sumRef, 1e-9) {
					t.Fatalf("seed %d step %d: link %d rate sum %.9g (incremental) vs %.9g (reference)",
						seed, step, i, sumNew, sumRef)
				}
			}
			if fNew.InFlight() != len(fRef.flows) {
				t.Fatalf("seed %d step %d: in-flight %d vs %d", seed, step, fNew.InFlight(), len(fRef.flows))
			}
		}
		kNew.Run()
		kRef.Run()
		for i, d := range flows {
			if d.newAt != d.refAt {
				t.Fatalf("seed %d: flow %d completed at %v (incremental) vs %v (reference)",
					seed, i, d.newAt, d.refAt)
			}
			if d.newAt == 0 {
				t.Fatalf("seed %d: flow %d never completed", seed, i)
			}
		}
		kNew.Close()
		kRef.Close()
	}
}
