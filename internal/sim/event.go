package sim

// event is a scheduled wake-up. Events are ordered by time, with the
// sequence number breaking ties so that events scheduled earlier (in program
// order) at the same virtual time run first. This total order is what makes
// the simulation deterministic.
//
// The payload is a tagged union: proc != nil means "resume this parked
// process" (the kernel steps it directly, no closure involved); otherwise fn
// is an arbitrary callback. Keeping the process wake-up path closure-free is
// what lets Sleep and the sync primitives run without allocating.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc

	// pos is the event's index in the heap order array while scheduled.
	// While the slot is free it instead links the arena's free list (the
	// next free slot, or -1 at the end).
	pos int32
	// gen counts how many times this arena slot has been recycled; a Timer
	// snapshot of (slot, gen) stays valid only while they match, which is
	// what makes Stop safe after the event has fired.
	gen uint32
}

// eventHeap is an index-based 4-ary min-heap over event values.
//
// Events live in a flat arena and are addressed by slot index; the heap
// order array holds int32 slot indices, so sift operations move 4-byte
// integers instead of 40-byte events and never touch the Go heap. Freed
// slots are threaded onto an embedded free list (linked through event.pos)
// and recycled, so steady-state scheduling allocates nothing once the arena
// has grown to the simulation's high-water mark of in-flight events.
//
// A 4-ary layout halves the tree depth of the binary heap it replaces;
// with the run queue absorbing same-time wake-ups, heap events are
// dominated by pushes and ordered pops where the shallower tree wins.
type eventHeap struct {
	arena []event
	order []int32
	free  int32 // head of the free-slot list, -1 when empty
}

const noSlot = -1

func newEventHeap() eventHeap { return eventHeap{free: noSlot} }

// len reports the number of scheduled events.
func (h *eventHeap) len() int { return len(h.order) }

// alloc returns a free arena slot, reusing the free list before growing.
func (h *eventHeap) alloc() int32 {
	if h.free != noSlot {
		s := h.free
		h.free = h.arena[s].pos
		return s
	}
	h.arena = append(h.arena, event{})
	return int32(len(h.arena) - 1)
}

// release returns slot s to the free list, dropping payload references and
// invalidating any Timer handles pointing at it.
func (h *eventHeap) release(s int32) {
	e := &h.arena[s]
	e.fn = nil
	e.proc = nil
	e.gen++
	e.pos = h.free
	h.free = s
}

// less orders slots by (at, seq).
func (h *eventHeap) less(a, b int32) bool {
	ea, eb := &h.arena[a], &h.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// push schedules an event and returns its arena slot.
func (h *eventHeap) push(at Time, seq uint64, fn func(), proc *Proc) int32 {
	s := h.alloc()
	e := &h.arena[s]
	e.at, e.seq, e.fn, e.proc = at, seq, fn, proc
	i := int32(len(h.order))
	h.order = append(h.order, s)
	e.pos = i
	h.siftUp(i)
	return s
}

// min returns the slot of the earliest event. The heap must be non-empty.
func (h *eventHeap) min() int32 { return h.order[0] }

// remove unschedules the event in slot s (which must be scheduled) in
// O(log n) and recycles the slot.
func (h *eventHeap) remove(s int32) { h.removeAt(h.arena[s].pos) }

// removeAt unschedules the event at heap position i.
func (h *eventHeap) removeAt(i int32) {
	n := int32(len(h.order)) - 1
	s := h.order[i]
	last := h.order[n]
	h.order = h.order[:n]
	if i < n {
		h.order[i] = last
		h.arena[last].pos = i
		h.siftDown(i)
		h.siftUp(i)
	}
	h.release(s)
}

// update rekeys the event in slot s to (at, seq) and restores heap order.
func (h *eventHeap) update(s int32, at Time, seq uint64) {
	e := &h.arena[s]
	e.at, e.seq = at, seq
	h.siftDown(e.pos)
	h.siftUp(e.pos)
}

func (h *eventHeap) siftUp(i int32) {
	s := h.order[i]
	for i > 0 {
		parent := (i - 1) / 4
		ps := h.order[parent]
		if !h.less(s, ps) {
			break
		}
		h.order[i] = ps
		h.arena[ps].pos = i
		i = parent
	}
	h.order[i] = s
	h.arena[s].pos = i
}

func (h *eventHeap) siftDown(i int32) {
	n := int32(len(h.order))
	s := h.order[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(h.order[c], h.order[best]) {
				best = c
			}
		}
		if !h.less(h.order[best], s) {
			break
		}
		h.order[i] = h.order[best]
		h.arena[h.order[i]].pos = i
		i = best
	}
	h.order[i] = s
	h.arena[s].pos = i
}
