package sim

// event is a scheduled callback. Events are ordered by time, with the
// sequence number breaking ties so that events scheduled earlier (in program
// order) at the same virtual time run first. This total order is what makes
// the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap implements container/heap over scheduled events.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
