package sim

import (
	"testing"
	"time"
)

func TestRingFIFOAcrossWrap(t *testing.T) {
	var r ring[int]
	next, expect := 0, 0
	// Push/pop in a skewed pattern so head travels around the buffer.
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			r.push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := r.pop(); got != expect {
				t.Fatalf("pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for r.len() > 0 {
		if got := r.pop(); got != expect {
			t.Fatalf("drain pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("popped %d values, pushed %d", expect, next)
	}
}

func TestRingPeekAndAt(t *testing.T) {
	var r ring[string]
	r.push("a")
	r.push("b")
	r.push("c")
	r.pop()
	r.push("d")
	if *r.peek() != "b" {
		t.Errorf("peek = %q, want b", *r.peek())
	}
	for i, want := range []string{"b", "c", "d"} {
		if got := *r.at(i); got != want {
			t.Errorf("at(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestRingReusesCapacity(t *testing.T) {
	var r ring[int]
	for i := 0; i < 4; i++ {
		r.push(i)
	}
	grown := len(r.buf)
	// Many full drain/fill cycles at the same depth must not regrow.
	for cycle := 0; cycle < 1000; cycle++ {
		for r.len() > 0 {
			r.pop()
		}
		for i := 0; i < 4; i++ {
			r.push(i)
		}
	}
	if len(r.buf) != grown {
		t.Errorf("buffer grew from %d to %d despite bounded depth", grown, len(r.buf))
	}
}

// The simulation queue must cycle a bounded backing array: the seed's
// `items = items[1:]` re-slicing leaked capacity and reallocated forever.
func TestQueueReusesCapacity(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](4)
	const total = 50_000
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < total; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	sum := 0
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			sum += v
		}
	})
	k.Run()
	if want := total * (total - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d (FIFO payload lost)", sum, want)
	}
	// A capacity-4 queue's ring never needs more than the next power of
	// two; 50k items through it must not have grown the buffer further.
	if len(q.items.buf) > 8 {
		t.Errorf("items buffer = %d slots for a capacity-4 queue", len(q.items.buf))
	}
	if len(q.getters.buf) > 8 || len(q.putters.buf) > 8 {
		t.Errorf("waiter buffers grew unbounded: getters=%d putters=%d",
			len(q.getters.buf), len(q.putters.buf))
	}
}

// An event that enters the run queue (scheduled at the current time) must
// still order after an already-heaped event at the same timestamp with a
// smaller sequence number.
func TestRunQueueRespectsHeapSeqOrder(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var order []string
	k.At(time.Second, func() {
		// Runs first at t=1s; pushes to the run-queue fast path.
		k.After(0, func() { order = append(order, "rq") })
	})
	k.At(time.Second, func() { order = append(order, "heap") })
	k.Run()
	if len(order) != 2 || order[0] != "heap" || order[1] != "rq" {
		t.Errorf("order = %v, want [heap rq]", order)
	}
}

// The schedule/dispatch cycle must not allocate once warmed up: events are
// values in a recycled arena and due-now events ride the run-queue ring.
func TestSchedulingIsAllocationFree(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	fn := func() {}
	work := func() {
		for i := 0; i < 64; i++ {
			k.After(Time(i)*time.Microsecond, fn)
			k.After(0, fn)
		}
		k.Run()
	}
	work() // warm the arena and ring to their high-water mark
	if allocs := testing.AllocsPerRun(50, work); allocs != 0 {
		t.Errorf("schedule/dispatch allocated %.1f times per cycle, want 0", allocs)
	}
}
