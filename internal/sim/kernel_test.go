package sim

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestAtRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var order []int
	k.At(30*time.Millisecond, func() { order = append(order, 3) })
	k.At(10*time.Millisecond, func() { order = append(order, 1) })
	k.At(20*time.Millisecond, func() { order = append(order, 2) })
	end := k.Run()
	if end != 30*time.Millisecond {
		t.Errorf("Run() = %v, want 30ms", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestSchedulingInThePastClampsToNow(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var at Time
	k.At(time.Second, func() {
		k.At(0, func() { at = k.Now() })
	})
	k.Run()
	if at != time.Second {
		t.Errorf("past event ran at %v, want clamped to 1s", at)
	}
}

func TestRunUntilStopsAndResumes(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		k.At(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("after RunUntil(2s) fired=%v, want 2 events", fired)
	}
	if k.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", k.Now())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("after Run fired=%v, want 3 events", fired)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.RunUntil(time.Minute)
	if k.Now() != time.Minute {
		t.Errorf("Now() = %v, want 1m", k.Now())
	}
}

func TestProcSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Second)
		woke = p.Now()
	})
	k.Run()
	if woke != 42*time.Second {
		t.Errorf("woke at %v, want 42s", woke)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		defer k.Close()
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Sleep(time.Millisecond)
				}
			})
		}
		k.Run()
		return trace
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("trace length changed: %v vs %v", got, first)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic trace at %d: %v vs %v", i, got, first)
			}
		}
	}
	// Spawn order should hold within each round.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("trace = %v, want %v", first, want)
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		p.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
		})
		p.Sleep(2 * time.Second)
	})
	k.Run()
	if !childRan {
		t.Error("child process never ran")
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestProcPanicPropagatesToRun(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.Spawn("bomber", func(p *Proc) {
		p.Sleep(time.Second)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-raise process panic")
		}
	}()
	k.Run()
}

func TestCloseReapsParkedProcs(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Spawn("stuck", func(p *Proc) {
		sig.Wait(p) // never fired
	})
	k.Run()
	if k.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 parked proc", k.LiveProcs())
	}
	k.Close()
	k.Close() // idempotent
}

func TestYieldRunsPeersFirst(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var trace []string
	k.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		trace = append(trace, "b1")
	})
	k.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestAfterZeroRunsAtCurrentTime(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var at Time = -1
	k.After(0, func() { at = k.Now() })
	k.Run()
	if at != 0 {
		t.Errorf("After(0) ran at %v, want 0", at)
	}
}

func TestManyProcsNoLeakOrDeadlock(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	const n = 1000
	done := 0
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(Time(i) * time.Microsecond)
			done++
		})
	}
	k.Run()
	if done != n {
		t.Errorf("done = %d, want %d", done, n)
	}
	if k.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", k.Pending())
	}
}

func TestSpawnOnClosedKernelPanics(t *testing.T) {
	k := NewKernel()
	k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn on closed kernel did not panic")
		}
	}()
	k.Spawn("late", func(p *Proc) {})
}

func TestRunOnClosedKernelPanics(t *testing.T) {
	k := NewKernel()
	k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run on closed kernel did not panic")
		}
	}()
	k.Run()
}

func TestNegativeSleepYields(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var at Time = -1
	k.Spawn("p", func(p *Proc) {
		p.Sleep(-time.Second)
		at = p.Now()
	})
	k.Run()
	if at != 0 {
		t.Errorf("negative sleep advanced time to %v", at)
	}
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var ids []uint64
	var names []string
	for _, n := range []string{"one", "two"} {
		n := n
		k.Spawn(n, func(p *Proc) {
			ids = append(ids, p.ID())
			names = append(names, p.Name())
			if p.Kernel() != k {
				t.Error("Kernel() mismatch")
			}
		})
	}
	k.Run()
	if len(ids) != 2 || ids[0] == ids[1] {
		t.Errorf("ids = %v, want unique", ids)
	}
	if names[0] != "one" || names[1] != "two" {
		t.Errorf("names = %v", names)
	}
}
