package sim

// This file provides synchronization primitives for simulated processes.
// All of them deliver wake-ups through the kernel's event queue, never by
// running a waiter synchronously, which preserves deterministic
// one-process-at-a-time execution. Waiter lists and buffers recycle their
// storage so the park/wake cycle stays allocation-free in steady state.

// Signal is a broadcast condition: processes Wait on it and a later Fire
// wakes all current waiters. Waiters that arrive after a Fire wait for the
// next Fire (it is a condition variable, not a latch; see Latch for the
// one-shot variant).
type Signal struct {
	waiters []*Proc
}

// Wait parks the calling process until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Fire wakes every process currently waiting, in Wait order. It is safe to
// call from process or event context.
func (s *Signal) Fire() {
	waiters := s.waiters
	// Keep the backing array for reuse. Iterating it while truncated is
	// safe: wake only enqueues events, so no new Wait can append until
	// this call returns.
	s.waiters = s.waiters[:0]
	for _, w := range waiters {
		w.wake()
	}
}

// Waiting reports how many processes are parked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Latch is a one-shot event: once Release is called, all current and future
// Wait calls return immediately.
type Latch struct {
	released bool
	sig      Signal
}

// Released reports whether the latch has been released.
func (l *Latch) Released() bool { return l.released }

// Wait parks the calling process until the latch is released; if it already
// is, Wait returns immediately without yielding.
func (l *Latch) Wait(p *Proc) {
	if l.released {
		return
	}
	l.sig.Wait(p)
}

// Release opens the latch, waking all waiters. Releasing twice is a no-op.
func (l *Latch) Release() {
	if l.released {
		return
	}
	l.released = true
	l.sig.Fire()
}

// Promise is a write-once container a process can block on; the simulated
// analogue of a future. The zero value is an unresolved promise.
type Promise[T any] struct {
	latch Latch
	val   T
}

// Resolve stores the value and wakes all waiters. Resolving twice panics:
// a promise is single-assignment by definition.
func (f *Promise[T]) Resolve(v T) {
	if f.latch.Released() {
		panic("sim: Promise resolved twice")
	}
	f.val = v
	f.latch.Release()
}

// Resolved reports whether a value has been stored.
func (f *Promise[T]) Resolved() bool { return f.latch.Released() }

// Get blocks the calling process until the promise is resolved, then
// returns the value.
func (f *Promise[T]) Get(p *Proc) T {
	f.latch.Wait(p)
	return f.val
}

// Queue is a FIFO channel between processes with an optional capacity bound.
// A capacity of 0 means unbounded. Items and waiter lists live in ring
// buffers, so a long-lived queue cycles a bounded backing array instead of
// re-slicing (and eventually reallocating) its way through memory.
type Queue[T any] struct {
	cap     int
	items   ring[T]
	getters ring[*Proc]
	putters ring[*Proc]
	closed  bool
}

// NewQueue returns a queue holding at most capacity items (0 = unbounded).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{cap: capacity}
}

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return q.items.len() }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// TryPut appends an item if the queue has room, reporting success. It never
// blocks and is safe from event context.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	if q.cap > 0 && q.items.len() >= q.cap {
		return false
	}
	q.items.push(v)
	if q.getters.len() > 0 {
		q.getters.pop().wake()
	}
	return true
}

// Put appends an item, blocking the calling process while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for !q.TryPut(v) {
		q.putters.push(p)
		p.park()
		if q.closed {
			panic("sim: Put on closed Queue")
		}
	}
}

// TryGet removes and returns the head item if one is buffered.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.items.len() == 0 {
		var zero T
		return zero, false
	}
	v := q.items.pop()
	if q.putters.len() > 0 {
		q.putters.pop().wake()
	}
	return v, true
}

// Get removes and returns the head item, blocking the calling process while
// the queue is empty. If the queue is closed and drained, Get returns the
// zero value and false.
func (q *Queue[T]) Get(p *Proc) (T, bool) {
	for {
		if v, ok := q.TryGet(); ok {
			return v, true
		}
		if q.closed {
			var zero T
			return zero, false
		}
		q.getters.push(p)
		p.park()
	}
}

// Close marks the queue closed and wakes all blocked getters and putters.
// Buffered items can still be drained with Get/TryGet.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for q.getters.len() > 0 {
		q.getters.pop().wake()
	}
	for q.putters.len() > 0 {
		q.putters.pop().wake()
	}
}

// Resource is a counting semaphore with FIFO admission, used to model
// capacity-limited things (CPU slots, connection pools, instance fleets).
type Resource struct {
	capacity int
	inUse    int
	waiters  ring[*Proc]
}

// NewResource returns a resource with the given number of slots.
func NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: Resource capacity must be positive")
	}
	return &Resource{capacity: capacity}
}

// Capacity returns the total number of slots.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the number of processes queued for a slot.
func (r *Resource) Waiting() int { return r.waiters.len() }

// TryAcquire claims a slot without blocking, reporting success.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.inUse++
	return true
}

// Acquire claims a slot, blocking the calling process until one is free.
// Admission is strictly FIFO among blocked processes.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && r.waiters.len() == 0 {
		r.inUse++
		return
	}
	r.waiters.push(p)
	p.park()
	// Our releaser granted the slot on our behalf (inUse stays claimed).
}

// Release returns a slot. If processes are waiting, the slot passes directly
// to the head waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Resource released more than acquired")
	}
	if r.waiters.len() > 0 {
		r.waiters.pop().wake() // slot ownership transfers; inUse unchanged
		return
	}
	r.inUse--
}

// WaitGroup tracks a set of concurrent activities, letting a process block
// until all of them have finished.
type WaitGroup struct {
	count int
	done  Signal
}

// Add records n additional activities (n may be negative, like sync.WaitGroup).
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		wg.done.Fire()
	}
}

// Done records one activity as finished.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks the calling process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.done.Wait(p)
	}
}
