package sim

// Proc is a simulated process: a goroutine whose execution is serialized by
// the kernel and whose notion of time is the kernel's virtual clock. Process
// bodies are ordinary blocking Go code; blocking operations (Sleep, Queue.Get,
// Signal.Wait, ...) park the process and return control to the kernel.
//
// Exactly one process runs at any instant, so process code may freely read
// and write shared simulation state without locks.
type Proc struct {
	k      *Kernel
	name   string
	id     uint64
	resume chan token
}

// Name returns the name given to Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns a kernel-unique process identifier (1-based, in spawn order).
func (p *Proc) ID() uint64 { return p.id }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// run is the goroutine body backing the process.
func (p *Proc) run(fn func(*Proc)) {
	// Wait for the start event (or kernel shutdown before start).
	select {
	case <-p.resume:
	case <-p.k.killed:
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); ok {
				// Kernel shut down while we were parked; the kernel
				// loop is not waiting for us, so just vanish.
				return
			}
			// User code panicked. Record it for Run to re-raise on the
			// caller's goroutine, then hand control back.
			p.k.failure = &procPanic{proc: p.name, val: r}
		}
		p.k.liveProcs--
		p.k.yield <- token{}
	}()
	fn(p)
}

// park returns control to the kernel loop and blocks until the kernel
// resumes this process (or shuts down).
func (p *Proc) park() {
	p.k.yield <- token{}
	select {
	case <-p.resume:
	case <-p.k.killed:
		panic(killedPanic{})
	}
}

// wake schedules this process to resume at the current virtual time.
// It must only be called while the process is parked (or about to park,
// within the same event): wake-ups are delivered through the event queue,
// never synchronously, preserving one-process-at-a-time execution.
func (p *Proc) wake() {
	k := p.k
	k.After(0, func() { k.step(p) })
}

// wakeAt schedules this process to resume at absolute time t.
func (p *Proc) wakeAt(t Time) {
	k := p.k
	k.At(t, func() { k.step(p) })
}

// Sleep suspends the process for d of virtual time. Negative durations sleep
// zero time (but still yield to other ready processes).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.wakeAt(p.k.now + d)
	p.park()
}

// Yield lets every other process that is ready at the current virtual time
// run before this one continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Spawn starts a child process; sugar for p.Kernel().Spawn.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.k.Spawn(name, fn)
}
