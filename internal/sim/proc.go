package sim

import "sync"

// Proc is a simulated process: a goroutine whose execution is serialized by
// the kernel and whose notion of time is the kernel's virtual clock. Process
// bodies are ordinary blocking Go code; blocking operations (Sleep, Queue.Get,
// Signal.Wait, ...) park the process and return control to the kernel.
//
// Exactly one process runs at any instant, so process code may freely read
// and write shared simulation state without locks.
// A Proc's backing goroutine outlives the process body: when the body
// returns, the goroutine parks on the proc's resume channel and the Proc
// joins the kernel's free pool for the next Spawn to reuse (with a fresh
// name and ID). Spawning therefore allocates no goroutine, stack, or
// channel in steady state — the dominant cost of per-request process
// workloads such as open-loop load generators.
type Proc struct {
	k    *Kernel
	name string
	id   uint64
	// resume carries the kernel's go-ahead token; the kernel closes it at
	// shutdown, so a parked process needs a single channel receive (no
	// select) to distinguish resume from teardown.
	resume chan token
	// body is the current assignment, set by Spawn and cleared on exit.
	body func(*Proc)
}

// Name returns the name given to Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns a kernel-unique process identifier (1-based, in spawn order).
func (p *Proc) ID() uint64 { return p.id }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// gslot is a worker goroutine awaiting adoption: its goroutine (with
// whatever stack it has grown) blocks on next until some kernel's Spawn
// hands it a fresh Proc to back. Worker goroutines outlive kernels — when
// a kernel shuts down, each of its goroutines unwinds the body it was
// running and returns to the global pool instead of terminating, so the
// next experiment (a benchmark iteration, the next shard-count config)
// spawns onto recycled goroutines and pre-grown stacks rather than paying
// runtime.malg and stack-growth copying for every process again.
type gslot struct {
	next chan *Proc
}

// gpool is the cross-kernel worker pool. It is the only simulation state
// shared between goroutines without a channel handoff, hence the mutex;
// membership traffic is one push per goroutine per kernel lifetime, not
// per event.
var gpool struct {
	mu   sync.Mutex
	free []*gslot
}

// adoptWorker pops a pooled worker, or nil when the pool is empty.
func adoptWorker() *gslot {
	gpool.mu.Lock()
	defer gpool.mu.Unlock()
	if n := len(gpool.free); n > 0 {
		s := gpool.free[n-1]
		gpool.free[n-1] = nil
		gpool.free = gpool.free[:n-1]
		return s
	}
	return nil
}

// grind is the worker goroutine's outermost frame: back one kernel's Proc
// until that kernel shuts down, then rejoin the pool for the next.
func grind(s *gslot) {
	for p := range s.next {
		p.loop()
		gpool.mu.Lock()
		gpool.free = append(gpool.free, s)
		gpool.mu.Unlock()
	}
}

// startWorker binds p to a pooled worker goroutine, starting a fresh one if
// the pool is empty.
func startWorker(p *Proc) {
	s := adoptWorker()
	if s == nil {
		s = &gslot{next: make(chan *Proc)}
		go grind(s)
	}
	s.next <- p
}

// loop backs the process slot for one kernel's lifetime: it runs one
// assigned body per cycle until the kernel shuts down.
func (p *Proc) loop() {
	for p.cycle() {
	}
}

// cycle waits for the start event of the current assignment, runs the body,
// and returns the finished Proc to the free pool. It reports whether the
// goroutine should wait for another assignment (false once the kernel has
// shut down).
func (p *Proc) cycle() (again bool) {
	// Wait for the start event (or kernel shutdown).
	if _, ok := <-p.resume; !ok {
		return false
	}
	again = true
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); ok {
				// Kernel shut down while we were parked; the kernel
				// loop is not waiting for us, so just vanish.
				again = false
				return
			}
			// User code panicked. Record it for Run to re-raise on the
			// caller's goroutine, then hand control back.
			p.k.failure = &procPanic{proc: p.name, val: r}
		}
		p.k.liveProcs--
		p.body = nil
		p.k.freeProcs = append(p.k.freeProcs, p)
		if !p.k.directHandoff(p) {
			p.k.yield <- token{}
		}
	}()
	p.body(p)
	return
}

// park returns control to the scheduler and blocks until this process is
// resumed (or the kernel shuts down).
//
// Two fast paths dispatch the next due event in the kernel's (time, seq)
// order straight from this goroutine — exactly the event the kernel loop
// would have picked next, so the event order (and thus every golden trace)
// is unchanged while context switches disappear:
//
//   - Self-handoff: the next event is this process's own wake-up; park
//     consumes it inline and returns without switching at all. The common
//     case for Sleep when no other event lands inside the sleep interval.
//   - Cross-handoff: the next event resumes another parked process; park
//     hands the token directly to that process and the kernel goroutine
//     stays asleep (see Kernel.directHandoff). The common case under load,
//     where many request processes interleave.
func (p *Proc) park() {
	k := p.k
	if k.rq.len() > 0 {
		if k.nextIsRQ() {
			// Run-queue head is due at the current time; no clock
			// advance and the RunUntil bound already admits now.
			if e := k.rq.peek(); e.proc == p {
				k.rq.pop()
				return
			}
		}
	} else if k.events.len() > 0 {
		s := k.events.min()
		e := &k.events.arena[s]
		if e.proc == p && (k.until < 0 || e.at <= k.until) {
			k.now = e.at
			k.events.removeAt(0)
			return
		}
	}
	if !k.directHandoff(p) {
		k.yield <- token{}
	}
	if _, ok := <-p.resume; !ok {
		panic(killedPanic{})
	}
}

// wake schedules this process to resume at the current virtual time.
// It must only be called while the process is parked (or about to park,
// within the same event): wake-ups are delivered through the event queue,
// never synchronously, preserving one-process-at-a-time execution.
func (p *Proc) wake() {
	k := p.k
	k.seq++
	k.rq.push(rqEntry{seq: k.seq, proc: p})
}

// wakeAt schedules this process to resume at absolute time t.
func (p *Proc) wakeAt(t Time) {
	p.k.schedule(t, nil, p)
}

// Sleep suspends the process for d of virtual time. Negative durations sleep
// zero time (but still yield to other ready processes).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.wakeAt(p.k.now + d)
	p.park()
}

// Yield lets every other process that is ready at the current virtual time
// run before this one continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Spawn starts a child process; sugar for p.Kernel().Spawn.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.k.Spawn(name, fn)
}
