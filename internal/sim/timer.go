package sim

// Timer is a cancellable scheduled callback. Unlike a bare After event — a
// dead copy of which would sit in the event queue until its deadline and
// then fire as a no-op — a stopped Timer leaves the queue immediately
// (O(log n) heap removal), so timeout-heavy components (queue long polls,
// visibility timeouts, warm-pool reapers, transfer completion estimates)
// keep the queue free of dead events.
//
// A Timer identifies its event by (arena slot, generation); once the event
// fires or is stopped the slot's generation advances, so Stop and Active on
// a spent handle are safe no-ops even after the slot has been recycled.
type Timer struct {
	k    *Kernel
	fn   func()
	slot int32
	gen  uint32
}

// NewTimer returns an unarmed timer that runs fn when it fires. Arm it with
// Reset or ResetAt. Components that re-arm a deadline repeatedly (the
// warm-pool reaper, the fabric's completion estimate) allocate one Timer up
// front and reuse it for the run's lifetime.
func (k *Kernel) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil fn")
	}
	return &Timer{k: k, fn: fn, slot: noSlot}
}

// AfterTimer schedules fn to run d after the current virtual time and
// returns a handle that can cancel it. Scheduling on a closed kernel
// panics, like After.
func (k *Kernel) AfterTimer(d Time, fn func()) *Timer {
	if k.closed {
		panic("sim: AfterTimer on closed kernel")
	}
	t := k.NewTimer(fn)
	t.arm(k.now + d)
	return t
}

// AtTimer schedules fn to run at absolute virtual time t (clamped to the
// present, like At) and returns a handle that can cancel it. Scheduling on
// a closed kernel panics, like At.
func (k *Kernel) AtTimer(at Time, fn func()) *Timer {
	if k.closed {
		panic("sim: AtTimer on closed kernel")
	}
	t := k.NewTimer(fn)
	t.arm(at)
	return t
}

// arm schedules the timer's event at time at (clamped to the present).
// Timers always live in the heap, never the run queue, because the run
// queue does not support removal.
func (t *Timer) arm(at Time) {
	k := t.k
	if at < k.now {
		at = k.now
	}
	k.seq++
	t.slot = k.events.push(at, k.seq, t.fn, nil)
	t.gen = k.events.arena[t.slot].gen
}

// Active reports whether the timer is scheduled and has not yet fired.
func (t *Timer) Active() bool {
	return t.slot != noSlot && t.k.events.arena[t.slot].gen == t.gen
}

// Stop cancels the timer, removing its event from the queue. It reports
// whether it prevented the timer from firing; stopping a timer that already
// fired (or was never armed) is a no-op returning false.
func (t *Timer) Stop() bool {
	if !t.Active() {
		return false
	}
	t.k.events.remove(t.slot)
	t.slot = noSlot
	return true
}

// Reset (re)schedules the timer to fire d after the current virtual time,
// as if freshly scheduled: it takes a new sequence number, so its order
// against other events at the same timestamp matches a Stop followed by
// AfterTimer. An active timer is rekeyed in place without allocating.
func (t *Timer) Reset(d Time) { t.ResetAt(t.k.now + d) }

// ResetAt (re)schedules the timer to fire at absolute time at (clamped to
// the present), with the same semantics as Reset.
func (t *Timer) ResetAt(at Time) {
	k := t.k
	if k.closed {
		panic("sim: Timer.Reset on closed kernel")
	}
	if at < k.now {
		at = k.now
	}
	if t.Active() {
		k.seq++
		k.events.update(t.slot, at, k.seq)
		return
	}
	t.arm(at)
}
