package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSignalWakesAllWaitersInOrder(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var sig Signal
	var woke []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			sig.Wait(p)
			woke = append(woke, name)
		})
	}
	k.Spawn("firer", func(p *Proc) {
		p.Sleep(time.Second)
		if sig.Waiting() != 3 {
			t.Errorf("Waiting = %d, want 3", sig.Waiting())
		}
		sig.Fire()
	})
	k.Run()
	want := []string{"w1", "w2", "w3"}
	if len(woke) != 3 {
		t.Fatalf("woke = %v, want 3 waiters", woke)
	}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("woke = %v, want %v", woke, want)
		}
	}
}

func TestSignalLateWaiterMissesFire(t *testing.T) {
	k := NewKernel()
	var sig Signal
	fired := false
	k.Spawn("late", func(p *Proc) {
		p.Sleep(2 * time.Second)
		sig.Wait(p) // Fire already happened; parks forever.
		fired = true
	})
	k.Spawn("firer", func(p *Proc) {
		p.Sleep(time.Second)
		sig.Fire()
	})
	k.Run()
	if fired {
		t.Error("late waiter should not observe an earlier Fire")
	}
	k.Close()
}

func TestLatchIsSticky(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var l Latch
	var early, late Time
	k.Spawn("early", func(p *Proc) {
		l.Wait(p)
		early = p.Now()
	})
	k.Spawn("releaser", func(p *Proc) {
		p.Sleep(time.Second)
		l.Release()
		l.Release() // idempotent
	})
	k.Spawn("late", func(p *Proc) {
		p.Sleep(5 * time.Second)
		l.Wait(p) // already released: returns immediately
		late = p.Now()
	})
	k.Run()
	if early != time.Second {
		t.Errorf("early waiter woke at %v, want 1s", early)
	}
	if late != 5*time.Second {
		t.Errorf("late waiter woke at %v, want 5s (no blocking)", late)
	}
}

func TestPromiseDeliversValue(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var pr Promise[int]
	var got int
	k.Spawn("consumer", func(p *Proc) { got = pr.Get(p) })
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(time.Second)
		pr.Resolve(7)
	})
	k.Run()
	if got != 7 {
		t.Errorf("Get = %d, want 7", got)
	}
	if !pr.Resolved() {
		t.Error("Resolved = false after Resolve")
	}
}

func TestPromiseDoubleResolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second Resolve did not panic")
		}
	}()
	var pr Promise[string]
	pr.Resolve("a")
	pr.Resolve("b")
}

func TestQueueFIFO(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](0)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			q.Put(p, i)
			p.Sleep(time.Millisecond)
		}
		q.Close()
	})
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Run()
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v, want [1 2 3 4 5]", got)
		}
	}
}

func TestQueueCapacityBlocksPutter(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](2)
	var thirdPutAt Time
	k.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // blocks until consumer drains one
		thirdPutAt = p.Now()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Sleep(time.Second)
		if _, ok := q.TryGet(); !ok {
			t.Error("TryGet on full queue failed")
		}
	})
	k.Run()
	if thirdPutAt != time.Second {
		t.Errorf("third Put completed at %v, want 1s (after drain)", thirdPutAt)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[string](0)
	var got string
	var at Time
	k.Spawn("consumer", func(p *Proc) {
		got, _ = q.Get(p)
		at = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(3 * time.Second)
		q.Put(p, "hello")
	})
	k.Run()
	if got != "hello" || at != 3*time.Second {
		t.Errorf("Get = %q at %v, want %q at 3s", got, at, "hello")
	}
}

func TestQueueCloseUnblocksGetters(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](0)
	okAfterClose := true
	k.Spawn("consumer", func(p *Proc) {
		_, okAfterClose = q.Get(p)
	})
	k.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Second)
		q.Close()
	})
	k.Run()
	if okAfterClose {
		t.Error("Get on closed empty queue returned ok=true")
	}
}

func TestResourceFIFOAdmission(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	r := NewResource(1)
	var order []string
	hold := func(name string, start, dur Time) {
		k.Spawn(name, func(p *Proc) {
			p.Sleep(start)
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(dur)
			r.Release()
		})
	}
	hold("first", 0, 10*time.Second)
	hold("second", time.Second, time.Second)
	hold("third", 2*time.Second, time.Second)
	k.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order = %v, want %v", order, want)
		}
	}
}

func TestResourceCounts(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	r := NewResource(2)
	if !r.TryAcquire() || !r.TryAcquire() {
		t.Fatal("TryAcquire failed on free resource")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire succeeded beyond capacity")
	}
	if r.InUse() != 2 || r.Capacity() != 2 {
		t.Fatalf("InUse=%d Capacity=%d, want 2,2", r.InUse(), r.Capacity())
	}
	r.Release()
	if r.InUse() != 1 {
		t.Fatalf("InUse=%d after release, want 1", r.InUse())
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	NewResource(1).Release()
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var wg WaitGroup
	var doneAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(Time(i) * time.Second)
			wg.Done()
		})
	}
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	k.Run()
	if doneAt != 3*time.Second {
		t.Errorf("Wait returned at %v, want 3s", doneAt)
	}
}

// Property: for any set of event delays, events fire in nondecreasing time
// order and every event fires exactly once.
func TestQuickEventOrdering(t *testing.T) {
	prop := func(delaysMs []uint16) bool {
		if len(delaysMs) > 200 {
			delaysMs = delaysMs[:200]
		}
		k := NewKernel()
		defer k.Close()
		var fired []Time
		for _, d := range delaysMs {
			k.After(Time(d)*time.Millisecond, func() {
				fired = append(fired, k.Now())
			})
		}
		k.Run()
		if len(fired) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a bounded queue never holds more than its capacity and delivers
// items in FIFO order regardless of producer/consumer timing.
func TestQuickQueueBoundedFIFO(t *testing.T) {
	prop := func(items []byte, capRaw uint8) bool {
		if len(items) > 100 {
			items = items[:100]
		}
		capacity := int(capRaw%8) + 1
		k := NewKernel()
		defer k.Close()
		q := NewQueue[byte](capacity)
		var got []byte
		maxLen := 0
		k.Spawn("producer", func(p *Proc) {
			for _, it := range items {
				q.Put(p, it)
				if q.Len() > maxLen {
					maxLen = q.Len()
				}
				p.Sleep(Time(it%3) * time.Millisecond)
			}
			q.Close()
		})
		k.Spawn("consumer", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
				p.Sleep(Time(v%5) * time.Millisecond)
			}
		})
		k.Run()
		if maxLen > capacity {
			return false
		}
		if len(got) != len(items) {
			return false
		}
		for i := range got {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: resource accounting never exceeds capacity and drains to zero.
func TestQuickResourceConservation(t *testing.T) {
	prop := func(durMs []uint8, capRaw uint8) bool {
		if len(durMs) > 50 {
			durMs = durMs[:50]
		}
		capacity := int(capRaw%4) + 1
		k := NewKernel()
		defer k.Close()
		r := NewResource(capacity)
		violated := false
		for _, d := range durMs {
			d := d
			k.Spawn("user", func(p *Proc) {
				r.Acquire(p)
				if r.InUse() > r.Capacity() {
					violated = true
				}
				p.Sleep(Time(d) * time.Millisecond)
				r.Release()
			})
		}
		k.Run()
		return !violated && r.InUse() == 0 && r.Waiting() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
