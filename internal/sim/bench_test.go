package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw kernel event dispatch rate — the
// quantity that bounds how much virtual time per wall second every
// experiment gets.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	k.After(0, tick)
	k.Run()
	if count != b.N && b.N > 0 {
		b.Fatalf("ran %d events, want %d", count, b.N)
	}
}

// BenchmarkProcContextSwitch measures the park/wake handshake between the
// kernel and a process goroutine.
func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelSleep measures the full Sleep hot path — heap push, park,
// dispatch, resume — which must run allocation-free: the CI workflow gates
// on this benchmark reporting 0 allocs/op.
func BenchmarkKernelSleep(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkSignalFire measures the Wait/Fire wake-up cycle — the run-queue
// fast path every sync primitive rides. Gated at 0 allocs/op in CI.
func BenchmarkSignalFire(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	var sig Signal
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			sig.Wait(p)
		}
	})
	k.Spawn("firer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			sig.Fire()
			p.Yield() // let the waiter re-park before the next fire
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkQueuePingPong measures a blocking request/response exchange
// between two processes over a pair of bounded queues.
func BenchmarkQueuePingPong(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	ping := NewQueue[int](1)
	pong := NewQueue[int](1)
	k.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Put(p, i)
			pong.Get(p)
		}
	})
	k.Spawn("server", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			v, _ := ping.Get(p)
			pong.Put(p, v)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkTimerReset measures the re-arm path components like the fabric
// completion estimate and the warm-pool reaper use: one persistent timer
// rekeyed in place, never abandoning events in the queue.
func BenchmarkTimerReset(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	tm := k.NewTimer(func() {})
	// Keep some heap depth so the rekey does real sift work.
	for i := 0; i < 64; i++ {
		k.AfterTimer(time.Duration(i+1)*time.Hour, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Duration(i%16+1) * time.Minute)
	}
	b.StopTimer()
}

// BenchmarkQueueHandoff measures producer/consumer handoffs through a
// bounded simulation queue.
func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](8)
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	received := 0
	k.Spawn("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
			received++
		}
	})
	b.ResetTimer()
	k.Run()
	if received != b.N {
		b.Fatalf("received %d, want %d", received, b.N)
	}
}
