package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw kernel event dispatch rate — the
// quantity that bounds how much virtual time per wall second every
// experiment gets.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	k.After(0, tick)
	k.Run()
	if count != b.N && b.N > 0 {
		b.Fatalf("ran %d events, want %d", count, b.N)
	}
}

// BenchmarkProcContextSwitch measures the park/wake handshake between the
// kernel and a process goroutine.
func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkQueueHandoff measures producer/consumer handoffs through a
// bounded simulation queue.
func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](8)
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	received := 0
	k.Spawn("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
			received++
		}
	})
	b.ResetTimer()
	k.Run()
	if received != b.N {
		b.Fatalf("received %d, want %d", received, b.N)
	}
}
