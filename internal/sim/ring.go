package sim

// ring is a growable FIFO over a power-of-two circular buffer. Capacity is
// retained across drain/fill cycles, so steady-state push/pop allocates
// nothing — the property the kernel run queue and Queue buffers rely on for
// the zero-allocation hot path.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// len reports the number of buffered elements.
func (r *ring[T]) len() int { return r.n }

// push appends v at the tail, growing the buffer if full.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the head element. It panics on an empty ring.
func (r *ring[T]) pop() T {
	if r.n == 0 {
		panic("sim: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release references held by the slot
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// peek returns a pointer to the head element without removing it.
func (r *ring[T]) peek() *T {
	if r.n == 0 {
		panic("sim: peek on empty ring")
	}
	return &r.buf[r.head]
}

// at returns a pointer to the i-th element from the head (0-based).
func (r *ring[T]) at(i int) *T {
	if i < 0 || i >= r.n {
		panic("sim: ring index out of range")
	}
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// grow doubles the buffer (minimum 8), compacting elements to the front.
func (r *ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
