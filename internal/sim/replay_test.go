package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// This file checks the production scheduler (value heap + run-queue fast
// path + cancellable timers) against a deliberately naive reference
// implementation kept on container/heap with lazy timer deletion — the
// design the kernel used before the zero-allocation rewrite. Both execute
// the same randomized schedule of At/After/Spawn-chains/Timer
// Stop/Reset operations; the observable firing order must be identical.

// testSched is the scheduling surface the random driver runs against.
type testSched interface {
	// after schedules fn at d past the current time (d may be zero or
	// negative; negative clamps to now like Kernel.At).
	after(d Time, fn func())
	// timer schedules fn at d past now, returning stop and reset handles.
	timer(d Time, fn func()) (stop func() bool, reset func(Time))
	// chain models a process: fn(0) runs at now, then fn(i) after
	// sleeping steps[i-1] between consecutive calls.
	chain(steps []Time, fn func(int))
	run()
}

// realSched adapts the production kernel.
type realSched struct{ k *Kernel }

func (r realSched) after(d Time, fn func()) { r.k.After(d, fn) }

func (r realSched) timer(d Time, fn func()) (func() bool, func(Time)) {
	t := r.k.AfterTimer(d, fn)
	return t.Stop, t.Reset
}

func (r realSched) chain(steps []Time, fn func(int)) {
	r.k.Spawn("chain", func(p *Proc) {
		fn(0)
		for i, d := range steps {
			p.Sleep(d)
			fn(i + 1)
		}
	})
}

func (r realSched) run() { r.k.Run() }

// refEvent is one reference-scheduler entry; stopped events stay in the
// heap and are skipped at dispatch (lazy deletion).
type refEvent struct {
	at      Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// refSched is the reference scheduler.
type refSched struct {
	now Time
	seq uint64
	h   refHeap
}

func (r *refSched) push(at Time, fn func()) *refEvent {
	if at < r.now {
		at = r.now
	}
	r.seq++
	ev := &refEvent{at: at, seq: r.seq, fn: fn}
	heap.Push(&r.h, ev)
	return ev
}

func (r *refSched) after(d Time, fn func()) { r.push(r.now+d, fn) }

func (r *refSched) timer(d Time, fn func()) (func() bool, func(Time)) {
	ev := r.push(r.now+d, fn)
	stop := func() bool {
		if ev.stopped || ev.fired {
			return false
		}
		ev.stopped = true
		return true
	}
	reset := func(d Time) {
		// Like Timer.Reset: cancel the pending fire (if any) and
		// schedule afresh with a new sequence number.
		if !ev.fired {
			ev.stopped = true
		}
		ev = r.push(r.now+d, fn)
	}
	return stop, reset
}

func (r *refSched) chain(steps []Time, fn func(int)) {
	i := 0
	var step func()
	step = func() {
		fn(i)
		if i < len(steps) {
			d := steps[i]
			if d < 0 {
				d = 0
			}
			i++
			r.after(d, step)
		}
	}
	r.after(0, step)
}

func (r *refSched) run() {
	for len(r.h) > 0 {
		ev := heap.Pop(&r.h).(*refEvent)
		r.now = ev.at
		if ev.stopped {
			continue
		}
		ev.fired = true
		ev.fn()
	}
}

// driver builds a random schedule on s, logging every fire. Identical rng
// seeds produce identical operation streams as long as the two schedulers
// fire events in the same order — which is exactly what the test asserts.
func driver(seed int64, s testSched) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var trace []uint64
	var nextID uint64
	remaining := 600 // events left to create

	// Durations skew heavily toward collisions: zero delays exercise the
	// run-queue fast path and repeated values force same-timestamp ties
	// broken only by sequence numbers.
	durations := []Time{0, 0, 0, time.Nanosecond, time.Nanosecond,
		5 * time.Nanosecond, time.Microsecond, time.Microsecond,
		50 * time.Microsecond, time.Millisecond, -time.Second}
	randDur := func() Time { return durations[rng.Intn(len(durations))] }

	type handle struct {
		stop  func() bool
		reset func(Time)
	}
	var timers []handle

	var randomOp func()
	logged := func(id uint64, extra func()) func() {
		return func() {
			trace = append(trace, id)
			if extra != nil {
				extra()
			}
		}
	}
	followUps := func() {
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			randomOp()
		}
	}
	randomOp = func() {
		switch op := rng.Intn(10); {
		case op < 4: // plain event
			if remaining <= 0 {
				return
			}
			remaining--
			nextID++
			s.after(randDur(), logged(nextID, followUps))
		case op < 7: // cancellable timer
			if remaining <= 0 {
				return
			}
			remaining--
			nextID++
			stop, reset := s.timer(randDur(), logged(nextID, followUps))
			timers = append(timers, handle{stop: stop, reset: reset})
		case op < 8: // process chain
			k := 1 + rng.Intn(3)
			if remaining < k {
				return
			}
			remaining -= k
			steps := make([]Time, k-1)
			for i := range steps {
				steps[i] = randDur()
			}
			base := nextID
			nextID += uint64(k)
			s.chain(steps, func(i int) {
				trace = append(trace, base+uint64(i)+1)
				followUps()
			})
		case op < 9: // stop a random timer
			if len(timers) == 0 {
				return
			}
			i := rng.Intn(len(timers))
			timers[i].stop()
			timers[i] = timers[len(timers)-1]
			timers = timers[:len(timers)-1]
		default: // reset a random timer
			if len(timers) == 0 {
				return
			}
			timers[rng.Intn(len(timers))].reset(randDur())
		}
	}

	for i := 0; i < 40; i++ {
		randomOp()
	}
	s.run()
	return trace
}

// TestSchedulerReplaysReferenceOrder: for seeds 1–20, the production
// scheduler must replay the randomized schedule in exactly the order the
// container/heap reference produces.
func TestSchedulerReplaysReferenceOrder(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			k := NewKernel()
			defer k.Close()
			got := driver(seed, realSched{k: k})
			want := driver(seed, &refSched{})
			if len(got) == 0 {
				t.Fatal("empty trace; driver scheduled nothing")
			}
			if len(got) != len(want) {
				t.Fatalf("trace lengths differ: kernel %d, reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("divergence at event %d: kernel fired %d, reference fired %d\nkernel:    %v\nreference: %v",
						i, got[i], want[i], got, want)
				}
			}
		})
	}
}
