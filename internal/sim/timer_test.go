package sim

import (
	"testing"
	"time"
)

func TestTimerStopPreventsFire(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	fired := false
	tm := k.AfterTimer(time.Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer not active after AfterTimer")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false on an armed timer")
	}
	if tm.Active() {
		t.Error("timer still active after Stop")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	if k.Pending() != 0 {
		t.Errorf("Pending = %d after Stop, want 0 (event must leave the queue)", k.Pending())
	}
	k.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	fired := 0
	tm := k.AfterTimer(time.Second, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Active() {
		t.Error("timer active after firing")
	}
	if tm.Stop() {
		t.Error("Stop after fire returned true")
	}
}

// A spent handle must not cancel an unrelated timer that recycled its slot.
func TestTimerStopIgnoresRecycledSlot(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	a := k.AfterTimer(time.Second, func() {})
	k.Run() // a fires; its slot returns to the free list
	fired := false
	b := k.AfterTimer(time.Second, func() { fired = true })
	if a.Stop() {
		t.Error("spent handle Stop returned true")
	}
	if !b.Active() {
		t.Fatal("b was cancelled through a stale handle")
	}
	k.Run()
	if !fired {
		t.Error("b did not fire")
	}
}

// Timers interleave with plain events at the same timestamp in schedule
// order, exactly as if they were scheduled with At.
func TestTimerOrdersLikeAt(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var order []int
	k.At(time.Second, func() { order = append(order, 1) })
	k.AtTimer(time.Second, func() { order = append(order, 2) })
	k.At(time.Second, func() { order = append(order, 3) })
	k.AfterTimer(time.Second, func() { order = append(order, 4) })
	k.Run()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v, want [1 2 3 4]", order)
		}
	}
}

func TestTimerResetMovesDeadline(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var at Time = -1
	tm := k.AfterTimer(time.Second, func() { at = k.Now() })
	k.At(500*time.Millisecond, func() { tm.Reset(2 * time.Second) })
	k.Run()
	if at != 2500*time.Millisecond {
		t.Errorf("reset timer fired at %v, want 2.5s", at)
	}
}

// Reset re-keys like a fresh schedule: against events at the same
// timestamp, a reset timer orders by its reset time, not its original one.
func TestTimerResetTakesNewSeq(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var order []string
	tm := k.AfterTimer(time.Second, func() { order = append(order, "timer") })
	tm.Reset(time.Second)
	k.At(time.Second, func() { order = append(order, "at") })
	// Without the re-key the timer would keep its original (earlier)
	// sequence number... but it was reset BEFORE "at" was scheduled, so
	// it still runs first; resetting again after flips the order.
	tm.Reset(time.Second)
	k.Run()
	if len(order) != 2 || order[0] != "at" || order[1] != "timer" {
		t.Errorf("order = %v, want [at timer]", order)
	}
}

func TestTimerResetAfterFireRearms(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	fired := 0
	tm := k.AfterTimer(time.Second, func() { fired++ })
	k.Run()
	tm.Reset(time.Second)
	k.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (reset after fire re-arms)", fired)
	}
}

func TestNewTimerStartsUnarmed(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	fired := false
	tm := k.NewTimer(func() { fired = true })
	if tm.Active() {
		t.Error("NewTimer returned an armed timer")
	}
	if tm.Stop() {
		t.Error("Stop on unarmed timer returned true")
	}
	k.Run()
	if fired {
		t.Error("unarmed timer fired")
	}
	tm.ResetAt(time.Second)
	k.Run()
	if !fired {
		t.Error("armed timer did not fire")
	}
}

func TestTimerInThePastClampsToNow(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var at Time = -1
	k.At(time.Second, func() {
		k.AtTimer(0, func() { at = k.Now() })
	})
	k.Run()
	if at != time.Second {
		t.Errorf("past timer ran at %v, want clamped to 1s", at)
	}
}

func TestAtOnClosedKernelPanics(t *testing.T) {
	k := NewKernel()
	k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("At on closed kernel did not panic")
		}
	}()
	k.At(time.Second, func() {})
}

func TestAfterOnClosedKernelPanics(t *testing.T) {
	k := NewKernel()
	k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("After on closed kernel did not panic")
		}
	}()
	k.After(time.Second, func() {})
}

func TestAfterTimerOnClosedKernelPanics(t *testing.T) {
	k := NewKernel()
	k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("AfterTimer on closed kernel did not panic")
		}
	}()
	k.AfterTimer(time.Second, func() {})
}

// Stopping timers out of order exercises interior heap removal.
func TestTimerStopInteriorRemoval(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var fired []int
	timers := make([]*Timer, 20)
	for i := range timers {
		i := i
		timers[i] = k.AfterTimer(Time(i+1)*time.Second, func() { fired = append(fired, i) })
	}
	// Stop every third timer, scattered through the heap.
	for i := 0; i < len(timers); i += 3 {
		if !timers[i].Stop() {
			t.Fatalf("Stop(%d) failed", i)
		}
	}
	k.Run()
	for _, v := range fired {
		if v%3 == 0 {
			t.Errorf("stopped timer %d fired", v)
		}
	}
	want := len(timers) - (len(timers)+2)/3
	if len(fired) != want {
		t.Errorf("%d timers fired, want %d", len(fired), want)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i-1] >= fired[i] {
			t.Errorf("fire order not ascending: %v", fired)
		}
	}
}
