// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event queue ordered by
// (time, sequence number). Simulated concurrent activities are written as
// ordinary blocking Go code inside processes (see Proc); the kernel runs
// exactly one process at a time and advances virtual time only between
// events, so a simulation is fully deterministic and runs as fast as the
// host CPU allows regardless of how much virtual time it covers.
//
// A 465-minute cloud experiment therefore completes in milliseconds of wall
// time and produces bit-identical results on every run, which is what makes
// the reproduction's latency and cost tables trustworthy.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual time measured as an offset from the simulation start.
type Time = time.Duration

// token is the unit value exchanged on kernel handshake channels.
type token struct{}

// killedPanic is thrown inside a parked process when the kernel shuts down.
type killedPanic struct{}

// procPanic wraps a panic raised by user code inside a process so Run can
// re-raise it on the caller's goroutine with context attached.
type procPanic struct {
	proc string
	val  any
}

func (p procPanic) String() string {
	return fmt.Sprintf("sim: process %q panicked: %v", p.proc, p.val)
}

// Kernel is a discrete-event simulation engine. The zero value is not usable;
// construct one with NewKernel. A Kernel must be used from a single goroutine
// (its own processes are internally serialized).
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap

	// yield is signaled by a process when it parks or exits, returning
	// control to the kernel loop.
	yield chan token
	// killed is closed by Close to tear down parked process goroutines.
	killed chan token
	closed bool

	// failure holds a panic captured from a process; Run re-raises it.
	failure *procPanic

	liveProcs int
	spawned   uint64
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	return &Kernel{
		yield:  make(chan token),
		killed: make(chan token),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of scheduled future events.
func (k *Kernel) Pending() int { return len(k.events) }

// LiveProcs reports the number of processes that have been spawned and have
// not yet exited (parked processes count as live).
func (k *Kernel) LiveProcs() int { return k.liveProcs }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs the event at the current time, preserving program order.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Spawn creates a process running fn and schedules it to start at the
// current virtual time. It returns immediately; the process body executes
// when the kernel loop reaches the start event.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	if k.closed {
		panic("sim: Spawn on closed kernel")
	}
	k.spawned++
	p := &Proc{
		k:      k,
		name:   name,
		id:     k.spawned,
		resume: make(chan token),
	}
	k.liveProcs++
	go p.run(fn)
	k.After(0, func() { k.step(p) })
	return p
}

// step transfers control to process p and blocks until p parks or exits.
func (k *Kernel) step(p *Proc) {
	p.resume <- token{}
	<-k.yield
}

// Run executes events until the queue is empty, then returns the final
// virtual time. Processes still parked at that point are deadlocked (they
// wait on conditions nothing will fire); they remain parked and are reaped
// by Close.
func (k *Kernel) Run() Time {
	return k.RunUntil(-1)
}

// RunUntil executes events with timestamps <= until (all events if until is
// negative) and returns the virtual time reached. If the queue empties first
// and until is non-negative, the clock still advances to until.
func (k *Kernel) RunUntil(until Time) Time {
	if k.closed {
		panic("sim: Run on closed kernel")
	}
	for len(k.events) > 0 {
		next := k.events[0]
		if until >= 0 && next.at > until {
			break
		}
		heap.Pop(&k.events)
		k.now = next.at
		next.fn()
		if k.failure != nil {
			f := *k.failure
			k.failure = nil
			panic(f.String())
		}
	}
	if until >= 0 && k.now < until {
		k.now = until
	}
	return k.now
}

// Close tears down the kernel, unblocking every parked process goroutine so
// nothing leaks. After Close the kernel cannot be used. Close is idempotent.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	close(k.killed)
}
