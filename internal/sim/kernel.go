// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event queue ordered by
// (time, sequence number). Simulated concurrent activities are written as
// ordinary blocking Go code inside processes (see Proc); the kernel runs
// exactly one process at a time and advances virtual time only between
// events, so a simulation is fully deterministic and runs as fast as the
// host CPU allows regardless of how much virtual time it covers.
//
// A 465-minute cloud experiment therefore completes in milliseconds of wall
// time and produces bit-identical results on every run, which is what makes
// the reproduction's latency and cost tables trustworthy.
//
// Internally the scheduler keeps two structures: a FIFO run queue for
// events due at exactly the current time (the After(0) wake-up path every
// synchronization primitive uses) and an index-based 4-ary min-heap of
// event values for future events. Both recycle their storage, so the
// steady-state schedule/dispatch cycle performs zero heap allocations; see
// DESIGN.md "Kernel internals" for the ordering invariants.
package sim

import (
	"fmt"
	"time"
)

// Time is virtual time measured as an offset from the simulation start.
type Time = time.Duration

// token is the unit value exchanged on kernel handshake channels.
type token struct{}

// killedPanic is thrown inside a parked process when the kernel shuts down.
type killedPanic struct{}

// procPanic wraps a panic raised by user code inside a process so Run can
// re-raise it on the caller's goroutine with context attached.
type procPanic struct {
	proc string
	val  any
}

func (p procPanic) String() string {
	return fmt.Sprintf("sim: process %q panicked: %v", p.proc, p.val)
}

// rqEntry is a run-queue entry: an event due at the current virtual time.
// Its timestamp is implicit (always Now); seq alone orders it against heap
// events that share the timestamp.
type rqEntry struct {
	seq  uint64
	fn   func()
	proc *Proc
}

// Kernel is a discrete-event simulation engine. The zero value is not usable;
// construct one with NewKernel. A Kernel must be used from a single goroutine
// (its own processes are internally serialized).
type Kernel struct {
	now Time
	seq uint64

	// events holds future events (at > now at push time) plus all
	// cancellable timers; rq holds events due at exactly now, in seq
	// order. Together they form one logical queue totally ordered by
	// (at, seq) — see nextIsRQ.
	events eventHeap
	rq     ring[rqEntry]

	// yield is signaled by a process when it parks or exits, returning
	// control to the kernel loop.
	yield chan token
	// allProcs is every Proc (and goroutine) ever created, so Close can
	// tear each one down by closing its resume channel; freeProcs is the
	// subset whose bodies have exited and whose goroutines are parked
	// awaiting a new assignment from Spawn. Recycling them makes
	// steady-state Spawn allocation-free: no goroutine, stack, channel,
	// or Proc per process on per-request workloads.
	allProcs  []*Proc
	freeProcs []*Proc
	closed    bool

	// failure holds a panic captured from a process; Run re-raises it.
	failure *procPanic

	// until is the active RunUntil bound (negative = unbounded), read by
	// the park self-handoff fast path so it never advances the clock past
	// the bound the kernel loop is enforcing.
	until Time

	liveProcs int
	spawned   uint64
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	return &Kernel{
		events: newEventHeap(),
		yield:  make(chan token),
		until:  -1,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of scheduled events (stopped timers leave the
// queue immediately and are not counted).
func (k *Kernel) Pending() int { return k.events.len() + k.rq.len() }

// LiveProcs reports the number of processes that have been spawned and have
// not yet exited (parked processes count as live).
func (k *Kernel) LiveProcs() int { return k.liveProcs }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) runs the event at the current time, preserving program order.
// Scheduling on a closed kernel panics, like Spawn.
func (k *Kernel) At(t Time, fn func()) {
	if k.closed {
		panic("sim: At on closed kernel")
	}
	k.schedule(t, fn, nil)
}

// After schedules fn to run d after the current virtual time. Scheduling on
// a closed kernel panics, like Spawn.
func (k *Kernel) After(d Time, fn func()) {
	if k.closed {
		panic("sim: After on closed kernel")
	}
	k.schedule(k.now+d, fn, nil)
}

// schedule enqueues a (fn XOR proc) event at time t: due-now events take the
// O(1) run-queue fast path, future events go to the heap.
func (k *Kernel) schedule(t Time, fn func(), proc *Proc) {
	k.seq++
	if t <= k.now {
		k.rq.push(rqEntry{seq: k.seq, fn: fn, proc: proc})
		return
	}
	k.events.push(t, k.seq, fn, proc)
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time. It returns immediately; the process body executes
// when the kernel loop reaches the start event.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	if k.closed {
		panic("sim: Spawn on closed kernel")
	}
	k.spawned++
	var p *Proc
	if n := len(k.freeProcs); n > 0 {
		// Reuse an exited process slot: its goroutine is parked on the
		// resume channel waiting for the next assignment.
		p = k.freeProcs[n-1]
		k.freeProcs = k.freeProcs[:n-1]
		p.name, p.id, p.body = name, k.spawned, fn
	} else {
		p = &Proc{
			k:      k,
			name:   name,
			id:     k.spawned,
			resume: make(chan token),
			body:   fn,
		}
		k.allProcs = append(k.allProcs, p)
		startWorker(p)
	}
	k.liveProcs++
	k.schedule(k.now, nil, p)
	return p
}

// step transfers control to process p and blocks until p parks or exits.
func (k *Kernel) step(p *Proc) {
	p.resume <- token{}
	<-k.yield
}

// Run executes events until the queue is empty, then returns the final
// virtual time. Processes still parked at that point are deadlocked (they
// wait on conditions nothing will fire); they remain parked and are reaped
// by Close.
func (k *Kernel) Run() Time {
	return k.RunUntil(-1)
}

// nextIsRQ reports whether the next event in (at, seq) order is the run
// queue head rather than the heap minimum. Both queues must be consulted:
// the heap may hold events at the current time (cancellable timers, or
// wake-ups scheduled before the clock reached their timestamp) whose seq
// precedes the run-queue head's.
func (k *Kernel) nextIsRQ() bool {
	if k.events.len() == 0 {
		return true
	}
	top := &k.events.arena[k.events.min()]
	return top.at > k.now || top.seq > k.rq.peek().seq
}

// directHandoff lets a parking or exiting process dispatch the next due
// event itself when that event resumes another (parked) process: it pops
// the event with exactly the kernel loop's selection logic and hands the
// run token straight to the target goroutine, so the kernel goroutine
// stays asleep and the handoff costs one channel operation instead of two.
// Processes daisy-chain this way until the next event is a callback, out
// of the RunUntil bound, or absent — then the last process yields and the
// kernel loop takes over. Because the selection logic is identical, the
// event order (and every golden trace) is unchanged.
//
// It reports whether the event was dispatched; false means the caller must
// yield to the kernel loop. A recorded failure also returns false so the
// kernel re-raises the panic before any further event runs.
func (k *Kernel) directHandoff(self *Proc) bool {
	if k.failure != nil {
		return false
	}
	var target *Proc
	if k.rq.len() > 0 && k.nextIsRQ() {
		if k.until >= 0 && k.now > k.until {
			return false
		}
		// A pending event for self cannot be consumed here: park's inline
		// fast path already handles it, and an exiting process must leave
		// it to the kernel loop.
		target = k.rq.peek().proc
		if target == nil || target == self {
			return false
		}
		k.rq.pop() // zeroes the peeked slot; target already copied out
	} else if k.events.len() > 0 {
		s := k.events.min()
		e := &k.events.arena[s]
		if e.proc == nil || e.proc == self || (k.until >= 0 && e.at > k.until) {
			return false
		}
		k.now = e.at
		target = e.proc
		k.events.removeAt(0)
	} else {
		return false
	}
	target.resume <- token{}
	return true
}

// RunUntil executes events with timestamps <= until (all events if until is
// negative) and returns the virtual time reached. If the queue empties first
// and until is non-negative, the clock still advances to until.
func (k *Kernel) RunUntil(until Time) Time {
	if k.closed {
		panic("sim: Run on closed kernel")
	}
	k.until = until
	for {
		var fn func()
		var proc *Proc
		if k.rq.len() > 0 && k.nextIsRQ() {
			// Run-queue entries are due at the current time.
			if until >= 0 && k.now > until {
				break
			}
			e := k.rq.pop()
			fn, proc = e.fn, e.proc
		} else if k.events.len() > 0 {
			s := k.events.min()
			e := &k.events.arena[s]
			if until >= 0 && e.at > until {
				break
			}
			k.now = e.at
			fn, proc = e.fn, e.proc
			k.events.removeAt(0)
		} else {
			break
		}
		if proc != nil {
			k.step(proc)
		} else {
			fn()
		}
		if k.failure != nil {
			f := *k.failure
			k.failure = nil
			panic(f.String())
		}
	}
	if until >= 0 && k.now < until {
		k.now = until
	}
	return k.now
}

// Close tears down the kernel, unblocking every parked process goroutine so
// nothing leaks. After Close the kernel cannot be used. Close is idempotent.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	// Every goroutine — parked mid-body, awaiting its start event, or
	// idle in the free pool — is blocked on its resume channel; closing
	// the channel unblocks it for teardown.
	for _, p := range k.allProcs {
		close(p.resume)
	}
	k.allProcs = nil
	k.freeProcs = nil
}
