// Package simrand provides a deterministic random number generator and the
// latency-jitter distributions used by the simulated cloud.
//
// The simulator never consults math/rand's global state or the wall clock:
// every source of randomness is a seeded splitmix64 stream, so a whole
// experiment is reproducible bit-for-bit from its seed.
package simrand

import (
	"math"
	"time"
)

// RNG is a splitmix64 pseudo-random generator. It is small, fast, passes
// BigCrush, and — unlike math/rand.Source — is trivially forkable, which
// lets each simulated component own an independent deterministic stream.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from this one. Streams produced by
// repeated Fork calls are decorrelated because each fork consumes one output
// of the parent and re-scrambles it.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Derive maps a (base seed, sweep point index) pair to an independent
// seed, so every point of a parallel sweep owns a decorrelated RNG stream
// that depends only on the pair — never on execution order or worker
// count. The mixer is the splitmix64 finalizer over the pair: index is
// folded in via the same golden-ratio increment the generator steps by,
// offset by one so Derive(base, 0) differs from base itself. The result
// is stable across runs, platforms, and Go versions (pure integer math).
func Derive(base uint64, index int) uint64 {
	z := base + (uint64(index)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 == 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, like math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Dist is a distribution of durations, used to model per-operation latency.
type Dist interface {
	// Sample draws one duration using rng. Implementations must never
	// return a negative duration.
	Sample(rng *RNG) time.Duration
}

// Const is a degenerate distribution that always returns its value.
type Const time.Duration

// Sample implements Dist.
func (c Const) Sample(*RNG) time.Duration { return time.Duration(c) }

// Uniform is a uniform distribution over [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(rng *RNG) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(rng.Float64()*float64(u.Hi-u.Lo))
}

// LogNormal models the right-skewed latency shape typical of networked
// services: most samples land near Median, with a tail controlled by Sigma
// (the standard deviation of the underlying normal; 0.25–0.5 is realistic
// for storage services).
type LogNormal struct {
	Median time.Duration
	Sigma  float64
}

// Sample implements Dist.
func (l LogNormal) Sample(rng *RNG) time.Duration {
	v := float64(l.Median) * math.Exp(l.Sigma*rng.NormFloat64())
	if v < 0 {
		return 0
	}
	return time.Duration(v)
}

// Exponential is an exponential distribution with the given mean, used for
// inter-arrival times in open-loop workloads.
type Exponential struct {
	Mean time.Duration
}

// Sample implements Dist.
func (e Exponential) Sample(rng *RNG) time.Duration {
	return time.Duration(float64(e.Mean) * rng.ExpFloat64())
}

// Shifted adds a fixed floor to another distribution, modelling a
// deterministic minimum service time plus stochastic queueing on top.
type Shifted struct {
	Floor time.Duration
	Tail  Dist
}

// Sample implements Dist.
func (s Shifted) Sample(rng *RNG) time.Duration {
	return s.Floor + s.Tail.Sample(rng)
}
