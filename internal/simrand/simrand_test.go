package simrand

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 collisions between different seeds", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	f1 := parent.Fork()
	f2 := parent.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("sibling forks produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestConstDist(t *testing.T) {
	d := Const(5 * time.Millisecond)
	if got := d.Sample(New(1)); got != 5*time.Millisecond {
		t.Errorf("Const sample = %v", got)
	}
}

func TestUniformDistBounds(t *testing.T) {
	d := Uniform{Lo: time.Millisecond, Hi: 2 * time.Millisecond}
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < d.Lo || v > d.Hi {
			t.Fatalf("Uniform sample %v out of bounds", v)
		}
	}
	degenerate := Uniform{Lo: time.Second, Hi: time.Second}
	if got := degenerate.Sample(r); got != time.Second {
		t.Errorf("degenerate Uniform = %v", got)
	}
}

func TestLogNormalMedian(t *testing.T) {
	d := LogNormal{Median: 10 * time.Millisecond, Sigma: 0.3}
	r := New(23)
	const n = 20001
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	// Median of samples should be near the configured median.
	below := 0
	for _, s := range samples {
		if s < d.Median {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestShiftedFloor(t *testing.T) {
	d := Shifted{Floor: 100 * time.Millisecond, Tail: Exponential{Mean: time.Millisecond}}
	r := New(29)
	for i := 0; i < 1000; i++ {
		if v := d.Sample(r); v < d.Floor {
			t.Fatalf("Shifted sample %v below floor", v)
		}
	}
}

// Property: all distributions produce non-negative durations for any seed.
func TestQuickDistsNonNegative(t *testing.T) {
	dists := []Dist{
		Const(time.Millisecond),
		Uniform{Lo: 0, Hi: time.Second},
		LogNormal{Median: time.Millisecond, Sigma: 0.5},
		Exponential{Mean: time.Millisecond},
		Shifted{Floor: time.Microsecond, Tail: Const(0)},
	}
	prop := func(seed uint64) bool {
		r := New(seed)
		for _, d := range dists {
			for i := 0; i < 20; i++ {
				if d.Sample(r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Shuffle preserves multiset contents.
func TestQuickShufflePreservesElements(t *testing.T) {
	prop := func(xs []int, seed uint64) bool {
		orig := make(map[int]int)
		for _, x := range xs {
			orig[x]++
		}
		cp := append([]int(nil), xs...)
		New(seed).Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
		got := make(map[int]int)
		for _, x := range cp {
			got[x]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, v := range orig {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDeriveStable pins Derive's exact outputs: per-point sweep seeds must
// be identical across runs, platforms, and Go versions, or parallel sweep
// results would drift from their goldens.
func TestDeriveStable(t *testing.T) {
	cases := []struct {
		base  uint64
		index int
		want  uint64
	}{
		{1, 0, 0x910a2dec89025cc1},
		{1, 1, 0xbeeb8da1658eec67},
		{42, 7, 0xccf635ee9e9e2fa4},
		{0, 0, 0xe220a8397b1dcdaf},
	}
	for _, c := range cases {
		if got := Derive(c.base, c.index); got != c.want {
			t.Errorf("Derive(%d, %d) = %#x, want %#x", c.base, c.index, got, c.want)
		}
		if again := Derive(c.base, c.index); again != Derive(c.base, c.index) {
			t.Errorf("Derive(%d, %d) not pure", c.base, c.index)
		}
	}
}

// TestDeriveIsTheSplitmixStream: Derive(base, i) equals the (i+1)-th
// output of the splitmix64 stream seeded with base — the closed form that
// makes per-point seeds O(1) while inheriting the generator's statistical
// quality.
func TestDeriveIsTheSplitmixStream(t *testing.T) {
	r := New(99)
	for i := 0; i < 64; i++ {
		if want, got := r.Uint64(), Derive(99, i); got != want {
			t.Fatalf("Derive(99, %d) = %#x, want stream output %#x", i, got, want)
		}
	}
}

// TestDeriveDecorrelated: streams seeded from adjacent indices must look
// independent — distinct first outputs, and bitwise agreement near the
// 50% of independent uniform draws.
func TestDeriveDecorrelated(t *testing.T) {
	const points, draws = 32, 64
	seen := map[uint64]bool{}
	for i := 0; i < points; i++ {
		s := Derive(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	for i := 0; i < points-1; i++ {
		a, b := New(Derive(1, i)), New(Derive(1, i+1))
		matching := 0
		for d := 0; d < draws; d++ {
			matching += 64 - bits.OnesCount64(a.Uint64()^b.Uint64())
		}
		frac := float64(matching) / (64 * draws)
		if frac < 0.4 || frac > 0.6 {
			t.Errorf("indices %d/%d: bit agreement %.3f, want ~0.5", i, i+1, frac)
		}
	}
}
