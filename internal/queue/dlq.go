package queue

// Dead-letter support: SQS's redrive policy moves a message that has been
// received more than maxReceiveCount times to a designated dead-letter
// queue instead of redelivering it — the standard guard against poison
// messages in exactly the event-driven pipelines §2 describes.

// RedrivePolicy routes repeatedly failed messages to a dead-letter queue.
type RedrivePolicy struct {
	// MaxReceives is the last delivery attempt that is still allowed;
	// the message moves to the dead-letter queue when its receive count
	// would exceed this. Must be >= 1.
	MaxReceives int
	// DeadLetter receives exhausted messages. Must not be the source
	// queue itself.
	DeadLetter *Queue
}

// SetRedrivePolicy installs (or, with a nil DeadLetter, clears) the
// queue's redrive policy.
func (q *Queue) SetRedrivePolicy(p RedrivePolicy) error {
	if p.DeadLetter == nil {
		q.redrive = nil
		return nil
	}
	if p.DeadLetter == q {
		return errSelfRedrive
	}
	if p.MaxReceives < 1 {
		return errBadMaxReceives
	}
	policy := p
	q.redrive = &policy
	return nil
}

// DeadLettered reports how many messages this queue has moved to its
// dead-letter queue.
func (q *Queue) DeadLettered() int64 { return q.deadLettered }

// exhausted checks the redrive policy against a message about to be
// delivered for the (attempts+1)-th time, moving it to the DLQ and
// reporting true if it is out of attempts.
func (q *Queue) exhausted(m *stored) bool {
	if q.redrive == nil || m.attempts < q.redrive.MaxReceives {
		return false
	}
	q.deadLettered++
	dlq := q.redrive.DeadLetter
	moved := &stored{id: m.id, body: m.body, attempts: m.attempts}
	dlq.available = append(dlq.available, moved)
	dlq.wakeWaiters(1)
	return true
}
