// Package queue simulates an SQS-style message queue service: named queues
// with SendMessage/ReceiveMessage/DeleteMessage, batches of at most ten
// messages, long polling, visibility timeouts with at-least-once redelivery,
// and per-request metering.
//
// SQS is the paper's "favored service for batching inputs" in the prediction
// serving case study, and the per-request price is what makes the 1M msg/s
// scenario cost $1,584/hr.
//
// The endpoint node, request round trip, and metering all live in the
// shared service layer (internal/service); this package owns only what is
// SQS-specific: queues, visibility timeouts, long polling, and redrive.
package queue

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// MaxBatch is the largest number of messages per send or receive request,
// matching SQS's limit of 10 (which the paper calls out as capping batching).
const MaxBatch = 10

// MaxMessageSize is the SQS payload limit.
const MaxMessageSize = 256 * 1024

// billingChunk is the payload size billed as one request (SQS bills each
// 64KB chunk of a payload as a separate request).
const billingChunk = 64 * 1024

// ErrTooLarge is returned for payloads above MaxMessageSize.
var ErrTooLarge = errors.New("queue: message exceeds 256KB limit")

// ErrBatchTooBig is returned when more than MaxBatch messages are batched.
var ErrBatchTooBig = errors.New("queue: batch exceeds 10 messages")

// Redrive policy configuration errors.
var (
	errSelfRedrive    = errors.New("queue: dead-letter queue cannot be the source queue")
	errBadMaxReceives = errors.New("queue: MaxReceives must be at least 1")
)

// Message is a received message. Receipt identifies this delivery for
// Delete; Attempts counts deliveries (1 on first receipt).
type Message struct {
	ID       string
	Body     []byte
	Receipt  string
	Attempts int
}

// Config holds service-level parameters.
type Config struct {
	// OpLatency is per-request service time, calibrated so that an EC2
	// client's send plus a long-polling server's response leg plus the
	// result send lands at the paper's 13 ms serving batch.
	OpLatency simrand.Dist

	// NICBps is the front end's aggregate network capacity.
	NICBps netsim.Bps
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		OpLatency: simrand.LogNormal{Median: 4000 * time.Microsecond, Sigma: 0.15},
		NICBps:    netsim.Gbps(400),
	}
}

// Service is a simulated SQS endpoint hosting any number of named queues.
type Service struct {
	fe     *service.Frontend
	cfg    Config
	queues map[string]*Queue
}

// NewService creates an SQS endpoint attached to the network.
func NewService(name string, net *netsim.Network, rack int, rng *simrand.RNG,
	cfg Config, catalog *pricing.Catalog, meter *pricing.Meter) *Service {
	return &Service{
		fe: service.NewFrontend(name, net, rack, rng, cfg.OpLatency,
			cfg.NICBps, catalog, meter),
		cfg:    cfg,
		queues: make(map[string]*Queue),
	}
}

// Node returns the service's network endpoint.
func (s *Service) Node() *netsim.Node { return s.fe.Node() }

// CreateQueue creates (or returns) the named queue with the given
// visibility timeout for received-but-undeleted messages.
func (s *Service) CreateQueue(name string, visibility time.Duration) *Queue {
	if q, ok := s.queues[name]; ok {
		return q
	}
	q := &Queue{
		svc:        s,
		name:       name,
		visibility: visibility,
		inflight:   make(map[string]*stored),
	}
	s.queues[name] = q
	return q
}

// Queue is one named message queue.
type Queue struct {
	svc        *Service
	name       string
	visibility time.Duration
	available  []*stored
	inflight   map[string]*stored // by receipt
	waiters    []*sim.Latch
	nextID     int64
	nextRcpt   int64

	redrive      *RedrivePolicy
	deadLettered int64
}

type stored struct {
	id       string
	body     []byte
	attempts int
	// vis is the armed visibility timer while the message is in flight.
	// Delete stops it, so acknowledged messages leave the kernel queue
	// immediately instead of firing a dead reappear event at timeout.
	vis *sim.Timer
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Depth reports the number of immediately receivable messages.
func (q *Queue) Depth() int { return len(q.available) }

// InFlight reports the number of received-but-undeleted messages.
func (q *Queue) InFlight() int { return len(q.inflight) }

// billedRequests returns how many requests a payload of the given size
// bills: one per started 64KB chunk, with empty payloads still billing the
// one request every API call costs.
func billedRequests(payload int64) int64 {
	if payload <= billingChunk {
		return 1
	}
	return (payload + billingChunk - 1) / billingChunk
}

// request models one API request's round trip and charges for it,
// including SQS's 64KB-chunk billing for large payloads. The error is the
// front end's admission verdict (always nil without SetAdmission).
func (q *Queue) request(p *sim.Proc, caller *netsim.Node, payload int64) error {
	fe := q.svc.fe
	fe.Charge("sqs.request", billedRequests(payload), fe.Catalog().SQSPerRequest)
	return fe.RoundTripErr(p, caller, 0)
}

// Send enqueues one message and returns its ID.
func (q *Queue) Send(p *sim.Proc, caller *netsim.Node, body []byte) (string, error) {
	ids, err := q.SendBatch(p, caller, [][]byte{body})
	if err != nil {
		return "", err
	}
	return ids[0], nil
}

// SendBatch enqueues up to MaxBatch messages in one request.
func (q *Queue) SendBatch(p *sim.Proc, caller *netsim.Node, bodies [][]byte) ([]string, error) {
	if len(bodies) > MaxBatch {
		return nil, ErrBatchTooBig
	}
	var payload int64
	for _, b := range bodies {
		if len(b) > MaxMessageSize {
			return nil, ErrTooLarge
		}
		payload += int64(len(b))
	}
	if err := q.request(p, caller, payload); err != nil {
		return nil, err
	}
	ids := make([]string, len(bodies))
	for i, b := range bodies {
		q.nextID++
		m := &stored{
			id:   fmt.Sprintf("%s-%d", q.name, q.nextID),
			body: append([]byte(nil), b...),
		}
		ids[i] = m.id
		q.available = append(q.available, m)
	}
	q.wakeWaiters(len(bodies))
	return ids, nil
}

func (q *Queue) wakeWaiters(n int) {
	for n > 0 && len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.Released() {
			// The waiter's deadline latch already fired: its receiver
			// timed out and just hasn't resumed to remove itself yet.
			// Spending an arrival wake-up on it would leave a live
			// long-poller asleep until its full deadline, so prune it
			// without consuming the wake-up.
			continue
		}
		w.Release()
		n--
	}
}

// Receive returns up to max (≤ MaxBatch) messages, long-polling for up to
// wait if the queue is empty. Received messages become invisible for the
// queue's visibility timeout and reappear unless deleted — the at-least-once
// contract.
//
// Unlike one-shot requests, the service time is split around the poll so a
// long-polled message still pays the response leg after it arrives.
func (q *Queue) Receive(p *sim.Proc, caller *netsim.Node, max int, wait time.Duration) ([]Message, error) {
	if max <= 0 || max > MaxBatch {
		return nil, ErrBatchTooBig
	}
	fe := q.svc.fe
	service := fe.SampleOp()
	fe.InLeg(p, caller, service/2)
	deadline := p.Now() + wait
	for len(q.available) == 0 && p.Now() < deadline {
		w := &sim.Latch{}
		q.waiters = append(q.waiters, w)
		t := p.Kernel().AtTimer(deadline, w.Release)
		w.Wait(p)
		t.Stop() // woken by an arrival: drop the deadline event
		q.dropWaiter(w)
	}
	msgs := make([]Message, 0, max)
	for len(msgs) < max && len(q.available) > 0 {
		m := q.available[0]
		q.available = q.available[1:]
		if q.exhausted(m) {
			continue // moved to the dead-letter queue
		}
		q.nextRcpt++
		receipt := fmt.Sprintf("rcpt-%s-%d", q.name, q.nextRcpt)
		m.attempts++
		q.inflight[receipt] = m
		q.scheduleReappear(p.Kernel(), receipt, m)
		msgs = append(msgs, Message{
			ID:       m.id,
			Body:     m.body,
			Receipt:  receipt,
			Attempts: m.attempts,
		})
	}
	// The response is billed like a send: one request per started 64KB
	// chunk of returned payload (an empty poll still bills one request).
	var payload int64
	for _, m := range msgs {
		payload += int64(len(m.Body))
	}
	fe.Charge("sqs.request", billedRequests(payload), fe.Catalog().SQSPerRequest)
	fe.OutLeg(p, caller, service/2)
	return msgs, nil
}

func (q *Queue) dropWaiter(w *sim.Latch) {
	for i, cand := range q.waiters {
		if cand == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// scheduleReappear arms the in-flight message's visibility timer: when it
// fires the undeleted message becomes receivable again (the at-least-once
// contract). Delete cancels the timer, so a normally acknowledged message
// costs the kernel no dead event.
func (q *Queue) scheduleReappear(k *sim.Kernel, receipt string, m *stored) {
	m.vis = k.AfterTimer(q.visibility, func() {
		m.vis = nil
		delete(q.inflight, receipt)
		q.available = append(q.available, m)
		q.wakeWaiters(1)
	})
}

// ack removes a receipt's message from the in-flight set, cancelling its
// visibility timer. Unknown receipts (already expired and redelivered) are
// ignored, matching SQS.
func (q *Queue) ack(receipt string) {
	if m, ok := q.inflight[receipt]; ok {
		m.vis.Stop()
		m.vis = nil
		delete(q.inflight, receipt)
	}
}

// Delete acknowledges a delivery by receipt. A shed delete simply leaves
// the message in flight — it reappears at the visibility timeout and is
// redelivered, which is the at-least-once contract doing its job.
func (q *Queue) Delete(p *sim.Proc, caller *netsim.Node, receipt string) {
	if q.request(p, caller, 0) != nil {
		return
	}
	q.ack(receipt)
}

// DeleteBatch acknowledges up to MaxBatch deliveries in one request.
func (q *Queue) DeleteBatch(p *sim.Proc, caller *netsim.Node, receipts []string) error {
	if len(receipts) > MaxBatch {
		return ErrBatchTooBig
	}
	if err := q.request(p, caller, 0); err != nil {
		// Nothing acked: every receipt redelivers at visibility timeout.
		return err
	}
	for _, r := range receipts {
		q.ack(r)
	}
	return nil
}
