package queue

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k      *sim.Kernel
	svc    *Service
	q      *Queue
	caller *netsim.Node
	meter  *pricing.Meter
}

func newFixture(t *testing.T, visibility time.Duration) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(11)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	svc := NewService("sqs", net, 9, rng.Fork(), DefaultConfig(), pricing.Fall2018(), meter)
	caller := net.NewNode("caller", 0, netsim.Mbps(538))
	return &fixture{k: k, svc: svc, q: svc.CreateQueue("jobs", visibility), caller: caller, meter: meter}
}

func TestSendReceiveDelete(t *testing.T) {
	f := newFixture(t, 30*time.Second)
	var msgs []Message
	f.k.Spawn("c", func(p *sim.Proc) {
		if _, err := f.q.Send(p, f.caller, []byte("hello")); err != nil {
			t.Errorf("Send: %v", err)
		}
		var err error
		msgs, err = f.q.Receive(p, f.caller, 10, 0)
		if err != nil {
			t.Errorf("Receive: %v", err)
		}
		for _, m := range msgs {
			f.q.Delete(p, f.caller, m.Receipt)
		}
	})
	f.k.Run()
	if len(msgs) != 1 || string(msgs[0].Body) != "hello" || msgs[0].Attempts != 1 {
		t.Errorf("msgs = %+v", msgs)
	}
	if f.q.Depth() != 0 || f.q.InFlight() != 0 {
		t.Errorf("queue not drained: depth=%d inflight=%d", f.q.Depth(), f.q.InFlight())
	}
}

func TestReceiveBatchesUpToTen(t *testing.T) {
	f := newFixture(t, 30*time.Second)
	var got int
	f.k.Spawn("c", func(p *sim.Proc) {
		var bodies [][]byte
		for i := 0; i < 10; i++ {
			bodies = append(bodies, []byte{byte(i)})
		}
		if _, err := f.q.SendBatch(p, f.caller, bodies); err != nil {
			t.Errorf("SendBatch: %v", err)
		}
		f.q.Send(p, f.caller, []byte("extra"))
		msgs, _ := f.q.Receive(p, f.caller, 10, 0)
		got = len(msgs)
	})
	f.k.Run()
	if got != 10 {
		t.Errorf("Receive returned %d, want 10 (SQS batch cap)", got)
	}
}

func TestBatchLimits(t *testing.T) {
	f := newFixture(t, time.Second)
	var sendErr, recvErr, bigErr error
	f.k.Spawn("c", func(p *sim.Proc) {
		bodies := make([][]byte, 11)
		for i := range bodies {
			bodies[i] = []byte("x")
		}
		_, sendErr = f.q.SendBatch(p, f.caller, bodies)
		_, recvErr = f.q.Receive(p, f.caller, 11, 0)
		_, bigErr = f.q.Send(p, f.caller, make([]byte, MaxMessageSize+1))
	})
	f.k.Run()
	if !errors.Is(sendErr, ErrBatchTooBig) || !errors.Is(recvErr, ErrBatchTooBig) {
		t.Errorf("batch errors: %v, %v", sendErr, recvErr)
	}
	if !errors.Is(bigErr, ErrTooLarge) {
		t.Errorf("oversize error: %v", bigErr)
	}
}

func TestFIFOWithinSim(t *testing.T) {
	f := newFixture(t, 30*time.Second)
	var order []byte
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := byte(1); i <= 3; i++ {
			f.q.Send(p, f.caller, []byte{i})
		}
		for len(order) < 3 {
			msgs, _ := f.q.Receive(p, f.caller, 1, 0)
			for _, m := range msgs {
				order = append(order, m.Body[0])
				f.q.Delete(p, f.caller, m.Receipt)
			}
		}
	})
	f.k.Run()
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestLongPollWaitsForMessage(t *testing.T) {
	f := newFixture(t, 30*time.Second)
	var recvAt sim.Time
	var got int
	f.k.Spawn("consumer", func(p *sim.Proc) {
		msgs, _ := f.q.Receive(p, f.caller, 10, 20*time.Second)
		recvAt = p.Now()
		got = len(msgs)
	})
	f.k.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		f.q.Send(p, f.caller, []byte("late"))
	})
	f.k.Run()
	if got != 1 {
		t.Fatalf("long poll returned %d messages", got)
	}
	if recvAt < 5*time.Second || recvAt > 6*time.Second {
		t.Errorf("long poll returned at %v, want ~5s", recvAt)
	}
}

func TestLongPollTimesOutEmpty(t *testing.T) {
	f := newFixture(t, 30*time.Second)
	var recvAt sim.Time
	var got int
	f.k.Spawn("consumer", func(p *sim.Proc) {
		msgs, _ := f.q.Receive(p, f.caller, 10, 2*time.Second)
		recvAt = p.Now()
		got = len(msgs)
	})
	f.k.Run()
	if got != 0 {
		t.Fatalf("empty poll returned %d messages", got)
	}
	if recvAt < 2*time.Second || recvAt > 2*time.Second+100*time.Millisecond {
		t.Errorf("empty poll returned at %v, want ~2s", recvAt)
	}
}

func TestVisibilityTimeoutRedelivers(t *testing.T) {
	f := newFixture(t, 10*time.Second)
	var first, second []Message
	f.k.Spawn("c", func(p *sim.Proc) {
		f.q.Send(p, f.caller, []byte("work"))
		first, _ = f.q.Receive(p, f.caller, 1, 0)
		// Do not delete; wait past the visibility timeout.
		p.Sleep(15 * time.Second)
		second, _ = f.q.Receive(p, f.caller, 1, 0)
	})
	f.k.Run()
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("deliveries: %d, %d", len(first), len(second))
	}
	if second[0].ID != first[0].ID {
		t.Error("redelivery changed message identity")
	}
	if second[0].Attempts != 2 {
		t.Errorf("redelivered Attempts = %d, want 2", second[0].Attempts)
	}
	if second[0].Receipt == first[0].Receipt {
		t.Error("redelivery reused receipt handle")
	}
}

func TestDeleteBeforeTimeoutPreventsRedelivery(t *testing.T) {
	f := newFixture(t, 5*time.Second)
	var redelivered int
	f.k.Spawn("c", func(p *sim.Proc) {
		f.q.Send(p, f.caller, []byte("once"))
		msgs, _ := f.q.Receive(p, f.caller, 1, 0)
		f.q.Delete(p, f.caller, msgs[0].Receipt)
		p.Sleep(20 * time.Second)
		again, _ := f.q.Receive(p, f.caller, 1, 0)
		redelivered = len(again)
	})
	f.k.Run()
	if redelivered != 0 {
		t.Errorf("deleted message redelivered %d times", redelivered)
	}
}

func TestStaleTimerDoesNotDuplicateAfterRedelivery(t *testing.T) {
	// Receive, let it expire, receive again, then delete: the first
	// (stale) visibility timer must not resurrect the message.
	f := newFixture(t, 2*time.Second)
	var finalDepth int
	f.k.Spawn("c", func(p *sim.Proc) {
		f.q.Send(p, f.caller, []byte("x"))
		f.q.Receive(p, f.caller, 1, 0)
		p.Sleep(3 * time.Second) // expires, redelivered to queue
		msgs, _ := f.q.Receive(p, f.caller, 1, 0)
		f.q.Delete(p, f.caller, msgs[0].Receipt)
		p.Sleep(10 * time.Second)
		finalDepth = f.q.Depth() + f.q.InFlight()
	})
	f.k.Run()
	if finalDepth != 0 {
		t.Errorf("message duplicated: %d left in queue", finalDepth)
	}
}

func TestRequestMetering(t *testing.T) {
	f := newFixture(t, time.Second)
	f.k.Spawn("c", func(p *sim.Proc) {
		f.q.Send(p, f.caller, []byte("a"))                             // 1 request
		f.q.SendBatch(p, f.caller, [][]byte{[]byte("b"), []byte("c")}) // 1 request
		msgs, _ := f.q.Receive(p, f.caller, 10, 0)                     // 1 request
		var receipts []string
		for _, m := range msgs {
			receipts = append(receipts, m.Receipt)
		}
		f.q.DeleteBatch(p, f.caller, receipts) // 1 request
	})
	f.k.Run()
	if got := f.meter.Count("sqs.request"); got != 4 {
		t.Errorf("sqs.request count = %d, want 4", got)
	}
}

func TestLargePayloadBilledPerChunk(t *testing.T) {
	f := newFixture(t, time.Second)
	f.k.Spawn("c", func(p *sim.Proc) {
		f.q.Send(p, f.caller, make([]byte, 200*1024)) // 4 x 64KB chunks
	})
	f.k.Run()
	if got := f.meter.Count("sqs.request"); got != 4 {
		t.Errorf("200KB send billed %d requests, want 4", got)
	}
}

// TestReceiveBillsResponsePerChunk: the receive response pays the same
// 64KB-chunk billing as the send side; a flat per-call charge would
// undercount large-message consumers. Small (~1KB) serving messages stay at
// one request per receive, which is what keeps the 57x serving-cost ratio
// in tolerance (asserted by core's servingcost test and golden trace).
func TestReceiveBillsResponsePerChunk(t *testing.T) {
	f := newFixture(t, time.Second)
	f.k.Spawn("c", func(p *sim.Proc) {
		f.q.Send(p, f.caller, make([]byte, 200*1024)) // 4 x 64KB chunks
		f.q.Receive(p, f.caller, 1, 0)                // response carries the same 4
	})
	f.k.Run()
	if got := f.meter.Count("sqs.request"); got != 8 {
		t.Errorf("200KB send+receive billed %d requests, want 8 (4 each way)", got)
	}
}

// TestArrivalWakeUpSkipsTimedOutWaiter reproduces the lost-wake-up race
// with two staggered long-pollers: receiver A's wait deadline fires (its
// latch releases) in the same instant a message arrives, before A's process
// has resumed and removed itself from the waiters list. The arrival's
// wake-up must go to the live receiver B, not be absorbed by A's dead latch
// — otherwise B sleeps until its full deadline even though work arrived.
func TestArrivalWakeUpSkipsTimedOutWaiter(t *testing.T) {
	f := newFixture(t, 30*time.Second)
	f.k.Spawn("A", func(p *sim.Proc) {
		f.q.Receive(p, f.caller, 1, time.Second)
	})
	f.k.RunUntil(sim.Time(100 * time.Millisecond)) // A is parked
	f.k.Spawn("B", func(p *sim.Proc) {
		f.q.Receive(p, f.caller, 1, 20*time.Second)
	})
	f.k.RunUntil(sim.Time(500 * time.Millisecond)) // B is parked behind A
	if len(f.q.waiters) != 2 {
		t.Fatalf("waiters = %d, want 2 staggered long-pollers", len(f.q.waiters))
	}
	deadA, liveB := f.q.waiters[0], f.q.waiters[1]
	f.k.At(sim.Time(500*time.Millisecond), func() {
		deadA.Release() // what A's deadline timer does
		// What a message arrival does, before A has resumed/dropped:
		f.q.available = append(f.q.available, &stored{id: "m", body: []byte("x")})
		f.q.wakeWaiters(1)
		if !liveB.Released() {
			t.Error("arrival wake-up absorbed by timed-out waiter; live long-poller left sleeping")
		}
	})
	f.k.Run()
}

func TestCreateQueueIdempotent(t *testing.T) {
	f := newFixture(t, time.Second)
	if f.svc.CreateQueue("jobs", time.Minute) != f.q {
		t.Error("CreateQueue with same name returned a different queue")
	}
}

// Calibration: an immediate receive plus a send from EC2 should take ~10.6ms
// (two ~5.3ms request round trips), so that the serving case study's
// send + long-poll response + result send lands at the paper's 13ms batch.
func TestOpLatencyCalibration(t *testing.T) {
	f := newFixture(t, 30*time.Second)
	const trials = 500
	var total sim.Time
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < trials; i++ {
			f.q.Send(p, f.caller, []byte("ping"))
			start := p.Now()
			msgs, _ := f.q.Receive(p, f.caller, 10, time.Second)
			f.q.Send(p, f.caller, []byte("result"))
			total += p.Now() - start
			for _, m := range msgs {
				f.q.Delete(p, f.caller, m.Receipt)
			}
		}
	})
	f.k.Run()
	mean := time.Duration(int64(total) / trials)
	if mean < 9500*time.Microsecond || mean > 11800*time.Microsecond {
		t.Errorf("receive+send mean = %v, want ~10.6ms", mean)
	}
}
