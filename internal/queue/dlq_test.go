package queue

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRedrivePolicyValidation(t *testing.T) {
	f := newFixture(t, time.Second)
	dlq := f.svc.CreateQueue("dlq", time.Minute)
	if err := f.q.SetRedrivePolicy(RedrivePolicy{MaxReceives: 0, DeadLetter: dlq}); err == nil {
		t.Error("MaxReceives 0 accepted")
	}
	if err := f.q.SetRedrivePolicy(RedrivePolicy{MaxReceives: 3, DeadLetter: f.q}); err == nil {
		t.Error("self-redrive accepted")
	}
	if err := f.q.SetRedrivePolicy(RedrivePolicy{MaxReceives: 3, DeadLetter: dlq}); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if err := f.q.SetRedrivePolicy(RedrivePolicy{}); err != nil {
		t.Errorf("clearing policy failed: %v", err)
	}
}

func TestPoisonMessageMovesToDLQ(t *testing.T) {
	f := newFixture(t, 2*time.Second)
	dlq := f.svc.CreateQueue("dlq", time.Minute)
	if err := f.q.SetRedrivePolicy(RedrivePolicy{MaxReceives: 2, DeadLetter: dlq}); err != nil {
		t.Fatal(err)
	}
	deliveries := 0
	f.k.Spawn("consumer", func(p *sim.Proc) {
		f.q.Send(p, f.caller, []byte("poison"))
		// Receive and never delete: attempts 1, 2 allowed, then DLQ.
		for i := 0; i < 4; i++ {
			msgs, _ := f.q.Receive(p, f.caller, 1, 0)
			deliveries += len(msgs)
			p.Sleep(3 * time.Second) // past visibility each time
		}
	})
	f.k.Run()
	if deliveries != 2 {
		t.Errorf("deliveries = %d, want exactly MaxReceives (2)", deliveries)
	}
	if f.q.DeadLettered() != 1 {
		t.Errorf("DeadLettered = %d, want 1", f.q.DeadLettered())
	}
	if dlq.Depth() != 1 {
		t.Errorf("DLQ depth = %d, want 1", dlq.Depth())
	}
}

func TestDLQPreservesIdentityAndAttempts(t *testing.T) {
	f := newFixture(t, time.Second)
	dlq := f.svc.CreateQueue("dlq", time.Minute)
	f.q.SetRedrivePolicy(RedrivePolicy{MaxReceives: 1, DeadLetter: dlq})
	var origID string
	var dead []Message
	f.k.Spawn("c", func(p *sim.Proc) {
		origID, _ = f.q.Send(p, f.caller, []byte("bad"))
		f.q.Receive(p, f.caller, 1, 0) // attempt 1, never deleted
		p.Sleep(2 * time.Second)       // reappears
		f.q.Receive(p, f.caller, 1, 0) // exhausted -> DLQ, nothing delivered
		dead, _ = dlq.Receive(p, f.caller, 1, 0)
	})
	f.k.Run()
	if len(dead) != 1 {
		t.Fatalf("DLQ delivered %d messages", len(dead))
	}
	if dead[0].ID != origID {
		t.Errorf("DLQ message id = %s, want %s", dead[0].ID, origID)
	}
	if string(dead[0].Body) != "bad" {
		t.Errorf("DLQ body = %q", dead[0].Body)
	}
}

func TestHealthyMessagesUnaffectedByRedrive(t *testing.T) {
	f := newFixture(t, time.Second)
	dlq := f.svc.CreateQueue("dlq", time.Minute)
	f.q.SetRedrivePolicy(RedrivePolicy{MaxReceives: 2, DeadLetter: dlq})
	processed := 0
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			f.q.Send(p, f.caller, []byte{byte(i)})
		}
		for processed < 5 {
			msgs, _ := f.q.Receive(p, f.caller, 10, time.Second)
			for _, m := range msgs {
				f.q.Delete(p, f.caller, m.Receipt)
				processed++
			}
		}
	})
	f.k.Run()
	if processed != 5 || f.q.DeadLettered() != 0 || dlq.Depth() != 0 {
		t.Errorf("processed=%d deadlettered=%d dlq=%d", processed, f.q.DeadLettered(), dlq.Depth())
	}
}

func TestDLQWakesItsWaiters(t *testing.T) {
	f := newFixture(t, time.Second)
	dlq := f.svc.CreateQueue("dlq", time.Minute)
	f.q.SetRedrivePolicy(RedrivePolicy{MaxReceives: 1, DeadLetter: dlq})
	var got []Message
	f.k.Spawn("dlq-watcher", func(p *sim.Proc) {
		got, _ = dlq.Receive(p, f.caller, 10, time.Minute) // long poll
	})
	f.k.Spawn("producer", func(p *sim.Proc) {
		f.q.Send(p, f.caller, []byte("bad"))
		f.q.Receive(p, f.caller, 1, 0)
		p.Sleep(2 * time.Second)
		f.q.Receive(p, f.caller, 1, 0) // pushes to DLQ
	})
	f.k.Run()
	if len(got) != 1 {
		t.Errorf("DLQ long-poller got %d messages, want 1", len(got))
	}
}
