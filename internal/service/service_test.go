package service

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

func newFrontend(t *testing.T, concurrency int) (*sim.Kernel, *Frontend, *netsim.Node, *pricing.Meter) {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(11)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	fe := NewFrontend("svc", net, 9, rng.Fork(), simrand.Const(4*time.Millisecond),
		netsim.Gbps(100), pricing.Fall2018(), meter)
	if concurrency > 0 {
		fe.LimitConcurrency(concurrency)
	}
	caller := net.NewNode("caller", 0, netsim.Gbps(10))
	return k, fe, caller, meter
}

func TestRoundTripTimingAndStats(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	var elapsed sim.Time
	k.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		fe.RoundTrip(p, caller, 0)
		elapsed = p.Now() - start
	})
	k.Run()
	// Cross-rack: 550-710µs each way plus a constant 4ms service time.
	lo := sim.Time(4*time.Millisecond + 2*550*time.Microsecond)
	hi := sim.Time(4*time.Millisecond + 2*710*time.Microsecond)
	if elapsed < lo || elapsed > hi {
		t.Errorf("round trip took %v, want within [%v, %v]", elapsed, lo, hi)
	}
	st := fe.Stats()
	if st.Requests != 1 || st.Busy != 4*time.Millisecond {
		t.Errorf("stats = %+v, want 1 request / 4ms busy", st)
	}
}

func TestRoundTripExtraCountsAsBusy(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	k.Spawn("c", func(p *sim.Proc) {
		fe.RoundTrip(p, caller, 2*time.Millisecond)
	})
	k.Run()
	if st := fe.Stats(); st.Busy != 6*time.Millisecond {
		t.Errorf("busy = %v, want 6ms (service + extra)", st.Busy)
	}
}

func TestSplitLegsMatchRoundTrip(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	var split sim.Time
	k.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		svc := fe.SampleOp()
		fe.InLeg(p, caller, svc/2)
		fe.OutLeg(p, caller, svc/2)
		split = p.Now() - start
	})
	k.Run()
	lo := sim.Time(4*time.Millisecond + 2*550*time.Microsecond)
	hi := sim.Time(4*time.Millisecond + 2*710*time.Microsecond)
	if split < lo || split > hi {
		t.Errorf("split round trip took %v, want within [%v, %v]", split, lo, hi)
	}
}

func TestLimitConcurrencyQueues(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 1)
	finish := make([]sim.Time, 3)
	for i := 0; i < 3; i++ {
		k.Spawn("c", func(p *sim.Proc) {
			fe.RoundTrip(p, caller, 0)
			finish[i] = p.Now()
		})
	}
	k.Run()
	// Three constant 4ms service times through one slot must serialize:
	// last completion >= 12ms of pure service time.
	last := finish[0]
	for _, f := range finish[1:] {
		if f > last {
			last = f
		}
	}
	if last < sim.Time(12*time.Millisecond) {
		t.Errorf("3 requests through 1 slot finished by %v, want >= 12ms", last)
	}
	if fe.QueueDepth() != 0 {
		t.Errorf("queue depth after drain = %d", fe.QueueDepth())
	}
}

func TestChargeFlowsToMeter(t *testing.T) {
	_, fe, _, meter := newFrontend(t, 0)
	fe.Charge("x.req", 3, 2)
	fe.ChargeCost("x.lump", 5)
	if meter.Count("x.req") != 3 || meter.Cost("x.req") != 6 {
		t.Errorf("charge: count=%d cost=%v", meter.Count("x.req"), meter.Cost("x.req"))
	}
	if meter.Cost("x.lump") != 5 {
		t.Errorf("lump cost = %v", meter.Cost("x.lump"))
	}
}
