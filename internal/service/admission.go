package service

import (
	"errors"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// ErrShed is returned by RoundTripErr when the front end's admission queue
// is full: the request is rejected on arrival, after paying only the
// network propagation there and back. Shedding costs the server nothing —
// that asymmetry (cheap rejection vs expensive queued-then-abandoned work)
// is the whole point of admission control.
var ErrShed = errors.New("service: overloaded, request shed")

// ErrJailed is returned by RoundTripErr when the caller is currently
// banned by the front end's rate-window jail.
var ErrJailed = errors.New("service: caller jailed for rate abuse")

// Overloaded reports whether err is a server-side admission rejection
// (shed or jailed) — the class of errors a well-behaved client should back
// off from rather than hammer through.
func Overloaded(err error) bool {
	return errors.Is(err, ErrShed) || errors.Is(err, ErrJailed)
}

// AdmissionConfig parameterizes a front end's admission control. The zero
// value disables everything (the default; preserves prior behavior bit for
// bit).
type AdmissionConfig struct {
	// MaxQueue bounds how many requests may wait for a service slot; a
	// request arriving with the queue full is shed immediately. 0 disables
	// shedding (unbounded queue). Requires LimitConcurrency — without
	// finite slots there is no queue to bound.
	MaxQueue int
	// JailWindow / JailLimit: a caller issuing more than JailLimit
	// requests within one JailWindow is banned. Both must be set to enable
	// the jail.
	JailWindow time.Duration
	JailLimit  int
	// JailFor is how long a ban lasts (default: one JailWindow).
	JailFor time.Duration
}

// jailEntry is one caller's rate-window state.
type jailEntry struct {
	winStart time.Duration // start of the current counting window
	count    int           // requests seen in the window
	until    time.Duration // banned until (0 = not banned)
}

type admission struct {
	cfg  AdmissionConfig
	jail map[*netsim.Node]*jailEntry
}

// SetAdmission configures shedding and the per-caller jail. Call before
// traffic starts; a zero cfg turns admission control back off.
func (f *Frontend) SetAdmission(cfg AdmissionConfig) {
	if cfg == (AdmissionConfig{}) {
		f.adm = nil
		return
	}
	if cfg.JailFor <= 0 {
		cfg.JailFor = cfg.JailWindow
	}
	f.adm = &admission{cfg: cfg, jail: make(map[*netsim.Node]*jailEntry)}
}

// SetSlowdown scales this front end's sampled service times by factor
// (chaos hook: a degraded shard serves every request factor× slower).
// factor 1 restores normal speed. The extra time is accounted in
// Stats.Busy like real work — a slow server is busy, not idle.
func (f *Frontend) SetSlowdown(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	f.slow = factor
}

// admit runs the arrival-time admission checks (jail, then shed) at now.
// It returns nil when the request may proceed to the service queue.
func (f *Frontend) admit(p *sim.Proc, caller *netsim.Node) error {
	a := f.adm
	if a == nil {
		return nil
	}
	now := p.Now()
	if a.cfg.JailWindow > 0 && a.cfg.JailLimit > 0 {
		e := a.jail[caller]
		if e == nil {
			e = &jailEntry{winStart: now}
			a.jail[caller] = e
		}
		if e.until > now {
			f.stats.Jailed++
			return ErrJailed
		}
		if now-e.winStart >= a.cfg.JailWindow {
			e.winStart = now
			e.count = 0
		}
		e.count++
		if e.count > a.cfg.JailLimit {
			// Over the rate limit: ban the caller and reject this request
			// too. The window restarts when the ban lifts.
			e.until = now + a.cfg.JailFor
			e.winStart = e.until
			e.count = 0
			f.stats.Jailed++
			return ErrJailed
		}
	}
	if a.cfg.MaxQueue > 0 && f.slots != nil &&
		f.slots.InUse() == f.slots.Capacity() && f.slots.Waiting() >= a.cfg.MaxQueue {
		f.stats.Shed++
		return ErrShed
	}
	return nil
}
