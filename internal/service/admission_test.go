package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestShedOnFullQueue(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 1)
	fe.SetAdmission(AdmissionConfig{MaxQueue: 1})
	errs := make([]error, 3)
	took := make([]sim.Time, 3)
	for i := 0; i < 3; i++ {
		k.Spawn("c", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 200 * time.Microsecond)
			start := p.Now()
			errs[i] = fe.RoundTripErr(p, caller, 0)
			took[i] = p.Now() - start
		})
	}
	k.Run()
	if errs[0] != nil || errs[1] != nil {
		t.Errorf("first two requests errored: %v, %v (want served)", errs[0], errs[1])
	}
	if !errors.Is(errs[2], ErrShed) {
		t.Errorf("third request err = %v, want ErrShed (queue full)", errs[2])
	}
	if !Overloaded(errs[2]) {
		t.Error("Overloaded(ErrShed) = false")
	}
	// A shed request pays propagation only — no service time, no queueing.
	if took[2] > 2*time.Millisecond {
		t.Errorf("shed request took %v, want < 2ms (propagation only)", took[2])
	}
	st := fe.Stats()
	if st.Shed != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v, want Shed=1, Requests=2", st)
	}
}

func TestShedRequiresFiniteSlots(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0) // unlimited concurrency
	fe.SetAdmission(AdmissionConfig{MaxQueue: 1})
	var err error
	for i := 0; i < 4; i++ {
		k.Spawn("c", func(p *sim.Proc) {
			if e := fe.RoundTripErr(p, caller, 0); e != nil {
				err = e
			}
		})
	}
	k.Run()
	if err != nil {
		t.Errorf("unlimited front end shed a request: %v", err)
	}
}

func TestJailBansHotCaller(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	fe.SetAdmission(AdmissionConfig{JailWindow: 100 * time.Millisecond, JailLimit: 5, JailFor: time.Second})
	var served, jailed int
	var afterBan error
	k.Spawn("hot", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := fe.RoundTripErr(p, caller, 0); err == nil {
				served++
			} else if errors.Is(err, ErrJailed) {
				jailed++
			} else {
				t.Errorf("request %d: unexpected err %v", i, err)
			}
		}
		// The ban must lift after JailFor.
		p.Sleep(1200 * time.Millisecond)
		afterBan = fe.RoundTripErr(p, caller, 0)
	})
	k.Run()
	if served != 5 || jailed != 5 {
		t.Errorf("served=%d jailed=%d, want 5/5 (limit 5, then banned)", served, jailed)
	}
	if afterBan != nil {
		t.Errorf("request after ban expiry = %v, want served", afterBan)
	}
	if st := fe.Stats(); st.Jailed != 5 {
		t.Errorf("stats.Jailed = %d, want 5", st.Jailed)
	}
}

func TestJailIsPerCaller(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	other := fe.Net().NewNode("other", 0, netsim.Gbps(10))
	fe.SetAdmission(AdmissionConfig{JailWindow: 100 * time.Millisecond, JailLimit: 2, JailFor: time.Second})
	var hotErr, bystanderErr error
	k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			hotErr = fe.RoundTripErr(p, caller, 0)
		}
		bystanderErr = fe.RoundTripErr(p, other, 0)
	})
	k.Run()
	if !errors.Is(hotErr, ErrJailed) {
		t.Errorf("hot caller's 3rd request = %v, want ErrJailed", hotErr)
	}
	if bystanderErr != nil {
		t.Errorf("bystander request = %v, want served (jail is per caller)", bystanderErr)
	}
}

func TestJailWindowResets(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	fe.SetAdmission(AdmissionConfig{JailWindow: 50 * time.Millisecond, JailLimit: 3, JailFor: time.Second})
	var errs []error
	k.Spawn("c", func(p *sim.Proc) {
		// 3 requests per window at a polite pace: never banned.
		for burst := 0; burst < 3; burst++ {
			for i := 0; i < 3; i++ {
				errs = append(errs, fe.RoundTripErr(p, caller, 0))
			}
			p.Sleep(60 * time.Millisecond)
		}
	})
	k.Run()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d = %v, want served (under the per-window limit)", i, err)
		}
	}
}

func TestVoidRoundTripPanicsOnRejection(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	fe.SetAdmission(AdmissionConfig{JailWindow: time.Second, JailLimit: 1})
	panicked := false
	k.Spawn("c", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		fe.RoundTrip(p, caller, 0)
		fe.RoundTrip(p, caller, 0) // over the limit: must panic, not silently succeed
	})
	k.Run()
	if !panicked {
		t.Error("void RoundTrip swallowed an admission rejection")
	}
}

func TestSetAdmissionZeroDisables(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	fe.SetAdmission(AdmissionConfig{JailWindow: time.Second, JailLimit: 1})
	fe.SetAdmission(AdmissionConfig{})
	var err error
	k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if e := fe.RoundTripErr(p, caller, 0); e != nil {
				err = e
			}
		}
	})
	k.Run()
	if err != nil {
		t.Errorf("request rejected after admission disabled: %v", err)
	}
}

func TestSlowdownScalesServiceTime(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 0)
	fe.SetSlowdown(10)
	var elapsed sim.Time
	k.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		fe.RoundTrip(p, caller, 0)
		elapsed = p.Now() - start
	})
	k.Run()
	// 10× the constant 4ms service time, plus two sub-ms propagation legs.
	if elapsed < 40*time.Millisecond || elapsed > 42*time.Millisecond {
		t.Errorf("slowed round trip took %v, want ~40ms service", elapsed)
	}
	if st := fe.Stats(); st.Busy != 40*time.Millisecond {
		t.Errorf("busy = %v, want 40ms (slowdown is real work)", st.Busy)
	}
	fe.SetSlowdown(1)
	k.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		fe.RoundTrip(p, caller, 0)
		elapsed = p.Now() - start
	})
	k.Run()
	if elapsed > 6*time.Millisecond {
		t.Errorf("round trip after reset took %v, want ~4ms", elapsed)
	}
}
