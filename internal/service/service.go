// Package service is the shared front-end fabric for the simulated managed
// services (kvstore, objectstore, queue). Each service front end owns the
// same four things — a network endpoint, a deterministic service-time
// stream, pricing/metering hooks, and (optionally) a finite number of
// request slots — and before this package existed each service reimplemented
// them with copy-pasted round-trip boilerplate.
//
// A Frontend models one endpoint node: requests pay a one-way propagation
// delay in, a sampled op-latency service time, and a one-way delay back.
// Services that split their service time around a blocking poll (SQS long
// polling) use SampleOp with the InLeg/OutLeg halves instead of RoundTrip.
//
// With LimitConcurrency set, the front end becomes a finite-capacity
// server: at most n requests are in service simultaneously and the rest
// queue FIFO. This is what gives a single partition a real throughput
// ceiling — and what makes horizontal sharding (multiple frontends behind
// one logical service) show up as aggregate capacity in the region-scale
// benchmark. The default (unlimited) preserves the calibrated Table-1
// behavior bit for bit.
package service

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// Stats summarizes a front end's request traffic (the hot-shard surface).
type Stats struct {
	// Requests counts service-time samples, i.e. API round trips served.
	Requests int64
	// Busy is the cumulative service time spent on those requests.
	Busy time.Duration
	// Shed counts requests rejected on arrival because the admission queue
	// was full; Jailed counts requests rejected by the rate-window ban
	// list. Both are zero unless SetAdmission enables them.
	Shed, Jailed int64
}

// Frontend is one service endpoint: a node on the network, an op-latency
// distribution sampled from its own RNG stream, and metering hooks.
type Frontend struct {
	name    string
	net     *netsim.Network
	node    *netsim.Node
	rng     *simrand.RNG
	opLat   simrand.Dist
	catalog *pricing.Catalog
	meter   *pricing.Meter
	slots   *sim.Resource // nil = unlimited concurrency
	adm     *admission    // nil = no admission control
	slow    float64       // chaos service-time multiplier; <=0 or 1 = normal
	stats   Stats
}

// NewFrontend registers a front-end node named name in rack rack with a NIC
// of capacity nic. Service times are drawn from opLat using rng; charges go
// to meter at catalog prices.
func NewFrontend(name string, net *netsim.Network, rack int, rng *simrand.RNG,
	opLat simrand.Dist, nic netsim.Bps, catalog *pricing.Catalog,
	meter *pricing.Meter) *Frontend {
	return &Frontend{
		name:    name,
		net:     net,
		node:    net.NewNode(name, rack, nic),
		rng:     rng,
		opLat:   opLat,
		catalog: catalog,
		meter:   meter,
	}
}

// LimitConcurrency caps how many requests may be in service at once; excess
// requests queue FIFO at the front end. n <= 0 restores the unlimited
// default. Call before traffic starts.
//
// The cap applies to RoundTrip only. The split-leg path (SampleOp +
// InLeg/OutLeg) deliberately bypasses it: a long poll parks at the front
// end for up to its wait time, and counting that parked time against a
// service slot would let idle pollers starve real requests.
func (f *Frontend) LimitConcurrency(n int) {
	if n <= 0 {
		f.slots = nil
		return
	}
	f.slots = sim.NewResource(n)
}

// Name returns the front end's node name.
func (f *Frontend) Name() string { return f.name }

// Node returns the front end's network endpoint.
func (f *Frontend) Node() *netsim.Node { return f.node }

// Net returns the network the front end is attached to.
func (f *Frontend) Net() *netsim.Network { return f.net }

// RNG returns the front end's private random stream (for service-side
// probabilistic behavior such as stale-replica reads).
func (f *Frontend) RNG() *simrand.RNG { return f.rng }

// Catalog returns the price catalog charges are computed from.
func (f *Frontend) Catalog() *pricing.Catalog { return f.catalog }

// Meter returns the cost meter charges accumulate on.
func (f *Frontend) Meter() *pricing.Meter { return f.meter }

// Stats returns the front end's traffic counters.
func (f *Frontend) Stats() Stats { return f.stats }

// QueueDepth reports how many requests are waiting for a service slot
// (always 0 without LimitConcurrency).
func (f *Frontend) QueueDepth() int {
	if f.slots == nil {
		return 0
	}
	return f.slots.Waiting()
}

// Charge records count units of item at unitCost each on the meter.
func (f *Frontend) Charge(item string, count int64, unitCost pricing.USD) {
	f.meter.Charge(item, count, unitCost)
}

// ChargeCost records a lump-sum cost against item.
func (f *Frontend) ChargeCost(item string, cost pricing.USD) {
	f.meter.ChargeCost(item, cost)
}

// SampleOp draws one service time and accounts it to the front end's stats.
// Requests that split their service time around a poll (long polling) call
// this once and spend the halves via InLeg/OutLeg. A chaos SetSlowdown
// factor scales the sample (and the Busy accounting) here, so both the
// round-trip and split-leg paths degrade together.
func (f *Frontend) SampleOp() time.Duration {
	svc := f.opLat.Sample(f.rng)
	if f.slow > 0 && f.slow != 1 {
		svc = time.Duration(float64(svc) * f.slow)
	}
	f.stats.Requests++
	f.stats.Busy += svc
	return svc
}

// RoundTrip models one complete request from caller: propagation to the
// front end, service time (plus extra, e.g. per-item scan cost), and
// propagation back. With LimitConcurrency set, the service-time portion
// occupies one of the finite slots.
//
// RoundTrip cannot report admission rejections; enabling SetAdmission on a
// front end whose callers use this void path is a configuration error and
// panics at the first rejection. Use RoundTripErr on admission-controlled
// services.
func (f *Frontend) RoundTrip(p *sim.Proc, caller *netsim.Node, extra time.Duration) {
	if err := f.RoundTripErr(p, caller, extra); err != nil {
		panic("service: " + f.name + ": admission rejection on the void RoundTrip path (caller must use RoundTripErr): " + err.Error())
	}
}

// RoundTripErr is RoundTrip with admission control: after paying the
// inbound propagation delay, the request passes the jail and shed checks
// (see SetAdmission) and is rejected with ErrJailed/ErrShed — paying only
// the propagation back, never a service slot or a service-time sample — or
// proceeds exactly as RoundTrip. Without SetAdmission it never returns an
// error.
func (f *Frontend) RoundTripErr(p *sim.Proc, caller *netsim.Node, extra time.Duration) error {
	p.Sleep(f.net.OneWayDelay(caller, f.node))
	if err := f.admit(p, caller); err != nil {
		p.Sleep(f.net.OneWayDelay(f.node, caller))
		return err
	}
	if f.slots != nil {
		f.slots.Acquire(p)
	}
	svc := f.SampleOp()
	f.stats.Busy += extra
	p.Sleep(svc + extra)
	if f.slots != nil {
		f.slots.Release()
	}
	p.Sleep(f.net.OneWayDelay(f.node, caller))
	return nil
}

// InLeg spends the request leg of a split round trip: propagation from the
// caller plus the given share of service time, as one sleep.
func (f *Frontend) InLeg(p *sim.Proc, caller *netsim.Node, service time.Duration) {
	p.Sleep(f.net.OneWayDelay(caller, f.node) + service)
}

// OutLeg spends the response leg of a split round trip: the remaining
// service time plus propagation back to the caller, as one sleep.
func (f *Frontend) OutLeg(p *sim.Proc, caller *netsim.Node, service time.Duration) {
	p.Sleep(service + f.net.OneWayDelay(f.node, caller))
}
