package service

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// Staggered arrivals through a single slot must be served in arrival
// order: the sim.Resource wait queue is FIFO, and nothing on the
// round-trip path can overtake.
func TestLimitConcurrencyFIFOOrder(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 1)
	const n = 6
	var order []int
	for i := 0; i < n; i++ {
		k.Spawn("c", func(p *sim.Proc) {
			// 1ms stagger dwarfs the 550-710µs propagation jitter, so
			// arrival order is the spawn order.
			p.Sleep(sim.Time(i) * time.Millisecond)
			fe.RoundTrip(p, caller, 0)
			order = append(order, i)
		})
	}
	k.Run()
	if len(order) != n {
		t.Fatalf("served %d requests, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v, want FIFO 0..%d", order, n-1)
		}
	}
}

// QueueDepth must track the number of waiters exactly as the single slot
// drains a backlog.
func TestQueueDepthTracksBacklog(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 1)
	for i := 0; i < 4; i++ {
		k.Spawn("c", func(p *sim.Proc) {
			fe.RoundTrip(p, caller, 0)
		})
	}
	// All four arrive within ~0.7ms; service is a constant 4ms, so
	// completions land near 4.6ms, 8.6ms, 12.6ms, 16.6ms. Probe between
	// them.
	want := map[time.Duration]int{
		2 * time.Millisecond:  3,
		6 * time.Millisecond:  2,
		10 * time.Millisecond: 1,
		14 * time.Millisecond: 0,
	}
	k.Spawn("observer", func(p *sim.Proc) {
		for _, at := range []time.Duration{2, 6, 10, 14} {
			at *= time.Millisecond
			p.Sleep(at - p.Now())
			if got := fe.QueueDepth(); got != want[at] {
				t.Errorf("QueueDepth at %v = %d, want %d", at, got, want[at])
			}
		}
	})
	k.Run()
}

// The split-leg path (SampleOp + InLeg/OutLeg) must bypass the
// concurrency cap: a long poll parked at the front end may not hold a
// service slot, and conversely a busy slot may not delay a poller.
func TestSplitLegBypassesConcurrencyCap(t *testing.T) {
	k, fe, caller, _ := newFrontend(t, 1)
	var pollerDone, occupierDone sim.Time
	k.Spawn("occupier", func(p *sim.Proc) {
		fe.RoundTrip(p, caller, 20*time.Millisecond) // slot busy ~24ms
		occupierDone = p.Now()
	})
	k.Spawn("poller", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond) // start while the slot is held
		svc := fe.SampleOp()
		fe.InLeg(p, caller, svc/2)
		if got := fe.QueueDepth(); got != 0 {
			t.Errorf("split-leg request counted as a waiter: QueueDepth = %d", got)
		}
		fe.OutLeg(p, caller, svc/2)
		pollerDone = p.Now()
	})
	k.Run()
	if pollerDone >= occupierDone {
		t.Errorf("split-leg poller finished at %v, after the slot holder (%v) — cap not bypassed",
			pollerDone, occupierDone)
	}
	// ~2ms start + 4ms service + two propagation legs.
	if pollerDone > 8*time.Millisecond {
		t.Errorf("poller took until %v, want ~7.3ms (never queued)", pollerDone)
	}
}
