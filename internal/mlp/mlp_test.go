package mlp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func smallConfig() Config {
	return Config{Input: 4, Hidden: []int{6, 5}, Output: 2, Seed: 3}
}

func TestNumParams(t *testing.T) {
	n := New(smallConfig())
	// (4*6+6) + (6*5+5) + (5*2+2) = 30 + 35 + 12 = 77
	if got := n.NumParams(); got != 77 {
		t.Errorf("NumParams = %d, want 77", got)
	}
}

func TestPaperConfigShape(t *testing.T) {
	cfg := PaperConfig()
	n := New(cfg)
	// 6787*10+10 + 10*10+10 + 10*1+1 = 67880 + 110 + 11 = 68001
	if got := n.NumParams(); got != 68001 {
		t.Errorf("paper model params = %d, want 68001", got)
	}
	out := n.Forward(make([]float64, cfg.Input))
	if len(out) != 1 {
		t.Errorf("output size = %d, want 1", len(out))
	}
}

func TestForwardDeterministic(t *testing.T) {
	a, b := New(smallConfig()), New(smallConfig())
	x := []float64{0.1, -0.2, 0.3, 0.4}
	oa, ob := a.Forward(x), b.Forward(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("same-seed networks differ: %v vs %v", oa, ob)
		}
	}
}

func TestForwardWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size did not panic")
		}
	}()
	New(smallConfig()).Forward([]float64{1})
}

// The critical correctness test: analytic gradients must match numerical
// differentiation to high precision.
func TestGradientCheck(t *testing.T) {
	n := New(smallConfig())
	rng := simrand.New(9)
	const batch = 3
	X := make([][]float64, batch)
	Y := make([][]float64, batch)
	for i := range X {
		X[i] = make([]float64, 4)
		Y[i] = make([]float64, 2)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		for j := range Y[i] {
			Y[i][j] = rng.NormFloat64()
		}
	}
	n.AccumulateGradients(X, Y)
	analytic := n.gradientsFlat()
	params := n.paramsFlat()
	const eps = 1e-6
	for i, p := range params {
		orig := *p
		*p = orig + eps
		lossPlus := n.Loss(X, Y)
		*p = orig - eps
		lossMinus := n.Loss(X, Y)
		*p = orig
		numeric := (lossPlus - lossMinus) / (2 * eps)
		diff := math.Abs(numeric - analytic[i])
		scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic[i])))
		if diff/scale > 1e-4 {
			t.Fatalf("gradient mismatch at param %d: analytic %v numeric %v",
				i, analytic[i], numeric)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Learn y = mean(x): a real regression the MLP must fit.
	n := New(Config{Input: 5, Hidden: []int{10, 10}, Output: 1, Seed: 7})
	opt := NewAdam()
	rng := simrand.New(17)
	mkBatch := func() ([][]float64, [][]float64) {
		X := make([][]float64, 32)
		Y := make([][]float64, 32)
		for i := range X {
			X[i] = make([]float64, 5)
			var sum float64
			for j := range X[i] {
				X[i][j] = rng.NormFloat64()
				sum += X[i][j]
			}
			Y[i] = []float64{sum / 5}
		}
		return X, Y
	}
	X0, Y0 := mkBatch()
	initial := n.Loss(X0, Y0)
	for i := 0; i < 300; i++ {
		X, Y := mkBatch()
		n.TrainBatch(opt, X, Y)
	}
	final := n.Loss(X0, Y0)
	if final > initial/4 {
		t.Errorf("loss %v -> %v; training is not learning", initial, final)
	}
}

func TestAdamStateDimensions(t *testing.T) {
	n := New(smallConfig())
	opt := NewAdam()
	X := [][]float64{{1, 2, 3, 4}}
	Y := [][]float64{{0, 1}}
	n.TrainBatch(opt, X, Y)
	if opt.t != 1 {
		t.Errorf("t = %d after one step", opt.t)
	}
	if len(opt.m) != 6 || len(opt.v) != 6 { // 3 layers x (w, b)
		t.Errorf("moment tensors = %d/%d, want 6/6", len(opt.m), len(opt.v))
	}
}

func TestTrainBatchRejectsBadBatch(t *testing.T) {
	n := New(smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched batch did not panic")
		}
	}()
	n.TrainBatch(NewAdam(), [][]float64{{1, 2, 3, 4}}, nil)
}

func TestLossEmptyBatch(t *testing.T) {
	if l := New(smallConfig()).Loss(nil, nil); l != 0 {
		t.Errorf("empty-batch loss = %v", l)
	}
}

// Property: parameters and loss stay finite for any bounded input batch —
// the optimizer never diverges to NaN/Inf in one step.
func TestQuickStepStaysFinite(t *testing.T) {
	prop := func(seed uint64, raw []byte) bool {
		if len(raw) < 6 {
			return true
		}
		rng := simrand.New(seed)
		n := New(Config{Input: 3, Hidden: []int{4}, Output: 1, Seed: seed})
		opt := NewAdam()
		batch := len(raw) / 4
		if batch > 8 {
			batch = 8
		}
		X := make([][]float64, batch)
		Y := make([][]float64, batch)
		for i := 0; i < batch; i++ {
			X[i] = []float64{
				float64(int8(raw[i*3%len(raw)])) / 16,
				rng.NormFloat64(),
				float64(int8(raw[(i*3+1)%len(raw)])) / 16,
			}
			Y[i] = []float64{float64(int8(raw[(i*3+2)%len(raw)])) / 16}
		}
		loss := n.TrainBatch(opt, X, Y)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			return false
		}
		for _, p := range n.paramsFlat() {
			if math.IsNaN(*p) || math.IsInf(*p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ReLU forward pass is piecewise-linear in scale — scaling a
// positive-activation input by c>0 scales hidden pre-activations by c.
// We verify the weaker invariant that zero input yields the bias path.
func TestQuickZeroInputGivesBiasOutput(t *testing.T) {
	prop := func(seed uint64) bool {
		n := New(Config{Input: 3, Hidden: []int{4}, Output: 2, Seed: seed})
		out1 := n.Forward([]float64{0, 0, 0})
		out2 := n.Forward([]float64{0, 0, 0})
		for i := range out1 {
			if out1[i] != out2[i] || math.IsNaN(out1[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
