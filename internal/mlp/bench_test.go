package mlp

import (
	"testing"

	"repro/internal/simrand"
)

func benchBatch(n int, input int) ([][]float64, [][]float64) {
	rng := simrand.New(1)
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = make([]float64, input)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		Y[i] = []float64{rng.NormFloat64()}
	}
	return X, Y
}

// BenchmarkForwardPaperModel measures inference on the paper's exact model
// shape (6,787 features, 2x10 hidden).
func BenchmarkForwardPaperModel(b *testing.B) {
	net := New(PaperConfig())
	x := make([]float64, 6787)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

// BenchmarkTrainBatchPaperModel measures one optimizer step (forward +
// backward + Adam) on the paper's model with a 32-example batch.
func BenchmarkTrainBatchPaperModel(b *testing.B) {
	net := New(PaperConfig())
	opt := NewAdam()
	X, Y := benchBatch(32, 6787)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(opt, X, Y)
	}
}

// BenchmarkTrainBatchProxyModel measures the scaled-down model the
// experiments actually iterate.
func BenchmarkTrainBatchProxyModel(b *testing.B) {
	net := New(Config{Input: 128, Hidden: []int{10, 10}, Output: 1, Seed: 1})
	opt := NewAdam()
	X, Y := benchBatch(32, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(opt, X, Y)
	}
}
