// Package mlp implements the model-training case study's workload from
// scratch: a feed-forward multi-layer perceptron with ReLU hidden layers,
// mean-squared-error loss, backpropagation, and the Adam optimizer — the
// paper's TensorFlow stand-in.
//
// The paper trains a 6,787-feature, two-hidden-layer (10 neurons each)
// regressor predicting average customer ratings. This package trains real
// (scaled-down) instances of that model for fidelity tests, while the
// simulated platforms account for the wall-clock cost of the full-size
// model via the calibrated compute model.
package mlp

import (
	"fmt"
	"math"

	"repro/internal/simrand"
)

// Config describes a network shape.
type Config struct {
	Input  int
	Hidden []int
	Output int
	Seed   uint64
}

// PaperConfig returns the paper's model shape: 6,787 input features, two
// hidden layers of 10 ReLU neurons, one rating output.
func PaperConfig() Config {
	return Config{Input: 6787, Hidden: []int{10, 10}, Output: 1, Seed: 1}
}

// layer is one dense layer with optional ReLU.
type layer struct {
	in, out int
	relu    bool
	w       []float64 // out x in, row-major
	b       []float64

	// forward caches (per last Forward call)
	x []float64 // input
	z []float64 // pre-activation

	// accumulated gradients
	gw []float64
	gb []float64
}

// Network is a feed-forward MLP.
type Network struct {
	cfg    Config
	layers []*layer
}

// New builds a network with He-initialized weights.
func New(cfg Config) *Network {
	if cfg.Input <= 0 || cfg.Output <= 0 {
		panic("mlp: invalid config")
	}
	rng := simrand.New(cfg.Seed)
	sizes := append(append([]int{cfg.Input}, cfg.Hidden...), cfg.Output)
	n := &Network{cfg: cfg}
	for i := 0; i < len(sizes)-1; i++ {
		in, out := sizes[i], sizes[i+1]
		l := &layer{
			in: in, out: out,
			relu: i < len(sizes)-2, // hidden layers only
			w:    make([]float64, out*in),
			b:    make([]float64, out),
			x:    make([]float64, in),
			z:    make([]float64, out),
			gw:   make([]float64, out*in),
			gb:   make([]float64, out),
		}
		scale := math.Sqrt(2 / float64(in))
		for j := range l.w {
			l.w[j] = rng.NormFloat64() * scale
		}
		n.layers = append(n.layers, l)
	}
	return n
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}

// Forward computes the network output for one input vector.
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.cfg.Input {
		panic(fmt.Sprintf("mlp: input size %d, want %d", len(x), n.cfg.Input))
	}
	cur := x
	for _, l := range n.layers {
		copy(l.x, cur)
		next := make([]float64, l.out)
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, xv := range cur {
				sum += row[i] * xv
			}
			l.z[o] = sum
			if l.relu && sum < 0 {
				sum = 0
			}
			next[o] = sum
		}
		cur = next
	}
	return cur
}

// backward accumulates gradients for one example given dL/dOutput.
func (n *Network) backward(dOut []float64) {
	grad := dOut
	for li := len(n.layers) - 1; li >= 0; li-- {
		l := n.layers[li]
		// Through activation.
		dz := make([]float64, l.out)
		for o := range dz {
			g := grad[o]
			if l.relu && l.z[o] <= 0 {
				g = 0
			}
			dz[o] = g
		}
		// Parameter gradients.
		for o := 0; o < l.out; o++ {
			row := l.gw[o*l.in : (o+1)*l.in]
			for i := 0; i < l.in; i++ {
				row[i] += dz[o] * l.x[i]
			}
			l.gb[o] += dz[o]
		}
		// Input gradient for the next (earlier) layer.
		if li > 0 {
			dx := make([]float64, l.in)
			for o := 0; o < l.out; o++ {
				row := l.w[o*l.in : (o+1)*l.in]
				for i := 0; i < l.in; i++ {
					dx[i] += dz[o] * row[i]
				}
			}
			grad = dx
		}
	}
}

func (n *Network) zeroGrads() {
	for _, l := range n.layers {
		for i := range l.gw {
			l.gw[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
}

// Loss returns the mean squared error over a batch without touching
// gradients.
func (n *Network) Loss(X, Y [][]float64) float64 {
	if len(X) == 0 {
		return 0
	}
	var total float64
	for i := range X {
		out := n.Forward(X[i])
		for j := range out {
			d := out[j] - Y[i][j]
			total += d * d
		}
	}
	return total / float64(len(X)*n.cfg.Output)
}

// TrainBatch runs one optimizer step over a batch and returns the batch's
// pre-step mean squared error.
func (n *Network) TrainBatch(opt *Adam, X, Y [][]float64) float64 {
	if len(X) == 0 || len(X) != len(Y) {
		panic("mlp: bad batch")
	}
	n.zeroGrads()
	var loss float64
	scale := 1 / float64(len(X)*n.cfg.Output)
	for i := range X {
		out := n.Forward(X[i])
		dOut := make([]float64, len(out))
		for j := range out {
			d := out[j] - Y[i][j]
			loss += d * d
			dOut[j] = 2 * d * scale
		}
		n.backward(dOut)
	}
	opt.Step(n)
	return loss * scale
}

// Adam is the Adam optimizer (Kingma & Ba), the paper's AdamOptimizer with
// learning rate 0.001.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m [][]float64 // first moments, one slice per parameter tensor
	v [][]float64 // second moments
}

// NewAdam returns Adam with the paper's learning rate (0.001) and standard
// betas.
func NewAdam() *Adam {
	return &Adam{LR: 0.001, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies accumulated gradients to the network's parameters.
func (a *Adam) Step(n *Network) {
	if a.m == nil {
		for _, l := range n.layers {
			a.m = append(a.m, make([]float64, len(l.w)), make([]float64, len(l.b)))
			a.v = append(a.v, make([]float64, len(l.w)), make([]float64, len(l.b)))
		}
	}
	a.t++
	idx := 0
	for _, l := range n.layers {
		a.update(l.w, l.gw, idx)
		a.update(l.b, l.gb, idx+1)
		idx += 2
	}
}

// update applies one tensor's Adam step.
func (a *Adam) update(params, grads []float64, idx int) {
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	m, v := a.m[idx], a.v[idx]
	for i := range params {
		g := grads[i]
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
		mHat := m[i] / bc1
		vHat := v[i] / bc2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
}

// gradientsFlat returns a copy of all accumulated gradients (test hook for
// the numerical gradient check).
func (n *Network) gradientsFlat() []float64 {
	var out []float64
	for _, l := range n.layers {
		out = append(out, l.gw...)
		out = append(out, l.gb...)
	}
	return out
}

// paramsFlat returns pointers to every parameter for perturbation tests.
func (n *Network) paramsFlat() []*float64 {
	var out []*float64
	for _, l := range n.layers {
		for i := range l.w {
			out = append(out, &l.w[i])
		}
		for i := range l.b {
			out = append(out, &l.b[i])
		}
	}
	return out
}

// AccumulateGradients runs forward+backward over a batch without an
// optimizer step (test hook).
func (n *Network) AccumulateGradients(X, Y [][]float64) {
	n.zeroGrads()
	scale := 1 / float64(len(X)*n.cfg.Output)
	for i := range X {
		out := n.Forward(X[i])
		dOut := make([]float64, len(out))
		for j := range out {
			dOut[j] = 2 * (out[j] - Y[i][j]) * scale
		}
		n.backward(dOut)
	}
}
