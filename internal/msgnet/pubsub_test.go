package msgnet

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestPublishFansOut(t *testing.T) {
	f := newFixture(t)
	topic := f.mesh.CreateTopic("events")
	c := f.mesh.Endpoint("c", f.a.Node())
	topic.Subscribe(f.b)
	topic.Subscribe(c)
	topic.Subscribe(c) // duplicate: no-op

	var got []string
	for _, ep := range []*Endpoint{f.b, c} {
		ep := ep
		f.k.Spawn("sub", func(p *sim.Proc) {
			pk, err := ep.Recv(p)
			if err == nil {
				got = append(got, ep.Name()+":"+string(pk.Payload))
			}
		})
	}
	var n int
	f.k.Spawn("pub", func(p *sim.Proc) {
		var err error
		n, err = topic.Publish(p, f.a, []byte("tick"))
		if err != nil {
			t.Errorf("Publish: %v", err)
		}
	})
	f.k.Run()
	if n != 2 {
		t.Errorf("Publish addressed %d subscribers, want 2", n)
	}
	if len(got) != 2 {
		t.Errorf("deliveries = %v", got)
	}
}

func TestPublisherNotSubscribedReceivesNothing(t *testing.T) {
	f := newFixture(t)
	topic := f.mesh.CreateTopic("events")
	topic.Subscribe(f.b)
	f.k.Spawn("pub", func(p *sim.Proc) {
		topic.Publish(p, f.a, []byte("x"))
		p.Sleep(time.Second)
	})
	f.k.Run()
	if _, ok := f.a.TryRecv(); ok {
		t.Error("publisher received its own message without subscribing")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	f := newFixture(t)
	topic := f.mesh.CreateTopic("events")
	topic.Subscribe(f.b)
	topic.Unsubscribe(f.b)
	f.k.Spawn("pub", func(p *sim.Proc) {
		n, _ := topic.Publish(p, f.a, []byte("x"))
		if n != 0 {
			t.Errorf("published to %d after unsubscribe", n)
		}
	})
	f.k.Run()
}

func TestClosedSubscribersPruned(t *testing.T) {
	f := newFixture(t)
	topic := f.mesh.CreateTopic("events")
	topic.Subscribe(f.b)
	f.b.Close()
	if topic.Subscribers() != 0 {
		t.Errorf("Subscribers = %d after close", topic.Subscribers())
	}
}

func TestCreateTopicIdempotentAndLookup(t *testing.T) {
	f := newFixture(t)
	a := f.mesh.CreateTopic("t")
	b := f.mesh.CreateTopic("t")
	if a != b {
		t.Error("CreateTopic not idempotent")
	}
	if f.mesh.Topic("t") != a || f.mesh.Topic("missing") != nil {
		t.Error("Topic lookup wrong")
	}
}

func TestPublishFromClosedEndpoint(t *testing.T) {
	f := newFixture(t)
	topic := f.mesh.CreateTopic("t")
	f.a.Close()
	var err error
	f.k.Spawn("pub", func(p *sim.Proc) {
		_, err = topic.Publish(p, f.a, []byte("x"))
	})
	f.k.Run()
	if err != ErrClosed {
		t.Errorf("err = %v", err)
	}
}

func TestPublishEveryFeedsUntilClose(t *testing.T) {
	f := newFixture(t)
	topic := f.mesh.CreateTopic("feed")
	topic.Subscribe(f.b)
	seq := 0
	topic.PublishEvery(f.a, 100*time.Millisecond, func() []byte {
		seq++
		return []byte{byte(seq)}
	})
	received := 0
	f.k.Spawn("sub", func(p *sim.Proc) {
		for {
			if _, err := f.b.Recv(p); err != nil {
				return
			}
			received++
		}
	})
	f.k.Spawn("stopper", func(p *sim.Proc) {
		p.Sleep(time.Second)
		f.a.Close()
		p.Sleep(time.Second)
		f.b.Close()
	})
	f.k.RunUntil(sim.Time(5 * time.Second))
	if received < 8 || received > 12 {
		t.Errorf("received %d feed messages over 1s at 10Hz", received)
	}
}

func TestPubSubDeliveryLatencyIsNetworkLatency(t *testing.T) {
	f := newFixture(t)
	topic := f.mesh.CreateTopic("t")
	// Subscriber in another rack.
	k := f.k
	net := f.a.mesh.net
	far := f.mesh.Endpoint("far", net.NewNode("far-node", 3, netsim.Gbps(10)))
	topic.Subscribe(far)
	var at sim.Time
	k.Spawn("sub", func(p *sim.Proc) {
		far.Recv(p)
		at = p.Now()
	})
	k.Spawn("pub", func(p *sim.Proc) {
		topic.Publish(p, f.a, []byte("x"))
	})
	k.Run()
	if at < 500*time.Microsecond || at > 900*time.Microsecond {
		t.Errorf("cross-rack pubsub delivery at %v, want cross-rack latency", at)
	}
}
