package msgnet

// Topic-based publish/subscribe over the mesh — one of the virtual
// addressing mechanisms §4 cites (the Information Bus, tuplespaces, DHTs)
// for decoupling senders from the physical location of receivers. A topic
// is a named fan-out point: publishers address the topic, subscribers are
// ordinary endpoints, and delivery is a message per subscriber with normal
// network latency.

import (
	"errors"
	"time"

	"repro/internal/sim"
)

// ErrNoTopic is returned when publishing to an unknown topic.
var ErrNoTopic = errors.New("msgnet: unknown topic")

// Topic is a named fan-out point.
type Topic struct {
	mesh *Mesh
	name string
	subs map[string]*Endpoint
}

// CreateTopic creates (or returns) a topic.
func (m *Mesh) CreateTopic(name string) *Topic {
	if m.topics == nil {
		m.topics = make(map[string]*Topic)
	}
	if t, ok := m.topics[name]; ok {
		return t
	}
	t := &Topic{mesh: m, name: name, subs: make(map[string]*Endpoint)}
	m.topics[name] = t
	return t
}

// Topic looks up a topic, returning nil if absent.
func (m *Mesh) Topic(name string) *Topic {
	return m.topics[name]
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Subscribers reports the number of live subscriptions.
func (t *Topic) Subscribers() int {
	t.prune()
	return len(t.subs)
}

// Subscribe adds an endpoint to the topic. Subscribing twice is a no-op.
func (t *Topic) Subscribe(ep *Endpoint) {
	if !ep.Closed() {
		t.subs[ep.Name()] = ep
	}
}

// Unsubscribe removes an endpoint (by identity; closed endpoints are also
// pruned automatically).
func (t *Topic) Unsubscribe(ep *Endpoint) {
	if cur, ok := t.subs[ep.Name()]; ok && cur == ep {
		delete(t.subs, ep.Name())
	}
}

// prune drops closed endpoints.
func (t *Topic) prune() {
	for name, ep := range t.subs {
		if ep.Closed() {
			delete(t.subs, name)
		}
	}
}

// Publish fans payload out to every subscriber from the given endpoint,
// blocking the publisher only for per-message send overhead. It returns
// the number of subscribers addressed.
func (t *Topic) Publish(p *sim.Proc, from *Endpoint, payload []byte) (int, error) {
	if from.Closed() {
		return 0, ErrClosed
	}
	t.prune()
	n := 0
	for _, ep := range t.subs {
		dst := ep
		p.Sleep(softwareOverhead)
		pk := Packet{
			From:    from.name,
			To:      dst.name,
			Payload: append([]byte(nil), payload...),
		}
		delay := t.mesh.deliveryDelay(from.node, dst.node, len(payload))
		p.Kernel().After(delay, func() { dst.deliver(pk) })
		n++
	}
	return n, nil
}

// PublishEvery spawns a process that publishes the result of produce on a
// fixed period until the source endpoint closes (a heartbeat/feed helper).
func (t *Topic) PublishEvery(from *Endpoint, period time.Duration, produce func() []byte) {
	t.mesh.net.Kernel().Spawn(t.name+"/feed", func(p *sim.Proc) {
		for !from.Closed() {
			if _, err := t.Publish(p, from, produce()); err != nil {
				return
			}
			p.Sleep(period)
		}
	})
}
