// Package msgnet implements direct, addressable point-to-point messaging
// between network endpoints — the ZeroMQ stand-in for the paper's
// "serverful" baselines, and the capability the paper points out FaaS
// functions lack (they are not network-addressable while running).
//
// Endpoints have stable names, per-endpoint mailboxes, fire-and-forget Send,
// blocking Recv, and an acked request/reply Call. Message delivery time is
// propagation delay plus store-and-forward serialization at the slower of
// the two NICs plus a small software overhead; messaging is latency-
// dominated, so (unlike bulk transfers, which go through netsim's fair-
// shared fabric) message serialization does not contend for NIC bandwidth.
package msgnet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// ErrUnknownPeer is returned when sending to an unregistered or closed name.
var ErrUnknownPeer = errors.New("msgnet: unknown peer")

// ErrClosed is returned when receiving on a closed endpoint.
var ErrClosed = errors.New("msgnet: endpoint closed")

// softwareOverhead is the per-message send-side cost (serialize + syscall),
// applied on both directions of a Call.
const softwareOverhead = 2 * time.Microsecond

// Packet is a delivered message.
type Packet struct {
	From    string
	To      string
	Payload []byte

	// reqID correlates a Call with its reply; 0 for one-way sends.
	reqID   uint64
	isReply bool
}

// IsCall reports whether the packet expects a Reply.
func (pk Packet) IsCall() bool { return pk.reqID != 0 && !pk.isReply }

// Mesh is a namespace of endpoints that can message each other.
type Mesh struct {
	net       *netsim.Network
	rng       *simrand.RNG
	endpoints map[string]*Endpoint
	topics    map[string]*Topic
	nextReq   uint64
}

// NewMesh creates an empty mesh over the given network.
func NewMesh(net *netsim.Network, rng *simrand.RNG) *Mesh {
	return &Mesh{net: net, rng: rng, endpoints: make(map[string]*Endpoint)}
}

// Endpoint registers a named endpoint bound to a network node (typically an
// EC2 instance's node). Names must be unique among live endpoints.
func (m *Mesh) Endpoint(name string, node *netsim.Node) *Endpoint {
	if _, dup := m.endpoints[name]; dup {
		panic("msgnet: duplicate endpoint " + name)
	}
	ep := &Endpoint{
		mesh:    m,
		name:    name,
		node:    node,
		inbox:   sim.NewQueue[Packet](0),
		pending: make(map[uint64]*sim.Promise[[]byte]),
	}
	m.endpoints[name] = ep
	return ep
}

// Lookup returns the endpoint registered under name, or nil.
func (m *Mesh) Lookup(name string) *Endpoint { return m.endpoints[name] }

// Endpoint is a named, addressable mailbox.
type Endpoint struct {
	mesh    *Mesh
	name    string
	node    *netsim.Node
	inbox   *sim.Queue[Packet]
	pending map[uint64]*sim.Promise[[]byte]
	closed  bool
}

// Name returns the endpoint's stable name.
func (e *Endpoint) Name() string { return e.name }

// Node returns the network node the endpoint is bound to.
func (e *Endpoint) Node() *netsim.Node { return e.node }

// Closed reports whether the endpoint has been closed.
func (e *Endpoint) Closed() bool { return e.closed }

// deliveryDelay computes the one-way latency for a payload of size bytes.
func (m *Mesh) deliveryDelay(src, dst *netsim.Node, size int) time.Duration {
	d := m.net.OneWayDelay(src, dst)
	if size > 0 {
		bottleneck := src.NIC().Capacity()
		if c := dst.NIC().Capacity(); c < bottleneck {
			bottleneck = c
		}
		d += time.Duration(float64(size) / float64(bottleneck) * float64(time.Second))
	}
	return d
}

// Send delivers payload to the named endpoint, blocking the caller only for
// the send-side software overhead. Delivery happens after the network delay;
// sends to peers that close before delivery are dropped (like a TCP reset).
func (e *Endpoint) Send(p *sim.Proc, to string, payload []byte) error {
	return e.send(p, to, payload, 0, false)
}

func (e *Endpoint) send(p *sim.Proc, to string, payload []byte, reqID uint64, isReply bool) error {
	if e.closed {
		return ErrClosed
	}
	dst, ok := e.mesh.endpoints[to]
	if !ok || dst.closed {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	p.Sleep(softwareOverhead)
	pk := Packet{
		From:    e.name,
		To:      to,
		Payload: append([]byte(nil), payload...),
		reqID:   reqID,
		isReply: isReply,
	}
	delay := e.mesh.deliveryDelay(e.node, dst.node, len(payload))
	p.Kernel().After(delay, func() { dst.deliver(pk) })
	return nil
}

func (e *Endpoint) deliver(pk Packet) {
	if e.closed {
		return
	}
	if pk.isReply {
		if pr, ok := e.pending[pk.reqID]; ok {
			delete(e.pending, pk.reqID)
			pr.Resolve(pk.Payload)
		}
		return
	}
	e.inbox.TryPut(pk)
}

// Recv blocks until a message arrives, returning ErrClosed if the endpoint
// is closed while (or before) waiting.
func (e *Endpoint) Recv(p *sim.Proc) (Packet, error) {
	pk, ok := e.inbox.Get(p)
	if !ok {
		return Packet{}, ErrClosed
	}
	return pk, nil
}

// TryRecv returns a queued message without blocking.
func (e *Endpoint) TryRecv() (Packet, bool) {
	return e.inbox.TryGet()
}

// Call sends payload to the named endpoint and blocks until the peer
// replies (via Reply) or timeout elapses (timeout <= 0 waits forever).
// This is the acked round trip Table 1's ZeroMQ column measures.
func (e *Endpoint) Call(p *sim.Proc, to string, payload []byte, timeout time.Duration) ([]byte, error) {
	e.mesh.nextReq++
	reqID := e.mesh.nextReq
	pr := &sim.Promise[[]byte]{}
	e.pending[reqID] = pr
	if err := e.send(p, to, payload, reqID, false); err != nil {
		delete(e.pending, reqID)
		return nil, err
	}
	var tm *sim.Timer
	if timeout > 0 {
		// The pending-map guard stays even with a cancellable timer: a
		// timeout sharing the reply's timestamp is ordered before the
		// caller resumes, so Stop below can come too late to matter.
		tm = p.Kernel().AfterTimer(timeout, func() {
			if w, ok := e.pending[reqID]; ok && w == pr {
				delete(e.pending, reqID)
				pr.Resolve(nil)
			}
		})
	}
	reply := pr.Get(p)
	if tm != nil {
		tm.Stop() // answered (or timed out): drop the deadline event
	}
	if reply == nil {
		return nil, fmt.Errorf("msgnet: call to %q timed out after %v", to, timeout)
	}
	return reply, nil
}

// Reply answers a Call packet. Replying to a one-way packet is an error.
func (e *Endpoint) Reply(p *sim.Proc, call Packet, payload []byte) error {
	if !call.IsCall() {
		return errors.New("msgnet: Reply to a non-call packet")
	}
	if payload == nil {
		payload = []byte{}
	}
	return e.send(p, call.From, payload, call.reqID, true)
}

// Serve spawns a process that answers every incoming Call with
// handler(payload) until the endpoint closes. One-way packets are passed to
// handler too; the result is discarded.
func (e *Endpoint) Serve(handler func(p *sim.Proc, pk Packet) []byte) {
	e.mesh.net.Kernel().Spawn(e.name+"/server", func(p *sim.Proc) {
		for {
			pk, err := e.Recv(p)
			if err != nil {
				return
			}
			out := handler(p, pk)
			if pk.IsCall() {
				if err := e.Reply(p, pk, out); err != nil {
					return
				}
			}
		}
	})
}

// Close unregisters the endpoint. In-flight messages to it are dropped;
// pending Calls it issued fail immediately.
func (e *Endpoint) Close() {
	if e.closed {
		return
	}
	e.closed = true
	delete(e.mesh.endpoints, e.name)
	e.inbox.Close()
	for id, pr := range e.pending {
		delete(e.pending, id)
		pr.Resolve(nil)
	}
}
