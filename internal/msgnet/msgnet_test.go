package msgnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k    *sim.Kernel
	mesh *Mesh
	a, b *Endpoint
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(3)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	mesh := NewMesh(net, rng.Fork())
	// Two EC2-class nodes in the same rack, like the paper's ZeroMQ test.
	a := mesh.Endpoint("a", net.NewNode("vm-a", 0, netsim.Gbps(10)))
	b := mesh.Endpoint("b", net.NewNode("vm-b", 0, netsim.Gbps(10)))
	return &fixture{k: k, mesh: mesh, a: a, b: b}
}

func TestSendRecv(t *testing.T) {
	f := newFixture(t)
	var got Packet
	f.k.Spawn("receiver", func(p *sim.Proc) {
		got, _ = f.b.Recv(p)
	})
	f.k.Spawn("sender", func(p *sim.Proc) {
		if err := f.a.Send(p, "b", []byte("hi")); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	f.k.Run()
	if got.From != "a" || string(got.Payload) != "hi" || got.IsCall() {
		t.Errorf("got %+v", got)
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	f := newFixture(t)
	var err error
	f.k.Spawn("sender", func(p *sim.Proc) {
		err = f.a.Send(p, "ghost", []byte("x"))
	})
	f.k.Run()
	if !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v", err)
	}
}

// Calibration: a 1KB acked round trip between same-rack nodes should match
// Table 1's ZeroMQ figure of ~290µs (averaged over 10k trials, like the
// paper).
func TestCallRoundTripMatchesPaper(t *testing.T) {
	f := newFixture(t)
	f.b.Serve(func(p *sim.Proc, pk Packet) []byte { return []byte("ack") })
	const trials = 10000
	var total sim.Time
	f.k.Spawn("caller", func(p *sim.Proc) {
		payload := make([]byte, 1024)
		for i := 0; i < trials; i++ {
			start := p.Now()
			if _, err := f.a.Call(p, "b", payload, 0); err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			total += p.Now() - start
		}
	})
	f.k.Run()
	mean := time.Duration(int64(total) / trials)
	if mean < 270*time.Microsecond || mean > 310*time.Microsecond {
		t.Errorf("1KB Call mean = %v, paper reports 290µs", mean)
	}
}

func TestCallTimesOut(t *testing.T) {
	f := newFixture(t)
	// b never serves; a's call must time out.
	var err error
	var at sim.Time
	f.k.Spawn("caller", func(p *sim.Proc) {
		_, err = f.a.Call(p, "b", []byte("x"), 2*time.Second)
		at = p.Now()
	})
	f.k.Run()
	if err == nil {
		t.Fatal("Call with unresponsive peer did not fail")
	}
	if at < 2*time.Second || at > 2*time.Second+time.Millisecond {
		t.Errorf("timeout at %v, want ~2s", at)
	}
}

func TestLateReplyAfterTimeoutIsDropped(t *testing.T) {
	f := newFixture(t)
	f.b.Serve(func(p *sim.Proc, pk Packet) []byte {
		p.Sleep(5 * time.Second) // reply long after caller's timeout
		return []byte("late")
	})
	var err error
	f.k.Spawn("caller", func(p *sim.Proc) {
		_, err = f.a.Call(p, "b", []byte("x"), time.Second)
		p.Sleep(10 * time.Second) // outlive the late reply
	})
	f.k.Run()
	if err == nil {
		t.Error("Call should have timed out")
	}
	if f.a.inbox.Len() != 0 {
		t.Error("late reply leaked into inbox")
	}
}

func TestRequestReplyCorrelation(t *testing.T) {
	f := newFixture(t)
	f.b.Serve(func(p *sim.Proc, pk Packet) []byte {
		// Echo with a per-request suffix and variable service time so
		// replies to concurrent calls come back out of order.
		d := time.Duration(10-len(pk.Payload)) * time.Millisecond
		p.Sleep(d)
		return append([]byte("re:"), pk.Payload...)
	})
	results := map[string]string{}
	var wg sim.WaitGroup
	for _, msg := range []string{"longer-one", "mid", "x"} {
		msg := msg
		wg.Add(1)
		f.k.Spawn("caller", func(p *sim.Proc) {
			defer wg.Done()
			reply, err := f.a.Call(p, "b", []byte(msg), 0)
			if err != nil {
				t.Errorf("Call(%q): %v", msg, err)
				return
			}
			results[msg] = string(reply)
		})
	}
	f.k.Run()
	for _, msg := range []string{"longer-one", "mid", "x"} {
		if results[msg] != "re:"+msg {
			t.Errorf("reply for %q = %q", msg, results[msg])
		}
	}
}

func TestServeAnswersOneWayWithoutReply(t *testing.T) {
	f := newFixture(t)
	served := 0
	f.b.Serve(func(p *sim.Proc, pk Packet) []byte {
		served++
		return nil
	})
	f.k.Spawn("sender", func(p *sim.Proc) {
		f.a.Send(p, "b", []byte("oneway"))
		p.Sleep(time.Second)
	})
	f.k.Run()
	if served != 1 {
		t.Errorf("served = %d, want 1", served)
	}
}

func TestCloseUnregistersAndDrops(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("closer", func(p *sim.Proc) {
		f.b.Close()
		f.b.Close() // idempotent
		if err := f.a.Send(p, "b", []byte("x")); !errors.Is(err, ErrUnknownPeer) {
			t.Errorf("Send to closed peer: %v", err)
		}
		if err := f.a.Send(p, "a", nil); err != nil {
			t.Errorf("self-send: %v", err)
		}
	})
	f.k.Run()
	if f.mesh.Lookup("b") != nil {
		t.Error("closed endpoint still registered")
	}
	if f.mesh.Lookup("a") != f.a {
		t.Error("live endpoint lookup failed")
	}
}

func TestClosePendingCallFails(t *testing.T) {
	f := newFixture(t)
	var err error
	f.k.Spawn("caller", func(p *sim.Proc) {
		_, err = f.a.Call(p, "b", []byte("x"), 0)
	})
	f.k.Spawn("closer", func(p *sim.Proc) {
		p.Sleep(time.Second)
		f.a.Close()
	})
	f.k.Run()
	if err == nil {
		t.Error("pending Call should fail when endpoint closes")
	}
}

func TestInFlightMessageToClosingPeerIsDropped(t *testing.T) {
	f := newFixture(t)
	f.k.Spawn("sender", func(p *sim.Proc) {
		f.a.Send(p, "b", []byte("x"))
		f.b.Close() // before delivery
		p.Sleep(time.Second)
	})
	f.k.Run() // must not panic on delivery to closed endpoint
}

func TestLargeMessageTakesSerializationTime(t *testing.T) {
	f := newFixture(t)
	f.b.Serve(func(p *sim.Proc, pk Packet) []byte { return []byte{1} })
	var small, large sim.Time
	f.k.Spawn("caller", func(p *sim.Proc) {
		start := p.Now()
		f.a.Call(p, "b", make([]byte, 1024), 0)
		small = p.Now() - start
		start = p.Now()
		f.a.Call(p, "b", make([]byte, 10*1024*1024), 0)
		large = p.Now() - start
	})
	f.k.Run()
	// 10MB at 10Gbps is 8ms of serialization; must dominate the RTT.
	if large < small+7*time.Millisecond {
		t.Errorf("10MB call = %v vs 1KB call = %v; serialization not modeled", large, small)
	}
}

func TestDuplicateEndpointPanics(t *testing.T) {
	f := newFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate endpoint did not panic")
		}
	}()
	f.mesh.Endpoint("a", f.a.Node())
}
