package faas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestStatsCounters(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	boom := errors.New("boom")
	calls := 0
	f.pf.Register(Function{Name: "flaky", MemoryMB: 256, Timeout: time.Second,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			calls++
			switch calls {
			case 2:
				return nil, boom
			case 3:
				ctx.Proc().Sleep(5 * time.Second) // timeout
			}
			return nil, nil
		}})
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			f.pf.Invoke(p, "flaky", nil)
		}
	})
	f.k.Run()
	st, err := f.pf.Stats("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if st.Invocations != 4 {
		t.Errorf("Invocations = %d", st.Invocations)
	}
	if st.Errors != 2 { // handler error + timeout
		t.Errorf("Errors = %d, want 2", st.Errors)
	}
	if st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
	// Cold starts: first call, plus the call after the timeout destroyed
	// the container.
	if st.ColdStarts != 2 {
		t.Errorf("ColdStarts = %d, want 2", st.ColdStarts)
	}
	if st.ColdStartRate() != 0.5 {
		t.Errorf("ColdStartRate = %v", st.ColdStartRate())
	}
	if st.MeanDuration() <= 0 || st.BilledTime <= 0 {
		t.Error("durations not accumulated")
	}
}

func TestStatsUnknownFunction(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	if _, err := f.pf.Stats("ghost"); !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("err = %v", err)
	}
	if err := f.pf.SetReservedConcurrency("ghost", 1); !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("err = %v", err)
	}
}

func TestReservedConcurrencySerializes(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	inFlight, maxInFlight := 0, 0
	f.pf.Register(Function{Name: "limited", MemoryMB: 256,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			ctx.Proc().Sleep(time.Second)
			inFlight--
			return nil, nil
		}})
	if err := f.pf.SetReservedConcurrency("limited", 2); err != nil {
		t.Fatal(err)
	}
	var wg sim.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		f.k.Spawn("c", func(p *sim.Proc) {
			defer wg.Done()
			f.pf.Invoke(p, "limited", nil)
		})
	}
	f.k.Run()
	if maxInFlight > 2 {
		t.Errorf("max in flight = %d, want <= 2 (reserved)", maxInFlight)
	}
	st, _ := f.pf.Stats("limited")
	if st.Throttles < 3 {
		t.Errorf("Throttles = %d, want >= 3", st.Throttles)
	}
}

func TestReservedConcurrencyRemoved(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	f.pf.SetReservedConcurrency("f", 1)
	if err := f.pf.SetReservedConcurrency("f", 0); err != nil {
		t.Fatal(err)
	}
	done := 0
	var wg sim.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		f.k.Spawn("c", func(p *sim.Proc) {
			defer wg.Done()
			f.pf.Invoke(p, "f", nil)
			done++
		})
	}
	f.k.Run()
	if done != 4 {
		t.Errorf("done = %d", done)
	}
	st, _ := f.pf.Stats("f")
	if st.Throttles != 0 {
		t.Errorf("Throttles = %d after cap removal", st.Throttles)
	}
}

func TestProvisionedConcurrencyEliminatesColdStarts(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "hot", MemoryMB: 512, Handler: noop})
	if err := f.pf.ProvisionConcurrency(nil, "ghost", 1); err == nil {
		t.Error("provisioning unknown function accepted")
	}
	f.k.Spawn("ops", func(p *sim.Proc) {
		if err := f.pf.ProvisionConcurrency(p, "hot", 3); err != nil {
			t.Errorf("provision: %v", err)
			return
		}
		if got := f.pf.ProvisionedIdle("hot"); got != 3 {
			t.Errorf("ProvisionedIdle = %d, want 3", got)
		}
		// Idle far beyond WarmTTL: provisioned containers must survive.
		p.Sleep(time.Hour)
		var wg sim.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			p.Spawn("inv", func(ip *sim.Proc) {
				defer wg.Done()
				_, rep, err := f.pf.Invoke(ip, "hot", nil)
				if err != nil {
					t.Errorf("invoke: %v", err)
				}
				if rep.ColdStart {
					t.Error("provisioned invocation cold-started")
				}
			})
		}
		wg.Wait(p)
	})
	f.k.Run()
}

func TestProvisionInvalidCount(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	f.k.Spawn("ops", func(p *sim.Proc) {
		if err := f.pf.ProvisionConcurrency(p, "f", 0); err == nil {
			t.Error("zero provisioned concurrency accepted")
		}
	})
	f.k.Run()
}
