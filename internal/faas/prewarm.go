package faas

// Provisioned concurrency: pre-initialized containers that eliminate cold
// starts for a configured level of parallelism. AWS shipped this in late
// 2019 — after the paper — as a direct (if paid) response to the cold-start
// half of the paper's latency critique; the ablation value here is showing
// which part of the 303ms invoke it does and does not remove.

import (
	"fmt"

	"repro/internal/sim"
)

// ProvisionConcurrency pre-creates n warm containers for the named
// function, blocking the calling process while they initialize (in
// parallel). Provisioned containers are ordinary warm-pool members except
// that they never expire.
func (pf *Platform) ProvisionConcurrency(p *sim.Proc, name string, n int) error {
	fn, ok := pf.functions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	if n <= 0 {
		return fmt.Errorf("faas: provisioned concurrency must be positive")
	}
	var wg sim.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		p.Spawn("prewarm/"+name, func(wp *sim.Proc) {
			defer wg.Done()
			vm := pf.pickVM()
			vm.containers++
			wp.Sleep(pf.cfg.ColdStart.Sample(pf.rng))
			cont := &container{
				fn:          fn,
				vm:          vm,
				local:       make(map[string]any),
				lastUsed:    wp.Now(),
				provisioned: true,
			}
			pf.idle[fn.Name] = append(pf.idle[fn.Name], cont)
		})
	}
	wg.Wait(p)
	return nil
}

// ProvisionedIdle reports how many provisioned containers are currently
// idle for the named function (test/observability hook).
func (pf *Platform) ProvisionedIdle(name string) int {
	n := 0
	for _, c := range pf.idle[name] {
		if c.provisioned {
			n++
		}
	}
	return n
}
