package faas

// Provisioned concurrency: pre-initialized containers that eliminate cold
// starts for a configured level of parallelism. AWS shipped this in late
// 2019 — after the paper — as a direct (if paid) response to the cold-start
// half of the paper's latency critique; the ablation value here is showing
// which part of the 303ms invoke it does and does not remove, and (in the
// faasscale scenario) what keeping a warm fleet costs per hour.

import (
	"fmt"
	"time"

	"repro/internal/pricing"
	"repro/internal/sim"
)

// ProvisionConcurrency pre-creates n warm containers for the named
// function, blocking the calling process while they initialize (in
// parallel). Provisioned containers are ordinary warm-pool members except
// that they never expire — and that they bill GB-seconds for as long as
// they stay allocated (Catalog.LambdaProvisionedGBSecond).
func (pf *Platform) ProvisionConcurrency(p *sim.Proc, name string, n int) error {
	fn, ok := pf.functions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	if n <= 0 {
		return fmt.Errorf("faas: provisioned concurrency must be positive")
	}
	var wg sim.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		p.Spawn("prewarm/"+name, func(wp *sim.Proc) {
			defer wg.Done()
			vm := pf.pickVM()
			vm.containers++
			wp.Sleep(pf.cfg.ColdStart.Sample(pf.rng))
			cont := &container{
				fn:          fn,
				vm:          vm,
				local:       make(map[string]any),
				lastUsed:    wp.Now(),
				provisioned: true,
			}
			if pf.functions[fn.Name] != fn {
				// The function was replaced while this container
				// initialized; it holds the old deployment and must not
				// enter the new deployment's pool (it would serve stale
				// code forever — provisioned containers never expire).
				pf.removeFromVM(cont)
				return
			}
			pf.idle[fn.Name] = append(pf.idle[fn.Name], cont)
			pf.beginProvisioned(cont)
		})
	}
	wg.Wait(p)
	return nil
}

// RetireProvisioned removes up to n idle provisioned containers of the
// named function (newest first, matching the pool's LIFO reuse order) and
// returns how many it removed. Provisioned containers that are mid-
// invocation are not touched; callers that need to shed more retry after
// they are released.
func (pf *Platform) RetireProvisioned(name string, n int) int {
	pool := pf.idle[name]
	removed := 0
	for i := len(pool) - 1; i >= 0 && removed < n; i-- {
		if !pool[i].provisioned {
			continue
		}
		cont := pool[i]
		pool = append(pool[:i], pool[i+1:]...)
		pf.destroyContainer(cont)
		removed++
	}
	pf.idle[name] = pool
	return removed
}

// ProvisionedIdle reports how many provisioned containers are currently
// idle for the named function (test/observability hook).
func (pf *Platform) ProvisionedIdle(name string) int {
	n := 0
	for _, c := range pf.idle[name] {
		if c.provisioned {
			n++
		}
	}
	return n
}

// ProvisionedAllocated reports how many provisioned containers exist
// platform-wide, idle or mid-invocation.
func (pf *Platform) ProvisionedAllocated() int { return pf.provisionedCount }

// ProvisionedFor reports how many provisioned containers the named function
// has allocated, idle or mid-invocation. The count is carried on the
// function's stats, so it survives deploys and reflects out-of-band
// destruction (a re-deploy drain, an invocation timeout).
func (pf *Platform) ProvisionedFor(name string) int {
	fn, ok := pf.functions[name]
	if !ok {
		return 0
	}
	return fn.stats.provisioned
}

// AccrueProvisioned settles provisioned-concurrency charges up to now.
// The platform calls it on every allocation change; experiments call it
// once before reading the meter so charges cover the full run.
func (pf *Platform) AccrueProvisioned(now sim.Time) {
	if pf.provisionedGB > 0 && now > pf.provisionedSince {
		secs := time.Duration(now - pf.provisionedSince).Seconds()
		pf.meter.ChargeCost("lambda.provisioned",
			pricing.USD(secs*pf.provisionedGB)*pf.catalog.LambdaProvisionedGBSecond)
	}
	pf.provisionedSince = now
}

// beginProvisioned starts billing an allocated provisioned container.
func (pf *Platform) beginProvisioned(cont *container) {
	now := pf.net.Kernel().Now()
	pf.AccrueProvisioned(now)
	pf.provisionedGB += float64(cont.fn.MemoryMB) / 1024
	pf.provisionedCount++
	cont.fn.stats.provisioned++
}

// endProvisioned stops billing a destroyed provisioned container.
func (pf *Platform) endProvisioned(cont *container) {
	now := pf.net.Kernel().Now()
	pf.AccrueProvisioned(now)
	pf.provisionedGB -= float64(cont.fn.MemoryMB) / 1024
	pf.provisionedCount--
	cont.fn.stats.provisioned--
}
