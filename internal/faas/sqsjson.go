package faas

// Hand-rolled SQS-event codec. Every queue-triggered invocation encodes a
// batch on the poller side and decodes it inside the handler, so on
// serving-tier workloads the reflective encoding/json round trip was a
// double-digit slice of real time. The fast paths below emit and parse
// byte-identical JSON for the overwhelmingly common case — printable-ASCII
// strings with at worst quote/backslash escapes — and defer to
// encoding/json verbatim for anything else (control characters, the
// HTML-escaped <, >, &, non-ASCII, unexpected layout), so the payload
// bytes (and therefore every metered size and golden trace) are identical
// by construction.

import (
	"encoding/json"

	"repro/internal/queue"
)

// fastEncodable reports whether encoding/json would emit s with at most
// \" and \\ escapes: printable ASCII, no HTML-escaped characters. Generic
// over string and []byte so message bodies are checked without a copying
// conversion.
func fastEncodable[T string | []byte](s T) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendQuoted appends s as a JSON string literal with quote/backslash
// escaping (the only escapes fastEncodable admits).
func appendQuoted[T string | []byte](b []byte, s T) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' {
			b = append(b, '\\')
		}
		b = append(b, c)
	}
	return append(b, '"')
}

// EncodeSQSEvent serializes messages into an invocation payload.
func EncodeSQSEvent(msgs []queue.Message) []byte {
	for _, m := range msgs {
		if !fastEncodable(m.ID) || !fastEncodable(m.Receipt) || !fastEncodable(m.Body) {
			return encodeSQSEventSlow(msgs)
		}
	}
	size := len(`{"records":[]}`)
	for _, m := range msgs {
		size += len(`{"messageId":"","receiptHandle":"","body":""},`) +
			len(m.ID) + len(m.Receipt) + len(m.Body) + 8
	}
	b := make([]byte, 0, size)
	b = append(b, `{"records":[`...)
	for i, m := range msgs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"messageId":`...)
		b = appendQuoted(b, m.ID)
		b = append(b, `,"receiptHandle":`...)
		b = appendQuoted(b, m.Receipt)
		b = append(b, `,"body":`...)
		b = appendQuoted(b, m.Body)
		b = append(b, '}')
	}
	return append(b, ']', '}')
}

func encodeSQSEventSlow(msgs []queue.Message) []byte {
	ev := SQSEvent{Records: make([]SQSRecord, len(msgs))}
	for i, m := range msgs {
		ev.Records[i] = SQSRecord{MessageID: m.ID, Receipt: m.Receipt, Body: string(m.Body)}
	}
	b, err := json.Marshal(ev)
	if err != nil {
		panic("faas: encoding SQS event: " + err.Error())
	}
	return b
}

// DecodeSQSEvent parses an invocation payload back into an event.
func DecodeSQSEvent(payload []byte) (SQSEvent, error) {
	if ev, ok := decodeSQSEventFast(payload); ok {
		return ev, nil
	}
	var ev SQSEvent
	err := json.Unmarshal(payload, &ev)
	return ev, err
}

// decodeSQSEventFast parses exactly the layout EncodeSQSEvent's fast path
// emits. Any deviation — stray whitespace, reordered fields, an escape
// other than \" or \\ — reports !ok and the caller falls back to
// encoding/json, so hand-built payloads still decode.
func decodeSQSEventFast(p []byte) (SQSEvent, bool) {
	var ev SQSEvent
	i, n := 0, len(p)
	eat := func(lit string) bool {
		if n-i < len(lit) || string(p[i:i+len(lit)]) != lit {
			return false
		}
		i += len(lit)
		return true
	}
	str := func() (string, bool) {
		if i >= n || p[i] != '"' {
			return "", false
		}
		i++
		start := i
		var buf []byte // lazily materialized when an escape appears
		for i < n {
			switch p[i] {
			case '"':
				if buf == nil {
					s := string(p[start:i])
					i++
					return s, true
				}
				buf = append(buf, p[start:i]...)
				i++
				return string(buf), true
			case '\\':
				// Only the two escapes the fast encoder emits; anything
				// else falls back to encoding/json.
				if i+1 >= n || (p[i+1] != '"' && p[i+1] != '\\') {
					return "", false
				}
				buf = append(buf, p[start:i]...)
				buf = append(buf, p[i+1])
				i += 2
				start = i
			default:
				i++
			}
		}
		return "", false
	}
	if !eat(`{"records":[`) {
		return ev, false
	}
	if eat(`]}`) && i == n {
		ev.Records = []SQSRecord{}
		return ev, true
	}
	for {
		var r SQSRecord
		var ok bool
		if !eat(`{"messageId":`) {
			return ev, false
		}
		if r.MessageID, ok = str(); !ok {
			return ev, false
		}
		if !eat(`,"receiptHandle":`) {
			return ev, false
		}
		if r.Receipt, ok = str(); !ok {
			return ev, false
		}
		if !eat(`,"body":`) {
			return ev, false
		}
		if r.Body, ok = str(); !ok {
			return ev, false
		}
		if !eat(`}`) {
			return ev, false
		}
		ev.Records = append(ev.Records, r)
		if eat(`,`) {
			continue
		}
		if eat(`]}`) && i == n {
			return ev, true
		}
		return ev, false
	}
}
