package faas

import (
	"fmt"
	"time"

	"repro/internal/queue"
	"repro/internal/sim"
)

// SQSRecord is one message in an SQS-triggered invocation payload.
type SQSRecord struct {
	MessageID string `json:"messageId"`
	Receipt   string `json:"receiptHandle"`
	Body      string `json:"body"`
}

// SQSEvent is the payload shape delivered to SQS-triggered functions.
// EncodeSQSEvent and DecodeSQSEvent (sqsjson.go) convert between message
// batches and payload bytes.
type SQSEvent struct {
	Records []SQSRecord `json:"records"`
}

// EventSourceMapping is a poller fleet that drains an SQS queue into a
// function, modeling Lambda's SQS trigger: each poller long-polls the
// queue, pushes its batch through the mapping pipeline, invokes
// synchronously, and deletes the batch only on success (failures reappear
// after the visibility timeout).
type EventSourceMapping struct {
	pf        *Platform
	q         *queue.Queue
	fnName    string
	batchSize int
	pollers   int
	stopped   bool
	idleWait  time.Duration
}

// MapQueue starts an event-source mapping from q to the named function with
// a single poller. batchSize is capped at the queue's 10-message limit.
func (pf *Platform) MapQueue(q *queue.Queue, fnName string, batchSize int) *EventSourceMapping {
	return pf.MapQueueN(q, fnName, batchSize, 1)
}

// MapQueueN starts an event-source mapping with n parallel pollers, the way
// Lambda's SQS event source runs a poller fleet: each poller carries at
// most one in-flight invocation, so n bounds the mapping's concurrency the
// way Lambda's "maximum concurrency" setting does.
func (pf *Platform) MapQueueN(q *queue.Queue, fnName string, batchSize, n int) *EventSourceMapping {
	if batchSize <= 0 || batchSize > queue.MaxBatch {
		batchSize = queue.MaxBatch
	}
	if n < 1 {
		n = 1
	}
	esm := &EventSourceMapping{
		pf:        pf,
		q:         q,
		fnName:    fnName,
		batchSize: batchSize,
		pollers:   n,
		idleWait:  time.Second,
	}
	for i := 0; i < n; i++ {
		pf.net.Kernel().Spawn(fmt.Sprintf("esm/%s/%d", fnName, i), esm.run)
	}
	return esm
}

// Pollers reports the size of the mapping's poller fleet.
func (e *EventSourceMapping) Pollers() int { return e.pollers }

// Stop halts every poller after its current cycle.
func (e *EventSourceMapping) Stop() { e.stopped = true }

func (e *EventSourceMapping) run(p *sim.Proc) {
	for !e.stopped {
		msgs, err := e.q.Receive(p, e.pf.ctlNode, e.batchSize, e.idleWait)
		if err != nil || len(msgs) == 0 {
			continue
		}
		// Mapping pipeline delay between poll and invocation.
		p.Sleep(e.pf.cfg.ESMDispatchDelay.Sample(e.pf.rng))
		_, _, invErr := e.pf.Invoke(p, e.fnName, EncodeSQSEvent(msgs))
		if invErr != nil {
			continue // not deleted; visibility timeout will redeliver
		}
		receipts := make([]string, len(msgs))
		for i, m := range msgs {
			receipts[i] = m.Receipt
		}
		if err := e.q.DeleteBatch(p, e.pf.ctlNode, receipts); err != nil {
			continue
		}
	}
}
