package faas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/statecache"
)

// cacheFixture wires a platform to a state-cache cluster backed by a
// kvstore, with the cluster's periodic flush and gossip pushed out past the
// test horizon so the only path that can persist deltas is the one under
// test (the VM-reclaim drain).
func cacheFixture(t *testing.T, cfg Config, flushNever bool) (*fixture, *statecache.Cluster, *kvstore.Store) {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(31)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	catalog := pricing.Fall2018()
	pf := New("lambda", net, rng.Fork(), cfg, catalog, meter)
	store := kvstore.New("ddb", net, 9, rng.Fork(), kvstore.DefaultConfig(), catalog, meter)
	sccfg := statecache.DefaultConfig()
	if flushNever {
		sccfg.FlushInterval = 24 * time.Hour
		sccfg.GossipInterval = 24 * time.Hour
	}
	cl := statecache.New("cache", net, store, rng.Fork(), sccfg, catalog, meter)
	pf.AttachStateCache(cl)
	caller := net.NewNode("client", 0, netsim.Gbps(10))
	return &fixture{k: k, net: net, pf: pf, meter: meter, caller: caller}, cl, store
}

// TestReclaimedVMDrainsCacheDeltas is the regression test for the silent
// delta-drop bug: a handler absorbs a write into the VM-colocated cache,
// the container expires, the emptied VM is reclaimed and its node recycled
// — and the unflushed delta must still reach the backing store. Before
// reclaimVM detached (and thereby drained) the replica, the state died
// with the VM.
func TestReclaimedVMDrainsCacheDeltas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmTTL = 5 * time.Second
	f, cl, store := cacheFixture(t, cfg, true)

	if err := f.pf.Register(Function{
		Name: "hit", MemoryMB: 256, Timeout: time.Minute,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			ctx.Cache().AddCounter(ctx.Proc(), "hits", 1)
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	var stored int64
	var storeErr error
	f.k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, _, err := f.pf.Invoke(p, "hit", nil); err != nil {
				t.Errorf("invoke: %v", err)
				return
			}
		}
		// Outlive the warm TTL: the reaper empties the VM, reclaim
		// recycles the node, and the drain must persist the deltas.
		p.Sleep(cfg.WarmTTL + 2*time.Second)
		if f.pf.VMCount() != 0 {
			t.Errorf("VMCount = %d after TTL, want 0", f.pf.VMCount())
		}
		it, err := store.Get(p, f.caller, "cache/hits", true)
		if err != nil {
			storeErr = err
			return
		}
		e, err := statecache.DecodeValue(it.Value)
		if err != nil {
			t.Errorf("stored entry undecodable: %v", err)
			return
		}
		stored = e.Counter()
	})
	f.k.RunUntil(sim.Time(time.Minute))

	if errors.Is(storeErr, kvstore.ErrNotFound) {
		t.Fatal("reclaimed VM dropped its cache deltas: key never flushed to the store")
	}
	if storeErr != nil {
		t.Fatalf("store read: %v", storeErr)
	}
	if stored != 3 {
		t.Errorf("flushed counter = %d, want 3", stored)
	}
	if cl.Replicas() != 0 {
		t.Errorf("cluster still tracks %d replicas after reclaim", cl.Replicas())
	}
}

// TestReattachDrainsOldClusterReplicas: re-binding the platform to a
// different cluster must drain each active VM's old replica into the OLD
// cluster's store — and a VM reclaimed later must detach through the
// cluster its replica actually belongs to, not whatever the platform now
// points at (where Detach would be a silent no-op and the deltas lost).
func TestReattachDrainsOldClusterReplicas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmTTL = 5 * time.Second
	f, cl1, store := cacheFixture(t, cfg, true)
	sccfg := statecache.DefaultConfig()
	sccfg.FlushInterval = 24 * time.Hour
	sccfg.GossipInterval = 24 * time.Hour
	cl2 := statecache.New("cache2", f.net, store, simrand.New(99), sccfg,
		pricing.Fall2018(), f.meter)

	if err := f.pf.Register(Function{
		Name: "hit", MemoryMB: 256, Timeout: time.Minute,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			ctx.Cache().AddCounter(ctx.Proc(), "hits", 1)
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	var oldStored, newStored int64
	f.k.Spawn("driver", func(p *sim.Proc) {
		if _, _, err := f.pf.Invoke(p, "hit", nil); err != nil {
			t.Errorf("invoke: %v", err)
			return
		}
		f.pf.AttachStateCache(cl2) // re-bind: cl1's replica must drain
		p.Sleep(time.Second)
		if it, err := store.Get(p, f.caller, "cache/hits", true); err == nil {
			if e, derr := statecache.DecodeValue(it.Value); derr == nil {
				oldStored = e.Counter()
			}
		}
		// A post-re-bind invocation writes into a cl2 replica; its VM's
		// later reclaim must drain into cl2's keyspace.
		if _, _, err := f.pf.Invoke(p, "hit", nil); err != nil {
			t.Errorf("invoke: %v", err)
			return
		}
		p.Sleep(cfg.WarmTTL + 2*time.Second)
		if it, err := store.Get(p, f.caller, "cache2/hits", true); err == nil {
			if e, derr := statecache.DecodeValue(it.Value); derr == nil {
				newStored = e.Counter()
			}
		}
	})
	f.k.RunUntil(sim.Time(time.Minute))
	if oldStored != 1 {
		t.Errorf("old cluster's store has counter %d after re-bind, want 1", oldStored)
	}
	if cl1.Replicas() != 0 {
		t.Errorf("old cluster still tracks %d replicas after re-bind", cl1.Replicas())
	}
	if newStored != 1 {
		t.Errorf("new cluster's store has counter %d after reclaim, want 1", newStored)
	}
}

// TestCtxCacheIsVMColocated: two containers packed onto the same VM share
// one replica; a container on another VM sees a different replica that
// still converges via gossip.
func TestCtxCacheSharedPerVM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContainersPerVM = 1 // force each concurrent invocation onto its own VM
	f, cl, _ := cacheFixture(t, cfg, false)

	caches := make(chan *statecache.Cache, 2)
	if err := f.pf.Register(Function{
		Name: "probe", MemoryMB: 256, Timeout: time.Minute,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			ctx.Cache().AddCounter(ctx.Proc(), "seen", 1)
			caches <- ctx.Cache()
			ctx.Proc().Sleep(time.Second) // hold both invocations concurrent
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	var wg sim.WaitGroup
	f.k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			p.Spawn("call", func(cp *sim.Proc) {
				defer wg.Done()
				if _, _, err := f.pf.Invoke(cp, "probe", nil); err != nil {
					t.Errorf("invoke: %v", err)
				}
			})
		}
		wg.Wait(p)
	})
	f.k.RunUntil(sim.Time(30 * time.Second))
	close(caches)
	a, b := <-caches, <-caches
	if a == nil || b == nil {
		t.Fatal("handler saw a nil cache")
	}
	if a == b {
		t.Fatal("one-container-per-VM invocations shared a replica")
	}
	if got := a.PeekCounter("seen"); got != 2 {
		t.Errorf("replica a converged to %d, want 2", got)
	}
	if got := b.PeekCounter("seen"); got != 2 {
		t.Errorf("replica b converged to %d, want 2", got)
	}
	if cl.Staleness().Count() == 0 {
		t.Error("gossip recorded no staleness samples")
	}
}
