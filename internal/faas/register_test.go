package faas

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// run drives the kernel until fn's spawned process completes. The horizon
// stays below the 10-minute WarmTTL so post-run warm-pool assertions see
// the pool as the driver left it, not after the eager reaper has correctly
// expired it.
func runDriver(t *testing.T, f *fixture, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	f.k.Spawn("driver", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	f.k.RunUntil(f.k.Now() + sim.Time(5*time.Minute))
	if !done {
		t.Fatal("driver did not finish")
	}
}

// TestRegisterReplaceDrainsWarmPool: re-registering a function must retire
// its idle warm containers so the next invocation cold-starts into the new
// deployment instead of reusing a container holding the old handler's
// container-local state.
func TestRegisterReplaceDrainsWarmPool(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	v1 := Function{Name: "fn", MemoryMB: 128, Timeout: time.Minute,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			ctx.Local()["deploy"] = "v1"
			return []byte("v1"), nil
		}}
	if err := f.pf.Register(v1); err != nil {
		t.Fatal(err)
	}
	runDriver(t, f, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, _, err := f.pf.Invoke(p, "fn", nil); err != nil {
				t.Error(err)
			}
		}
	})
	if got := f.pf.WarmIdle("fn"); got != 1 {
		t.Fatalf("warm idle after sequential invokes = %d, want 1", got)
	}

	v2 := Function{Name: "fn", MemoryMB: 128, Timeout: time.Minute,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			if stale, ok := ctx.Local()["deploy"]; ok {
				t.Errorf("v2 invocation saw v1 container-local state %q", stale)
			}
			if !ctx.ColdStart() {
				t.Error("first invocation after replace reused a stale warm container")
			}
			return []byte("v2"), nil
		}}
	if err := f.pf.Register(v2); err != nil {
		t.Fatal(err)
	}
	if got := f.pf.WarmIdle("fn"); got != 0 {
		t.Fatalf("warm idle after replace = %d, want 0 (pool drained)", got)
	}
	runDriver(t, f, func(p *sim.Proc) {
		resp, rep, err := f.pf.Invoke(p, "fn", nil)
		if err != nil {
			t.Error(err)
		}
		if string(resp) != "v2" {
			t.Errorf("response = %q, want v2", resp)
		}
		if !rep.ColdStart {
			t.Error("report says warm start after replace")
		}
	})
}

// TestRegisterReplaceKeepsStatsAndReservedConcurrency: counters and the
// reserved-concurrency cap are function-level state keyed by name — a
// deploy must not reset them.
func TestRegisterReplaceKeepsStatsAndReservedConcurrency(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	if err := f.pf.Register(Function{Name: "fn", MemoryMB: 128,
		Timeout: time.Minute, Handler: noop}); err != nil {
		t.Fatal(err)
	}
	if err := f.pf.SetReservedConcurrency("fn", 1); err != nil {
		t.Fatal(err)
	}
	runDriver(t, f, func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			f.pf.Invoke(p, "fn", nil)
		}
	})
	if st, _ := f.pf.Stats("fn"); st.Invocations != 2 {
		t.Fatalf("invocations before replace = %d, want 2", st.Invocations)
	}
	if err := f.pf.Register(Function{Name: "fn", MemoryMB: 128,
		Timeout: time.Minute, Handler: noop}); err != nil {
		t.Fatal(err)
	}
	if st, _ := f.pf.Stats("fn"); st.Invocations != 2 {
		t.Errorf("invocations reset by replace: %d, want 2", st.Invocations)
	}
	// The cap must still throttle: two parallel invokes through one slot.
	runDriver(t, f, func(p *sim.Proc) {
		var wg sim.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			p.Spawn("par", func(ip *sim.Proc) {
				defer wg.Done()
				f.pf.Invoke(ip, "fn", nil)
			})
		}
		wg.Wait(p)
	})
	st, _ := f.pf.Stats("fn")
	if st.Invocations != 4 {
		t.Errorf("cumulative invocations = %d, want 4", st.Invocations)
	}
	if st.Throttles == 0 {
		t.Error("reserved concurrency lost across replace: no throttles recorded")
	}
}

// TestRegisterReplaceDropsInFlightContainer: a container that is executing
// the old deployment when the replace happens must finish but not re-enter
// the warm pool.
func TestRegisterReplaceDropsInFlightContainer(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	slow := Function{Name: "fn", MemoryMB: 128, Timeout: time.Minute,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			ctx.Proc().Sleep(10 * time.Second)
			return []byte("old"), nil
		}}
	if err := f.pf.Register(slow); err != nil {
		t.Fatal(err)
	}
	var resp []byte
	f.k.Spawn("invoker", func(p *sim.Proc) {
		resp, _, _ = f.pf.Invoke(p, "fn", nil)
	})
	// Let the invocation start executing, then replace mid-flight.
	f.k.RunUntil(sim.Time(5 * time.Second))
	if err := f.pf.Register(Function{Name: "fn", MemoryMB: 128,
		Timeout: time.Minute, Handler: noop}); err != nil {
		t.Fatal(err)
	}
	f.k.RunUntil(sim.Time(time.Hour))
	if string(resp) != "old" {
		t.Fatalf("in-flight invocation response = %q, want old deployment's output", resp)
	}
	if got := f.pf.WarmIdle("fn"); got != 0 {
		t.Errorf("stale in-flight container re-entered the warm pool (idle = %d)", got)
	}
}

// TestRegisterReplaceReleasesVMSlots: draining must free the containers'
// VM packing slots so capacity is not leaked across deploys.
func TestRegisterReplaceReleasesVMSlots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContainersPerVM = 2
	f := newFixture(t, cfg)
	if err := f.pf.Register(Function{Name: "fn", MemoryMB: 128,
		Timeout: time.Minute, Handler: noop}); err != nil {
		t.Fatal(err)
	}
	// Warm up two containers in parallel (fills one VM).
	runDriver(t, f, func(p *sim.Proc) {
		var wg sim.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			p.Spawn("par", func(ip *sim.Proc) {
				defer wg.Done()
				f.pf.Invoke(ip, "fn", nil)
			})
		}
		wg.Wait(p)
	})
	if got := f.pf.VMCount(); got != 1 {
		t.Fatalf("VM count = %d, want 1", got)
	}
	for i := 0; i < 3; i++ { // repeated deploys must not leak slots
		if err := f.pf.Register(Function{Name: "fn", MemoryMB: 128,
			Timeout: time.Minute, Handler: noop}); err != nil {
			t.Fatal(err)
		}
		runDriver(t, f, func(p *sim.Proc) {
			var wg sim.WaitGroup
			for j := 0; j < 2; j++ {
				wg.Add(1)
				p.Spawn("par", func(ip *sim.Proc) {
					defer wg.Done()
					f.pf.Invoke(ip, "fn", nil)
				})
			}
			wg.Wait(p)
		})
	}
	if got := f.pf.VMCount(); got != 1 {
		t.Errorf("VM count after 3 redeploys = %d, want 1 (packing slots leaked)", got)
	}
}
