package faas

// Per-function reserved concurrency and invocation statistics, mirroring
// Lambda's reserved-concurrency knob and CloudWatch-style counters. These
// matter to anyone sizing the §3.1 workloads: reserved concurrency is the
// only admission control FaaS offers, and the stats are how experiments
// observe cold-start rates without instrumenting handlers.

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// FunctionStats are cumulative per-function counters.
type FunctionStats struct {
	Invocations     int64
	Errors          int64
	Timeouts        int64
	ColdStarts      int64
	Throttles       int64 // invocations that waited on reserved concurrency
	PeakConcurrency int   // high-water mark of simultaneous executions
	TotalTime       time.Duration
	BilledTime      time.Duration

	// inFlight is the platform-managed count of executions running now;
	// intervalPeak is its high-water mark since the last
	// TakePeakConcurrency call (the autoscaler's target-tracking signal);
	// provisioned counts the function's allocated provisioned containers.
	inFlight     int
	intervalPeak int
	provisioned  int
}

// ColdStartRate returns the fraction of invocations that cold-started.
func (s FunctionStats) ColdStartRate() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Invocations)
}

// MeanDuration returns the mean handler execution time.
func (s FunctionStats) MeanDuration() time.Duration {
	if s.Invocations == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.Invocations)
}

// Stats returns a copy of the named function's counters. Counters are
// cumulative across deployments: replacing a function with Register keeps
// its history, like CloudWatch metrics keyed by function name.
func (pf *Platform) Stats(name string) (FunctionStats, error) {
	fn, ok := pf.functions[name]
	if !ok {
		return FunctionStats{}, fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	return *fn.stats, nil
}

// beginExecution admits one execution into the fleet's and the function's
// concurrency accounting (called after the account-concurrency slot is
// held, so the high-water marks measure actual simultaneous executions).
func (pf *Platform) beginExecution(fn *Function) {
	pf.inFlight++
	if pf.inFlight > pf.peakConcurrency {
		pf.peakConcurrency = pf.inFlight
	}
	st := fn.stats
	st.inFlight++
	if st.inFlight > st.PeakConcurrency {
		st.PeakConcurrency = st.inFlight
	}
	if st.inFlight > st.intervalPeak {
		st.intervalPeak = st.inFlight
	}
}

func (pf *Platform) endExecution(fn *Function) {
	pf.inFlight--
	fn.stats.inFlight--
}

// TakePeakConcurrency returns the named function's peak simultaneous
// executions since the previous call (or since startup) and restarts the
// observation window at the current in-flight level. This is the
// target-tracking signal the provisioned-concurrency autoscaler consumes.
func (pf *Platform) TakePeakConcurrency(name string) (int, error) {
	fn, ok := pf.functions[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	peak := fn.stats.intervalPeak
	fn.stats.intervalPeak = fn.stats.inFlight
	return peak, nil
}

// FleetStats snapshots the platform-wide serving fleet: how many VMs are
// active, how tightly containers are packed, how much warm capacity is
// idle, and the concurrency/cold-start picture across all functions.
type FleetStats struct {
	ActiveVMs       int     // VMs hosting at least one container
	Containers      int     // container slots in use across those VMs
	VMUtilization   float64 // Containers / (ActiveVMs x ContainersPerVM)
	WarmIdle        int     // idle warm containers, all functions
	ProvisionedIdle int     // the provisioned subset of WarmIdle
	InFlight        int     // executions running now
	PeakConcurrency int     // fleet-wide high-water mark
	Invocations     int64   // cumulative, all functions
	ColdStarts      int64
}

// ColdStartRate returns the fleet-wide fraction of invocations that
// cold-started.
func (s FleetStats) ColdStartRate() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Invocations)
}

// FleetStats returns the current platform-wide snapshot.
func (pf *Platform) FleetStats() FleetStats {
	s := FleetStats{
		ActiveVMs:       len(pf.vms),
		InFlight:        pf.inFlight,
		PeakConcurrency: pf.peakConcurrency,
	}
	for _, vm := range pf.vms {
		s.Containers += vm.containers
	}
	if s.ActiveVMs > 0 {
		s.VMUtilization = float64(s.Containers) / float64(s.ActiveVMs*pf.cfg.ContainersPerVM)
	}
	for _, pool := range pf.idle {
		s.WarmIdle += len(pool)
		for _, cont := range pool {
			if cont.provisioned {
				s.ProvisionedIdle++
			}
		}
	}
	for _, fn := range pf.functions {
		s.Invocations += fn.stats.Invocations
		s.ColdStarts += fn.stats.ColdStarts
	}
	return s
}

// SetReservedConcurrency caps the named function's simultaneous executions
// (n <= 0 removes the cap). Invocations beyond the cap queue FIFO, like
// Lambda throttling with retry.
func (pf *Platform) SetReservedConcurrency(name string, n int) error {
	fn, ok := pf.functions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	if n <= 0 {
		fn.reserved = nil
		return nil
	}
	fn.reserved = sim.NewResource(n)
	return nil
}

// acquireReserved blocks until the function's reserved-concurrency slot is
// available, counting a throttle if it had to wait.
func (fn *Function) acquireReserved(p *sim.Proc) {
	if fn.reserved == nil {
		return
	}
	if fn.reserved.TryAcquire() {
		return
	}
	fn.stats.Throttles++
	fn.reserved.Acquire(p)
}

func (fn *Function) releaseReserved() {
	if fn.reserved != nil {
		fn.reserved.Release()
	}
}
