package faas

// Per-function reserved concurrency and invocation statistics, mirroring
// Lambda's reserved-concurrency knob and CloudWatch-style counters. These
// matter to anyone sizing the §3.1 workloads: reserved concurrency is the
// only admission control FaaS offers, and the stats are how experiments
// observe cold-start rates without instrumenting handlers.

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// FunctionStats are cumulative per-function counters.
type FunctionStats struct {
	Invocations int64
	Errors      int64
	Timeouts    int64
	ColdStarts  int64
	Throttles   int64 // invocations that waited on reserved concurrency
	TotalTime   time.Duration
	BilledTime  time.Duration
}

// ColdStartRate returns the fraction of invocations that cold-started.
func (s FunctionStats) ColdStartRate() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Invocations)
}

// MeanDuration returns the mean handler execution time.
func (s FunctionStats) MeanDuration() time.Duration {
	if s.Invocations == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.Invocations)
}

// Stats returns a copy of the named function's counters. Counters are
// cumulative across deployments: replacing a function with Register keeps
// its history, like CloudWatch metrics keyed by function name.
func (pf *Platform) Stats(name string) (FunctionStats, error) {
	fn, ok := pf.functions[name]
	if !ok {
		return FunctionStats{}, fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	return *fn.stats, nil
}

// SetReservedConcurrency caps the named function's simultaneous executions
// (n <= 0 removes the cap). Invocations beyond the cap queue FIFO, like
// Lambda throttling with retry.
func (pf *Platform) SetReservedConcurrency(name string, n int) error {
	fn, ok := pf.functions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	if n <= 0 {
		fn.reserved = nil
		return nil
	}
	fn.reserved = sim.NewResource(n)
	return nil
}

// acquireReserved blocks until the function's reserved-concurrency slot is
// available, counting a throttle if it had to wait.
func (fn *Function) acquireReserved(p *sim.Proc) {
	if fn.reserved == nil {
		return
	}
	if fn.reserved.TryAcquire() {
		return
	}
	fn.stats.Throttles++
	fn.reserved.Acquire(p)
}

func (fn *Function) releaseReserved() {
	if fn.reserved != nil {
		fn.reserved.Release()
	}
}
