package faas

// Direct table-driven coverage for the fleet-wide concurrency accounting:
// FleetStats' high-water marks were previously only read through the
// faasscale experiment, where a bookkeeping regression shows up as a
// golden diff rather than a pointed unit failure.

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// runWaves registers one holding function per named wave and invokes each
// wave's count concurrently, waves back to back (each waits for the
// previous to finish). Handlers hold for 2s of virtual time so a wave's
// invocations overlap each other but not the next wave's. The returned
// FleetStats snapshot is taken the instant the last wave returns — before
// the warm-pool reaper starts emptying the fleet.
func runWaves(t *testing.T, f *fixture, waves [][2]any) FleetStats {
	t.Helper()
	const hold = 2 * time.Second
	for _, w := range waves {
		name := w[0].(string)
		if err := f.pf.Register(Function{
			Name: name, MemoryMB: 512, Timeout: time.Minute,
			Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
				ctx.Proc().Sleep(hold)
				return nil, nil
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := false
	var snap FleetStats
	f.k.Spawn("driver", func(p *sim.Proc) {
		for _, w := range waves {
			name, n := w[0].(string), w[1].(int)
			var wg sim.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				p.Spawn("call/"+name, func(cp *sim.Proc) {
					defer wg.Done()
					if _, _, err := f.pf.Invoke(cp, name, nil); err != nil {
						t.Errorf("invoke %s: %v", name, err)
					}
				})
			}
			wg.Wait(p)
		}
		snap = f.pf.FleetStats()
		done = true
	})
	f.k.RunUntil(sim.Time(time.Hour))
	if !done {
		t.Fatal("waves did not finish")
	}
	return snap
}

func TestFleetStatsHighWaterMarks(t *testing.T) {
	cases := []struct {
		name  string
		waves [][2]any // function name, concurrent invocations
		// wantPeak is the fleet-wide high-water mark: the largest single
		// wave (waves do not overlap each other).
		wantPeak     int
		wantFnPeak   map[string]int
		wantActiveVM int // ceil(largest wave / ContainersPerVM) with 20/VM
	}{
		{
			name:         "single wave",
			waves:        [][2]any{{"a", 7}},
			wantPeak:     7,
			wantFnPeak:   map[string]int{"a": 7},
			wantActiveVM: 1,
		},
		{
			name:         "later smaller wave keeps the mark",
			waves:        [][2]any{{"a", 12}, {"b", 5}},
			wantPeak:     12,
			wantFnPeak:   map[string]int{"a": 12, "b": 5},
			wantActiveVM: 1,
		},
		{
			name:         "later larger wave raises the mark",
			waves:        [][2]any{{"a", 4}, {"b", 25}},
			wantPeak:     25,
			wantFnPeak:   map[string]int{"a": 4, "b": 25},
			wantActiveVM: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t, DefaultConfig())
			s := runWaves(t, f, tc.waves)
			if s.PeakConcurrency != tc.wantPeak {
				t.Errorf("fleet PeakConcurrency = %d, want %d", s.PeakConcurrency, tc.wantPeak)
			}
			if s.InFlight != 0 {
				t.Errorf("InFlight = %d after all waves returned, want 0", s.InFlight)
			}
			for name, want := range tc.wantFnPeak {
				st, err := f.pf.Stats(name)
				if err != nil {
					t.Fatal(err)
				}
				if st.PeakConcurrency != want {
					t.Errorf("function %s PeakConcurrency = %d, want %d", name, st.PeakConcurrency, want)
				}
				if st.Invocations != int64(want) {
					t.Errorf("function %s Invocations = %d, want %d", name, st.Invocations, want)
				}
			}
			if s.ActiveVMs != tc.wantActiveVM {
				t.Errorf("ActiveVMs = %d, want %d (20 containers pack per VM)", s.ActiveVMs, tc.wantActiveVM)
			}
			// All containers idle-warm now; utilization ties the two counts.
			if s.Containers != s.WarmIdle {
				t.Errorf("Containers = %d but WarmIdle = %d with nothing in flight", s.Containers, s.WarmIdle)
			}
			wantUtil := float64(s.Containers) / float64(s.ActiveVMs*20)
			if s.VMUtilization != wantUtil {
				t.Errorf("VMUtilization = %v, want %v", s.VMUtilization, wantUtil)
			}
			if got := s.ColdStartRate(); got <= 0 || got > 1 {
				t.Errorf("ColdStartRate = %v, want in (0, 1]", got)
			}
		})
	}
}
