package faas

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/objectstore"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// TestPackedFunctionsContendForStorageBandwidth is the integration test for
// the paper's core architectural claim: because one user's functions are
// packed onto shared VMs, their storage fetches contend on the VM NIC, so
// fetch time grows with concurrency even though the storage service itself
// has headroom.
func TestPackedFunctionsContendForStorageBandwidth(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(61)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	catalog := pricing.Fall2018()
	pf := New("lambda", net, rng.Fork(), DefaultConfig(), catalog, meter)
	// A store with a generous per-connection cap so the VM NIC is the
	// only bottleneck in play.
	cfg := objectstore.DefaultConfig()
	cfg.PerConnBps = netsim.Gbps(10)
	store := objectstore.New("s3", net, 9, rng.Fork(), cfg, catalog, meter)
	staging := net.NewNode("staging", 0, netsim.Gbps(10))

	const objectMB = 20
	fetchTime := map[int][]time.Duration{}
	var concurrencyLevel int

	if err := pf.Register(Function{
		Name: "fetcher", MemoryMB: 512, Timeout: 5 * time.Minute,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			p := ctx.Proc()
			start := p.Now()
			if _, err := store.Get(p, ctx.Node(), "blob"); err != nil {
				return nil, err
			}
			lvl := concurrencyLevel
			fetchTime[lvl] = append(fetchTime[lvl], time.Duration(p.Now()-start))
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	done := false
	k.Spawn("driver", func(p *sim.Proc) {
		store.PutSized(p, staging, "blob", objectMB*1e6)
		for _, n := range []int{1, 10} {
			concurrencyLevel = n
			var wg sim.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				p.Spawn("inv", func(ip *sim.Proc) {
					defer wg.Done()
					if _, _, err := pf.Invoke(ip, "fetcher", nil); err != nil {
						t.Errorf("invoke: %v", err)
					}
				})
			}
			wg.Wait(p)
			p.Sleep(time.Second)
		}
		done = true
	})
	k.RunUntil(sim.Time(time.Hour))
	if !done {
		t.Fatal("driver did not finish")
	}

	mean := func(ds []time.Duration) time.Duration {
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum / time.Duration(len(ds))
	}
	solo := mean(fetchTime[1])
	packed := mean(fetchTime[10])
	// 20MB at 538Mbps is ~0.3s solo; ten co-located fetchers share the
	// NIC, so each takes several times longer. (Not a full 10x: the
	// invocations' cold starts stagger the transfer windows.)
	if solo < 250*time.Millisecond || solo > 400*time.Millisecond {
		t.Errorf("solo fetch = %v, want ~0.3s", solo)
	}
	if packed < 3*solo {
		t.Errorf("packed fetch %v vs solo %v: NIC contention missing", packed, solo)
	}
}
