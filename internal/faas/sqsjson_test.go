package faas

import (
	"encoding/json"
	"testing"

	"repro/internal/queue"
)

// TestSQSEventCodecMatchesEncodingJSON pins the fast codec's contract: for
// every input — fast path or fallback — the encoded payload must be
// byte-identical to encoding/json's output (payload length feeds metering
// and fabric transfer sizes), and decoding must invert it exactly.
func TestSQSEventCodecMatchesEncodingJSON(t *testing.T) {
	cases := [][]queue.Message{
		{},
		{{ID: "q-1", Receipt: "rcpt-q-1", Body: []byte("hello")}},
		{
			{ID: "q-1", Receipt: "rcpt-q-1", Body: []byte(`{"seq":1,"sent":42}`)},
			{ID: "q-2", Receipt: "rcpt-q-2", Body: []byte(`quote " and slash \ inside`)},
		},
		// Fallback territory: HTML-escaped characters, control bytes,
		// non-ASCII.
		{{ID: "a<b>c&d", Receipt: "r", Body: []byte("x")}},
		{{ID: "q", Receipt: "r", Body: []byte("line\nbreak\ttab")}},
		{{ID: "q", Receipt: "r", Body: []byte("ünïcode ☃")}},
		{{ID: "", Receipt: "", Body: nil}},
	}
	for i, msgs := range cases {
		got := EncodeSQSEvent(msgs)
		ev := SQSEvent{Records: make([]SQSRecord, len(msgs))}
		for j, m := range msgs {
			ev.Records[j] = SQSRecord{MessageID: m.ID, Receipt: m.Receipt, Body: string(m.Body)}
		}
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("case %d: encoded\n %s\nwant\n %s", i, got, want)
		}
		dec, err := DecodeSQSEvent(got)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(dec.Records) != len(msgs) {
			t.Fatalf("case %d: decoded %d records, want %d", i, len(dec.Records), len(msgs))
		}
		for j, r := range dec.Records {
			m := msgs[j]
			if r.MessageID != m.ID || r.Receipt != m.Receipt || r.Body != string(m.Body) {
				t.Errorf("case %d record %d: round trip %+v != %+v", i, j, r, m)
			}
		}
	}
}

// TestDecodeSQSEventForeignLayout verifies the strict fast parser defers
// to encoding/json on layouts it did not produce.
func TestDecodeSQSEventForeignLayout(t *testing.T) {
	payload := []byte(` { "records" : [ { "body" : "b" , "messageId" : "m" , "receiptHandle" : "r" } ] } `)
	ev, err := DecodeSQSEvent(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Records) != 1 || ev.Records[0].MessageID != "m" ||
		ev.Records[0].Receipt != "r" || ev.Records[0].Body != "b" {
		t.Errorf("foreign layout decoded to %+v", ev.Records)
	}
	if _, err := DecodeSQSEvent([]byte(`{"records":`)); err == nil {
		t.Error("truncated payload decoded without error")
	}
}
