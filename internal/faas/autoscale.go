package faas

// Target-tracking autoscaler for provisioned concurrency, modeled on AWS
// Application Auto Scaling's ProvisionedConcurrencyUtilization policy: a
// control-loop process samples the function's peak simultaneous executions
// each interval and steers the provisioned warm pool toward
//
//	provisioned = ceil(peak concurrency / TargetUtilization)
//
// clamped to [Min, Max]. Scale-out provisions new containers (paying the
// cold-start latency off the request path); scale-in retires idle
// provisioned containers, newest first, deferring any that are mid-
// invocation to a later tick. The point for the paper's story: cold starts
// — the latency half of §3's critique — can be bought away at a metered
// keep-warm price, and the faasscale experiment prices that trade.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// AutoscalerConfig parameterizes a provisioned-concurrency autoscaler.
type AutoscalerConfig struct {
	// Function is the registered function to scale.
	Function string
	// Min and Max bound the provisioned-concurrency target (0 <= Min <= Max).
	Min, Max int
	// TargetUtilization is the desired ratio of peak concurrency to
	// provisioned containers, in (0, 1]. AWS's default policy uses 0.7.
	TargetUtilization float64
	// Interval is the control-loop period (default 10s).
	Interval time.Duration
	// ScaleInCooldown is how long demand must stay below the current
	// target before the pool shrinks (default 3x Interval). Scale-out is
	// always immediate.
	ScaleInCooldown time.Duration
}

// Autoscaler is a running provisioned-concurrency control loop.
type Autoscaler struct {
	pf      *Platform
	cfg     AutoscalerConfig
	target  int
	outs    int
	ins     int
	stopped bool
}

// Autoscale starts a target-tracking autoscaler for the named function's
// provisioned concurrency. The control loop runs on the platform's kernel
// until Stop.
func (pf *Platform) Autoscale(cfg AutoscalerConfig) (*Autoscaler, error) {
	if _, ok := pf.functions[cfg.Function]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchFunction, cfg.Function)
	}
	if cfg.Min < 0 || cfg.Max < cfg.Min {
		return nil, fmt.Errorf("faas: autoscaler bounds %d..%d invalid", cfg.Min, cfg.Max)
	}
	if cfg.TargetUtilization <= 0 || cfg.TargetUtilization > 1 {
		return nil, fmt.Errorf("faas: target utilization %.2f outside (0, 1]", cfg.TargetUtilization)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.ScaleInCooldown <= 0 {
		cfg.ScaleInCooldown = 3 * cfg.Interval
	}
	a := &Autoscaler{pf: pf, cfg: cfg}
	pf.net.Kernel().Spawn("autoscaler/"+cfg.Function, a.run)
	return a, nil
}

// Target reports the current provisioned-concurrency target.
func (a *Autoscaler) Target() int { return a.target }

// ScaleOuts reports how many ticks grew the target.
func (a *Autoscaler) ScaleOuts() int { return a.outs }

// ScaleIns reports how many ticks shrank the target.
func (a *Autoscaler) ScaleIns() int { return a.ins }

// Stop halts the control loop after its current tick. Provisioned
// containers already allocated stay (and keep billing) until retired.
func (a *Autoscaler) Stop() { a.stopped = true }

func (a *Autoscaler) run(p *sim.Proc) {
	if a.cfg.Min > 0 {
		a.target = a.cfg.Min
		if err := a.pf.ProvisionConcurrency(p, a.cfg.Function, a.cfg.Min); err != nil {
			panic("faas: autoscaler initial provision: " + err.Error())
		}
	}
	// Discard concurrency observed before the loop's first full interval.
	a.pf.TakePeakConcurrency(a.cfg.Function)
	lastDemand := p.Now()
	for !a.stopped {
		p.Sleep(a.cfg.Interval)
		if a.stopped {
			return
		}
		peak, err := a.pf.TakePeakConcurrency(a.cfg.Function)
		if err != nil {
			return // function disappeared; nothing left to scale
		}
		// Reconcile with reality before acting: provisioned containers
		// can be destroyed out-of-band (a re-deploy drains the pool, a
		// timeout kills the container it ran in), and the loop must
		// replace them rather than trust its own last target.
		if actual := a.pf.ProvisionedFor(a.cfg.Function); actual < a.target {
			a.target = actual
		}
		desired := int(math.Ceil(float64(peak) / a.cfg.TargetUtilization))
		if desired > a.cfg.Max {
			desired = a.cfg.Max
		}
		if desired < a.cfg.Min {
			desired = a.cfg.Min
		}
		if desired >= a.target {
			lastDemand = p.Now()
		}
		switch {
		case desired > a.target:
			n := desired - a.target
			a.target = desired
			a.outs++
			if err := a.pf.ProvisionConcurrency(p, a.cfg.Function, n); err != nil {
				panic("faas: autoscaler scale-out: " + err.Error())
			}
		case desired < a.target && p.Now()-lastDemand >= a.cfg.ScaleInCooldown:
			// Only idle provisioned containers can be retired now; any
			// shortfall stays in the target and is retried next tick.
			if removed := a.pf.RetireProvisioned(a.cfg.Function, a.target-desired); removed > 0 {
				a.target -= removed
				a.ins++
			}
		}
	}
}
