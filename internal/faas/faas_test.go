package faas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k      *sim.Kernel
	net    *netsim.Network
	pf     *Platform
	meter  *pricing.Meter
	caller *netsim.Node
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(21)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	pf := New("lambda", net, rng.Fork(), cfg, pricing.Fall2018(), meter)
	caller := net.NewNode("client", 0, netsim.Gbps(10))
	return &fixture{k: k, net: net, pf: pf, meter: meter, caller: caller}
}

func noop(ctx *Ctx, payload []byte) ([]byte, error) { return []byte("ok"), nil }

func TestRegisterValidation(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	if err := f.pf.Register(Function{Name: "", MemoryMB: 128, Handler: noop}); err == nil {
		t.Error("empty name accepted")
	}
	if err := f.pf.Register(Function{Name: "f", MemoryMB: 0, Handler: noop}); err == nil {
		t.Error("zero memory accepted")
	}
	if err := f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: nil}); err == nil {
		t.Error("nil handler accepted")
	}
	err := f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop, Timeout: 16 * time.Minute})
	if !errors.Is(err, ErrBadTimeout) {
		t.Errorf("over-limit timeout: %v", err)
	}
	if err := f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop}); err != nil {
		t.Errorf("valid function rejected: %v", err)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		_, _, err = f.pf.Invoke(p, "ghost", nil)
	})
	f.k.Run()
	if !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("err = %v", err)
	}
}

func TestPayloadLimit(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		_, _, err = f.pf.Invoke(p, "f", make([]byte, PayloadLimit+1))
	})
	f.k.Run()
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("err = %v", err)
	}
}

// Calibration: Table 1's first column — a no-op invocation with a 1KB
// argument, averaged over 1,000 calls, lands at ~303ms.
func TestNoOpInvokeMatchesTable1(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "noop", MemoryMB: 128, Handler: noop})
	const trials = 1000
	var total sim.Time
	f.k.Spawn("c", func(p *sim.Proc) {
		arg := make([]byte, 1024)
		for i := 0; i < trials; i++ {
			start := p.Now()
			if _, _, err := f.pf.Invoke(p, "noop", arg); err != nil {
				t.Errorf("Invoke: %v", err)
				return
			}
			total += p.Now() - start
		}
	})
	f.k.Run()
	mean := time.Duration(int64(total) / trials)
	if mean < 290*time.Millisecond || mean > 316*time.Millisecond {
		t.Errorf("no-op invoke mean = %v, paper reports 303ms", mean)
	}
}

func TestColdThenWarm(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	var reports []Report
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			_, rep, _ := f.pf.Invoke(p, "f", nil)
			reports = append(reports, rep)
		}
	})
	f.k.Run()
	if !reports[0].ColdStart {
		t.Error("first invocation should cold start")
	}
	if reports[1].ColdStart || reports[2].ColdStart {
		t.Error("subsequent sequential invocations should be warm")
	}
}

func TestWarmTTLExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmTTL = time.Minute
	f := newFixture(t, cfg)
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	var second Report
	f.k.Spawn("c", func(p *sim.Proc) {
		f.pf.Invoke(p, "f", nil)
		p.Sleep(2 * time.Minute) // past TTL
		_, second, _ = f.pf.Invoke(p, "f", nil)
	})
	f.k.Run()
	if !second.ColdStart {
		t.Error("invocation after warm TTL should cold start")
	}
}

func TestLocalStateSurvivesWarmStartsOnly(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		n, _ := ctx.Local()["count"].(int)
		ctx.Local()["count"] = n + 1
		return []byte{byte(n + 1)}, nil
	}})
	var counts []byte
	f.k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			resp, _, _ := f.pf.Invoke(p, "f", nil)
			counts = append(counts, resp[0])
		}
	})
	f.k.Run()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 3 {
		t.Errorf("warm container state = %v, want [1 2 3]", counts)
	}
}

func TestTimeoutKillsAndBillsCapped(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{
		Name: "slow", MemoryMB: 1024, Timeout: time.Second,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			ctx.Proc().Sleep(10 * time.Second)
			return nil, nil
		},
	})
	var rep Report
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		_, rep, err = f.pf.Invoke(p, "slow", nil)
	})
	f.k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if rep.BilledDuration != time.Second {
		t.Errorf("billed %v, want capped at 1s", rep.BilledDuration)
	}
}

func TestTimedOutContainerNotReused(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	calls := 0
	f.pf.Register(Function{
		Name: "flaky", MemoryMB: 128, Timeout: time.Second,
		Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			calls++
			if calls == 1 {
				ctx.Proc().Sleep(5 * time.Second) // first call times out
			}
			return nil, nil
		},
	})
	var second Report
	f.k.Spawn("c", func(p *sim.Proc) {
		f.pf.Invoke(p, "flaky", nil)
		_, second, _ = f.pf.Invoke(p, "flaky", nil)
	})
	f.k.Run()
	if !second.ColdStart {
		t.Error("container killed by timeout must not be reused warm")
	}
}

func TestMemoryScaledCompute(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(t, cfg)
	elapsed := map[int]time.Duration{}
	for _, mem := range []int{640, 1769} {
		mem := mem
		name := map[int]string{640: "small", 1769: "big"}[mem]
		f.pf.Register(Function{Name: name, MemoryMB: mem, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
			start := ctx.Proc().Now()
			ctx.Compute(100e6)
			elapsed[mem] = time.Duration(ctx.Proc().Now() - start)
			return nil, nil
		}})
	}
	f.k.Spawn("c", func(p *sim.Proc) {
		f.pf.Invoke(p, "small", nil)
		f.pf.Invoke(p, "big", nil)
	})
	f.k.Run()
	// Paper calibration: 100MB at 640MB memory takes 0.59s.
	if e := elapsed[640]; e < 580*time.Millisecond || e > 600*time.Millisecond {
		t.Errorf("640MB compute over 100MB = %v, paper reports 0.59s", e)
	}
	// A full-core function should be ~2.76x faster (1769/640).
	ratio := float64(elapsed[640]) / float64(elapsed[1769])
	if ratio < 2.6 || ratio > 2.9 {
		t.Errorf("640MB/1769MB compute ratio = %.2f, want ~2.76", ratio)
	}
}

func TestConcurrentInvocationsPackOntoSharedVMs(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	hold := &sim.Latch{}
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		hold.Wait(ctx.Proc())
		return nil, nil
	}})
	var wg sim.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		f.k.Spawn("c", func(p *sim.Proc) {
			defer wg.Done()
			f.pf.Invoke(p, "f", nil)
		})
	}
	f.k.Spawn("releaser", func(p *sim.Proc) {
		p.Sleep(5 * time.Second) // all 20 are now in their handlers
		if got := f.pf.VMCount(); got != 1 {
			t.Errorf("20 concurrent containers used %d VMs, want 1 (packed)", got)
		}
		hold.Release()
		wg.Wait(p)
	})
	f.k.Run()
}

func TestTwentyFirstContainerSpillsToSecondVM(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	hold := &sim.Latch{}
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		hold.Wait(ctx.Proc())
		return nil, nil
	}})
	var wg sim.WaitGroup
	for i := 0; i < 21; i++ {
		wg.Add(1)
		f.k.Spawn("c", func(p *sim.Proc) {
			defer wg.Done()
			f.pf.Invoke(p, "f", nil)
		})
	}
	f.k.Spawn("releaser", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		if got := f.pf.VMCount(); got != 2 {
			t.Errorf("21 containers used %d VMs, want 2", got)
		}
		hold.Release()
		wg.Wait(p)
	})
	f.k.Run()
}

func TestBillingPerHundredMs(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 1024, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		ctx.Proc().Sleep(150 * time.Millisecond)
		return nil, nil
	}})
	var rep Report
	f.k.Spawn("c", func(p *sim.Proc) {
		_, rep, _ = f.pf.Invoke(p, "f", nil)
	})
	f.k.Run()
	if rep.BilledDuration != 200*time.Millisecond {
		t.Errorf("billed %v, want 200ms (100ms rounding)", rep.BilledDuration)
	}
	// 1GB for 0.2s at $0.00001667/GB-s plus one request.
	want := 0.00001667*0.2 + 0.20/1e6
	got := float64(f.meter.Total())
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("cost = %v, want ~%v", got, want)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	boom := errors.New("boom")
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		return nil, boom
	}})
	var err error
	f.k.Spawn("c", func(p *sim.Proc) {
		_, _, err = f.pf.Invoke(p, "f", nil)
	})
	f.k.Run()
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want handler error", err)
	}
}

func TestInvokeAsync(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	var res AsyncResult
	f.k.Spawn("c", func(p *sim.Proc) {
		pr := f.pf.InvokeAsync(p, "f", nil)
		res = pr.Get(p)
	})
	f.k.Run()
	if res.Err != nil || string(res.Response) != "ok" {
		t.Errorf("async result = %+v", res)
	}
}

func TestSQSEventRoundTrip(t *testing.T) {
	msgs := []queue.Message{
		{ID: "m1", Receipt: "r1", Body: []byte("hello")},
		{ID: "m2", Receipt: "r2", Body: []byte("world")},
	}
	ev, err := DecodeSQSEvent(EncodeSQSEvent(msgs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(ev.Records) != 2 || ev.Records[0].Body != "hello" || ev.Records[1].MessageID != "m2" {
		t.Errorf("round trip = %+v", ev)
	}
}

func TestEventSourceMappingDrivesFunction(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	rng := simrand.New(31)
	qsvc := queue.NewService("sqs", f.net, 9, rng, queue.DefaultConfig(),
		pricing.Fall2018(), f.meter)
	q := qsvc.CreateQueue("in", 2*time.Minute)

	var processed []string
	f.pf.Register(Function{Name: "consumer", MemoryMB: 256, Handler: func(ctx *Ctx, payload []byte) ([]byte, error) {
		ev, err := DecodeSQSEvent(payload)
		if err != nil {
			return nil, err
		}
		for _, r := range ev.Records {
			processed = append(processed, r.Body)
		}
		return nil, nil
	}})
	esm := f.pf.MapQueue(q, "consumer", 10)

	f.k.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 25; i++ {
			q.Send(p, f.caller, []byte{byte('a' + i)})
		}
		p.Sleep(time.Minute)
		esm.Stop()
	})
	f.k.RunUntil(5 * time.Minute)
	if len(processed) != 25 {
		t.Fatalf("processed %d messages, want 25", len(processed))
	}
	if q.Depth() != 0 || q.InFlight() != 0 {
		t.Errorf("queue not drained: depth=%d inflight=%d", q.Depth(), q.InFlight())
	}
}

func TestEventSourceRedeliversOnFunctionError(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	rng := simrand.New(37)
	qsvc := queue.NewService("sqs", f.net, 9, rng, queue.DefaultConfig(),
		pricing.Fall2018(), f.meter)
	q := qsvc.CreateQueue("in", 10*time.Second)

	attempts := 0
	f.pf.Register(Function{Name: "retry", MemoryMB: 256, Handler: func(ctx *Ctx, payload []byte) ([]byte, error) {
		attempts++
		if attempts == 1 {
			return nil, errors.New("transient")
		}
		return nil, nil
	}})
	esm := f.pf.MapQueue(q, "retry", 10)
	f.k.Spawn("producer", func(p *sim.Proc) {
		q.Send(p, f.caller, []byte("job"))
		p.Sleep(time.Minute)
		esm.Stop()
	})
	f.k.RunUntil(5 * time.Minute)
	if attempts < 2 {
		t.Errorf("attempts = %d, want redelivery after failure", attempts)
	}
	if q.Depth()+q.InFlight() != 0 {
		t.Error("message not eventually consumed")
	}
}

func TestConcurrencyLimitQueues(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AccountConcurrency = 2
	f := newFixture(t, cfg)
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		ctx.Proc().Sleep(10 * time.Second)
		return nil, nil
	}})
	var done [3]sim.Time
	for i := 0; i < 3; i++ {
		i := i
		f.k.Spawn("c", func(p *sim.Proc) {
			f.pf.Invoke(p, "f", nil)
			done[i] = p.Now()
		})
	}
	f.k.Run()
	// Two run together (~10s), the third queues behind them (~20s).
	var last sim.Time
	for _, d := range done {
		if d > last {
			last = d
		}
	}
	if last < 20*time.Second {
		t.Errorf("third invocation finished at %v, want >=20s (throttled)", last)
	}
}
