package faas

// The faas wiring for the resilience layer: a resilience.Client wraps
// Invoke like any other operation, so invocations get deadlines, retries,
// and hedging with no platform changes. These tests pin the economics of
// that composition — an abandoned or losing invocation keeps executing and
// keeps billing, which is what makes impatient callers expensive.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/simrand"
)

func TestResilienceDeadlineAbandonsInvokeButStillBills(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "slow", MemoryMB: 1024, Handler: func(ctx *Ctx, payload []byte) ([]byte, error) {
		ctx.Proc().Sleep(2 * time.Second)
		return []byte("late"), nil
	}})
	rc := resilience.NewClient(f.k, simrand.New(5), resilience.Config{Deadline: 500 * time.Millisecond})
	var err error
	k := f.k
	k.Spawn("client", func(p *sim.Proc) {
		err = rc.Do(p, -1, func(q *sim.Proc) error {
			_, _, e := f.pf.Invoke(q, "slow", nil)
			return e
		})
	})
	k.Run()
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("Do = %v, want ErrDeadline", err)
	}
	// The abandoned invocation ran to completion after the caller gave up:
	// one full request charge and ≥ 2s of billed GB-seconds.
	if got := f.meter.Count("lambda.request"); got != 1 {
		t.Errorf("lambda.request count = %d, want 1", got)
	}
	if st, _ := f.pf.Stats("slow"); st.Invocations != 1 || st.TotalTime < 2*time.Second {
		t.Errorf("stats = %+v, want 1 completed 2s invocation (abandoned invoke still finishes)", st)
	}
	if cost := f.meter.Cost("lambda.gbsec"); cost <= 0 {
		t.Errorf("gbsec cost = %v, want > 0 (loser is billed)", cost)
	}
}

func TestResilienceHedgedInvokeBillsBothAttempts(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	// First invocation cold-starts (slow); the hedge finds the platform
	// with a second cold start too, but a constant handler sleep keeps
	// both deterministic. The hedge launches at 400ms; whichever attempt
	// completes first wins, and both bill.
	f.pf.Register(Function{Name: "fn", MemoryMB: 1024, Handler: func(ctx *Ctx, payload []byte) ([]byte, error) {
		ctx.Proc().Sleep(time.Second)
		return []byte("ok"), nil
	}})
	rc := resilience.NewClient(f.k, simrand.New(5), resilience.Config{HedgeAfter: 400 * time.Millisecond})
	var err error
	f.k.Spawn("client", func(p *sim.Proc) {
		err = rc.Do(p, -1, func(q *sim.Proc) error {
			_, _, e := f.pf.Invoke(q, "fn", nil)
			return e
		})
	})
	f.k.Run()
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if got := rc.Stats().Hedges; got != 1 {
		t.Fatalf("Hedges = %d, want 1", got)
	}
	if got := f.meter.Count("lambda.request"); got != 2 {
		t.Errorf("lambda.request count = %d, want 2 (hedge loser billed)", got)
	}
	if st, _ := f.pf.Stats("fn"); st.Invocations != 2 {
		t.Errorf("invocations = %d, want both attempts to finish", st.Invocations)
	}
}

func TestResilienceRetriesInvokeFailure(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	calls := 0
	f.pf.Register(Function{Name: "flaky", MemoryMB: 512, Handler: func(ctx *Ctx, payload []byte) ([]byte, error) {
		calls++
		if calls < 3 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}})
	rc := resilience.NewClient(f.k, simrand.New(5), resilience.Config{
		Attempts:    4,
		BaseBackoff: 50 * time.Millisecond,
	})
	var err error
	f.k.Spawn("client", func(p *sim.Proc) {
		err = rc.Do(p, -1, func(q *sim.Proc) error {
			_, _, e := f.pf.Invoke(q, "flaky", nil)
			return e
		})
	})
	f.k.Run()
	if err != nil {
		t.Fatalf("Do = %v, want success on the third attempt", err)
	}
	if calls != 3 {
		t.Errorf("handler ran %d times, want 3", calls)
	}
	if got := rc.Stats().Retries; got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
}
