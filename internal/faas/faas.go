// Package faas simulates an AWS-Lambda-style Functions-as-a-Service
// platform, reproducing the restrictions §3 of the paper documents:
//
//   - Limited lifetimes: each invocation is capped (15 minutes); state
//     survives only in best-effort warm containers.
//   - I/O bottlenecks: functions of one user are packed onto shared VMs,
//     so per-function bandwidth shrinks as concurrency grows (the VM NIC
//     is a netsim fair-shared link).
//   - No network addressability: handlers get no inbound endpoint; all
//     communication must go through storage services.
//   - Memory-proportional CPU: a 640MB function gets ~36% of a core.
//   - Billing: $0.20/M requests plus GB-seconds rounded up to 100ms.
//
// Invocation overhead, cold/warm start times, and the SQS event-source
// dispatch delay are calibration constants documented in EXPERIMENTS.md.
package faas

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/statecache"
)

// Errors returned by the platform.
var (
	ErrNoSuchFunction  = errors.New("faas: no such function")
	ErrPayloadTooLarge = errors.New("faas: payload exceeds 6MB limit")
	ErrTimeout         = errors.New("faas: function timed out")
	ErrBadTimeout      = errors.New("faas: timeout exceeds 15 minute maximum")
)

// PayloadLimit is the maximum invocation payload size.
const PayloadLimit = 6 * 1024 * 1024

// Handler is user function code. It runs inside a simulated container; all
// blocking work must go through ctx (compute) or the simulated services
// (I/O), using ctx.Node() as the network caller so that traffic shares the
// host VM's NIC with co-located functions.
type Handler func(ctx *Ctx, payload []byte) ([]byte, error)

// Function is a registered function.
type Function struct {
	Name     string
	MemoryMB int
	Timeout  time.Duration
	Handler  Handler

	// stats and reserved are platform-managed (see stats.go). Both are
	// shared across deployments of the same name: counters and the
	// reserved-concurrency cap survive a Register replace, and in-flight
	// invocations of a replaced version keep updating the same counters.
	stats    *FunctionStats
	reserved *sim.Resource
}

// Config holds platform parameters.
type Config struct {
	// InvokeOverhead is the request routing/queueing delay per
	// invocation, calibrated so a warm no-op invoke with a 1KB argument
	// averages Table 1's 303 ms.
	InvokeOverhead simrand.Dist

	// ColdStart is the sandbox provisioning delay when no warm container
	// exists. The Firecracker ablation (footnote 5) replaces it with a
	// 125 ms microVM boot.
	ColdStart simrand.Dist

	// WarmStart is the dispatch delay into an existing container.
	WarmStart simrand.Dist

	// ESMDispatchDelay is the event-source-mapping pipeline delay
	// between an SQS poll returning and the function invocation
	// starting, calibrated so SQS-triggered serving lands at the
	// paper's 447 ms per batch.
	ESMDispatchDelay simrand.Dist

	// VMNICBps is the capacity of each function-hosting VM's NIC
	// (538 Mbps, the per-function bandwidth Wang et al. measured for a
	// solo function).
	VMNICBps netsim.Bps

	// ContainersPerVM is how many containers the platform packs onto
	// one VM before allocating another (the paper: "AWS appears to
	// attempt to pack Lambda functions from the same user together on
	// a single VM").
	ContainersPerVM int

	// FullCoreMemoryMB is the memory size at which a function receives
	// a whole vCPU (1,769 MB on Lambda).
	FullCoreMemoryMB int

	// FullCoreComputeMBps is the single-core data-crunching rate,
	// calibrated so a 640MB function runs the optimizer over 100MB in
	// the paper's 0.59 s.
	FullCoreComputeMBps float64

	// MaxTimeout caps per-invocation lifetime (15 minutes).
	MaxTimeout time.Duration

	// WarmTTL is how long an idle container stays reusable.
	WarmTTL time.Duration

	// AccountConcurrency caps simultaneous executions (default 1000).
	AccountConcurrency int

	// Rack places the platform's VMs and control plane.
	Rack int
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		InvokeOverhead:      simrand.LogNormal{Median: 294 * time.Millisecond, Sigma: 0.08},
		ColdStart:           simrand.LogNormal{Median: 650 * time.Millisecond, Sigma: 0.25},
		WarmStart:           simrand.Uniform{Lo: 3 * time.Millisecond, Hi: 7 * time.Millisecond},
		ESMDispatchDelay:    simrand.Uniform{Lo: 115 * time.Millisecond, Hi: 155 * time.Millisecond},
		VMNICBps:            netsim.Mbps(538),
		ContainersPerVM:     20,
		FullCoreMemoryMB:    1769,
		FullCoreComputeMBps: 468.6,
		MaxTimeout:          15 * time.Minute,
		WarmTTL:             10 * time.Minute,
		AccountConcurrency:  1000,
		Rack:                1,
	}
}

// hostVM is one function-hosting virtual machine.
type hostVM struct {
	node       *netsim.Node
	containers int
	// cache is the VM-colocated state-cache replica, present while the
	// platform has an attached cluster. Handlers reach it via Ctx.Cache;
	// reclaimVM detaches (and thereby drains) it before recycling the node.
	cache *statecache.Cache
	// doomed marks a crashed VM (see CrashVMs): containers mid-invocation
	// finish but are destroyed instead of re-pooled, so the VM drains and
	// reclaims. Cleared when pickVM recycles the node.
	doomed bool
}

// container is one function sandbox.
type container struct {
	fn       *Function
	vm       *hostVM
	local    map[string]any
	lastUsed sim.Time
	// provisioned containers never expire from the warm pool.
	provisioned bool
	// reap is the container's eager-expiry timer, armed while it sits in
	// the warm pool (see scheduleReap). Allocated once per container and
	// re-armed on every release.
	reap *sim.Timer
}

// Platform is the FaaS control plane plus its fleet of hosting VMs.
type Platform struct {
	name    string
	net     *netsim.Network
	rng     *simrand.RNG
	cfg     Config
	catalog *pricing.Catalog
	meter   *pricing.Meter

	ctlNode     *netsim.Node // control plane / event-source pollers
	functions   map[string]*Function
	vms         []*hostVM               // VMs hosting at least one container
	freeVMs     []*hostVM               // emptied VMs whose nodes await reuse
	idle        map[string][]*container // warm pool per function, LIFO
	concurrency *sim.Resource
	nextVM      int
	// region pins the fleet: every hosting VM's node is created in the
	// region the platform itself was created in, whatever the network's
	// build region is when a cold start happens to allocate it.
	region int
	// slow maps a hosting VM's node to its compute-slowdown factor (the
	// chaos engine's straggler knob); absent means full speed.
	slow map[*netsim.Node]float64

	// Fleet-wide concurrency accounting (see stats.go).
	inFlight        int
	peakConcurrency int

	// Provisioned-concurrency billing accrual (see prewarm.go).
	provisionedGB    float64  // GB currently allocated as provisioned
	provisionedCount int      // provisioned containers allocated (idle or busy)
	provisionedSince sim.Time // start of the unaccrued billing span

	// cache, when attached, colocates a state-cache replica with every
	// hosting VM (the paper's §4 fluid-state platform).
	cache *statecache.Cluster
}

// New creates a platform.
func New(name string, net *netsim.Network, rng *simrand.RNG, cfg Config,
	catalog *pricing.Catalog, meter *pricing.Meter) *Platform {
	return &Platform{
		name:        name,
		net:         net,
		rng:         rng,
		cfg:         cfg,
		catalog:     catalog,
		meter:       meter,
		ctlNode:     net.NewNode(name+"/ctl", cfg.Rack, netsim.Gbps(100)),
		functions:   make(map[string]*Function),
		idle:        make(map[string][]*container),
		concurrency: sim.NewResource(cfg.AccountConcurrency),
		region:      net.BuildRegion(),
	}
}

// Register adds (or replaces) a function. Memory must be positive and the
// timeout at most MaxTimeout; a zero timeout defaults to the maximum.
//
// Replacing an existing function drains its warm pool, like a real Lambda
// deploy: idle containers hold the old handler's code and container-local
// state, so the next invocation after a replace always cold-starts into the
// new deployment. Containers mid-invocation at replace time finish on the
// old code but are destroyed instead of re-pooled.
func (pf *Platform) Register(fn Function) error {
	if fn.Name == "" || fn.Handler == nil || fn.MemoryMB <= 0 {
		return fmt.Errorf("faas: invalid function %q", fn.Name)
	}
	if fn.Timeout == 0 {
		fn.Timeout = pf.cfg.MaxTimeout
	}
	if fn.Timeout > pf.cfg.MaxTimeout {
		return ErrBadTimeout
	}
	if old, replacing := pf.functions[fn.Name]; replacing {
		pf.drainWarmPool(fn.Name)
		// Reserved concurrency and CloudWatch-style counters are
		// function-level configuration/history that survive a deploy.
		fn.reserved = old.reserved
		fn.stats = old.stats
	} else {
		fn.stats = &FunctionStats{}
	}
	pf.functions[fn.Name] = &fn
	return nil
}

// drainWarmPool retires every idle container of the named function,
// releasing their VM packing slots.
func (pf *Platform) drainWarmPool(name string) {
	for _, cont := range pf.idle[name] {
		pf.destroyContainer(cont)
	}
	delete(pf.idle, name)
}

// WarmIdle reports how many containers (provisioned or not) are idle-warm
// for the named function. The eager reaper evicts expired containers the
// moment their TTL passes, so this count never includes dead capacity.
func (pf *Platform) WarmIdle(name string) int { return len(pf.idle[name]) }

// VMCount reports how many hosting VMs are active (hosting at least one
// container); emptied VMs are reclaimed and their nodes recycled.
func (pf *Platform) VMCount() int { return len(pf.vms) }

// Report describes one completed invocation.
type Report struct {
	Duration       time.Duration // handler execution time
	BilledDuration time.Duration // rounded up to 100ms, capped at timeout
	ColdStart      bool
	VMNode         *netsim.Node
}

// Invoke synchronously executes the named function, blocking the caller
// through routing overhead, container acquisition, execution, and response.
// It returns the handler's response, an execution report, and an error
// (handler error, ErrTimeout, or a platform error).
func (pf *Platform) Invoke(p *sim.Proc, name string, payload []byte) ([]byte, Report, error) {
	fn, ok := pf.functions[name]
	if !ok {
		return nil, Report{}, fmt.Errorf("%w: %q", ErrNoSuchFunction, name)
	}
	if len(payload) > PayloadLimit {
		return nil, Report{}, ErrPayloadTooLarge
	}
	pf.meter.Charge("lambda.request", 1, pf.catalog.LambdaPerRequest)
	p.Sleep(pf.cfg.InvokeOverhead.Sample(pf.rng))

	fn.acquireReserved(p)
	defer fn.releaseReserved()
	pf.concurrency.Acquire(p)
	defer pf.concurrency.Release()
	pf.beginExecution(fn)
	defer pf.endExecution(fn)

	cont, cold := pf.acquireContainer(p, fn)
	// Ship the argument to the hosting VM through its shared NIC.
	if len(payload) > 0 {
		pf.net.Fabric().Transfer(p, int64(len(payload)), cont.vm.node.NIC())
	}

	start := p.Now()
	ctx := &Ctx{proc: p, pf: pf, fn: fn, cont: cont, deadline: start + fn.Timeout, cold: cold}
	resp, err := fn.Handler(ctx, payload)
	dur := p.Now() - start

	timedOut := dur > fn.Timeout
	billed := dur
	if timedOut {
		billed = fn.Timeout
	}
	pf.meter.ChargeCost("lambda.gbsec", pf.catalog.LambdaCompute(fn.MemoryMB, billed))

	rep := Report{
		Duration:       dur,
		BilledDuration: pricing.LambdaDuration(billed),
		ColdStart:      cold,
		VMNode:         cont.vm.node,
	}
	fn.stats.Invocations++
	fn.stats.TotalTime += dur
	fn.stats.BilledTime += rep.BilledDuration
	if cold {
		fn.stats.ColdStarts++
	}
	if timedOut {
		fn.stats.Timeouts++
	}
	if err != nil || timedOut {
		fn.stats.Errors++
	}
	if timedOut {
		// The sandbox is killed; its state is not reusable.
		pf.destroyContainer(cont)
		return nil, rep, fmt.Errorf("%w after %v (limit %v)", ErrTimeout, dur, fn.Timeout)
	}
	pf.releaseContainer(p, cont)
	return resp, rep, err
}

// InvokeAsync fires the function without waiting; the returned promise
// resolves with the outcome. Event-style invocations use this path.
func (pf *Platform) InvokeAsync(p *sim.Proc, name string, payload []byte) *sim.Promise[AsyncResult] {
	pr := &sim.Promise[AsyncResult]{}
	p.Spawn("faas-async/"+name, func(ap *sim.Proc) {
		resp, rep, err := pf.Invoke(ap, name, payload)
		pr.Resolve(AsyncResult{Response: resp, Report: rep, Err: err})
	})
	return pr
}

// AsyncResult is the outcome of an InvokeAsync.
type AsyncResult struct {
	Response []byte
	Report   Report
	Err      error
}

// acquireContainer returns a warm container if one is idle, otherwise cold
// starts a new one on a packed VM.
func (pf *Platform) acquireContainer(p *sim.Proc, fn *Function) (*container, bool) {
	pool := pf.idle[fn.Name]
	for len(pool) > 0 {
		cont := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if !cont.provisioned && p.Now()-cont.lastUsed > pf.cfg.WarmTTL {
			pf.destroyContainer(cont) // expired; fall through to next candidate
			continue
		}
		pf.idle[fn.Name] = pool
		if cont.reap != nil {
			cont.reap.Stop() // checked out; release re-arms
		}
		p.Sleep(pf.cfg.WarmStart.Sample(pf.rng))
		return cont, false
	}
	pf.idle[fn.Name] = pool

	vm := pf.pickVM()
	vm.containers++
	p.Sleep(pf.cfg.ColdStart.Sample(pf.rng))
	return &container{fn: fn, vm: vm, local: make(map[string]any)}, true
}

// pickVM returns the first VM with packing room, reusing a reclaimed VM's
// node before allocating a fresh one, so all containers packing onto a new
// VM only happens when the active fleet is full — the packing behaviour
// behind the bandwidth collapse.
func (pf *Platform) pickVM() *hostVM {
	for _, vm := range pf.vms {
		if vm.containers < pf.cfg.ContainersPerVM {
			return vm
		}
	}
	if n := len(pf.freeVMs); n > 0 {
		vm := pf.freeVMs[n-1]
		pf.freeVMs = pf.freeVMs[:n-1]
		vm.doomed = false
		pf.vms = append(pf.vms, vm)
		pf.attachCache(vm)
		return vm
	}
	pf.nextVM++
	prev := pf.net.SetBuildRegion(pf.region)
	vm := &hostVM{
		node: pf.net.NewNode(fmt.Sprintf("%s-vm-%d", pf.name, pf.nextVM), pf.cfg.Rack, pf.cfg.VMNICBps),
	}
	pf.net.SetBuildRegion(prev)
	pf.vms = append(pf.vms, vm)
	pf.attachCache(vm)
	return vm
}

// VMNodes returns the active hosting VMs' network nodes in fleet order
// (the chaos engine's handle for per-node slowdown injection).
func (pf *Platform) VMNodes() []*netsim.Node {
	nodes := make([]*netsim.Node, len(pf.vms))
	for i, vm := range pf.vms {
		nodes[i] = vm.node
	}
	return nodes
}

// CrashVMs fails the first n active hosting VMs — a correlated
// crash-reclaim storm. Victims' idle containers are destroyed on the spot
// (stopping their provisioned-concurrency billing; each emptied VM funnels
// through reclaimVM, which detaches and drains its cache replica before
// recycling the node). Containers mid-invocation finish their current
// handler but are destroyed instead of re-pooled. The autoscaler's next
// reconcile tick observes the lost provisioned capacity and rebuilds it.
// Returns how many VMs were crashed.
func (pf *Platform) CrashVMs(n int) int {
	if n > len(pf.vms) {
		n = len(pf.vms)
	}
	if n <= 0 {
		return 0
	}
	for _, vm := range pf.vms[:n] {
		vm.doomed = true
	}
	// Sweep doomed containers out of the warm pools in sorted function
	// order: destruction emits billing events, and map iteration order
	// must not leak into the simulation.
	names := make([]string, 0, len(pf.idle))
	for name := range pf.idle {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pool := pf.idle[name]
		w := 0
		for _, cont := range pool {
			if cont.vm.doomed {
				pf.destroyContainer(cont)
				continue
			}
			pool[w] = cont
			w++
		}
		pf.idle[name] = pool[:w]
	}
	return n
}

// SetComputeSlowdown scales the named VM node's compute rate down by
// factor (a straggler runs factor× slower through Ctx.Compute; network
// I/O already degrades through the fabric). Factor 1 restores full speed.
func (pf *Platform) SetComputeSlowdown(node *netsim.Node, factor float64) {
	if factor <= 0 {
		panic("faas: slowdown factor must be positive")
	}
	if factor == 1 {
		delete(pf.slow, node)
		return
	}
	if pf.slow == nil {
		pf.slow = make(map[*netsim.Node]float64)
	}
	pf.slow[node] = factor
}

// AttachStateCache colocates one replica of the given cluster with every
// hosting VM, present and future: handlers reach the VM's replica through
// Ctx.Cache, and reclaiming an emptied VM drains the replica's unflushed
// deltas into the cluster's backing store before the node is recycled.
//
// Attaching a different cluster re-binds the fleet: each active VM's old
// replica is detached — draining its deltas into the *old* cluster's
// store — before the VM joins the new cluster.
func (pf *Platform) AttachStateCache(cl *statecache.Cluster) {
	pf.cache = cl
	for _, vm := range pf.vms {
		if vm.cache != nil && vm.cache.Cluster() != cl {
			vm.cache.Detach()
			vm.cache = nil
		}
		pf.attachCache(vm)
	}
}

// attachCache binds a state-cache replica to an activating VM.
func (pf *Platform) attachCache(vm *hostVM) {
	if pf.cache != nil && vm.cache == nil {
		vm.cache = pf.cache.Attach(vm.node)
	}
}

func (pf *Platform) releaseContainer(p *sim.Proc, cont *container) {
	if pf.functions[cont.fn.Name] != cont.fn || cont.vm.doomed {
		// The function was replaced while this invocation ran, or the
		// hosting VM crashed under it; either way the container must not
		// be pooled.
		pf.destroyContainer(cont)
		return
	}
	cont.lastUsed = p.Now()
	pf.idle[cont.fn.Name] = append(pf.idle[cont.fn.Name], cont)
	pf.scheduleReap(cont)
}

// scheduleReap arms a pooled container's expiry timer so it leaves the warm
// pool the moment its TTL passes, instead of lingering until the next
// acquire walks over it: WarmIdle stays truthful and the emptied VM is
// reclaimed promptly. The timer is a cancellable handle — acquireContainer
// and destroyContainer stop it — so a reused container's stale expiry is
// removed from the kernel queue outright rather than firing as a no-op and
// re-arming. The extra nanosecond keeps eviction on the same strict "older
// than TTL" boundary acquireContainer uses, so a container is never reaped
// at an instant when an arriving invocation would still have reused it.
func (pf *Platform) scheduleReap(cont *container) {
	if cont.provisioned {
		return // never expires
	}
	if cont.reap == nil {
		cont.reap = pf.net.Kernel().NewTimer(func() { pf.reap(cont) })
	}
	cont.reap.ResetAt(cont.lastUsed + pf.cfg.WarmTTL + time.Nanosecond)
}

// reap evicts an expired container from the warm pool. It only ever fires
// while the container is pooled: checkout and destruction stop the timer.
func (pf *Platform) reap(cont *container) {
	pool := pf.idle[cont.fn.Name]
	for i, cand := range pool {
		if cand == cont {
			pf.idle[cont.fn.Name] = append(pool[:i], pool[i+1:]...)
			pf.destroyContainer(cont)
			return
		}
	}
	panic("faas: reap timer fired for an unpooled container")
}

func (pf *Platform) destroyContainer(cont *container) {
	if cont.reap != nil {
		cont.reap.Stop()
	}
	if cont.provisioned {
		pf.endProvisioned(cont)
	}
	pf.removeFromVM(cont)
}

func (pf *Platform) removeFromVM(cont *container) {
	cont.vm.containers--
	if cont.vm.containers == 0 {
		pf.reclaimVM(cont.vm)
	}
}

// reclaimVM removes an emptied VM from the active fleet. Its node (and NIC
// link) parks on a free list and is handed back by pickVM before any new
// node is created, so long runs cycle a bounded set of netsim nodes instead
// of leaking one per cold-start wave.
//
// A VM-colocated cache replica is detached first: Detach drains any deltas
// the replica absorbed but has not yet write-behind-flushed, so recycling
// the node (which hands a fresh, empty replica to the VM's next tenant)
// never silently drops state.
func (pf *Platform) reclaimVM(vm *hostVM) {
	if vm.cache != nil {
		// Detach through the replica itself: after a cluster re-bind,
		// pf.cache can differ from the cluster this VM's replica lives
		// in, and detaching the wrong cluster would skip the drain.
		vm.cache.Detach()
		vm.cache = nil
	}
	for i, cand := range pf.vms {
		if cand == vm {
			pf.vms = append(pf.vms[:i], pf.vms[i+1:]...)
			pf.freeVMs = append(pf.freeVMs, vm)
			return
		}
	}
}

// Ctx is the execution context passed to handlers.
type Ctx struct {
	proc     *sim.Proc
	pf       *Platform
	fn       *Function
	cont     *container
	deadline sim.Time
	cold     bool
}

// Proc returns the simulated process the handler runs on.
func (c *Ctx) Proc() *sim.Proc { return c.proc }

// Node returns the hosting VM's network node. All of the handler's service
// I/O must use it as the caller so traffic contends on the shared NIC.
func (c *Ctx) Node() *netsim.Node { return c.cont.vm.node }

// MemoryMB returns the function's configured memory size.
func (c *Ctx) MemoryMB() int { return c.fn.MemoryMB }

// ColdStart reports whether this invocation cold-started its container.
func (c *Ctx) ColdStart() bool { return c.cold }

// Remaining returns the time left before the invocation's deadline.
func (c *Ctx) Remaining() time.Duration {
	d := c.deadline - c.proc.Now()
	if d < 0 {
		return 0
	}
	return d
}

// Local returns container-local scratch state. It survives across warm
// invocations of the same container — and only those; the platform gives no
// way to ensure reuse, exactly the limitation the paper highlights.
func (c *Ctx) Local() map[string]any { return c.cont.local }

// Cache returns the state-cache replica colocated with the hosting VM (the
// §4 fluid-state surface: local-memory reads, CRDT writes, gossip
// convergence), or nil when the platform has no attached cluster.
func (c *Ctx) Cache() *statecache.Cache { return c.cont.vm.cache }

// ComputeShare returns the fraction of a core this function receives
// (memory-proportional, capped at one core for single-threaded handlers).
func (c *Ctx) ComputeShare() float64 {
	share := float64(c.fn.MemoryMB) / float64(c.pf.cfg.FullCoreMemoryMB)
	if share > 1 {
		share = 1
	}
	return share
}

// Compute blocks for the time this function takes to crunch through `bytes`
// of data at its memory-scaled CPU share (divided by any chaos-injected
// slowdown on the hosting VM).
func (c *Ctx) Compute(bytes int64) {
	rate := c.pf.cfg.FullCoreComputeMBps * 1e6 * c.ComputeShare()
	if f := c.pf.slow[c.cont.vm.node]; f > 0 {
		rate /= f
	}
	c.proc.Sleep(time.Duration(float64(bytes) / rate * float64(time.Second)))
}
