package faas

import (
	"testing"
	"time"

	"repro/internal/pricing"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// newTestQueue attaches an SQS service to the fixture's network and returns
// one queue on it.
func newTestQueue(t *testing.T, f *fixture, name string) *queue.Queue {
	t.Helper()
	svc := queue.NewService("sqs-"+name, f.net, 9, simrand.New(41),
		queue.DefaultConfig(), pricing.Fall2018(), f.meter)
	return svc.CreateQueue(name, 2*time.Minute)
}

// TestEagerReaperEvictsExpiredWarmContainers: an idle warm container must
// leave the pool the moment its TTL passes — WarmIdle stops overcounting —
// and the emptied VM must be reclaimed.
func TestEagerReaperEvictsExpiredWarmContainers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmTTL = time.Minute
	f := newFixture(t, cfg)
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	f.k.Spawn("c", func(p *sim.Proc) {
		f.pf.Invoke(p, "f", nil)
	})
	f.k.RunUntil(sim.Time(30 * time.Second))
	if got := f.pf.WarmIdle("f"); got != 1 {
		t.Fatalf("warm idle before TTL = %d, want 1", got)
	}
	f.k.RunUntil(sim.Time(5 * time.Minute))
	if got := f.pf.WarmIdle("f"); got != 0 {
		t.Errorf("warm idle after TTL = %d, want 0 (eagerly reaped)", got)
	}
	if got := f.pf.VMCount(); got != 0 {
		t.Errorf("VM count after reap = %d, want 0 (empty VM reclaimed)", got)
	}
}

// TestWarmReuseDefersReap: reusing a container restarts its TTL clock; the
// stale reap timer from the earlier release must not evict it.
func TestWarmReuseDefersReap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmTTL = time.Minute
	f := newFixture(t, cfg)
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	f.k.Spawn("c", func(p *sim.Proc) {
		f.pf.Invoke(p, "f", nil)
		p.Sleep(50 * time.Second)
		_, rep, _ := f.pf.Invoke(p, "f", nil)
		if rep.ColdStart {
			t.Error("reuse inside TTL cold-started")
		}
	})
	// 70s is past the first release's TTL but inside the second's.
	f.k.RunUntil(sim.Time(70 * time.Second))
	if got := f.pf.WarmIdle("f"); got != 1 {
		t.Errorf("warm idle at 70s = %d, want 1 (stale reap timer must not fire)", got)
	}
	f.k.RunUntil(sim.Time(3 * time.Minute))
	if got := f.pf.WarmIdle("f"); got != 0 {
		t.Errorf("warm idle at 3min = %d, want 0", got)
	}
}

// TestReclaimedVMNodeIsRecycled: a cold start after a fleet drain must
// reuse the reclaimed VM's network node instead of allocating a fresh one,
// so long runs do not leak NIC nodes.
func TestReclaimedVMNodeIsRecycled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmTTL = 30 * time.Second
	f := newFixture(t, cfg)
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	f.k.Spawn("c", func(p *sim.Proc) {
		f.pf.Invoke(p, "f", nil)
		p.Sleep(2 * time.Minute) // container expires, VM reclaimed
		_, rep, _ := f.pf.Invoke(p, "f", nil)
		if !rep.ColdStart {
			t.Error("invoke after expiry should cold-start")
		}
	})
	f.k.RunUntil(sim.Time(10 * time.Minute))
	if got := f.pf.nextVM; got != 1 {
		t.Errorf("allocated %d distinct VM nodes, want 1 (reclaimed node recycled)", got)
	}
}

// TestFleetStatsSnapshot: concurrency high-water mark, packing utilization,
// and cold-start rate across the whole platform.
func TestFleetStatsSnapshot(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	hold := &sim.Latch{}
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		hold.Wait(ctx.Proc())
		return nil, nil
	}})
	var wg sim.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		f.k.Spawn("c", func(p *sim.Proc) {
			defer wg.Done()
			f.pf.Invoke(p, "f", nil)
		})
	}
	f.k.Spawn("probe", func(p *sim.Proc) {
		p.Sleep(5 * time.Second) // all 20 in their handlers
		s := f.pf.FleetStats()
		if s.InFlight != 20 || s.PeakConcurrency != 20 {
			t.Errorf("in-flight/peak = %d/%d, want 20/20", s.InFlight, s.PeakConcurrency)
		}
		if s.ActiveVMs != 1 || s.Containers != 20 {
			t.Errorf("VMs/containers = %d/%d, want 1/20", s.ActiveVMs, s.Containers)
		}
		if s.VMUtilization != 1.0 {
			t.Errorf("VM utilization = %.2f, want 1.0 (fully packed)", s.VMUtilization)
		}
		hold.Release()
		wg.Wait(p)
		after := f.pf.FleetStats()
		if after.InFlight != 0 {
			t.Errorf("in-flight after drain = %d, want 0", after.InFlight)
		}
		if after.WarmIdle != 20 {
			t.Errorf("warm idle after drain = %d, want 20", after.WarmIdle)
		}
		// Counters land when invocations complete: 20 of 20 cold.
		if after.ColdStartRate() != 1.0 {
			t.Errorf("cold-start rate = %.2f, want 1.0", after.ColdStartRate())
		}
	})
	f.k.RunUntil(sim.Time(time.Minute))
}

// TestTakePeakConcurrencyWindows: the autoscaler's signal is the peak since
// the previous sample, restarting at the current in-flight level.
func TestTakePeakConcurrencyWindows(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		ctx.Proc().Sleep(time.Second)
		return nil, nil
	}})
	var wg sim.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		f.k.Spawn("c", func(p *sim.Proc) {
			defer wg.Done()
			f.pf.Invoke(p, "f", nil)
		})
	}
	f.k.Spawn("sampler", func(p *sim.Proc) {
		wg.Wait(p)
		if peak, _ := f.pf.TakePeakConcurrency("f"); peak != 3 {
			t.Errorf("first window peak = %d, want 3", peak)
		}
		if peak, _ := f.pf.TakePeakConcurrency("f"); peak != 0 {
			t.Errorf("second window peak = %d, want 0 (idle)", peak)
		}
	})
	f.k.RunUntil(sim.Time(time.Minute))
	if _, err := f.pf.TakePeakConcurrency("ghost"); err == nil {
		t.Error("unknown function accepted")
	}
}

// TestAutoscalerTracksLoad is the control loop's end-to-end contract: a
// burst of concurrency scales the provisioned pool out to peak/target, a
// later identical burst runs entirely warm, and a quiet period scales the
// pool back in — with the keep-warm time metered.
func TestAutoscalerTracksLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmTTL = 30 * time.Second
	f := newFixture(t, cfg)
	f.pf.Register(Function{Name: "f", MemoryMB: 512, Handler: func(ctx *Ctx, _ []byte) ([]byte, error) {
		ctx.Proc().Sleep(time.Second)
		return nil, nil
	}})
	asc, err := f.pf.Autoscale(AutoscalerConfig{
		Function: "f", Min: 0, Max: 64,
		TargetUtilization: 0.5, Interval: 5 * time.Second,
		ScaleInCooldown: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	burst := func(p *sim.Proc) {
		var wg sim.WaitGroup
		for i := 0; i < 10; i++ {
			wg.Add(1)
			p.Spawn("inv", func(ip *sim.Proc) {
				defer wg.Done()
				f.pf.Invoke(ip, "f", nil)
			})
		}
		wg.Wait(p)
	}
	f.k.Spawn("driver", func(p *sim.Proc) {
		burst(p) // 10-way concurrency, all cold
		p.Sleep(sim.Time(20*time.Second) - p.Now())
		st, _ := f.pf.Stats("f")
		if st.ColdStarts != 10 {
			t.Errorf("first burst cold starts = %d, want 10", st.ColdStarts)
		}
		// The 5s tick saw peak 10 => target ceil(10/0.5) = 20.
		if asc.Target() != 20 {
			t.Errorf("target after first burst = %d, want 20", asc.Target())
		}
		if got := f.pf.ProvisionedIdle("f"); got != 20 {
			t.Errorf("provisioned idle = %d, want 20", got)
		}
		burst(p) // same load, now absorbed by the provisioned pool
		st, _ = f.pf.Stats("f")
		if st.ColdStarts != 10 {
			t.Errorf("cold starts after second burst = %d, want still 10 (all warm)", st.ColdStarts)
		}
		if st.PeakConcurrency != 10 {
			t.Errorf("peak concurrency = %d, want 10", st.PeakConcurrency)
		}
	})
	f.k.RunUntil(sim.Time(2 * time.Minute))

	// Quiet since ~21s: the scaler should have walked the pool back to Min.
	if asc.Target() != 0 {
		t.Errorf("target after quiet period = %d, want 0", asc.Target())
	}
	if got := f.pf.ProvisionedAllocated(); got != 0 {
		t.Errorf("provisioned allocated after scale-in = %d, want 0", got)
	}
	if asc.ScaleOuts() == 0 || asc.ScaleIns() == 0 {
		t.Errorf("scale activity outs=%d ins=%d, want both > 0", asc.ScaleOuts(), asc.ScaleIns())
	}
	f.pf.AccrueProvisioned(f.k.Now())
	if got := f.meter.Cost("lambda.provisioned"); got <= 0 {
		t.Errorf("provisioned keep-warm cost = %v, want > 0", got)
	}
	asc.Stop()
}

// TestAutoscalerMinFloor: Min provisions up front and survives idleness.
func TestAutoscalerMinFloor(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	asc, err := f.pf.Autoscale(AutoscalerConfig{
		Function: "f", Min: 2, Max: 8, TargetUtilization: 0.7, Interval: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunUntil(sim.Time(time.Minute))
	if asc.Target() != 2 {
		t.Errorf("idle target = %d, want Min 2", asc.Target())
	}
	if got := f.pf.ProvisionedIdle("f"); got != 2 {
		t.Errorf("provisioned idle = %d, want 2", got)
	}
	asc.Stop()
}

// TestProvisionDuringReplaceDiscardsOldDeployment: a deploy landing while
// provisioned containers are still cold-starting must keep those containers
// (which hold the old code) out of the new deployment's pool — they would
// otherwise serve stale code forever, since provisioned containers never
// expire.
func TestProvisionDuringReplaceDiscardsOldDeployment(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	f.k.Spawn("ops", func(p *sim.Proc) {
		f.pf.ProvisionConcurrency(p, "f", 2)
	})
	// Mid-cold-start (~650ms), a new deployment lands.
	f.k.RunUntil(sim.Time(100 * time.Millisecond))
	if err := f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop}); err != nil {
		t.Fatal(err)
	}
	f.k.RunUntil(sim.Time(time.Minute))
	if got := f.pf.ProvisionedIdle("f"); got != 0 {
		t.Errorf("provisioned idle after replace = %d, want 0 (old deployment discarded)", got)
	}
	if got := f.pf.ProvisionedAllocated(); got != 0 {
		t.Errorf("provisioned allocated = %d, want 0", got)
	}
	if got := f.pf.VMCount(); got != 0 {
		t.Errorf("VM count = %d, want 0 (discarded containers' slots freed)", got)
	}
	var rep Report
	f.k.Spawn("inv", func(p *sim.Proc) {
		_, rep, _ = f.pf.Invoke(p, "f", nil)
	})
	f.k.RunUntil(sim.Time(2 * time.Minute))
	if !rep.ColdStart {
		t.Error("first invocation after replace reused a stale provisioned container")
	}
}

// TestAutoscalerReprovisionsAfterDeploy: a re-deploy destroys the whole
// provisioned pool out-of-band; the control loop must notice the shortfall
// and rebuild toward its target instead of trusting its own bookkeeping.
func TestAutoscalerReprovisionsAfterDeploy(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	asc, err := f.pf.Autoscale(AutoscalerConfig{
		Function: "f", Min: 4, Max: 16, TargetUtilization: 0.7, Interval: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunUntil(sim.Time(10 * time.Second))
	if got := f.pf.ProvisionedFor("f"); got != 4 {
		t.Fatalf("provisioned before deploy = %d, want Min 4", got)
	}
	// Deploy: drains the pool (allocation drops to 0, target still 4).
	if err := f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop}); err != nil {
		t.Fatal(err)
	}
	if got := f.pf.ProvisionedFor("f"); got != 0 {
		t.Fatalf("provisioned right after deploy = %d, want 0 (pool drained)", got)
	}
	f.k.RunUntil(sim.Time(30 * time.Second))
	if got := f.pf.ProvisionedFor("f"); got != 4 {
		t.Errorf("provisioned after reconcile = %d, want 4 (shortfall re-provisioned)", got)
	}
	asc.Stop()
}

func TestAutoscalerValidation(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	f.pf.Register(Function{Name: "f", MemoryMB: 128, Handler: noop})
	if _, err := f.pf.Autoscale(AutoscalerConfig{Function: "ghost", Max: 1, TargetUtilization: 0.5}); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := f.pf.Autoscale(AutoscalerConfig{Function: "f", Min: 3, Max: 1, TargetUtilization: 0.5}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := f.pf.Autoscale(AutoscalerConfig{Function: "f", Max: 1, TargetUtilization: 1.5}); err == nil {
		t.Error("utilization above 1 accepted")
	}
}

// TestMapQueueNRunsParallelPollers: a poller fleet drains the queue with
// overlapping invocations.
func TestMapQueueNRunsParallelPollers(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	q := newTestQueue(t, f, "in")
	processed := 0
	f.pf.Register(Function{Name: "consumer", MemoryMB: 256, Handler: func(ctx *Ctx, payload []byte) ([]byte, error) {
		ev, err := DecodeSQSEvent(payload)
		if err != nil {
			return nil, err
		}
		processed += len(ev.Records)
		ctx.Proc().Sleep(time.Second)
		return nil, nil
	}})
	esm := f.pf.MapQueueN(q, "consumer", 10, 4)
	if esm.Pollers() != 4 {
		t.Fatalf("pollers = %d, want 4", esm.Pollers())
	}
	f.k.Spawn("producer", func(p *sim.Proc) {
		var bodies [][]byte
		for i := 0; i < 10; i++ {
			bodies = append(bodies, []byte{byte(i)})
		}
		for b := 0; b < 4; b++ {
			q.SendBatch(p, f.caller, bodies)
		}
		p.Sleep(time.Minute)
		esm.Stop()
	})
	f.k.RunUntil(sim.Time(5 * time.Minute))
	if processed != 40 {
		t.Errorf("processed %d messages, want 40", processed)
	}
	st, _ := f.pf.Stats("consumer")
	if st.PeakConcurrency < 2 {
		t.Errorf("peak concurrency = %d, want >= 2 (parallel pollers)", st.PeakConcurrency)
	}
}
