// Package chaos injects faults into a running simulation: WAN partitions,
// VM crash storms, and compute slowdowns. Every injection is an ordinary
// simulator event — a process spawned on the kernel that sleeps until its
// scheduled instant and then mutates topology or platform state — so a
// chaotic run is exactly as deterministic as a healthy one: same seed,
// same faults, same nanoseconds, at any sweep worker count. Randomized
// schedules draw their entire timeline from the engine's RNG at call
// time (before the kernel runs), so the draw order never depends on
// event interleaving.
package chaos

import (
	"fmt"
	"time"

	"repro/internal/faas"
	"repro/internal/netsim"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// Event is one logged injection, for reports and debugging.
type Event struct {
	At   sim.Time
	What string
}

// Engine schedules fault injections on a kernel. Not safe for concurrent
// use; like the rest of the simulator it lives on one kernel's timeline.
type Engine struct {
	k      *sim.Kernel
	rng    *simrand.RNG
	slow   map[string]float64
	events []Event
	n      int // injection counter, names the injector procs
}

// New creates an engine. The RNG is the engine's private fault source —
// fork it off the experiment seed so fault schedules are reproducible.
func New(k *sim.Kernel, rng *simrand.RNG) *Engine {
	return &Engine{k: k, rng: rng, slow: make(map[string]float64)}
}

// Events returns the injection log in occurrence order.
func (e *Engine) Events() []Event { return e.events }

func (e *Engine) log(p *sim.Proc, format string, args ...any) {
	e.events = append(e.events, Event{At: p.Now(), What: fmt.Sprintf(format, args...)})
}

// spawn names and launches one injector process.
func (e *Engine) spawn(kind string, fn func(p *sim.Proc)) {
	e.n++
	e.k.Spawn(fmt.Sprintf("chaos/%s-%d", kind, e.n), fn)
}

// PartitionAt severs the WAN trunk between two regions at time `at` for
// `dur`, then heals it. Traffic in flight across the trunk stalls (or is
// lost, for messages) exactly as the fabric dictates.
func (e *Engine) PartitionAt(net *netsim.Network, a, b int, at, dur time.Duration) {
	e.spawn("partition", func(p *sim.Proc) {
		p.Sleep(at)
		net.PartitionRegions(a, b)
		e.log(p, "partition %d-%d", a, b)
		p.Sleep(dur)
		net.HealRegions(a, b)
		e.log(p, "heal %d-%d", a, b)
	})
}

// CrashStormAt reclaims n VMs from the platform at time `at` — containers
// on them are destroyed, in-flight invocations excepted, and the VMs never
// host again (the warm pool refills from fresh hosts).
func (e *Engine) CrashStormAt(pf *faas.Platform, n int, at time.Duration) {
	e.spawn("crash", func(p *sim.Proc) {
		p.Sleep(at)
		crashed := pf.CrashVMs(n)
		e.log(p, "crash storm: %d VMs", crashed)
	})
}

// SlowNodeAt multiplies a node's compute time by `factor` (>1 = slower)
// from `at` until `at+dur`, then restores full speed — a straggler host.
func (e *Engine) SlowNodeAt(pf *faas.Platform, node *netsim.Node, factor float64, at, dur time.Duration) {
	e.spawn("slow", func(p *sim.Proc) {
		p.Sleep(at)
		pf.SetComputeSlowdown(node, factor)
		e.log(p, "slow %s ×%g", node.ID(), factor)
		p.Sleep(dur)
		pf.SetComputeSlowdown(node, 1)
		e.log(p, "restore %s", node.ID())
	})
}

// SlowFrontendAt multiplies a service front end's service times by
// `factor` (>1 = slower) from `at` until `at+dur`, then restores full
// speed — a degraded storage shard, the trigger for a retry storm.
func (e *Engine) SlowFrontendAt(fe *service.Frontend, factor float64, at, dur time.Duration) {
	e.spawn("slow-frontend", func(p *sim.Proc) {
		p.Sleep(at)
		fe.SetSlowdown(factor)
		e.log(p, "slow frontend %s ×%g", fe.Name(), factor)
		p.Sleep(dur)
		fe.SetSlowdown(1)
		e.log(p, "restore frontend %s", fe.Name())
	})
}

// SetSlow registers a named slowdown factor for consumers outside the faas
// platform (e.g. dataflow workers), effective immediately and until
// overwritten. factor 1 clears the entry.
func (e *Engine) SetSlow(name string, factor float64) {
	if factor <= 0 {
		panic("chaos: slowdown factor must be positive")
	}
	if factor == 1 {
		delete(e.slow, name)
		return
	}
	e.slow[name] = factor
}

// Slow returns the registered slowdown factor for name (1 when none).
func (e *Engine) Slow(name string) float64 {
	if f, ok := e.slow[name]; ok {
		return f
	}
	return 1
}

// RandomPartitions draws an alternating up/down schedule for the trunk
// between regions a and b over [0, horizon): exponential healthy periods
// of mean `meanUp`, then exponential outages of mean `meanDown`. The whole
// timeline is drawn from the engine RNG before the kernel runs, so the
// schedule is a pure function of the seed. Returns the number of outages
// scheduled.
func (e *Engine) RandomPartitions(net *netsim.Network, a, b int, horizon, meanUp, meanDown time.Duration) int {
	type window struct{ at, dur time.Duration }
	var outages []window
	t := time.Duration(0)
	for {
		t += time.Duration(e.rng.ExpFloat64() * float64(meanUp))
		if t >= horizon {
			break
		}
		down := time.Duration(e.rng.ExpFloat64() * float64(meanDown))
		if down < time.Millisecond {
			down = time.Millisecond
		}
		outages = append(outages, window{at: t, dur: down})
		t += down
	}
	for _, w := range outages {
		e.PartitionAt(net, a, b, w.at, w.dur)
	}
	return len(outages)
}
