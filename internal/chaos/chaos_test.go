package chaos

import (
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k   *sim.Kernel
	net *netsim.Network
	eng *Engine
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(3)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	net.SetBuildRegion(1)
	net.SetBuildRegion(0)
	net.ConnectRegions(0, 1, netsim.Gbps(1), netsim.WANUniform(30*time.Millisecond, 2*time.Millisecond))
	return &fixture{k: k, net: net, eng: New(k, rng.Fork())}
}

func TestPartitionAtWindow(t *testing.T) {
	f := newFixture(t)
	f.eng.PartitionAt(f.net, 0, 1, 100*time.Millisecond, 200*time.Millisecond)
	probe := func(at time.Duration, want bool) {
		f.k.Spawn("probe", func(p *sim.Proc) {
			p.Sleep(at)
			if got := f.net.RegionsPartitioned(0, 1); got != want {
				t.Errorf("at %v: partitioned = %v, want %v", at, got, want)
			}
		})
	}
	probe(50*time.Millisecond, false)
	probe(150*time.Millisecond, true)
	probe(350*time.Millisecond, false)
	f.k.Run()
	if n := len(f.eng.Events()); n != 2 {
		t.Errorf("logged %d events, want partition+heal", n)
	}
}

func TestCrashStormDestroysWarmPool(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(5)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	pf := faas.New("lambda", net, rng.Fork(), faas.DefaultConfig(), pricing.Fall2018(), meter)
	if err := pf.Register(faas.Function{Name: "f", MemoryMB: 256,
		Handler: func(ctx *faas.Ctx, payload []byte) ([]byte, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	eng := New(k, rng.Fork())
	// Warm a pool of containers, then crash every VM; the pool must empty
	// and the next invocation cold-start on a fresh host.
	var coldAfter bool
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if _, _, err := pf.Invoke(p, "f", nil); err != nil {
				t.Errorf("warmup invoke: %v", err)
			}
		}
	})
	eng.CrashStormAt(pf, 64, 10*time.Second)
	k.Spawn("after", func(p *sim.Proc) {
		p.Sleep(11 * time.Second)
		if pf.WarmIdle("f") != 0 {
			t.Errorf("warm pool survived the storm: %d idle", pf.WarmIdle("f"))
		}
		_, rep, err := pf.Invoke(p, "f", nil)
		if err != nil {
			t.Errorf("post-storm invoke: %v", err)
		}
		coldAfter = rep.ColdStart
	})
	k.Run()
	if !coldAfter {
		t.Errorf("post-storm invocation reused a crashed VM's container")
	}
}

func TestSlowNodeWindow(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(9)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	pf := faas.New("lambda", net, rng.Fork(), faas.DefaultConfig(), pricing.Fall2018(), meter)
	if err := pf.Register(faas.Function{Name: "f", MemoryMB: 1792,
		Handler: func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			ctx.Compute(100 * 1e6) // 100M cycles
			return nil, nil
		}}); err != nil {
		t.Fatal(err)
	}
	eng := New(k, rng.Fork())
	var healthy, slowed, restored time.Duration
	invoke := func(p *sim.Proc) time.Duration {
		_, rep, err := pf.Invoke(p, "f", nil)
		if err != nil {
			t.Errorf("invoke: %v", err)
		}
		return rep.Duration
	}
	k.Spawn("driver", func(p *sim.Proc) {
		invoke(p) // cold start; measure warm invocations only
		healthy = invoke(p)
		node := pf.VMNodes()[0]
		// The window is relative to now; the slowed invoke starts inside it
		// (Compute reads the factor when called, so the full sleep is slow).
		eng.SlowNodeAt(pf, node, 10, 100*time.Millisecond, time.Second)
		p.Sleep(200 * time.Millisecond)
		slowed = invoke(p)
		restored = invoke(p) // window long over by the time the slow invoke ends
	})
	k.Run()
	if slowed < 8*healthy {
		t.Errorf("slowdown ×10: healthy %v, slowed %v", healthy, slowed)
	}
	if restored != healthy {
		t.Errorf("restore failed: healthy %v, restored %v", healthy, restored)
	}
}

func TestSetSlowRegistry(t *testing.T) {
	f := newFixture(t)
	if f.eng.Slow("w3") != 1 {
		t.Errorf("default factor != 1")
	}
	f.eng.SetSlow("w3", 20)
	if f.eng.Slow("w3") != 20 {
		t.Errorf("factor not registered")
	}
	f.eng.SetSlow("w3", 1)
	if f.eng.Slow("w3") != 1 {
		t.Errorf("factor 1 did not clear")
	}
}

// The fault schedule must be a pure function of the seed: two engines with
// the same seed produce identical timelines, observed as identical
// partition states sampled at fine granularity.
func TestRandomPartitionsDeterministic(t *testing.T) {
	trace := func() ([]bool, int) {
		k := sim.NewKernel()
		defer k.Close()
		rng := simrand.New(77)
		net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
		net.SetBuildRegion(1)
		net.SetBuildRegion(0)
		net.ConnectRegions(0, 1, netsim.Gbps(1), netsim.WANUniform(30*time.Millisecond, 2*time.Millisecond))
		eng := New(k, rng.Fork())
		n := eng.RandomPartitions(net, 0, 1, 30*time.Second, 5*time.Second, time.Second)
		var samples []bool
		k.Spawn("sampler", func(p *sim.Proc) {
			for i := 0; i < 3000; i++ {
				p.Sleep(10 * time.Millisecond)
				samples = append(samples, net.RegionsPartitioned(0, 1))
			}
		})
		k.Run()
		return samples, n
	}
	a, na := trace()
	b, nb := trace()
	if na != nb {
		t.Fatalf("outage counts differ: %d vs %d", na, nb)
	}
	if na == 0 {
		t.Fatalf("schedule drew no outages over 30s with mean-up 5s")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at sample %d", i)
		}
	}
	// The trunk must end healthy eventually (all outages heal).
	if a[len(a)-1] {
		t.Errorf("trunk still partitioned at horizon end")
	}
}
