package statecache

import (
	"fmt"
	"slices"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// newZeroLatFixture builds a fixture whose fabric delivers every message
// in zero virtual time: Const(0) one-way delays consume no RNG draws and
// the node bandwidth below rounds any transfer to 0ns, so message sizes
// and counts cannot shift timing or randomness. This is what makes the
// digest and IBF protocols bit-comparable: with identical timing, both
// must produce identical merges and identical staleness samples.
func newZeroLatFixture(t *testing.T, cfg Config, seed uint64) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(seed)
	zero := netsim.LatencyProfile{
		SameHost:  simrand.Const(0),
		SameRack:  simrand.Const(0),
		CrossRack: simrand.Const(0),
	}
	net := netsim.NewNetwork(k, rng.Fork(), zero)
	meter := &pricing.Meter{}
	catalog := pricing.Fall2018()
	store := kvstore.New("ddb", net, 9, rng.Fork(), kvstore.DefaultConfig(), catalog, meter)
	cl := New("cache", net, store, rng.Fork(), cfg, catalog, meter)
	return &fixture{k: k, net: net, store: store, meter: meter, cl: cl}
}

func (f *fixture) fastNode(t *testing.T, id string) *netsim.Node {
	t.Helper()
	return f.net.NewNode(id, 1, netsim.Bps(1e15))
}

// equivRun is everything one protocol run exposes for comparison.
type equivRun struct {
	rounds   int64
	aborted  int64
	count    int
	sum, max time.Duration
	p50, p99 time.Duration
	state    map[string]string // "replica/kind/key" -> rendered state
}

// runEquivWorkload drives a randomized multi-lattice workload (with a
// mid-run partition) over a zero-latency cluster and snapshots everything
// observable: per-replica state for every key, staleness sample
// statistics, and round counts.
func runEquivWorkload(t *testing.T, seed uint64, reconcile bool) equivRun {
	t.Helper()
	const (
		replicaCount = 5
		opCount      = 300
		keyCount     = 8
		window       = 2 * time.Second
	)
	cfg := DefaultConfig()
	cfg.GossipInterval = 40 * time.Millisecond
	cfg.FlushInterval = 300 * time.Millisecond
	cfg.Reconcile = reconcile
	f := newZeroLatFixture(t, cfg, seed)
	caches := make([]*Cache, replicaCount)
	for i := range caches {
		caches[i] = f.cl.Attach(f.fastNode(t, fmt.Sprintf("vm-%d", i)))
	}
	half := map[*netsim.Node]bool{caches[0].node: true, caches[1].node: true}
	f.cl.Partition(func(from, to *netsim.Node) bool { return half[from] != half[to] })

	opRNG := simrand.New(seed * 977)
	f.k.Spawn("driver", func(p *sim.Proc) {
		for op := 0; op < opCount; op++ {
			c := caches[opRNG.Intn(len(caches))]
			key := fmt.Sprintf("k%d", opRNG.Intn(keyCount))
			switch opRNG.Intn(4) {
			case 0:
				c.AddCounter(p, "pn/"+key, int64(opRNG.Intn(21)-10))
			case 1:
				c.IncGCounter(p, "g/"+key, int64(opRNG.Intn(10)))
			case 2:
				c.SetRegister(p, "reg/"+key, fmt.Sprintf("v%d", op))
			default:
				elem := fmt.Sprintf("e%d", opRNG.Intn(12))
				if opRNG.Float64() < 0.7 {
					c.AddSet(p, "set/"+key, elem)
				} else {
					c.RemoveSet(p, "set/"+key, elem)
				}
			}
			p.Sleep(time.Duration(opRNG.Intn(3_000_000)))
		}
	})
	f.k.RunUntil(sim.Time(window))
	f.cl.Partition(nil)
	f.k.RunUntil(f.k.Now() + sim.Time(time.Second))

	run := equivRun{
		rounds:  f.cl.GossipRounds(),
		aborted: f.cl.AbortedRounds(),
		count:   f.cl.Staleness().Count(),
		sum:     f.cl.Staleness().Sum(),
		max:     f.cl.Staleness().Max(),
		p50:     f.cl.Staleness().Percentile(50),
		p99:     f.cl.Staleness().Percentile(99),
		state:   map[string]string{},
	}
	for i, c := range caches {
		for k := 0; k < keyCount; k++ {
			key := fmt.Sprintf("k%d", k)
			run.state[fmt.Sprintf("%d/pn/%s", i, key)] = fmt.Sprint(c.PeekCounter("pn/" + key))
			run.state[fmt.Sprintf("%d/g/%s", i, key)] = fmt.Sprint(c.PeekGCounter("g/" + key))
			run.state[fmt.Sprintf("%d/reg/%s", i, key)] = c.PeekRegister("reg/" + key)
			run.state[fmt.Sprintf("%d/set/%s", i, key)] = fmt.Sprint(c.PeekSet("set/" + key))
		}
	}
	return run
}

// TestReconProtocolEquivalence is the oracle test: over seeds 1–20, the
// IBF protocol must be observationally identical to the digest protocol —
// same converged lattice state on every replica, the same staleness
// samples (count, sum, max, percentiles), and the same number of
// completed rounds.
func TestReconProtocolEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			digest := runEquivWorkload(t, seed, false)
			ibf := runEquivWorkload(t, seed, true)
			if digest.rounds != ibf.rounds || digest.aborted != ibf.aborted {
				t.Errorf("rounds digest=%d/%d ibf=%d/%d",
					digest.rounds, digest.aborted, ibf.rounds, ibf.aborted)
			}
			if digest.count != ibf.count || digest.sum != ibf.sum ||
				digest.max != ibf.max || digest.p50 != ibf.p50 || digest.p99 != ibf.p99 {
				t.Errorf("staleness diverged:\n digest count=%d sum=%v max=%v p50=%v p99=%v\n ibf    count=%d sum=%v max=%v p50=%v p99=%v",
					digest.count, digest.sum, digest.max, digest.p50, digest.p99,
					ibf.count, ibf.sum, ibf.max, ibf.p50, ibf.p99)
			}
			for k, v := range digest.state {
				if ibf.state[k] != v {
					t.Errorf("state %s: digest=%q ibf=%q", k, v, ibf.state[k])
				}
			}
		})
	}
}

// settleAll forces both replicas' deferred refreshes into their filters.
func settleAll(caches ...*Cache) {
	for _, c := range caches {
		c.settleRecon()
	}
}

// diffBothWays runs diffKeys (the digest oracle) and resolveDiff (the IBF
// path, at live-filter size) on the same pair and asserts they agree,
// returning the shared diff. Cloned because both reuse a's scratch.
func diffBothWays(t *testing.T, a, b *Cache) []string {
	t.Helper()
	settleAll(a, b)
	want := slices.Clone(diffKeys(a, b))
	got, _, ok := resolveDiff(a, b, a.rc.live, b.rc.live)
	if !ok {
		t.Fatalf("IBF decode failed on a %d-key difference", len(want))
	}
	if !slices.Equal(got, want) {
		t.Fatalf("diff mismatch:\n ibf    %v\n digest %v", got, want)
	}
	return slices.Clone(got)
}

// quietCfg keeps the background gossip/flush processes out of the way so
// tests can drive rounds by hand.
func quietCfg(reconcile bool) Config {
	cfg := DefaultConfig()
	cfg.GossipInterval = time.Hour
	cfg.FlushInterval = time.Hour
	cfg.Reconcile = reconcile
	return cfg
}

// TestReconAdversarialShapes pits resolveDiff against diffKeys on the
// worst-case key-set geometries.
func TestReconAdversarialShapes(t *testing.T) {
	t.Run("disjoint", func(t *testing.T) {
		f := newFixture(t, quietCfg(true), 3)
		a := f.cl.Attach(f.node(t, "vm-a"))
		b := f.cl.Attach(f.node(t, "vm-b"))
		f.k.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				a.AddCounter(p, fmt.Sprintf("a%03d", i), int64(i))
				b.AddCounter(p, fmt.Sprintf("b%03d", i), int64(i))
			}
		})
		f.k.RunUntil(sim.Time(time.Second))
		if diff := diffBothWays(t, a, b); len(diff) != 80 {
			t.Errorf("disjoint diff has %d keys, want 80", len(diff))
		}
	})
	t.Run("one-empty", func(t *testing.T) {
		f := newFixture(t, quietCfg(true), 4)
		a := f.cl.Attach(f.node(t, "vm-a"))
		b := f.cl.Attach(f.node(t, "vm-b"))
		f.k.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 60; i++ {
				a.AddSet(p, fmt.Sprintf("k%03d", i), "x")
			}
		})
		f.k.RunUntil(sim.Time(time.Second))
		if diff := diffBothWays(t, a, b); len(diff) != 60 {
			t.Errorf("one-empty diff has %d keys, want 60", len(diff))
		}
	})
	t.Run("hash-equal-kind-distinct", func(t *testing.T) {
		// A 64-bit hash collision across kinds is ~2⁻⁶⁴, so force one
		// white-box: both protocols compare hashes only, and both must
		// exclude the key — the digest walk because the digests match, the
		// IBF because equal (key, hash) elements cancel in subtraction.
		// That equivalence is what keeps the IBF path from introducing a
		// new kind-mismatch merge panic the digest path doesn't have.
		f := newFixture(t, quietCfg(true), 5)
		a := f.cl.Attach(f.node(t, "vm-a"))
		b := f.cl.Attach(f.node(t, "vm-b"))
		f.k.Spawn("driver", func(p *sim.Proc) {
			a.SetRegister(p, "clash", "v1")
			b.AddSet(p, "clash", "e1")
			a.AddCounter(p, "normal", 1)
		})
		f.k.RunUntil(sim.Time(time.Second))
		settleAll(a, b)
		forced := uint64(0xfeedface12345678)
		for _, c := range []*Cache{a, b} {
			e := c.entries["clash"]
			c.reconRehash("clash", e.hash, forced)
			e.hash = forced
		}
		diff := diffBothWays(t, a, b)
		if slices.Contains(diff, "clash") {
			t.Errorf("hash-equal kind-distinct key surfaced in diff %v", diff)
		}
		if !slices.Contains(diff, "normal") {
			t.Errorf("real difference missing from diff %v", diff)
		}
	})
}

// TestReconSingleKeyDiffAtMillionSharedKeys is the tentpole's operating
// point: 10⁶ shared keys, one write. The constant-size live summary must
// peel exactly the written key — no escalation, no O(keys) scan — and a
// full manual round must converge the pair while moving only that key.
func TestReconSingleKeyDiffAtMillionSharedKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("preloads 2×10⁶ entries")
	}
	f := newFixture(t, quietCfg(true), 6)
	a := f.cl.Attach(f.node(t, "vm-a"))
	b := f.cl.Attach(f.node(t, "vm-b"))
	for i := 0; i < 1_000_000; i++ {
		key := fmt.Sprintf("k%07d", i)
		a.Preload(key, "v0")
		b.Preload(key, "v0")
	}
	f.k.Spawn("driver", func(p *sim.Proc) {
		a.SetRegister(p, "k0500000", "hot")
	})
	f.k.RunUntil(sim.Time(time.Millisecond))
	diff := diffBothWays(t, a, b)
	if len(diff) != 1 || diff[0] != "k0500000" {
		t.Fatalf("diff = %v, want exactly [k0500000]", diff)
	}
	before := f.cl.GossipBytes()
	f.k.Spawn("round", func(p *sim.Proc) { a.gossipOnce(p) })
	f.k.RunUntil(f.k.Now() + sim.Time(time.Second))
	if got := b.PeekRegister("k0500000"); got != "hot" {
		t.Errorf("peer register = %q after round, want %q", got, "hot")
	}
	delta := f.cl.GossipBytes()
	summary := delta.Summary - before.Summary
	// One live summary: overhead + cells, nowhere near the ~32MB digest.
	if maxSummary := int64(16 * 1024); summary > maxSummary {
		t.Errorf("summary leg cost %d bytes, want ≤ %d (no escalation)", summary, maxSummary)
	}
	if payload := delta.Payload - before.Payload; payload > 4096 {
		t.Errorf("payload leg cost %d bytes for a one-key diff", payload)
	}
}

// TestDetachMidRoundCountsAborted is the round-accounting regression: a
// peer reclaimed while the digest is in flight must land in
// AbortedRounds, not GossipRounds (which used to count it up front).
func TestDetachMidRoundCountsAborted(t *testing.T) {
	for _, reconcile := range []bool{false, true} {
		t.Run(fmt.Sprintf("reconcile=%v", reconcile), func(t *testing.T) {
			f := newFixture(t, quietCfg(reconcile), 7)
			a := f.cl.Attach(f.node(t, "vm-a"))
			b := f.cl.Attach(f.node(t, "vm-b"))
			for i := 0; i < 5000; i++ {
				a.Preload(fmt.Sprintf("k%05d", i), "v0")
			}
			f.k.Spawn("round", func(p *sim.Proc) { a.gossipOnce(p) })
			f.k.Spawn("reclaim", func(p *sim.Proc) {
				// Inside the summary's flight time (≥ same-rack one-way
				// delay of ~127µs, plus ~2.5ms of transfer in digest mode).
				p.Sleep(100 * time.Microsecond)
				b.Detach()
			})
			f.k.RunUntil(sim.Time(time.Second))
			if got := f.cl.AbortedRounds(); got != 1 {
				t.Errorf("AbortedRounds = %d, want 1", got)
			}
			if got := f.cl.GossipRounds(); got != 0 {
				t.Errorf("GossipRounds = %d, want 0 (round aborted)", got)
			}
		})
	}
}

// TestPreloadSharedRegisterCloneOnWrite: preloaded entries share one
// template register; a write or merge must unshare before mutating, so
// the write cannot leak into sibling keys or the other replica's
// untouched entries.
func TestPreloadSharedRegisterCloneOnWrite(t *testing.T) {
	cfg := quietCfg(true)
	f := newFixture(t, cfg, 8)
	a := f.cl.Attach(f.node(t, "vm-a"))
	b := f.cl.Attach(f.node(t, "vm-b"))
	for _, key := range []string{"k0", "k1", "k2"} {
		a.Preload(key, "v0")
		b.Preload(key, "v0")
	}
	f.k.Spawn("driver", func(p *sim.Proc) {
		a.SetRegister(p, "k1", "new")
	})
	f.k.RunUntil(sim.Time(time.Millisecond))
	f.k.Spawn("round", func(p *sim.Proc) { a.gossipOnce(p) })
	f.k.RunUntil(f.k.Now() + sim.Time(time.Second))
	for _, c := range []*Cache{a, b} {
		for _, key := range []string{"k0", "k2"} {
			if got := c.PeekRegister(key); got != "v0" {
				t.Errorf("%s %s = %q, want untouched %q", c.replica, key, got, "v0")
			}
			if !c.entries[key].sharedReg {
				t.Errorf("%s %s lost its shared template without being written", c.replica, key)
			}
		}
		if got := c.PeekRegister("k1"); got != "new" {
			t.Errorf("%s k1 = %q, want %q", c.replica, got, "new")
		}
		if c.entries["k1"].sharedReg {
			t.Errorf("%s k1 still shares the template after mutation", c.replica)
		}
	}
}
