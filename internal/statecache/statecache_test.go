package statecache

import (
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k     *sim.Kernel
	net   *netsim.Network
	store *kvstore.Store
	meter *pricing.Meter
	cl    *Cluster
}

func newFixture(t *testing.T, cfg Config, seed uint64) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(seed)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	catalog := pricing.Fall2018()
	store := kvstore.New("ddb", net, 9, rng.Fork(), kvstore.DefaultConfig(), catalog, meter)
	cl := New("cache", net, store, rng.Fork(), cfg, catalog, meter)
	return &fixture{k: k, net: net, store: store, meter: meter, cl: cl}
}

func (f *fixture) node(t *testing.T, id string) *netsim.Node {
	t.Helper()
	return f.net.NewNode(id, 1, netsim.Mbps(538))
}

func TestLocalOpsServeAtMemoryLatency(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 1)
	c := f.cl.Attach(f.node(t, "vm-1"))
	f.k.Spawn("driver", func(p *sim.Proc) {
		c.AddCounter(p, "hits", 41)
		c.AddCounter(p, "hits", 1)
		start := p.Now()
		if got := c.Counter(p, "hits"); got != 42 {
			t.Errorf("Counter = %d, want 42", got)
		}
		if lat := time.Duration(p.Now() - start); lat > 2*time.Microsecond {
			t.Errorf("local read took %v, want memory latency", lat)
		}
		c.SetRegister(p, "leader", "vm-1")
		if got := c.Register(p, "leader"); got != "vm-1" {
			t.Errorf("Register = %q", got)
		}
		c.AddSet(p, "members", "a")
		c.AddSet(p, "members", "b")
		c.RemoveSet(p, "members", "a")
		if c.SetContains(p, "members", "a") || !c.SetContains(p, "members", "b") {
			t.Errorf("SetElements = %v, want [b]", c.SetElements(p, "members"))
		}
		c.IncGCounter(p, "total", 7)
		if got := c.GCounterValue(p, "total"); got != 7 {
			t.Errorf("GCounterValue = %d, want 7", got)
		}
	})
	f.k.RunUntil(sim.Time(time.Second))
}

func TestGossipConvergesReplicasAndBoundsStaleness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GossipInterval = 50 * time.Millisecond
	f := newFixture(t, cfg, 2)
	a := f.cl.Attach(f.node(t, "vm-a"))
	b := f.cl.Attach(f.node(t, "vm-b"))
	f.k.Spawn("driver", func(p *sim.Proc) {
		a.AddCounter(p, "hits", 10)
		b.AddCounter(p, "hits", 5)
		a.SetRegister(p, "cfg", "v2")
	})
	f.k.RunUntil(sim.Time(time.Second))
	if got := b.PeekCounter("hits"); got != 15 {
		t.Errorf("replica b counter = %d, want 15", got)
	}
	if got := a.PeekCounter("hits"); got != 15 {
		t.Errorf("replica a counter = %d, want 15", got)
	}
	if got := b.PeekRegister("cfg"); got != "v2" {
		t.Errorf("replica b register = %q, want v2", got)
	}
	st := f.cl.Staleness()
	if st.Count() == 0 {
		t.Fatal("no staleness samples recorded")
	}
	if max := st.Max(); max > 10*cfg.GossipInterval {
		t.Errorf("staleness max %v not bounded by gossip cadence (%v)", max, cfg.GossipInterval)
	}
	if f.cl.GossipRounds() == 0 {
		t.Error("no gossip rounds ran")
	}
}

func TestWriteBehindFlushPersistsAndJoinsInStore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlushInterval = 100 * time.Millisecond
	cfg.GossipInterval = time.Hour // isolate the flush path: store-side join only
	f := newFixture(t, cfg, 3)
	a := f.cl.Attach(f.node(t, "vm-a"))
	b := f.cl.Attach(f.node(t, "vm-b"))
	reader := f.node(t, "reader")
	var stored int64
	f.k.Spawn("driver", func(p *sim.Proc) {
		a.AddCounter(p, "hits", 3)
		b.AddCounter(p, "hits", 4)
		p.Sleep(time.Second) // several flush cycles on both replicas
		it, err := f.store.Get(p, reader, "cache/hits", true)
		if err != nil {
			t.Errorf("stored entry missing: %v", err)
			return
		}
		e, err := decodeEntry(it.Value)
		if err != nil {
			t.Errorf("stored entry undecodable: %v", err)
			return
		}
		stored = e.pn.Value()
	})
	f.k.RunUntil(sim.Time(2 * time.Second))
	if stored != 7 {
		t.Errorf("store joined value = %d, want 7 (both replicas' deltas)", stored)
	}
	if f.cl.FlushWrites() == 0 {
		t.Error("no flush writes recorded")
	}
}

func TestDetachDrainsDirtyDeltas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlushInterval = time.Hour // the periodic flush never runs
	cfg.GossipInterval = time.Hour
	f := newFixture(t, cfg, 4)
	node := f.node(t, "vm-a")
	a := f.cl.Attach(node)
	reader := f.node(t, "reader")
	var stored int64
	var found bool
	f.k.Spawn("driver", func(p *sim.Proc) {
		a.AddCounter(p, "hits", 9)
		f.cl.Detach(node)
		p.Sleep(time.Second) // let the drain process flush
		it, err := f.store.Get(p, reader, "cache/hits", true)
		if err != nil {
			return
		}
		e, err := decodeEntry(it.Value)
		if err != nil {
			t.Errorf("stored entry undecodable: %v", err)
			return
		}
		stored, found = e.pn.Value(), true
	})
	f.k.RunUntil(sim.Time(2 * time.Second))
	if !found || stored != 9 {
		t.Errorf("drained value = %d (found=%v), want 9", stored, found)
	}
	if f.cl.Replicas() != 0 {
		t.Errorf("Replicas = %d after detach, want 0", f.cl.Replicas())
	}
}

func TestCacheMemoryBillsPerGBSecond(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GossipInterval = time.Hour
	cfg.FlushInterval = time.Hour
	f := newFixture(t, cfg, 5)
	a := f.cl.Attach(f.node(t, "vm-a"))
	f.k.Spawn("driver", func(p *sim.Proc) {
		a.AddCounter(p, "hits", 1)
	})
	f.k.RunUntil(sim.Time(time.Hour))
	f.cl.Accrue(f.k.Now())
	if f.cl.CachedBytes() <= 0 {
		t.Fatalf("CachedBytes = %d, want > 0", f.cl.CachedBytes())
	}
	got := float64(f.meter.Cost("statecache.gbsec"))
	want := float64(f.cl.CachedBytes()) / 1e9 * 3600 * 0.02 / 3600
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("hourly memory bill = $%v, want ≈ $%v", got, want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 6)
	c := f.cl.Attach(f.node(t, "vm-a"))
	var recovered any
	f.k.Spawn("driver", func(p *sim.Proc) {
		defer func() { recovered = recover() }()
		c.AddCounter(p, "x", 1)
		c.SetRegister(p, "x", "boom")
	})
	f.k.RunUntil(sim.Time(time.Second))
	if recovered == nil {
		t.Error("mixing lattice kinds on one key did not panic")
	}
}

func TestEntryEnvelopeRoundTrips(t *testing.T) {
	for _, kind := range []Kind{KindGCounter, KindPNCounter, KindRegister, KindSet} {
		e := newEntry(kind)
		switch kind {
		case KindGCounter:
			e.g.Inc("r1", 5)
		case KindPNCounter:
			e.pn.Add("r1", -3)
		case KindRegister:
			e.reg.Set("r1", 10, "v")
		case KindSet:
			e.set.Add("r1", "x")
			e.set.Remove("x")
			e.set.Add("r1", "y")
		}
		e.lastWrite = 123
		e.refresh()
		got, err := decodeEntry(e.encode())
		if err != nil {
			t.Fatalf("%v: decode: %v", kind, err)
		}
		if got.hash != e.hash {
			t.Errorf("%v: round-trip hash %x != %x", kind, got.hash, e.hash)
		}
		if got.lastWrite != e.lastWrite {
			t.Errorf("%v: round-trip lastWrite %v != %v", kind, got.lastWrite, e.lastWrite)
		}
	}
	if _, err := decodeEntry([]byte(`{"kind":99,"state":{}}`)); err == nil {
		t.Error("unknown kind decoded without error")
	}
	if _, err := decodeEntry([]byte(`not json`)); err == nil {
		t.Error("garbage decoded without error")
	}
}

func TestFlushSurvivesConditionalWriteRaces(t *testing.T) {
	// Both replicas flush the same key on the same cycle; the loser of the
	// conditional write must re-read, re-join and retry so neither side's
	// deltas are dropped.
	cfg := DefaultConfig()
	cfg.FlushInterval = 50 * time.Millisecond
	cfg.GossipInterval = time.Hour
	f := newFixture(t, cfg, 7)
	a := f.cl.Attach(f.node(t, "vm-a"))
	b := f.cl.Attach(f.node(t, "vm-b"))
	reader := f.node(t, "reader")
	var stored int64
	f.k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			a.AddCounter(p, "hot", 1)
			b.AddCounter(p, "hot", 1)
			p.Sleep(20 * time.Millisecond)
		}
		p.Sleep(time.Second)
		it, err := f.store.Get(p, reader, "cache/hot", true)
		if err != nil {
			t.Errorf("hot key missing: %v", err)
			return
		}
		e, err := decodeEntry(it.Value)
		if err != nil {
			t.Errorf("hot key undecodable: %v", err)
			return
		}
		stored = e.pn.Value()
	})
	f.k.RunUntil(sim.Time(3 * time.Second))
	if stored != 40 {
		t.Errorf("store joined value = %d, want 40", stored)
	}
}
