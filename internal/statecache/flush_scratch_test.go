package statecache

import (
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// TestConcurrentFlushesDoNotShareScratch pins the flush-scratch ownership
// contract: flushKey parks on store round trips, so a second flushDirty on
// the same replica (the drain process Detach spawns while the periodic
// flusher is parked mid-iteration) can run concurrently. Each invocation
// must iterate its own key list — a shared buffer would let the second
// call rewrite the first's remaining keys under it.
func TestConcurrentFlushesDoNotShareScratch(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(1)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	catalog := pricing.Fall2018()
	store := kvstore.New("ddb", net, 9, rng.Fork(), kvstore.DefaultConfig(), catalog, meter)
	cfg := DefaultConfig()
	cfg.GossipInterval = time.Hour
	cfg.FlushInterval = time.Hour
	cl := New("cache", net, store, rng.Fork(), cfg, catalog, meter)
	c := cl.Attach(net.NewNode("vm", 1, netsim.Mbps(538)))

	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	k.Spawn("writer", func(p *sim.Proc) {
		for _, key := range keys {
			c.AddCounter(p, key, 1)
		}
		// Two flushers over the same dirty set, racing at park points.
		k.Spawn("flush-1", func(p *sim.Proc) { c.flushDirty(p) })
		k.Spawn("flush-2", func(p *sim.Proc) { c.flushDirty(p) })
	})
	// Bounded horizon: the replica's hourly gossip/flush loops never exit.
	k.RunUntil(sim.Time(time.Minute))

	if n := c.DirtyKeys(); n != 0 {
		t.Fatalf("%d keys still dirty after concurrent flushes", n)
	}
	k.Spawn("probe", func(p *sim.Proc) {
		for _, key := range keys {
			it, err := store.Get(p, c.Node(), "cache/"+key, true)
			if err != nil {
				t.Errorf("key %q not flushed: %v", key, err)
				continue
			}
			v, err := DecodeValue(it.Value)
			if err != nil {
				t.Errorf("key %q: %v", key, err)
				continue
			}
			if v.Counter() != 1 {
				t.Errorf("key %q flushed counter = %d, want 1", key, v.Counter())
			}
		}
	})
	k.RunUntil(sim.Time(2 * time.Minute))
}
