package statecache

import (
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// BenchmarkCacheCounterOp measures the real-time cost of one local cache
// write (lattice mutation + footprint/digest refresh + billing update) on
// an 8-replica-wide counter — the statecache experiment's hot path.
func BenchmarkCacheCounterOp(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(1)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	catalog := pricing.Fall2018()
	store := kvstore.New("ddb", net, 9, rng.Fork(), kvstore.DefaultConfig(), catalog, meter)
	cfg := DefaultConfig()
	cfg.GossipInterval = time.Hour
	cfg.FlushInterval = time.Hour
	cl := New("cache", net, store, rng.Fork(), cfg, catalog, meter)
	c := cl.Attach(net.NewNode("vm", 1, netsim.Mbps(538)))
	// Pre-widen the lattice to 8 replica slots, like an 8-VM fleet.
	seed := c.at("hits", KindPNCounter, true)
	for i := 0; i < 8; i++ {
		seed.pn.Add(string(rune('a'+i)), int64(i))
	}
	done := false
	k.Spawn("bench", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AddCounter(p, "hits", 1)
		}
		b.StopTimer()
		done = true
	})
	k.RunUntil(sim.Time(time.Duration(b.N+1) * time.Microsecond))
	if !done {
		b.Fatal("benchmark proc did not finish")
	}
}
