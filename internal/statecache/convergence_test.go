package statecache

// Randomized gossip-convergence property test: N replicas absorb a random
// interleaving of writes to all four lattice types while the cluster is
// split into two halves (gossip between halves blocked), then the
// partition heals and anti-entropy runs with no further writes. Every
// replica must converge to the same state, and that state must equal the
// reference: exact arithmetic for the counters, the lexicographic-max
// write for the register, and — for the OR-set — a superset check plus
// pairwise equality (add-wins keeps concurrently re-added elements, so the
// reference for removed elements is convergence itself).

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type regWrite struct {
	replica string
	stamp   int64
	val     string
}

// wins mirrors crdt.LWWRegister's (stamp, replica, val) lexicographic max.
func (w regWrite) wins(o regWrite) bool {
	switch {
	case w.stamp != o.stamp:
		return w.stamp > o.stamp
	case w.replica != o.replica:
		return w.replica > o.replica
	default:
		return w.val > o.val
	}
}

func TestRandomizedPartitionedConvergence(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			testPartitionedConvergence(t, seed, func(*Config) {})
		})
	}
}

// The same property under IBF reconciliation: partitions build up
// differences, healing drains them, and every replica must still land on
// the reference state.
func TestRandomizedPartitionedConvergenceRecon(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			testPartitionedConvergence(t, seed, func(cfg *Config) { cfg.Reconcile = true })
		})
	}
}

// With a summary far too small for any real difference, every round runs
// the 2×/4× escalation ladder into the digest fallback — convergence must
// not depend on decode ever succeeding.
func TestReconFallbackStillConverges(t *testing.T) {
	for seed := uint64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			testPartitionedConvergence(t, seed, func(cfg *Config) {
				cfg.Reconcile = true
				cfg.ReconCells = 3
			})
		})
	}
}

func testPartitionedConvergence(t *testing.T, seed uint64, tweak func(*Config)) {
	const (
		replicaCount = 5
		opCount      = 400
		keyCount     = 6
		window       = 2 * time.Second
	)
	cfg := DefaultConfig()
	cfg.GossipInterval = 40 * time.Millisecond
	cfg.FlushInterval = 300 * time.Millisecond
	tweak(&cfg)
	f := newFixture(t, cfg, seed)

	caches := make([]*Cache, replicaCount)
	for i := range caches {
		caches[i] = f.cl.Attach(f.node(t, fmt.Sprintf("vm-%d", i)))
	}
	// Partition: replicas 0..1 cannot gossip with 2..4 (either direction).
	half := map[*netsim.Node]bool{caches[0].node: true, caches[1].node: true}
	f.cl.Partition(func(from, to *netsim.Node) bool { return half[from] != half[to] })

	var (
		counterRef  int64
		gcounterRef int64
		regRef      regWrite
		added       = map[string]bool{}
		removed     = map[string]bool{}
	)
	opRNG := simrand.New(seed * 977)
	f.k.Spawn("driver", func(p *sim.Proc) {
		for op := 0; op < opCount; op++ {
			c := caches[opRNG.Intn(len(caches))]
			key := fmt.Sprintf("k%d", opRNG.Intn(keyCount))
			switch opRNG.Intn(4) {
			case 0:
				d := int64(opRNG.Intn(21) - 10)
				c.AddCounter(p, "pn/"+key, d)
				counterRef += d
			case 1:
				n := int64(opRNG.Intn(10))
				c.IncGCounter(p, "g/"+key, n)
				gcounterRef += n
			case 2:
				w := regWrite{replica: c.replica, stamp: int64(p.Now()), val: fmt.Sprintf("v%d", op)}
				c.SetRegister(p, "reg/shared", w.val)
				if regRef == (regWrite{}) || w.wins(regRef) {
					regRef = w
				}
			default:
				elem := fmt.Sprintf("e%d", opRNG.Intn(12))
				if opRNG.Float64() < 0.7 {
					c.AddSet(p, "set/shared", elem)
					added[elem] = true
				} else {
					c.RemoveSet(p, "set/shared", elem)
					removed[elem] = true
				}
			}
			p.Sleep(time.Duration(opRNG.Intn(3_000_000))) // 0-3ms between ops
		}
	})
	f.k.RunUntil(sim.Time(window))

	// Writes done; heal and let anti-entropy finish.
	f.cl.Partition(nil)
	f.k.RunUntil(f.k.Now() + sim.Time(time.Second))

	// Sum the replicas' PN totals via one replica after convergence; all
	// replicas must agree pairwise on every surface.
	base := caches[0]
	var pnTotal, gTotal int64
	for k := 0; k < keyCount; k++ {
		pnTotal += base.PeekCounter(fmt.Sprintf("pn/k%d", k))
		gTotal += base.PeekGCounter(fmt.Sprintf("g/k%d", k))
	}
	if pnTotal != counterRef {
		t.Errorf("PN-counter total = %d, want reference %d", pnTotal, counterRef)
	}
	if gTotal != gcounterRef {
		t.Errorf("G-counter total = %d, want reference %d", gTotal, gcounterRef)
	}
	if regRef != (regWrite{}) {
		if got := base.PeekRegister("reg/shared"); got != regRef.val {
			t.Errorf("register = %q, want reference winner %q", got, regRef.val)
		}
	}
	elems := base.PeekSet("set/shared")
	have := map[string]bool{}
	for _, e := range elems {
		have[e] = true
	}
	for e := range added {
		if !removed[e] && !have[e] {
			t.Errorf("set lost element %q (added, never removed)", e)
		}
	}
	for _, e := range elems {
		if !added[e] {
			t.Errorf("set invented element %q", e)
		}
	}

	for i, c := range caches[1:] {
		for k := 0; k < keyCount; k++ {
			pk, gk := fmt.Sprintf("pn/k%d", k), fmt.Sprintf("g/k%d", k)
			if c.PeekCounter(pk) != base.PeekCounter(pk) {
				t.Errorf("replica %d diverged on %s: %d != %d", i+1, pk, c.PeekCounter(pk), base.PeekCounter(pk))
			}
			if c.PeekGCounter(gk) != base.PeekGCounter(gk) {
				t.Errorf("replica %d diverged on %s", i+1, gk)
			}
		}
		if c.PeekRegister("reg/shared") != base.PeekRegister("reg/shared") {
			t.Errorf("replica %d diverged on register", i+1)
		}
		if !reflect.DeepEqual(c.PeekSet("set/shared"), base.PeekSet("set/shared")) {
			t.Errorf("replica %d diverged on set: %v != %v", i+1, c.PeekSet("set/shared"), base.PeekSet("set/shared"))
		}
	}
}
