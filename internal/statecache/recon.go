package statecache

// IBF set-reconciliation gossip (Config.Reconcile). Each replica keeps a
// live invertible Bloom filter summarizing its {key, state-hash} set,
// maintained incrementally: entries are folded in when created, and
// re-folded whenever a settle or merge changes their state hash. A round
// then ships the ~constant-size summary instead of the O(keys) digest;
// the receiver subtracts its own summary and peels out exactly the
// disagreeing keys, so the mostly-converged steady state costs O(diff)
// bytes and O(cells) work instead of O(keys) of both.
//
// Decode can fail when the difference outgrows the cell count. The
// escalation ladder rebuilds both summaries at 2× then 4× cells, and a
// still-failing decode falls back to the full digest exchange — so
// convergence never depends on decode success, and the digest protocol
// stays the reference oracle the IBF path is equivalence-tested against.

import (
	"slices"

	"repro/internal/recon"
	"repro/internal/sim"
)

// reconState is one replica's reconciliation bookkeeping (nil unless the
// cluster runs with Config.Reconcile).
type reconState struct {
	// live is the incrementally maintained summary of every entry's
	// (key digest, state hash) element.
	live *recon.Filter
	// elems resolves a peeled element back to its key. Distinct hashes of
	// the same key always produce distinct elements (the mixer is a
	// bijection per key); cross-key element collisions (~2⁻⁶⁴) only cost
	// a key its resolution for one round — the next round retries.
	elems map[uint64]string
	// stale lists keys whose deferred refresh hasn't been folded into the
	// filter yet, appended on the entry's not-stale→stale transition and
	// drained by settle (idempotent per key: fresh no-ops once settled).
	stale []string
	// dec is the subtract-and-peel scratch for rounds this replica decodes.
	dec recon.Decoder
}

// keyDigest is FNV-1a over the key string, inlined so the hot insert and
// rehash paths never allocate a hash.Hash.
func keyDigest(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// element digests one (key, state-hash) pair into the uint64 the filter
// reconciles. For a fixed key, distinct state hashes always yield
// distinct elements, so a hash change is always visible to the peer.
func element(keyHash, stateHash uint64) uint64 {
	return recon.Mix(keyHash ^ recon.Mix(stateHash^0xa24baed4963ee407))
}

// reconInsert folds a newly created entry into the live summary (at its
// current hash — zero for an entry that hasn't refreshed yet; the first
// settle moves it).
func (c *Cache) reconInsert(key string, e *entry) {
	if c.rc == nil {
		return
	}
	el := element(keyDigest(key), e.hash)
	c.rc.live.Add(el)
	c.rc.elems[el] = key
}

// reconRehash moves a key's element after its state hash changed.
func (c *Cache) reconRehash(key string, oldHash, newHash uint64) {
	if c.rc == nil || oldHash == newHash {
		return
	}
	kh := keyDigest(key)
	oldEl := element(kh, oldHash)
	c.rc.live.Remove(oldEl)
	delete(c.rc.elems, oldEl)
	newEl := element(kh, newHash)
	c.rc.live.Add(newEl)
	c.rc.elems[newEl] = key
}

// settleRecon settles every pending deferred refresh so the live filter
// and element map reflect all local writes. Cost is proportional to keys
// written since the last settle, not the key count.
func (c *Cache) settleRecon() {
	rc := c.rc
	for i, k := range rc.stale {
		c.fresh(k, c.entries[k])
		rc.stale[i] = "" // drop the string reference while keeping capacity
	}
	rc.stale = rc.stale[:0]
}

// rebuildFilter re-enumerates every entry into a filter of the given cell
// count — the O(keys) escalation path, paid only after the constant-size
// live summary failed to decode.
func (c *Cache) rebuildFilter(cells int) *recon.Filter {
	f := recon.New(cells)
	for _, k := range c.keys {
		f.Add(element(keyDigest(k), c.entries[k].hash))
	}
	return f
}

// resolveDiff decodes the symmetric difference of two summaries (fa of
// a's entries, fb of b's) and resolves the peeled elements into the
// sorted, deduplicated key list a gossip round merges — the IBF
// counterpart of diffKeys. onlyA counts the elements present only on a's
// side: b peels those but cannot name their keys, so their 8-byte
// digests ride the response message for a to resolve (the caller adds
// that to the response size). ok is false when peeling stalled; both
// replicas must be settled first. The result reuses a's diff scratch,
// like diffKeys.
func resolveDiff(a, b *Cache, fa, fb *recon.Filter) (diff []string, onlyA int, ok bool) {
	ea, eb, ok := b.rc.dec.Decode(fa, fb)
	if !ok {
		return nil, 0, false
	}
	out := a.diffScratch[:0]
	for _, x := range ea {
		if k, found := a.rc.elems[x]; found {
			out = append(out, k)
		}
	}
	for _, x := range eb {
		if k, found := b.rc.elems[x]; found {
			out = append(out, k)
		}
	}
	slices.Sort(out)
	out = slices.Compact(out)
	a.diffScratch = out
	return out, len(ea), true
}

// reconDiff runs the summary leg of an IBF round: ship the live summary,
// settle both sides, and peel the disagreeing keys. On decode failure the
// escalation ladder rebuilds both sides at 2× then 4× cells (a nack plus
// a re-sized summary per rung); if decode still fails it falls back to
// the full digest exchange, so the round always produces a correct diff.
func (c *Cache) reconDiff(p *sim.Proc, peer *Cache) (diff []string, extraResp int64, aborted bool) {
	cl := c.cl
	size := int64(cl.cfg.MessageOverheadBytes) + c.rc.live.WireBytes()
	cl.bytesSummary += size
	if !cl.net.SendMsg(p, c.node, peer.node, size) || peer.detached {
		return nil, 0, true
	}
	c.settleRecon()
	peer.settleRecon()
	if d, only, ok := resolveDiff(c, peer, c.rc.live, peer.rc.live); ok {
		return d, 8 * int64(only), false
	}
	for mult := 2; mult <= 4; mult *= 2 {
		nack := int64(cl.cfg.MessageOverheadBytes)
		cl.bytesSummary += nack
		if !cl.net.SendMsg(p, peer.node, c.node, nack) || c.detached {
			return nil, 0, true
		}
		// Each side settles and rebuilds at its own send/decode instant:
		// state can move while a summary is in flight, and a snapshot gone
		// stale only costs unresolved elements (caught by the next round),
		// never correctness.
		c.settleRecon()
		fc := c.rebuildFilter(mult * cl.cfg.ReconCells)
		size := int64(cl.cfg.MessageOverheadBytes) + fc.WireBytes()
		cl.bytesSummary += size
		if !cl.net.SendMsg(p, c.node, peer.node, size) || peer.detached {
			return nil, 0, true
		}
		peer.settleRecon()
		fp := peer.rebuildFilter(mult * cl.cfg.ReconCells)
		if d, only, ok := resolveDiff(c, peer, fc, fp); ok {
			return d, 8 * int64(only), false
		}
	}
	nack := int64(cl.cfg.MessageOverheadBytes)
	cl.bytesSummary += nack
	if !cl.net.SendMsg(p, peer.node, c.node, nack) || c.detached {
		return nil, 0, true
	}
	d, ab := c.digestDiff(p, peer)
	return d, 0, ab
}
