package statecache

// Gossip anti-entropy. Every replica runs one round per GossipInterval
// against one uniformly random peer: first a reconciliation leg that
// finds the disagreeing keys — a digest exchange by default (per-key
// state hashes, O(keys) bytes), or a constant-size IBF summary under
// Config.Reconcile (O(diff) bytes; see recon.go) — then full lattice
// state for only the keys whose hashes differ, merged in both directions
// so the pair is identical when the round ends. The three messages
// (digest/summary, pull response, push) travel the netsim fabric through
// both VMs' NICs, so gossip bandwidth contends with the functions' own
// storage traffic.
//
// Determinism: peers are picked from the attach-ordered replica slice with
// the replica's own forked RNG; every key iteration is over sorted keys.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/crdt"
	"repro/internal/sim"
)

// entry is one cached lattice plus its gossip/flush bookkeeping.
type entry struct {
	kind Kind
	g    *crdt.GCounter
	pn   *crdt.PNCounter
	reg  *crdt.LWWRegister
	set  *crdt.ORSet

	bytes     int64    // serialized footprint at last refresh
	hash      uint64   // FNV-1a of the serialized state (digest line)
	lastWrite sim.Time // latest originating local write merged in

	// Local writes run at memory speed, so they must not pay a JSON
	// marshal per op: wrote() only flags the entry stale and the
	// footprint/hash are recomputed at the first consumer — a gossip
	// diff, a flush, a billing settlement (Cache.fresh). staleSince
	// remembers when the deferred growth appeared so the settlement can
	// bill it from then, not from when it was noticed.
	stale      bool
	staleSince sim.Time

	// sharedReg marks a register borrowed from the cluster's Preload
	// template; the entry must clone it before any mutation (unshare).
	sharedReg bool
}

// unshare gives a preloaded entry its own register before a mutating
// Set or Merge, so the write cannot leak into every other preloaded
// entry sharing the template.
func (e *entry) unshare() {
	if !e.sharedReg {
		return
	}
	r := *e.reg
	e.reg = &r
	e.sharedReg = false
}

func newEntry(kind Kind) *entry {
	e := &entry{kind: kind}
	switch kind {
	case KindGCounter:
		e.g = crdt.NewGCounter()
	case KindPNCounter:
		e.pn = crdt.NewPNCounter()
	case KindRegister:
		e.reg = &crdt.LWWRegister{}
	case KindSet:
		e.set = crdt.NewORSet()
	default:
		panic(fmt.Sprintf("statecache: unknown kind %d", kind))
	}
	return e
}

// envelope is the wire/storage form of an entry: the lattice kind, its
// JSON state, and the originating-write stamp staleness tracking rides on.
type envelope struct {
	Kind      Kind            `json:"kind"`
	State     json.RawMessage `json:"state"`
	LastWrite int64           `json:"lastWrite"`
}

// encodeState serializes just the lattice. json.Marshal sorts map keys, so
// replicas holding equal lattice state produce identical bytes — which is
// what makes a byte hash a sound convergence digest.
func (e *entry) encodeState() []byte {
	switch e.kind {
	case KindGCounter:
		return crdt.Marshal(e.g)
	case KindPNCounter:
		return crdt.Marshal(e.pn)
	case KindRegister:
		return crdt.Marshal(e.reg)
	default:
		return crdt.Marshal(e.set)
	}
}

// encode serializes the entry for storage and gossip transfer.
func (e *entry) encode() []byte {
	return crdt.Marshal(envelope{Kind: e.kind, State: e.encodeState(), LastWrite: int64(e.lastWrite)})
}

// envelopeOverheadBytes approximates the envelope framing around the state
// payload when sizing an entry's storage/transfer footprint.
const envelopeOverheadBytes = 48

// decodeEntry parses a stored envelope back into an entry.
func decodeEntry(data []byte) (*entry, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	e := &entry{kind: env.Kind, lastWrite: sim.Time(env.LastWrite)}
	var err error
	switch env.Kind {
	case KindGCounter:
		e.g, err = crdt.UnmarshalGCounter(env.State)
	case KindPNCounter:
		e.pn, err = crdt.UnmarshalPNCounter(env.State)
	case KindRegister:
		e.reg, err = crdt.UnmarshalLWWRegister(env.State)
	case KindSet:
		e.set, err = crdt.UnmarshalORSet(env.State)
	default:
		err = fmt.Errorf("statecache: unknown kind %d", env.Kind)
	}
	if err != nil {
		return nil, err
	}
	// Digest the raw state bytes instead of re-marshaling the lattice just
	// decoded from them: for canonically encoded input (everything encode
	// produces) the hash and footprint are identical, and a non-canonical
	// encoding only makes the hash conservatively unequal — the comparison
	// consumers skip work on equality, so that stays sound.
	h := fnv.New64a()
	h.Write([]byte{byte(e.kind)})
	h.Write(env.State)
	e.bytes = int64(len(env.State)) + envelopeOverheadBytes
	e.hash = h.Sum64()
	return e, nil
}

// refresh recomputes the serialized footprint and digest hash after a
// mutation or merge, returning the change in footprint bytes. The hash
// covers only kind+state, not lastWrite: replicas holding identical
// lattices may carry different write stamps (each merge keeps the max it
// has seen) and must still digest as equal.
func (e *entry) refresh() int64 {
	state := e.encodeState()
	h := fnv.New64a()
	h.Write([]byte{byte(e.kind)})
	h.Write(state)
	old := e.bytes
	e.bytes = int64(len(state)) + envelopeOverheadBytes
	e.hash = h.Sum64()
	e.stale = false
	return e.bytes - old
}

// merge joins other into e, returning the footprint change. Kinds must
// match (the caller's key addressed a different lattice otherwise).
func (e *entry) merge(other *entry) int64 {
	if other.kind != e.kind {
		panic(fmt.Sprintf("statecache: merging %v into %v", other.kind, e.kind))
	}
	switch e.kind {
	case KindGCounter:
		e.g.Merge(other.g)
	case KindPNCounter:
		e.pn.Merge(other.pn)
	case KindRegister:
		e.unshare()
		e.reg.Merge(other.reg)
	case KindSet:
		e.set.Merge(other.set)
	}
	if other.lastWrite > e.lastWrite {
		e.lastWrite = other.lastWrite
	}
	return e.refresh()
}

// gossipOnce runs one anti-entropy round from c against one random peer:
// a reconciliation leg that computes the disagreeing keys (digest
// exchange by default, IBF summary under Config.Reconcile), then — when
// the pair actually differs — a pull response and a push so the pair is
// identical at round end. A round counts as complete only when every leg
// delivered and merged; a participant detaching mid-flight — or a WAN
// partition swallowing any leg — aborts the round into AbortedRounds
// instead, leaving both sides' state merely unconverged, never wrong.
func (c *Cache) gossipOnce(p *sim.Proc) {
	peer := c.pickPeer()
	if peer == nil {
		return
	}
	cl := c.cl
	cl.startedRounds++
	var diff []string
	var extraResp int64
	var aborted bool
	if cl.cfg.Reconcile {
		diff, extraResp, aborted = c.reconDiff(p, peer)
	} else {
		diff, aborted = c.digestDiff(p, peer)
	}
	if aborted {
		cl.abortedRounds++
		return
	}
	if len(diff) > 0 {
		// 2. The peer answers with its state for every key in the diff
		// (plus, on the IBF path, the element digests it could not name).
		resp := int64(cl.cfg.MessageOverheadBytes) + extraResp
		for _, k := range diff {
			if e := peer.entries[k]; e != nil {
				resp += e.bytes
			}
		}
		cl.bytesPayload += resp
		if !cl.net.SendMsg(p, peer.node, c.node, resp) || c.detached {
			cl.abortedRounds++
			return
		}
		c.mergeFrom(p.Now(), peer, diff)

		// 3. Push: c returns its (now joined) state for the same keys,
		// making the pair identical at round end.
		push := int64(cl.cfg.MessageOverheadBytes)
		for _, k := range diff {
			if e := c.entries[k]; e != nil {
				push += e.bytes
			}
		}
		cl.bytesPush += push
		if !cl.net.SendMsg(p, c.node, peer.node, push) || peer.detached {
			cl.abortedRounds++
			return
		}
		peer.mergeFrom(p.Now(), c, diff)
	}
	cl.gossipRounds++
}

// digestDiff runs the reconciliation leg of the default protocol: c
// ships one fixed-size digest line per cached key (the running
// key-length sum makes sizing O(1) instead of a walk over every key),
// and the peer compares it against its own entries. The diff covers keys
// missing from either side or hashing differently.
func (c *Cache) digestDiff(p *sim.Proc, peer *Cache) (diff []string, aborted bool) {
	cl := c.cl
	digest := int64(cl.cfg.MessageOverheadBytes) +
		c.keyBytes + int64(len(c.keys)*cl.cfg.DigestBytesPerKey)
	cl.bytesSummary += digest
	if !cl.net.SendMsg(p, c.node, peer.node, digest) || peer.detached {
		return nil, true // lost to a partition, or reclaimed in flight
	}
	return diffKeys(c, peer), false
}

// pickPeer selects one uniformly random gossip partner, honoring the
// cluster's partition hook and WAN reachability (a replica behind a
// severed trunk is not a candidate, so partitioned halves keep converging
// internally). It returns nil when no peer is reachable.
func (c *Cache) pickPeer() *Cache {
	cl := c.cl
	candidates := c.candScratch[:0]
	defer func() { c.candScratch = candidates[:0] }()
	for _, cand := range cl.replicas {
		if cand == c {
			continue
		}
		if cl.partition != nil && cl.partition(c.node, cand.node) {
			continue
		}
		if !cl.net.Reachable(c.node, cand.node) {
			continue
		}
		candidates = append(candidates, cand)
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[c.rng.Intn(len(candidates))]
}

// diffKeys returns, sorted, every key the two replicas disagree on: held
// by only one side, or hashing differently. Both sides' entries are
// freshened on the way, so the hashes compared (and the entry bytes the
// caller sizes transfers with) reflect every local write so far.
//
// Both replicas maintain their key sets pre-sorted, so the diff is a
// single merge walk — no map iteration (whose order would scramble the
// freshen-time billing settlements) and no per-round sort. The result
// reuses a's scratch buffer: a is the round initiator, and one round is a
// single sequential process, so the buffer cannot be clobbered before the
// round finishes with it.
func diffKeys(a, b *Cache) []string {
	out := a.diffScratch[:0]
	ak, bk := a.keys, b.keys
	i, j := 0, 0
	for i < len(ak) || j < len(bk) {
		switch {
		case j >= len(bk) || (i < len(ak) && ak[i] < bk[j]):
			a.fresh(ak[i], a.entries[ak[i]])
			out = append(out, ak[i])
			i++
		case i >= len(ak) || bk[j] < ak[i]:
			b.fresh(bk[j], b.entries[bk[j]])
			out = append(out, bk[j])
			j++
		default: // both hold the key: compare freshened digests
			ae, be := a.entries[ak[i]], b.entries[bk[j]]
			a.fresh(ak[i], ae)
			b.fresh(bk[j], be)
			if ae.hash != be.hash {
				out = append(out, ak[i])
			}
			i++
			j++
		}
	}
	a.diffScratch = out
	return out
}

// mergeFrom joins src's entries for the given keys into c, sampling the
// staleness window for every merge that actually changed local state.
func (c *Cache) mergeFrom(now sim.Time, src *Cache, keys []string) {
	for _, k := range keys {
		se := src.entries[k]
		if se == nil {
			continue
		}
		src.fresh(k, se)
		e, ok := c.entries[k]
		if !ok {
			e = newEntry(se.kind)
			c.entries[k] = e
			c.addKey(k)
			c.reconInsert(k, e)
		}
		// Settle any deferred local growth first, so the merge delta and
		// the changed-state check are against a current footprint/hash.
		c.fresh(k, e)
		if ok && e.hash == se.hash && e.kind == se.kind {
			// Identical serialized state: the join is an identity, the
			// footprint delta zero and the digest unchanged, so the merge
			// (and its re-marshal) can be skipped outright. This is the
			// common push-direction case after the pull already equalized
			// the pair.
			if se.lastWrite > e.lastWrite {
				e.lastWrite = se.lastWrite
			}
			continue
		}
		before := e.hash
		c.reweigh(e.merge(se))
		c.reconRehash(k, before, e.hash)
		if e.hash != before {
			c.cl.staleness.Add(time.Duration(now - se.lastWrite))
			c.cl.lastMerge = now
		}
	}
}
