package statecache

// WAN-tier property tests: the statecache cluster stretched across netsim
// regions, with its backing store pinned in region 0 and replicas spread
// behind high-latency trunks that sever and heal mid-run. Partitions here
// are real topology events (zero-capacity trunks), not the Partition()
// gossip hook the single-region convergence suite uses, so they exercise
// the mid-flight sever path and the flush reachability gate too.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// newWANFixture builds a cluster whose backing store lives in region 0
// with one replica node per region (regions ≥ 2), joined by 30ms trunks.
func newWANFixture(t *testing.T, cfg Config, seed uint64, regions int) (*fixture, []*Cache) {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(seed)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	for a := 0; a < regions; a++ {
		for b := a + 1; b < regions; b++ {
			net.ConnectRegions(a, b, netsim.Gbps(1), netsim.WANUniform(30*time.Millisecond, 2*time.Millisecond))
		}
	}
	meter := &pricing.Meter{}
	catalog := pricing.Fall2018()
	store := kvstore.New("ddb", net, 9, rng.Fork(), kvstore.DefaultConfig(), catalog, meter)
	cl := New("cache", net, store, rng.Fork(), cfg, catalog, meter)
	f := &fixture{k: k, net: net, store: store, meter: meter, cl: cl}
	replicas := make([]*Cache, regions)
	for r := 0; r < regions; r++ {
		prev := net.SetBuildRegion(r)
		replicas[r] = cl.Attach(net.NewNode(fmt.Sprintf("vm-r%d", r), 1, netsim.Mbps(538)))
		net.SetBuildRegion(prev)
	}
	return f, replicas
}

// TestWANPartitionHealConvergence is the randomized partition/heal
// property test: replicas spread across regions take writes while the
// trunks sever and heal on a random schedule drawn up front from the
// seed. After the last heal the cluster must converge to the joined value
// everywhere, and once the replicas detach and drain, the round
// accounting must balance exactly: every gossip round that found a
// reachable partner either completed or aborted.
func TestWANPartitionHealConvergence(t *testing.T) {
	var totalAborted int64
	for seed := uint64(1); seed <= 8; seed++ {
		for _, reconcile := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.GossipInterval = 25 * time.Millisecond
			cfg.Reconcile = reconcile
			regions := 2 + int(seed%2) // alternate 2- and 3-region meshes
			f, replicas := newWANFixture(t, cfg, seed, regions)
			chaos := simrand.New(seed * 977)

			// Writers: each replica mutates the shared counter from its
			// own region, through partitions.
			var want int64
			for r, c := range replicas {
				rc, rr := c, r
				f.k.Spawn(fmt.Sprintf("writer-%d", r), func(p *sim.Proc) {
					for i := 0; i < 40; i++ {
						p.Sleep(time.Duration(5+rr) * time.Millisecond)
						rc.AddCounter(p, "hits", 1)
					}
				})
				want += 40
			}
			// Chaos: sever and heal random trunks over the first 1.5s. The
			// whole schedule is drawn before the kernel runs, so it is a
			// pure function of the seed.
			type cut struct {
				a, b    int
				at, dur time.Duration
			}
			var cuts []cut
			for i := 0; i < 6; i++ {
				a := chaos.Intn(regions)
				b := (a + 1 + chaos.Intn(regions-1)) % regions
				if a > b {
					a, b = b, a
				}
				cuts = append(cuts, cut{
					a: a, b: b,
					at:  time.Duration(chaos.Intn(1500)) * time.Millisecond,
					dur: time.Duration(50+chaos.Intn(400)) * time.Millisecond,
				})
			}
			for i, ct := range cuts {
				ct := ct
				f.k.Spawn(fmt.Sprintf("cut-%d", i), func(p *sim.Proc) {
					p.Sleep(ct.at)
					f.net.PartitionRegions(ct.a, ct.b)
					p.Sleep(ct.dur)
					f.net.HealRegions(ct.a, ct.b)
				})
			}
			// Run well past the last heal; gossip converges the mesh.
			f.k.RunUntil(sim.Time(8 * time.Second))

			for r, c := range replicas {
				if got := c.PeekCounter("hits"); got != want {
					t.Errorf("seed %d recon=%v: replica %d counter = %d, want %d",
						seed, reconcile, r, got, want)
				}
			}

			// Quiesce: detach every replica (in-flight rounds abort, drains
			// flush) so the round ledger is final, then check it balances.
			f.k.Spawn("quiesce", func(p *sim.Proc) {
				for _, c := range replicas {
					c.Detach()
				}
			})
			f.k.RunUntil(f.k.Now() + sim.Time(2*time.Second))
			if got, want := f.cl.StartedRounds(), f.cl.GossipRounds()+f.cl.AbortedRounds(); got != want {
				t.Errorf("seed %d recon=%v: started %d != completed %d + aborted %d",
					seed, reconcile, got, f.cl.GossipRounds(), f.cl.AbortedRounds())
			}
			totalAborted += f.cl.AbortedRounds()
		}
	}
	// Across 16 runs × 6 cuts each, some cut must land mid-round: the
	// sever path has to be exercised, not just the partner filter.
	if totalAborted == 0 {
		t.Error("no gossip round aborted across any randomized schedule")
	}
}

// wanFlushScenario writes one counter delta on a region-1 replica and
// reports (FlushWrites, dynamodb.write units, stored value) after the
// run. With partition=true the trunk is severed when the write lands and
// heals only after many flush intervals have parked on the reachability
// gate.
func wanFlushScenario(t *testing.T, partition bool) (flushes, writeUnits, stored int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.FlushInterval = 100 * time.Millisecond
	cfg.GossipInterval = time.Hour // isolate the flush path
	f, replicas := newWANFixture(t, cfg, 3, 2)
	remote := replicas[1]
	reader := f.net.NewNode("reader", 1, netsim.Mbps(538)) // region 0, beside the store

	f.k.Spawn("driver", func(p *sim.Proc) {
		if partition {
			f.net.PartitionRegions(0, 1)
		}
		remote.AddCounter(p, "hits", 7)
		p.Sleep(2 * time.Second) // many flush intervals pass
		if partition {
			if n := f.cl.FlushWrites(); n != 0 {
				t.Errorf("flushed %d writes across a partition", n)
			}
			if n := f.meter.Count("dynamodb.write"); n != 0 {
				t.Errorf("billed %d store write units across a partition", n)
			}
			f.net.HealRegions(0, 1)
			p.Sleep(2 * time.Second) // parked flush retries, lands once
		}
		it, err := f.store.Get(p, reader, "cache/hits", true)
		if err != nil {
			t.Errorf("stored entry missing after run: %v", err)
			return
		}
		e, err := decodeEntry(it.Value)
		if err != nil {
			t.Errorf("stored entry undecodable: %v", err)
			return
		}
		stored = e.pn.Value()
	})
	f.k.RunUntil(sim.Time(10 * time.Second))
	return f.cl.FlushWrites(), f.meter.Count("dynamodb.write"), stored
}

// TestCrossRegionFlushExactlyOnceAcrossPartition is the flush regression
// test: a write landing on a replica whose backing store sits across a
// severed trunk must not be dropped and must not be double-billed — after
// the heal it flushes exactly once, with byte-for-byte the same store
// write units as an unpartitioned run of the same workload.
func TestCrossRegionFlushExactlyOnceAcrossPartition(t *testing.T) {
	ctlFlushes, ctlUnits, ctlStored := wanFlushScenario(t, false)
	if ctlFlushes == 0 || ctlStored != 7 {
		t.Fatalf("control run broken: %d flushes, stored %d", ctlFlushes, ctlStored)
	}
	flushes, units, stored := wanFlushScenario(t, true)
	if stored != 7 {
		t.Errorf("stored value after heal = %d, want 7 (write dropped?)", stored)
	}
	if flushes != ctlFlushes {
		t.Errorf("FlushWrites = %d across partition+heal, control did %d", flushes, ctlFlushes)
	}
	if units != ctlUnits {
		t.Errorf("dynamodb.write units = %d across partition+heal, control billed %d (double-billed?)",
			units, ctlUnits)
	}
}

// TestDetachDrainRetriesAcrossPartition: reclaiming a VM in a severed
// region must not lose its unflushed deltas — the drain parks on the
// reachability gate and retries until the trunk heals.
func TestDetachDrainRetriesAcrossPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlushInterval = 100 * time.Millisecond
	cfg.GossipInterval = time.Hour
	f, replicas := newWANFixture(t, cfg, 4, 2)
	remote := replicas[1]
	reader := f.net.NewNode("reader", 1, netsim.Mbps(538))

	var stored int64
	f.k.Spawn("driver", func(p *sim.Proc) {
		f.net.PartitionRegions(0, 1)
		remote.AddCounter(p, "hits", 3)
		remote.Detach()
		p.Sleep(time.Second)
		if n := f.cl.FlushWrites(); n != 0 {
			t.Errorf("detach drained %d writes across a partition", n)
		}
		f.net.HealRegions(0, 1)
		p.Sleep(2 * time.Second)
		it, err := f.store.Get(p, reader, "cache/hits", true)
		if err != nil {
			t.Errorf("drained entry missing after heal: %v", err)
			return
		}
		e, err := decodeEntry(it.Value)
		if err != nil {
			t.Errorf("drained entry undecodable: %v", err)
			return
		}
		stored = e.pn.Value()
	})
	f.k.RunUntil(sim.Time(6 * time.Second))
	if n := f.cl.FlushWrites(); n != 1 {
		t.Fatalf("FlushWrites = %d after heal, want the single drained delta", n)
	}
	if stored != 3 {
		t.Errorf("store value after drain = %d, want 3", stored)
	}
}
