// Package statecache implements the paper's §4 fix for its "two steps
// back" data-shipping critique: fluid, function-colocated state. Every
// stateful FaaS pattern in §3 round-trips through slow shared storage
// (Table 1: 11 ms to DynamoDB vs sub-microsecond local memory); §4 argues
// the platform should instead keep state next to the functions with
// lattice semantics so that replication never needs coordination.
//
// A Cluster manages one cache replica per hosting VM. Reads and writes hit
// the local replica at memory latency; writes mutate CRDT lattices (the
// internal/crdt G/PN-Counter, LWW-Register and OR-Set) and are marked
// dirty. Replicas converge through periodic gossip anti-entropy — a digest
// exchange first, so steady-state bandwidth is proportional to the key
// count rather than the state size (the invertible-Bloom-filter
// reconciliation idea from Eppstein & Goodrich, simplified to per-key
// hashes), then a delta merge for only the keys that differ; a
// Config.Reconcile option replaces the O(keys) digest with a true
// constant-size IBF summary so a round costs O(symmetric difference)
// bytes (see recon.go). A
// write-behind flush persists dirty entries into the sharded kvstore as
// read-merge-write upserts. All gossip and flush traffic is metered on the
// netsim fabric through the replicas' VM NICs, and resident cache memory
// bills per GB-second (pricing.Catalog.CacheGBSecond).
package statecache

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/crdt"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/recon"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// Config holds cache parameters.
type Config struct {
	// OpLatency is the local read/write service time: a hash-map access
	// plus lattice bookkeeping in the function's own address space.
	OpLatency simrand.Dist

	// GossipInterval is how often each replica runs one anti-entropy
	// round with one random peer.
	GossipInterval time.Duration

	// FlushInterval is how often each replica write-behind-flushes its
	// dirty entries to the backing kvstore.
	FlushInterval time.Duration

	// DigestBytesPerKey sizes the per-entry digest record (key hash,
	// state hash, write stamp) exchanged before any state moves.
	DigestBytesPerKey int

	// MessageOverheadBytes is the fixed framing cost per gossip message.
	MessageOverheadBytes int

	// FlushRetries bounds the read-merge-write loop a flush runs when
	// ConditionalPut keeps losing to concurrent flushers.
	FlushRetries int

	// SketchStaleness records staleness into a fixed-memory stats.Sketch
	// instead of the exact recorder — million-user clusters gossip enough
	// merges that full sample retention dominates memory.
	SketchStaleness bool

	// Reconcile switches gossip from the per-key digest exchange to
	// invertible-Bloom-filter set reconciliation: a round ships a fixed
	// ReconCells-cell summary and peels out exactly the disagreeing keys,
	// so steady-state bytes are O(symmetric difference) instead of
	// O(keys). Decode failures escalate to 2× and 4× summaries and then
	// fall back to the digest exchange, so convergence never depends on
	// decode success. Default off: the digest protocol is the reference
	// oracle and keeps historical output byte-identical.
	Reconcile bool

	// ReconCells sizes the IBF summary (CellWireBytes bytes each; the
	// count rounds up to a multiple of the hash count). Decode succeeds
	// w.h.p. while the number of differing (key, state-hash) elements
	// stays below roughly half the cell count.
	ReconCells int
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		OpLatency:            simrand.Uniform{Lo: 300 * time.Nanosecond, Hi: 500 * time.Nanosecond},
		GossipInterval:       200 * time.Millisecond,
		FlushInterval:        time.Second,
		DigestBytesPerKey:    24,
		MessageOverheadBytes: 64,
		FlushRetries:         4,
		ReconCells:           256,
	}
}

// errUnreachable marks a flush attempt made while the backing store sits
// across a severed WAN trunk; the caller re-marks the key dirty and
// retries after the heal.
var errUnreachable = errors.New("statecache: backing store unreachable")

// Kind identifies which lattice an entry holds.
type Kind uint8

// The four lattice kinds a cache entry can hold.
const (
	KindGCounter Kind = iota + 1
	KindPNCounter
	KindRegister
	KindSet
)

func (k Kind) String() string {
	switch k {
	case KindGCounter:
		return "g-counter"
	case KindPNCounter:
		return "pn-counter"
	case KindRegister:
		return "lww-register"
	case KindSet:
		return "or-set"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Cluster owns the cache replicas colocated with a fleet of VMs, the
// gossip schedule that converges them, and the write-behind path into the
// backing store.
type Cluster struct {
	name    string
	net     *netsim.Network
	store   *kvstore.Store
	rng     *simrand.RNG
	cfg     Config
	catalog *pricing.Catalog
	meter   *pricing.Meter

	replicas []*Cache                // attach order; peer picks index this slice
	byNode   map[*netsim.Node]*Cache // at most one replica per VM node
	// partition, when set, blocks gossip between node pairs it reports
	// true for (chaos/test hook; delivery stays blocked both ways only if
	// the hook says so for both orders).
	partition func(from, to *netsim.Node) bool

	staleness stats.Summary

	// GB-second billing accrual, mirroring faas provisioned concurrency:
	// bytes is the resident lattice state across replicas, accrued into
	// the meter on every allocation change and on Accrue.
	bytes int64
	since sim.Time

	nextID        int
	startedRounds int64
	gossipRounds  int64
	abortedRounds int64
	flushWrites   int64

	// Gossip traffic breakdown (see GossipBytes) and the time of the last
	// state-changing merge (see LastMergeChange).
	bytesSummary int64
	bytesPayload int64
	bytesPush    int64
	lastMerge    sim.Time

	// Preload memoizes the shared register template so bulk-loading a
	// million identical entries marshals exactly once.
	preReg   *crdt.LWWRegister
	preBytes int64
	preHash  uint64
}

// New creates a cluster backed by the given store. The cluster is inert
// until replicas are attached; creating one schedules nothing.
func New(name string, net *netsim.Network, store *kvstore.Store, rng *simrand.RNG,
	cfg Config, catalog *pricing.Catalog, meter *pricing.Meter) *Cluster {
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = DefaultConfig().GossipInterval
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultConfig().FlushInterval
	}
	if cfg.FlushRetries <= 0 {
		cfg.FlushRetries = DefaultConfig().FlushRetries
	}
	if cfg.OpLatency == nil {
		cfg.OpLatency = DefaultConfig().OpLatency
	}
	if cfg.ReconCells <= 0 {
		cfg.ReconCells = DefaultConfig().ReconCells
	}
	return &Cluster{
		name:      name,
		net:       net,
		store:     store,
		rng:       rng,
		cfg:       cfg,
		catalog:   catalog,
		meter:     meter,
		byNode:    make(map[*netsim.Node]*Cache),
		staleness: stats.NewSummary(name+"/staleness", cfg.SketchStaleness),
	}
}

// Attach creates a cache replica colocated with the given VM node and
// starts its gossip and flush processes. Attaching a node that already has
// a replica returns the existing one.
func (cl *Cluster) Attach(node *netsim.Node) *Cache {
	if c := cl.byNode[node]; c != nil {
		return c
	}
	cl.nextID++
	c := &Cache{
		cl:      cl,
		node:    node,
		replica: fmt.Sprintf("%s#%d", node.ID(), cl.nextID),
		rng:     cl.rng.Fork(),
		entries: make(map[string]*entry),
		dirty:   make(map[string]bool),
	}
	if cl.cfg.Reconcile {
		c.rc = &reconState{
			live:  recon.New(cl.cfg.ReconCells),
			elems: make(map[uint64]string),
		}
	}
	cl.replicas = append(cl.replicas, c)
	cl.byNode[node] = c
	k := cl.net.Kernel()
	// Stagger the first tick per replica so a fleet attached in one
	// instant does not gossip in lockstep forever.
	k.Spawn("statecache-gossip/"+c.replica, func(p *sim.Proc) {
		p.Sleep(time.Duration(c.rng.Float64() * float64(cl.cfg.GossipInterval)))
		for !c.detached {
			p.Sleep(cl.cfg.GossipInterval)
			if c.detached {
				return
			}
			c.gossipOnce(p)
		}
	})
	k.Spawn("statecache-flush/"+c.replica, func(p *sim.Proc) {
		p.Sleep(time.Duration(c.rng.Float64() * float64(cl.cfg.FlushInterval)))
		for !c.detached {
			p.Sleep(cl.cfg.FlushInterval)
			if c.detached {
				return
			}
			c.flushDirty(p)
		}
	})
	return c
}

// Detach removes the node's replica from the gossip ring, stops billing its
// memory, and — if it holds unflushed deltas — spawns a drain process that
// write-behind-flushes every dirty entry before the state is dropped. The
// FaaS platform calls this when it reclaims an emptied VM, so container
// churn never silently loses absorbed writes.
func (cl *Cluster) Detach(node *netsim.Node) {
	c := cl.byNode[node]
	if c == nil {
		return
	}
	// Settle deferred refreshes while the replica is still billed, so the
	// bytes subtracted below are the bytes that were being charged.
	for _, k := range c.sortedKeys() {
		c.fresh(k, c.entries[k])
	}
	c.detached = true
	delete(cl.byNode, node)
	for i, cand := range cl.replicas {
		if cand == c {
			cl.replicas = append(cl.replicas[:i], cl.replicas[i+1:]...)
			break
		}
	}
	cl.addBytes(-c.bytes)
	if len(c.dirty) > 0 {
		cl.net.Kernel().Spawn("statecache-drain/"+c.replica, func(p *sim.Proc) {
			for {
				c.flushDirty(p)
				if len(c.dirty) == 0 {
					return
				}
				// The backing store is on the far side of a partition (or a
				// mutation re-dirtied a key mid-drain): hold the deltas and
				// retry after a flush interval rather than dropping them.
				p.Sleep(cl.cfg.FlushInterval)
			}
		})
	}
}

// Replica returns the cache attached to node, or nil.
func (cl *Cluster) Replica(node *netsim.Node) *Cache { return cl.byNode[node] }

// Replicas reports how many replicas are attached.
func (cl *Cluster) Replicas() int { return len(cl.replicas) }

// Partition installs a chaos hook: gossip rounds skip peers for which
// fn(from, to) reports true. Passing nil heals the network.
func (cl *Cluster) Partition(fn func(from, to *netsim.Node) bool) { cl.partition = fn }

// Staleness returns the summary of anti-entropy propagation delays: one
// sample per gossip merge that changed a replica's state, measuring the
// time from the originating write to its visibility on the merging
// replica. Its percentiles are the cache's staleness window (exact by
// default; bounded-error when Config.SketchStaleness is set).
func (cl *Cluster) Staleness() stats.Summary { return cl.staleness }

// CachedBytes reports the resident lattice state across all replicas.
func (cl *Cluster) CachedBytes() int64 { return cl.bytes }

// GossipRounds reports how many anti-entropy rounds ran to completion
// (every leg delivered and merged). Rounds cut short by a peer detaching
// mid-flight are counted by AbortedRounds instead.
func (cl *Cluster) GossipRounds() int64 { return cl.gossipRounds }

// AbortedRounds reports how many gossip rounds were cut short at any leg —
// a participant detaching while a message was in flight, or a WAN
// partition severing the leg's trunk.
func (cl *Cluster) AbortedRounds() int64 { return cl.abortedRounds }

// StartedRounds reports how many gossip rounds found a live, reachable
// peer and began exchanging messages. Every started round is accounted
// for: at quiescence StartedRounds() == GossipRounds() + AbortedRounds().
func (cl *Cluster) StartedRounds() int64 { return cl.startedRounds }

// GossipTraffic is a cluster's cumulative gossip byte breakdown. Summary
// covers the reconciliation control legs — per-key digests under the
// default protocol, IBF summaries plus escalation nacks/retries under
// Config.Reconcile. Payload covers pull responses (peer state for the
// diff, plus unresolved element digests on the IBF path) and Push the
// final push legs.
type GossipTraffic struct {
	Summary int64
	Payload int64
	Push    int64
}

// Total returns the all-legs byte sum.
func (g GossipTraffic) Total() int64 { return g.Summary + g.Payload + g.Push }

// GossipBytes reports the cumulative gossip traffic by message leg,
// including the legs of rounds that were later aborted.
func (cl *Cluster) GossipBytes() GossipTraffic {
	return GossipTraffic{Summary: cl.bytesSummary, Payload: cl.bytesPayload, Push: cl.bytesPush}
}

// LastMergeChange reports the virtual time of the last gossip merge that
// changed any replica's state. Once writes stop, the cluster is converged
// when this stops advancing.
func (cl *Cluster) LastMergeChange() sim.Time { return cl.lastMerge }

// FlushWrites reports how many kvstore writes the write-behind path made.
func (cl *Cluster) FlushWrites() int64 { return cl.flushWrites }

// Accrue settles cache-memory charges up to now: every replica's deferred
// footprint refreshes are settled (with their catch-up charges), then the
// resident total is accrued. Experiments call it once before reading the
// meter so charges cover the full run.
func (cl *Cluster) Accrue(now sim.Time) {
	for _, c := range cl.replicas {
		for _, k := range c.sortedKeys() {
			c.fresh(k, c.entries[k])
		}
	}
	cl.accrue(now)
}

// accrue charges the currently recorded resident bytes over the span since
// the last settlement (allocation changes call it before moving bytes).
func (cl *Cluster) accrue(now sim.Time) {
	if cl.bytes > 0 && now > cl.since {
		gb := float64(cl.bytes) / 1e9
		secs := time.Duration(now - cl.since).Seconds()
		cl.meter.ChargeCost("statecache.gbsec", pricing.USD(gb*secs)*cl.catalog.CacheGBSecond)
	}
	cl.since = now
}

func (cl *Cluster) addBytes(delta int64) {
	if delta == 0 {
		return
	}
	cl.accrue(cl.net.Kernel().Now())
	cl.bytes += delta
}

// Cache is one replica, colocated with (and doing all of its network I/O
// through) a single hosting VM's node.
type Cache struct {
	cl      *Cluster
	node    *netsim.Node
	replica string
	rng     *simrand.RNG
	entries map[string]*entry
	// keys mirrors entries' key set in sorted order, maintained
	// incrementally on insert (entries are never individually removed), so
	// per-gossip-round key iteration neither allocates nor re-sorts.
	// keyBytes is the running sum of key lengths, which makes digest
	// sizing O(1).
	keys     []string
	keyBytes int64
	dirty    map[string]bool
	bytes    int64 // this replica's resident state
	ops      int64
	detached bool

	// Reusable scratch. diffScratch backs diffKeys' result and candScratch
	// pickPeer's candidate list; both are only used by this replica's own
	// gossip round, which is a single sequential process. flushScratch
	// backs flushDirty's key list — a separate buffer because the flush
	// process interleaves with gossip rounds at park points.
	diffScratch  []string
	candScratch  []*Cache
	flushScratch []string

	// rc is the IBF reconciliation state (nil unless Config.Reconcile).
	rc *reconState
}

// addKey records a newly created entry's key in the sorted key slice.
// Keys arriving in ascending order (bulk preloads, merge walks over a
// peer's sorted diff into an empty replica) append in O(1) instead of
// paying the binary search and shift.
func (c *Cache) addKey(key string) {
	if n := len(c.keys); n == 0 || c.keys[n-1] < key {
		c.keys = append(c.keys, key)
		c.keyBytes += int64(len(key))
		return
	}
	i := sort.SearchStrings(c.keys, key)
	c.keys = append(c.keys, "")
	copy(c.keys[i+1:], c.keys[i:])
	c.keys[i] = key
	c.keyBytes += int64(len(key))
}

// Node returns the VM node the replica is colocated with.
func (c *Cache) Node() *netsim.Node { return c.node }

// Cluster returns the cluster the replica belongs to.
func (c *Cache) Cluster() *Cluster { return c.cl }

// Detach removes this replica from its own cluster (see Cluster.Detach).
// Holders of a replica handle must detach through it, not through
// whichever cluster they currently know about: the two can differ after a
// re-attach, and a Detach on the wrong cluster is a silent no-op.
func (c *Cache) Detach() { c.cl.Detach(c.node) }

// ReplicaID returns the replica's unique CRDT actor id.
func (c *Cache) ReplicaID() string { return c.replica }

// Ops reports how many local cache operations this replica served.
func (c *Cache) Ops() int64 { return c.ops }

// Len reports the number of cached entries (no simulated latency).
func (c *Cache) Len() int { return len(c.entries) }

// touch charges one local-memory operation.
func (c *Cache) touch(p *sim.Proc) {
	if c.detached {
		panic("statecache: operation on a detached replica")
	}
	c.ops++
	p.Sleep(c.cl.cfg.OpLatency.Sample(c.rng))
}

// at returns the entry for key, creating it with the given kind when
// create is set. A kind mismatch against an existing entry panics: one key
// is one lattice, and mixing them cannot merge.
func (c *Cache) at(key string, kind Kind, create bool) *entry {
	e, ok := c.entries[key]
	if ok {
		if e.kind != kind {
			panic(fmt.Sprintf("statecache: key %q holds a %v, not a %v", key, e.kind, kind))
		}
		return e
	}
	if !create {
		return nil
	}
	e = newEntry(kind)
	c.entries[key] = e
	c.addKey(key)
	c.reconInsert(key, e)
	return e
}

// wrote records a local mutation: the entry is marked dirty for the
// write-behind flush and stale for the deferred footprint/hash refresh
// (see entry.stale — no marshal on the memory-speed op path).
func (c *Cache) wrote(p *sim.Proc, key string, e *entry) {
	e.lastWrite = p.Now()
	if !e.stale {
		e.stale = true
		e.staleSince = p.Now()
		if c.rc != nil {
			c.rc.stale = append(c.rc.stale, key)
		}
	}
	c.dirty[key] = true
}

// fresh settles an entry's deferred refresh. Footprint growth is billed
// from staleSince — when it actually appeared — via a catch-up charge, so
// lazy refreshing changes when the meter is touched but not (beyond the
// sub-cent approximation of netting a window's mutations to its start)
// what an interval of resident memory costs. Shrinkage is applied forward
// only; no retroactive refunds.
func (c *Cache) fresh(key string, e *entry) {
	if !e.stale {
		return
	}
	old := e.hash
	delta := e.refresh()
	c.reconRehash(key, old, e.hash)
	c.reweigh(delta)
	if c.detached || delta <= 0 {
		return
	}
	cl := c.cl
	if span := cl.net.Kernel().Now() - e.staleSince; span > 0 {
		gb := float64(delta) / 1e9
		cl.meter.ChargeCost("statecache.gbsec",
			pricing.USD(gb*span.Seconds())*cl.catalog.CacheGBSecond)
	}
}

func (c *Cache) reweigh(delta int64) {
	if delta == 0 {
		return
	}
	c.bytes += delta
	if !c.detached {
		c.cl.addBytes(delta)
	}
}

// IncGCounter adds n (n >= 0) to the named grow-only counter.
func (c *Cache) IncGCounter(p *sim.Proc, key string, n int64) {
	c.touch(p)
	e := c.at(key, KindGCounter, true)
	e.g.Inc(c.replica, n)
	c.wrote(p, key, e)
}

// GCounterValue reads the named grow-only counter.
func (c *Cache) GCounterValue(p *sim.Proc, key string) int64 {
	c.touch(p)
	if e := c.at(key, KindGCounter, false); e != nil {
		return e.g.Value()
	}
	return 0
}

// AddCounter applies a signed delta to the named PN-counter.
func (c *Cache) AddCounter(p *sim.Proc, key string, delta int64) {
	c.touch(p)
	e := c.at(key, KindPNCounter, true)
	e.pn.Add(c.replica, delta)
	c.wrote(p, key, e)
}

// Counter reads the named PN-counter.
func (c *Cache) Counter(p *sim.Proc, key string) int64 {
	c.touch(p)
	if e := c.at(key, KindPNCounter, false); e != nil {
		return e.pn.Value()
	}
	return 0
}

// SetRegister writes the named LWW register, stamped with the current
// virtual time (replica id breaks ties deterministically).
func (c *Cache) SetRegister(p *sim.Proc, key, val string) {
	c.touch(p)
	e := c.at(key, KindRegister, true)
	e.unshare()
	e.reg.Set(c.replica, int64(p.Now()), val)
	c.wrote(p, key, e)
}

// Register reads the named LWW register ("" when absent).
func (c *Cache) Register(p *sim.Proc, key string) string {
	c.touch(p)
	if e := c.at(key, KindRegister, false); e != nil {
		return e.reg.Get()
	}
	return ""
}

// AddSet inserts elem into the named OR-set.
func (c *Cache) AddSet(p *sim.Proc, key, elem string) {
	c.touch(p)
	e := c.at(key, KindSet, true)
	e.set.Add(c.replica, elem)
	c.wrote(p, key, e)
}

// RemoveSet removes elem from the named OR-set (observed-remove:
// concurrent unseen adds survive).
func (c *Cache) RemoveSet(p *sim.Proc, key, elem string) {
	c.touch(p)
	e := c.at(key, KindSet, true)
	e.set.Remove(elem)
	c.wrote(p, key, e)
}

// SetContains reports membership in the named OR-set.
func (c *Cache) SetContains(p *sim.Proc, key, elem string) bool {
	c.touch(p)
	if e := c.at(key, KindSet, false); e != nil {
		return e.set.Contains(elem)
	}
	return false
}

// SetElements returns the named OR-set's live membership, sorted.
func (c *Cache) SetElements(p *sim.Proc, key string) []string {
	c.touch(p)
	if e := c.at(key, KindSet, false); e != nil {
		return e.set.Elements()
	}
	return nil
}

// PeekCounter reads the named PN-counter without simulated latency
// (test/observability hook, like kvstore.Len).
func (c *Cache) PeekCounter(key string) int64 {
	if e := c.entries[key]; e != nil && e.kind == KindPNCounter {
		return e.pn.Value()
	}
	return 0
}

// PeekGCounter reads the named G-counter without simulated latency.
func (c *Cache) PeekGCounter(key string) int64 {
	if e := c.entries[key]; e != nil && e.kind == KindGCounter {
		return e.g.Value()
	}
	return 0
}

// PeekRegister reads the named register without simulated latency.
func (c *Cache) PeekRegister(key string) string {
	if e := c.entries[key]; e != nil && e.kind == KindRegister {
		return e.reg.Get()
	}
	return ""
}

// PeekSet reads the named OR-set's membership without simulated latency.
func (c *Cache) PeekSet(key string) []string {
	if e := c.entries[key]; e != nil && e.kind == KindSet {
		return e.set.Elements()
	}
	return nil
}

// DirtyKeys reports how many entries await the write-behind flush.
func (c *Cache) DirtyKeys() int { return len(c.dirty) }

// Preload installs a pre-converged LWW-register entry without simulated
// latency: the setup path for experiments that start from a warmed,
// already-replicated key space (preload the same key/value on every
// replica). The register carries the reserved "preload" actor at stamp
// zero, so any real write wins; identical values share one memoized
// template register and its marshaled footprint/hash (bulk-loading a
// million keys marshals once and allocates no per-entry lattice — the
// entry unshares on first mutation or merge). Entries are not marked
// dirty: a preload models state already durable. Keys must be new, and
// ascending preload order appends to the sorted index in O(1).
func (c *Cache) Preload(key, val string) {
	if c.detached {
		panic("statecache: Preload on a detached replica")
	}
	if _, ok := c.entries[key]; ok {
		panic(fmt.Sprintf("statecache: Preload of existing key %q", key))
	}
	cl := c.cl
	if cl.preReg == nil || cl.preReg.Val != val {
		reg := &crdt.LWWRegister{Val: val, Replica: "preload"}
		tmp := &entry{kind: KindRegister, reg: reg}
		tmp.refresh()
		cl.preReg, cl.preBytes, cl.preHash = reg, tmp.bytes, tmp.hash
	}
	e := &entry{
		kind:      KindRegister,
		reg:       cl.preReg,
		sharedReg: true,
		bytes:     cl.preBytes,
		hash:      cl.preHash,
	}
	c.entries[key] = e
	c.addKey(key)
	c.reconInsert(key, e)
	c.reweigh(e.bytes)
}

// sortedKeys returns the replica's key set in deterministic order. The
// slice is the incrementally maintained index itself — callers must not
// mutate or retain it across entry creations.
func (c *Cache) sortedKeys() []string { return c.keys }

// flushDirty write-behind-flushes every currently dirty entry, in key
// order. Each key is cleared from the dirty set before its flush starts:
// a mutation that lands mid-flush re-marks the key and is caught by the
// next cycle instead of being silently clobbered.
func (c *Cache) flushDirty(p *sim.Proc) {
	if len(c.dirty) == 0 {
		return
	}
	// Walk the sorted key index and pick the dirty ones: same key order as
	// collecting and sorting the dirty set, without the per-flush sort.
	// The scratch is taken by ownership for the duration of the walk:
	// flushKey parks, and a drain process spawned by Detach can call
	// flushDirty on this replica while the periodic flusher is still
	// parked mid-iteration — the second caller must not rewrite the
	// buffer under the first (it allocates its own instead). The scratch
	// is restored at the normal exits only, NOT via defer: a kernel Close
	// panic-unwinds every parked proc, and the periodic flusher and a
	// drain proc can both be parked inside flushKey — two concurrently
	// unwinding deferred restores would race on the field. Losing the
	// scratch on unwind is free; the cache is being torn down.
	keys := c.flushScratch[:0]
	c.flushScratch = nil
	for _, k := range c.keys {
		if c.dirty[k] {
			keys = append(keys, k)
		}
	}
	for _, key := range keys {
		delete(c.dirty, key)
		if err := c.flushKey(p, key); err != nil {
			if errors.Is(err, errUnreachable) || service.Overloaded(err) {
				// The store sits across a severed WAN trunk, or its shard
				// is shedding load. Re-mark the key and stop the cycle:
				// the deltas stay resident (and billed) until a later
				// cycle finds the trunk healed or the shard drained, so an
				// outage can delay a write-behind flush but never lose or
				// double-apply it — and a flusher that backed off is one
				// less client hammering an overloaded store.
				c.dirty[key] = true
				break
			}
			panic("statecache: flush: " + err.Error())
		}
	}
	c.flushScratch = keys
}

// Value is a decoded stored entry: the read surface for consumers pulling
// flushed lattice state straight from the backing store (an experiment
// verifying durability, a cold replica warming from the store).
type Value struct{ e *entry }

// DecodeValue parses a kvstore item the write-behind flush persisted.
func DecodeValue(data []byte) (Value, error) {
	e, err := decodeEntry(data)
	if err != nil {
		return Value{}, err
	}
	return Value{e: e}, nil
}

// Kind reports which lattice the value holds.
func (v Value) Kind() Kind { return v.e.kind }

// Counter returns the PN-counter total (0 for other kinds).
func (v Value) Counter() int64 {
	if v.e.kind == KindPNCounter {
		return v.e.pn.Value()
	}
	return 0
}

// GCounter returns the G-counter total (0 for other kinds).
func (v Value) GCounter() int64 {
	if v.e.kind == KindGCounter {
		return v.e.g.Value()
	}
	return 0
}

// Register returns the register value ("" for other kinds).
func (v Value) Register() string {
	if v.e.kind == KindRegister {
		return v.e.reg.Get()
	}
	return ""
}

// SetElements returns the OR-set membership (nil for other kinds).
func (v Value) SetElements() []string {
	if v.e.kind == KindSet {
		return v.e.set.Elements()
	}
	return nil
}

// flushKey persists one entry as a read-merge-write upsert: fetch the
// stored lattice, join it into the local state (the store is just another
// replica), and conditionally write the join back. Losing the conditional
// write means another replica flushed concurrently; the retry re-reads and
// re-joins, so no side's deltas are lost.
func (c *Cache) flushKey(p *sim.Proc, key string) error {
	e := c.entries[key]
	if e == nil {
		return nil
	}
	if !c.cl.net.Reachable(c.node, c.cl.store.Node()) {
		return errUnreachable
	}
	c.fresh(key, e)
	storeKey := c.cl.name + "/" + key
	for attempt := 0; attempt < c.cl.cfg.FlushRetries; attempt++ {
		var version int64
		it, err := c.cl.store.Get(p, c.node, storeKey, true)
		switch {
		case err == nil:
			stored, derr := decodeEntry(it.Value)
			if derr != nil {
				return fmt.Errorf("stored %q: %w", storeKey, derr)
			}
			// Equal digests mean the stored state is byte-identical to the
			// local join — merging it back in would be an identity, so the
			// re-marshal is skipped (the write stamp still converges).
			if stored.hash != e.hash || stored.kind != e.kind {
				before := e.hash
				c.reweigh(e.merge(stored))
				c.reconRehash(key, before, e.hash)
			} else if stored.lastWrite > e.lastWrite {
				e.lastWrite = stored.lastWrite
			}
			version = it.Version
		case errors.Is(err, kvstore.ErrNotFound):
			version = 0
		default:
			return err
		}
		_, err = c.cl.store.ConditionalPut(p, c.node, storeKey, e.encode(), version)
		if err == nil {
			c.cl.flushWrites++
			return nil
		}
		if !errors.Is(err, kvstore.ErrConditionFailed) {
			return err
		}
	}
	return fmt.Errorf("lost %d conditional writes on %q", c.cl.cfg.FlushRetries, storeKey)
}
