// Package workflow implements §2's third design pattern: function
// composition — multi-step applications built as event-driven chains of
// FaaS functions stitched together with queues and object-store state,
// modeled on the Autodesk account-creation case study the paper cites
// (average end-to-end sign-up time: ten minutes).
//
// Each step is a registered function fed by its own queue through an
// event-source mapping; steps persist state to the object store because
// function instances cannot hold it. The per-step overhead (queue hops,
// invocation overhead, storage round trips) is the quantity experiment E8
// measures.
package workflow

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/faas"
	"repro/internal/netsim"
	"repro/internal/objectstore"
	"repro/internal/queue"
	"repro/internal/sim"
)

// ErrNotDeployed is returned by Submit before Deploy.
var ErrNotDeployed = errors.New("workflow: pipeline not deployed")

// Step is one stage of a pipeline.
type Step struct {
	// Name labels the step's function and queue.
	Name string
	// MemoryMB sizes the step's function (default 256).
	MemoryMB int
	// Work transforms the step's input. Nil passes data through.
	Work func(ctx *faas.Ctx, data []byte) ([]byte, error)
	// ReadsState makes the step fetch the previous step's persisted
	// state from the object store before Work.
	ReadsState bool
	// WritesState makes the step persist its output after Work.
	WritesState bool
}

// envelope carries one item through the pipeline.
type envelope struct {
	ID        int64  `json:"id"`
	Submitted int64  `json:"submitted"` // virtual nanos
	Data      []byte `json:"data"`
}

// Result is the outcome of one pipeline execution.
type Result struct {
	Output  []byte
	Latency time.Duration
}

// Pipeline is a deployed chain of steps.
type Pipeline struct {
	name  string
	pf    *faas.Platform
	qsvc  *queue.Service
	store *objectstore.Store
	steps []Step

	queues   []*queue.Queue
	doneQ    *queue.Queue
	mappings []*faas.EventSourceMapping
	pending  map[int64]*sim.Promise[Result]
	nextID   int64
	deployed bool
}

// New assembles (but does not deploy) a pipeline.
func New(name string, pf *faas.Platform, qsvc *queue.Service,
	store *objectstore.Store, steps []Step) *Pipeline {
	if len(steps) == 0 {
		panic("workflow: pipeline needs at least one step")
	}
	return &Pipeline{
		name:    name,
		pf:      pf,
		qsvc:    qsvc,
		store:   store,
		steps:   steps,
		pending: make(map[int64]*sim.Promise[Result]),
	}
}

// Steps reports the number of stages.
func (pl *Pipeline) Steps() int { return len(pl.steps) }

func (pl *Pipeline) queueName(i int) string {
	return fmt.Sprintf("%s-q%02d-%s", pl.name, i, pl.steps[i].Name)
}

func (pl *Pipeline) stateKey(id int64, step int) string {
	return fmt.Sprintf("wf/%s/%d/step-%02d", pl.name, id, step)
}

// Deploy registers every step's function, creates the queues, and starts
// the event-source mappings. The collector process that resolves Submit
// promises runs on k until the pipeline is stopped.
func (pl *Pipeline) Deploy(k *sim.Kernel) error {
	if pl.deployed {
		return nil
	}
	for i := range pl.steps {
		pl.queues = append(pl.queues, pl.qsvc.CreateQueue(pl.queueName(i), 2*time.Minute))
	}
	pl.doneQ = pl.qsvc.CreateQueue(pl.name+"-done", 2*time.Minute)

	for i := range pl.steps {
		i := i
		step := pl.steps[i]
		mem := step.MemoryMB
		if mem == 0 {
			mem = 256
		}
		fnName := fmt.Sprintf("%s-%s", pl.name, step.Name)
		err := pl.pf.Register(faas.Function{
			Name:     fnName,
			MemoryMB: mem,
			Timeout:  time.Minute,
			Handler: func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
				return nil, pl.runStep(ctx, i, payload)
			},
		})
		if err != nil {
			return fmt.Errorf("workflow: register %s: %w", fnName, err)
		}
		pl.mappings = append(pl.mappings, pl.pf.MapQueue(pl.queues[i], fnName, 10))
	}

	k.Spawn(pl.name+"/collector", pl.collect)
	pl.deployed = true
	return nil
}

// runStep executes step i's logic for every record in an SQS event.
func (pl *Pipeline) runStep(ctx *faas.Ctx, i int, payload []byte) error {
	ev, err := faas.DecodeSQSEvent(payload)
	if err != nil {
		return err
	}
	step := pl.steps[i]
	for _, rec := range ev.Records {
		var env envelope
		if err := json.Unmarshal([]byte(rec.Body), &env); err != nil {
			return fmt.Errorf("workflow: step %d envelope: %w", i, err)
		}
		// Functions are stateless: prior state must come from storage.
		if step.ReadsState && i > 0 {
			if _, err := pl.store.Get(ctx.Proc(), ctx.Node(), pl.stateKey(env.ID, i-1)); err != nil {
				return fmt.Errorf("workflow: step %d state read: %w", i, err)
			}
		}
		if step.Work != nil {
			out, err := step.Work(ctx, env.Data)
			if err != nil {
				return fmt.Errorf("workflow: step %s: %w", step.Name, err)
			}
			env.Data = out
		}
		if step.WritesState {
			pl.store.Put(ctx.Proc(), ctx.Node(), pl.stateKey(env.ID, i), env.Data)
		}
		next := pl.doneQ
		if i+1 < len(pl.steps) {
			next = pl.queues[i+1]
		}
		body, _ := json.Marshal(env)
		if _, err := next.Send(ctx.Proc(), ctx.Node(), body); err != nil {
			return err
		}
	}
	return nil
}

// collect resolves Submit promises as finished envelopes arrive.
func (pl *Pipeline) collect(p *sim.Proc) {
	caller := pl.store.Node() // collector runs near the services
	for {
		msgs, err := pl.doneQ.Receive(p, caller, 10, time.Second)
		if err != nil {
			return
		}
		for _, m := range msgs {
			var env envelope
			if json.Unmarshal(m.Body, &env) != nil {
				continue
			}
			pl.doneQ.Delete(p, caller, m.Receipt)
			if pr, ok := pl.pending[env.ID]; ok {
				delete(pl.pending, env.ID)
				pr.Resolve(Result{
					Output:  env.Data,
					Latency: time.Duration(p.Now() - sim.Time(env.Submitted)),
				})
			}
		}
	}
}

// Submit enqueues one item and returns a promise for its completion.
func (pl *Pipeline) Submit(p *sim.Proc, caller *netsim.Node, data []byte) (*sim.Promise[Result], error) {
	if !pl.deployed {
		return nil, ErrNotDeployed
	}
	pl.nextID++
	env := envelope{ID: pl.nextID, Submitted: int64(p.Now()), Data: data}
	body, _ := json.Marshal(env)
	pr := &sim.Promise[Result]{}
	pl.pending[env.ID] = pr
	if _, err := pl.queues[0].Send(p, caller, body); err != nil {
		delete(pl.pending, env.ID)
		return nil, err
	}
	return pr, nil
}

// Stop halts the event-source mappings (the collector parks idle).
func (pl *Pipeline) Stop() {
	for _, m := range pl.mappings {
		m.Stop()
	}
}
