package workflow

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/netsim"
	"repro/internal/objectstore"
	"repro/internal/pricing"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k      *sim.Kernel
	pf     *faas.Platform
	qsvc   *queue.Service
	store  *objectstore.Store
	caller *netsim.Node
	meter  *pricing.Meter
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(77)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	meter := &pricing.Meter{}
	cat := pricing.Fall2018()
	return &fixture{
		k:      k,
		pf:     faas.New("lambda", net, rng.Fork(), faas.DefaultConfig(), cat, meter),
		qsvc:   queue.NewService("sqs", net, 9, rng.Fork(), queue.DefaultConfig(), cat, meter),
		store:  objectstore.New("s3", net, 9, rng.Fork(), objectstore.DefaultConfig(), cat, meter),
		caller: net.NewNode("client", 0, netsim.Gbps(10)),
		meter:  meter,
	}
}

func upperStep(name string) Step {
	return Step{
		Name: name,
		Work: func(ctx *faas.Ctx, data []byte) ([]byte, error) {
			return []byte(strings.ToUpper(string(data))), nil
		},
	}
}

func TestSingleStepPipeline(t *testing.T) {
	f := newFixture(t)
	pl := New("single", f.pf, f.qsvc, f.store, []Step{upperStep("shout")})
	if err := pl.Deploy(f.k); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	var res Result
	f.k.Spawn("client", func(p *sim.Proc) {
		pr, err := pl.Submit(p, f.caller, []byte("hello"))
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		res = pr.Get(p)
		pl.Stop()
	})
	f.k.RunUntil(sim.Time(2 * time.Minute))
	if string(res.Output) != "HELLO" {
		t.Errorf("output = %q", res.Output)
	}
	if res.Latency <= 0 {
		t.Error("latency not recorded")
	}
}

func TestMultiStepStatefulPipeline(t *testing.T) {
	f := newFixture(t)
	steps := []Step{
		{Name: "validate", WritesState: true, Work: func(ctx *faas.Ctx, d []byte) ([]byte, error) {
			return append(d, []byte("|validated")...), nil
		}},
		{Name: "enrich", ReadsState: true, WritesState: true, Work: func(ctx *faas.Ctx, d []byte) ([]byte, error) {
			return append(d, []byte("|enriched")...), nil
		}},
		{Name: "finalize", ReadsState: true, Work: func(ctx *faas.Ctx, d []byte) ([]byte, error) {
			return append(d, []byte("|done")...), nil
		}},
	}
	pl := New("signup", f.pf, f.qsvc, f.store, steps)
	if err := pl.Deploy(f.k); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	var res Result
	f.k.Spawn("client", func(p *sim.Proc) {
		pr, _ := pl.Submit(p, f.caller, []byte("user42"))
		res = pr.Get(p)
		pl.Stop()
	})
	f.k.RunUntil(sim.Time(5 * time.Minute))
	want := "user42|validated|enriched|done"
	if string(res.Output) != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
	// Per-step overhead: 3 steps x (queue hop + ESM + invoke + state I/O)
	// cannot be faster than ~1.5s; the whole point of E8.
	if res.Latency < 1500*time.Millisecond {
		t.Errorf("3-step latency = %v, implausibly fast", res.Latency)
	}
	if f.meter.Count("s3.put") < 2 || f.meter.Count("s3.get") < 2 {
		t.Error("stateful steps did not touch the object store")
	}
}

func TestPipelineProcessesManyItems(t *testing.T) {
	f := newFixture(t)
	pl := New("bulk", f.pf, f.qsvc, f.store, []Step{upperStep("a"), upperStep("b")})
	if err := pl.Deploy(f.k); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	const items = 15
	got := 0
	f.k.Spawn("client", func(p *sim.Proc) {
		var prs []*sim.Promise[Result]
		for i := 0; i < items; i++ {
			pr, _ := pl.Submit(p, f.caller, []byte{byte('a' + i)})
			prs = append(prs, pr)
		}
		for _, pr := range prs {
			pr.Get(p)
			got++
		}
		pl.Stop()
	})
	f.k.RunUntil(sim.Time(10 * time.Minute))
	if got != items {
		t.Errorf("completed %d/%d items", got, items)
	}
}

func TestSubmitBeforeDeployFails(t *testing.T) {
	f := newFixture(t)
	pl := New("nope", f.pf, f.qsvc, f.store, []Step{upperStep("x")})
	var err error
	f.k.Spawn("client", func(p *sim.Proc) {
		_, err = pl.Submit(p, f.caller, []byte("x"))
	})
	f.k.Run()
	if err != ErrNotDeployed {
		t.Errorf("err = %v, want ErrNotDeployed", err)
	}
}

func TestDeployIdempotent(t *testing.T) {
	f := newFixture(t)
	pl := New("idem", f.pf, f.qsvc, f.store, []Step{upperStep("x")})
	if err := pl.Deploy(f.k); err != nil {
		t.Fatalf("first deploy: %v", err)
	}
	if err := pl.Deploy(f.k); err != nil {
		t.Fatalf("second deploy: %v", err)
	}
	pl.Stop()
	f.k.RunUntil(sim.Time(5 * time.Second))
}

func TestEmptyPipelinePanics(t *testing.T) {
	f := newFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("empty step list did not panic")
		}
	}()
	New("empty", f.pf, f.qsvc, f.store, nil)
}
