// Package reviews generates the synthetic stand-in for the Amazon product
// review corpus the paper trains on (public data we do not ship: 90 GB of
// reviews, featurized with a 6,787-word bag-of-words vocabulary, labeled
// with customer ratings).
//
// The generator is deterministic and produces reviews whose rating is a
// learnable function of their word content (sentiment words shift the
// rating), so the reproduction's MLP has real signal to fit — the
// substitution preserves the workload's character: wide sparse-ish feature
// vectors, a regression target, and a corpus measured in bytes.
package reviews

import (
	"fmt"
	"math"

	"repro/internal/simrand"
)

// Paper-scale constants from §3.1.
const (
	PaperFeatures     = 6787
	PaperCorpusBytes  = int64(90e9)
	PaperBatchBytes   = int64(100e6)
	PaperBatchPerPass = int(PaperCorpusBytes / PaperBatchBytes) // 900 batches/epoch
)

// Review is one featurized example.
type Review struct {
	Features []float64 // bag-of-words counts, normalized by review length
	Rating   float64   // 1..5 target
}

// Generator deterministically synthesizes featurized reviews.
type Generator struct {
	rng       *simrand.RNG
	vocab     int
	nPositive int // vocab ids [0, nPositive) carry +sentiment
	nNegative int // vocab ids [nPositive, nPositive+nNegative) carry -sentiment
	wordsPer  int // words per review
}

// NewGenerator creates a generator over a vocabulary of the given size.
// Tests use small vocabularies; the simulation's timing uses PaperFeatures.
func NewGenerator(seed uint64, vocabSize int) *Generator {
	if vocabSize < 10 {
		panic("reviews: vocabulary too small")
	}
	return &Generator{
		rng:       simrand.New(seed),
		vocab:     vocabSize,
		nPositive: vocabSize / 10,
		nNegative: vocabSize / 10,
		wordsPer:  40,
	}
}

// VocabSize returns the feature-vector width.
func (g *Generator) VocabSize() int { return g.vocab }

// Next synthesizes one review. Word frequencies follow a Zipf-like decay;
// the rating is 3 plus the sentiment balance, clamped to [1, 5], with mild
// noise.
func (g *Generator) Next() Review {
	features := make([]float64, g.vocab)
	sentiment := 0.0
	// Bias this review toward positive or negative vocabulary.
	lean := g.rng.NormFloat64()
	for w := 0; w < g.wordsPer; w++ {
		var id int
		r := g.rng.Float64()
		switch {
		case r < 0.15+0.1*math.Tanh(lean): // positive word
			id = g.rng.Intn(g.nPositive)
			sentiment++
		case r < 0.30: // negative word
			id = g.nPositive + g.rng.Intn(g.nNegative)
			sentiment--
		default: // neutral word, Zipf-ish: low ids more frequent
			id = g.nPositive + g.nNegative +
				int(float64(g.vocab-g.nPositive-g.nNegative)*math.Pow(g.rng.Float64(), 2))
			if id >= g.vocab {
				id = g.vocab - 1
			}
		}
		features[id]++
	}
	for i := range features {
		features[i] /= float64(g.wordsPer)
	}
	rating := 3 + sentiment/6 + 0.1*g.rng.NormFloat64()
	if rating < 1 {
		rating = 1
	}
	if rating > 5 {
		rating = 5
	}
	return Review{Features: features, Rating: rating}
}

// Batch synthesizes n reviews as training matrices.
func (g *Generator) Batch(n int) (X, Y [][]float64) {
	X = make([][]float64, n)
	Y = make([][]float64, n)
	for i := 0; i < n; i++ {
		r := g.Next()
		X[i] = r.Features
		Y[i] = []float64{r.Rating}
	}
	return X, Y
}

// BatchKey names the corpus batch with the given index, as staged in the
// object store ("reviews/batch-0042").
func BatchKey(i int) string { return fmt.Sprintf("reviews/batch-%04d", i) }
