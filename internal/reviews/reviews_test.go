package reviews

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mlp"
)

func TestPaperConstants(t *testing.T) {
	if PaperBatchPerPass != 900 {
		t.Errorf("batches per pass = %d, want 900 (90GB / 100MB)", PaperBatchPerPass)
	}
	if PaperFeatures != 6787 {
		t.Errorf("features = %d", PaperFeatures)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(5, 100)
	b := NewGenerator(5, 100)
	for i := 0; i < 50; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.Rating != rb.Rating {
			t.Fatalf("ratings diverged at %d", i)
		}
		for j := range ra.Features {
			if ra.Features[j] != rb.Features[j] {
				t.Fatalf("features diverged at review %d feature %d", i, j)
			}
		}
	}
}

func TestReviewShape(t *testing.T) {
	g := NewGenerator(1, 200)
	r := g.Next()
	if len(r.Features) != 200 {
		t.Fatalf("feature width = %d", len(r.Features))
	}
	if r.Rating < 1 || r.Rating > 5 {
		t.Errorf("rating = %v, want [1,5]", r.Rating)
	}
	var sum float64
	for _, f := range r.Features {
		if f < 0 {
			t.Fatal("negative feature")
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("features sum to %v, want 1 (normalized counts)", sum)
	}
}

func TestBatchShapes(t *testing.T) {
	g := NewGenerator(2, 50)
	X, Y := g.Batch(16)
	if len(X) != 16 || len(Y) != 16 {
		t.Fatalf("batch sizes %d/%d", len(X), len(Y))
	}
	if len(X[0]) != 50 || len(Y[0]) != 1 {
		t.Fatalf("example shapes %d/%d", len(X[0]), len(Y[0]))
	}
}

func TestRatingsVary(t *testing.T) {
	g := NewGenerator(3, 100)
	seen := map[bool]int{}
	for i := 0; i < 200; i++ {
		r := g.Next()
		seen[r.Rating > 3]++
	}
	if seen[true] < 20 || seen[false] < 20 {
		t.Errorf("ratings degenerate: %v", seen)
	}
}

func TestBatchKey(t *testing.T) {
	if got := BatchKey(42); got != "reviews/batch-0042" {
		t.Errorf("BatchKey = %q", got)
	}
}

func TestTinyVocabularyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("vocab < 10 did not panic")
		}
	}()
	NewGenerator(1, 5)
}

// End-to-end fidelity: the paper's model shape (scaled down) must be able
// to learn ratings from this synthetic corpus — i.e. the data carries
// signal, not noise.
func TestMLPLearnsRatingsFromSyntheticReviews(t *testing.T) {
	const vocab = 120
	g := NewGenerator(11, vocab)
	net := mlp.New(mlp.Config{Input: vocab, Hidden: []int{10, 10}, Output: 1, Seed: 4})
	opt := mlp.NewAdam()
	holdX, holdY := g.Batch(200)
	before := net.Loss(holdX, holdY)
	for i := 0; i < 150; i++ {
		X, Y := g.Batch(64)
		net.TrainBatch(opt, X, Y)
	}
	after := net.Loss(holdX, holdY)
	if after > before*0.6 {
		t.Errorf("holdout loss %v -> %v; synthetic reviews carry no learnable signal", before, after)
	}
}

// Property: every generated review is well-formed for any seed.
func TestQuickReviewsWellFormed(t *testing.T) {
	prop := func(seed uint64) bool {
		g := NewGenerator(seed, 60)
		for i := 0; i < 10; i++ {
			r := g.Next()
			if r.Rating < 1 || r.Rating > 5 || len(r.Features) != 60 {
				return false
			}
			for _, f := range r.Features {
				if f < 0 || math.IsNaN(f) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
