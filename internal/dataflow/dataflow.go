// Package dataflow implements §4's "Flexible Programming, Common IR" and
// "Fluid Code and Data Placement" proposals as a small data-centric DSL: a
// job is a pipeline of relational-ish operators (scan → map/filter →
// reduce) over partitioned data sets, compiled to a physical plan whose
// placement decisions — ship code to data, or ship data to code — are made
// by a cost model rather than hard-wired, exactly the optimization the
// paper says FaaS forecloses ("FaaS routinely ships data to code rather
// than shipping code to data").
//
// Execution runs on the future-platform's addressable agents. The planner
// is deliberately simple (one decision per stage, linear cost model), but
// it is a *real* planner: experiments can force either placement and
// measure the cost model's prediction against simulated execution.
package dataflow

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/future"
	"repro/internal/sim"
)

// Placement is where a stage's operator code runs.
type Placement int

// Placement choices.
const (
	// ShipCodeToData runs the operator on an agent co-located with the
	// partition, moving only the (usually small) operator output.
	ShipCodeToData Placement = iota
	// ShipDataToCode streams the partition to a remote agent — the
	// FaaS-style default the paper criticizes.
	ShipDataToCode
)

// String names the placement.
func (p Placement) String() string {
	if p == ShipCodeToData {
		return "code->data"
	}
	return "data->code"
}

// Op is one logical operator over a stream of records.
type Op struct {
	// Name labels the operator in plans.
	Name string
	// Selectivity is output bytes per input byte (1 = pass-through,
	// 0.01 = aggressive filter/aggregation, >1 = expansion).
	Selectivity float64
	// CostMBps is how fast one core crunches this operator's input.
	CostMBps float64
}

// Validate checks operator parameters.
func (o Op) Validate() error {
	if o.Name == "" {
		return errors.New("dataflow: operator needs a name")
	}
	if o.Selectivity < 0 {
		return fmt.Errorf("dataflow: %s: negative selectivity", o.Name)
	}
	if o.CostMBps <= 0 {
		return fmt.Errorf("dataflow: %s: non-positive cost rate", o.Name)
	}
	return nil
}

// Job is a logical pipeline over one partitioned input.
type Job struct {
	// Input is the partitioned data set to scan.
	Input *future.DataSet
	// Partitions lists the extent keys to process.
	Partitions []string
	// Ops is the operator pipeline applied to every partition.
	Ops []Op
}

// Validate checks the job.
func (j *Job) Validate() error {
	if j.Input == nil {
		return errors.New("dataflow: job needs an input data set")
	}
	if len(j.Partitions) == 0 {
		return errors.New("dataflow: job needs partitions")
	}
	if len(j.Ops) == 0 {
		return errors.New("dataflow: job needs at least one operator")
	}
	for _, op := range j.Ops {
		if err := op.Validate(); err != nil {
			return err
		}
	}
	for _, p := range j.Partitions {
		if _, ok := j.Input.Extent(p); !ok {
			return fmt.Errorf("dataflow: unknown partition %q", p)
		}
	}
	return nil
}

// Plan is a physical plan: one placement decision per partition pipeline.
type Plan struct {
	Job       *Job
	Placement Placement
	// PredictedSeconds is the cost model's per-partition estimate.
	PredictedSeconds float64
}

// Env describes the execution environment the planner costs against.
type Env struct {
	// LocalReadMBps is co-located read throughput.
	LocalReadMBps float64
	// NetworkMBps is the effective partition-streaming throughput to a
	// remote agent.
	NetworkMBps float64
	// ComputeMBps is agent compute throughput (placement-independent).
	ComputeMBps float64
	// CodeShipSeconds is the one-time cost of placing code next to data
	// (amortized per partition by the planner).
	CodeShipSeconds float64
}

// DefaultEnv mirrors future.DefaultConfig.
func DefaultEnv() Env {
	return Env{
		LocalReadMBps:   2500,
		NetworkMBps:     1250, // 10 Gbps
		ComputeMBps:     1000,
		CodeShipSeconds: 0.125,
	}
}

// costOf predicts per-partition seconds under a placement.
func (e Env) costOf(j *Job, pl Placement, partitionBytes float64) float64 {
	mb := partitionBytes / 1e6
	var secs float64
	switch pl {
	case ShipCodeToData:
		secs = mb / e.LocalReadMBps
		secs += e.CodeShipSeconds / float64(len(j.Partitions))
	case ShipDataToCode:
		secs = mb / e.NetworkMBps
	}
	// Operator chain: each op crunches its input then shrinks it.
	cur := mb
	for _, op := range j.Ops {
		secs += cur / op.CostMBps
		cur *= op.Selectivity
	}
	// Result shipping: only the final output moves for code->data;
	// for data->code the result is already where the code is.
	if pl == ShipCodeToData && cur > 0 {
		secs += cur / e.NetworkMBps
	}
	return secs
}

// Plan picks the cheaper placement for the job under env. It returns the
// plan plus both predictions so callers can inspect the margin.
func (e Env) Plan(j *Job) (*Plan, map[Placement]float64, error) {
	if err := j.Validate(); err != nil {
		return nil, nil, err
	}
	var avg float64
	for _, p := range j.Partitions {
		size, _ := j.Input.Extent(p)
		avg += float64(size)
	}
	avg /= float64(len(j.Partitions))

	costs := map[Placement]float64{
		ShipCodeToData: e.costOf(j, ShipCodeToData, avg),
		ShipDataToCode: e.costOf(j, ShipDataToCode, avg),
	}
	pl := ShipCodeToData
	if costs[ShipDataToCode] < costs[ShipCodeToData] {
		pl = ShipDataToCode
	}
	return &Plan{Job: j, Placement: pl, PredictedSeconds: costs[pl]}, costs, nil
}

// Result summarizes one executed job.
type Result struct {
	Placement        Placement
	Partitions       int
	Elapsed          time.Duration
	OutputBytes      int64
	PredictedSeconds float64
}

// Executor runs physical plans on a future-platform.
type Executor struct {
	pf   *future.Platform
	env  Env
	runs int // distinguishes agent names across Execute calls
}

// NewExecutor binds an executor to the platform.
func NewExecutor(pf *future.Platform, env Env) *Executor {
	return &Executor{pf: pf, env: env}
}

// Execute runs the plan with `workers` parallel agents, blocking the
// calling process until every partition is processed.
func (ex *Executor) Execute(p *sim.Proc, plan *Plan, workers int) (*Result, error) {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(plan.Job.Partitions) {
		workers = len(plan.Job.Partitions)
	}
	start := p.Now()
	var outputBytes int64

	// Work queue over partitions.
	work := sim.NewQueue[string](0)
	for _, part := range plan.Job.Partitions {
		work.TryPut(part)
	}
	work.Close()

	ex.runs++
	var wg sim.WaitGroup
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		name := fmt.Sprintf("df-run%d-worker%d", ex.runs, w)
		p.Spawn(name, func(wp *sim.Proc) {
			defer wg.Done()
			var near *future.DataSet
			if plan.Placement == ShipCodeToData {
				near = plan.Job.Input
			}
			agent := ex.pf.SpawnAgent(wp, name, 1024, near)
			defer agent.Stop(wp)
			for {
				part, ok := work.Get(wp)
				if !ok {
					return
				}
				size, _ := plan.Job.Input.Extent(part)
				if err := agent.Read(wp, plan.Job.Input, part); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				out := runOps(wp, plan.Job.Ops, size)
				// Ship the (reduced) result if code ran at the data.
				if plan.Placement == ShipCodeToData && out > 0 {
					secs := float64(out) / (ex.env.NetworkMBps * 1e6)
					wp.Sleep(time.Duration(secs * float64(time.Second)))
				}
				outputBytes += out
			}
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	return &Result{
		Placement:        plan.Placement,
		Partitions:       len(plan.Job.Partitions),
		Elapsed:          time.Duration(p.Now() - start),
		OutputBytes:      outputBytes,
		PredictedSeconds: plan.PredictedSeconds,
	}, nil
}

// runOps charges compute for the operator chain and returns output bytes.
func runOps(p *sim.Proc, ops []Op, input int64) int64 {
	cur := float64(input)
	for _, op := range ops {
		secs := cur / (op.CostMBps * 1e6)
		p.Sleep(time.Duration(secs * float64(time.Second)))
		cur *= op.Selectivity
	}
	return int64(cur)
}
