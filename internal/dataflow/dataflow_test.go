package dataflow

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/future"
	"repro/internal/msgnet"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
)

type fixture struct {
	k  *sim.Kernel
	pf *future.Platform
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	k := sim.NewKernel()
	t.Cleanup(k.Close)
	rng := simrand.New(9)
	net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
	mesh := msgnet.NewMesh(net, rng.Fork())
	pf := future.New(net, mesh, rng.Fork(), future.DefaultConfig(), pricing.Fall2018(), &pricing.Meter{})
	return &fixture{k: k, pf: pf}
}

func makeJob(pf *future.Platform, parts int, partBytes int64, ops []Op) *Job {
	ds := pf.CreateDataSet(fmt.Sprintf("in-%d-%d", parts, partBytes), 5)
	keys := make([]string, parts)
	for i := range keys {
		keys[i] = fmt.Sprintf("part-%03d", i)
		ds.AddExtent(keys[i], partBytes)
	}
	return &Job{Input: ds, Partitions: keys, Ops: ops}
}

func filterOp() Op { return Op{Name: "filter", Selectivity: 0.01, CostMBps: 2000} }
func mapOp() Op    { return Op{Name: "map", Selectivity: 1.0, CostMBps: 1500} }

func TestValidation(t *testing.T) {
	f := newFixture(t)
	job := makeJob(f.pf, 2, 1e6, []Op{filterOp()})
	if err := job.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []*Job{
		{Input: nil, Partitions: []string{"x"}, Ops: []Op{filterOp()}},
		{Input: job.Input, Partitions: nil, Ops: []Op{filterOp()}},
		{Input: job.Input, Partitions: []string{"part-000"}, Ops: nil},
		{Input: job.Input, Partitions: []string{"ghost"}, Ops: []Op{filterOp()}},
		{Input: job.Input, Partitions: []string{"part-000"}, Ops: []Op{{Name: "", Selectivity: 1, CostMBps: 1}}},
		{Input: job.Input, Partitions: []string{"part-000"}, Ops: []Op{{Name: "x", Selectivity: -1, CostMBps: 1}}},
		{Input: job.Input, Partitions: []string{"part-000"}, Ops: []Op{{Name: "x", Selectivity: 1, CostMBps: 0}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestPlannerPrefersCodeToDataForSelectiveOps(t *testing.T) {
	f := newFixture(t)
	// Aggressive filter over big partitions: shipping 100MB over the
	// network loses to reading locally and shipping 1MB of results.
	job := makeJob(f.pf, 10, 100e6, []Op{filterOp()})
	plan, costs, err := DefaultEnv().Plan(job)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placement != ShipCodeToData {
		t.Errorf("placement = %v (costs %v), want code->data", plan.Placement, costs)
	}
	if costs[ShipCodeToData] >= costs[ShipDataToCode] {
		t.Errorf("cost model inverted: %v", costs)
	}
}

func TestPlannerPrefersDataToCodeForTinyInputs(t *testing.T) {
	f := newFixture(t)
	// Tiny partitions: the per-partition share of code shipping dominates,
	// so streaming the data to an existing remote agent wins.
	job := makeJob(f.pf, 1, 64e3, []Op{mapOp()})
	plan, costs, err := DefaultEnv().Plan(job)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placement != ShipDataToCode {
		t.Errorf("placement = %v (costs %v), want data->code", plan.Placement, costs)
	}
}

func TestExecuteProcessesAllPartitions(t *testing.T) {
	f := newFixture(t)
	job := makeJob(f.pf, 8, 10e6, []Op{filterOp()})
	plan, _, err := DefaultEnv().Plan(job)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.pf, DefaultEnv())
	var res *Result
	f.k.Spawn("driver", func(p *sim.Proc) {
		res, err = ex.Execute(p, plan, 4)
	})
	f.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 8 {
		t.Errorf("partitions = %d", res.Partitions)
	}
	// 8 x 10MB x 0.01 selectivity = 800KB of output.
	if res.OutputBytes < 7e5 || res.OutputBytes > 9e5 {
		t.Errorf("output = %d bytes, want ~800KB", res.OutputBytes)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}

func TestPlannerChoiceBeatsForcedAlternative(t *testing.T) {
	// The ablation that justifies the planner: execute the same job under
	// both placements; the planner's pick must be the faster one.
	f := newFixture(t)
	job := makeJob(f.pf, 6, 100e6, []Op{filterOp()})
	plan, _, err := DefaultEnv().Plan(job)
	if err != nil {
		t.Fatal(err)
	}
	forced := &Plan{Job: job, Placement: ShipDataToCode}
	ex := NewExecutor(f.pf, DefaultEnv())
	var chosen, other *Result
	f.k.Spawn("driver", func(p *sim.Proc) {
		chosen, err = ex.Execute(p, plan, 3)
		if err != nil {
			return
		}
		other, err = ex.Execute(p, forced, 3)
	})
	f.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Elapsed >= other.Elapsed {
		t.Errorf("planner pick (%v, %v) not faster than forced %v (%v)",
			plan.Placement, chosen.Elapsed, forced.Placement, other.Elapsed)
	}
}

func TestCostModelTracksExecution(t *testing.T) {
	f := newFixture(t)
	job := makeJob(f.pf, 4, 50e6, []Op{mapOp(), filterOp()})
	plan, _, err := DefaultEnv().Plan(job)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.pf, DefaultEnv())
	var res *Result
	f.k.Spawn("driver", func(p *sim.Proc) {
		res, err = ex.Execute(p, plan, 1) // sequential: prediction is per partition
	})
	f.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	perPart := res.Elapsed.Seconds() / float64(res.Partitions)
	if perPart < plan.PredictedSeconds*0.7 || perPart > plan.PredictedSeconds*1.5 {
		t.Errorf("measured %.3fs/partition vs predicted %.3fs: cost model drifting", perPart, plan.PredictedSeconds)
	}
}

func TestParallelWorkersScale(t *testing.T) {
	f := newFixture(t)
	job := makeJob(f.pf, 12, 50e6, []Op{mapOp()})
	plan, _, err := DefaultEnv().Plan(job)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.pf, DefaultEnv())
	var seq, par *Result
	f.k.Spawn("driver", func(p *sim.Proc) {
		seq, err = ex.Execute(p, plan, 1)
		if err != nil {
			return
		}
		par, err = ex.Execute(p, plan, 6)
	})
	f.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	speedup := seq.Elapsed.Seconds() / par.Elapsed.Seconds()
	if speedup < 3 {
		t.Errorf("6-way speedup = %.1fx, want >= 3x", speedup)
	}
}

func TestExecuteInvalidWorkerCountsClamped(t *testing.T) {
	f := newFixture(t)
	job := makeJob(f.pf, 2, 1e6, []Op{mapOp()})
	plan, _, _ := DefaultEnv().Plan(job)
	ex := NewExecutor(f.pf, DefaultEnv())
	var err error
	f.k.Spawn("driver", func(p *sim.Proc) {
		_, err = ex.Execute(p, plan, 0) // clamps to 1
		if err != nil {
			return
		}
		_, err = ex.Execute(p, plan, 99) // clamps to len(partitions)
	})
	f.k.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlacementString(t *testing.T) {
	if ShipCodeToData.String() != "code->data" || ShipDataToCode.String() != "data->code" {
		t.Error("placement strings wrong")
	}
}

// Property: for any partition size and selectivity, the planner never picks
// a placement whose modeled cost exceeds the alternative's.
func TestQuickPlannerOptimal(t *testing.T) {
	env := DefaultEnv()
	prop := func(sizeMB uint16, selPct uint8, parts uint8) bool {
		k := sim.NewKernel()
		defer k.Close()
		rng := simrand.New(1)
		net := netsim.NewNetwork(k, rng.Fork(), netsim.DefaultLatency())
		mesh := msgnet.NewMesh(net, rng.Fork())
		pf := future.New(net, mesh, rng.Fork(), future.DefaultConfig(),
			pricing.Fall2018(), &pricing.Meter{})
		n := int(parts%8) + 1
		size := (int64(sizeMB) + 1) * 1e5
		sel := float64(selPct%101) / 100
		job := makeJob(pf, n, size, []Op{{Name: "op", Selectivity: sel, CostMBps: 1000}})
		plan, costs, err := env.Plan(job)
		if err != nil {
			return false
		}
		return costs[plan.Placement] <= costs[otherPlacement(plan.Placement)]+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func otherPlacement(p Placement) Placement {
	if p == ShipCodeToData {
		return ShipDataToCode
	}
	return ShipCodeToData
}

// Smoke check that time is simulated, not wall-clock.
func TestExecutionIsVirtualTime(t *testing.T) {
	f := newFixture(t)
	job := makeJob(f.pf, 20, 100e6, []Op{mapOp()})
	plan, _, _ := DefaultEnv().Plan(job)
	ex := NewExecutor(f.pf, DefaultEnv())
	wall := time.Now()
	var res *Result
	f.k.Spawn("driver", func(p *sim.Proc) {
		res, _ = ex.Execute(p, plan, 2)
	})
	f.k.Run()
	if res.Elapsed < 500*time.Millisecond {
		t.Errorf("virtual elapsed = %v, expected substantial", res.Elapsed)
	}
	if time.Since(wall) > 2*time.Second {
		t.Errorf("wall time %v for a simulated job", time.Since(wall))
	}
}
