package dataflow

// Straggler detection and re-dispatch. The coordinator tracks outstanding
// partitions with an invertible Bloom filter (the same primitive
// internal/recon uses for gossip): Dispatch folds a partition id in,
// Complete folds it out, and when progress stalls the coordinator decodes
// the filter against an empty one to *name* exactly the unfinished
// partitions — a constant-size summary instead of an O(partitions)
// scoreboard, the Eppstein–Goodrich trick applied to task tracking. Named
// stragglers are re-dispatched to spare agents; the first completion wins
// and duplicates are ignored, mirroring speculative execution in
// MapReduce-style runtimes.

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/future"
	"repro/internal/recon"
	"repro/internal/sim"
)

// StragglerTracker names unfinished work from a constant-size IBF summary.
type StragglerTracker struct {
	filter      *recon.Filter
	empty       *recon.Filter
	dec         recon.Decoder
	outstanding int
	scratch     []uint64
}

// NewStragglerTracker sizes the tracker for decoding up to ~cells/1.4
// simultaneous stragglers (the usual IBF decode margin).
func NewStragglerTracker(cells int) *StragglerTracker {
	return &StragglerTracker{filter: recon.New(cells), empty: recon.New(cells)}
}

// Dispatch records that partition id (1-based) is in flight.
func (st *StragglerTracker) Dispatch(id uint64) {
	st.filter.Add(recon.Mix(id))
	st.outstanding++
}

// Complete records that partition id finished.
func (st *StragglerTracker) Complete(id uint64) {
	st.filter.Remove(recon.Mix(id))
	st.outstanding--
}

// Outstanding counts in-flight partitions.
func (st *StragglerTracker) Outstanding() int { return st.outstanding }

// Identify decodes the summary into the sorted list of mixed in-flight
// elements (mixedID of each outstanding partition id). ok is false when
// the outstanding set outgrew the filter's decode capacity — callers fall
// back to waiting (the set only shrinks).
func (st *StragglerTracker) Identify() (ids []uint64, ok bool) {
	only, _, ok := st.dec.Decode(st.filter, st.empty)
	if !ok {
		return nil, false
	}
	st.scratch = append(st.scratch[:0], only...)
	slices.Sort(st.scratch)
	return st.scratch, true
}

// mixedID returns the element Identify reports for partition id.
func mixedID(id uint64) uint64 { return recon.Mix(id) }

// StragglerPolicy configures re-dispatch for ExecuteResilient.
type StragglerPolicy struct {
	// Patience is the coordinator's poll interval: once the work queue is
	// drained, any partition still outstanding after a full patience window
	// is declared a straggler.
	Patience time.Duration
	// Cells sizes the tracker's IBF (0 = 64).
	Cells int
	// Spares is how many rescue agents re-dispatch uses (0 disables rescue
	// — the baseline that just waits for stragglers).
	Spares int
	// Slow returns the compute slowdown factor for a primary worker index
	// (nil or 1 = full speed). Rescue agents always run at full speed.
	Slow func(worker int) float64
}

// RedispatchReport describes what straggler handling did.
type RedispatchReport struct {
	// Stragglers is how many partitions were ever declared stragglers.
	Stragglers int
	// DecodeOK is false if any Identify call failed to peel (wait fallback).
	DecodeOK bool
	// Redispatched counts rescue attempts started.
	Redispatched int
	// Rescued counts partitions whose rescue copy finished first.
	Rescued int
}

// ExecuteResilient runs the plan like Execute but with IBF-based straggler
// re-dispatch: primary workers (optionally slowed per the policy) process
// the queue; once it drains, the coordinator polls every Patience and
// re-dispatches still-outstanding partitions to spare full-speed agents.
// First completion wins; duplicates are dropped before the tracker.
func (ex *Executor) ExecuteResilient(p *sim.Proc, plan *Plan, workers int, pol StragglerPolicy) (*Result, *RedispatchReport, error) {
	if err := plan.Job.Validate(); err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	if pol.Patience <= 0 {
		pol.Patience = 500 * time.Millisecond
	}
	cells := pol.Cells
	if cells <= 0 {
		cells = 64
	}
	start := p.Now()
	parts := plan.Job.Partitions
	tracker := NewStragglerTracker(cells)
	rep := &RedispatchReport{DecodeOK: true}

	// Partition ids are 1-based queue order; id→key for rescue dispatch.
	byID := make(map[uint64]string, len(parts))
	byMixed := make(map[uint64]uint64, len(parts))
	for i, part := range parts {
		id := uint64(i + 1)
		byID[id] = part
		byMixed[mixedID(id)] = id
	}

	work := sim.NewQueue[uint64](0)
	for i := range parts {
		work.TryPut(uint64(i + 1))
	}
	work.Close()

	done := make(map[uint64]bool, len(parts))
	var outputBytes int64
	var firstErr error
	finish := func(id uint64, out int64) {
		if done[id] {
			return // a twin (primary or rescue) got here first
		}
		done[id] = true
		tracker.Complete(id)
		outputBytes += out
	}
	runPart := func(wp *sim.Proc, agent *future.Agent, id uint64, slow float64) (int64, error) {
		part := byID[id]
		size, _ := plan.Job.Input.Extent(part)
		if err := agent.Read(wp, plan.Job.Input, part); err != nil {
			return 0, err
		}
		if slow > 1 {
			// A slowed host crunches operators slower by the same factor.
			slowOps := make([]Op, len(plan.Job.Ops))
			for i, op := range plan.Job.Ops {
				op.CostMBps /= slow
				slowOps[i] = op
			}
			return runOps(wp, slowOps, size), nil
		}
		return runOps(wp, plan.Job.Ops, size), nil
	}

	ex.runs++
	run := ex.runs
	var wg sim.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		slow := 1.0
		if pol.Slow != nil {
			if f := pol.Slow(w); f > 0 {
				slow = f
			}
		}
		name := fmt.Sprintf("df-run%d-worker%d", run, w)
		p.Spawn(name, func(wp *sim.Proc) {
			defer wg.Done()
			var near *future.DataSet
			if plan.Placement == ShipCodeToData {
				near = plan.Job.Input
			}
			agent := ex.pf.SpawnAgent(wp, name, 1024, near)
			defer agent.Stop(wp)
			for {
				id, ok := work.Get(wp)
				if !ok {
					return
				}
				tracker.Dispatch(id)
				out, err := runPart(wp, agent, id, slow)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				finish(id, out)
			}
		})
	}

	// Coordinator: wait for the queue to drain, then poll. Anything still
	// outstanding after a full patience window gets one rescue copy.
	rescued := make(map[uint64]bool)
	coord := func(cp *sim.Proc) {
		spare := 0
		var rescueWG sim.WaitGroup
		for tracker.Outstanding() > 0 || work.Len() > 0 {
			cp.Sleep(pol.Patience)
			if firstErr != nil {
				break
			}
			if work.Len() > 0 || tracker.Outstanding() == 0 || pol.Spares == 0 {
				continue
			}
			ids, ok := tracker.Identify()
			if !ok {
				rep.DecodeOK = false
				continue
			}
			for _, el := range ids {
				id := byMixed[el]
				if id == 0 || rescued[id] {
					continue
				}
				rescued[id] = true
				rep.Stragglers++
				if rep.Redispatched >= pol.Spares*4 {
					continue // budget: each spare handles a few rescues
				}
				rep.Redispatched++
				spare++
				rescueWG.Add(1)
				rname := fmt.Sprintf("df-run%d-rescue%d", run, spare)
				rid := id
				cp.Spawn(rname, func(rp *sim.Proc) {
					defer rescueWG.Done()
					var near *future.DataSet
					if plan.Placement == ShipCodeToData {
						near = plan.Job.Input
					}
					agent := ex.pf.SpawnAgent(rp, rname, 1024, near)
					defer agent.Stop(rp)
					out, err := runPart(rp, agent, rid, 1)
					if err != nil {
						return // rescue failure is benign; primary still runs
					}
					if !done[rid] {
						rep.Rescued++
						finish(rid, out)
					}
				})
			}
		}
		rescueWG.Wait(cp)
	}

	var coordWG sim.WaitGroup
	coordWG.Add(1)
	p.Spawn(fmt.Sprintf("df-run%d-coord", run), func(cp *sim.Proc) {
		defer coordWG.Done()
		coord(cp)
	})

	// The job is complete when every partition is done — rescues can beat
	// primaries, so waiting on the workers alone would overshoot makespan.
	for len(done) < len(parts) && firstErr == nil {
		p.Sleep(pol.Patience / 4)
	}
	elapsed := time.Duration(p.Now() - start)
	wg.Wait(p)
	coordWG.Wait(p)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return &Result{
		Placement:        plan.Placement,
		Partitions:       len(parts),
		Elapsed:          elapsed,
		OutputBytes:      outputBytes,
		PredictedSeconds: plan.PredictedSeconds,
	}, rep, nil
}
