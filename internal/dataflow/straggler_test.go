package dataflow

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestStragglerTrackerRoundTrip(t *testing.T) {
	st := NewStragglerTracker(64)
	for id := uint64(1); id <= 20; id++ {
		st.Dispatch(id)
	}
	for id := uint64(1); id <= 20; id++ {
		if id%5 != 0 {
			st.Complete(id)
		}
	}
	if st.Outstanding() != 4 {
		t.Fatalf("Outstanding = %d, want 4", st.Outstanding())
	}
	els, ok := st.Identify()
	if !ok {
		t.Fatalf("decode failed with 4 outstanding in 64 cells")
	}
	want := map[uint64]bool{mixedID(5): true, mixedID(10): true, mixedID(15): true, mixedID(20): true}
	if len(els) != 4 {
		t.Fatalf("identified %d elements, want 4", len(els))
	}
	for _, el := range els {
		if !want[el] {
			t.Errorf("unexpected element %#x", el)
		}
	}
}

func TestStragglerTrackerOverflowFailsDecode(t *testing.T) {
	st := NewStragglerTracker(8)
	for id := uint64(1); id <= 100; id++ {
		st.Dispatch(id)
	}
	if _, ok := st.Identify(); ok {
		t.Fatalf("decode succeeded with 100 outstanding in 8 cells")
	}
	// Draining restores decodability — the set only shrinks.
	for id := uint64(1); id <= 98; id++ {
		st.Complete(id)
	}
	if els, ok := st.Identify(); !ok || len(els) != 2 {
		t.Fatalf("after drain: ok=%v n=%d, want 2 decodable stragglers", ok, len(els))
	}
}

// A 20×-slowed worker turns its partitions into stragglers; spare agents
// must rescue them and beat the no-rescue baseline's makespan.
func TestExecuteResilientRescuesStragglers(t *testing.T) {
	run := func(spares int) (time.Duration, *RedispatchReport) {
		f := newFixture(t)
		job := makeJob(f.pf, 8, 50e6, []Op{mapOp(), filterOp()})
		plan := &Plan{Job: job, Placement: ShipDataToCode}
		ex := NewExecutor(f.pf, DefaultEnv())
		pol := StragglerPolicy{
			Patience: 200 * time.Millisecond,
			Spares:   spares,
			Slow: func(w int) float64 {
				if w == 0 {
					return 20
				}
				return 1
			},
		}
		var res *Result
		var rep *RedispatchReport
		f.k.Spawn("driver", func(p *sim.Proc) {
			var err error
			res, rep, err = ex.ExecuteResilient(p, plan, 4, pol)
			if err != nil {
				t.Errorf("ExecuteResilient: %v", err)
			}
		})
		f.k.Run()
		if res == nil {
			t.Fatalf("no result")
		}
		if res.Partitions != 8 {
			t.Fatalf("Partitions = %d", res.Partitions)
		}
		return res.Elapsed, rep
	}
	baseline, baseRep := run(0)
	rescued, rescRep := run(2)
	if baseRep.Redispatched != 0 || baseRep.Rescued != 0 {
		t.Errorf("baseline re-dispatched: %+v", baseRep)
	}
	if rescRep.Stragglers == 0 || rescRep.Rescued == 0 {
		t.Errorf("rescue run found no stragglers: %+v", rescRep)
	}
	if !rescRep.DecodeOK {
		t.Errorf("IBF decode failed during rescue run")
	}
	if rescued >= baseline {
		t.Errorf("rescue did not improve makespan: baseline %v, rescued %v", baseline, rescued)
	}
}

// With healthy workers re-dispatch must stay idle and match Execute's
// makespan (the tracker adds bookkeeping, not wall-clock).
func TestExecuteResilientHealthyMatchesExecute(t *testing.T) {
	f := newFixture(t)
	job := makeJob(f.pf, 6, 20e6, []Op{mapOp()})
	plan := &Plan{Job: job, Placement: ShipDataToCode}
	var plain, resilient time.Duration
	var rep *RedispatchReport
	f.k.Spawn("driver", func(p *sim.Proc) {
		ex := NewExecutor(f.pf, DefaultEnv())
		res, err := ex.Execute(p, plan, 3)
		if err != nil {
			t.Errorf("Execute: %v", err)
			return
		}
		plain = res.Elapsed
		res2, r, err := ex.ExecuteResilient(p, plan, 3, StragglerPolicy{Patience: 100 * time.Millisecond, Spares: 2})
		if err != nil {
			t.Errorf("ExecuteResilient: %v", err)
			return
		}
		resilient = res2.Elapsed
		rep = r
		if res2.OutputBytes != res.OutputBytes {
			t.Errorf("output bytes differ: %d vs %d", res2.OutputBytes, res.OutputBytes)
		}
	})
	f.k.Run()
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Stragglers != 0 || rep.Redispatched != 0 {
		t.Errorf("healthy run re-dispatched: %+v", rep)
	}
	// The resilient coordinator discovers completion by polling, so allow
	// one patience quantum of slack.
	if resilient > plain+100*time.Millisecond {
		t.Errorf("resilient makespan %v far above plain %v", resilient, plain)
	}
}
