package core

import (
	"fmt"
	"time"

	"repro/internal/election"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// bbCluster is a blackboard election cluster riding on a Cloud.
type bbCluster struct {
	c     *Cloud
	bb    *election.Blackboard
	nodes []*election.Node
}

func newBBCluster(c *Cloud, n int, params election.Params) *bbCluster {
	bb := election.NewBlackboard(c.DDB, params)
	cl := &bbCluster{c: c, bb: bb}
	for id := 1; id <= n; id++ {
		// Each participant runs on a Lambda-class host.
		host := c.Net.NewNode(fmt.Sprintf("member-%04d", id), 1, netsim.Mbps(538))
		nd := election.NewNode(id, bb.ForNode(id, host), params)
		nd.Start(c.K)
		cl.nodes = append(cl.nodes, nd)
	}
	return cl
}

// agreed returns the common leader among running nodes, or -1.
func (cl *bbCluster) agreed() int {
	leader := -1
	for _, n := range cl.nodes {
		if n.Stopped() {
			continue
		}
		switch {
		case n.Leader() < 0:
			return -1
		case leader == -1:
			leader = n.Leader()
		case n.Leader() != leader:
			return -1
		}
	}
	return leader
}

// nodeByID finds a node.
func (cl *bbCluster) nodeByID(id int) *election.Node {
	for _, n := range cl.nodes {
		if n.ID() == id {
			return n
		}
	}
	return nil
}

// measureRounds crashes the current leader `rounds` times, measuring crash-
// to-agreement latency; each deposed leader stays down (bully order walks
// down the id space).
func (cl *bbCluster) measureRounds(rounds int) stats.Summary {
	rec := newSummary("round")
	k := cl.c.K
	if !runKernelUntil(k, k.Now()+sim.Time(5*time.Minute), sim.Time(250*time.Millisecond),
		func() bool { return cl.agreed() > 0 }) {
		panic("election: initial agreement not reached")
	}
	for r := 0; r < rounds; r++ {
		// Settle so heartbeats are steady before the crash.
		runKernelUntil(k, k.Now()+sim.Time(20*time.Second), sim.Time(time.Second),
			func() bool { return false })
		leader := cl.agreed()
		if leader <= 0 {
			panic("election: lost agreement between rounds")
		}
		cl.nodeByID(leader).Stop()
		crashAt := k.Now()
		if !runKernelUntil(k, crashAt+sim.Time(3*time.Minute), sim.Time(100*time.Millisecond),
			func() bool { a := cl.agreed(); return a > 0 && a != leader }) {
			panic("election: failover did not complete")
		}
		rec.Add(time.Duration(k.Now() - crashAt))
	}
	return rec
}

// steadyStateUnitsPerCycle runs a settled n-node cluster for a window and
// returns measured DynamoDB read units per node-cycle and writes per second.
func steadyStateUnitsPerCycle(seed uint64, n int, window time.Duration) (readUnits float64, writeUnits float64) {
	c := NewCloud(seed)
	defer c.Close()
	cl := newBBCluster(c, n, election.PaperParams())
	if !runKernelUntil(c.K, sim.Time(3*time.Minute), sim.Time(time.Second),
		func() bool { return cl.agreed() == n }) {
		panic("election: cost cluster did not settle")
	}
	c.Meter.Reset()
	c.K.RunUntil(c.K.Now() + sim.Time(window))
	cycles := float64(n) * window.Seconds() / election.PaperParams().PollInterval.Seconds()
	readUnits = float64(c.Meter.Count("dynamodb.read")) / cycles
	writeUnits = float64(c.Meter.Count("dynamodb.write")) / (float64(n) * window.Seconds())
	return readUnits, writeUnits
}

// RunElection regenerates the §3.1 distributed-computing case study: bully
// leader election with all communication through a DynamoDB blackboard at
// 4 polls per second. It reports the election round latency (paper: 16.7s),
// the share of a 15-minute Lambda lifetime that consumes (paper: 1.9%), and
// the storage bill for a 1,000-node cluster (paper: at least $450/hr).
func RunElection(seed uint64) []*Table {
	// The latency cluster and the two cost clusters are independent
	// simulations with their own seeds, so they sweep concurrently:
	// point 0 crashes leaders on a 10-node cluster, points 1 and 2
	// measure steady-state read units at 10 and 100 nodes. Simulating
	// 1,000 full pollers for an hour would be wasteful; the two measured
	// sizes pin the linear scan law the meter validates.
	type electionPoint struct {
		rounds      stats.Summary
		catalog     *pricing.Catalog
		read, write float64
	}
	pts := sweep.Points(3, func(i int) electionPoint {
		switch i {
		case 0:
			// Latency: a 10-node cluster, four leader crashes.
			c := NewCloud(seed)
			defer c.Close()
			cl := newBBCluster(c, 10, election.PaperParams())
			return electionPoint{rounds: cl.measureRounds(4), catalog: c.Catalog}
		case 1:
			r, w := steadyStateUnitsPerCycle(seed+1, 10, 30*time.Second)
			return electionPoint{read: r, write: w}
		default:
			r, w := steadyStateUnitsPerCycle(seed+2, 100, 15*time.Second)
			return electionPoint{read: r, write: w}
		}
	})
	rounds, catalog := pts[0].rounds, pts[0].catalog
	round := rounds.Mean()
	share := round.Seconds() / LambdaLifetime.Seconds() * 100
	r10, w10 := pts[1].read, pts[1].write
	r100, w100 := pts[2].read, pts[2].write
	perCycleAt := func(n float64) float64 {
		// One board scan of n records (measured slope) plus one
		// coordinator read.
		slope := (r100 - r10) / 90
		return r10 + slope*(n-10)
	}
	hourly := func(n float64) float64 {
		cycles := n * 4 * 3600
		readCost := cycles * perCycleAt(n) * 0.25 / 1e6
		writeCost := n * 3600 * ((w10 + w100) / 2) * 1.25 / 1e6
		return readCost + writeCost
	}

	t := &Table{
		Title:  "§3.1 Leader election over a DynamoDB blackboard (4 polls/s)",
		Header: []string{"Metric", "Measured", "Paper"},
	}
	t.AddRow("Election round (crash -> all agree)", FmtDur(round), "16.7s")
	t.AddRow("Share of 15-min lifetime in election", fmt.Sprintf("%.1f%%", share), "1.9%")
	t.AddRow("Storage cost, 1,000 nodes, steady state", fmt.Sprintf("$%.0f/hr", hourly(1000)), ">= $450/hr")
	t.AddRow("Storage cost, 100 nodes (measured)", fmt.Sprintf("$%.2f/hr", hourly(100)), "-")
	t.AddRow("Storage cost, 10 nodes (measured)", fmt.Sprintf("$%.2f/hr", hourly(10)), "-")
	t.AddNote("rounds measured: %d (min %v, max %v)", rounds.Count(),
		FmtDur(rounds.Min()), FmtDur(rounds.Max()))
	t.AddNote("read units per node-cycle: %.1f at 10 nodes, %.1f at 100 nodes (board scan + coordinator read)",
		r10, r100)
	t.AddNote("1,000-node figure applies the measured linear scan law; ~500B records make one scan ~123 units")
	provisioned := catalog.DynamoProvisionedHourly(1000*4*perCycleAt(1000), 1000*((w10+w100)/2))
	t.AddNote("provisioned-capacity alternative (2018's default mode, planned to peak): $%.0f/hr —", float64(provisioned))
	t.AddNote("cheaper than on-demand but still far beyond the marginal cost of direct messaging")
	return []*Table{t}
}

// RunElectionSweep is the sensitivity ablation: election round latency and
// 1,000-node hourly cost as the polling rate varies, with protocol timeouts
// scaled proportionally (as any deployment tuning them together would).
func RunElectionSweep(seed uint64) []*Table {
	t := &Table{
		Title:  "Sensitivity: bully-on-blackboard vs polling rate (6 nodes, timeouts scaled)",
		Header: []string{"Polling rate", "Round latency", "Read units/s per node", "Est. $/hr at 1,000 nodes"},
	}
	base := election.PaperParams()
	// Each polling rate is an independent cluster seeded by (seed, hz);
	// the sweep engine runs the four rates concurrently.
	type sweepResult struct {
		round       time.Duration
		unitsPerSec float64
	}
	rates := []int{1, 2, 4, 8}
	results := sweep.Map(rates, func(_ int, hz int) sweepResult {
		poll := time.Second / time.Duration(hz)
		scale := float64(poll) / float64(base.PollInterval)
		params := election.Params{
			PollInterval:    poll,
			HeartbeatPeriod: time.Duration(float64(base.HeartbeatPeriod) * scale),
			FailureTimeout:  time.Duration(float64(base.FailureTimeout) * scale),
			OKWait:          time.Duration(float64(base.OKWait) * scale),
			CoordWait:       time.Duration(float64(base.CoordWait) * scale),
		}
		c := NewCloud(seed + uint64(hz))
		defer c.Close()
		cl := newBBCluster(c, 6, params)
		rec := cl.measureRounds(2)

		// Steady-state read-unit rate at this polling frequency.
		c.Meter.Reset()
		c.K.RunUntil(c.K.Now() + sim.Time(30*time.Second))
		return sweepResult{
			round:       rec.Mean(),
			unitsPerSec: float64(c.Meter.Count("dynamodb.read")) / 30 / 6,
		}
	})
	for i, hz := range rates {
		// Extrapolate the 1,000-node scan (123 units) at this rate.
		cost1000 := 1000.0 * float64(hz) * 3600 * 124 * 0.25 / 1e6
		t.AddRow(fmt.Sprintf("%d Hz", hz), FmtDur(results[i].round),
			fmt.Sprintf("%.1f", results[i].unitsPerSec), fmt.Sprintf("$%.0f", cost1000))
	}
	t.AddNote("with timeouts scaled to the polling period, round latency shrinks ~linearly with the rate")
	t.AddNote("but the storage bill grows linearly too: convergence speed is bought with dollars, not design")
	return []*Table{t}
}
