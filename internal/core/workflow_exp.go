package core

import (
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// signupSteps is the Autodesk-style account-creation pipeline §2 describes:
// each invocation handles a small portion of the logic, chained through
// queues with state parked in the object store between steps.
func signupSteps() []workflow.Step {
	mk := func(name string, reads bool) workflow.Step {
		return workflow.Step{
			Name:        name,
			ReadsState:  reads,
			WritesState: true,
			Work: func(ctx *faas.Ctx, d []byte) ([]byte, error) {
				ctx.Compute(int64(len(d)) + 1024) // trivial business logic
				return append(d, []byte("|"+name)...), nil
			},
		}
	}
	return []workflow.Step{
		mk("validate-input", false),
		mk("check-duplicate", true),
		mk("create-account", true),
		mk("provision-profile", true),
		mk("set-permissions", true),
		mk("configure-billing", true),
		mk("send-verification", true),
		mk("audit-log", true),
	}
}

// RunWorkflow regenerates the §2 function-composition measurement: the
// per-request overhead of an 8-step event-driven signup pipeline on FaaS,
// against the same logic run in-process on one EC2 instance. The paper's
// Autodesk case study reports ten-minute end-to-end signups and attributes
// part of that to "the overheads of Lambda task handling and state
// management"; this experiment isolates exactly that infrastructure share.
func RunWorkflow(seed uint64) []*Table {
	const requests = 20

	// FaaS pipeline.
	c := NewCloud(seed)
	pl := workflow.New("signup", c.Lambda, c.SQS, c.S3, signupSteps())
	if err := pl.Deploy(c.K); err != nil {
		panic(err)
	}
	rec := newSummary("pipeline")
	client := c.ClientNode("client")
	done := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < requests; i++ {
			pr, err := pl.Submit(p, client, []byte(fmt.Sprintf("user-%03d", i)))
			if err != nil {
				panic(err)
			}
			res := pr.Get(p)
			rec.Add(res.Latency)
		}
		pl.Stop()
		done = true
	})
	if !runKernelUntil(c.K, sim.Time(4*time.Hour), sim.Time(time.Minute),
		func() bool { return done }) {
		panic("workflow: pipeline did not finish")
	}
	c.Close()

	// Monolith baseline: the same eight steps in one process with local
	// state on the instance volume.
	c2 := NewCloud(seed + 1)
	mono := newSummary("monolith")
	done2 := false
	c2.K.Spawn("driver", func(p *sim.Proc) {
		inst := c2.EC2.Launch(p, compute.M5Large, ClientRack)
		for i := 0; i < requests; i++ {
			start := p.Now()
			data := []byte(fmt.Sprintf("user-%03d", i))
			for s := 0; s < 8; s++ {
				key := fmt.Sprintf("state-%d-%d", i, s)
				if s > 0 {
					if err := inst.Volume().Read(p, key, int64(len(data))); err != nil {
						panic(err)
					}
				}
				if err := inst.Compute(p, int64(len(data))+1024); err != nil {
					panic(err)
				}
				if err := inst.Volume().Write(p, key, int64(len(data))); err != nil {
					panic(err)
				}
			}
			mono.Add(time.Duration(p.Now() - start))
		}
		done2 = true
	})
	if !runKernelUntil(c2.K, sim.Time(time.Hour), sim.Time(time.Minute),
		func() bool { return done2 }) {
		panic("workflow: monolith did not finish")
	}
	c2.Close()

	t := &Table{
		Title:  "§2 Function composition: 8-step signup pipeline, 20 requests",
		Header: []string{"Implementation", "Mean latency", "Per step", "vs monolith"},
	}
	steps := float64(len(signupSteps()))
	t.AddRow("FaaS pipeline (SQS + Lambda + S3 state)",
		FmtDur(rec.Mean()), FmtDur(time.Duration(float64(rec.Mean())/steps)),
		FmtRatio(float64(rec.Mean())/float64(mono.Mean()))+" slower")
	t.AddRow("Single EC2 process (local state)",
		FmtDur(mono.Mean()), FmtDur(time.Duration(float64(mono.Mean())/steps)), "1x")
	t.AddNote("paper context: Autodesk's Lambda-based signup averaged ~10 minutes end to end;")
	t.AddNote("the infrastructure share measured here is pure queue/invoke/state overhead —")
	t.AddNote("the business logic itself accounts for microseconds")
	return []*Table{t}
}
