package core

import (
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/faas"
	"repro/internal/loadgen"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// RunAutoscale quantifies §1.2's "one step forward": under workload-driven
// load, FaaS trades a large constant invocation overhead for elasticity.
// A CPU-bound request (50ms of single-core work) is offered at Poisson
// rates below, near, and above a fixed server's capacity:
//
//   - Lambda autoscales containers, so latency stays flat at the
//     invocation overhead no matter the offered rate;
//   - a fixed m5.large (2 cores => ~40 req/s capacity) is 7x faster per
//     request until saturation, after which its queue — and p99 — diverge.
//
// This is the honest counterweight to E1-E8: the paper's critique is not
// that autoscaling is worthless, but that it currently costs data gravity
// and addressability.
func RunAutoscale(seed uint64) []*Table {
	const window = 2 * time.Minute
	rates := []float64{10, 30, 50}

	t := &Table{
		Title:  "§1.2 Autoscaling under open-loop load (50ms CPU-bound requests)",
		Header: []string{"Offered load", "Lambda p50", "Lambda p99", "Fixed EC2 p50", "Fixed EC2 p99"},
	}
	// The 3 rates × 2 platforms make six independent seed-repetition
	// simulations; even-numbered points run the Lambda side, odd the EC2
	// side, preserving the original per-point seeds exactly.
	type quantiles struct{ p50, p99 time.Duration }
	points := sweep.Points(2*len(rates), func(i int) quantiles {
		rate := rates[i/2]
		if i%2 == 0 {
			p50, p99 := autoscaleLambda(seed+uint64(i/2), rate, window)
			return quantiles{p50, p99}
		}
		p50, p99 := autoscaleEC2(seed+uint64(i/2)+100, rate, window)
		return quantiles{p50, p99}
	})
	for i, rate := range rates {
		l, e := points[2*i], points[2*i+1]
		t.AddRow(fmt.Sprintf("%.0f req/s", rate),
			FmtDur(l.p50), FmtDur(l.p99), FmtDur(e.p50), FmtDur(e.p99))
	}
	t.AddNote("fixed fleet capacity is ~40 req/s (2 cores / 50ms); above it the queue diverges")
	t.AddNote("Lambda's flat latency is the paper's 'step forward'; its height is the overhead E1 measures")
	return []*Table{t}
}

// workBytes is 50ms of single-core work, expressed for each platform's
// calibrated compute rate.
const (
	lambdaWorkBytes = int64(0.05 * 468.6e6) // full-core function
	ec2WorkBytes    = int64(0.05 * 1100e6)  // m5.large core
)

func autoscaleLambda(seed uint64, rate float64, window time.Duration) (p50, p99 time.Duration) {
	c := NewCloud(seed)
	defer c.Close()
	if err := c.Lambda.Register(faas.Function{
		Name: "work", MemoryMB: 1769, Timeout: time.Minute,
		Handler: func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			ctx.Compute(lambdaWorkBytes)
			return nil, nil
		},
	}); err != nil {
		panic(err)
	}
	rec := newSummary("lambda")
	gen := loadgen.New(c.RNG.Fork(), loadgen.Poisson{Rate: rate})
	completed := 0
	gen.Run(c.K, window, func(p *sim.Proc, _ int) {
		start := p.Now()
		if _, _, err := c.Lambda.Invoke(p, "work", nil); err != nil {
			panic(err)
		}
		rec.Add(time.Duration(p.Now() - start))
		completed++
	})
	if !runKernelUntil(c.K, sim.Time(window)+sim.Time(30*time.Minute), sim.Time(10*time.Second),
		func() bool { return completed == gen.Submitted && gen.Submitted > 0 }) {
		panic("autoscale: lambda drain stalled")
	}
	return rec.Median(), rec.Percentile(99)
}

func autoscaleEC2(seed uint64, rate float64, window time.Duration) (p50, p99 time.Duration) {
	c := NewCloud(seed)
	defer c.Close()
	rec := newSummary("ec2")

	type req struct {
		start sim.Time
		done  *sim.Latch
	}
	queue := sim.NewQueue[req](0)
	completed := 0

	ready := &sim.Latch{}
	c.K.Spawn("server", func(p *sim.Proc) {
		inst := c.EC2.Launch(p, compute.M5Large, ClientRack)
		for w := 0; w < inst.Type().VCPUs; w++ {
			p.Spawn("worker", func(wp *sim.Proc) {
				for {
					r, ok := queue.Get(wp)
					if !ok {
						return
					}
					if err := inst.Compute(wp, ec2WorkBytes); err != nil {
						return
					}
					rec.Add(time.Duration(wp.Now() - r.start))
					completed++
					r.done.Release()
				}
			})
		}
		ready.Release()
	})

	gen := loadgen.New(c.RNG.Fork(), loadgen.Poisson{Rate: rate})
	var submitted int
	c.K.Spawn("drive", func(p *sim.Proc) {
		ready.Wait(p) // wait out instance boot
		gen.Run(p.Kernel(), window, func(rp *sim.Proc, _ int) {
			submitted++
			// Sub-millisecond delivery to the server's queue.
			rp.Sleep(300 * time.Microsecond)
			done := &sim.Latch{}
			queue.Put(rp, req{start: rp.Now(), done: done})
			done.Wait(rp)
		})
	})
	if !runKernelUntil(c.K, sim.Time(window)+sim.Time(2*time.Hour), sim.Time(30*time.Second),
		func() bool { return submitted > 0 && completed == submitted }) {
		panic("autoscale: ec2 drain stalled")
	}
	return rec.Median(), rec.Percentile(99)
}
