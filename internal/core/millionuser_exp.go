package core

// The millionuser scenario: the paper's economics argument is about
// millions of users, and this experiment finally runs at that population.
// Two fixed-memory layers make it feasible: latencies accumulate into a
// stats.Sketch (few-KB footprint, ≤1% percentile error, exact
// count/sum/min/max) instead of the full-retention recorder, and the load
// comes from loadgen.Population — one generator process driving the fluid
// Poisson superposition of a million per-user streams — instead of one
// simulated process per arrival. The sweep then pushes 100k+ req/s against
// a sharded KV table at 16/32/64 partitions: the 16-shard row saturates
// (~61k req/s of service capacity under 100k offered), 32 barely keeps up,
// and 64 has headroom — the same partition-count-is-the-scalability-knob
// story as regionscale, two orders of magnitude up.

import (
	"fmt"
	"time"

	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

const (
	// millionUsersDefault is the simulated client population; -users
	// overrides it (the bench-smoke memory gate runs 10⁴ vs 10⁶).
	millionUsersDefault = 1_000_000
	// millionRate is the aggregate offered load: the whole population
	// together presents 100k req/s, i.e. 0.1 req/s per user at the
	// default population — light per-user traffic, heavy in sum.
	millionRate = 100_000.0
	// millionWindow is the measurement window of virtual time.
	millionWindow = 5 * time.Second
	// millionKeySpace bounds the hot record set: a million users hash
	// onto 64Ki live records, so store growth is independent of the
	// population size (the fixed-memory claim covers the store too).
	millionKeySpace = 65536
	// millionShardConcurrency is each shard front end's service slots —
	// 4× regionscale's, since this tier serves 25× the offered rate.
	millionShardConcurrency = 16
	// millionClientNodes is the number of driver hosts spreading the load.
	millionClientNodes = 32
	// millionValueBytes is the written record size.
	millionValueBytes = 128
	// millionMaxProcs caps the submission fan-out (in-flight requests).
	millionMaxProcs = 2048
)

// millionResult is one shard count's measurement.
type millionResult struct {
	shards         int
	users          int
	submitted      int
	late           int
	completed      int
	throughput     float64 // completed / window
	p50, p99, p999 time.Duration
	sketchBytes    int
	costPerHr      float64
}

// runMillionUser measures one shard count at the given population, offered
// rate, and window (parameterized so tests and the memory gate can scale
// it down).
func runMillionUser(seed uint64, shards, users int, rate float64, window time.Duration) millionResult {
	cfg := DefaultConfig()
	cfg.DDB.ShardCount = shards
	cfg.DDB.ShardConcurrency = millionShardConcurrency
	c := NewCloudWith(seed, cfg)
	defer c.Close()

	clients := make([]*netsim.Node, millionClientNodes)
	for i := range clients {
		clients[i] = c.ClientNode(fmt.Sprintf("mu-client-%d", i))
	}
	// Precompute the key strings once: a million users share 64Ki records,
	// so the per-request path allocates nothing for key construction.
	keys := make([]string, millionKeySpace)
	for i := range keys {
		keys[i] = regionKey(uint64(i))
	}

	rec := stats.NewSketch("millionuser-kv")
	completed := 0
	value := make([]byte, millionValueBytes)
	pop := loadgen.NewPopulation(c.RNG.Fork(), c.RNG.Fork(), users, rate/float64(users))
	pop.MaxProcs = millionMaxProcs
	pop.Run(c.K, window, func(p *sim.Proc, seq, client int) {
		// Knuth-hash the user id onto the shared record set.
		key := keys[uint64(client)*2654435761%millionKeySpace]
		node := clients[seq%len(clients)]
		start := p.Now()
		if seq%2 == 0 {
			if _, err := c.DDB.Put(p, node, key, value); err != nil {
				panic(err)
			}
		} else {
			_, _ = c.DDB.Get(p, node, key, seq%4 == 1)
		}
		rec.Add(time.Duration(p.Now() - start))
		completed++
	})
	c.K.RunUntil(sim.Time(window))

	return millionResult{
		shards:      shards,
		users:       users,
		submitted:   pop.Submitted,
		late:        pop.Late,
		completed:   completed,
		throughput:  float64(completed) / window.Seconds(),
		p50:         rec.Percentile(50),
		p99:         rec.Percentile(99),
		p999:        rec.Percentile(99.9),
		sketchBytes: rec.Footprint(),
		costPerHr:   float64(c.Meter.Total()) / window.Hours(),
	}
}

// RunMillionUser regenerates the million-user scaling table: aggregate
// completed throughput, sketched tail latencies, sketch footprint, and
// extrapolated hourly storage cost as the partition count doubles from 16
// to 64 under 100k req/s of open-loop population load.
func RunMillionUser(seed uint64) []*Table {
	users := configuredUsers(millionUsersDefault)
	t := &Table{
		Title: fmt.Sprintf("Million-user scale: %d simulated clients at %.0fk req/s aggregate", users, millionRate/1000),
		Header: []string{"Shards", "Done req/s", "p50", "p99", "p99.9",
			"Sketch KB", "Storage $/hr"},
	}
	// Each shard count is an independent simulation of (seed, shards); the
	// sweep engine fans the points across cores and rows commit in sweep
	// order, byte-identical to a sequential run.
	results := sweep.Map([]int{16, 32, 64}, func(_ int, shards int) millionResult {
		return runMillionUser(seed, shards, users, millionRate, millionWindow)
	})
	for _, r := range results {
		t.AddRow(
			fmt.Sprintf("%d", r.shards),
			fmt.Sprintf("%.0f", r.throughput),
			FmtDur(r.p50),
			FmtDur(r.p99),
			FmtDur(r.p999),
			fmt.Sprintf("%.1f", float64(r.sketchBytes)/1024),
			fmt.Sprintf("$%.2f/hr", r.costPerHr),
		)
	}
	t.AddNote("one generator process drives the fluid Poisson superposition of all %d clients", users)
	t.AddNote("(%.1f req/s per user), thinned onto %d shared records; 50%% writes, 25%% consistent",
		millionRate/float64(users), millionKeySpace)
	t.AddNote("reads, 25%% eventual reads from %d driver hosts, fan-out capped at %d in-flight;",
		millionClientNodes, millionMaxProcs)
	t.AddNote("latency percentiles from a fixed-memory sketch (≤1%% relative error, exact mean/extremes);")
	t.AddNote("per-shard front end serves %d concurrent requests (~%.1fk req/s capacity each)",
		millionShardConcurrency, float64(millionShardConcurrency)/(4.18e-3)/1000)
	return []*Table{t}
}
