package core

import (
	"repro/internal/compute"
	"repro/internal/faas"
	"repro/internal/kvstore"
	"repro/internal/msgnet"
	"repro/internal/netsim"
	"repro/internal/objectstore"
	"repro/internal/pricing"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/simrand"
)

// Rack layout: clients and EC2 instances in racks 0-8, managed services on
// a dedicated "service side" rack so every storage access crosses racks,
// as it does in a real region.
const (
	ClientRack  = 0
	ServiceRack = 9
)

// Cloud is a fully assembled simulated region: the deterministic kernel,
// the network, the four managed services, the FaaS platform, the EC2
// provider, direct messaging, and a single cost meter everything charges.
type Cloud struct {
	K       *sim.Kernel
	RNG     *simrand.RNG
	Net     *netsim.Network
	Catalog *pricing.Catalog
	Meter   *pricing.Meter

	S3     *objectstore.Store
	DDB    *kvstore.Store
	SQS    *queue.Service
	Lambda *faas.Platform
	EC2    *compute.Provider
	Mesh   *msgnet.Mesh
}

// NewCloud assembles a region with the calibrated defaults.
func NewCloud(seed uint64) *Cloud {
	return NewCloudWith(seed, DefaultConfig())
}

// NewCloudWith assembles a region with explicit configuration (ablations).
func NewCloudWith(seed uint64, cfg Config) *Cloud {
	k := sim.NewKernel()
	rng := simrand.New(seed)
	net := netsim.NewNetwork(k, rng.Fork(), cfg.Latency)
	catalog := pricing.Fall2018()
	meter := &pricing.Meter{}
	return &Cloud{
		K:       k,
		RNG:     rng,
		Net:     net,
		Catalog: catalog,
		Meter:   meter,
		S3:      objectstore.New("s3", net, ServiceRack, rng.Fork(), cfg.S3, catalog, meter),
		DDB:     kvstore.New("dynamodb", net, ServiceRack, rng.Fork(), cfg.DDB, catalog, meter),
		SQS:     queue.NewService("sqs", net, ServiceRack, rng.Fork(), cfg.SQS, catalog, meter),
		Lambda:  faas.New("lambda", net, rng.Fork(), cfg.Lambda, catalog, meter),
		EC2:     compute.NewProvider(net, rng.Fork(), cfg.EC2, catalog, meter),
		Mesh:    msgnet.NewMesh(net, rng.Fork()),
	}
}

// Close tears down the kernel, reaping any parked processes.
func (c *Cloud) Close() { c.K.Close() }

// ClientNode registers a client host (e.g. a measurement driver) in the
// client rack with a 10 Gbps NIC.
func (c *Cloud) ClientNode(name string) *netsim.Node {
	return c.Net.NewNode(name, ClientRack, netsim.Gbps(10))
}
