package core

import "testing"

// millionKeyTestScale picks the scaled-down key count the test grid runs
// at. The ≥100× steady-state ratio needs enough keys for the digest
// baseline to dwarf the ~20KB IBF summary; under -race the runs shrink
// further and the threshold relaxes accordingly.
func millionKeyTestScale() (keys int, minRatio float64) {
	if raceEnabled {
		return 32_768, 20
	}
	return 131_072, 100
}

// TestMillionKeyScaled runs the experiment's two protocols at a reduced
// key count and checks the acceptance story end to end: both converge
// within the quiesce horizon, no rounds abort, and the IBF protocol's
// converged steady-state bytes/round sit at least minRatio below the
// digest baseline at the same key count.
func TestMillionKeyScaled(t *testing.T) {
	keys, minRatio := millionKeyTestScale()
	digest := runMillionKey(1, 4, keys, false)
	ibf := runMillionKey(1, 4, keys, true)
	for _, r := range []millionKeyResult{digest, ibf} {
		if r.writes == 0 {
			t.Fatalf("%s: write window produced no writes", r.protocol)
		}
		if r.aborted != 0 {
			t.Errorf("%s: %d aborted rounds with no detaches", r.protocol, r.aborted)
		}
		if r.rounds == 0 {
			t.Fatalf("%s: no completed gossip rounds", r.protocol)
		}
		if r.converge <= 0 || r.converge >= millionKeyQuiesce {
			t.Errorf("%s: convergence %v outside (0, %v)", r.protocol, r.converge, millionKeyQuiesce)
		}
		if r.staleP99 <= 0 {
			t.Errorf("%s: staleness p99 = %v, want > 0", r.protocol, r.staleP99)
		}
		if r.steadyPer <= 0 {
			t.Errorf("%s: steady bytes/round = %d, want > 0", r.protocol, r.steadyPer)
		}
	}
	if digest.writes != ibf.writes {
		t.Errorf("write schedule diverged across protocols: %d vs %d", digest.writes, ibf.writes)
	}
	ratio := float64(digest.steadyPer) / float64(ibf.steadyPer)
	if ratio < minRatio {
		t.Errorf("steady-state bytes ratio digest/ibf = %.0fx (%d/%d), want ≥ %.0fx at %d keys",
			ratio, digest.steadyPer, ibf.steadyPer, minRatio, keys)
	}
}

// TestMillionKeyDeterministic: identical (seed, params) runs must produce
// identical measurements — the property the sweep engine and goldens
// elsewhere rely on.
func TestMillionKeyDeterministic(t *testing.T) {
	keys := 16_384
	a := runMillionKey(3, 3, keys, true)
	b := runMillionKey(3, 3, keys, true)
	if a != b {
		t.Errorf("two identical runs diverged:\n %+v\n %+v", a, b)
	}
}
