package core

import (
	"fmt"
	"strings"
	"time"
)

// Table is a rendered experiment artifact mirroring one of the paper's
// tables or figures.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// FmtDur formats a duration with sensible experiment precision.
func FmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%.0fns", float64(d))
	}
}

// FmtBytes formats a byte count with adaptive decimal units.
func FmtBytes(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fGB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fMB", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fKB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FmtRatio formats a "compared to best" multiplier like the paper's Table 1.
func FmtRatio(r float64) string {
	switch {
	case r >= 100:
		return fmt.Sprintf("%.0fx", r)
	case r >= 10:
		return fmt.Sprintf("%.1fx", r)
	default:
		return fmt.Sprintf("%.2fx", r)
	}
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string // e.g. "table1"
	Title string
	// Run executes the experiment deterministically for the given seed
	// and returns its tables.
	Run func(seed uint64) []*Table
}

// Experiments returns the full registry in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: 1KB communication latencies", Run: RunTable1},
		{ID: "figure1", Title: "Figure 1: Google Trends, Serverless vs MapReduce", Run: RunFigure1},
		{ID: "training", Title: "§3.1 Case study: model training (Lambda vs EC2)", Run: RunTraining},
		{ID: "serving", Title: "§3.1 Case study: prediction serving latency", Run: RunServing},
		{ID: "servingcost", Title: "§3.1 Case study: serving cost at 1M msg/s", Run: RunServingCost},
		{ID: "election", Title: "§3.1 Case study: bully election on a DynamoDB blackboard", Run: RunElection},
		{ID: "bandwidth", Title: "§3(2): per-function network bandwidth vs packing", Run: RunBandwidth},
		{ID: "workflow", Title: "§2: function-composition overhead (signup pipeline)", Run: RunWorkflow},
		{ID: "firecracker", Title: "Ablation (footnote 5): Firecracker 125ms cold starts", Run: RunFirecracker},
		{ID: "fastnic", Title: "Ablation (footnote 4): 100Gbps NICs, 64-way packing", Run: RunFastNIC},
		{ID: "future", Title: "§4: case studies on the forward-looking platform", Run: RunFuture},
		{ID: "electionsweep", Title: "Sensitivity: election round vs polling rate", Run: RunElectionSweep},
		{ID: "autoscale", Title: "§1.2: autoscaling under open-loop load (the step forward)", Run: RunAutoscale},
		{ID: "regionscale", Title: "Region scale: sharded KV table under open-loop load", Run: RunRegionScale},
		{ID: "faasscale", Title: "FaaS at region scale: flash-crowd serving vs provisioned concurrency", Run: RunFaaSScale},
		{ID: "statecache", Title: "§4 fluid state: function-colocated CRDT cache with gossip anti-entropy", Run: RunStateCache},
		{ID: "millionuser", Title: "Million-user scale: sketched latencies + aggregated load population", Run: RunMillionUser},
		{ID: "millionkey", Title: "Million-key gossip: IBF set reconciliation vs per-key digests", Run: RunMillionKey},
		{ID: "regionfailover", Title: "Multi-region failover: WAN partition + crash storm under measured load", Run: RunRegionFailover},
		{ID: "retrystorm", Title: "Resilience fabric: retry policies under a metastable retry storm", Run: RunRetryStorm},
	}
}

// ExperimentByID looks up a registry entry.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
