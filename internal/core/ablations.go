package core

import (
	"time"

	"repro/internal/faas"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/sweep"
)

// measureInvoke returns the mean invocation latency of a no-op 1KB call
// over `trials` calls, forcing a cold start per call when forceCold is set.
func measureInvoke(seed uint64, cfg Config, trials int, forceCold bool) time.Duration {
	if forceCold {
		cfg.Lambda.WarmTTL = 1 // containers expire immediately
	}
	c := NewCloudWith(seed, cfg)
	defer c.Close()
	if err := c.Lambda.Register(faas.Function{
		Name: "noop", MemoryMB: 128, Timeout: time.Minute,
		Handler: func(ctx *faas.Ctx, _ []byte) ([]byte, error) { return nil, nil },
	}); err != nil {
		panic(err)
	}
	rec := newSummary("invoke")
	done := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		payload := make([]byte, 1024)
		for i := 0; i < trials; i++ {
			start := p.Now()
			if _, _, err := c.Lambda.Invoke(p, "noop", payload); err != nil {
				panic(err)
			}
			rec.Add(time.Duration(p.Now() - start))
			if forceCold {
				p.Sleep(time.Millisecond) // let the container expire
			}
		}
		done = true
	})
	if !runKernelUntil(c.K, sim.Time(time.Hour), sim.Time(time.Minute),
		func() bool { return done }) {
		panic("ablation: invokes did not finish")
	}
	return rec.Mean()
}

// RunFirecracker regenerates footnote 5's what-if: Firecracker's 125ms
// microVM startup replacing the classic container cold start. The paper's
// claim — "at best modest effects on our results in Table 1" — holds
// because Table 1's number is dominated by invocation overhead, not
// sandbox startup.
func RunFirecracker(seed uint64) []*Table {
	t := &Table{
		Title:  "Ablation (footnote 5): Firecracker 125ms microVM startup",
		Header: []string{"Scenario", "Classic cold start", "Firecracker", "Change"},
	}
	// The four measurement cells (warm/cold × classic/Firecracker) are
	// independent repetitions keyed by their own seeds; each point builds
	// its config locally so concurrent clouds share nothing.
	type invokePoint struct {
		fire, cold bool
		seed       uint64
		trials     int
	}
	points := []invokePoint{
		{false, false, seed, 300},
		{true, false, seed, 300},
		{false, true, seed + 1, 100},
		{true, true, seed + 1, 100},
	}
	res := sweep.Map(points, func(_ int, pt invokePoint) time.Duration {
		cfg := DefaultConfig()
		if pt.fire {
			cfg.Lambda.ColdStart = simrand.Const(FirecrackerColdStart)
		}
		return measureInvoke(pt.seed, cfg, pt.trials, pt.cold)
	})
	warmClassic, warmFire, coldClassic, coldFire := res[0], res[1], res[2], res[3]
	t.AddRow("Warm invoke (Table 1 conditions)", FmtDur(warmClassic), FmtDur(warmFire),
		FmtRatio(float64(warmClassic)/float64(warmFire)))
	t.AddRow("Cold invoke (every call cold)", FmtDur(coldClassic), FmtDur(coldFire),
		FmtRatio(float64(coldClassic)/float64(coldFire)))
	t.AddNote("Table 1's 303ms is invocation-path overhead, not sandbox startup; Firecracker")
	t.AddNote("narrows the cold path but remains orders of magnitude above network messaging (290µs)")
	return []*Table{t}
}
