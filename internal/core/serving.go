package core

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/compute"
	"repro/internal/faas"
	"repro/internal/msgnet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/wordfilter"
)

// servingDoc is one document routed through the classifier.
type servingDoc struct {
	Batch int    `json:"batch"`
	Seq   int    `json:"seq"`
	Text  string `json:"text"`
}

// makeDocs builds a batch of ten ~100-character documents, some dirty.
func makeDocs(batch int) [][]byte {
	texts := []string{
		"the quarterly report shows darn good progress across all regions this year",
		"customer feedback was positive although the heck of a rollout was rocky",
		"this lousy integration keeps dropping rotten packets on the junk interface",
		"a perfectly ordinary sentence with no offending vocabulary at all today",
		"bogus metrics were removed from the garbage dashboard after the blast review",
	}
	docs := make([][]byte, ServingBatchSize)
	for i := range docs {
		d := servingDoc{Batch: batch, Seq: i, Text: texts[(batch+i)%len(texts)]}
		b, _ := json.Marshal(d)
		docs[i] = b
	}
	return docs
}

const servingBatches = 1000

// RunServing regenerates the §3.1 prediction-serving latencies: the same
// ten-document batches through four implementations — Lambda with per-
// invocation model fetch and S3 writeback, Lambda with a compiled-in model
// and SQS writeback, an EC2 instance on SQS, and an EC2 instance on direct
// (ZeroMQ-style) messaging. Latency is measured from the client initiating
// the batch to the results being durable in the output channel, averaged
// over 1,000 batches as in the paper.
func RunServing(seed uint64) []*Table {
	lambdaFetch := runServingLambda(seed, true)
	lambdaOpt := runServingLambda(seed+1, false)
	ec2SQS := runServingEC2SQS(seed + 2)
	ec2ZMQ := runServingEC2ZMQ(seed + 3)

	t := &Table{
		Title:  "§3.1 Prediction serving: mean latency per 10-document batch (1,000 batches)",
		Header: []string{"Implementation", "Measured", "Paper"},
	}
	t.AddRow("Lambda, model fetched from S3, results to S3", FmtDur(lambdaFetch), "559ms")
	t.AddRow("Lambda, compiled-in model, results to SQS", FmtDur(lambdaOpt), "447ms")
	t.AddRow("EC2 m5.large + SQS", FmtDur(ec2SQS), "13ms")
	t.AddRow("EC2 m5.large + ZeroMQ", FmtDur(ec2ZMQ), "2.8ms")
	t.AddNote("EC2+SQS vs optimized Lambda: %.0fx faster (paper says 27x; the paper's own numbers give 447/13 = 34x)",
		float64(lambdaOpt)/float64(ec2SQS))
	t.AddNote("EC2+ZeroMQ vs optimized Lambda: %.0fx faster (paper reports 127x)",
		float64(lambdaOpt)/float64(ec2ZMQ))
	return []*Table{t}
}

// runServingLambda measures the two Lambda variants. fetchModel selects the
// unoptimized path: fetch the serialized model from S3 on every invocation
// and write results back to S3 instead of SQS.
func runServingLambda(seed uint64, fetchModel bool) time.Duration {
	c := NewCloud(seed)
	defer c.Close()
	client := c.ClientNode("client")
	inQ := c.SQS.CreateQueue("serve-in", 2*time.Minute)
	outQ := c.SQS.CreateQueue("serve-out", 2*time.Minute)
	rec := newSummary("batch")
	completion := make(map[int]*sim.Latch)
	compiled := wordfilter.DefaultModel()

	setup := false
	c.K.Spawn("setup", func(p *sim.Proc) {
		c.S3.Put(p, client, "models/dirty-words", compiled.Serialize())
		setup = true
	})

	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		p, node := ctx.Proc(), ctx.Node()
		model := compiled
		if fetchModel {
			obj, err := c.S3.Get(p, node, "models/dirty-words")
			if err != nil {
				return nil, err
			}
			model = wordfilter.Parse(obj.Data)
		}
		ev, err := faas.DecodeSQSEvent(payload)
		if err != nil {
			return nil, err
		}
		batch := -1
		var cleaned []string
		for _, r := range ev.Records {
			var doc servingDoc
			if err := json.Unmarshal([]byte(r.Body), &doc); err != nil {
				return nil, err
			}
			batch = doc.Batch
			out, _ := model.Clean(doc.Text)
			cleaned = append(cleaned, out)
			ctx.Compute(int64(len(doc.Text)))
		}
		result, _ := json.Marshal(cleaned)
		if fetchModel {
			c.S3.Put(p, node, fmt.Sprintf("results/batch-%d", batch), result)
		} else {
			if _, err := outQ.Send(p, node, result); err != nil {
				return nil, err
			}
		}
		if l, ok := completion[batch]; ok {
			l.Release()
		}
		return nil, nil
	}
	if err := c.Lambda.Register(faas.Function{
		Name: "classify", MemoryMB: 1024, Timeout: time.Minute, Handler: handler,
	}); err != nil {
		panic(err)
	}
	esm := c.Lambda.MapQueue(inQ, "classify", ServingBatchSize)

	done := false
	c.K.Spawn("client", func(p *sim.Proc) {
		for !setup {
			p.Sleep(100 * time.Millisecond)
		}
		for b := 0; b < servingBatches; b++ {
			l := &sim.Latch{}
			completion[b] = l
			start := p.Now() // client initiates the batch
			if _, err := inQ.SendBatch(p, client, makeDocs(b)); err != nil {
				panic(err)
			}
			l.Wait(p)
			rec.Add(time.Duration(p.Now() - start))
			delete(completion, b)
			p.Sleep(50 * time.Millisecond) // pipeline settles between batches
		}
		esm.Stop()
		done = true
	})
	if !runKernelUntil(c.K, sim.Time(4*time.Hour), sim.Time(time.Minute), func() bool { return done }) {
		panic("serving (lambda) did not finish")
	}
	return rec.Mean()
}

func runServingEC2SQS(seed uint64) time.Duration {
	c := NewCloud(seed)
	defer c.Close()
	client := c.ClientNode("client")
	inQ := c.SQS.CreateQueue("serve-in", 2*time.Minute)
	outQ := c.SQS.CreateQueue("serve-out", 2*time.Minute)
	rec := newSummary("batch")
	completion := make(map[int]*sim.Latch)
	model := wordfilter.DefaultModel()

	stop := false
	c.K.Spawn("server", func(p *sim.Proc) {
		inst := c.EC2.Launch(p, compute.M5Large, ClientRack)
		node := inst.Node()
		for !stop {
			msgs, err := inQ.Receive(p, node, ServingBatchSize, time.Second)
			if err != nil || len(msgs) == 0 {
				continue
			}
			batch := -1
			var cleaned []string
			var receipts []string
			for _, m := range msgs {
				var doc servingDoc
				if json.Unmarshal(m.Body, &doc) == nil {
					batch = doc.Batch
					out, _ := model.Clean(doc.Text)
					cleaned = append(cleaned, out)
				}
				receipts = append(receipts, m.Receipt)
				inst.Compute(p, int64(len(m.Body)))
			}
			result, _ := json.Marshal(cleaned)
			if _, err := outQ.Send(p, node, result); err != nil {
				panic(err)
			}
			if l, ok := completion[batch]; ok {
				l.Release()
			}
			inQ.DeleteBatch(p, node, receipts)
		}
	})

	done := false
	c.K.Spawn("client", func(p *sim.Proc) {
		p.Sleep(2 * time.Minute) // let the server boot
		for b := 0; b < servingBatches; b++ {
			l := &sim.Latch{}
			completion[b] = l
			start := p.Now() // client initiates the batch
			if _, err := inQ.SendBatch(p, client, makeDocs(b)); err != nil {
				panic(err)
			}
			l.Wait(p)
			rec.Add(time.Duration(p.Now() - start))
			delete(completion, b)
			p.Sleep(50 * time.Millisecond) // server re-parks in its long poll
		}
		stop = true
		done = true
	})
	if !runKernelUntil(c.K, sim.Time(2*time.Hour), sim.Time(time.Minute), func() bool { return done }) {
		panic("serving (ec2+sqs) did not finish")
	}
	return rec.Mean()
}

func runServingEC2ZMQ(seed uint64) time.Duration {
	c := NewCloud(seed)
	defer c.Close()
	rec := newSummary("batch")
	model := wordfilter.DefaultModel()

	done := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		server := c.EC2.Launch(p, compute.M5Large, ClientRack)
		clientVM := c.EC2.Launch(p, compute.M5Large, ClientRack)
		srvEP := c.Mesh.Endpoint("serve", server.Node())
		cliEP := c.Mesh.Endpoint("feeder", clientVM.Node())
		srvEP.Serve(func(sp *sim.Proc, pk msgnet.Packet) []byte {
			var doc servingDoc
			if json.Unmarshal(pk.Payload, &doc) != nil {
				return nil
			}
			out, _ := model.Clean(doc.Text)
			server.Compute(sp, int64(len(doc.Text)))
			return []byte(out)
		})
		for b := 0; b < servingBatches; b++ {
			docs := makeDocs(b)
			start := p.Now()
			for _, d := range docs {
				if _, err := cliEP.Call(p, "serve", d, 0); err != nil {
					panic(err)
				}
			}
			rec.Add(time.Duration(p.Now() - start))
		}
		done = true
	})
	if !runKernelUntil(c.K, sim.Time(time.Hour), sim.Time(time.Minute), func() bool { return done }) {
		panic("serving (ec2+zmq) did not finish")
	}
	return rec.Mean()
}

// RunServingCost regenerates the §3.1 cost comparison at 1M messages/s:
// the SQS request bill alone versus an EC2 fleet sized from measured
// instance throughput.
func RunServingCost(seed uint64) []*Table {
	c := NewCloud(seed)
	defer c.Close()

	// Measure a single m5.large's sustainable throughput: workers share
	// the instance's two cores, each message costing ServingCPUPerMessage.
	processed := 0
	measuring := false
	c.K.Spawn("throughput", func(p *sim.Proc) {
		inst := c.EC2.Launch(p, compute.M5Large, ClientRack)
		cores := sim.NewResource(inst.Type().VCPUs)
		for w := 0; w < 16; w++ {
			p.Spawn("worker", func(wp *sim.Proc) {
				for {
					// Receive side is pipelined across workers; CPU is
					// the binding constraint.
					wp.Sleep(queue.DefaultConfig().OpLatency.Sample(c.RNG) / ServingBatchSize)
					cores.Acquire(wp)
					wp.Sleep(ServingCPUPerMessage)
					cores.Release()
					if measuring {
						processed++
					}
				}
			})
		}
		p.Sleep(5 * time.Second) // warm up
		measuring = true
		p.Sleep(30 * time.Second)
		measuring = false
	})
	// Horizon covers instance boot (up to 90s) plus the window.
	c.K.RunUntil(sim.Time(3 * time.Minute))
	if processed == 0 {
		panic("servingcost: throughput probe measured nothing")
	}
	perInstance := float64(processed) / 30.0

	fleet := int(math.Ceil(ServingTargetRate / perInstance))
	ec2Hourly := float64(fleet) * float64(c.Catalog.EC2Hourly("m5.large"))

	// SQS request bill: every message is sent individually by clients
	// (1 request) and received in batches of 10 (0.1 requests).
	requestsPerMsg := 1.0 + 1.0/ServingBatchSize
	sqsHourly := ServingTargetRate * 3600 * requestsPerMsg * float64(c.Catalog.SQSPerRequest)

	t := &Table{
		Title:  "§3.1 Serving cost at 1M messages/s",
		Header: []string{"Approach", "Basis", "Cost per hour", "Paper"},
	}
	t.AddRow("SQS requests alone",
		fmt.Sprintf("%.1f requests/msg x 3.6B msgs/hr", requestsPerMsg),
		fmt.Sprintf("$%.0f", sqsHourly), "$1,584")
	t.AddRow("EC2 m5.large fleet",
		fmt.Sprintf("%d instances at %.0f msg/s each", fleet, perInstance),
		fmt.Sprintf("$%.2f", ec2Hourly), "$27.84")
	t.AddNote("cost ratio: %.0fx in EC2's favor (paper reports 57x)", sqsHourly/ec2Hourly)
	t.AddNote("instance throughput measured over a 30s steady-state window (paper: ~3,500 req/s)")
	return []*Table{t}
}
