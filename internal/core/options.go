package core

import (
	"sync/atomic"

	"repro/internal/stats"
)

// Experiment-wide switches for the million-user machinery. They default
// off, so the exact recorder and per-arrival load generator remain the
// reference path and seed-1 goldens stay byte-identical; cmd/faasbench
// exposes them as -sketch / -population / -users. Atomics because sweep
// workers read them concurrently; they are set once before Run, never
// mid-experiment.
var (
	optSketch     atomic.Bool
	optPopulation atomic.Bool
	optUsers      atomic.Int64
	optRecon      atomic.Bool
)

// SetSketchStats switches experiment summaries between the exact Recorder
// (default) and the fixed-memory Sketch.
func SetSketchStats(on bool) { optSketch.Store(on) }

// SetPopulationLoad switches load generation between one process per
// arrival (default) and the aggregated client-population mode.
func SetPopulationLoad(on bool) { optPopulation.Store(on) }

// SetUsers overrides the simulated client-population size for experiments
// that scale by user count (0 restores each experiment's default).
func SetUsers(n int) { optUsers.Store(int64(n)) }

// SetReconGossip switches the statecache experiment's gossip between the
// per-key digest exchange (default, the goldens' reference protocol) and
// IBF set reconciliation. The millionkey experiment always runs both
// protocols side by side, so this only affects statecache.
func SetReconGossip(on bool) { optRecon.Store(on) }

// newSummary builds the latency summary every experiment records into,
// honoring the -sketch switch.
func newSummary(name string) stats.Summary {
	return stats.NewSummary(name, optSketch.Load())
}

func sketchStats() bool    { return optSketch.Load() }
func populationLoad() bool { return optPopulation.Load() }
func reconGossip() bool    { return optRecon.Load() }

// configuredUsers returns the -users override, or def when unset.
func configuredUsers(def int) int {
	if n := optUsers.Load(); n > 0 {
		return int(n)
	}
	return def
}
