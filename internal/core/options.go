package core

import (
	"sync/atomic"

	"repro/internal/stats"
)

// Experiment-wide switches for the million-user machinery. They default
// off, so the exact recorder and per-arrival load generator remain the
// reference path and seed-1 goldens stay byte-identical; cmd/faasbench
// exposes them as -sketch / -population / -users. Atomics because sweep
// workers read them concurrently; they are set once before Run, never
// mid-experiment.
var (
	optSketch     atomic.Bool
	optPopulation atomic.Bool
	optUsers      atomic.Int64
	optRecon      atomic.Bool
	optNoChaos    atomic.Bool
	optRegions    atomic.Int64
	optPolicy     atomic.Value // string
)

// SetSketchStats switches experiment summaries between the exact Recorder
// (default) and the fixed-memory Sketch.
func SetSketchStats(on bool) { optSketch.Store(on) }

// SetPopulationLoad switches load generation between one process per
// arrival (default) and the aggregated client-population mode.
func SetPopulationLoad(on bool) { optPopulation.Store(on) }

// SetUsers overrides the simulated client-population size for experiments
// that scale by user count (0 restores each experiment's default).
func SetUsers(n int) { optUsers.Store(int64(n)) }

// SetReconGossip switches the statecache experiment's gossip between the
// per-key digest exchange (default, the goldens' reference protocol) and
// IBF set reconciliation. The millionkey experiment always runs both
// protocols side by side, so this only affects statecache.
func SetReconGossip(on bool) { optRecon.Store(on) }

// SetChaos gates the regionfailover experiment's fault injection (the
// -chaos flag). Default on — the chaos rows are the experiment's point and
// the goldens pin them — but off gives a clean all-healthy control run.
func SetChaos(on bool) { optNoChaos.Store(!on) }

// SetRegions overrides the regionfailover experiment's region count
// (0 restores the default of 2).
func SetRegions(n int) { optRegions.Store(int64(n)) }

// SetPolicy restricts the retrystorm experiment to one client policy
// variant by name ("" or "all" runs the whole sweep; see PolicyNames).
func SetPolicy(name string) { optPolicy.Store(name) }

// newSummary builds the latency summary every experiment records into,
// honoring the -sketch switch.
func newSummary(name string) stats.Summary {
	return stats.NewSummary(name, optSketch.Load())
}

func sketchStats() bool { return optSketch.Load() }

// configuredPolicy returns the -policy override ("" = run every variant).
func configuredPolicy() string {
	s, _ := optPolicy.Load().(string)
	return s
}
func populationLoad() bool { return optPopulation.Load() }
func reconGossip() bool    { return optRecon.Load() }
func chaosEnabled() bool   { return !optNoChaos.Load() }

// configuredRegions returns the -regions override, or def when unset.
func configuredRegions(def int) int {
	if n := optRegions.Load(); n >= 2 {
		return int(n)
	}
	return def
}

// configuredUsers returns the -users override, or def when unset.
func configuredUsers(def int) int {
	if n := optUsers.Load(); n > 0 {
		return int(n)
	}
	return def
}
