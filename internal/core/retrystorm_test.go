package core

import (
	"runtime"
	"slices"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// TestRetryStormDeterminism: a retry storm — deadline-abandoned attempts,
// backoff jitter, breaker trips, pool exhaustion, admission sheds — must
// render byte-identical tables for every seed at any sweep worker count.
// Runs at reduced scale (a 6s window instead of 30s) so 20 seeds × 3
// worker counts stay cheap; the full-scale seed-1 artifact is pinned by
// the golden test and swept by TestSweepWorkerCountInvariance.
func TestRetryStormDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("retry-storm determinism sweeps in -short mode")
	}
	seeds := 20
	if raceEnabled {
		seeds = 5 // the race detector ~10×es simulation time
	}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	slices.Sort(counts)
	counts = slices.Compact(counts)
	defer sweep.SetWorkers(0)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		var want string
		for i, w := range counts {
			sweep.SetWorkers(w)
			got := renderAll(runRetryStormTables(seed, 0.2))
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d diverged at %d workers vs %d:\ngot:\n%s\nwant:\n%s",
					seed, w, counts[0], got, want)
			}
		}
		if !strings.Contains(want, "naive-retry") {
			t.Fatalf("seed %d: no naive-retry rows rendered", seed)
		}
	}
}

// TestRetryStormShowsMetastableCollapse sanity-checks the headline
// phenomenon at full scale: naive retries must make both the fault phase
// and the post-heal phase strictly worse than not retrying at all (the
// amplified backlog outlives the fault — the metastable signature), while
// the full policy must beat no-retry on availability in every phase and
// restore the post-heal tail to the healthy baseline.
func TestRetryStormShowsMetastableCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale retry-storm run in -short mode")
	}
	pols := rsPolicies()
	byName := map[string]rsResult{}
	for _, pol := range pols {
		byName[pol.name] = runRetryStorm(1, pol, 1)
	}
	avail := func(r rsResult, phase int) float64 {
		ph := r.phases[phase]
		return float64(ph.served) / float64(ph.served+ph.failed)
	}
	nr, nv, full := byName["no-retry"], byName["naive-retry"], byName["full-policy"]

	// Healthy phase: everyone serves everything.
	for name, r := range byName {
		if a := avail(r, 0); a < 0.999 {
			t.Errorf("%s pre-fault availability = %.4f, want ~1", name, a)
		}
	}
	// Naive retries amplify the outage: strictly worse during AND after.
	if avail(nv, 1) >= avail(nr, 1) {
		t.Errorf("naive during-fault availability %.4f not worse than no-retry %.4f",
			avail(nv, 1), avail(nr, 1))
	}
	if avail(nv, 2) >= avail(nr, 2) {
		t.Errorf("naive post-heal availability %.4f not worse than no-retry %.4f (no metastable overhang)",
			avail(nv, 2), avail(nr, 2))
	}
	// The collapse spreads beyond the hot shard: the client pool backlogs
	// (cold traffic starves) and arrivals give up, which never happens
	// without retries.
	if nv.gaveUp == 0 || nv.phases[1].poolQ == 0 {
		t.Errorf("naive retries did not exhaust the client pool (gaveUp %d, peak backlog %d)",
			nv.gaveUp, nv.phases[1].poolQ)
	}
	if nr.gaveUp != 0 {
		t.Errorf("no-retry saw %d pool give-ups; the collapse should need retries", nr.gaveUp)
	}
	// The full policy dominates no-retry on availability in every phase…
	for phase := range rsPhases {
		if avail(full, phase) < avail(nr, phase) {
			t.Errorf("full-policy %s availability %.4f below no-retry %.4f",
				rsPhases[phase], avail(full, phase), avail(nr, phase))
		}
	}
	// …and its post-heal tail returns to baseline while no-retry is still
	// draining the backlog of abandoned attempts.
	if fp, np := full.phases[2].rec.Percentile(99), nr.phases[2].rec.Percentile(99); fp >= np {
		t.Errorf("full-policy post-heal p99 %v not below no-retry %v", fp, np)
	}
	// The policy machinery actually engaged: breaker trips, server sheds,
	// bounded retries; and the hot-shard queue stayed bounded.
	if full.trips == 0 || full.shed == 0 || full.cstats.Retries == 0 {
		t.Errorf("full policy idle: trips %d, shed %d, retries %d",
			full.trips, full.shed, full.cstats.Retries)
	}
	if q := full.phases[1].hotQ; q > rsMaxQueue {
		t.Errorf("full-policy hot-shard queue peaked at %d, admission bound is %d", q, rsMaxQueue)
	}
	if nv.phases[2].hotQ <= nr.phases[2].hotQ/2 {
		t.Errorf("naive post-heal backlog %d not deeper than no-retry's %d",
			nv.phases[2].hotQ, nr.phases[2].hotQ)
	}
}

// TestHotTenantJailProtectsPoliteTenants sanity-checks the second table:
// jailing the abusive caller must raise polite throughput and cut the
// polite tail, while the abuser eats fast rejections.
func TestHotTenantJailProtectsPoliteTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("hot-tenant runs in -short mode")
	}
	off := runHotTenant(1, false, 0.5)
	on := runHotTenant(1, true, 0.5)
	if off.abuser.rejected != 0 || off.jailed != 0 {
		t.Fatalf("jail off still rejected: abuser %d, server %d", off.abuser.rejected, off.jailed)
	}
	if on.jailed == 0 || on.abuser.rejected == 0 {
		t.Fatalf("jail on rejected nothing (server %d, abuser %d)", on.jailed, on.abuser.rejected)
	}
	if on.polite.rejected != 0 {
		t.Errorf("jail caught %d polite requests; it must be per-caller", on.polite.rejected)
	}
	if on.polite.served <= off.polite.served {
		t.Errorf("jail did not raise polite throughput: %d -> %d", off.polite.served, on.polite.served)
	}
	if onP, offP := on.polite.rec.Percentile(99), off.polite.rec.Percentile(99); onP >= offP {
		t.Errorf("jail did not cut the polite tail: p99 %v -> %v", offP, onP)
	}
}

// BenchmarkRetryStorm times the full-scale experiment end to end — all
// four policy variants plus the hot-tenant comparison, exactly what
// faasbench regenerates.
func BenchmarkRetryStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runRetryStormTables(1, 1)
	}
}
