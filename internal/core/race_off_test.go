//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; the
// worker-count invariance sweep trims its slowest family under -race.
const raceEnabled = false
