package core

// The regionfailover scenario: the multi-region story the paper's §3/§4
// critique implies but single-region experiments cannot show. Two (or
// more) regions run the same serving workload — FaaS handlers over a
// function-colocated state cache and a DynamoDB-style global table — while
// a chaos engine severs the inter-region trunk for the middle third of the
// window and crash-reclaims every hosting VM in the secondary region at
// the same instant. The table reports, per phase (pre / during / post),
// tail latency up to p99.9, availability, and metered $/hr, for a healthy
// control run and the chaos run side by side.
//
// What the measurement shows: AP-style operations (cache reads/writes,
// region-local eventual reads) ride out the partition — gossip rounds to
// unreachable peers abort, write-behind flushes park, and the global
// table's replication queues hold — while CP-style consistent reads
// pinned to the primary region fail fast in the severed region, which is
// exactly the availability hole. After the heal, the autoscaler rebuilds
// the crashed fleet, parked queues drain (each deduplicated key ships and
// bills once), and tails recover.
//
// A second table isolates straggler re-dispatch: a 20×-slowed dataflow
// worker strands partitions, and the coordinator names them from a
// constant-size IBF summary (internal/recon) and re-runs them on spare
// agents — speculative execution with O(1)-size progress tracking.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/dataflow"
	"repro/internal/faas"
	"repro/internal/future"
	"repro/internal/kvstore"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/statecache"
	"repro/internal/stats"
	"repro/internal/sweep"
)

const (
	// rfWindow is the full-scale measurement window; the partition covers
	// its middle third.
	rfWindow = 30 * time.Second
	// rfRate is the per-region open-loop request rate.
	rfRate = 200.0
	// rfKeys is the hot key space shared by cache and table operations.
	rfKeys = 256
	// rfValueBytes is the global-table write payload.
	rfValueBytes = 256
	// rfWANMean / rfWANSpread shape the inter-region trunk latency
	// (us-east-1 <-> us-west-2 class).
	rfWANMean   = 32 * time.Millisecond
	rfWANSpread = 4 * time.Millisecond
)

// errRegionUnavailable is the handler's fast-fail for operations whose
// required remote region is unreachable — the experiment's availability
// signal (a real client would surface it as a 5xx).
var errRegionUnavailable = errors.New("regionfailover: required region unreachable")

// rfPhases labels the three measurement phases.
var rfPhases = [3]string{"pre", "during", "post"}

// rfPhase is one phase's measurements.
type rfPhase struct {
	rec    stats.Summary
	served int
	failed int
	cost   pricing.USD
}

// rfResult is one variant's full measurement.
type rfResult struct {
	phases    [3]rfPhase
	egress    int64 // total inter-region bytes
	aborted   int64 // gossip rounds severed or partition-aborted
	rounds    int64 // gossip rounds completed
	replLost  int64 // replication batches severed mid-flight
	replDone  int64 // writes applied cross-region
	flushed   int64 // cache write-behind flushes
	crashedVM int   // VMs lost to the storm (0 in the control run)
}

// rfKey renders the shared key for slot i.
func rfKey(i int) string { return fmt.Sprintf("kv/%03d", i) }

// rfHash spreads a (region, sequence) pair into op and key choices without
// consuming simulation RNG — the op mix is a pure function of the arrival.
func rfHash(region, seq int) uint64 {
	x := uint64(region)<<32 ^ uint64(seq)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// runRegionFailover measures one variant. scale shrinks the window (tests
// run at scale < 1 to keep the seeds × workers determinism sweep cheap);
// the partition always covers the middle third.
func runRegionFailover(seed uint64, regions int, withChaos bool, scale float64) rfResult {
	window := time.Duration(float64(rfWindow) * scale)
	partAt, partDur := window/3, window/3

	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(seed)
	cfg := DefaultConfig()
	net := netsim.NewNetwork(k, rng.Fork(), cfg.Latency)
	catalog := pricing.Fall2018()
	meter := &pricing.Meter{}
	for a := 0; a < regions; a++ {
		for b := a + 1; b < regions; b++ {
			net.ConnectRegions(a, b, netsim.Gbps(1), netsim.WANUniform(rfWANMean, rfWANSpread))
		}
	}
	net.MeterEgress(func(bytes int64) {
		meter.ChargeCost("wan.egress", catalog.WANEgressPerGB*pricing.USD(float64(bytes)/1e9))
	})

	regionList := make([]int, regions)
	for r := range regionList {
		regionList[r] = r
	}
	dcfg := cfg.DDB
	dcfg.ShardCount = 4
	gt := kvstore.NewGlobal("dynamodb", net, ServiceRack, rng.Fork(), dcfg,
		kvstore.DefaultGlobalConfig(), regionList, catalog, meter)
	defer gt.Close()

	pfs := make([]*faas.Platform, regions)
	for r := range pfs {
		prev := net.SetBuildRegion(r)
		pfs[r] = faas.New(fmt.Sprintf("lambda-r%d", r), net, rng.Fork(), cfg.Lambda, catalog, meter)
		net.SetBuildRegion(prev)
	}

	sc := statecache.DefaultConfig()
	sc.SketchStaleness = sketchStats()
	sc.Reconcile = reconGossip()
	cl := statecache.New("cache", net, gt.Primary(), rng.Fork(), sc, catalog, meter)
	for _, pf := range pfs {
		pf.AttachStateCache(cl)
	}

	var res rfResult
	for i := range res.phases {
		res.phases[i].rec = newSummary("rf-" + rfPhases[i])
	}
	phaseOf := func(now sim.Time) int {
		switch {
		case now < sim.Time(partAt):
			return 0
		case now < sim.Time(partAt+partDur):
			return 1
		default:
			return 2
		}
	}

	value := make([]byte, rfValueBytes)
	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		p := ctx.Proc()
		op := payload[0]
		key := rfKey(int(payload[1])<<8 | int(payload[2]))
		switch {
		case op < 40: // cache read: always region-local (AP)
			ctx.Cache().Counter(p, key)
		case op < 55: // cache counter write: absorbed locally, gossiped
			ctx.Cache().AddCounter(p, key, 1)
		case op < 75: // eventual read against the nearest table replica
			st, ok := gt.Nearest(ctx.Node())
			if !ok {
				return nil, errRegionUnavailable
			}
			if _, err := st.Get(p, ctx.Node(), key, false); err != nil && !errors.Is(err, kvstore.ErrNotFound) {
				panic(err)
			}
		case op < 90: // consistent read pinned to the primary region (CP)
			primary := gt.Primary()
			if !net.Reachable(ctx.Node(), primary.Node()) {
				return nil, errRegionUnavailable
			}
			if _, err := primary.Get(p, ctx.Node(), key, true); err != nil && !errors.Is(err, kvstore.ErrNotFound) {
				panic(err)
			}
		default: // global write through the nearest replica, replicated async
			st, ok := gt.Nearest(ctx.Node())
			if !ok {
				return nil, errRegionUnavailable
			}
			if _, err := st.Put(p, ctx.Node(), key, value); err != nil {
				panic(err)
			}
		}
		return nil, nil
	}
	for _, pf := range pfs {
		if err := pf.Register(faas.Function{
			Name: "serve", MemoryMB: 512, Timeout: time.Minute, Handler: handler,
		}); err != nil {
			panic(err)
		}
		if _, err := pf.Autoscale(faas.AutoscalerConfig{
			Function: "serve", Min: 2, Max: 32,
			TargetUtilization: 0.7, Interval: 2 * time.Second,
		}); err != nil {
			panic(err)
		}
	}

	eng := chaos.New(k, rng.Fork())
	if withChaos {
		eng.PartitionAt(net, 0, 1, partAt, partDur)
		eng.CrashStormAt(pfs[1], 1<<20, partAt) // the whole secondary fleet
	}

	for r := range pfs {
		region := r
		pf := pfs[r]
		gen := loadgen.New(rng.Fork(), loadgen.Poisson{Rate: rfRate})
		gen.Run(k, window, func(p *sim.Proc, seq int) {
			h := rfHash(region, seq)
			keyIdx := int(h>>32) % rfKeys
			payload := []byte{byte(h % 100), byte(keyIdx >> 8), byte(keyIdx)}
			phase := phaseOf(p.Now())
			start := p.Now()
			_, _, err := pf.Invoke(p, "serve", payload)
			switch {
			case err == nil:
				res.phases[phase].rec.Add(time.Duration(p.Now() - start))
				res.phases[phase].served++
			case errors.Is(err, errRegionUnavailable):
				res.phases[phase].failed++
			default:
				panic(err)
			}
		})
	}

	// Phase accountant: settle time-based billing (provisioned GB-s, cache
	// GB-s) at each boundary and snapshot the meter, so each phase's cost
	// is the delta it actually incurred.
	k.Spawn("rf-phase-accountant", func(p *sim.Proc) {
		last := pricing.USD(0)
		for i, b := range []time.Duration{partAt, partAt + partDur, window} {
			p.Sleep(b - time.Duration(p.Now()))
			for _, pf := range pfs {
				pf.AccrueProvisioned(p.Now())
			}
			cl.Accrue(p.Now())
			total := meter.Total()
			res.phases[i].cost = total - last
			last = total
		}
	})

	// Drain: every in-flight request and parked queue resolves well inside
	// a healed window of the same length again.
	k.RunUntil(sim.Time(2 * window))

	for a := 0; a < regions; a++ {
		for b := a + 1; b < regions; b++ {
			res.egress += net.WANBytes(a, b)
		}
	}
	res.aborted = cl.AbortedRounds()
	res.rounds = cl.GossipRounds()
	res.replLost = gt.LostBatches()
	res.replDone = gt.Replicated()
	res.flushed = cl.FlushWrites()
	if withChaos {
		for _, ev := range eng.Events() {
			var n int
			if _, err := fmt.Sscanf(ev.What, "crash storm: %d VMs", &n); err == nil {
				res.crashedVM += n
			}
		}
	}
	return res
}

// stragglerResult is one rescue policy's measurement.
type stragglerResult struct {
	spares    int
	makespan  time.Duration
	report    dataflow.RedispatchReport
	decodeOK  bool
	partCount int
}

// runStragglerRescue measures dataflow makespan with one 20×-slowed
// primary worker, with and without IBF-named re-dispatch to spare agents.
func runStragglerRescue(seed uint64, spares int) stragglerResult {
	c := NewCloud(seed)
	defer c.Close()
	pf := future.New(c.Net, c.Mesh, c.RNG.Fork(), future.DefaultConfig(), c.Catalog, c.Meter)
	ds := pf.CreateDataSet("shards", 5)
	parts := make([]string, 8)
	for i := range parts {
		parts[i] = fmt.Sprintf("shard-%02d", i)
		ds.AddExtent(parts[i], 50e6)
	}
	job := &dataflow.Job{Input: ds, Partitions: parts, Ops: []dataflow.Op{
		{Name: "parse", Selectivity: 1.0, CostMBps: 1500},
		{Name: "reduce", Selectivity: 0.01, CostMBps: 2000},
	}}
	plan, _, err := dataflow.DefaultEnv().Plan(job)
	if err != nil {
		panic(err)
	}
	var out stragglerResult
	out.spares = spares
	done := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		ex := dataflow.NewExecutor(pf, dataflow.DefaultEnv())
		res, rep, err := ex.ExecuteResilient(p, plan, 4, dataflow.StragglerPolicy{
			Patience: 200 * time.Millisecond,
			Spares:   spares,
			Slow: func(w int) float64 {
				if w == 0 {
					return 20
				}
				return 1
			},
		})
		if err != nil {
			panic(err)
		}
		out.makespan = res.Elapsed
		out.report = *rep
		out.decodeOK = rep.DecodeOK
		out.partCount = res.Partitions
		done = true
	})
	if !runKernelUntil(c.K, sim.Time(10*time.Minute), sim.Time(time.Second),
		func() bool { return done }) {
		panic("straggler rescue did not finish")
	}
	return out
}

// rfVariants lists the sweep points: the healthy control first, then the
// chaos run (skipped under -chaos=false).
func rfVariants() []bool {
	if chaosEnabled() {
		return []bool{false, true}
	}
	return []bool{false}
}

// runRegionFailoverTables builds both tables at the given scale (1 for the
// real experiment; tests shrink it).
func runRegionFailoverTables(seed uint64, scale float64) []*Table {
	regions := configuredRegions(2)
	window := time.Duration(float64(rfWindow) * scale)
	phaseDur := window / 3

	t := &Table{
		Title: fmt.Sprintf("Region failover: %d regions, %.0f req/s each, trunk severed + crash storm for the middle third", regions, rfRate),
		Header: []string{"Variant", "Phase", "Done req/s", "p50", "p99", "p99.9",
			"Avail", "$/hr"},
	}
	variants := rfVariants()
	// Each (variant) is an independent simulation keyed by (seed, variant);
	// the sweep engine fans them out and commits rows in point order.
	results := sweep.Map(variants, func(_ int, withChaos bool) rfResult {
		return runRegionFailover(seed, regions, withChaos, scale)
	})
	for vi, withChaos := range variants {
		label := "control"
		if withChaos {
			label = "chaos"
		}
		r := results[vi]
		for i := range r.phases {
			ph := &r.phases[i]
			total := ph.served + ph.failed
			avail := 100.0
			if total > 0 {
				avail = 100 * float64(ph.served) / float64(total)
			}
			t.AddRow(
				label,
				rfPhases[i],
				fmt.Sprintf("%.0f", float64(ph.served)/phaseDur.Seconds()),
				FmtDur(ph.rec.Percentile(50)),
				FmtDur(ph.rec.Percentile(99)),
				FmtDur(ph.rec.Percentile(99.9)),
				fmt.Sprintf("%.2f%%", avail),
				fmt.Sprintf("$%.2f/hr", float64(ph.cost)/phaseDur.Hours()),
			)
		}
	}
	if len(results) > 1 {
		c := results[1]
		t.AddNote("chaos: trunk 0-1 severed at %s for %s; all %d secondary-region VMs crash-reclaimed at the same instant",
			FmtDur(phaseDur), FmtDur(phaseDur), c.crashedVM)
		t.AddNote("chaos run: %d/%d gossip rounds aborted, %d replication batches severed (all writes re-queued),",
			c.aborted, c.aborted+c.rounds, c.replLost)
		t.AddNote("%d writes replicated cross-region, %d cache flushes, %s total inter-region egress",
			c.replDone, c.flushed, FmtBytes(c.egress))
	}
	t.AddNote("op mix per request: 40%% cache reads, 15%% cache counter writes, 20%% local eventual reads,")
	t.AddNote("15%% consistent reads pinned to the primary region (fail fast when unreachable -> availability),")
	t.AddNote("10%% global-table writes; autoscaler (min 2, max 32, 70%% util, 2s tick) rebuilds the crashed fleet")

	st := &Table{
		Title:  "Straggler re-dispatch: IBF-named stragglers re-run on spare agents",
		Header: []string{"Rescue", "Makespan", "Stragglers", "Re-dispatched", "Rescued"},
	}
	spares := []int{0, 2}
	sres := sweep.Map(spares, func(_ int, s int) stragglerResult {
		return runStragglerRescue(seed, s)
	})
	for _, r := range sres {
		label := "off"
		if r.spares > 0 {
			label = fmt.Sprintf("%d spares", r.spares)
		}
		st.AddRow(
			label,
			FmtDur(r.makespan),
			fmt.Sprintf("%d", r.report.Stragglers),
			fmt.Sprintf("%d", r.report.Redispatched),
			fmt.Sprintf("%d", r.report.Rescued),
		)
	}
	if len(sres) == 2 && sres[1].makespan > 0 {
		st.AddNote("one of 4 workers runs 20x slow over %d x 50MB partitions; the coordinator tracks outstanding",
			sres[0].partCount)
		st.AddNote("work in a constant-size invertible Bloom filter and names the stragglers by decoding it")
		st.AddNote("(%s -> %s makespan, %s faster)", FmtDur(sres[0].makespan), FmtDur(sres[1].makespan),
			FmtRatio(float64(sres[0].makespan)/float64(sres[1].makespan)))
	}
	return []*Table{t, st}
}

// RunRegionFailover regenerates the multi-region failover tables: tail
// latency, availability, and cost per phase around a WAN partition plus
// crash storm, and the IBF straggler re-dispatch comparison.
func RunRegionFailover(seed uint64) []*Table {
	return runRegionFailoverTables(seed, 1)
}
