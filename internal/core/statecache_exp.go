package core

// The statecache scenario: the paper's §4 "fluid, function-colocated
// state" proposal made measurable. §3.1's serving numbers show what data
// shipping costs — every stateful operation from a function is a
// DynamoDB-class round trip (Table 1: ~11 ms for a 1KB pair). The
// statecache cluster instead colocates a CRDT replica with each hosting
// VM: reads serve from local memory, writes absorb as lattice deltas, a
// gossip anti-entropy process converges replicas, and a write-behind flush
// keeps the shared store durable.
//
// Long-running worker invocations (one container per VM, so each worker
// owns a replica) run an identical key-value workload in both variants:
//
//   - uncached: every read is a kvstore Get; every write is the
//     blackboard-pattern read-merge-write (fetch lattice, join, write
//     back conditionally) — the paper's §3.1 shape.
//   - cached: the same ops against Ctx.Cache(), with gossip interval and
//     replica count swept.
//
// The table reports per-op read latency (p50/p99), throughput, the
// measured staleness window (time from an originating write to its gossip
// visibility on another replica), and the state-tier cost — DynamoDB
// request units vs cache GB-seconds plus flush writes — extrapolated to
// an hour.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/crdt"
	"repro/internal/faas"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/statecache"
	"repro/internal/sweep"
)

const (
	// stateCacheWindow is the measurement window of virtual time.
	stateCacheWindow = 10 * time.Second
	// stateCacheKeys is the shared hot key set the workers contend on.
	stateCacheKeys = 64
	// stateCacheThink is the mean think time between a worker's ops.
	stateCacheThink = 2 * time.Millisecond
	// stateCacheMemoryMB sizes the worker function.
	stateCacheMemoryMB = 512
	// stateCacheFlushEvery is the cached variant's write-behind interval.
	stateCacheFlushEvery = time.Second
)

// stateCacheResult is one variant's measurement.
type stateCacheResult struct {
	label      string
	workers    int
	interval   time.Duration // 0 = uncached
	ops        int
	throughput float64
	p50, p99   time.Duration // read-op completion latency
	staleP99   time.Duration // gossip staleness window (cached only)
	gossipPer  int64         // gossip bytes per completed round (cached only)
	stateCost  float64       // state-tier $/hr: DDB units + cache GB-s
}

// stateCacheKey renders the shared counter key for slot i.
func stateCacheKey(i int) string { return fmt.Sprintf("ctr/%02d", i) }

// uncachedAdd is the blackboard-pattern counter write: read the stored
// lattice, join the delta, conditionally write back, retrying lost races.
func uncachedAdd(p *sim.Proc, c *Cloud, ctx *faas.Ctx, replica, key string, delta int64) {
	for attempt := 0; ; attempt++ {
		var ver int64
		ctr := crdt.NewPNCounter()
		it, err := c.DDB.Get(p, ctx.Node(), key, true)
		switch {
		case err == nil:
			if ctr, err = crdt.UnmarshalPNCounter(it.Value); err != nil {
				panic(err)
			}
			ver = it.Version
		case errors.Is(err, kvstore.ErrNotFound):
			ver = 0
		default:
			panic(err)
		}
		ctr.Add(replica, delta)
		if _, err := c.DDB.ConditionalPut(p, ctx.Node(), key, crdt.Marshal(ctr), ver); err == nil {
			return
		} else if !errors.Is(err, kvstore.ErrConditionFailed) {
			panic(err)
		}
		if attempt == 8 {
			panic("statecache exp: unbounded write contention")
		}
	}
}

// runStateCache measures one variant: workers concurrent stateful workers
// (one per VM/replica), cached via gossip at the given interval when
// cached is set, all against the same op mix and seed.
func runStateCache(seed uint64, workers int, interval time.Duration, cached bool) stateCacheResult {
	cfg := DefaultConfig()
	// One container per VM so each worker invocation owns one colocated
	// replica — the fluid-state deployment §4 sketches.
	cfg.Lambda.ContainersPerVM = 1
	c := NewCloudWith(seed, cfg)
	defer c.Close()

	var cl *statecache.Cluster
	if cached {
		sc := statecache.DefaultConfig()
		sc.GossipInterval = interval
		sc.FlushInterval = stateCacheFlushEvery
		sc.SketchStaleness = sketchStats()
		sc.Reconcile = reconGossip()
		cl = statecache.New("cache", c.Net, c.DDB, c.RNG.Fork(), sc, c.Catalog, c.Meter)
		c.Lambda.AttachStateCache(cl)
	}

	rec := newSummary("statecache-read")
	ops := 0
	end := sim.Time(stateCacheWindow)
	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		p := ctx.Proc()
		worker := int(payload[0])
		rng := simrand.New(seed*1000 + uint64(worker) + 1)
		think := simrand.Exponential{Mean: stateCacheThink}
		replica := fmt.Sprintf("w%d", worker)
		for p.Now() < end {
			p.Sleep(think.Sample(rng))
			key := stateCacheKey(rng.Intn(stateCacheKeys))
			if rng.Float64() < 0.2 {
				if cached {
					ctx.Cache().AddCounter(p, key, 1)
				} else {
					uncachedAdd(p, c, ctx, replica, key, 1)
				}
			} else {
				start := p.Now()
				if cached {
					ctx.Cache().Counter(p, key)
				} else {
					// Eventual reads: the cheaper, paper-typical serving
					// read; misses on unwritten keys read as zero.
					if it, err := c.DDB.Get(p, ctx.Node(), key, false); err == nil {
						if _, derr := crdt.UnmarshalPNCounter(it.Value); derr != nil {
							panic(derr)
						}
					} else if !errors.Is(err, kvstore.ErrNotFound) {
						panic(err)
					}
				}
				rec.Add(time.Duration(p.Now() - start))
			}
			ops++
		}
		return nil, nil
	}
	if err := c.Lambda.Register(faas.Function{
		Name: "worker", MemoryMB: stateCacheMemoryMB, Timeout: time.Minute, Handler: handler,
	}); err != nil {
		panic(err)
	}

	done := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		var wg sim.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			payload := []byte{byte(i)}
			p.Spawn(fmt.Sprintf("worker-%d", i), func(wp *sim.Proc) {
				defer wg.Done()
				if _, _, err := c.Lambda.Invoke(wp, "worker", payload); err != nil {
					panic(err)
				}
			})
			p.Sleep(10 * time.Millisecond) // stagger the cold-start wave
		}
		wg.Wait(p)
		if cl != nil {
			// Quiesce: writes have stopped; let anti-entropy finish and
			// settle the memory bill before reading the meter.
			p.Sleep(3*interval + time.Second)
			cl.Accrue(p.Now())
		}
		done = true
	})
	if !runKernelUntil(c.K, end+sim.Time(30*time.Second), sim.Time(time.Second),
		func() bool { return done }) {
		panic("statecache experiment did not finish")
	}

	stateCost := float64(c.Meter.Cost("dynamodb.read") + c.Meter.Cost("dynamodb.write") +
		c.Meter.Cost("statecache.gbsec"))
	res := stateCacheResult{
		workers:    workers,
		interval:   interval,
		ops:        ops,
		throughput: float64(ops) / stateCacheWindow.Seconds(),
		p50:        rec.Percentile(50),
		p99:        rec.Percentile(99),
		stateCost:  stateCost / stateCacheWindow.Hours(),
	}
	if cl != nil {
		res.label = "cached"
		res.staleP99 = cl.Staleness().Percentile(99)
		if rounds := cl.GossipRounds(); rounds > 0 {
			res.gossipPer = cl.GossipBytes().Total() / rounds
		}
	} else {
		res.label = "uncached"
	}
	return res
}

// RunStateCache regenerates the function-colocated state-cache table:
// identical stateful workloads against the DynamoDB-class store (the
// paper's data-shipping baseline) and against VM-colocated CRDT replicas
// converged by gossip, sweeping replica count and gossip interval.
func RunStateCache(seed uint64) []*Table {
	t := &Table{
		Title: "§4 fluid state: function-colocated CRDT cache vs storage round trips",
		Header: []string{"Variant", "Replicas", "Gossip", "Ops/s", "Read p50",
			"Read p99", "Stale p99", "Gossip/rnd", "State $/hr"},
	}
	type point struct {
		workers  int
		interval time.Duration
		cached   bool
	}
	points := []point{
		{4, 0, false},
		{2, 200 * time.Millisecond, true},
		{4, 200 * time.Millisecond, true},
		{8, 200 * time.Millisecond, true},
		{4, 50 * time.Millisecond, true},
		{4, time.Second, true},
	}
	// The replicas × gossip grid points are independent simulations keyed
	// by (seed, point parameters); the sweep engine farms them across
	// cores and commits results in point order.
	results := sweep.Map(points, func(_ int, pt point) stateCacheResult {
		return runStateCache(seed, pt.workers, pt.interval, pt.cached)
	})
	var uncachedP99, cachedP99 time.Duration
	for i, pt := range points {
		r := results[i]
		gossip, stale, perRound := "—", "—", "—"
		if pt.cached {
			gossip = FmtDur(r.interval)
			stale = FmtDur(r.staleP99)
			perRound = FmtBytes(r.gossipPer)
		}
		if !pt.cached {
			uncachedP99 = r.p99
		} else if pt.workers == 4 && pt.interval == 200*time.Millisecond {
			cachedP99 = r.p99
		}
		t.AddRow(
			r.label,
			fmt.Sprintf("%d", r.workers),
			gossip,
			fmt.Sprintf("%.0f", r.throughput),
			FmtDur(r.p50),
			FmtDur(r.p99),
			stale,
			perRound,
			fmt.Sprintf("$%.2f/hr", r.stateCost),
		)
	}
	if cachedP99 > 0 {
		t.AddNote("read p99 %v uncached vs %v cached at 4 replicas / 200ms gossip (%s lower)",
			FmtDur(uncachedP99), FmtDur(cachedP99),
			FmtRatio(float64(uncachedP99)/float64(cachedP99)))
	}
	t.AddNote("identical op mix both variants: 80%% reads / 20%% counter deltas over %d shared keys,",
		stateCacheKeys)
	t.AddNote("%s mean think time per worker; uncached writes are blackboard read-merge-write pairs",
		FmtDur(stateCacheThink))
	t.AddNote("state $/hr = DynamoDB request units + cache GB-seconds + write-behind flushes (%s cadence);",
		FmtDur(stateCacheFlushEvery))
	t.AddNote("staleness = originating write -> gossip visibility on another replica (measured, p99);")
	t.AddNote("gossip/rnd = anti-entropy bytes per completed round, all three legs (-recon swaps the")
	t.AddNote("per-key digest leg for an IBF set-reconciliation summary; see the millionkey experiment)")
	return []*Table{t}
}
