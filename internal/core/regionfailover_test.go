package core

import (
	"runtime"
	"slices"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// TestRegionFailoverDeterminism is the chaos determinism suite: a chaotic
// run — partitions severing the trunk mid-flight, a crash storm reclaiming
// the whole secondary fleet, aborted gossip rounds, parked replication
// queues — must render byte-identical tables for every seed at any sweep
// worker count, because every injection is an ordinary simulator event.
// Runs at reduced scale (a 6s window instead of 30s) so 20 seeds × 3
// worker counts stay cheap; the full-scale seed-1 artifact is pinned by
// the golden test and swept by TestSweepWorkerCountInvariance.
func TestRegionFailoverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos determinism sweeps in -short mode")
	}
	seeds := 20
	if raceEnabled {
		seeds = 5 // the race detector ~10×es simulation time
	}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	slices.Sort(counts)
	counts = slices.Compact(counts)
	defer sweep.SetWorkers(0)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		var want string
		for i, w := range counts {
			sweep.SetWorkers(w)
			got := renderAll(runRegionFailoverTables(seed, 0.2))
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d diverged at %d workers vs %d:\ngot:\n%s\nwant:\n%s",
					seed, w, counts[0], got, want)
			}
		}
		if !strings.Contains(want, "chaos") {
			t.Fatalf("seed %d: no chaos rows rendered", seed)
		}
	}
}

// TestRegionFailoverReportsAvailabilityHole sanity-checks the headline
// phenomenon at reduced scale: the chaos run's partition phase must lose
// availability (CP reads fail fast in the severed region) and the post
// phase must recover to 100%.
func TestRegionFailoverReportsAvailabilityHole(t *testing.T) {
	res := runRegionFailover(1, 2, true, 0.2)
	pre, during, post := &res.phases[0], &res.phases[1], &res.phases[2]
	availOf := func(ph *rfPhase) float64 {
		return float64(ph.served) / float64(ph.served+ph.failed)
	}
	if during.failed == 0 {
		t.Fatalf("no requests failed during the partition")
	}
	if a := availOf(during); a > 0.99 || a < 0.80 {
		t.Errorf("partition-phase availability = %.4f, want a visible but partial hole", a)
	}
	if post.failed != 0 {
		t.Errorf("post-heal phase still failing: %d", post.failed)
	}
	if pre.served == 0 || post.served == 0 {
		t.Errorf("phases did not serve: pre %d post %d", pre.served, post.served)
	}
	if res.aborted == 0 {
		t.Errorf("partition aborted no gossip rounds")
	}
	if res.crashedVM == 0 {
		t.Errorf("crash storm reclaimed no VMs")
	}
	// The control run must be fully available throughout.
	ctl := runRegionFailover(1, 2, false, 0.2)
	for i := range ctl.phases {
		if ctl.phases[i].failed != 0 {
			t.Errorf("control phase %s failed %d requests", rfPhases[i], ctl.phases[i].failed)
		}
	}
}

// BenchmarkRegionFailover times the full-scale experiment end to end —
// both variants plus the straggler comparison, exactly what faasbench
// regenerates.
func BenchmarkRegionFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runRegionFailoverTables(1, 1)
	}
}
