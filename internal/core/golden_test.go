package core

import "testing"

// Golden end-to-end traces: the rendered output of the calibrated
// experiments at seed 1, captured before this PR's changes landed. These
// extend the kvstore parity-test pattern to whole experiments: a refactor
// of the queue, loadgen, or faas layers must leave every byte — latencies
// down to 100µs formatting, costs to the cent — of the calibrated
// artifacts unchanged. Regenerate a constant only when a PR deliberately
// recalibrates, and say so in EXPERIMENTS.md.
var goldenExperiments = map[string]string{
	"table1": `Table 1: latency of communicating 1KB (means; simulated reproduction)
                    Func. Invoc. (1KB)  Lambda I/O (S3)  Lambda I/O (DynamoDB)  EC2 I/O (S3)  EC2 I/O (DynamoDB)  EC2 NW (0MQ)
--------------------------------------------------------------------------------------------------------------------------------
Latency (measured)  299.9ms             107.0ms          10.9ms                 106.9ms       10.9ms              289µs       
Compared to best    1038x               371x             37.6x                  370x          37.7x               1.00x       
Paper reported      303ms               108ms            11ms                   106ms         11ms                290µs       
Paper ratios        1,045x              372x             37.9x                  365x          37.9x               1x          
note: trials: 1,000 invocations; 5,000 I/O pairs per storage column; 10,000 ZeroMQ round trips
`,
	"serving": `§3.1 Prediction serving: mean latency per 10-document batch (1,000 batches)
Implementation                                Measured  Paper
---------------------------------------------------------------
Lambda, model fetched from S3, results to S3  549.8ms   559ms
Lambda, compiled-in model, results to SQS     448.7ms   447ms
EC2 m5.large + SQS                            13.2ms    13ms 
EC2 m5.large + ZeroMQ                         2.9ms     2.8ms
note: EC2+SQS vs optimized Lambda: 34x faster (paper says 27x; the paper's own numbers give 447/13 = 34x)
note: EC2+ZeroMQ vs optimized Lambda: 156x faster (paper reports 127x)
`,
	"servingcost": `§3.1 Serving cost at 1M messages/s
Approach            Basis                             Cost per hour  Paper 
-----------------------------------------------------------------------------
SQS requests alone  1.1 requests/msg x 3.6B msgs/hr   $1584          $1,584
EC2 m5.large fleet  291 instances at 3448 msg/s each  $27.94         $27.84
note: cost ratio: 57x in EC2's favor (paper reports 57x)
note: instance throughput measured over a 30s steady-state window (paper: ~3,500 req/s)
`,
	"regionscale": `Region scale: one logical KV table under 4,000 req/s open-loop load
Shards  Done req/s  Speedup  p50      p99      Hottest shard  Storage $/hr
----------------------------------------------------------------------------
1       958         1.00x    3.03s    6.02s    100.0%         $2.59/hr    
2       1910        1.99x    2.08s    4.11s    50.0%          $5.16/hr    
4       3817        3.98x    129.1ms  382.6ms  25.0%          $10.30/hr   
8       3983        4.16x    5.5ms    8.9ms    13.0%          $10.75/hr   
note: per-shard front end limited to 4 concurrent requests (~957 req/s capacity each)
note: open-loop Poisson arrivals from 8 client hosts over 8s of virtual time; 50% writes,
note: 25% consistent reads, 25% eventual reads across 100000 keys (FNV-1a hash routing)
`,
	"statecache": `§4 fluid state: function-colocated CRDT cache vs storage round trips
Variant   Replicas  Gossip   Ops/s  Read p50  Read p99  Stale p99  Gossip/rnd  State $/hr
-------------------------------------------------------------------------------------------
uncached  4         —        419    5.4ms     6.8ms     —          —           $0.76/hr  
cached    2         200.0ms  923    400ns     497ns     198.0ms    6.7KB       $0.37/hr  
cached    4         200.0ms  1790   401ns     498ns     337.5ms    10.4KB      $0.72/hr  
cached    8         200.0ms  3647   400ns     498ns     417.6ms    20.5KB      $1.49/hr  
cached    4         50.0ms   1790   400ns     498ns     95.6ms     5.1KB       $0.73/hr  
cached    4         1.00s    1790   400ns     498ns     1.25s      14.6KB      $0.72/hr  
note: read p99 6.8ms uncached vs 498ns cached at 4 replicas / 200ms gossip (13602x lower)
note: identical op mix both variants: 80% reads / 20% counter deltas over 64 shared keys,
note: 2.0ms mean think time per worker; uncached writes are blackboard read-merge-write pairs
note: state $/hr = DynamoDB request units + cache GB-seconds + write-behind flushes (1.00s cadence);
note: staleness = originating write -> gossip visibility on another replica (measured, p99);
note: gossip/rnd = anti-entropy bytes per completed round, all three legs (-recon swaps the
note: per-key digest leg for an IBF set-reconciliation summary; see the millionkey experiment)
`,
	"regionfailover": `Region failover: 2 regions, 200 req/s each, trunk severed + crash storm for the middle third
Variant  Phase   Done req/s  p50      p99      p99.9    Avail    $/hr    
---------------------------------------------------------------------------
control  pre     402         304.5ms  1.08s    1.31s    100.00%  $2.68/hr
control  during  394         303.5ms  393.2ms  419.5ms  100.00%  $2.58/hr
control  post    402         304.0ms  393.7ms  422.0ms  100.00%  $2.64/hr
chaos    pre     401         305.1ms  1.11s    1.41s    99.85%   $2.68/hr
chaos    during  365         301.4ms  375.5ms  1.11s    92.76%   $2.09/hr
chaos    post    402         303.4ms  393.4ms  422.2ms  100.00%  $3.03/hr
note: chaos: trunk 0-1 severed at 10.00s for 10.00s; all 6 secondary-region VMs crash-reclaimed at the same instant
note: chaos run: 6/2922 gossip rounds aborted, 0 replication batches severed (all writes re-queued),
note: 2555 writes replicated cross-region, 1616 cache flushes, 13.20MB total inter-region egress
note: op mix per request: 40% cache reads, 15% cache counter writes, 20% local eventual reads,
note: 15% consistent reads pinned to the primary region (fail fast when unreachable -> availability),
note: 10% global-table writes; autoscaler (min 2, max 32, 70% util, 2s tick) rebuilds the crashed fleet
Straggler re-dispatch: IBF-named stragglers re-run on spare agents
Rescue    Makespan  Stragglers  Re-dispatched  Rescued
--------------------------------------------------------
off       1.30s     0           0              0      
2 spares  650.0ms   1           1              1      
note: one of 4 workers runs 20x slow over 8 x 50MB partitions; the coordinator tracks outstanding
note: work in a constant-size invertible Bloom filter and names the stragglers by decoding it
note: (1.30s -> 650.0ms makespan, 2.00x faster)
`,
	"retrystorm": `Retry storm: 450 req/s through a 64-worker client pool, hot shard 20x slower for the middle third
Policy       Phase   Done req/s  p50      p99      Avail    HotQ  PoolQ
-------------------------------------------------------------------------
no-retry     pre     449         5.4ms    6.8ms    100.00%  0     0    
no-retry     during  303         5.8ms    250.0ms  67.18%   1006  0    
no-retry     post    428         5.5ms    250.0ms  96.27%   1014  0    
naive-retry  pre     449         5.4ms    6.8ms    100.00%  0     0    
naive-retry  during  133         245.3ms  1.10s    29.55%   2012  273  
naive-retry  post    363         5.7ms    1.09s    81.71%   2029  275  
full-policy  pre     449         5.4ms    6.8ms    100.00%  0     0    
full-policy  during  334         5.3ms    211.3ms  74.20%   6     0    
full-policy  post    444         5.4ms    6.8ms    99.87%   0     0    
full+hedge   pre     449         5.4ms    6.8ms    100.00%  0     0    
full+hedge   during  315         5.3ms    123.2ms  69.87%   6     0    
full+hedge   post    444         5.4ms    6.8ms    99.80%   0     0    
note: no-retry: 13442 calls, 0 retries, 1644 timeouts, 0 hedges, 0 breaker fast-fails (0 trips), 0 shed, 0 budget-denied, 0 gave up in pool
note: naive-retry: 10224 calls, 2383 retries, 3151 timeouts, 0 hedges, 0 breaker fast-fails (0 trips), 0 shed, 0 budget-denied, 3218 gave up in pool
note: full-policy: 13442 calls, 248 retries, 2 timeouts, 0 hedges, 1168 breaker fast-fails (21 trips), 246 shed, 0 budget-denied, 0 gave up in pool
note: full+hedge: 13442 calls, 335 retries, 0 timeouts, 233 hedges, 1366 breaker fast-fails (23 trips), 335 shed, 0 budget-denied, 0 gave up in pool
note: Zipf(s=1.1) keys over 4096 ranks put 34% of traffic on shard 1 (4 slots, ~4.15ms/op);
note: latency percentiles are over every call, success or failure — a timeout is latency the caller saw;
note: HotQ/PoolQ = peak hot-shard admission queue / client-pool backlog per phase (sampled at 50ms);
note: deadline 250.0ms, patience 100.0ms; full policy: backoff 20.0ms..500.0ms, budget 0.2/call (burst 20),
note: breaker window 32 @ 50% (250ms cooldown), server queue bound 6; hedge after 25.0ms
Hot tenant: 12 polite tenants vs 1 abuser on 32 connections, rate-window jail off/on
Jail  Tenant  Done req/s  p50     p99     Rejected
----------------------------------------------------
off   polite  159         35.3ms  40.8ms  0       
off   abuser  798         35.2ms  40.6ms  0       
on    polite  246         5.7ms   29.6ms  0       
on    abuser  273         1.3ms   25.1ms  41268   
note: jail: >30 requests per caller per 100ms window earns a 100ms ban (rejections are fast and cheap);
note: polite tenants think ~40ms; the abuser's 32 connections think ~5ms each, all from one caller identity
`}

// TestCalibratedExperimentsMatchGoldenTraces replays each experiment at
// seed 1 and diffs the rendered artifact byte-for-byte.
func TestCalibratedExperimentsMatchGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiment traces in -short mode")
	}
	for id, want := range goldenExperiments {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("golden experiment %q missing from registry", id)
		}
		got := ""
		for _, tb := range e.Run(1) {
			got += tb.Render()
		}
		if got != want {
			t.Errorf("experiment %q diverged from its golden trace:\ngot:\n%s\nwant:\n%s", id, got, want)
		}
	}
}
