package core

// The region-scale scenario: the ROADMAP's "heavy traffic from millions of
// users" pointed at one logical DynamoDB table. An open-loop Poisson client
// population offers a fixed aggregate request rate while the table's shard
// count grows. Each shard's front end has finite service concurrency
// (kvstore.Config.ShardConcurrency), so a single partition has a real
// throughput ceiling — roughly ShardConcurrency / mean-op-latency requests
// per second — and the measurement shows aggregate completed throughput
// rising near-linearly with the shard count until the offered load is met.
//
// This is the mechanism the paper's storage-funnel critique implies: when
// all function state flows through a managed store, the store's partition
// count *is* the application's scalability knob.

import (
	"fmt"
	"time"

	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/sweep"
)

const (
	// regionOfferedRate is the aggregate open-loop request rate, chosen to
	// saturate one shard (~960 req/s at ShardConcurrency 4) roughly
	// four times over so the 1→4 shard speedup is visible.
	regionOfferedRate = 4000.0
	// regionWindow is the measurement window of virtual time.
	regionWindow = 8 * time.Second
	// regionShardConcurrency is each shard front end's service slots.
	regionShardConcurrency = 4
	// regionClients is the number of driver hosts spreading the load.
	regionClients = 8
	// regionKeySpace is how many distinct user keys the load touches.
	regionKeySpace = 100000
	// regionValueBytes is the written value size (a small user record).
	regionValueBytes = 256
)

// regionKey renders "user/%07d" for v < 10^7 without fmt: the key is built
// once per request on the load generator's hot path, where Sprintf's
// formatting machinery dominated the client-side cost.
func regionKey(v uint64) string {
	var b [12]byte
	copy(b[:], "user/")
	for i := len(b) - 1; i >= 5; i-- {
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[:])
}

// regionResult is one shard count's measurement.
type regionResult struct {
	shards     int
	offered    float64 // requests/second presented
	completed  int     // requests finished inside the window
	throughput float64 // completed / window
	p50, p99   time.Duration
	hotShare   float64 // hottest shard's fraction of served requests
	costPerHr  float64 // metered storage cost extrapolated to an hour
}

// runRegionScale measures one shard count under the standard scenario.
func runRegionScale(seed uint64, shards int) regionResult {
	cfg := DefaultConfig()
	cfg.DDB.ShardCount = shards
	cfg.DDB.ShardConcurrency = regionShardConcurrency
	c := NewCloudWith(seed, cfg)
	defer c.Close()

	clients := make([]*netsim.Node, regionClients)
	for i := range clients {
		clients[i] = c.ClientNode(fmt.Sprintf("region-client-%d", i))
	}

	rec := newSummary("region-kv")
	completed := 0
	value := make([]byte, regionValueBytes)
	request := func(p *sim.Proc, seq int, key string) {
		node := clients[seq%len(clients)]
		start := p.Now()
		if seq%2 == 0 {
			if _, err := c.DDB.Put(p, node, key, value); err != nil {
				panic(err)
			}
		} else {
			// Misses on not-yet-written keys are fine: they bill and
			// time like any other read.
			_, _ = c.DDB.Get(p, node, key, seq%4 == 1)
		}
		rec.Add(time.Duration(p.Now() - start))
		completed++
	}
	if populationLoad() {
		// Aggregated mode: the same offered rate as the fluid sum of one
		// Poisson source per user, each touching its own record; the
		// thinned client identity replaces the sequence-hash key choice.
		users := configuredUsers(regionKeySpace)
		pop := loadgen.NewPopulation(c.RNG.Fork(), c.RNG.Fork(),
			users, regionOfferedRate/float64(users))
		pop.Run(c.K, regionWindow, func(p *sim.Proc, seq, client int) {
			request(p, seq, regionKey(uint64(client)%regionKeySpace))
		})
	} else {
		gen := loadgen.New(c.RNG.Fork(), loadgen.Poisson{Rate: regionOfferedRate})
		gen.Run(c.K, regionWindow, func(p *sim.Proc, seq int) {
			// Knuth-hash the sequence number into the key space so the key
			// choice is deterministic and spread across shards.
			request(p, seq, regionKey(uint64(seq)*2654435761%regionKeySpace))
		})
	}
	c.K.RunUntil(sim.Time(regionWindow))

	served := int64(0)
	hot := int64(0)
	for _, st := range c.DDB.ShardStats() {
		served += st.Requests
		if st.Requests > hot {
			hot = st.Requests
		}
	}
	hotShare := 0.0
	if served > 0 {
		hotShare = float64(hot) / float64(served)
	}
	return regionResult{
		shards:     shards,
		offered:    regionOfferedRate,
		completed:  completed,
		throughput: float64(completed) / regionWindow.Seconds(),
		p50:        rec.Percentile(50),
		p99:        rec.Percentile(99),
		hotShare:   hotShare,
		costPerHr:  float64(c.Meter.Total()) / regionWindow.Hours(),
	}
}

// RunRegionScale regenerates the region-scale sharding table: aggregate
// throughput, completion latency, hot-shard skew, and extrapolated hourly
// storage cost for a fixed offered load as the table's partition count
// doubles from 1 to 8.
func RunRegionScale(seed uint64) []*Table {
	t := &Table{
		Title: "Region scale: one logical KV table under 4,000 req/s open-loop load",
		Header: []string{"Shards", "Done req/s", "Speedup", "p50", "p99",
			"Hottest shard", "Storage $/hr"},
	}
	// Each shard count is an independent simulation of (seed, shards), so
	// the sweep engine fans the points across cores; rows commit in sweep
	// order, keeping the rendered table byte-identical to a sequential run.
	results := sweep.Map([]int{1, 2, 4, 8}, func(_ int, shards int) regionResult {
		return runRegionScale(seed, shards)
	})
	var base float64
	for _, r := range results {
		if base == 0 {
			base = r.throughput
		}
		t.AddRow(
			fmt.Sprintf("%d", r.shards),
			fmt.Sprintf("%.0f", r.throughput),
			FmtRatio(r.throughput/base),
			FmtDur(r.p50),
			FmtDur(r.p99),
			fmt.Sprintf("%.1f%%", r.hotShare*100),
			fmt.Sprintf("$%.2f/hr", r.costPerHr),
		)
	}
	t.AddNote("per-shard front end limited to %d concurrent requests (~%.0f req/s capacity each)",
		regionShardConcurrency,
		float64(regionShardConcurrency)/(4.18e-3))
	t.AddNote("open-loop Poisson arrivals from %d client hosts over %s of virtual time; 50%% writes,",
		regionClients, regionWindow)
	t.AddNote("25%% consistent reads, 25%% eventual reads across %d keys (FNV-1a hash routing)",
		regionKeySpace)
	return []*Table{t}
}
