// Package core is the reproduction's measurement harness: it assembles the
// simulated cloud (every substrate the paper's evaluation touches), defines
// the calibration constants with their provenance, and implements one
// experiment per table and figure in the paper. cmd/faasbench and the root
// bench_test.go are thin wrappers over this package.
package core

import (
	"time"

	"repro/internal/compute"
	"repro/internal/faas"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/objectstore"
	"repro/internal/queue"
)

// Calibration constants. Everything here is a *primitive* (a per-operation
// latency, a throughput, a price); every number the experiments report is
// derived by running the simulated system. Provenance:
//
//	Paper-measured primitives (Table 1 and §3.1):
//	  - Lambda no-op invocation with 1KB argument: 303 ms mean
//	    -> faas.DefaultConfig().InvokeOverhead (294 ms median) + warm
//	       dispatch + payload shipping.
//	  - S3 1KB write+read: 106-108 ms -> objectstore OpLatency (52 ms
//	    median per op).
//	  - DynamoDB 1KB write+read: 11 ms -> kvstore OpLatency (4.15 ms
//	    median per op).
//	  - ZeroMQ 1KB round trip: 290 µs -> netsim same-rack one-way delay
//	    (127-157 µs) + NIC serialization + 2 µs software overhead.
//	  - 100 MB S3 fetch from Lambda: 2.49 s -> objectstore PerConnBps
//	    (41.2 MB/s per connection).
//	  - Optimizer over 100 MB at 640 MB memory: 0.59 s -> faas
//	    FullCoreComputeMBps (468.6) x memory share (640/1769).
//	  - Optimizer over 100 MB on m4.large: 0.10 s -> compute.M4Large
//	    ComputeMBps (1000).
//	  - Warm 100 MB EBS read: 0.04 s -> compute VolumeConfig WarmBps
//	    (2.5 GB/s page cache).
//	  - Per-function bandwidth 538 Mbps (Wang et al. [26]) -> faas
//	    VMNICBps; packing 20 containers per VM.
//
//	Public AWS prices, Fall 2018 (pricing.Fall2018): Lambda $0.20/M
//	requests + $16.67e-6/GB-s; m4.large $0.10/hr; m5.large $0.096/hr;
//	S3 $5e-6/PUT + $0.4e-6/GET; DynamoDB on-demand $0.25/M read units +
//	$1.25/M write units; SQS $0.40/M requests.
//
//	Reconstructed assumptions (the paper does not state them; full
//	derivations in EXPERIMENTS.md):
//	  - SQS-triggered invocation adds an event-source dispatch delay of
//	    105-145 ms, chosen so the optimized serving variant lands at the
//	    measured 447 ms/batch.
//	  - Election blackboard records are padded to 500 B so that a
//	    1,000-node board scan costs ~123 read units, reproducing the
//	    "$450/hr at minimum" claim.
//	  - One EC2 serving core spends ~580 µs of CPU per message, chosen
//	    so an m5.large sustains the paper's ~3,500 msg/s and the fleet
//	    for 1M msg/s is 290 instances.
const (
	// TrainingBatchBytes is the paper's training batch size.
	TrainingBatchBytes = int64(100e6)
	// TrainingCorpusBytes is the paper's corpus size (90 GB).
	TrainingCorpusBytes = int64(90e9)
	// TrainingEpochs is the paper's pass count.
	TrainingEpochs = 10
	// TrainingLambdaMemoryMB is the paper's function size.
	TrainingLambdaMemoryMB = 640

	// ServingBatchSize is SQS's (and the paper's) batch cap.
	ServingBatchSize = 10
	// ServingCPUPerMessage is the reconstructed per-message CPU cost on
	// an EC2 serving core (calibrated to ~3,500 msg/s per m5.large).
	ServingCPUPerMessage = 580 * time.Microsecond
	// ServingTargetRate is the cost analysis's offered load.
	ServingTargetRate = 1e6 // messages per second

	// ElectionClusterForCost is the cost analysis's cluster size.
	ElectionClusterForCost = 1000
	// LambdaLifetime is the invocation cap the 1.9% figure divides by.
	LambdaLifetime = 15 * time.Minute

	// SSDBandwidthMBps is the single-SSD reference the paper compares
	// per-function bandwidth against (order of 2-3 GB/s in 2018).
	SSDBandwidthMBps = 2500.0

	// FirecrackerColdStart is footnote 5's microVM startup time.
	FirecrackerColdStart = 125 * time.Millisecond
)

// Config bundles every substrate's configuration so experiments can apply
// targeted overrides (ablations) without touching the calibrated defaults.
type Config struct {
	Latency netsim.LatencyProfile
	S3      objectstore.Config
	DDB     kvstore.Config
	SQS     queue.Config
	Lambda  faas.Config
	EC2     compute.Config
}

// DefaultConfig returns the fully calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Latency: netsim.DefaultLatency(),
		S3:      objectstore.DefaultConfig(),
		DDB:     kvstore.DefaultConfig(),
		SQS:     queue.DefaultConfig(),
		Lambda:  faas.DefaultConfig(),
		EC2:     compute.DefaultConfig(),
	}
}
