package core

import (
	"strings"
	"testing"
)

// TestFaaSScaleShape is the tentpole's acceptance gate: cold-start fraction
// and tail latency must fall as provisioned concurrency meets the flash
// crowds, the autoscaler must land near the one-time-cost point, and the
// whole run must be seed-deterministic.
func TestFaaSScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("faas-scale scenario in -short mode")
	}
	r0 := runFaaSScale(1, 0)
	r32 := runFaaSScale(1, 32)
	auto := runFaaSScale(1, -1)

	// The reaper guarantees every burst cold-starts an unprovisioned
	// fleet: a meaningful cold fraction, concentrated in the tail.
	if r0.coldFrac < 0.02 {
		t.Errorf("unprovisioned cold fraction = %.3f, want >= 0.02", r0.coldFrac)
	}
	if r32.coldFrac != 0 {
		t.Errorf("fully provisioned cold fraction = %.3f, want 0", r32.coldFrac)
	}
	if r32.p99 >= r0.p99 {
		t.Errorf("provisioned p99 %v not below unprovisioned p99 %v", r32.p99, r0.p99)
	}
	// The autoscaler pays the first burst cold, then serves warm: a
	// fraction well below the every-burst-cold baseline.
	if auto.coldFrac >= r0.coldFrac/2 {
		t.Errorf("autoscaled cold fraction = %.3f, want < half of %.3f", auto.coldFrac, r0.coldFrac)
	}
	if auto.scaleTarget <= 0 {
		t.Errorf("autoscaler final target = %d, want > 0", auto.scaleTarget)
	}
	// Provisioned capacity is not free: the bill must include keep-warm.
	if r32.costPerHr <= r0.costPerHr {
		t.Errorf("provisioned $/hr %.2f not above unprovisioned %.2f", r32.costPerHr, r0.costPerHr)
	}
	// The offered load drains inside the window at every level.
	for _, r := range []faasScaleResult{r0, r32, auto} {
		if r.submitted == 0 || r.completed != r.submitted {
			t.Errorf("%s: completed %d of %d submitted", r.provisioned, r.completed, r.submitted)
		}
	}

	if again := runFaaSScale(1, -1); again != auto {
		t.Errorf("faasscale is nondeterministic: %+v vs %+v", again, auto)
	}
}

// TestFaaSScaleTable checks the rendered artifact's shape.
func TestFaaSScaleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("faas-scale scenario in -short mode")
	}
	tb := RunFaaSScale(1)[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 3 fixed levels + auto", len(tb.Rows))
	}
	if !strings.HasPrefix(tb.Rows[3][0], "auto") {
		t.Errorf("last row = %q, want the autoscaled sweep point", tb.Rows[3][0])
	}
	p99at0 := parseDur(t, cell(t, tb, "0", 3))
	p99at32 := parseDur(t, cell(t, tb, "32", 3))
	if p99at32 >= p99at0 {
		t.Errorf("p99 did not fall with provisioning: %v at 32 vs %v at 0", p99at32, p99at0)
	}
	if cold := cell(t, tb, "32", 4); cold != "0.0%" {
		t.Errorf("cold starts at 32 provisioned = %s, want 0.0%%", cold)
	}
}
