package core

import (
	"fmt"
	"strings"

	"repro/internal/trends"
)

// RunFigure1 regenerates Figure 1: the Google Trends comparison of
// "Serverless" and "Map Reduce" interest, 2004-2018, as an ASCII chart plus
// the figure's headline statistics. The underlying series are synthetic
// shape-faithful reconstructions (Google's query logs are proprietary); the
// claim being reproduced is that serverless interest reached MapReduce's
// historic peak by publication time.
func RunFigure1(uint64) []*Table {
	mr := trends.MapReduce()
	sl := trends.Serverless()
	mrPeak, mrWhen := mr.Peak()
	slPeak, slWhen := sl.Peak()

	t := &Table{
		Title:  "Figure 1: Google Trends, Serverless vs MapReduce (synthetic reconstruction)",
		Header: []string{"Series", "Peak", "Peak quarter", "2018Q4 value"},
	}
	t.AddRow("MapReduce", fmt.Sprintf("%.1f", mrPeak), mrWhen.Label(), fmt.Sprintf("%.1f", mr.Last().Value))
	t.AddRow("Serverless", fmt.Sprintf("%.1f", slPeak), slWhen.Label(), fmt.Sprintf("%.1f", sl.Last().Value))
	if x := trends.CrossoverQuarter(); x != nil {
		t.AddNote("serverless interest first exceeds MapReduce's in %s", x.Label())
	}
	t.AddNote("serverless 2018Q4 / MapReduce historic peak = %.2f (paper: \"recently matched\")",
		sl.Last().Value/mrPeak)
	for _, line := range strings.Split(strings.TrimRight(trends.Chart(12), "\n"), "\n") {
		t.AddNote("%s", line)
	}
	return []*Table{t}
}
