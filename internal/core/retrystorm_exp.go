package core

// The retrystorm scenario: the resilience fabric (internal/resilience)
// measured under the failure mode it exists to prevent — a metastable
// retry storm. Open-loop Poisson traffic flows through a bounded pool of
// client workers (a service's RPC thread pool) into a 4-shard DynamoDB
// table; a Zipf-skewed key popularity concentrates ~1/3 of traffic on the
// shard owning the hottest key, and the chaos engine slows that shard 20×
// for the middle third of the window.
//
// Four client policies face the same fault:
//
//   - no-retry: one attempt under a 250ms deadline. Hot-shard calls time
//     out during the fault; cold traffic is untouched. The abandoned
//     attempts still queue and run at the shard (billed wasted work), so
//     a backlog builds that takes seconds to drain after the heal.
//   - naive-retry: 4 immediate attempts, no backoff, no budget. Every
//     timeout spawns more abandoned work, the hot calls occupy pool
//     workers 4× longer, the pool exhausts, and *cold* requests — two
//     thirds of all traffic — start failing too. The overload outlives
//     the fault: the backlog keeps every retry timing out after the
//     shard heals. That is the metastable state.
//   - full-policy: backoff+jitter, a shared retry budget, per-shard
//     circuit breakers, and server-side admission control (a bounded
//     queue that sheds on arrival). Failures are fast and cheap, the
//     pool stays healthy, the shard queue stays shallow, and recovery
//     after the heal is immediate.
//   - full+hedge: the full policy plus tail-latency hedging (speculative
//     second attempts after a p99-class delay).
//
// Latency percentiles are over every call, success or failure — fail-fast
// is the point, and a 250ms timeout is the latency the caller saw.
//
// A second table isolates the admission jail: one abusive tenant hammering
// from 32 connections alongside 12 polite tenants, with the per-caller
// rate-window jail off and on.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/kvstore"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/sweep"
)

const (
	// rsWindow is the full-scale measurement window; the hot shard is
	// slowed for its middle third.
	rsWindow = 30 * time.Second
	// rsRate is the open-loop arrival rate.
	rsRate = 450.0
	// rsKeys / rsZipfS shape key popularity: Zipf(s=1.1) over 4096 keys.
	rsKeys  = 4096
	rsZipfS = 1.1
	// rsSlowFactor is the chaos slowdown applied to the hot shard.
	rsSlowFactor = 20.0
	// rsWorkers is the client worker pool (the RPC thread pool whose
	// exhaustion turns a hot-shard fault into a full outage).
	rsWorkers = 64
	// rsPatience is how long an arrival waits for a free worker before the
	// caller gives up.
	rsPatience = 100 * time.Millisecond
	// rsDeadline / rsAttempts / rsBackoff parameterize the retrying
	// policies.
	rsDeadline   = 250 * time.Millisecond
	rsAttempts   = 4
	rsBackoff    = 20 * time.Millisecond
	rsMaxBackoff = 500 * time.Millisecond
	// rsHedgeAfter is the full+hedge policy's speculative-attempt delay
	// (a p99-class healthy latency).
	rsHedgeAfter = 25 * time.Millisecond
	// rsMaxQueue bounds each shard's admission queue for the shedding
	// policies: 6 waiters × ~21ms degraded per-slot drain + one 83ms
	// degraded service time still beats the 250ms deadline, so every
	// admitted request can finish — bounded queues preserve goodput.
	rsMaxQueue = 6
)

// rsPhases labels the measurement phases around the fault.
var rsPhases = [3]string{"pre", "during", "post"}

// rsPolicy is one client-policy sweep point.
type rsPolicy struct {
	name    string
	cfg     resilience.Config
	budget  bool // shared retry budget
	breaker bool // per-shard circuit breakers
	shed    bool // server-side bounded-queue admission control
}

// rsPolicies returns the sweep points, honoring the -policy flag.
func rsPolicies() []rsPolicy {
	all := []rsPolicy{
		{name: "no-retry",
			cfg: resilience.Config{Attempts: 1, Deadline: rsDeadline}},
		{name: "naive-retry",
			cfg: resilience.Config{Attempts: rsAttempts, Deadline: rsDeadline}},
		{name: "full-policy",
			cfg: resilience.Config{Attempts: rsAttempts, Deadline: rsDeadline,
				BaseBackoff: rsBackoff, MaxBackoff: rsMaxBackoff},
			budget: true, breaker: true, shed: true},
		{name: "full+hedge",
			cfg: resilience.Config{Attempts: rsAttempts, Deadline: rsDeadline,
				BaseBackoff: rsBackoff, MaxBackoff: rsMaxBackoff,
				HedgeAfter: rsHedgeAfter},
			budget: true, breaker: true, shed: true},
	}
	want := configuredPolicy()
	if want == "" || want == "all" {
		return all
	}
	for _, p := range all {
		if p.name == want {
			return []rsPolicy{p}
		}
	}
	return all
}

// PolicyNames lists the retrystorm policy variants the -policy flag
// accepts (plus "all").
func PolicyNames() []string {
	names := make([]string, 0, 4)
	for _, p := range rsPolicies() {
		names = append(names, p.name)
	}
	return names
}

// rsPhaseM is one phase's measurements.
type rsPhaseM struct {
	rec    stats.Summary
	served int
	failed int
	hotQ   int // peak hot-shard admission-queue depth observed
	poolQ  int // peak client-pool backlog observed
}

// rsResult is one policy's full measurement.
type rsResult struct {
	phases  [3]rsPhaseM
	cstats  resilience.Stats // client-side policy counters (shared sink)
	gaveUp  int64            // arrivals that outwaited rsPatience
	shed    int64            // server-side admission sheds (all shards)
	trips   int64            // breaker trips (all shards)
	hotCost pricing.USD      // total metered cost of the run
}

// rsKey renders the key for popularity rank r.
func rsKey(r int) string { return fmt.Sprintf("key/%04d", r) }

// rsZipf is the shared popularity curve (CDF precomputed once; reads are
// concurrency-safe, so sweep workers share it).
var rsZipf = loadgen.NewZipf(rsKeys, rsZipfS)

// rsHotShard returns the shard owning the hottest key, and the fraction of
// traffic the popularity curve sends to it.
func rsHotShard(ddb *kvstore.Store) (shard int, share float64) {
	shard = ddb.ShardFor(rsKey(0))
	for r := 0; r < rsKeys; r++ {
		if ddb.ShardFor(rsKey(r)) == shard {
			share += rsZipf.Share(r+1) - rsZipf.Share(r)
		}
	}
	return shard, share
}

// runRetryStorm measures one policy. scale shrinks the window (tests run
// at scale < 1); the fault always covers the middle third.
func runRetryStorm(seed uint64, pol rsPolicy, scale float64) rsResult {
	window := time.Duration(float64(rsWindow) * scale)
	faultAt, faultDur := window/3, window/3

	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(seed)
	cfg := DefaultConfig()
	net := netsim.NewNetwork(k, rng.Fork(), cfg.Latency)
	catalog := pricing.Fall2018()
	meter := &pricing.Meter{}

	dcfg := cfg.DDB
	dcfg.ShardCount = 4
	dcfg.ShardConcurrency = 4
	ddb := kvstore.New("dynamodb", net, ServiceRack, rng.Fork(), dcfg, catalog, meter)
	if pol.shed {
		ddb.SetAdmission(service.AdmissionConfig{MaxQueue: rsMaxQueue})
	}
	hotShard, _ := rsHotShard(ddb)
	hotFE := ddb.ShardFrontend(hotShard)

	// The shared policy state a real client fleet would hold process-wide:
	// one retry budget, one breaker per shard, one stats sink.
	var sink resilience.Stats
	var budget *resilience.Budget
	if pol.budget {
		budget = resilience.NewBudget(0.2, 20)
	}
	var brs []*resilience.Breaker
	if pol.breaker {
		brs = make([]*resilience.Breaker, ddb.ShardCount())
		for i := range brs {
			brs[i] = resilience.NewBreaker(resilience.BreakerConfig{
				Window: 32, MinSamples: 16, FailureRate: 0.5,
				Cooldown: 250 * time.Millisecond, HalfOpenProbes: 2,
			})
		}
	}

	// The worker pool and its client free list: at most rsWorkers calls in
	// flight; each holds one resilience.Client for the call's duration.
	pool := sim.NewResource(rsWorkers)
	clients := make([]*resilience.Client, rsWorkers)
	for i := range clients {
		c := resilience.NewClient(k, rng.Fork(), pol.cfg)
		c.SetBudget(budget)
		c.SetBreakers(brs)
		c.SetStatsSink(&sink)
		clients[i] = c
	}

	// App-tier hosts the arrivals originate from.
	hosts := make([]*netsim.Node, 8)
	for i := range hosts {
		hosts[i] = net.NewNode(fmt.Sprintf("app-%d", i), i%ServiceRack, netsim.Gbps(10))
	}

	var res rsResult
	for i := range res.phases {
		res.phases[i].rec = newSummary("rs-" + rsPhases[i])
	}
	phaseOf := func(now sim.Time) int {
		switch {
		case now < sim.Time(faultAt):
			return 0
		case now < sim.Time(faultAt+faultDur):
			return 1
		default:
			return 2
		}
	}

	eng := chaos.New(k, rng.Fork())
	eng.SlowFrontendAt(hotFE, rsSlowFactor, faultAt, faultDur)

	gen := loadgen.New(rng.Fork(), loadgen.Poisson{Rate: rsRate})
	gen.Run(k, window, func(p *sim.Proc, seq int) {
		// Key choice is a pure function of the arrival sequence (no
		// simulation RNG draw): hash the sequence into a uniform, map it
		// through the Zipf CDF.
		u := float64(rfHash(17, seq)>>11) / float64(uint64(1)<<53)
		key := rsKey(rsZipf.RankOf(u))
		ep := ddb.ShardFor(key)
		host := hosts[seq%len(hosts)]
		start := p.Now()
		ph := &res.phases[phaseOf(start)]
		pool.Acquire(p)
		if time.Duration(p.Now()-start) > rsPatience {
			// The caller hung up while this arrival sat in the pool
			// backlog; release the worker untouched.
			pool.Release()
			res.gaveUp++
			ph.failed++
			ph.rec.Add(time.Duration(p.Now() - start))
			return
		}
		cl := clients[len(clients)-1]
		clients = clients[:len(clients)-1]
		err := cl.Do(p, ep, func(cp *sim.Proc) error {
			if _, gerr := ddb.Get(cp, host, key, false); gerr != nil &&
				!errors.Is(gerr, kvstore.ErrNotFound) {
				return gerr
			}
			return nil
		})
		clients = append(clients, cl)
		pool.Release()
		ph.rec.Add(time.Duration(p.Now() - start))
		if err == nil {
			ph.served++
		} else {
			ph.failed++
		}
	})

	// Queue observer: sample the hot shard's admission queue and the
	// client-pool backlog, keeping each phase's peak.
	k.Spawn("rs-queue-observer", func(p *sim.Proc) {
		for time.Duration(p.Now()) < window {
			p.Sleep(50 * time.Millisecond)
			ph := &res.phases[phaseOf(p.Now())]
			if q := hotFE.QueueDepth(); q > ph.hotQ {
				ph.hotQ = q
			}
			if q := pool.Waiting(); q > ph.poolQ {
				ph.poolQ = q
			}
		}
	})

	// Drain: the pool backlog and every abandoned attempt resolve well
	// inside a second window.
	k.RunUntil(sim.Time(2 * window))

	res.cstats = sink
	for i := 0; i < ddb.ShardCount(); i++ {
		fs := ddb.ShardFrontend(i).Stats()
		res.shed += fs.Shed
	}
	for _, b := range brs {
		res.trips += b.Trips()
	}
	res.hotCost = meter.Total()
	return res
}

// rsTenant is one tenant class's measurement in the hot-tenant table.
type rsTenant struct {
	rec      stats.Summary
	served   int
	rejected int
}

// rsJailResult is one jail setting's measurement.
type rsJailResult struct {
	polite rsTenant
	abuser rsTenant
	jailed int64 // server-side jail rejections
}

const (
	rsJailWindow  = 10 * time.Second
	rsPoliteN     = 12
	rsAbuserConns = 32
)

// runHotTenant measures 12 polite closed-loop tenants sharing a
// 4-slot table with one abusive tenant hammering from 32 connections,
// with the per-caller rate-window jail off or on.
func runHotTenant(seed uint64, jail bool, scale float64) rsJailResult {
	window := time.Duration(float64(rsJailWindow) * scale)

	k := sim.NewKernel()
	defer k.Close()
	rng := simrand.New(seed)
	cfg := DefaultConfig()
	net := netsim.NewNetwork(k, rng.Fork(), cfg.Latency)
	catalog := pricing.Fall2018()
	meter := &pricing.Meter{}

	dcfg := cfg.DDB
	dcfg.ShardCount = 1
	dcfg.ShardConcurrency = 4
	ddb := kvstore.New("dynamodb", net, ServiceRack, rng.Fork(), dcfg, catalog, meter)
	if jail {
		ddb.SetAdmission(service.AdmissionConfig{
			JailWindow: 100 * time.Millisecond, JailLimit: 30,
		})
	}

	var res rsJailResult
	res.polite.rec = newSummary("jail-polite")
	res.abuser.rec = newSummary("jail-abuser")

	run := func(name string, node *netsim.Node, crng *simrand.RNG,
		think time.Duration, out *rsTenant) {
		k.Spawn(name, func(p *sim.Proc) {
			for {
				p.Sleep(time.Duration(crng.ExpFloat64() * float64(think)))
				if time.Duration(p.Now()) >= window {
					return
				}
				key := rsKey(int(crng.Float64() * 512))
				start := p.Now()
				_, err := ddb.Get(p, node, key, false)
				out.rec.Add(time.Duration(p.Now() - start))
				switch {
				case err == nil || errors.Is(err, kvstore.ErrNotFound):
					out.served++
				case service.Overloaded(err):
					out.rejected++
				default:
					panic(err)
				}
			}
		})
	}
	for i := 0; i < rsPoliteN; i++ {
		node := net.NewNode(fmt.Sprintf("tenant-%02d", i), i%ServiceRack, netsim.Gbps(10))
		run(fmt.Sprintf("polite-%02d", i), node, rng.Fork(),
			40*time.Millisecond, &res.polite)
	}
	// The abuser: one caller identity (one node — the jail keys on it),
	// many concurrent connections.
	abuser := net.NewNode("tenant-abuser", 0, netsim.Gbps(10))
	for c := 0; c < rsAbuserConns; c++ {
		run(fmt.Sprintf("abuser-%02d", c), abuser, rng.Fork(),
			5*time.Millisecond, &res.abuser)
	}

	k.RunUntil(sim.Time(2 * window))
	res.jailed = ddb.ShardFrontend(0).Stats().Jailed
	return res
}

// runRetryStormTables builds both tables at the given scale (1 for the
// real experiment; tests shrink it).
func runRetryStormTables(seed uint64, scale float64) []*Table {
	window := time.Duration(float64(rsWindow) * scale)
	phaseDur := window / 3

	// Hot-shard identity and traffic share are pure functions of the key
	// space; compute them once without a simulation.
	probe := sim.NewKernel()
	pnet := netsim.NewNetwork(probe, simrand.New(1), DefaultConfig().Latency)
	pcfg := DefaultConfig().DDB
	pcfg.ShardCount = 4
	pddb := kvstore.New("probe", pnet, ServiceRack, simrand.New(1), pcfg,
		pricing.Fall2018(), &pricing.Meter{})
	hotShard, hotShare := rsHotShard(pddb)
	probe.Close()

	t := &Table{
		Title: fmt.Sprintf("Retry storm: %.0f req/s through a %d-worker client pool, hot shard %dx slower for the middle third",
			rsRate, rsWorkers, int(rsSlowFactor)),
		Header: []string{"Policy", "Phase", "Done req/s", "p50", "p99",
			"Avail", "HotQ", "PoolQ"},
	}
	pols := rsPolicies()
	results := sweep.Map(pols, func(_ int, pol rsPolicy) rsResult {
		return runRetryStorm(seed, pol, scale)
	})
	for pi, pol := range pols {
		r := results[pi]
		for i := range r.phases {
			ph := &r.phases[i]
			total := ph.served + ph.failed
			avail := 100.0
			if total > 0 {
				avail = 100 * float64(ph.served) / float64(total)
			}
			t.AddRow(
				pol.name,
				rsPhases[i],
				fmt.Sprintf("%.0f", float64(ph.served)/phaseDur.Seconds()),
				FmtDur(ph.rec.Percentile(50)),
				FmtDur(ph.rec.Percentile(99)),
				fmt.Sprintf("%.2f%%", avail),
				fmt.Sprintf("%d", ph.hotQ),
				fmt.Sprintf("%d", ph.poolQ),
			)
		}
		c := r.cstats
		t.AddNote("%s: %d calls, %d retries, %d timeouts, %d hedges, %d breaker fast-fails (%d trips), %d shed, %d budget-denied, %d gave up in pool",
			pol.name, c.Calls, c.Retries, c.Timeouts, c.Hedges,
			c.ShortCircuits, r.trips, r.shed, c.BudgetDenied, r.gaveUp)
	}
	t.AddNote("Zipf(s=%.1f) keys over %d ranks put %.0f%% of traffic on shard %d (4 slots, ~4.15ms/op);",
		rsZipfS, rsKeys, 100*hotShare, hotShard)
	t.AddNote("latency percentiles are over every call, success or failure — a timeout is latency the caller saw;")
	t.AddNote("HotQ/PoolQ = peak hot-shard admission queue / client-pool backlog per phase (sampled at 50ms);")
	t.AddNote("deadline %s, patience %s; full policy: backoff %s..%s, budget 0.2/call (burst 20),",
		FmtDur(rsDeadline), FmtDur(rsPatience), FmtDur(rsBackoff), FmtDur(rsMaxBackoff))
	t.AddNote("breaker window 32 @ 50%% (250ms cooldown), server queue bound %d; hedge after %s",
		rsMaxQueue, FmtDur(rsHedgeAfter))

	jt := &Table{
		Title: fmt.Sprintf("Hot tenant: %d polite tenants vs 1 abuser on %d connections, rate-window jail off/on",
			rsPoliteN, rsAbuserConns),
		Header: []string{"Jail", "Tenant", "Done req/s", "p50", "p99", "Rejected"},
	}
	jres := sweep.Map([]bool{false, true}, func(_ int, jail bool) rsJailResult {
		return runHotTenant(seed, jail, scale)
	})
	jailWindow := time.Duration(float64(rsJailWindow) * scale)
	for ji, jail := range []bool{false, true} {
		label := "off"
		if jail {
			label = "on"
		}
		r := jres[ji]
		for _, row := range []struct {
			tenant string
			m      *rsTenant
		}{{"polite", &r.polite}, {"abuser", &r.abuser}} {
			jt.AddRow(
				label,
				row.tenant,
				fmt.Sprintf("%.0f", float64(row.m.served)/jailWindow.Seconds()),
				FmtDur(row.m.rec.Percentile(50)),
				FmtDur(row.m.rec.Percentile(99)),
				fmt.Sprintf("%d", row.m.rejected),
			)
		}
	}
	jt.AddNote("jail: >30 requests per caller per 100ms window earns a 100ms ban (rejections are fast and cheap);")
	jt.AddNote("polite tenants think ~40ms; the abuser's 32 connections think ~5ms each, all from one caller identity")
	return []*Table{t, jt}
}

// RunRetryStorm regenerates the resilience-fabric tables: availability and
// tail latency per phase around a hot-shard slowdown under four retry
// policies, and the hot-tenant admission-jail comparison.
func RunRetryStorm(seed uint64) []*Table {
	return runRetryStormTables(seed, 1)
}
