package core

import (
	"testing"
	"time"
)

// TestRegionScaleNearLinear is the tentpole's acceptance gate: with each
// shard capacity-limited, quadrupling the shard count must at least triple
// aggregate completed throughput, and the run must be seed-deterministic.
func TestRegionScaleNearLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("region-scale scenario in -short mode")
	}
	r1 := runRegionScale(1, 1)
	r4 := runRegionScale(1, 4)

	if ratio := r4.throughput / r1.throughput; ratio < 3 {
		t.Errorf("4-shard speedup = %.2fx (%.0f vs %.0f req/s), want >= 3x",
			ratio, r4.throughput, r1.throughput)
	}
	// One shard saturates well below the offered rate; four shards should
	// land near their aggregate capacity.
	if r1.throughput > 0.35*regionOfferedRate {
		t.Errorf("1-shard throughput %.0f req/s does not saturate (offered %.0f)",
			r1.throughput, regionOfferedRate)
	}
	// Sharding must also collapse queueing delay, not just lift throughput.
	if r4.p99 >= r1.p99 {
		t.Errorf("4-shard p99 %v not below 1-shard p99 %v", r4.p99, r1.p99)
	}
	// Hash routing spreads the key space: no shard should dominate.
	if r4.hotShare > 0.35 {
		t.Errorf("hottest of 4 shards served %.0f%% of requests, want near 25%%",
			r4.hotShare*100)
	}

	if again := runRegionScale(1, 4); again != r4 {
		t.Errorf("region scale is nondeterministic: %+v vs %+v", again, r4)
	}
}

// TestRegionScaleTable checks the rendered experiment artifact's shape.
func TestRegionScaleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("region-scale scenario in -short mode")
	}
	tb := RunRegionScale(1)[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 shard counts", len(tb.Rows))
	}
	p99at1 := parseDur(t, cell(t, tb, "1", 4))
	p99at8 := parseDur(t, cell(t, tb, "8", 4))
	if p99at1 < time.Second {
		t.Errorf("1-shard p99 = %v, want queueing collapse (>1s)", p99at1)
	}
	if p99at8 > 50*time.Millisecond {
		t.Errorf("8-shard p99 = %v, want service-time-class latency", p99at8)
	}
}
