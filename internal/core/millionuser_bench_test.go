package core

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkMillionUserMemory is the memory-flatness gate: one 64-shard
// point at the full 100k req/s aggregate rate, at 10⁴ vs 10⁶ simulated
// users. The aggregated population keeps per-user state out of the run
// entirely and the sketch keeps measurement memory fixed, so B/op must
// stay flat (CI asserts within 2×) as the population grows 100×.
func BenchmarkMillionUserMemory(b *testing.B) {
	for _, users := range []int{10_000, 1_000_000} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := runMillionUser(1, 64, users, millionRate, 2*time.Second)
				if r.completed == 0 {
					b.Fatal("no requests completed")
				}
			}
		})
	}
}
