package core

import (
	"runtime"
	"slices"
	"testing"

	"repro/internal/sweep"
)

// sweepFamilies is one sweep-bearing experiment per family migrated onto
// the parallel sweep engine: the shard sweep, the provisioned-concurrency
// sweep, the replicas × gossip grid, the polling-rate sweep, the election
// case study's independent clusters, and the seed-repetition loops of the
// ablation and autoscale experiments.
var sweepFamilies = []string{
	"regionscale", "faasscale", "statecache",
	"electionsweep", "election", "firecracker", "autoscale",
	"regionfailover", "retrystorm",
}

// renderAll renders an experiment's tables into one string.
func renderAll(tables []*Table) string {
	out := ""
	for _, tb := range tables {
		out += tb.Render()
	}
	return out
}

// TestSweepWorkerCountInvariance is the determinism regression test for
// the parallel sweep engine: every migrated experiment family must render
// byte-identical tables at W=1 (the sequential path), W=4, and
// W=GOMAXPROCS. Per-point seed isolation plus the ordered merge make the
// output a pure function of the seed, so any divergence here means a
// point leaked state across kernels.
func TestSweepWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("worker-count invariance sweeps in -short mode")
	}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	slices.Sort(counts)
	counts = slices.Compact(counts)
	families := sweepFamilies
	if raceEnabled {
		// The race detector ~10×es simulation time and the election
		// family alone is ~11s of virtual-cluster crashes per round;
		// under -race its W>1 path is already exercised by
		// TestElectionMatchesPaper at the session's worker count, so the
		// invariance re-runs drop it to keep the race job inside its
		// timeout.
		families = slices.DeleteFunc(slices.Clone(families),
			func(id string) bool { return id == "election" })
	}
	defer sweep.SetWorkers(0)
	for _, id := range families {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("sweep family %q missing from registry", id)
		}
		var want string
		for i, w := range counts {
			sweep.SetWorkers(w)
			got := renderAll(e.Run(1))
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("experiment %q diverged at %d workers vs %d:\ngot:\n%s\nwant:\n%s",
					id, w, counts[0], got, want)
			}
		}
	}
}
