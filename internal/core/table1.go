package core

import (
	"time"

	"repro/internal/compute"
	"repro/internal/faas"
	"repro/internal/msgnet"
	"repro/internal/sim"
)

// runKernelUntil advances the kernel in steps until cond holds or horizon
// passes, returning whether cond held. Experiments use it because perpetual
// background processes (pollers, servers) keep the event queue non-empty.
func runKernelUntil(k *sim.Kernel, horizon, step sim.Time, cond func() bool) bool {
	for t := k.Now() + step; t <= horizon; t += step {
		k.RunUntil(t)
		if cond() {
			return true
		}
	}
	return cond()
}

// RunTable1 regenerates Table 1: the mean latency of "communicating" 1KB
// six different ways, plus the compared-to-best ratio row. Trial counts
// match the paper: 1,000 invocations, 5,000 storage I/O pairs, 10,000
// network round trips.
func RunTable1(seed uint64) []*Table {
	c := NewCloud(seed)
	defer c.Close()

	recInvoke := newSummary("invoke")
	recLambdaS3 := newSummary("lambda-s3")
	recLambdaDDB := newSummary("lambda-ddb")
	recEC2S3 := newSummary("ec2-s3")
	recEC2DDB := newSummary("ec2-ddb")
	recZMQ := newSummary("ec2-zmq")

	payload := make([]byte, 1024)

	// Column 1: no-op Lambda invocation with a 1KB argument.
	if err := c.Lambda.Register(faas.Function{
		Name: "noop", MemoryMB: 128, Timeout: time.Minute,
		Handler: func(ctx *faas.Ctx, p []byte) ([]byte, error) { return nil, nil },
	}); err != nil {
		panic(err)
	}
	// Columns 2-3: I/O pairs issued from inside a running Lambda function.
	if err := c.Lambda.Register(faas.Function{
		Name: "io-probe", MemoryMB: 1024, Timeout: 15 * time.Minute,
		Handler: func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			p, node := ctx.Proc(), ctx.Node()
			for i := 0; i < 5000; i++ {
				start := p.Now()
				c.S3.Put(p, node, "probe/s3", payload)
				if _, err := c.S3.Get(p, node, "probe/s3"); err != nil {
					return nil, err
				}
				recLambdaS3.Add(time.Duration(p.Now() - start))
			}
			for i := 0; i < 5000; i++ {
				start := p.Now()
				if _, err := c.DDB.Put(p, node, "probe/ddb", payload); err != nil {
					return nil, err
				}
				if _, err := c.DDB.Get(p, node, "probe/ddb", true); err != nil {
					return nil, err
				}
				recLambdaDDB.Add(time.Duration(p.Now() - start))
			}
			return nil, nil
		},
	}); err != nil {
		panic(err)
	}

	done := 0
	c.K.Spawn("invoker", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			start := p.Now()
			if _, _, err := c.Lambda.Invoke(p, "noop", payload); err != nil {
				panic(err)
			}
			recInvoke.Add(time.Duration(p.Now() - start))
		}
		done++
	})
	c.K.Spawn("lambda-io", func(p *sim.Proc) {
		// The probe's I/O takes ~9.9 virtual minutes; one invocation
		// fits the 15-minute lifetime.
		if _, _, err := c.Lambda.Invoke(p, "io-probe", nil); err != nil {
			panic(err)
		}
		done++
	})
	c.K.Spawn("ec2-io", func(p *sim.Proc) {
		inst := c.EC2.Launch(p, compute.M5Large, ClientRack)
		node := inst.Node()
		for i := 0; i < 5000; i++ {
			start := p.Now()
			c.S3.Put(p, node, "probe/ec2-s3", payload)
			if _, err := c.S3.Get(p, node, "probe/ec2-s3"); err != nil {
				panic(err)
			}
			recEC2S3.Add(time.Duration(p.Now() - start))
		}
		for i := 0; i < 5000; i++ {
			start := p.Now()
			if _, err := c.DDB.Put(p, node, "probe/ec2-ddb", payload); err != nil {
				panic(err)
			}
			if _, err := c.DDB.Get(p, node, "probe/ec2-ddb", true); err != nil {
				panic(err)
			}
			recEC2DDB.Add(time.Duration(p.Now() - start))
		}
		done++
	})
	c.K.Spawn("zmq", func(p *sim.Proc) {
		server := c.EC2.Launch(p, compute.M5Large, ClientRack)
		clientVM := c.EC2.Launch(p, compute.M5Large, ClientRack)
		srvEP := c.Mesh.Endpoint("zmq-server", server.Node())
		cliEP := c.Mesh.Endpoint("zmq-client", clientVM.Node())
		srvEP.Serve(func(sp *sim.Proc, pk msgnet.Packet) []byte { return []byte{1} })
		for i := 0; i < 10000; i++ {
			start := p.Now()
			if _, err := cliEP.Call(p, "zmq-server", payload, 0); err != nil {
				panic(err)
			}
			recZMQ.Add(time.Duration(p.Now() - start))
		}
		done++
	})

	c.K.RunUntil(sim.Time(2 * time.Hour))
	if done != 4 {
		panic("table1: drivers did not complete")
	}

	t := &Table{
		Title: "Table 1: latency of communicating 1KB (means; simulated reproduction)",
		Header: []string{"", "Func. Invoc. (1KB)", "Lambda I/O (S3)", "Lambda I/O (DynamoDB)",
			"EC2 I/O (S3)", "EC2 I/O (DynamoDB)", "EC2 NW (0MQ)"},
	}
	means := []time.Duration{
		recInvoke.Mean(), recLambdaS3.Mean(), recLambdaDDB.Mean(),
		recEC2S3.Mean(), recEC2DDB.Mean(), recZMQ.Mean(),
	}
	best := means[0]
	for _, m := range means[1:] {
		if m > 0 && m < best {
			best = m
		}
	}
	row := []string{"Latency (measured)"}
	ratios := []string{"Compared to best"}
	for _, m := range means {
		row = append(row, FmtDur(m))
		ratios = append(ratios, FmtRatio(float64(m)/float64(best)))
	}
	t.Rows = append(t.Rows, row, ratios,
		[]string{"Paper reported", "303ms", "108ms", "11ms", "106ms", "11ms", "290µs"},
		[]string{"Paper ratios", "1,045x", "372x", "37.9x", "365x", "37.9x", "1x"},
	)
	t.AddNote("trials: 1,000 invocations; 5,000 I/O pairs per storage column; 10,000 ZeroMQ round trips")
	return []*Table{t}
}
