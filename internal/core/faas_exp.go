package core

// The faasscale scenario: the serving-tier counterpart to regionscale. PR 1
// scaled the storage tier; this experiment scales the compute tier the
// paper is actually about — the full FaaS serving stack (open-loop clients
// -> SQS -> event-source pollers -> Lambda handlers -> the sharded
// kvstore) under flash-crowd traffic, sweeping provisioned concurrency.
//
// Flash crowds are where §3's cold-start critique bites: the off-windows
// outlast the warm-pool TTL, so (thanks to the eager reaper) every burst
// hits a cold fleet unless capacity is provisioned ahead of it. Fixed
// provisioned concurrency buys the cold starts away at a keep-warm
// GB-second price; the target-tracking autoscaler pays the cold starts
// once, on the first burst, and meets the rest warm. Each row reports the
// capacity/latency/cost point: done req/s, completion percentiles, the
// cold-start fraction, and the metered hourly bill.

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/faas"
	"repro/internal/loadgen"
	"repro/internal/sim"
	"repro/internal/sweep"
)

const (
	// faasScaleWindow is the measurement window of virtual time.
	faasScaleWindow = 3 * time.Minute
	// faasScaleRate is the message rate while a burst is on.
	faasScaleRate = 200.0
	// faasScaleOn/Off shape the flash crowd: 10s bursts separated by
	// 50s of silence — longer than the warm-pool TTL below, so an
	// unprovisioned fleet is stone cold at every burst front.
	faasScaleOn  = 10 * time.Second
	faasScaleOff = 50 * time.Second
	// faasScaleWarmTTL shortens the platform's idle-container lifetime
	// so the burst/reap interplay fits the window.
	faasScaleWarmTTL = 30 * time.Second
	// faasScalePollers sizes the event-source poller fleet (each poller
	// carries at most one in-flight invocation).
	faasScalePollers = 24
	// faasScaleShards is the kvstore partition count behind the handlers.
	faasScaleShards = 4
	// faasScaleMemoryMB sizes the handler function.
	faasScaleMemoryMB = 512
	// faasScaleKeySpace is how many distinct keys the handlers write.
	faasScaleKeySpace = 10000
	// faasScaleValueBytes is the written record size.
	faasScaleValueBytes = 256
	// faasScaleAutoLabel marks the autoscaled sweep row.
	faasScaleAutoLabel = "auto"
)

// faasScaleMsg is one serving request: its sequence number and open-loop
// send time, carried through SQS so the handler can measure completion
// latency from arrival.
type faasScaleMsg struct {
	Seq  int   `json:"seq"`
	Sent int64 `json:"sent"` // virtual nanoseconds
}

// faasScaleResult is one provisioned-concurrency level's measurement.
type faasScaleResult struct {
	provisioned string // fixed count, or "auto"
	submitted   int
	completed   int     // messages durably handled inside the window
	throughput  float64 // completed / window
	p50, p99    time.Duration
	coldFrac    float64 // cold-started fraction of invocations
	peak        int     // handler concurrency high-water mark
	scaleTarget int     // autoscaler's final target (auto row only)
	costPerHr   float64 // full metered bill extrapolated to an hour
}

// runFaaSScale measures one provisioned-concurrency level (fixed if
// provisioned >= 0, autoscaled otherwise).
func runFaaSScale(seed uint64, provisioned int) faasScaleResult {
	cfg := DefaultConfig()
	cfg.Lambda.WarmTTL = faasScaleWarmTTL
	cfg.DDB.ShardCount = faasScaleShards
	c := NewCloudWith(seed, cfg)
	defer c.Close()

	client := c.ClientNode("faasscale-client")
	inQ := c.SQS.CreateQueue("faasscale-in", 2*time.Minute)
	rec := newSummary("faasscale")
	value := make([]byte, faasScaleValueBytes)
	completed := 0
	seen := make(map[int]bool) // SQS is at-least-once; count each Seq once

	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		p, node := ctx.Proc(), ctx.Node()
		ev, err := faas.DecodeSQSEvent(payload)
		if err != nil {
			return nil, err
		}
		for _, r := range ev.Records {
			var m faasScaleMsg
			if err := json.Unmarshal([]byte(r.Body), &m); err != nil {
				return nil, err
			}
			key := fmt.Sprintf("evt/%07d", uint64(m.Seq)*2654435761%faasScaleKeySpace)
			if _, err := c.DDB.Put(p, node, key, value); err != nil {
				return nil, err
			}
			if seen[m.Seq] {
				continue // a visibility-timeout redelivery, already measured
			}
			seen[m.Seq] = true
			rec.Add(time.Duration(p.Now() - sim.Time(m.Sent)))
			completed++
		}
		return nil, nil
	}
	if err := c.Lambda.Register(faas.Function{
		Name: "serve", MemoryMB: faasScaleMemoryMB, Timeout: time.Minute, Handler: handler,
	}); err != nil {
		panic(err)
	}

	gen := loadgen.New(c.RNG.Fork(), &loadgen.Burst{
		On:    loadgen.Poisson{Rate: faasScaleRate},
		OnFor: faasScaleOn, OffFor: faasScaleOff,
	})

	var res faasScaleResult
	done := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		var asc *faas.Autoscaler
		if provisioned > 0 {
			if err := c.Lambda.ProvisionConcurrency(p, "serve", provisioned); err != nil {
				panic(err)
			}
			res.provisioned = fmt.Sprintf("%d", provisioned)
		} else if provisioned < 0 {
			var err error
			asc, err = c.Lambda.Autoscale(faas.AutoscalerConfig{
				Function: "serve", Min: 0, Max: 64,
				TargetUtilization: 0.7,
				Interval:          5 * time.Second,
				ScaleInCooldown:   2 * time.Minute,
			})
			if err != nil {
				panic(err)
			}
			res.provisioned = faasScaleAutoLabel
		} else {
			res.provisioned = "0"
		}
		esm := c.Lambda.MapQueueN(inQ, "serve", ServingBatchSize, faasScalePollers)
		doneGen := gen.Run(p.Kernel(), faasScaleWindow, func(rp *sim.Proc, seq int) {
			body, _ := json.Marshal(faasScaleMsg{Seq: seq, Sent: int64(rp.Now())})
			if _, err := inQ.Send(rp, client, body); err != nil {
				panic(err)
			}
		})
		// The latch releases exactly at the window's end (loadgen
		// contract), freezing the measurement there like regionscale.
		doneGen.Wait(p)
		esm.Stop()
		if asc != nil {
			res.scaleTarget = asc.Target()
			asc.Stop()
		}
		c.Lambda.AccrueProvisioned(p.Now())
		st, err := c.Lambda.Stats("serve")
		if err != nil {
			panic(err)
		}
		res.submitted = gen.Submitted
		res.completed = completed
		res.throughput = float64(completed) / faasScaleWindow.Seconds()
		res.p50 = rec.Percentile(50)
		res.p99 = rec.Percentile(99)
		res.coldFrac = st.ColdStartRate()
		res.peak = st.PeakConcurrency
		res.costPerHr = float64(c.Meter.Total()) / faasScaleWindow.Hours()
		done = true
	})
	if !runKernelUntil(c.K, sim.Time(faasScaleWindow)+sim.Time(time.Minute),
		sim.Time(10*time.Second), func() bool { return done }) {
		panic("faasscale did not finish")
	}
	return res
}

// RunFaaSScale regenerates the FaaS serving-tier scaling table: flash-crowd
// load through the full SQS -> Lambda -> kvstore stack at growing
// provisioned concurrency, plus the target-tracking autoscaler.
func RunFaaSScale(seed uint64) []*Table {
	t := &Table{
		Title: "FaaS at region scale: flash-crowd serving vs provisioned concurrency",
		Header: []string{"Provisioned", "Done req/s", "p50", "p99",
			"Cold starts", "Peak conc", "$/hr"},
	}
	// Every provisioned-concurrency level simulates an independent cloud
	// from (seed, prov); the sweep engine runs them concurrently and hands
	// back results in sweep order.
	results := sweep.Map([]int{0, 8, 32, -1}, func(_ int, prov int) faasScaleResult {
		return runFaaSScale(seed, prov)
	})
	for _, r := range results {
		label := r.provisioned
		if label == faasScaleAutoLabel {
			label = fmt.Sprintf("auto (->%d)", r.scaleTarget)
		}
		t.AddRow(
			label,
			fmt.Sprintf("%.1f", r.throughput),
			FmtDur(r.p50),
			FmtDur(r.p99),
			fmt.Sprintf("%.1f%%", r.coldFrac*100),
			fmt.Sprintf("%d", r.peak),
			fmt.Sprintf("$%.2f/hr", r.costPerHr),
		)
	}
	t.AddNote("%.0f msg/s Poisson bursts, %s on / %s off, over %s; warm-pool TTL %s, so",
		faasScaleRate, faasScaleOn, faasScaleOff, faasScaleWindow, faasScaleWarmTTL)
	t.AddNote("an unprovisioned fleet is cold at every burst front; %d ESM pollers, batches of %d,",
		faasScalePollers, ServingBatchSize)
	t.AddNote("handlers write %dB records to a %d-shard kvstore; auto = target-tracking scaler",
		faasScaleValueBytes, faasScaleShards)
	t.AddNote("(utilization 0.7, 5s interval), which pays cold starts once and serves later bursts warm")
	return []*Table{t}
}
