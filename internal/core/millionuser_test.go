package core

import (
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestMillionUserScaledSmoke runs one scaled-down point (10⁴ users, 20k
// req/s, 1s window) end to end: the aggregated population must drive the
// sharded table to its expected operating point with a few-KB sketch.
func TestMillionUserScaledSmoke(t *testing.T) {
	r := runMillionUser(1, 8, 10_000, 20_000, time.Second)
	if r.completed == 0 || r.submitted < r.completed {
		t.Fatalf("submitted %d / completed %d", r.submitted, r.completed)
	}
	// 8 shards × ~3.8k req/s capacity ≈ 30k/s ceiling: the offered 20k/s
	// should complete nearly in full.
	if r.throughput < 18_000 || r.throughput > 21_000 {
		t.Errorf("throughput %.0f req/s, want ~20k (offered under capacity)", r.throughput)
	}
	if r.p50 <= 0 || r.p99 < r.p50 || r.p999 < r.p99 {
		t.Errorf("percentiles not ordered: p50=%v p99=%v p99.9=%v", r.p50, r.p99, r.p999)
	}
	if r.sketchBytes <= 0 || r.sketchBytes > 64*1024 {
		t.Errorf("sketch footprint %dB, want a few KB", r.sketchBytes)
	}
}

// TestMillionUserSaturation pins the capacity story: under the same
// offered load, fewer shards must complete less. 2 shards (~7.7k/s
// capacity) under 20k/s offered saturate; 8 shards do not.
func TestMillionUserSaturation(t *testing.T) {
	sat := runMillionUser(1, 2, 10_000, 20_000, time.Second)
	if sat.throughput > 9_000 {
		t.Errorf("2 shards completed %.0f req/s under 20k offered, expected saturation near 7.7k",
			sat.throughput)
	}
	if sat.late == 0 {
		t.Error("saturated run reported no late submissions despite the fan-out cap")
	}
}

// TestMillionUserWorkerInvariance extends the sweep-engine determinism
// property to the millionuser family at reduced scale: the same sweep must
// produce identical results at 1 and 4 workers.
func TestMillionUserWorkerInvariance(t *testing.T) {
	defer sweep.SetWorkers(0)
	run := func() []millionResult {
		return sweep.Map([]int{4, 8}, func(_ int, shards int) millionResult {
			return runMillionUser(1, shards, 5_000, 10_000, time.Second)
		})
	}
	sweep.SetWorkers(1)
	want := run()
	sweep.SetWorkers(4)
	got := run()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d diverged across worker counts:\n  W=1: %+v\n  W=4: %+v",
				i, want[i], got[i])
		}
	}
}

// TestRegionScaleSketchMatchesExact flips the -sketch switch on the
// regionscale scenario: the simulation itself is untouched (same arrivals,
// same completions, same bill), and the sketched percentiles stay within
// the configured ≤1% relative error of the exact recorder's.
func TestRegionScaleSketchMatchesExact(t *testing.T) {
	exact := runRegionScale(1, 4)
	SetSketchStats(true)
	defer SetSketchStats(false)
	sketched := runRegionScale(1, 4)

	if sketched.completed != exact.completed || sketched.costPerHr != exact.costPerHr ||
		sketched.hotShare != exact.hotShare {
		t.Fatalf("sketch switch changed the simulation: %+v vs %+v", sketched, exact)
	}
	within := func(name string, got, want time.Duration) {
		t.Helper()
		tol := time.Duration(0.01*float64(want)) + time.Nanosecond
		if diff := got - want; diff < -tol || diff > tol {
			t.Errorf("%s: sketched %v vs exact %v exceeds 1%% bound", name, got, want)
		}
	}
	within("p50", sketched.p50, exact.p50)
	within("p99", sketched.p99, exact.p99)
}

// TestRegionScalePopulationMode flips the -population switch: arrival
// times are bit-identical (shared gap-RNG fork order and rate), so the
// completed request count must match the per-arrival mode almost exactly
// even though key choice and submission fan-out differ.
func TestRegionScalePopulationMode(t *testing.T) {
	exact := runRegionScale(1, 4)
	SetPopulationLoad(true)
	defer SetPopulationLoad(false)
	pop := runRegionScale(1, 4)

	if pop.completed == 0 {
		t.Fatal("population mode completed nothing")
	}
	// Same arrival process; completions can differ only at the window edge
	// where in-flight service straddles the cutoff.
	ratio := float64(pop.completed) / float64(exact.completed)
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("population mode completed %d vs %d per-arrival (ratio %.3f)",
			pop.completed, exact.completed, ratio)
	}
	if pop.p99 <= 0 || pop.p99 > 4*exact.p99 {
		t.Errorf("population-mode p99 %v implausible vs per-arrival %v", pop.p99, exact.p99)
	}
}

// TestMillionUserUsersOverride: the -users switch rescales the population
// while holding the aggregate rate, so request volume — and the table's
// shape — stay put.
func TestMillionUserUsersOverride(t *testing.T) {
	SetUsers(10_000)
	defer SetUsers(0)
	if got := configuredUsers(millionUsersDefault); got != 10_000 {
		t.Fatalf("configuredUsers = %d after SetUsers(10000)", got)
	}
	SetUsers(0)
	if got := configuredUsers(millionUsersDefault); got != millionUsersDefault {
		t.Fatalf("configuredUsers = %d after reset, want default", got)
	}
}
