package core

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/faas"
	"repro/internal/mlp"
	"repro/internal/pricing"
	"repro/internal/reviews"
	"repro/internal/sim"
)

// trainState is the paper's chained-execution baton: where in the 9,000
// iterations the previous Lambda execution stopped.
type trainState struct {
	Next int `json:"next"`
}

// proxyTrainer runs the real (scaled-down) MLP alongside the simulated
// full-size accounting so the experiment demonstrably learns. One real
// optimizer step is taken every realEvery simulated iterations.
type proxyTrainer struct {
	gen  *reviews.Generator
	net  *mlp.Network
	opt  *mlp.Adam
	hX   [][]float64
	hY   [][]float64
	real int
}

const proxyVocab = 128
const realEvery = 30

func newProxyTrainer(seed uint64) *proxyTrainer {
	gen := reviews.NewGenerator(seed, proxyVocab)
	hX, hY := gen.Batch(128)
	return &proxyTrainer{
		gen: gen,
		net: mlp.New(mlp.Config{Input: proxyVocab, Hidden: []int{10, 10}, Output: 1, Seed: seed}),
		opt: mlp.NewAdam(),
		hX:  hX,
		hY:  hY,
	}
}

func (pt *proxyTrainer) maybeStep(iter int) {
	if iter%realEvery != 0 {
		return
	}
	X, Y := pt.gen.Batch(32)
	pt.net.TrainBatch(pt.opt, X, Y)
	pt.real++
}

func (pt *proxyTrainer) holdoutLoss() float64 { return pt.net.Loss(pt.hX, pt.hY) }

// trainingResult summarizes one platform's run.
type trainingResult struct {
	fetchMean   time.Duration
	computeMean time.Duration
	iterMean    time.Duration
	executions  int
	total       time.Duration
	cost        pricing.USD
	lossBefore  float64
	lossAfter   float64
}

// RunTraining regenerates the §3.1 model-training case study: the same 10
// epochs over a 90GB corpus in 100MB batches, once on Lambda (640MB
// functions chained through the 15-minute lifetime, batches fetched from
// S3) and once on an m4.large with EBS-resident data.
func RunTraining(seed uint64) []*Table {
	totalIters := TrainingEpochs * int(TrainingCorpusBytes/TrainingBatchBytes) // 9,000

	lambda := runLambdaTraining(seed, totalIters)
	ec2 := runEC2Training(seed, totalIters)

	t := &Table{
		Title: "§3.1 Model training: Lambda (640MB, data in S3) vs EC2 m4.large (data on EBS)",
		Header: []string{"Platform", "Fetch/iter", "Optimize/iter", "Iter total",
			"Executions", "Total latency", "Cost"},
	}
	t.AddRow("Lambda", FmtDur(lambda.fetchMean), FmtDur(lambda.computeMean),
		FmtDur(lambda.iterMean), fmt.Sprintf("%d", lambda.executions),
		FmtDur(lambda.total), lambda.cost.String())
	t.AddRow("EC2 m4.large", FmtDur(ec2.fetchMean), FmtDur(ec2.computeMean),
		FmtDur(ec2.iterMean), fmt.Sprintf("%d", ec2.executions),
		FmtDur(ec2.total), ec2.cost.String())
	t.AddRow("Paper Lambda", "2.49s", "0.59s", "3.08s", "31", "465.0min", "$0.29")
	t.AddRow("Paper EC2", "0.04s", "0.10s", "0.14s", "1", "21.7min", "$0.04")
	t.AddNote("slowdown: Lambda is %.1fx slower (paper: 21x); cost: %.1fx more expensive (paper: 7.3x)",
		lambda.total.Seconds()/ec2.total.Seconds(), float64(lambda.cost)/float64(ec2.cost))
	t.AddNote("real proxy model (%d features) holdout MSE: %.3f -> %.3f on Lambda, %.3f -> %.3f on EC2",
		proxyVocab, lambda.lossBefore, lambda.lossAfter, ec2.lossBefore, ec2.lossAfter)
	t.AddNote("%d iterations = %d epochs x %d batches of 100MB", totalIters,
		TrainingEpochs, reviews.PaperBatchPerPass)
	return []*Table{t}
}

func runLambdaTraining(seed uint64, totalIters int) trainingResult {
	c := NewCloud(seed)
	defer c.Close()

	fetch := newSummary("fetch")
	optim := newSummary("optimize")
	iters := newSummary("iter")
	pt := newProxyTrainer(seed)
	res := trainingResult{lossBefore: pt.holdoutLoss()}

	// Stage the corpus (bypasses the meter: staging is not part of the
	// measured training run).
	staging := c.ClientNode("staging")
	batches := int(TrainingCorpusBytes / TrainingBatchBytes)

	if err := c.Lambda.Register(faas.Function{
		Name:     "train",
		MemoryMB: TrainingLambdaMemoryMB,
		Timeout:  15 * time.Minute,
		Handler: func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			var st trainState
			if err := json.Unmarshal(payload, &st); err != nil {
				return nil, err
			}
			p, node := ctx.Proc(), ctx.Node()
			// Run as many iterations as fit in the lifetime, with a
			// safety margin of 1.2 estimated iterations.
			est := 4 * time.Second
			for st.Next < totalIters && ctx.Remaining() > time.Duration(1.2*float64(est)) {
				t0 := p.Now()
				if _, err := c.S3.Get(p, node, reviews.BatchKey(st.Next%batches)); err != nil {
					return nil, err
				}
				t1 := p.Now()
				ctx.Compute(TrainingBatchBytes)
				t2 := p.Now()
				pt.maybeStep(st.Next)
				fetch.Add(time.Duration(t1 - t0))
				optim.Add(time.Duration(t2 - t1))
				iters.Add(time.Duration(t2 - t0))
				est = time.Duration(t2 - t0)
				st.Next++
			}
			return json.Marshal(st)
		},
	}); err != nil {
		panic(err)
	}

	done := false
	var start, end sim.Time
	c.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < batches; i++ {
			c.S3.PutSized(p, staging, reviews.BatchKey(i), TrainingBatchBytes)
		}
		c.Meter.Reset() // exclude staging from the training bill
		start = p.Now()
		st := trainState{}
		for st.Next < totalIters {
			payload, _ := json.Marshal(st)
			resp, _, err := c.Lambda.Invoke(p, "train", payload)
			if err != nil {
				panic(fmt.Sprintf("training invoke: %v", err))
			}
			if err := json.Unmarshal(resp, &st); err != nil {
				panic(err)
			}
			res.executions++
		}
		end = p.Now()
		done = true
	})
	c.K.RunUntil(sim.Time(24 * time.Hour))
	if !done {
		panic("lambda training did not finish")
	}
	res.fetchMean = fetch.Mean()
	res.computeMean = optim.Mean()
	res.iterMean = iters.Mean()
	res.total = time.Duration(end - start)
	res.cost = c.Meter.Cost("lambda.gbsec") + c.Meter.Cost("lambda.request") +
		c.Meter.Cost("s3.get")
	res.lossAfter = pt.holdoutLoss()
	return res
}

func runEC2Training(seed uint64, totalIters int) trainingResult {
	c := NewCloud(seed)
	defer c.Close()

	fetch := newSummary("fetch")
	optim := newSummary("optimize")
	iters := newSummary("iter")
	pt := newProxyTrainer(seed)
	res := trainingResult{lossBefore: pt.holdoutLoss(), executions: 1}

	done := false
	var elapsed time.Duration
	var cost pricing.USD
	batches := int(TrainingCorpusBytes / TrainingBatchBytes)
	c.K.Spawn("driver", func(p *sim.Proc) {
		inst := c.EC2.Launch(p, compute.M4Large, ClientRack)
		// The corpus is staged on the volume; steady-state reads are
		// page-cache warm, as in the paper's measured 0.04s fetches.
		for i := 0; i < batches; i++ {
			inst.Volume().Warm(reviews.BatchKey(i))
		}
		start := p.Now()
		for i := 0; i < totalIters; i++ {
			t0 := p.Now()
			if err := inst.Volume().Read(p, reviews.BatchKey(i%batches), TrainingBatchBytes); err != nil {
				panic(err)
			}
			t1 := p.Now()
			if err := inst.Compute(p, TrainingBatchBytes); err != nil {
				panic(err)
			}
			t2 := p.Now()
			pt.maybeStep(i)
			fetch.Add(time.Duration(t1 - t0))
			optim.Add(time.Duration(t2 - t1))
			iters.Add(time.Duration(t2 - t0))
		}
		elapsed = time.Duration(p.Now() - start)
		// The paper bills the training window, not instance boot.
		cost = c.Catalog.EC2Hourly(inst.Type().Name).PerHour(elapsed)
		done = true
	})
	c.K.RunUntil(sim.Time(24 * time.Hour))
	if !done {
		panic("ec2 training did not finish")
	}
	res.fetchMean = fetch.Mean()
	res.computeMean = optim.Mean()
	res.iterMean = iters.Mean()
	res.total = elapsed
	res.cost = cost
	res.lossAfter = pt.holdoutLoss()
	return res
}
