package core

import (
	"fmt"
	"time"

	"repro/internal/election"
	"repro/internal/future"
	"repro/internal/msgnet"
	"repro/internal/pricing"
	"repro/internal/reviews"
	"repro/internal/sim"
)

// RunFuture re-runs the three case studies on the §4 prototype platform
// (internal/future): long-running addressable virtual agents with fluid
// code/data placement, billed per GB-second like FaaS. The point of the
// table is that the paper's gaps close without giving up autoscaling
// pay-per-use.
func RunFuture(seed uint64) []*Table {
	trainTime, trainCost := futureTraining(seed)
	serveBatch := futureServing(seed + 1)
	electRound := futureElection(seed + 2)

	t := &Table{
		Title:  "§4 prototype: case studies on addressable agents with fluid placement",
		Header: []string{"Case study", "FaaS 2018 (measured/paper)", "Future prototype", "Serverful baseline"},
	}
	t.AddRow("Model training (10 epochs, 90GB)",
		"465min / $0.29", fmt.Sprintf("%s / %s", FmtDur(trainTime), trainCost.String()),
		"21.7min / $0.04 (EC2)")
	t.AddRow("Prediction serving (10-doc batch)",
		"447ms", FmtDur(serveBatch), "2.8ms (EC2+ZeroMQ)")
	t.AddRow("Leader election round",
		"16.7s", FmtDur(electRound), "sub-second (EC2 direct)")
	t.AddNote("the prototype bills fine-grained GB-seconds like Lambda, keeping the pay-per-use")
	t.AddNote("economics while restoring data locality and network addressability")
	return []*Table{t}
}

// futureTraining: one agent spawned next to the staged corpus; reads are
// page-cache local, compute is a full core — EC2-class speed at FaaS-style
// pay-per-use billing.
func futureTraining(seed uint64) (time.Duration, pricing.USD) {
	c := NewCloud(seed)
	defer c.Close()
	pf := future.New(c.Net, c.Mesh, c.RNG.Fork(), future.DefaultConfig(), c.Catalog, c.Meter)

	batches := int(TrainingCorpusBytes / TrainingBatchBytes)
	totalIters := TrainingEpochs * batches
	var elapsed time.Duration
	var cost pricing.USD
	done := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		ds := pf.CreateDataSet("reviews", 5)
		for i := 0; i < batches; i++ {
			ds.AddExtent(reviews.BatchKey(i), TrainingBatchBytes)
		}
		agent := pf.SpawnAgent(p, "trainer", TrainingLambdaMemoryMB, ds)
		start := p.Now()
		for i := 0; i < totalIters; i++ {
			if err := agent.Read(p, ds, reviews.BatchKey(i%batches)); err != nil {
				panic(err)
			}
			if err := agent.Compute(p, TrainingBatchBytes); err != nil {
				panic(err)
			}
		}
		elapsed = time.Duration(p.Now() - start)
		cost = agent.Stop(p)
		done = true
	})
	c.K.RunUntil(sim.Time(12 * time.Hour))
	if !done {
		panic("future training did not finish")
	}
	return elapsed, cost
}

// futureServing: client and server agents exchanging batches directly —
// no queue service, no storage hop — at agent (not VM) granularity.
func futureServing(seed uint64) time.Duration {
	c := NewCloud(seed)
	defer c.Close()
	pf := future.New(c.Net, c.Mesh, c.RNG.Fork(), future.DefaultConfig(), c.Catalog, c.Meter)
	rec := newSummary("batch")
	done := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		server := pf.SpawnAgent(p, "classifier", 1024, nil)
		client := pf.SpawnAgent(p, "frontend", 512, nil)
		server.Endpoint().Serve(func(sp *sim.Proc, pk msgnet.Packet) []byte {
			server.Compute(sp, int64(len(pk.Payload)))
			return []byte("clean")
		})
		for b := 0; b < 1000; b++ {
			docs := makeDocs(b)
			start := p.Now()
			for _, d := range docs {
				if _, err := client.Endpoint().Call(p, "classifier", d, 0); err != nil {
					panic(err)
				}
			}
			rec.Add(time.Duration(p.Now() - start))
		}
		done = true
	})
	c.K.RunUntil(sim.Time(time.Hour))
	if !done {
		panic("future serving did not finish")
	}
	return rec.Mean()
}

// futureElection: the same bully protocol, but agents are addressable, so
// the direct transport (and its millisecond timeouts) applies.
func futureElection(seed uint64) time.Duration {
	c := NewCloud(seed)
	defer c.Close()
	pf := future.New(c.Net, c.Mesh, c.RNG.Fork(), future.DefaultConfig(), c.Catalog, c.Meter)

	const n = 10
	params := election.DirectParams()
	var nodes []*election.Node
	setup := false
	c.K.Spawn("setup", func(p *sim.Proc) {
		ids := make([]int, n)
		agents := make([]*future.Agent, n)
		for i := 0; i < n; i++ {
			ids[i] = i + 1
			agents[i] = pf.SpawnAgent(p, fmt.Sprintf("member-%d", i+1), 256, nil)
		}
		dn := election.NewDirectNet(c.Mesh, params, ids)
		for i := 0; i < n; i++ {
			nd := election.NewNode(ids[i], dn.ForNode(ids[i], agents[i].Node()), params)
			nd.Start(c.K)
			nodes = append(nodes, nd)
		}
		setup = true
	})
	agreedOn := func(want func(int) bool) func() bool {
		return func() bool {
			if !setup {
				return false
			}
			leader := -1
			for _, nd := range nodes {
				if nd.Stopped() {
					continue
				}
				if nd.Leader() < 0 {
					return false
				}
				if leader == -1 {
					leader = nd.Leader()
				} else if nd.Leader() != leader {
					return false
				}
			}
			return leader > 0 && want(leader)
		}
	}
	if !runKernelUntil(c.K, sim.Time(time.Minute), sim.Time(10*time.Millisecond),
		agreedOn(func(l int) bool { return l == n })) {
		panic("future election: no initial agreement")
	}
	c.K.RunUntil(c.K.Now() + sim.Time(2*time.Second)) // settle
	crashAt := c.K.Now()
	nodes[n-1].Stop()
	if !runKernelUntil(c.K, crashAt+sim.Time(time.Minute), sim.Time(time.Millisecond),
		agreedOn(func(l int) bool { return l == n-1 })) {
		panic("future election: failover did not complete")
	}
	return time.Duration(c.K.Now() - crashAt)
}
