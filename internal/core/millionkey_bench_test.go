package core

import (
	"fmt"
	"testing"
)

// BenchmarkMillionKeyGossip is the CI bench-smoke entry for the
// reconciliation path: one digest and one IBF run at a scaled key count,
// reporting the converged steady-state bytes/round each protocol pays.
func BenchmarkMillionKeyGossip(b *testing.B) {
	const keys = 65_536
	for _, reconcile := range []bool{false, true} {
		name := "digest"
		if reconcile {
			name = "ibf"
		}
		b.Run(fmt.Sprintf("protocol=%s", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := runMillionKey(1, 8, keys, reconcile)
				if r.rounds == 0 || r.steadyPer <= 0 {
					b.Fatal("run produced no steady-state rounds")
				}
				b.ReportMetric(float64(r.steadyPer), "steadyB/round")
			}
		})
	}
}
